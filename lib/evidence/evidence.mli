(** Evidence of faults (paper §4.2–4.3).

    Because no node is trusted, a detected fault must be turned into
    {e evidence} that other nodes can verify independently; otherwise a
    compromised node could trigger mode changes at will by "detecting"
    nonexistent faults. An evidence record is a statement signed by the
    detecting node. Statements either accuse a specific node (commission
    faults identified by replay, timing faults, equivocation, evidence
    forgery) or declare a {e path} problematic (omissions, which cannot
    be attributed to an endpoint directly — §4.2's third challenge).

    The {!Distributor} implements §4.3's per-node admission logic:
    validate before forwarding, deduplicate, endorse, and count invalid
    evidence against whoever signed it (so bogus-evidence floods are
    self-incriminating). *)

open Btr_util
module Auth = Btr_crypto.Auth

type fault_class =
  | Wrong_value  (** output does not match replay of signed inputs *)
  | Omission  (** an expected message never arrived *)
  | Omission_suspected
      (** a sender has missed some — but fewer than the declaring
          watchdog's strike threshold of — consecutive sweeps; carries no
          weight alone, but [f + 1] distinct watchers' suspicions of the
          same sender corroborate into omission-grade path evidence *)
  | Timing  (** right message at the wrong time *)
  | Equivocation  (** different values for the same (flow, period) *)
  | Forged_evidence  (** signed an evidence record that fails validation *)

val pp_fault_class : Format.formatter -> fault_class -> unit

type accused =
  | Node of int
  | Path of int * int  (** unordered; constructors normalize order *)

val path : int -> int -> accused

val accused_name : accused -> string
(** ["node:3"] / ["path:1-4"]; used in telemetry and {!encode}. *)

type statement = {
  accused : accused;
  fault_class : fault_class;
  detector : int;  (** node that produced the evidence *)
  period : int;  (** workload period index of the observation *)
  detected_at : Time.t;
  detail : string;
}

val encode : statement -> string
(** Canonical byte string covered by the signature. Injective on all
    fields. *)

type record = { statement : statement; tag : Auth.tag }

val sign : Auth.t -> Auth.secret -> statement -> record
(** Raises [Invalid_argument] if the secret's owner differs from
    [statement.detector] — a node can only issue evidence as itself. *)

val validate : Auth.t -> record -> bool
val size_bytes : record -> int
(** Wire size for network accounting (statement + tag). *)

val dedup_key : record -> string
(** Two records with the same key describe the same observation. *)

val pp : Format.formatter -> record -> unit

module Distributor : sig
  type t

  type verdict =
    | Fresh  (** valid and not seen before: apply and forward *)
    | Duplicate
    | Invalid  (** failed validation: drop, count against the signer *)

  val verdict_name : verdict -> string

  val create : node:int -> ?obs:Btr_obs.Obs.t -> unit -> t
  (** [obs] (default null) receives an [Evidence_admitted] event per
      {!admit} called with [~now], and the [evidence.records-admitted],
      [evidence.dedup-hits] and [evidence.validation-failures]
      counters. *)

  val node : t -> int

  val admit : ?now:Time.t -> t -> Auth.t -> record -> verdict
  (** [now] timestamps the telemetry event; admission logic does not
      depend on it. *)

  val already_sent : t -> record -> dst:int -> bool
  (** Whether this node already forwarded the record to [dst]; marks it
      sent otherwise. Keeps flooding quadratic-bounded. *)

  val seen : t -> record list
  (** All fresh records admitted so far, oldest first. *)

  val invalid_count_from : t -> int -> int
  (** How many invalid records claimed to be signed by the given node —
      input for a [Forged_evidence] accusation. *)
end
