open Btr_util
module Auth = Btr_crypto.Auth
module Obs = Btr_obs.Obs

type fault_class =
  | Wrong_value
  | Omission
  | Omission_suspected
  | Timing
  | Equivocation
  | Forged_evidence

let pp_fault_class ppf c =
  Format.pp_print_string ppf
    (match c with
    | Wrong_value -> "wrong-value"
    | Omission -> "omission"
    | Omission_suspected -> "omission-suspected"
    | Timing -> "timing"
    | Equivocation -> "equivocation"
    | Forged_evidence -> "forged-evidence")

type accused = Node of int | Path of int * int

let path a b = if a <= b then Path (a, b) else Path (b, a)

let accused_name = function
  | Node n -> Printf.sprintf "node:%d" n
  | Path (a, b) -> Printf.sprintf "path:%d-%d" a b

type statement = {
  accused : accused;
  fault_class : fault_class;
  detector : int;
  period : int;
  detected_at : Time.t;
  detail : string;
}

let encode s =
  Printf.sprintf "%s|%s|det:%d|p:%d|t:%d|%s" (accused_name s.accused)
    (Format.asprintf "%a" pp_fault_class s.fault_class)
    s.detector s.period s.detected_at s.detail

type record = { statement : statement; tag : Auth.tag }

let sign auth secret statement =
  if Auth.owner_of_secret secret <> statement.detector then
    invalid_arg "Evidence.sign: detector must sign its own statements";
  { statement; tag = Auth.sign auth secret (encode statement) }

let validate auth r =
  Auth.verify auth ~signer:r.statement.detector (encode r.statement) r.tag

let size_bytes r = String.length (encode r.statement) + 16

let dedup_key r = encode r.statement

let pp ppf r =
  let s = r.statement in
  Format.fprintf ppf "[%a by node %d @ %a, period %d: %s]" pp_fault_class
    s.fault_class s.detector Time.pp s.detected_at s.period
    (match s.accused with
    | Node n -> Printf.sprintf "node %d" n
    | Path (a, b) -> Printf.sprintf "path %d-%d" a b)

module Distributor = struct
  type verdict = Fresh | Duplicate | Invalid

  let verdict_name = function
    | Fresh -> "fresh"
    | Duplicate -> "duplicate"
    | Invalid -> "invalid"

  type t = {
    node : int;
    obs : Obs.t;
    fresh_count : Obs.Counter.t;
    dedup_count : Obs.Counter.t;
    invalid_count : Obs.Counter.t;
    seen_keys : (string, unit) Hashtbl.t;
    mutable rev_seen : record list;
    sent : (string * int, unit) Hashtbl.t;
    invalid_by : (int, int) Hashtbl.t;
  }

  let create ~node ?(obs = Obs.null) () =
    let reg = Obs.registry obs in
    {
      node;
      obs;
      fresh_count = Obs.Registry.counter reg Obs.Evidence "records-admitted";
      dedup_count = Obs.Registry.counter reg Obs.Evidence "dedup-hits";
      invalid_count = Obs.Registry.counter reg Obs.Evidence "validation-failures";
      seen_keys = Hashtbl.create 32;
      rev_seen = [];
      sent = Hashtbl.create 64;
      invalid_by = Hashtbl.create 8;
    }

  let node t = t.node

  let admit ?now t auth r =
    let verdict =
      if not (validate auth r) then begin
        let signer = r.statement.detector in
        let prev = Option.value ~default:0 (Hashtbl.find_opt t.invalid_by signer) in
        Hashtbl.replace t.invalid_by signer (prev + 1);
        Obs.Counter.incr t.invalid_count;
        Invalid
      end
      else begin
        let k = dedup_key r in
        if Hashtbl.mem t.seen_keys k then begin
          Obs.Counter.incr t.dedup_count;
          Duplicate
        end
        else begin
          Hashtbl.replace t.seen_keys k ();
          t.rev_seen <- r :: t.rev_seen;
          Obs.Counter.incr t.fresh_count;
          Fresh
        end
      end
    in
    (match now with
    | Some at when Obs.enabled t.obs ->
      Obs.emit t.obs ~at ~node:t.node Obs.Evidence
        (Obs.Evidence_admitted
           {
             verdict = verdict_name verdict;
             detector = r.statement.detector;
             accused = accused_name r.statement.accused;
           })
    | _ -> ());
    verdict

  let already_sent t r ~dst =
    let k = (dedup_key r, dst) in
    if Hashtbl.mem t.sent k then true
    else begin
      Hashtbl.replace t.sent k ();
      false
    end

  let seen t = List.rev t.rev_seen

  let invalid_count_from t n =
    Option.value ~default:0 (Hashtbl.find_opt t.invalid_by n)
end
