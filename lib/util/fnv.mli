(** FNV-1a hashing, 64-bit.

    The one string hash everything deterministic keys on: campaign
    artifact fingerprints, the sharded plan cache's shard selector and
    {!Btr_planner.Planner.config_key_hash}. Stable across runs,
    processes and OCaml versions — unlike [Hashtbl.hash], which is
    explicitly unspecified — so hashes may appear in persisted artifacts
    and in CI assertions. *)

val hash64 : string -> int64
(** FNV-1a over the bytes of the string. *)

val hash64_lines : string list -> int64
(** FNV-1a over the lines with a ['\n'] mixed in after each — the
    campaign artifact fingerprint ({!Btr_campaign.Campaign.fingerprint}
    renders it with {!to_hex}). *)

val hash : string -> int
(** {!hash64} truncated to a non-negative OCaml [int]; use for shard
    and bucket selection. *)

val to_hex : int64 -> string
(** 16 lowercase hex digits, zero-padded. *)
