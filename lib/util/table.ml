type t = {
  title : string;
  header : string list;
  mutable rev_rows : string list list;
}

let create ~title ~header = { title; header; rev_rows = [] }

let add_row t row =
  let width = List.length t.header in
  let padded =
    if List.length row >= width then row
    else row @ List.init (width - List.length row) (fun _ -> "")
  in
  t.rev_rows <- padded :: t.rev_rows

let row_count t = List.length t.rev_rows

let render t =
  let rows = List.rev t.rev_rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> Stdlib.max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad cell (List.nth widths i)))
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line t.header;
  let total = List.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter line rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f x = Printf.sprintf "%.3f" x
let cell_pct x = Printf.sprintf "%.1f%%" x

(* Order-stable hashtable traversal. Hashtbl.iter/fold order depends on
   the table's insertion history, so any result that reaches a trace,
   an error message or a JSON document must go through these instead
   (btr_lint's hashtbl-order rule enforces it repo-wide). *)

let sorted_bindings ~cmp h =
  (* btr-lint: allow hashtbl-order — this is the sorted helper itself *)
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] in
  List.sort (fun (a, _) (b, _) -> cmp a b) bindings

let sorted_keys ~cmp h = List.map fst (sorted_bindings ~cmp h)

let sorted_iter ~cmp f h =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp h)

let sorted_fold ~cmp f h init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ~cmp h)
