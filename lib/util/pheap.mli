(** Purely functional pairing heap.

    Backs the simulator's event queue. Amortized O(1) insert/merge and
    O(log n) delete-min; being persistent makes checkpointing a
    simulation state trivial. Every operation is stack-safe: sibling
    lists and heap chains both grow to O(n) under adversarial insert
    orders, so [delete_min] and the traversals are iterative rather
    than structurally recursive. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val insert : Elt.t -> t -> t
  val merge : t -> t -> t

  val find_min : t -> Elt.t option
  (** [None] on the empty heap. *)

  val delete_min : t -> (Elt.t * t) option
  (** Smallest element and the remaining heap; [None] when empty. *)

  val size : t -> int
  (** O(n); intended for tests and assertions. *)

  val fold : ('acc -> Elt.t -> 'acc) -> 'acc -> t -> 'acc
  (** O(n) fold in unspecified (heap) order. *)

  val to_sorted_list : t -> Elt.t list
  (** Drains the heap in ascending order. O(n log n). *)

  val of_list : Elt.t list -> t
end
