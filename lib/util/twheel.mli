(** Hierarchical timing wheel keyed on logical microseconds.

    The simulation engine's default event queue ({!Btr_sim.Engine}):
    amortized O(1) insert and extract-min for the workloads a
    discrete-event simulator actually produces, where the pairing heap's
    O(log n) comparisons made throughput collapse with queue depth.

    Geometry: {!levels} wheels of {!wsize} slots each, level [L] slots
    spanning [wsize^L] µs, so the wheels cover [wsize^levels] µs
    (~6 simulated days at 8192³) ahead of the cursor; anything
    further — including [Time.infinity] — parks in an unsorted overflow
    list that is rescanned when the cursor enters a new top-level block.
    A cell is placed at the lowest level whose current window contains
    its deadline (highest bit-block in which [at] and the cursor
    differ), and whole slots cascade down one level when the cursor
    enters their window, so every cell is relinked at most [levels]
    times on its way to level 0.

    Order: level-0 slots span exactly 1 µs, and every placement path
    (direct insert, cascade, overflow rescan, cursor rewind) appends in
    FIFO order and runs before any later insert can target the same
    window — so cells with equal [at] pop in insertion ([seq]) order,
    and the engine's (at, seq) total order is preserved without the
    wheel ever comparing sequence numbers.

    Cells are intrusive doubly-linked records recycled through a free
    list: cancelling unlinks in O(1) (no dead cells are ever walked at
    drain time) and a steady-state periodic workload reuses the same
    cells forever, allocating nothing per event.

    Not thread-safe; one wheel per engine, one engine per domain. *)

type 'a cell = {
  mutable c_at : int;  (** deadline, logical µs *)
  mutable c_seq : int;  (** caller's insertion sequence (carried, not used) *)
  mutable c_payload : 'a;
  mutable c_prev : 'a cell;
  mutable c_next : 'a cell;
  mutable c_lvl : int;
      (** internal: wheel level, [levels] for overflow, -1 when
          unlinked. Treat every field except [c_at], [c_seq] and
          [c_payload] as private to the wheel. *)
}
(** Exposed concretely so callers can tie the knot: a recursive
    [let rec] between a nil cell and a nil payload needs the record
    constructor (see the engine's [nil_cell]/[nil_handle] pair). *)

type 'a t

val levels : int
(** 3 — wheel levels below the overflow list. *)

val wsize : int
(** 8192 — slots per level; level [L] granularity is [8192^L] µs. Wide
    levels keep millisecond-scale re-arms inside the level-0 window, so
    the common cell is linked once and popped once with no cascade in
    between; slot sentinels are allocated lazily so unused width is one
    array entry, not a live record. *)

val create : nil:'a cell -> unit -> 'a t
(** A wheel with its cursor at time 0. [nil] is the caller's detached
    sentinel cell: it terminates the free list, is returned by
    {!pop_at_most} on emptiness, and donates the payload used to blank
    recycled cells. Never linked into the wheel; share one per payload
    type. *)

val length : 'a t -> int
(** Linked cells, overflow included. O(1). *)

val pool_ready : 'a t -> bool
(** [true] when the next {!add} will reuse a pooled cell rather than
    allocate. *)

val add : 'a t -> at:int -> seq:int -> 'a -> 'a cell
(** Links a cell for [at] (≥ 0). [at] may be behind the cursor (the
    cursor only ever advances through empty time, so this happens when
    a caller schedules into the gap left by a horizon-bounded pop);
    the wheel rewinds — O(wsize + level-0 cells), rare — and stays
    exact. The returned cell is valid until popped or unlinked. *)

val unlink : 'a t -> 'a cell -> bool
(** O(1) removal of a linked cell, returning it to the pool; [false]
    (and no effect) if the cell is not currently linked. This is the
    cancellation path: dead cells never linger to be walked at drain. *)

val pop_at_most : 'a t -> horizon:int -> 'a cell
(** The minimum-(at, seq) cell with [c_at <= horizon], unlinked but
    {e not} recycled — the caller reads its fields, then must hand it
    to {!recycle}. Returns the [nil] cell when no such cell exists; the
    cursor never advances past [horizon] (nor at all when the wheel is
    empty), so later adds behind it stay cheap. *)

val recycle : 'a t -> 'a cell -> unit
(** Returns a cell obtained from {!pop_at_most} to the free list,
    blanking its payload so the wheel retains no reference to it. *)

val cells_allocated : 'a t -> int
(** Cells created fresh over the wheel's lifetime. *)

val cells_reused : 'a t -> int
(** Adds served from the free list — the allocation-diet measure. *)
