(** Plain-text tables for experiment output.

    The bench harness prints one table per reproduced experiment; this
    keeps the rendering uniform and column-aligned. *)

type t

val create : title:string -> header:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val row_count : t -> int

val render : t -> string
val print : t -> unit
(** Renders to stdout followed by a blank line. *)

val cell_f : float -> string
(** Fixed 3-decimal rendering used for measured values. *)

val cell_pct : float -> string
(** Percentage with 1 decimal, e.g. [12.5%]. *)

(** {1 Deterministic hashtable traversal}

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in an order that
    depends on the table's insertion history, which silently leaks into
    traces, error messages and JSON output. Every traversal whose
    result order can be observed must use these sorted variants; the
    [btr_lint] determinism linter flags raw [Hashtbl.iter]/[fold]
    call sites repo-wide. *)

val sorted_bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key under [cmp]. *)

val sorted_keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

val sorted_iter :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter] in increasing key order under [cmp]. *)

val sorted_fold :
  cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold] in increasing key order under [cmp]. *)
