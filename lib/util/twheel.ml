(* Hierarchical timing wheel. See twheel.mli for the design contract;
   the invariants the code below leans on:

   I1 (placement): a linked cell sits at the lowest level whose current
      cursor window contains its deadline — level of the highest
      [wbits]-block in which [c_at] and [cur] differ — except
      transiently after a rewind, where a cell may sit *below* its true
      level; such cells are repaired upward the next time their slot
      cascades, and are never popped early because level-0 re-placement
      is exact.
   I2 (level 0): every level-0 cell has c_at >= cur and lives in the
      current [wsize]-µs window, so slot (c_at land wmask) holds exactly
      one timestamp and the cell at the cursor's own slot has c_at = cur.
   I3 (order): within a slot, cells appear in insertion order; every
      bulk move (cascade, overflow rescan, rewind) preserves relative
      order and completes before any later direct insert can target the
      same window, so equal-deadline cells pop in seq order.
   I4 (counts): counts.(l) is the number of cells linked at level l
      (overflow at index [levels]); total is their sum. The cursor may
      only skip a time range after proving, via these counts, that no
      boundary inside it can release a cell.
   I5 (ov_min): a lower bound on the minimum deadline in the overflow
      list (exact after each rescan; unlinks may leave it low, never
      high), so jumping straight to ov_min's top-level block skips no
      occupied block.
   I6 (bitmap): bit [slot] of l0_bits is set iff level-0 slot [slot] is
      non-empty, so the cursor finds the next occupied level-0 slot by
      word-sized bit scans instead of walking sentinels across empty
      time. *)

type 'a cell = {
  mutable c_at : int;
  mutable c_seq : int;
  mutable c_payload : 'a;
  mutable c_prev : 'a cell;
  mutable c_next : 'a cell;
  mutable c_lvl : int;
}

(* Wide, shallow geometry: 8192-slot levels keep millisecond-scale
   re-arms (the simulator's dominant pattern) inside the level-0 window
   ~88% of the time, so the typical cell is linked once and popped once
   with no cascade touch in between. Slot sentinels are allocated
   lazily, so the wide levels cost one pointer array per wheel, not
   25k live records. *)
let wbits = 13
let wsize = 1 lsl wbits
let wmask = wsize - 1
let levels = 3
let span_bits = wbits * levels (* 39: horizon of the wheels proper *)
let span_mask = (1 lsl span_bits) - 1
let l2_mask = (1 lsl (2 * wbits)) - 1

(* I6: 32 occupancy bits per word (not 63 — keeps the slot/word split a
   pair of shifts well inside OCaml's 63-bit int). *)
let l0_words = wsize lsr 5

type 'a t = {
  nil : 'a cell;
  slots : 'a cell array; (* levels*wsize sentinels, then the overflow *)
  counts : int array; (* per level; overflow at index [levels] *)
  l0_bits : int array; (* I6: level-0 occupancy, 32 slots per word *)
  mutable cur : int;
  mutable total : int;
  mutable ov_min : int; (* I5; max_int when overflow is empty *)
  mutable free : 'a cell; (* pool: singly linked through c_next *)
  mutable allocated : int;
  mutable reused : int;
}

let sentinel nil =
  let s =
    {
      c_at = max_int;
      c_seq = 0;
      c_payload = nil.c_payload;
      c_prev = nil;
      c_next = nil;
      c_lvl = -1;
    }
  in
  s.c_prev <- s;
  s.c_next <- s;
  s

let create ~nil () =
  {
    nil;
    (* [nil] stands in for a never-used slot: nil.c_next == nil, so
       every emptiness test below reads it as an empty slot. A real
       sentinel replaces it on first link. *)
    slots = Array.make ((levels * wsize) + 1) nil;
    counts = Array.make (levels + 1) 0;
    l0_bits = Array.make l0_words 0;
    cur = 0;
    total = 0;
    ov_min = max_int;
    free = nil;
    allocated = 0;
    reused = 0;
  }

let length t = t.total
let pool_ready t = t.free != t.nil
let cells_allocated t = t.allocated
let cells_reused t = t.reused

(* Append [c] before sentinel [s] (slot tail), preserving FIFO order. *)
let append s c =
  let tail = s.c_prev in
  c.c_prev <- tail;
  c.c_next <- s;
  tail.c_next <- c;
  s.c_prev <- c

(* Place a detached cell by I1 and account for it (I4, I5). *)
let link t c =
  let x = c.c_at lxor t.cur in
  let lvl =
    if x < wsize then 0
    else if x <= l2_mask then 1
    else if x <= span_mask then 2
    else levels
  in
  let idx =
    if lvl = levels then levels * wsize
    else (lvl * wsize) + ((c.c_at lsr (lvl * wbits)) land wmask)
  in
  let s = t.slots.(idx) in
  let s =
    if s != t.nil then s
    else begin
      let s = sentinel t.nil in
      t.slots.(idx) <- s;
      s
    end
  in
  if lvl = 0 && s.c_next == s then
    t.l0_bits.(idx lsr 5) <- t.l0_bits.(idx lsr 5) lor (1 lsl (idx land 31));
  append s c;
  c.c_lvl <- lvl;
  t.counts.(lvl) <- t.counts.(lvl) + 1;
  t.total <- t.total + 1;
  if lvl = levels && c.c_at < t.ov_min then t.ov_min <- c.c_at

(* Detach a linked cell without touching the pool. *)
let splice_out t c =
  (* prev == next iff [c] was the slot's only cell (both the sentinel):
     clear its occupancy bit (I6; the slot index is exact by I2) *)
  if c.c_lvl = 0 && c.c_prev == c.c_next then begin
    let slot = c.c_at land wmask in
    t.l0_bits.(slot lsr 5)
    <- t.l0_bits.(slot lsr 5) land lnot (1 lsl (slot land 31))
  end;
  c.c_prev.c_next <- c.c_next;
  c.c_next.c_prev <- c.c_prev;
  t.counts.(c.c_lvl) <- t.counts.(c.c_lvl) - 1;
  t.total <- t.total - 1;
  c.c_lvl <- -1

let to_pool t c =
  c.c_payload <- t.nil.c_payload;
  c.c_prev <- t.nil;
  c.c_next <- t.free;
  t.free <- c

let recycle t c = to_pool t c

let unlink t c =
  if c.c_lvl < 0 then false
  else begin
    splice_out t c;
    to_pool t c;
    true
  end

let take t ~at ~seq payload =
  if t.free != t.nil then begin
    let c = t.free in
    t.free <- c.c_next;
    t.reused <- t.reused + 1;
    c.c_at <- at;
    c.c_seq <- seq;
    c.c_payload <- payload;
    c
  end
  else begin
    t.allocated <- t.allocated + 1;
    {
      c_at = at;
      c_seq = seq;
      c_payload = payload;
      c_prev = t.nil;
      c_next = t.nil;
      c_lvl = -1;
    }
  end

(* An insert landed behind the cursor: move the cursor back to [at].
   Only level-0 cells can be popped without a boundary crossing, so
   only they must be re-placed exactly; higher-level cells may now sit
   below their true level, which I1 tolerates (cascade repairs them
   upward before the cursor can reach their window). Two phases —
   collect everything, then relink under the new cursor — so a
   re-placed cell can't land in a level-0 slot we haven't emptied yet
   and be walked twice. *)
let rewind t at =
  let moved = ref [] in
  for i = wsize - 1 downto 0 do
    let s = t.slots.(i) in
    (* Take from the tail so consing preserves per-slot FIFO (I3). *)
    let rec grab acc =
      let c = s.c_prev in
      if c == s then acc
      else begin
        splice_out t c;
        grab (c :: acc)
      end
    in
    moved := grab !moved
  done;
  t.cur <- at;
  List.iter (fun c -> link t c) !moved

let add t ~at ~seq payload =
  if at < 0 then invalid_arg "Twheel.add: negative deadline";
  if at < t.cur then rewind t at;
  let c = take t ~at ~seq payload in
  link t c;
  c

(* Smallest multiple of 2^k strictly above [cur]; max_int on overflow
   (nothing real lives that far out: deadlines are non-negative ints). *)
let next_boundary cur k =
  let b = ((cur lsr k) + 1) lsl k in
  if b <= cur then max_int else b

(* Re-place every cell in level [lvl]'s slot for the current cursor.
   Entering the window strictly shrinks c_at lxor cur for in-window
   cells, so each re-link lands strictly below [lvl]; stale
   (post-rewind) cells may re-link upward instead. Either way never
   into the same slot, so the head-walk terminates. *)
let cascade t lvl =
  let s = t.slots.((lvl * wsize) + ((t.cur lsr (lvl * wbits)) land wmask)) in
  let rec go () =
    let c = s.c_next in
    if c != s then begin
      splice_out t c;
      link t c;
      go ()
    end
  in
  go ()

(* The cursor entered a new top-level block: pull every overflow cell
   now within the wheels' span down into them, and recompute ov_min
   exactly from what remains (I5). *)
let rescan_overflow t =
  let s = t.slots.(levels * wsize) in
  let m = ref max_int in
  let rec go c =
    if c != s then begin
      let nxt = c.c_next in
      if c.c_at lxor t.cur <= span_mask then begin
        splice_out t c;
        link t c
      end
      else if c.c_at < !m then m := c.c_at;
      go nxt
    end
  in
  go s.c_next;
  t.ov_min <- !m

(* One cursor hop toward the next cell, never past [horizon].
   Preconditions: total > 0, cur < horizon, current level-0 slot empty.
   Jump distance is justified by I4/I5: with level < l all empty, no
   boundary below the next 2^(wbits*l) multiple can release a cell. *)
let advance t horizon =
  let cur = t.cur in
  let target =
    if t.counts.(0) > 0 then begin
      (* I2: some level-0 cell sits at a strictly later slot of this
         window (the cursor's own slot is empty); find it by bitmap
         scan (I6). *)
      let base = cur land lnot wmask in
      let i = (cur land wmask) + 1 in
      let ctz b =
        let rec go b k = if b land 1 = 1 then k else go (b lsr 1) (k + 1) in
        go b 0
      in
      let rec words w =
        if w >= l0_words then next_boundary cur wbits
        else if t.l0_bits.(w) <> 0 then
          base lor ((w lsl 5) + ctz t.l0_bits.(w))
        else words (w + 1)
      in
      if i >= wsize then next_boundary cur wbits
      else begin
        let first = t.l0_bits.(i lsr 5) lsr (i land 31) in
        if first <> 0 then base lor (i + ctz first) else words ((i lsr 5) + 1)
      end
    end
    else if t.counts.(1) > 0 then next_boundary cur wbits
    else if t.counts.(2) > 0 then next_boundary cur (2 * wbits)
    else begin
      (* Only the overflow is populated: jump to its first block. If
         ov_min went stale-low (I5), step one block and rescan. *)
      (* parenthesized: lsl/lsr associate to the right *)
      let b = (t.ov_min lsr span_bits) lsl span_bits in
      if b <= cur then next_boundary cur span_bits else b
    end
  in
  let target = if target > horizon then horizon else target in
  t.cur <- target;
  (* Process boundary crossings at the landing point, widest first, so
     overflow cells cascade through L3..L1 within this same hop. A
     horizon-clamped target skips no occupied boundary: the unclamped
     target was the nearest boundary of the lowest occupied level. *)
  if target land span_mask = 0 then rescan_overflow t;
  if target land l2_mask = 0 then cascade t 2;
  if target land wmask = 0 then cascade t 1

let pop_at_most t ~horizon =
  let rec seek () =
    if t.total = 0 then t.nil
    else begin
      let s = t.slots.(t.cur land wmask) in
      let c = s.c_next in
      if c != s then
        if t.cur <= horizon then begin
          splice_out t c;
          c
        end
        else t.nil
      else if t.cur >= horizon then t.nil
      else begin
        advance t horizon;
        seek ()
      end
    end
  in
  seek ()
