module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type t = Empty | Node of Elt.t * t list

  let empty = Empty
  let is_empty = function Empty -> true | Node _ -> false

  let merge a b =
    match a, b with
    | Empty, h | h, Empty -> h
    | Node (x, xs), Node (y, ys) ->
      if Elt.compare x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

  let insert x h = merge (Node (x, [])) h

  (* Two-pass pairing: merge siblings left-to-right in pairs, then fold
     the pair results right-to-left. This is the variant with the proven
     amortized bounds. A heap built by n inserts can hold ~n siblings
     under one root, so both passes must be iterative — the naive
     recursion (one frame per pair) overflows the stack at production
     event counts. The fold over the reversed pair list rebuilds the
     exact right-to-left merge tree of the recursive definition. *)
  let merge_pairs hs =
    let rec pair acc = function
      | [] -> acc
      | [ h ] -> h :: acc
      | h1 :: h2 :: rest -> pair (merge h1 h2 :: acc) rest
    in
    List.fold_left (fun acc h -> merge h acc) Empty (pair [] hs)

  let find_min = function Empty -> None | Node (x, _) -> Some x

  let delete_min = function
    | Empty -> None
    | Node (x, hs) -> Some (x, merge_pairs hs)

  (* Iterative with an explicit worklist: heap depth is O(n) in the
     worst case (descending inserts chain), so structural recursion is
     as stack-unsafe here as it was in [merge_pairs]. *)
  let fold f acc h =
    let rec go acc = function
      | [] -> acc
      | Empty :: rest -> go acc rest
      | Node (x, hs) :: rest -> go (f acc x) (List.rev_append hs rest)
    in
    go acc [ h ]

  let size h = fold (fun acc _ -> acc + 1) 0 h

  let to_sorted_list h =
    let rec drain acc h =
      match delete_min h with
      | None -> List.rev acc
      | Some (x, h') -> drain (x :: acc) h'
    in
    drain [] h

  let of_list xs = List.fold_left (fun h x -> insert x h) empty xs
end
