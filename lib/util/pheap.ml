module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type t = Empty | Node of Elt.t * t list

  let empty = Empty
  let is_empty = function Empty -> true | Node _ -> false

  let merge a b =
    match a, b with
    | Empty, h | h, Empty -> h
    | Node (x, xs), Node (y, ys) ->
      if Elt.compare x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

  let insert x h = merge (Node (x, [])) h

  (* Two-pass pairing: merge siblings left-to-right in pairs, then fold
     the pair results right-to-left. This is the variant with the proven
     amortized bounds. *)
  let rec merge_pairs = function
    | [] -> Empty
    | [ h ] -> h
    | h1 :: h2 :: rest -> merge (merge h1 h2) (merge_pairs rest)

  let find_min = function Empty -> None | Node (x, _) -> Some x

  let delete_min = function
    | Empty -> None
    | Node (x, hs) -> Some (x, merge_pairs hs)

  let rec size = function
    | Empty -> 0
    | Node (_, hs) -> 1 + List.fold_left (fun acc h -> acc + size h) 0 hs

  let rec fold f acc = function
    | Empty -> acc
    | Node (x, hs) -> List.fold_left (fold f) (f acc x) hs

  let to_sorted_list h =
    let rec drain acc h =
      match delete_min h with
      | None -> List.rev acc
      | Some (x, h') -> drain (x :: acc) h'
    in
    drain [] h

  let of_list xs = List.fold_left (fun h x -> insert x h) empty xs
end
