let offset = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let mix h c = Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let hash64 s =
  let h = ref offset in
  String.iter (fun c -> h := mix !h c) s;
  !h

let hash64_lines lines =
  let h = ref offset in
  List.iter
    (fun l ->
      String.iter (fun c -> h := mix !h c) l;
      h := mix !h '\n')
    lines;
  !h

let hash s = Int64.to_int (hash64 s) land max_int
let to_hex h = Printf.sprintf "%016Lx" h
