(** One-call assembly of a complete BTR deployment.

    Plans the workload onto the topology, deploys the strategy on the
    simulator, injects the fault script and runs to the horizon. This
    is the entry point the examples, tests and benchmarks share. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault

type spec = {
  workload : Graph.t;
  topology : Topology.t;
  f : int;
  recovery_bound : Time.t;
  script : Fault.script;
  horizon : Time.t;
  seed : int;
  behaviors : (Task.id * Behavior.fn) list;
  tune : Planner.config -> Planner.config;
      (** applied to the default planner config before building *)
  obs : Btr_obs.Obs.t option;
      (** observability context handed to {!Runtime.create}; [None]
          means the runtime's default (fresh null sink) *)
}

val spec :
  workload:Graph.t ->
  topology:Topology.t ->
  f:int ->
  recovery_bound:Time.t ->
  ?script:Fault.script ->
  ?horizon:Time.t ->
  ?seed:int ->
  ?behaviors:(Task.id * Behavior.fn) list ->
  ?tune:(Planner.config -> Planner.config) ->
  ?obs:Btr_obs.Obs.t ->
  unit ->
  spec
(** Defaults: no faults, horizon = 100 periods, seed 1. *)

val avionics_demo : ?seed:int -> ?obs:Btr_obs.Obs.t -> unit -> spec
(** The stack's demo deployment: avionics workload, 6-node clique
    (10 Mbps, 50µs links), f = 1, R = 200ms, one node corrupting its
    outputs at t = 250ms, horizon 1s. Exercises detection, evidence
    flooding and a mode switch, so a trace of it contains events from
    every subsystem. *)

val resolved_config : spec -> Planner.config
(** The planner config {!plan} will build with: [spec.tune] applied to
    the defaults for [f] and [recovery_bound]. Because [tune] is an
    opaque closure, specs are incomparable; cache keys must be derived
    from this resolved config (see {!Planner.config_key}), which is what
    the campaign plan cache does. *)

val plan : ?config:Runtime.config -> spec -> (Planner.t, Planner.error) result
(** Just the offline phase: build the strategy, then statically verify
    it with {!Btr_check.Check}. A strategy with [Error]-severity
    diagnostics yields [Error (Planner.Rejected _)] instead of being
    deployed; the diagnostics are also emitted on [spec.obs]. [config]
    (default {!Runtime.default_config}) is the runtime configuration
    the deployment will use — the verifier reads its
    [omission_strikes] so the selective-omission analysis
    (BTR-E305/W306) models the watchdog actually deployed. In every
    entry point taking [config], [spec.seed] overrides the config's
    seed: campaigns vary the seed per trial while reusing one config. *)

val prepare : ?config:Runtime.config -> spec -> (Runtime.t, Planner.error) result
(** Plan and deploy, but do not run — callers can hook actuators
    ({!Runtime.on_actuate}) first. *)

val run : ?config:Runtime.config -> spec -> (Runtime.t, Planner.error) result
(** Plan, deploy, inject, run to the horizon. *)

val prepare_unchecked :
  ?config:Runtime.config -> spec -> (Runtime.t, Planner.error) result
(** {!prepare} without the static verification gate: builds the plan
    and deploys it even when {!Btr_check.Check} would reject it. For
    adversarial conformance testing — forcing a statically rejected
    configuration into the simulator to confirm the rejection was
    genuine (a witness schedule really violates R) — and for baseline
    experiments that deliberately study under-provisioned strategies.
    Never use it on the happy path: acceptance is only meaningful
    because deployment implies the gate passed. *)

val run_unchecked :
  ?config:Runtime.config -> spec -> (Runtime.t, Planner.error) result
(** {!prepare_unchecked}, then inject and run to the horizon. *)
