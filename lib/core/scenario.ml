open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault

type spec = {
  workload : Graph.t;
  topology : Topology.t;
  f : int;
  recovery_bound : Time.t;
  script : Fault.script;
  horizon : Time.t;
  seed : int;
  behaviors : (Task.id * Behavior.fn) list;
  tune : Planner.config -> Planner.config;
  obs : Btr_obs.Obs.t option;
}

let spec ~workload ~topology ~f ~recovery_bound ?(script = []) ?horizon
    ?(seed = 1) ?(behaviors = []) ?(tune = Fun.id) ?obs () =
  let horizon =
    match horizon with
    | Some h -> h
    | None -> Time.mul (Graph.period workload) 100
  in
  {
    workload;
    topology;
    f;
    recovery_bound;
    script;
    horizon;
    seed;
    behaviors;
    tune;
    obs;
  }

(* The stack's "hello world": the avionics workload on a 6-node clique,
   one corrupt node injected mid-run, recovering within R = 200ms. The
   CLI's default command and the trace examples in the docs use it, so
   its telemetry exercises every subsystem. *)
let avionics_demo ?(seed = 1) ?obs () =
  let workload = Btr_workload.Generators.avionics ~n_nodes:6 in
  let topology =
    Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
      ~latency:(Time.us 50)
  in
  spec ~workload ~topology ~f:1 ~recovery_bound:(Time.ms 200)
    ~script:
      [ { Fault.at = Time.ms 250; node = 3; behavior = Fault.Corrupt_outputs } ]
    ~horizon:(Time.sec 1) ~seed ?obs ()

(* The planner config a spec will actually build with. [tune] is an
   opaque closure, so the spec itself cannot serve as a cache key; the
   resolved config can (via Planner.config_key). *)
let resolved_config s =
  s.tune (Planner.default_config ~f:s.f ~recovery_bound:s.recovery_bound)

(* The runtime config a deployment will use: the caller's (if any) with
   the spec's seed, which stays authoritative — campaigns vary it per
   trial and cache plans across seeds. *)
let runtime_config ?config s =
  match config with
  | Some c -> { c with Runtime.seed = s.seed }
  | None -> { Runtime.default_config with seed = s.seed }

let plan ?config s =
  let cfg = resolved_config s in
  match Planner.build cfg s.workload s.topology with
  | Error _ as e -> e
  | Ok strategy -> (
    (* Static verification gate (Def. 3.1): an infeasible strategy is
       rejected with diagnostics instead of being silently simulated.
       The verifier models the watchdog the runtime will actually
       deploy, so it needs the configured strike threshold. *)
    let strikes = (runtime_config ?config s).Runtime.omission_strikes in
    let report = Btr_check.Check.verify ?obs:s.obs ~strikes strategy in
    match Btr_check.Check.to_planner_error report with
    | None -> Ok strategy
    | Some e -> Error e)

let deploy ?config s strategy =
  Runtime.create
    ~config:(runtime_config ?config s)
    ~behaviors:s.behaviors ~script:s.script ?obs:s.obs ~strategy ()

let prepare ?config s =
  match plan ?config s with
  | Error e -> Error e
  | Ok strategy -> Ok (deploy ?config s strategy)

let run ?config s =
  match prepare ?config s with
  | Error e -> Error e
  | Ok rt ->
    Runtime.run rt ~horizon:s.horizon;
    Ok rt

let prepare_unchecked ?config s =
  match Planner.build (resolved_config s) s.workload s.topology with
  | Error e -> Error e
  | Ok strategy -> Ok (deploy ?config s strategy)

let run_unchecked ?config s =
  match prepare_unchecked ?config s with
  | Error e -> Error e
  | Ok rt ->
    Runtime.run rt ~horizon:s.horizon;
    Ok rt
