open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault

type spec = {
  workload : Graph.t;
  topology : Topology.t;
  f : int;
  recovery_bound : Time.t;
  script : Fault.script;
  horizon : Time.t;
  seed : int;
  behaviors : (Task.id * Behavior.fn) list;
  tune : Planner.config -> Planner.config;
  obs : Btr_obs.Obs.t option;
}

let spec ~workload ~topology ~f ~recovery_bound ?(script = []) ?horizon
    ?(seed = 1) ?(behaviors = []) ?(tune = Fun.id) ?obs () =
  let horizon =
    match horizon with
    | Some h -> h
    | None -> Time.mul (Graph.period workload) 100
  in
  {
    workload;
    topology;
    f;
    recovery_bound;
    script;
    horizon;
    seed;
    behaviors;
    tune;
    obs;
  }

(* The stack's "hello world": the avionics workload on a 6-node clique,
   one corrupt node injected mid-run, recovering within R = 200ms. The
   CLI's default command and the trace examples in the docs use it, so
   its telemetry exercises every subsystem. *)
let avionics_demo ?(seed = 1) ?obs () =
  let workload = Btr_workload.Generators.avionics ~n_nodes:6 in
  let topology =
    Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
      ~latency:(Time.us 50)
  in
  spec ~workload ~topology ~f:1 ~recovery_bound:(Time.ms 200)
    ~script:
      [ { Fault.at = Time.ms 250; node = 3; behavior = Fault.Corrupt_outputs } ]
    ~horizon:(Time.sec 1) ~seed ?obs ()

(* The planner config a spec will actually build with. [tune] is an
   opaque closure, so the spec itself cannot serve as a cache key; the
   resolved config can (via Planner.config_key). *)
let resolved_config s =
  s.tune (Planner.default_config ~f:s.f ~recovery_bound:s.recovery_bound)

let plan s =
  let cfg = resolved_config s in
  match Planner.build cfg s.workload s.topology with
  | Error _ as e -> e
  | Ok strategy -> (
    (* Static verification gate (Def. 3.1): an infeasible strategy is
       rejected with diagnostics instead of being silently simulated. *)
    let report = Btr_check.Check.verify ?obs:s.obs strategy in
    match Btr_check.Check.to_planner_error report with
    | None -> Ok strategy
    | Some e -> Error e)

let prepare s =
  match plan s with
  | Error e -> Error e
  | Ok strategy ->
    let config = { Runtime.default_config with seed = s.seed } in
    Ok
      (Runtime.create ~config ~behaviors:s.behaviors ~script:s.script
         ?obs:s.obs ~strategy ())

let run s =
  match prepare s with
  | Error e -> Error e
  | Ok rt ->
    Runtime.run rt ~horizon:s.horizon;
    Ok rt
