(** Output-correctness accounting.

    BTR is defined over the system's outputs (Definition 3.1), so the
    metrics track, for every original sink flow and every period,
    whether the output that reached the physical world was correct,
    wrong, missing, late, or intentionally shed by the current mode.
    From that timeline the experiments derive measured recovery times
    (per injected fault), the total incorrect-output time (the §3
    [k·R] bound), and deadline statistics. *)

open Btr_util
module Graph = Btr_workload.Graph

type status = Correct | Wrong | Missing | Late | Shed

val status_char : status -> char
(** [C W M L S] — compact timelines in logs and tests. *)

val status_name : status -> string
(** Lowercase stable name ([correct], [wrong], …) used in telemetry. *)

type t

val create : ?obs:Btr_obs.Obs.t -> ?protected_flows:int list -> Graph.t -> t
(** Takes the original workload; follows all its sink flows.
    [protected_flows] (default: all sink flows) are the outputs the
    strategy actually replicates and detects on; the BTR guarantee —
    and hence {!incorrect_time} and {!recovery_times} — is stated over
    those, while per-flow timelines cover everything. [obs] (default
    null) receives [Fault_injected]/[Delivery]/[Shed]/[Verdict] events
    and the per-status [runtime.verdicts.*] counters, incremented once
    per (flow, period) on first judgment. *)

val record_injection : t -> at:Time.t -> node:int -> what:string -> unit

val record_delivery :
  t -> orig_flow:int -> period:int -> value:float array -> arrived:Time.t -> lane:int -> unit
(** What the sink actually acted on this period. *)

val record_shed : t -> orig_flow:int -> period:int -> unit
(** The sink's current mode deliberately does not produce this output. *)

val finalize_period : t -> golden:Golden.t -> period:int -> unit
(** Judge period [period]; call once per period after it ends. *)

val periods_finalized : t -> int
val status : t -> orig_flow:int -> period:int -> status option
val timeline : t -> orig_flow:int -> status list
val lanes_used : t -> orig_flow:int -> (int * int) list
(** (lane, times used) for delivered periods — shows fallback in action. *)

val injections : t -> (Time.t * int * string) list

val counts : t -> orig_flow:int -> (status * int) list

val correct_fraction : t -> float
(** Correct / (all non-shed) across all sink flows. *)

val protected_flows : t -> int list

val incorrect_time : t -> Time.t
(** Total simulated time covered by periods in which at least one
    non-shed {e protected} sink output was not Correct. The §3
    adversary can push this up to [k·R]. *)

val recovery_times : t -> Time.t list
(** For each injected fault: time from the injection until the start of
    the first period from which every non-shed output stays Correct
    until the next injection (or the horizon). 0 when outputs were
    never disturbed. *)

val deadline_miss_fraction : t -> float
(** (Late + Missing) / (all non-shed). *)

val pp_summary : Format.formatter -> t -> unit
