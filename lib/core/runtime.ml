open Btr_util
module Engine = Btr_sim.Engine
module Auth = Btr_crypto.Auth
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Schedule = Btr_sched.Schedule
module Topology = Btr_net.Topology
module Net = Btr_net.Net
module Planner = Btr_planner.Planner
module Augment = Btr_planner.Augment
module Evidence = Btr_evidence.Evidence
module Authlog = Btr_evidence.Authlog
module Detect = Btr_detect.Detect
module Modeswitch = Btr_modeswitch.Modeswitch
module Fault = Btr_fault.Fault
module Obs = Btr_obs.Obs

type config = {
  seed : int;
  state_wait_boundaries : int;
  forged_evidence_threshold : int;
  residual_loss : float;
      (* per-hop loss probability surviving FEC; the paper assumes ~0 *)
  omission_strikes : int;
      (* missing messages per path before the watchdog declares it *)
}

let default_config =
  {
    seed = 1;
    state_wait_boundaries = 3;
    forged_evidence_threshold = 3;
    residual_loss = 0.0;
    omission_strikes = 1;
  }

type msg =
  | Data of { flow : int; period : int; value : float array; digest : int64 }
  | Nack of { flow : int; period : int }
      (* "I ran but had no input to compute from": satisfies the
         consumer's watchdog so that suspicion stays at the first hop
         where a message actually went missing, instead of cascading
         down the dataflow and framing starved-but-correct nodes. *)
  | Ack of { orig_task : Task.id; lane : int; period : int; digest : int64 }
  | Ev of Evidence.record
  | State of { task : Task.id }

type entry = { value : float array; digest : int64; arrived : Time.t; from : int }

type node = {
  id : int;
  secret : Auth.secret;
  mutable plan : Planner.plan;
  mutable pending : Planner.plan option;
  mutable pending_waited : int;
  mutable awaiting_state : Task.id list;
  state_received : (Task.id, unit) Hashtbl.t;
  inbox : (int * int, entry) Hashtbl.t;
  acks : (Task.id * int * int, int64 list ref) Hashtbl.t;
  watchdog : Detect.Watchdog.t;
  attribution : Detect.Attribution.t;
  fault_set : Modeswitch.Fault_set.t;
  dist : Evidence.Distributor.t;
  invalid_by_src : (int, int) Hashtbl.t;
  accused_forgers : (int, unit) Hashtbl.t;
  authlog : Authlog.t;
  mutable checkpoints : Authlog.checkpoint list;
  mutable byz : Fault.behavior option;
  mutable staged_at : Time.t;
      (* when the pending plan was staged; measures §4.4 switch latency *)
  mutable running : bool;
  mutable plan_since : int;
      (* first period index executed under the current plan; guards
         cross-period checks against flow-id collisions across plans *)
  mutable grace_until : Time.t;
      (* suppress path declarations right after a mode change, while
         peers may still be transitioning (the tolerated §4.4 confusion) *)
}

type t = {
  config : config;
  eng : Engine.t;
  obs : Obs.t;
  auth : Auth.t;
  net : msg Net.t;
  strategy : Planner.t;
  topo : Topology.t;
  period_len : Time.t;
  behaviors : Behavior.table;
  golden : Golden.t;
  metrics : Metrics.t;
  nodes : (int, node) Hashtbl.t;
  script : Fault.script;
  actuators :
    (int, period:int -> value:float array -> at:Time.t -> unit) Hashtbl.t;
  mutable rev_mode_changes : (Time.t * int * int list) list;
  mutable total_periods : int;
  mutable started : bool;
}

let metrics t = t.metrics
let golden t = t.golden
let engine t = t.eng
let obs t = t.obs
let net_stats t = Net.stats t.net
let strategy t = t.strategy

let node_of t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Runtime: unknown node %d" id)

let node_fault_nodes t id = Modeswitch.Fault_set.nodes (node_of t id).fault_set
let node_mode t id = (node_of t id).plan.Planner.faulty
let evidence_seen t id = Evidence.Distributor.seen (node_of t id).dist
let mode_changes t = List.rev t.rev_mode_changes

let node_log t id =
  let n = node_of t id in
  (n.authlog, List.rev n.checkpoints)

let auth t = t.auth

let control_bytes t =
  List.fold_left
    (fun acc n -> acc + Net.bytes_sent_by t.net n Net.Control)
    0
    (Topology.nodes t.topo)

let on_actuate t ~orig_flow fn = Hashtbl.replace t.actuators orig_flow fn

(* ------------------------------------------------------------------ *)
(* Creation                                                             *)

let create ?(config = default_config) ?(behaviors = []) ?(script = []) ?obs
    ~strategy () =
  let eng = Engine.create ~seed:config.seed ?obs () in
  let obs = Engine.obs eng in
  let auth = Auth.create () in
  let topo = Planner.topology strategy in
  let shares = (Planner.config strategy).Planner.shares in
  let net = Net.create eng topo ?shares ~residual_loss:config.residual_loss () in
  let workload = Planner.workload strategy in
  let table = Behavior.table workload ~overrides:behaviors in
  let initial = Planner.initial_plan strategy in
  let f = (Planner.config strategy).Planner.f in
  (* A tenth of a period on top of the configured margin absorbs
     per-link queueing that the schedule's queueing-free transfer
     estimates do not model, so correct-but-contended messages are
     never declared late. *)
  let margin =
    Time.add
      (Planner.config strategy).Planner.detection_margin
      (Time.div (Graph.period (Planner.workload strategy)) 10)
  in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.replace nodes id
        {
          id;
          secret = Auth.gen_key auth ~owner:id;
          plan = initial;
          pending = None;
          pending_waited = 0;
          awaiting_state = [];
          state_received = Hashtbl.create 8;
          inbox = Hashtbl.create 256;
          acks = Hashtbl.create 64;
          watchdog =
            Detect.Watchdog.create ~node:id ~margin
              ~strikes:config.omission_strikes ~obs ();
          attribution =
            Detect.Attribution.create
              ~window:(max 2 (2 * config.omission_strikes))
              ~threshold:(f + 1) ();
          fault_set = Modeswitch.Fault_set.create ();
          dist = Evidence.Distributor.create ~node:id ~obs ();
          invalid_by_src = Hashtbl.create 4;
          accused_forgers = Hashtbl.create 4;
          authlog = Authlog.create ~owner:id;
          checkpoints = [];
          byz = None;
          staged_at = Time.zero;
          running = true;
          plan_since = 0;
          grace_until = Time.zero;
        })
    (Topology.nodes topo);
  {
    config;
    eng;
    obs;
    auth;
    net;
    strategy;
    topo;
    period_len = Graph.period workload;
    behaviors = table;
    golden = Golden.create workload table;
    metrics =
      (let level = (Planner.config strategy).Planner.protect_level in
       let protected_flows =
         List.filter_map
           (fun (fl : Graph.flow) ->
             let producer = Graph.task workload fl.producer in
             if Task.compare_criticality producer.Task.criticality level >= 0
             then Some fl.flow_id
             else None)
           (Graph.sink_flows workload)
       in
       Metrics.create ~obs ~protected_flows workload);
    nodes;
    script;
    actuators = Hashtbl.create 8;
    rev_mode_changes = [];
    total_periods = 0;
    started = false;
  }

(* ------------------------------------------------------------------ *)
(* Helpers on plans                                                     *)

let assignment_node plan tid = Planner.assignment_of plan tid

let flow_in_plan (plan : Planner.plan) fid =
  match Graph.flow plan.Planner.aug.Augment.graph fid with
  | f -> Some f
  | exception Invalid_argument _ -> None

(* The correct nodes' union of attributed faults; routing steers around
   them once evidence has spread (§4.4: the new plan avoids them). *)
let refresh_route_avoid t =
  let avoid = Hashtbl.create 8 in
  Table.sorted_iter ~cmp:Int.compare
    (fun _ n ->
      if n.byz = None then
        List.iter
          (fun x -> Hashtbl.replace avoid x ())
          (Modeswitch.Fault_set.nodes n.fault_set))
    t.nodes;
  Net.set_route_avoid t.net (Table.sorted_keys ~cmp:Int.compare avoid)

(* ------------------------------------------------------------------ *)
(* Evidence pipeline                                                    *)

(* Flood a record to every other node over the reserved control class.
   Unicast-to-all plus hop-wise re-flooding at receivers implements the
   validate-endorse-forward scheme of §4.3; [already_sent] bounds it. *)
let flood_record t (n : node) r =
  if n.running then
    List.iter
      (fun dst ->
        if dst <> n.id && not (Evidence.Distributor.already_sent n.dist r ~dst)
        then
          ignore
            (Net.send t.net ~src:n.id ~dst ~cls:Net.Control
               ~size_bytes:(Evidence.size_bytes r) (Ev r)))
      (Topology.nodes t.topo)

(* Consult the strategy for the plan matching the node's fault set and
   stage a transition to it (§4.4). State for migrating tasks is
   requested by the old hosts (they run the same deterministic logic);
   activation happens at a period boundary. *)
let maybe_switch_mode t (n : node) =
  let target_faulty =
    Modeswitch.Fault_set.target n.fault_set ~f:(Planner.config t.strategy).Planner.f
  in
  let current_key = n.plan.Planner.faulty in
  let staged_key =
    match n.pending with Some p -> p.Planner.faulty | None -> current_key
  in
  if target_faulty <> current_key && target_faulty <> staged_key then
    match Planner.plan_for t.strategy ~faulty:target_faulty with
    | None -> () (* beyond the f bound: keep the best plan we have *)
    | Some next ->
      let actions = Modeswitch.diff ~node:n.id ~from_plan:n.plan ~to_plan:next in
      let awaiting = ref [] in
      List.iter
        (fun action ->
          match action with
          | Modeswitch.Stop _ -> () (* implicit: next plan has no slot *)
          | Modeswitch.Start_fresh _ -> ()
          | Modeswitch.Start_after_state { task; from_node; bytes = _ } ->
            if not (Hashtbl.mem n.state_received task) then begin
              awaiting := task :: !awaiting;
              ignore from_node
            end
          | Modeswitch.Send_state { task; to_node; bytes } ->
            if n.running then
              ignore
                (Net.send t.net ~src:n.id ~dst:to_node ~cls:Net.Control
                   ~size_bytes:bytes (State { task })))
        actions;
      n.pending <- Some next;
      n.pending_waited <- 0;
      n.awaiting_state <- !awaiting;
      n.staged_at <- Engine.now t.eng;
      if Obs.enabled t.obs then
        Obs.emit t.obs ~at:(Engine.now t.eng) ~node:n.id Obs.Modeswitch
          (Obs.Mode_staged { faulty = next.Planner.faulty })

(* Apply a fresh, valid statement to the local fault view. Node
   accusations extend the fault set directly. Omission declarations
   carry the non-detector endpoint as the suspected sender: they feed
   attribution (threshold = f+1 distinct counterparties) and also make
   the path actionable on its own, so [Fault_set.target] can evict a
   sender that omits toward fewer than f+1 watchers. Sub-threshold
   suspicions feed corroboration only; timing declarations feed
   attribution but never drive eviction by themselves (a delayed
   message needs no workaround — it arrived). *)
let apply_statement t (n : node) (s : Evidence.statement) =
  if Detect.path_statement_admissible s then begin
    let changed = ref false in
    (match s.accused with
    | Evidence.Node x ->
      if Modeswitch.Fault_set.add_node n.fault_set x then changed := true
    | Evidence.Path (a, b) -> (
      let suspect = if s.Evidence.detector = a then b else a in
      match s.Evidence.fault_class with
      | Evidence.Omission_suspected -> (
        match
          Detect.Attribution.note_suspicion n.attribution ~sender:suspect
            ~watcher:s.Evidence.detector ~period:s.Evidence.period
        with
        | [] -> ()
        | watchers ->
          Obs.Counter.incr
            (Obs.Registry.counter (Obs.registry t.obs) Obs.Detect "corroborations");
          if Obs.enabled t.obs then
            Obs.emit t.obs ~at:(Engine.now t.eng) ~node:n.id Obs.Detect
              (Obs.Corroborated
                 { sender = suspect; watchers = List.length watchers });
          (* The corroborated sender is cut off from each corroborating
             watcher: materialize those paths (suspect = sender) so the
             cover in [Fault_set.target] can act on them. Attribution is
             deliberately NOT fed here — each individual observation is
             still explainable by residual link loss, so framing the
             sender as a faulty *node* would be unsound; eviction via
             path cover is a workaround, and a wrong one self-heals. *)
          List.iter
            (fun w ->
              if w <> suspect then
                if
                  Modeswitch.Fault_set.add_path ~suspect n.fault_set (suspect, w)
                then changed := true)
            watchers)
      | Evidence.Omission ->
        if Modeswitch.Fault_set.add_path ~suspect n.fault_set (a, b) then
          changed := true;
        List.iter
          (fun x ->
            if Modeswitch.Fault_set.add_node n.fault_set x then changed := true)
          (Detect.Attribution.note_path n.attribution ~a ~b)
      | Evidence.Wrong_value | Evidence.Timing | Evidence.Equivocation
      | Evidence.Forged_evidence ->
        ignore (Modeswitch.Fault_set.add_path n.fault_set (a, b));
        List.iter
          (fun x ->
            if Modeswitch.Fault_set.add_node n.fault_set x then changed := true)
          (Detect.Attribution.note_path n.attribution ~a ~b)));
    if !changed then begin
      refresh_route_avoid t;
      maybe_switch_mode t n
    end
  end

(* A node emitting its own evidence: sign (paying the signing cost),
   apply locally, flood. *)
let emit_evidence t (n : node) (s : Evidence.statement) =
  if n.running then begin
    let r = Evidence.sign t.auth n.secret s in
    if Obs.enabled t.obs then
      Obs.emit t.obs ~at:(Engine.now t.eng) ~node:n.id Obs.Evidence
        (Obs.Evidence_emitted
           {
             accused = Evidence.accused_name s.Evidence.accused;
             fault_class =
               Format.asprintf "%a" Evidence.pp_fault_class
                 s.Evidence.fault_class;
             period = s.Evidence.period;
           });
    ignore
      (Engine.schedule_in t.eng ~delay:(Auth.sign_cost t.auth) (fun _ ->
           match
             Evidence.Distributor.admit ~now:(Engine.now t.eng) n.dist t.auth r
           with
           | Evidence.Distributor.Fresh ->
             apply_statement t n s;
             flood_record t n r
           | Evidence.Distributor.Duplicate | Evidence.Distributor.Invalid -> ()))
  end

let statement t (n : node) ~accused ~fault_class ~period ~detail =
  {
    Evidence.accused;
    fault_class;
    detector = n.id;
    period;
    detected_at = Engine.now t.eng;
    detail;
  }

(* Received evidence: validate (paying the verification cost), then
   apply and endorse-forward if fresh. Invalid records are counted
   against the network-level sender (the MAC identifies it), and a
   persistent forger is itself accused — §4.3's defense against
   bogus-evidence floods. *)
let receive_evidence t (n : node) ~src r =
  match Evidence.Distributor.admit ~now:(Engine.now t.eng) n.dist t.auth r with
  | Evidence.Distributor.Fresh ->
    apply_statement t n r.Evidence.statement;
    flood_record t n r
  | Evidence.Distributor.Duplicate -> ()
  | Evidence.Distributor.Invalid ->
    let count =
      1 + Option.value ~default:0 (Hashtbl.find_opt n.invalid_by_src src)
    in
    Hashtbl.replace n.invalid_by_src src count;
    if
      count >= t.config.forged_evidence_threshold
      && not (Hashtbl.mem n.accused_forgers src)
    then begin
      Hashtbl.replace n.accused_forgers src ();
      emit_evidence t n
        (statement t n ~accused:(Evidence.Node src)
           ~fault_class:Evidence.Forged_evidence
           ~period:(Engine.now t.eng / t.period_len)
           ~detail:(Printf.sprintf "%d invalid records" count))
    end

(* ------------------------------------------------------------------ *)
(* Task execution                                                       *)

let mutate_value v = Array.map (fun x -> x +. 1009.0) v

(* What actually leaves the node on a given flow, given its Byzantine
   behaviour: [None] = suppressed, otherwise (value, extra delay). The
   digest flow to the checker is special-cased for equivocation. *)
let byz_outgoing (n : node) ~to_checker ~dst value =
  match n.byz with
  | None -> Some (value, Time.zero)
  | Some Fault.Crash -> None
  | Some Fault.Omit_outputs -> None
  | Some (Fault.Omit_to targets) ->
    if List.mem dst targets then None else Some (value, Time.zero)
  | Some (Fault.Delay_outputs d) -> Some (value, d)
  | Some Fault.Corrupt_outputs -> Some (mutate_value value, Time.zero)
  | Some Fault.Equivocate ->
    (* Clean story for the checker, garbage for the consumers. *)
    if to_checker then Some (value, Time.zero)
    else Some (mutate_value value, Time.zero)
  | Some (Fault.Babble _) -> Some (value, Time.zero)

(* Collect this task's inputs for the period. An unreplicated consumer
   of a replicated producer receives one copy per lane; semantically
   those are the same original flow, so keep only the lowest live lane
   (same fallback rule the sinks use) — a behaviour must see exactly one
   input per original flow, like the golden executor does. *)
let gather_inputs (n : node) plan tid period =
  let aug = plan.Planner.aug in
  let present =
    List.filter_map
      (fun (fl : Graph.flow) ->
        match Hashtbl.find_opt n.inbox (fl.flow_id, period) with
        | None -> None
        | Some e -> (
          match Augment.orig_flow_of aug fl.flow_id with
          | Some (orig_flow, lane) -> Some (lane, orig_flow, fl, e)
          | None -> None))
      (Graph.producers_of aug.Augment.graph tid)
  in
  let best = Hashtbl.create 8 in
  List.iter
    (fun (lane, orig_flow, fl, e) ->
      match Hashtbl.find_opt best orig_flow with
      | Some (l, _, _) when l <= lane -> ()
      | _ -> Hashtbl.replace best orig_flow (lane, fl, e))
    present;
  Table.sorted_fold ~cmp:Int.compare
    (fun orig_flow (_, fl, e) acc ->
      (fl, e, { Behavior.orig_flow; value = e.value }) :: acc)
    best []

(* Send one data message; payload digests let checkers and consumers
   cross-validate without re-sending full values. *)
let send_data t (n : node) ~flow ~period ~dst_node ~size ~to_checker value =
  match byz_outgoing n ~to_checker ~dst:dst_node value with
  | None -> ()
  | Some (v, extra) ->
    let digest = Behavior.value_digest v in
    Authlog.append n.authlog (Authlog.Sent { flow; period; digest });
    let send _ =
      ignore
        (Net.send t.net ~src:n.id ~dst:dst_node ~cls:Net.Data ~size_bytes:size
           (Data { flow; period; value = v; digest }))
    in
    if Time.equal extra Time.zero then send t.eng
    else ignore (Engine.schedule_in t.eng ~delay:extra send)

(* Acknowledge a received input to the producer's checker so that
   equivocation (clean digest to the checker, garbage to consumers)
   is detectable. *)
let send_ack t (n : node) plan ~producer_aug ~period (e : entry) =
  let aug = plan.Planner.aug in
  let orig = Augment.orig_of aug producer_aug in
  if Augment.is_protected aug orig then
    match Augment.checker_of aug orig with
    | None -> ()
    | Some checker_tid -> (
      match assignment_node plan checker_tid with
      | Some checker_node ->
        ignore
          (Net.send t.net ~src:n.id ~dst:checker_node ~cls:Net.Control
             ~size_bytes:48
             (Ack
                {
                  orig_task = orig;
                  lane = Augment.lane_of aug producer_aug;
                  period;
                  digest = e.digest;
                }))
      | None -> ())

let run_compute_task t (n : node) plan tid period =
  let aug = plan.Planner.aug in
  let g = aug.Augment.graph in
  let task = Graph.task g tid in
  let gathered = gather_inputs n plan tid period in
  let inputs = List.map (fun (_, _, i) -> i) gathered in
  (* Cross-report received inputs to the producers' checkers. *)
  List.iter
    (fun ((fl : Graph.flow), e, _) ->
      send_ack t n plan ~producer_aug:fl.producer ~period e)
    gathered;
  let orig = Augment.orig_of aug tid in
  let behavior = Behavior.find t.behaviors orig in
  (* A lane missing any of its expected original input flows abstains
     rather than computing from partial inputs: a partial result would
     be *wrong* yet match the checker's replay of the same partial
     inbox, poisoning the lane undetectably. Abstention sends Nacks, so
     downstream watchdogs stay quiet and suspicion stays pinned at the
     first hop; the sink falls back to an intact sibling lane. *)
  let missing_required =
    task.Task.kind = Task.Compute
    &&
    let required =
      List.sort_uniq Int.compare
        (List.filter_map
           (fun (fl : Graph.flow) ->
             match assignment_node plan fl.producer with
             | Some _ -> Option.map fst (Augment.orig_flow_of aug fl.flow_id)
             | None -> None)
           (Graph.producers_of g tid))
    in
    let got =
      List.sort_uniq Int.compare
        (List.filter_map
           (fun ((fl : Graph.flow), _, _) ->
             Option.map fst (Augment.orig_flow_of aug fl.flow_id))
           gathered)
    in
    List.length got < List.length required
  in
  let output =
    if task.Task.kind = Task.Source then behavior ~period ~inputs
    else if inputs = [] && Graph.producers_of g tid <> [] then None
    else if missing_required then None
    else behavior ~period ~inputs
  in
  let send_nacks () =
    if byz_outgoing n ~to_checker:false ~dst:(-1) [||] <> None then
      List.iter
        (fun (fl : Graph.flow) ->
          match assignment_node plan fl.consumer with
          | None -> ()
          | Some dst_node ->
            ignore
              (Net.send t.net ~src:n.id ~dst:dst_node ~cls:Net.Data
                 ~size_bytes:16
                 (Nack { flow = fl.flow_id; period })))
        (Graph.consumers_of g tid)
  in
  match output with
  | None -> send_nacks ()
  | Some value ->
    Authlog.append n.authlog
      (Authlog.Executed
         { task = tid; period; output_digest = Behavior.value_digest value });
    (* Physical sources define the reference inputs: record what was
       actually emitted (after any Byzantine mutation of this node). *)
    (if task.Task.kind = Task.Source then
       match byz_outgoing n ~to_checker:false ~dst:(-1) value with
       | Some (v, _) -> Golden.note_source t.golden ~task:orig ~period v
       | None -> ());
    List.iter
      (fun (fl : Graph.flow) ->
        match assignment_node plan fl.consumer with
        | None -> ()
        | Some dst_node ->
          let to_checker =
            match Augment.role_of aug fl.consumer with
            | Augment.Checker _ -> true
            | Augment.Original | Augment.Replica _ | Augment.Guard _ -> false
          in
          send_data t n ~flow:fl.flow_id ~period ~dst_node ~size:fl.msg_size
            ~to_checker value)
      (Graph.consumers_of g tid)

(* Checker (§4.2): replay each lane's output from the inputs that lane
   actually received (carried alongside the digest in a real system;
   read from the lane's inbox in the simulation) and accuse on
   mismatch. Also compare last period's consumer acknowledgements
   against the digest the lane claimed, to catch equivocation. *)
let run_checker t (n : node) plan tid period =
  let aug = plan.Planner.aug in
  let g = aug.Augment.graph in
  let orig = Augment.orig_of aug tid in
  let behavior = Behavior.find t.behaviors orig in
  let lanes = Augment.replicas_of aug orig in
  List.iter
    (fun lane_tid ->
      let lane = Augment.lane_of aug lane_tid in
      match assignment_node plan lane_tid with
      | None -> ()
      | Some lane_node -> (
        (* The digest flow from this lane to us. *)
        let digest_flow =
          List.find_opt
            (fun (fl : Graph.flow) -> fl.producer = lane_tid)
            (Graph.producers_of g tid)
        in
        match digest_flow with
        | None -> ()
        | Some fl -> (
          (match Hashtbl.find_opt n.inbox (fl.flow_id, period) with
          | None -> () (* the watchdog reports the omission *)
          | Some claimed -> (
            match Hashtbl.find_opt t.nodes lane_node with
            | None -> ()
            | Some lane_host ->
              let lane_entries =
                List.filter_map
                  (fun (lf : Graph.flow) ->
                    match Hashtbl.find_opt lane_host.inbox (lf.flow_id, period) with
                    | Some e -> (
                      match Augment.orig_flow_of aug lf.flow_id with
                      | Some (orig_flow, _) -> Some (orig_flow, e.value)
                      | None -> None)
                    | None -> None)
                  (Graph.producers_of g lane_tid)
              in
              let lane_inputs =
                List.map
                  (fun (orig_flow, value) -> { Behavior.orig_flow; value })
                  lane_entries
              in
              (* Mirror of the lane's abstention rule: replay must
                 predict silence exactly when the lane was entitled to
                 abstain, so a lane that *computed* from partial inputs
                 is caught (expected = None, it sent anyway) and an
                 abstaining lane is not accused. *)
              let lane_missing_required =
                let lane_required =
                  List.sort_uniq Int.compare
                    (List.filter_map
                       (fun (lf : Graph.flow) ->
                         match assignment_node plan lf.producer with
                         | Some _ ->
                           Option.map fst (Augment.orig_flow_of aug lf.flow_id)
                         | None -> None)
                       (Graph.producers_of g lane_tid))
                in
                let lane_got =
                  List.sort_uniq Int.compare (List.map fst lane_entries)
                in
                List.length lane_got < List.length lane_required
              in
              let expected =
                if
                  (Graph.task g lane_tid).Task.kind = Task.Compute
                  && ((lane_inputs = [] && Graph.producers_of g lane_tid <> [])
                     || lane_missing_required)
                then None
                else behavior ~period ~inputs:lane_inputs
              in
              let ok =
                match expected with
                | None -> false (* it sent although replay says silence *)
                | Some v ->
                  Int64.equal (Behavior.value_digest v) claimed.digest
              in
              if Obs.enabled t.obs then
                Obs.emit t.obs ~at:(Engine.now t.eng) ~node:n.id Obs.Detect
                  (Obs.Checker_replay { task = orig; lane; period; ok });
              if not ok then
                emit_evidence t n
                  (statement t n ~accused:(Evidence.Node lane_node)
                     ~fault_class:Evidence.Wrong_value ~period
                     ~detail:
                       (Printf.sprintf "task %d lane %d replay mismatch" orig lane))));
          (* Equivocation check for the previous period — only when that
             period already ran under the current plan, so the digest
             flow id means the same thing it meant then. *)
          if period > 0 && period - 1 >= n.plan_since then
            let prev = period - 1 in
            match Hashtbl.find_opt n.inbox (fl.flow_id, prev) with
            | None -> ()
            | Some claimed -> (
              match Hashtbl.find_opt n.acks (orig, lane, prev) with
              | None -> ()
              | Some digests ->
                if List.exists (fun d -> not (Int64.equal d claimed.digest)) !digests
                then
                  emit_evidence t n
                    (statement t n ~accused:(Evidence.Node lane_node)
                       ~fault_class:Evidence.Equivocation ~period:prev
                       ~detail:
                         (Printf.sprintf "task %d lane %d equivocated" orig lane))))))
    lanes

(* The sink acts on the primary lane's value, or the lowest live backup
   lane (§1: use some replicas without waiting for the others). *)
let run_sink t (n : node) plan tid period =
  let aug = plan.Planner.aug in
  let g = aug.Augment.graph in
  (* Group this sink's incoming flows by original flow. *)
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (fl : Graph.flow) ->
      match Augment.orig_flow_of aug fl.flow_id with
      | Some (orig_flow, lane) ->
        let l =
          match Hashtbl.find_opt groups orig_flow with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace groups orig_flow l;
            l
        in
        l := (lane, fl) :: !l
      | None -> ())
    (Graph.producers_of g tid);
  (* Every original sink flow of the full workload that this sink owns
     but the current mode does not carry has been shed (or lost). *)
  List.iter
    (fun (fl : Graph.flow) ->
      if fl.consumer = Augment.orig_of aug tid && not (Hashtbl.mem groups fl.flow_id)
      then Metrics.record_shed t.metrics ~orig_flow:fl.flow_id ~period)
    (Graph.sink_flows (Planner.workload t.strategy));
  Table.sorted_iter ~cmp:Int.compare
    (fun orig_flow lanes ->
      let candidates =
        List.sort (fun (a, _) (b, _) -> Int.compare a b) !lanes
      in
      let chosen =
        List.find_map
          (fun (lane, (fl : Graph.flow)) ->
            match Hashtbl.find_opt n.inbox (fl.flow_id, period) with
            | Some e ->
              send_ack t n plan ~producer_aug:fl.producer ~period e;
              Some (lane, e)
            | None -> None)
          candidates
      in
      match chosen with
      | None -> ()
      | Some (lane, e) ->
        Metrics.record_delivery t.metrics ~orig_flow ~period ~value:e.value
          ~arrived:e.arrived ~lane;
        (match Hashtbl.find_opt t.actuators orig_flow with
        | Some act -> act ~period ~value:e.value ~at:(Engine.now t.eng)
        | None -> ()))
    groups

let role_name = function
  | Augment.Original -> "original"
  | Augment.Replica _ -> "replica"
  | Augment.Checker _ -> "checker"
  | Augment.Guard _ -> "guard"

let exec_task t (n : node) plan tid period =
  if n.running && n.plan == plan then begin
    let role = Augment.role_of plan.Planner.aug tid in
    if Obs.enabled t.obs then
      Obs.emit t.obs ~at:(Engine.now t.eng) ~node:n.id Obs.Runtime
        (Obs.Lane_exec
           {
             task = Augment.orig_of plan.Planner.aug tid;
             period;
             role = role_name role;
           });
    match role with
    | Augment.Guard _ -> ()
    | Augment.Checker _ -> run_checker t n plan tid period
    | Augment.Original | Augment.Replica _ ->
      let task = Graph.task plan.Planner.aug.Augment.graph tid in
      if task.Task.kind = Task.Sink then run_sink t n plan tid period
      else run_compute_task t n plan tid period
  end

(* ------------------------------------------------------------------ *)
(* Message reception                                                    *)

(* Accept a data message only if the current schedule says [src] is the
   one to send that flow; during a transition senders briefly disagree,
   which is the §4.4 "confusion" BTR tolerates. *)
let data_admissible (n : node) ~src ~flow =
  match flow_in_plan n.plan flow with
  | None -> false
  | Some fl -> (
    match assignment_node n.plan fl.producer with
    | Some expected -> expected = src
    | None -> false)

let on_receive t (n : node) (r : msg Net.recv) =
  if n.running then
    match r.Net.payload with
    | Data { flow; period; value; digest } ->
      if data_admissible n ~src:r.Net.src ~flow then begin
        if not (Hashtbl.mem n.inbox (flow, period)) then begin
          Hashtbl.replace n.inbox (flow, period)
            { value; digest; arrived = r.Net.delivered_at; from = r.Net.src };
          Authlog.append n.authlog
            (Authlog.Received { flow; period; digest; from_node = r.Net.src })
        end;
        match
          Detect.Watchdog.note_arrival n.watchdog ~flow ~period
            ~at:r.Net.delivered_at
        with
        | None -> ()
        | Some late ->
          (* One declaration per path suffices; attribution is set-based
             and re-flooding the same suspicion wastes control bandwidth. *)
          if
            Time.compare (Engine.now t.eng) n.grace_until >= 0
            && not
                 (Modeswitch.Fault_set.mem_path n.fault_set
                    (late.Detect.Watchdog.from_node, n.id))
          then
            emit_evidence t n
              (statement t n
                 ~accused:(Evidence.path late.Detect.Watchdog.from_node n.id)
                 ~fault_class:Evidence.Timing ~period
                 ~detail:
                   (Printf.sprintf "flow %d late by %s" flow
                      (Time.to_string late.Detect.Watchdog.lateness)))
      end
    | Nack { flow; period } ->
      ignore
        (Detect.Watchdog.note_arrival n.watchdog ~flow ~period
           ~at:r.Net.delivered_at)
    | Ack { orig_task; lane; period; digest } ->
      let key = (orig_task, lane, period) in
      let l =
        match Hashtbl.find_opt n.acks key with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace n.acks key l;
          l
      in
      l := digest :: !l
    | Ev record ->
      (* Validation costs CPU; the guard task's reservation covers it,
         and the latency is modelled here. *)
      ignore
        (Engine.schedule_in t.eng ~delay:(Auth.verify_cost t.auth) (fun _ ->
             if n.running then receive_evidence t n ~src:r.Net.src record))
    | State { task } -> Hashtbl.replace n.state_received task ()

(* ------------------------------------------------------------------ *)
(* Period boundaries                                                    *)

let install_expectations t (n : node) period =
  let plan = n.plan in
  let aug = plan.Planner.aug in
  let base = Time.mul t.period_len period in
  List.iter
    (fun (fl : Graph.flow) ->
      match assignment_node plan fl.consumer, assignment_node plan fl.producer with
      | Some cn, Some pn when cn = n.id && pn <> n.id -> (
        match Schedule.window plan.Planner.schedule fl.consumer with
        | Some (start, _) ->
          Detect.Watchdog.expect n.watchdog ~flow:fl.flow_id ~period
            ~from_node:pn ~deadline:(Time.add base start)
        | None -> ())
      | _ -> ())
    (Graph.flows aug.Augment.graph)

let install_slots t (n : node) period =
  let plan = n.plan in
  let base = Time.mul t.period_len period in
  List.iter
    (fun (s : Schedule.slot) ->
      ignore
        (Engine.schedule t.eng ~at:(Time.add base s.finish) (fun _ ->
             exec_task t n plan s.task period)))
    (Schedule.slots_on plan.Planner.schedule n.id)

let sweep_watchdog t (n : node) =
  let misses = Detect.Watchdog.sweep n.watchdog ~now:(Engine.now t.eng) in
  let suspected_this_sweep = Hashtbl.create 4 in
  List.iter
    (fun (m : Detect.Watchdog.miss) ->
      let from_node = m.Detect.Watchdog.miss_from in
      if
        Time.compare (Engine.now t.eng) n.grace_until >= 0
        && not (Modeswitch.Fault_set.mem_path n.fault_set (from_node, n.id))
      then
        if m.Detect.Watchdog.declared then
          emit_evidence t n
            (statement t n
               ~accused:(Evidence.path from_node n.id)
               ~fault_class:Evidence.Omission ~period:m.Detect.Watchdog.miss_period
               ~detail:
                 (Printf.sprintf "flow %d never arrived"
                    m.Detect.Watchdog.miss_flow))
        else if not (Hashtbl.mem suspected_this_sweep from_node) then begin
          (* Sub-threshold account: not enough for a declaration on this
             watcher alone, but f other watchers may be seeing the same
             silence — publish a suspicion for corroboration, once per
             sender per sweep. *)
          Hashtbl.replace suspected_this_sweep from_node ();
          Obs.Counter.incr
            (Obs.Registry.counter (Obs.registry t.obs) Obs.Detect
               "watchdog-suspect");
          if Obs.enabled t.obs then
            Obs.emit t.obs ~at:(Engine.now t.eng) ~node:n.id Obs.Detect
              (Obs.Watchdog_suspect
                 {
                   flow = m.Detect.Watchdog.miss_flow;
                   period = m.Detect.Watchdog.miss_period;
                   from_node;
                   account = m.Detect.Watchdog.account;
                 });
          emit_evidence t n
            (statement t n
               ~accused:(Evidence.path from_node n.id)
               ~fault_class:Evidence.Omission_suspected
               ~period:m.Detect.Watchdog.miss_period
               ~detail:
                 (Printf.sprintf "flow %d missing, strike %d"
                    m.Detect.Watchdog.miss_flow m.Detect.Watchdog.account))
        end)
    misses

let activate_pending t (n : node) =
  match n.pending with
  | None -> ()
  | Some next ->
    let ready =
      List.for_all (Hashtbl.mem n.state_received) n.awaiting_state
      || n.pending_waited >= t.config.state_wait_boundaries
    in
    if ready then begin
      n.plan <- next;
      n.pending <- None;
      n.pending_waited <- 0;
      n.awaiting_state <- [];
      n.plan_since <- Engine.now t.eng / t.period_len;
      n.grace_until <- Time.add (Engine.now t.eng) (Time.mul t.period_len 2);
      t.rev_mode_changes <-
        (Engine.now t.eng, n.id, next.Planner.faulty) :: t.rev_mode_changes;
      if Obs.enabled t.obs then
        Obs.emit t.obs ~at:(Engine.now t.eng) ~node:n.id Obs.Modeswitch
          (Obs.Mode_activated
             {
               faulty = next.Planner.faulty;
               latency = Time.sub (Engine.now t.eng) n.staged_at;
             })
    end
    else n.pending_waited <- n.pending_waited + 1

let babble t (n : node) period =
  match n.byz with
  | Some (Fault.Babble { bogus_per_period }) ->
    for i = 1 to bogus_per_period do
      let bogus =
        {
          Evidence.statement =
            statement t n
              ~accused:(Evidence.Node ((n.id + i) mod Topology.node_count t.topo))
              ~fault_class:Evidence.Wrong_value ~period
              ~detail:"fabricated";
          tag = Auth.forge_tag ();
        }
      in
      List.iter
        (fun dst ->
          if dst <> n.id then
            ignore
              (Net.send t.net ~src:n.id ~dst ~cls:Net.Control
                 ~size_bytes:(Evidence.size_bytes bogus) (Ev bogus)))
        (Topology.nodes t.topo)
    done
  | _ -> ()

(* Outputs the current mode intentionally no longer carries (shed low
   criticality, or endpoints lost with their faulty node) must be
   judged Shed, even when the sink itself is gone and cannot say so.
   The reference is the most-advanced plan among correct nodes. *)
let mark_uncarried_shed t period =
  (* Sorted traversal: ties between equally-advanced plans must break
     the same way every run. *)
  let reference =
    Table.sorted_fold ~cmp:Int.compare
      (fun _ n best ->
        if not n.running then best
        else
          match best with
          | Some b
            when List.length b.Planner.faulty
                 >= List.length n.plan.Planner.faulty ->
            best
          | _ -> Some n.plan)
      t.nodes None
  in
  match reference with
  | None -> ()
  | Some plan ->
    let carried = Hashtbl.create 16 in
    List.iter
      (fun (fid, (orig, _lane)) ->
        ignore fid;
        Hashtbl.replace carried orig ())
      plan.Planner.aug.Augment.flow_origin;
    List.iter
      (fun (fl : Graph.flow) ->
        if not (Hashtbl.mem carried fl.flow_id) then
          Metrics.record_shed t.metrics ~orig_flow:fl.flow_id ~period)
      (Graph.sink_flows (Planner.workload t.strategy))

let boundary t period =
  (* Node order here fixes the order of watchdog sweeps, plan
     activations and checkpoint signing — all trace-visible. *)
  Table.sorted_iter ~cmp:Int.compare
    (fun _ n -> if n.running then sweep_watchdog t n)
    t.nodes;
  (* Judge the finished period under the plans that actually governed
     it, before anyone activates a pending plan for the next one. *)
  if period > 0 then begin
    mark_uncarried_shed t (period - 1);
    Metrics.finalize_period t.metrics ~golden:t.golden ~period:(period - 1)
  end;
  Table.sorted_iter ~cmp:Int.compare
    (fun _ n -> if n.running then activate_pending t n)
    t.nodes;
  if period < t.total_periods then
    Table.sorted_iter ~cmp:Int.compare
      (fun _ n ->
        if n.running then begin
          (* Commit the log before entering the new period: the guard
             task's CPU reservation covers checkpoint signing (§4.1). *)
          n.checkpoints <- Authlog.checkpoint n.authlog t.auth n.secret :: n.checkpoints;
          install_expectations t n period;
          install_slots t n period;
          babble t n period
        end)
      t.nodes

(* ------------------------------------------------------------------ *)
(* Fault script and run loop                                            *)

let apply_script_event t (ev : Fault.event) =
  let n = node_of t ev.Fault.node in
  n.byz <- Some ev.Fault.behavior;
  if ev.Fault.behavior = Fault.Crash then n.running <- false;
  (* A compromised node also controls its relaying of transit traffic
     (multi-hop topologies): silence and delays apply there too. *)
  (match ev.Fault.behavior with
  | Fault.Crash | Fault.Omit_outputs ->
    Net.set_relay_policy t.net n.id (fun ~src:_ ~dst:_ ~cls:_ -> false)
  | Fault.Omit_to targets ->
    Net.set_relay_policy t.net n.id (fun ~src:_ ~dst ~cls:_ ->
        not (List.mem dst targets))
  | Fault.Delay_outputs d -> Net.set_relay_delay t.net n.id d
  | Fault.Corrupt_outputs | Fault.Equivocate | Fault.Babble _ -> ());
  Metrics.record_injection t.metrics ~at:(Engine.now t.eng) ~node:ev.Fault.node
    ~what:(Fault.behavior_name ev.Fault.behavior)

let run t ~horizon =
  if t.started then invalid_arg "Runtime.run: already ran";
  t.started <- true;
  t.total_periods <- horizon / t.period_len;
  Table.sorted_iter ~cmp:Int.compare
    (fun id n -> Net.set_handler t.net id (on_receive t n))
    t.nodes;
  List.iter
    (fun (ev : Fault.event) ->
      ignore (Engine.schedule t.eng ~at:ev.Fault.at (fun _ -> apply_script_event t ev)))
    t.script;
  for p = 0 to t.total_periods do
    ignore
      (Engine.schedule t.eng ~at:(Time.mul t.period_len p) (fun _ -> boundary t p))
  done;
  Engine.run ~until:horizon t.eng
