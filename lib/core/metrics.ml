open Btr_util
module Graph = Btr_workload.Graph
module Obs = Btr_obs.Obs

type status = Correct | Wrong | Missing | Late | Shed

let status_char = function
  | Correct -> 'C'
  | Wrong -> 'W'
  | Missing -> 'M'
  | Late -> 'L'
  | Shed -> 'S'

let status_name = function
  | Correct -> "correct"
  | Wrong -> "wrong"
  | Missing -> "missing"
  | Late -> "late"
  | Shed -> "shed"

type delivery = { value : float array; arrived : Time.t; lane : int }

type t = {
  graph : Graph.t;
  period_len : Time.t;
  sink_flows : Graph.flow list;
  protected_ids : int list;
  obs : Obs.t;
  verdict_counters : Obs.Counter.t array;  (* indexed like [status] *)
  deliveries : (int * int, delivery) Hashtbl.t;
  shed : (int * int, unit) Hashtbl.t;
  statuses : (int * int, status) Hashtbl.t;
  mutable finalized : int;
  mutable rev_injections : (Time.t * int * string) list;
}

let status_index = function
  | Correct -> 0
  | Wrong -> 1
  | Missing -> 2
  | Late -> 3
  | Shed -> 4

let create ?(obs = Obs.null) ?protected_flows graph =
  let sink_flows = Graph.sink_flows graph in
  let protected_ids =
    match protected_flows with
    | Some l -> l
    | None -> List.map (fun (f : Graph.flow) -> f.flow_id) sink_flows
  in
  let reg = Obs.registry obs in
  {
    graph;
    period_len = Graph.period graph;
    sink_flows;
    protected_ids;
    obs;
    verdict_counters =
      Array.map
        (fun s -> Obs.Registry.counter reg Obs.Runtime ("verdicts." ^ s))
        [| "correct"; "wrong"; "missing"; "late"; "shed" |];
    deliveries = Hashtbl.create 256;
    shed = Hashtbl.create 64;
    statuses = Hashtbl.create 256;
    finalized = 0;
    rev_injections = [];
  }

let record_injection t ~at ~node ~what =
  t.rev_injections <- (at, node, what) :: t.rev_injections;
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at ~node Obs.Fault (Obs.Fault_injected { behavior = what })

let record_delivery t ~orig_flow ~period ~value ~arrived ~lane =
  if not (Hashtbl.mem t.deliveries (orig_flow, period)) then begin
    Hashtbl.replace t.deliveries (orig_flow, period) { value; arrived; lane };
    if Obs.enabled t.obs then
      Obs.emit t.obs ~at:arrived Obs.Runtime
        (Obs.Delivery { flow = orig_flow; period; lane })
  end

let record_shed t ~orig_flow ~period =
  if (not (Hashtbl.mem t.shed (orig_flow, period))) && Obs.enabled t.obs then
    Obs.emit t.obs
      ~at:(Time.mul t.period_len (period + 1))
      Obs.Runtime
      (Obs.Shed { flow = orig_flow; period });
  Hashtbl.replace t.shed (orig_flow, period) ()

let judge t golden (f : Graph.flow) period =
  if Hashtbl.mem t.shed (f.flow_id, period) then Shed
  else begin
    let expected = Golden.flow_value golden ~flow:f.flow_id ~period in
    let delivered = Hashtbl.find_opt t.deliveries (f.flow_id, period) in
    match expected, delivered with
    | None, None -> Correct (* nothing was due, nothing was acted on *)
    | None, Some _ -> Wrong (* acted on a value no correct system produces *)
    | Some _, None -> Missing
    | Some v, Some d ->
      if not (Behavior.equal_value v d.value) then Wrong
      else begin
        let on_time =
          match f.deadline with
          | None -> true
          | Some dl ->
            let due = Time.add (Time.mul t.period_len period) dl in
            Time.compare d.arrived due <= 0
        in
        if on_time then Correct else Late
      end
  end

let finalize_period t ~golden ~period =
  let verdict_at = Time.mul t.period_len (period + 1) in
  List.iter
    (fun (f : Graph.flow) ->
      let s = judge t golden f period in
      (* A period is judged once; guard against double-counting if a
         caller re-finalizes. *)
      if not (Hashtbl.mem t.statuses (f.flow_id, period)) then begin
        Obs.Counter.incr t.verdict_counters.(status_index s);
        if Obs.enabled t.obs then
          Obs.emit t.obs ~at:verdict_at Obs.Runtime
            (Obs.Verdict
               { flow = f.flow_id; period; status = status_name s })
      end;
      Hashtbl.replace t.statuses (f.flow_id, period) s)
    t.sink_flows;
  if period >= t.finalized then t.finalized <- period + 1

let periods_finalized t = t.finalized
let status t ~orig_flow ~period = Hashtbl.find_opt t.statuses (orig_flow, period)

let timeline t ~orig_flow =
  List.init t.finalized (fun p ->
      Option.value ~default:Missing (status t ~orig_flow ~period:p))

let cmp_flow_period (f1, p1) (f2, p2) =
  match Int.compare f1 f2 with 0 -> Int.compare p1 p2 | c -> c

let lanes_used t ~orig_flow =
  let acc = Hashtbl.create 4 in
  Table.sorted_iter ~cmp:cmp_flow_period
    (fun (fl, _) d ->
      if fl = orig_flow then
        Hashtbl.replace acc d.lane
          (1 + Option.value ~default:0 (Hashtbl.find_opt acc d.lane)))
    t.deliveries;
  Table.sorted_bindings ~cmp:Int.compare acc

let injections t = List.rev t.rev_injections

let counts t ~orig_flow =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace tally s (1 + Option.value ~default:0 (Hashtbl.find_opt tally s)))
    (timeline t ~orig_flow);
  Table.sorted_bindings
    ~cmp:(fun a b -> Int.compare (status_index a) (status_index b))
    tally

let fold_statuses t fn init =
  List.fold_left
    (fun acc (f : Graph.flow) ->
      List.fold_left
        (fun acc p ->
          match status t ~orig_flow:f.flow_id ~period:p with
          | Some s -> fn acc s
          | None -> acc)
        acc
        (List.init t.finalized Fun.id))
    init t.sink_flows

let correct_fraction t =
  let correct, total =
    fold_statuses t
      (fun (c, n) s ->
        match s with
        | Shed -> (c, n)
        | Correct -> (c + 1, n + 1)
        | Wrong | Missing | Late -> (c, n + 1))
      (0, 0)
  in
  if total = 0 then 1.0 else float_of_int correct /. float_of_int total

let deadline_miss_fraction t =
  let missed, total =
    fold_statuses t
      (fun (m, n) s ->
        match s with
        | Shed -> (m, n)
        | Missing | Late -> (m + 1, n + 1)
        | Correct | Wrong -> (m, n + 1))
      (0, 0)
  in
  if total = 0 then 0.0 else float_of_int missed /. float_of_int total

let protected_flows t = t.protected_ids

(* A period is "bad" when any non-shed protected output is not Correct.
   Unprotected (below protect-level) outputs have no replicas and no
   checkers, so BTR makes no recovery promise about them. *)
let bad_period t p =
  List.exists
    (fun (f : Graph.flow) ->
      List.mem f.flow_id t.protected_ids
      &&
      match status t ~orig_flow:f.flow_id ~period:p with
      | Some (Wrong | Missing | Late) -> true
      | Some (Correct | Shed) | None -> false)
    t.sink_flows

let incorrect_time t =
  let bad = List.filter (bad_period t) (List.init t.finalized Fun.id) in
  Time.mul t.period_len (List.length bad)

let recovery_times t =
  let horizon = Time.mul t.period_len t.finalized in
  let injs = injections t in
  let windows =
    List.mapi
      (fun i (at, _, _) ->
        let upto =
          match List.nth_opt injs (i + 1) with Some (b, _, _) -> b | None -> horizon
        in
        (at, upto))
      injs
  in
  List.map
    (fun (at, upto) ->
      let first_period = at / t.period_len in
      let last_period = Stdlib.min (t.finalized - 1) ((upto - 1) / t.period_len) in
      let rec last_bad p acc =
        if p > last_period then acc
        else last_bad (p + 1) (if bad_period t p then Some p else acc)
      in
      match last_bad first_period None with
      | None -> Time.zero
      | Some p -> Time.sub (Time.mul t.period_len (p + 1)) at)
    windows

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>outputs: %d sink flows x %d periods, correct %.1f%%, deadline-miss %.1f%%, incorrect time %a@,"
    (List.length t.sink_flows) t.finalized
    (100.0 *. correct_fraction t)
    (100.0 *. deadline_miss_fraction t)
    Time.pp (incorrect_time t);
  List.iter
    (fun (f : Graph.flow) ->
      let line =
        String.init (Stdlib.min 80 t.finalized) (fun p ->
            status_char
              (Option.value ~default:Missing
                 (status t ~orig_flow:f.flow_id ~period:p)))
      in
      Format.fprintf ppf "  flow %d: %s@," f.flow_id line)
    t.sink_flows;
  Format.fprintf ppf "@]"
