(** The BTR runtime: a strategy deployed on the simulated CPS.

    Each node executes the static schedule of its current plan,
    exchanging signed task outputs over the reserved-bandwidth network.
    The four §4 components run exactly as sketched:

    - {b fault detector}: replica checkers replay outputs against the
      signed inputs each lane presented; per-node watchdogs turn the
      static schedule into arrival windows and report omissions (as
      path declarations) and timing faults; consumers cross-report
      received-value digests to checkers so equivocation between a
      replica's data and its digest is caught; invalid evidence is
      counted against its signer.
    - {b evidence distributor}: fresh valid evidence is signed,
      validated hop by hop, deduplicated and flooded on the control
      class, whose bandwidth is statically reserved.
    - {b mode switcher}: every node keeps an append-only fault set;
      valid evidence grows it; the strategy maps the grown set to the
      next plan; transitions stop/start/migrate tasks and take effect
      at period boundaries, waiting (boundedly) for migrated state.

    All outputs reaching the actuator sinks are judged against the
    {!Golden} executor in {!Metrics}. The whole run is deterministic in
    the seed. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault
module Net = Btr_net.Net
module Topology = Btr_net.Topology

type config = {
  seed : int;
  state_wait_boundaries : int;
      (** period boundaries to wait for migrating state before starting
          the task fresh anyway *)
  forged_evidence_threshold : int;
      (** invalid records from one signer before accusing it *)
  residual_loss : float;
      (** per-hop message-loss probability surviving FEC; the paper's
          model assumes this is negligible (§2.1) *)
  omission_strikes : int;
      (** missing messages a path must accumulate before the watchdog
          declares it problematic; raise above 1 to tolerate residual
          loss at the price of slower omission detection *)
}

val default_config : config
(** seed 1, wait 3 boundaries, accuse forgers after 3 invalid records,
    no residual loss, declare on the first missing message. *)

type t

val create :
  ?config:config ->
  ?behaviors:(Task.id * Behavior.fn) list ->
  ?script:Fault.script ->
  ?obs:Btr_obs.Obs.t ->
  strategy:Planner.t ->
  unit ->
  t
(** Builds engine, network, keys, nodes (all starting in the fault-free
    plan) and schedules the fault script. [behaviors] override the
    default synthetic behaviours of the original workload. [obs]
    (default: a fresh null-sink context) is threaded through every
    layer — engine, network, watchdogs, evidence distributors, metrics —
    and receives the full event stream when a recording sink is
    attached; its registry carries the counters either way. *)

val obs : t -> Btr_obs.Obs.t
(** The observability context every layer of this runtime reports to. *)

val on_actuate :
  t -> orig_flow:int -> (period:int -> value:float array -> at:Time.t -> unit) -> unit
(** Called when the sink acts on a value for the given original sink
    flow (plant examples hook actuators here). *)

val run : t -> horizon:Time.t -> unit
(** Runs whole periods until the last period boundary <= horizon, then
    finalizes metrics. Can be called once. *)

val metrics : t -> Metrics.t
val golden : t -> Golden.t
val engine : t -> Btr_sim.Engine.t
val net_stats : t -> Net.stats
val strategy : t -> Planner.t

val node_fault_nodes : t -> int -> int list
(** The (attributed) fault set a node currently believes, sorted. *)

val node_mode : t -> int -> int list
(** The fault pattern of the plan the node is currently executing. *)

val evidence_seen : t -> int -> Btr_evidence.Evidence.record list
val mode_changes : t -> (Time.t * int * int list) list
(** (when, node, new mode) for every plan switch that happened. *)

val control_bytes : t -> int
(** Total bytes sent on the control class (evidence + state + acks). *)

val node_log : t -> int -> Btr_evidence.Authlog.t * Btr_evidence.Authlog.checkpoint list
(** The node's tamper-evident commitment log and the checkpoints it
    signed at each period boundary (oldest first); auditable with
    {!Btr_evidence.Authlog.audit}. *)

val auth : t -> Btr_crypto.Auth.t
(** The deployment's key authority, for verifying logs and evidence. *)
