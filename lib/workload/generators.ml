open Btr_util

(* A tiny builder DSL keeps the canned workloads readable. *)
module B = struct
  type t = {
    mutable tasks : Task.t list;
    mutable flows : Graph.flow list;
    mutable next_task : int;
    mutable next_flow : int;
  }

  let create () = { tasks = []; flows = []; next_task = 0; next_flow = 0 }

  let task b ~name ?kind ~wcet ?criticality ?state_size ?pinned () =
    let id = b.next_task in
    b.next_task <- id + 1;
    let t = Task.make ~id ~name ?kind ~wcet ?criticality ?state_size ?pinned () in
    b.tasks <- t :: b.tasks;
    id

  let flow b ~from_task ~to_task ~msg_size ?deadline () =
    let id = b.next_flow in
    b.next_flow <- id + 1;
    b.flows <-
      {
        Graph.flow_id = id;
        producer = from_task;
        consumer = to_task;
        msg_size;
        deadline;
      }
      :: b.flows

  let finish b ~period =
    Graph.create ~period ~tasks:(List.rev b.tasks) ~flows:(List.rev b.flows)
end

let avionics ~n_nodes =
  if n_nodes < 4 then invalid_arg "Generators.avionics: need >= 4 nodes";
  let b = B.create () in
  let ms = Time.ms and us = Time.us in
  (* Flight control: sensors on nodes 0 and 1, actuator on node 2. *)
  let pitot =
    B.task b ~name:"pitot-sensor" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:0 ()
  in
  let imu =
    B.task b ~name:"imu-sensor" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:1 ()
  in
  let estimator =
    B.task b ~name:"state-estimator" ~wcet:(ms 2)
      ~criticality:Task.Safety_critical ~state_size:4_096 ()
  in
  let control_law =
    B.task b ~name:"control-law" ~wcet:(ms 2) ~criticality:Task.Safety_critical
      ~state_size:2_048 ()
  in
  let elevator =
    B.task b ~name:"elevator-actuator" ~kind:Task.Sink ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:2 ()
  in
  B.flow b ~from_task:pitot ~to_task:estimator ~msg_size:64 ();
  B.flow b ~from_task:imu ~to_task:estimator ~msg_size:128 ();
  B.flow b ~from_task:estimator ~to_task:control_law ~msg_size:128 ();
  B.flow b ~from_task:control_law ~to_task:elevator ~msg_size:64
    ~deadline:(ms 15) ();
  (* Engine monitoring: high criticality. *)
  let egt =
    B.task b ~name:"egt-sensor" ~kind:Task.Source ~wcet:(us 100)
      ~criticality:Task.High ~pinned:3 ()
  in
  let engine_monitor =
    B.task b ~name:"engine-monitor" ~wcet:(ms 1) ~criticality:Task.High
      ~state_size:1_024 ()
  in
  let alarm =
    B.task b ~name:"engine-alarm" ~kind:Task.Sink ~wcet:(us 100)
      ~criticality:Task.High ~pinned:2 ()
  in
  B.flow b ~from_task:egt ~to_task:engine_monitor ~msg_size:64 ();
  B.flow b ~from_task:engine_monitor ~to_task:alarm ~msg_size:32
    ~deadline:(ms 18) ();
  (* Navigation / display: medium. *)
  let gps =
    B.task b ~name:"gps-receiver" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.Medium ~pinned:(Stdlib.min 3 (n_nodes - 1)) ()
  in
  let nav =
    B.task b ~name:"nav-fusion" ~wcet:(ms 1) ~criticality:Task.Medium
      ~state_size:2_048 ()
  in
  let display =
    B.task b ~name:"pfd-display" ~kind:Task.Sink ~wcet:(us 300)
      ~criticality:Task.Medium ~pinned:0 ()
  in
  B.flow b ~from_task:gps ~to_task:nav ~msg_size:256 ();
  B.flow b ~from_task:estimator ~to_task:nav ~msg_size:128 ();
  B.flow b ~from_task:nav ~to_task:display ~msg_size:512 ~deadline:(ms 20) ();
  (* In-flight entertainment: best effort, heavy, sheddable. *)
  let media_src =
    B.task b ~name:"ife-media-source" ~kind:Task.Source ~wcet:(us 300)
      ~criticality:Task.Best_effort ~pinned:(n_nodes - 1) ()
  in
  let transcode =
    B.task b ~name:"ife-transcode" ~wcet:(ms 4) ~criticality:Task.Best_effort
      ~state_size:16_384 ()
  in
  let cabin =
    B.task b ~name:"ife-cabin-screens" ~kind:Task.Sink ~wcet:(us 300)
      ~criticality:Task.Best_effort ~pinned:(n_nodes - 1) ()
  in
  B.flow b ~from_task:media_src ~to_task:transcode ~msg_size:4_096 ();
  B.flow b ~from_task:transcode ~to_task:cabin ~msg_size:4_096 ~deadline:(ms 20) ();
  B.finish b ~period:(ms 20)

let scada ~n_nodes =
  if n_nodes < 3 then invalid_arg "Generators.scada: need >= 3 nodes";
  let b = B.create () in
  let ms = Time.ms and us = Time.us in
  let pressure =
    B.task b ~name:"pressure-sensor" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:0 ()
  in
  let temp =
    B.task b ~name:"temperature-sensor" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.High ~pinned:1 ()
  in
  let plc =
    B.task b ~name:"plc-logic" ~wcet:(ms 3) ~criticality:Task.Safety_critical
      ~state_size:8_192 ()
  in
  let valve =
    B.task b ~name:"relief-valve" ~kind:Task.Sink ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:2 ()
  in
  B.flow b ~from_task:pressure ~to_task:plc ~msg_size:64 ();
  B.flow b ~from_task:temp ~to_task:plc ~msg_size:64 ();
  B.flow b ~from_task:plc ~to_task:valve ~msg_size:32 ~deadline:(ms 200) ();
  let trend =
    B.task b ~name:"trend-logger" ~wcet:(ms 2) ~criticality:Task.Low
      ~state_size:32_768 ()
  in
  let historian =
    B.task b ~name:"historian" ~kind:Task.Sink ~wcet:(us 300)
      ~criticality:Task.Low ~pinned:(n_nodes - 1) ()
  in
  B.flow b ~from_task:plc ~to_task:trend ~msg_size:256 ();
  B.flow b ~from_task:trend ~to_task:historian ~msg_size:1_024 ~deadline:(ms 500) ();
  let hmi =
    B.task b ~name:"hmi-render" ~wcet:(ms 2) ~criticality:Task.Best_effort
      ~state_size:4_096 ()
  in
  let console =
    B.task b ~name:"operator-console" ~kind:Task.Sink ~wcet:(us 300)
      ~criticality:Task.Best_effort ~pinned:(n_nodes - 1) ()
  in
  B.flow b ~from_task:plc ~to_task:hmi ~msg_size:512 ();
  B.flow b ~from_task:hmi ~to_task:console ~msg_size:2_048 ~deadline:(ms 500) ();
  B.finish b ~period:(ms 50)

let random_layered ~rng ~n_nodes ~layers ~width ?(period = Time.ms 20)
    ?utilization_target () =
  if layers < 1 || width < 1 then
    invalid_arg "Generators.random_layered: layers and width must be >= 1";
  let target =
    match utilization_target with
    | Some u -> u
    | None -> 0.5 *. float_of_int n_nodes
  in
  let b = B.create () in
  let crit () =
    Task.criticality_of_rank (Rng.int rng 5)
  in
  let n_sources = 1 + Rng.int rng 2 in
  let sources =
    List.init n_sources (fun i ->
        B.task b
          ~name:(Printf.sprintf "src%d" i)
          ~kind:Task.Source ~wcet:(Time.us 100) ~criticality:Task.High
          ~pinned:(i mod n_nodes) ())
  in
  (* Layers of compute tasks; wcet placeholder 1ms, rescaled below via a
     second pass that rebuilds the graph. *)
  let layer_tasks =
    List.init layers (fun l ->
        let w = 1 + Rng.int rng width in
        List.init w (fun i ->
            B.task b
              ~name:(Printf.sprintf "c%d_%d" l i)
              ~wcet:(Time.ms 1) ~criticality:(crit ())
              ~state_size:(256 * (1 + Rng.int rng 16))
              ()))
  in
  let n_sinks = 1 + Rng.int rng 2 in
  let sinks =
    List.init n_sinks (fun i ->
        B.task b
          ~name:(Printf.sprintf "sink%d" i)
          ~kind:Task.Sink ~wcet:(Time.us 100) ~criticality:Task.High
          ~pinned:((i + 1) mod n_nodes) ())
  in
  let connect_layer producers consumers =
    (* Every producer feeds 1–2 consumers; every consumer gets >= 1 input. *)
    List.iter
      (fun p ->
        let fanout = 1 + Rng.int rng 2 in
        let targets = Rng.sample rng fanout consumers in
        List.iter
          (fun c ->
            B.flow b ~from_task:p ~to_task:c
              ~msg_size:(32 * (1 + Rng.int rng 32))
              ())
          targets)
      producers;
    List.iter
      (fun c ->
        if
          not
            (List.exists
               (fun f -> f.Graph.consumer = c && List.mem f.Graph.producer producers)
               b.B.flows)
        then
          B.flow b
            ~from_task:(Rng.pick_list rng producers)
            ~to_task:c
            ~msg_size:(32 * (1 + Rng.int rng 32))
            ())
      consumers
  in
  let rec wire prev = function
    | [] -> prev
    | layer :: rest ->
      connect_layer prev layer;
      wire layer rest
  in
  let last = wire sources layer_tasks in
  (* Sink flows get deadlines inside the period. *)
  List.iter
    (fun s ->
      let p = Rng.pick_list rng last in
      B.flow b ~from_task:p ~to_task:s
        ~msg_size:(32 * (1 + Rng.int rng 8))
        ~deadline:(Time.div (Time.mul period 3) 4)
        ())
    sinks;
  (* Last-layer tasks the sinks did not pick still need an output. *)
  List.iter
    (fun p ->
      if not (List.exists (fun f -> f.Graph.producer = p) b.B.flows) then
        B.flow b ~from_task:p
          ~to_task:(Rng.pick_list rng sinks)
          ~msg_size:(32 * (1 + Rng.int rng 8))
          ~deadline:(Time.div (Time.mul period 3) 4)
          ())
    last;
  let g = B.finish b ~period in
  (* Rescale compute WCETs to hit the utilization target. *)
  let u = Graph.utilization g in
  let scale = target /. u in
  let tasks' =
    List.map
      (fun (t : Task.t) ->
        if t.kind = Task.Compute then
          {
            t with
            Task.wcet =
              Stdlib.max 10
                (int_of_float (float_of_int t.Task.wcet *. scale));
          }
        else t)
      (Graph.tasks g)
  in
  Graph.create ~period ~tasks:tasks' ~flows:(Graph.flows g)

let fleet ~n_nodes =
  if n_nodes < 4 then invalid_arg "Generators.fleet: need >= 4 nodes";
  let b = B.create () in
  let ms = Time.ms and us = Time.us in
  (* Per vehicle: a pinned telemetry source feeding a pinned local
     aggregator. Low criticality, node-local flow — the bulk traffic
     that makes the graph scale with the fleet. *)
  for i = 0 to n_nodes - 1 do
    let src =
      B.task b
        ~name:(Printf.sprintf "telemetry-%d" i)
        ~kind:Task.Source ~wcet:(us 100) ~criticality:Task.Low ~pinned:i ()
    in
    let agg =
      B.task b
        ~name:(Printf.sprintf "aggregate-%d" i)
        ~kind:Task.Sink ~wcet:(us 100) ~criticality:Task.Low ~pinned:i ()
    in
    B.flow b ~from_task:src ~to_task:agg ~msg_size:64 ()
  done;
  (* A fixed handful of fleet-wide control pipelines: pinned sensor →
     migratable controller → pinned actuator, protected criticality so
     the planner replicates the controllers and the verifier audits
     their omission cuts. *)
  for j = 0 to 3 do
    let src_node = j mod n_nodes and act_node = (j + 1) mod n_nodes in
    let sensor =
      B.task b
        ~name:(Printf.sprintf "hazard-sensor-%d" j)
        ~kind:Task.Source ~wcet:(us 200) ~criticality:Task.High
        ~pinned:src_node ()
    in
    let controller =
      B.task b
        ~name:(Printf.sprintf "fleet-controller-%d" j)
        ~wcet:(us 600) ~criticality:Task.High ~state_size:2_048 ()
    in
    let actuator =
      B.task b
        ~name:(Printf.sprintf "fleet-actuator-%d" j)
        ~kind:Task.Sink ~wcet:(us 200) ~criticality:Task.High
        ~pinned:act_node ()
    in
    B.flow b ~from_task:sensor ~to_task:controller ~msg_size:128 ();
    B.flow b ~from_task:controller ~to_task:actuator ~msg_size:64
      ~deadline:(ms 15) ()
  done;
  B.finish b ~period:(ms 20)
