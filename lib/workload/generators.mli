(** Canned and randomized workloads.

    The avionics and SCADA workloads instantiate the two motivating
    scenarios in the paper's introduction and §2 case study; the random
    layered generator feeds property tests and the planner-scaling
    experiment (E7). *)

open Btr_util

val avionics : n_nodes:int -> Graph.t
(** Mixed-criticality flight-deck workload on [n_nodes] >= 4 nodes:
    - safety-critical flight-control loop: two redundant sensors →
      state estimator → control law → elevator actuator, 20ms period,
      tight sink deadlines;
    - high-criticality engine monitor → alarms;
    - medium navigation/display chain;
    - best-effort in-flight entertainment tasks (the paper's example of
      work to shed under faults).
    Sources/sinks are pinned across the first nodes. *)

val scada : n_nodes:int -> Graph.t
(** Pressure-vessel control (paper §2 "when a sensor indicates a
    pressure increase … the system may need to respond within seconds by
    opening a safety valve"): pressure sensor → PLC logic → relief-valve
    actuator at [Safety_critical]; trend logger and HMI at lower
    criticality. Period 50ms; valve flow deadline 200ms. *)

val random_layered :
  rng:Rng.t ->
  n_nodes:int ->
  layers:int ->
  width:int ->
  ?period:Time.t ->
  ?utilization_target:float ->
  unit ->
  Graph.t
(** A layered DAG: [layers] layers of up to [width] compute tasks
    between one source layer and one sink layer; each task feeds 1–2
    tasks of the next layer. WCETs are scaled so total utilization is
    roughly [utilization_target] (default 0.5 per node at n_nodes).
    Criticalities are drawn uniformly. Deterministic in [rng]. *)

val fleet : n_nodes:int -> Graph.t
(** Fleet-scale workload for the planner/verifier scaling bench (E7):
    one pinned telemetry→aggregator pair per vehicle (Low criticality,
    node-local flow) plus four protected control pipelines — pinned
    hazard sensor → migratable controller (High, replicated by the
    planner) → pinned actuator with a 15ms sink deadline. Task and flow
    counts grow linearly in [n_nodes]; cross-node traffic stays
    constant, so verification cost is dominated by per-mode analysis
    rather than by the workload encoding. Period 20ms. *)
