open Btr_util

type flow = {
  flow_id : int;
  producer : Task.id;
  consumer : Task.id;
  msg_size : int;
  deadline : Time.t option;
}

type t = {
  period : Time.t;
  task_list : Task.t list;
  flow_list : flow list;
  by_id : (Task.id, Task.t) Hashtbl.t;
  flow_by_id : (int, flow) Hashtbl.t;
  incoming : (Task.id, flow list) Hashtbl.t;
  outgoing : (Task.id, flow list) Hashtbl.t;
  order : Task.id list;
}

(* Same verdict as the naive pairwise scan, linear so fleet-scale
   graphs (10^4 tasks) validate in milliseconds. *)
let distinct xs =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

let build ~relaxed ~period ~tasks ~flows =
  if period <= 0 then invalid_arg "Graph.create: period <= 0";
  if not (distinct (List.map (fun (t : Task.t) -> t.id) tasks)) then
    invalid_arg "Graph.create: duplicate task ids";
  if not (distinct (List.map (fun f -> f.flow_id) flows)) then
    invalid_arg "Graph.create: duplicate flow ids";
  let by_id = Hashtbl.create 32 in
  List.iter (fun (t : Task.t) -> Hashtbl.replace by_id t.id t) tasks;
  let flow_by_id = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace flow_by_id f.flow_id f) flows;
  let find id =
    match Hashtbl.find_opt by_id id with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Graph.create: flow references unknown task %d" id)
  in
  let incoming = Hashtbl.create 32 and outgoing = Hashtbl.create 32 in
  List.iter
    (fun (t : Task.t) ->
      Hashtbl.replace incoming t.id [];
      Hashtbl.replace outgoing t.id [])
    tasks;
  List.iter
    (fun f ->
      let p = find f.producer and c = find f.consumer in
      if f.msg_size <= 0 then
        invalid_arg (Printf.sprintf "Graph.create: flow %d msg_size <= 0" f.flow_id);
      (match f.deadline with
      | Some d when d <= 0 ->
        invalid_arg (Printf.sprintf "Graph.create: flow %d deadline <= 0" f.flow_id)
      | _ -> ());
      if p.kind = Task.Sink then
        invalid_arg (Printf.sprintf "Graph.create: sink %d produces flow %d" p.id f.flow_id);
      if c.kind = Task.Source then
        invalid_arg
          (Printf.sprintf "Graph.create: source %d consumes flow %d" c.id f.flow_id);
      Hashtbl.replace outgoing p.id (f :: Hashtbl.find outgoing p.id);
      Hashtbl.replace incoming c.id (f :: Hashtbl.find incoming c.id))
    flows;
  let sorted_flows tbl id =
    List.sort (fun a b -> Int.compare a.flow_id b.flow_id) (Hashtbl.find tbl id)
  in
  List.iter
    (fun (t : Task.t) ->
      Hashtbl.replace incoming t.id (sorted_flows incoming t.id);
      Hashtbl.replace outgoing t.id (sorted_flows outgoing t.id))
    tasks;
  if not relaxed then
    List.iter
      (fun (t : Task.t) ->
        match t.kind with
        | Task.Sink ->
          if Hashtbl.find incoming t.id = [] then
            invalid_arg (Printf.sprintf "Graph.create: sink %d has no inputs" t.id)
        | Task.Source | Task.Compute ->
          if Hashtbl.find outgoing t.id = [] then
            invalid_arg
              (Printf.sprintf "Graph.create: non-sink task %d has no outputs" t.id))
      tasks;
  (* Cycle check via Kahn's algorithm; also yields the topo order. *)
  let indeg = Hashtbl.create 32 in
  List.iter
    (fun (t : Task.t) -> Hashtbl.replace indeg t.id (List.length (Hashtbl.find incoming t.id)))
    tasks;
  let ready =
    List.filter_map
      (fun (t : Task.t) -> if Hashtbl.find indeg t.id = 0 then Some t.id else None)
      tasks
  in
  (* FIFO over newly-ready tasks — a Queue gives the exact order the
     old list-append formulation produced, without its O(n²) appends. *)
  let q = Queue.create () in
  List.iter (fun id -> Queue.push id q) ready;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    acc := id :: !acc;
    List.iter
      (fun f ->
        let d = Hashtbl.find indeg f.consumer - 1 in
        Hashtbl.replace indeg f.consumer d;
        if d = 0 then Queue.push f.consumer q)
      (Hashtbl.find outgoing id)
  done;
  let order = List.rev !acc in
  if List.length order <> List.length tasks then
    invalid_arg "Graph.create: dataflow graph has a cycle";
  {
    period;
    task_list = tasks;
    flow_list = flows;
    by_id;
    flow_by_id;
    incoming;
    outgoing;
    order;
  }

let create ~period ~tasks ~flows = build ~relaxed:false ~period ~tasks ~flows
let create_relaxed ~period ~tasks ~flows = build ~relaxed:true ~period ~tasks ~flows

let period t = t.period
let tasks t = t.task_list
let flows t = t.flow_list

let task t id =
  match Hashtbl.find_opt t.by_id id with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Graph.task: unknown task %d" id)

let flow t id =
  match Hashtbl.find_opt t.flow_by_id id with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Graph.flow: unknown flow %d" id)

let task_count t = List.length t.task_list
let producers_of t id = match Hashtbl.find_opt t.incoming id with Some l -> l | None -> []
let consumers_of t id = match Hashtbl.find_opt t.outgoing id with Some l -> l | None -> []
let sources t = List.filter (fun (x : Task.t) -> x.kind = Task.Source) t.task_list
let sinks t = List.filter (fun (x : Task.t) -> x.kind = Task.Sink) t.task_list
let compute_tasks t = List.filter (fun (x : Task.t) -> x.kind = Task.Compute) t.task_list

let topo_order t = t.order

let sink_flows t =
  List.filter (fun f -> (task t f.consumer).Task.kind = Task.Sink) t.flow_list

let utilization t =
  List.fold_left
    (fun acc (x : Task.t) -> acc +. (Time.to_sec_f x.wcet /. Time.to_sec_f t.period))
    0.0 t.task_list

let tasks_at_least t level =
  List.filter
    (fun (x : Task.t) -> Task.compare_criticality x.criticality level >= 0)
    t.task_list

let restrict t ~keep =
  let kept = List.filter keep t.task_list in
  let ids = List.map (fun (x : Task.t) -> x.id) kept in
  let kept_flows =
    List.filter (fun f -> List.mem f.producer ids && List.mem f.consumer ids) t.flow_list
  in
  build ~relaxed:true ~period:t.period ~tasks:kept ~flows:kept_flows

let pp ppf t =
  Format.fprintf ppf "@[<v>workload: period=%a, %d tasks, %d flows, U=%.2f@,"
    Time.pp t.period (task_count t) (List.length t.flow_list) (utilization t);
  List.iter (fun x -> Format.fprintf ppf "  %a@," Task.pp x) t.task_list;
  List.iter
    (fun f ->
      Format.fprintf ppf "  flow %d: %d -> %d, %dB%s@," f.flow_id f.producer
        f.consumer f.msg_size
        (match f.deadline with
        | Some d -> Printf.sprintf ", deadline %s" (Time.to_string d)
        | None -> ""))
    t.flow_list;
  Format.fprintf ppf "@]"
