(** Counterexample shrinking for campaign-discovered bound violations.

    When a fault schedule empirically violates the Definition 3.1 bound,
    the raw schedule is rarely the story: most of its events are noise
    the generator happened to draw alongside the one or two that matter.
    This module minimizes a violating script while preserving the
    violation, greedy-first (the predicate is a full simulation, so
    every candidate costs a run and the budget is explicit):

    + drop whole events — halves first, then one at a time — until no
      single event can be removed (this is also what reduces the number
      of distinct faulty nodes, the adversary's [k]);
    + simplify activation times — move events to t = 0, else round them
      down to [round_to] (callers pass the workload period);
    + shrink behaviour parameters — halve babble rates and delay
      durations, drop targets from selective omissions.

    The result is the fixpoint of those passes (or wherever the run
    budget ran out); every intermediate accepted candidate — and hence
    the result — satisfies [violates]. *)

module Fault = Btr_fault.Fault

val compare_event : Fault.event -> Fault.event -> int
(** Total deterministic order: activation time, then node, then the
    rendered behaviour. Campaign scripts are kept sorted under this so
    serialized schedules are canonical. *)

type result = {
  script : Fault.script;  (** minimized; still satisfies [violates] *)
  runs : int;  (** predicate evaluations spent *)
  initial_events : int;
  removed_events : int;
}

val minimize :
  violates:(Fault.script -> bool) ->
  ?round_to:Btr_util.Time.t ->
  ?max_runs:int ->
  Fault.script ->
  result
(** [minimize ~violates script] assumes [violates script] already holds
    (callers check; the result is meaningless otherwise). [round_to]
    (default: none) enables rounding activation times down to that
    grain. [max_runs] (default 250) caps predicate evaluations; when it
    is 0 the input is returned untouched. *)
