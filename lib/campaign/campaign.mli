(** Multicore fault-injection campaigns: the empirical adversary.

    {!Btr_check.Check} proves the Definition 3.1 obligations offline;
    this module attacks them empirically. A campaign is a declarative
    spec — a parameter {!grid} (workload × topology × nodes × f × R ×
    bandwidth × protect level × control share) crossed with randomized
    fault-schedule generators that draw crash / omission / selective
    omission / delay / corruption / equivocation / babble events from a
    seeded per-trial RNG — compiled into a {!trial} list and executed by
    a pool of OCaml 5 domains claiming chunks of trial indices off one
    atomic counter.

    Determinism is load-bearing: every trial's schedule and runtime seed
    are derived from the campaign seed and the trial index {e at compile
    time}, each trial runs against its own fresh runtime, and all
    telemetry is emitted from the coordinating domain after the pool
    joins — so a campaign's verdict list (and its serialized artifact)
    is byte-identical for any [--jobs] value and any OS scheduling.

    The offline planner is the expensive stage, so strategies are cached
    across the trials that share a configuration, keyed on
    {!Btr_planner.Planner.config_key} of the resolved config (never on
    physical equality of specs — [Scenario.spec.tune] is an opaque
    closure). Any trial that violates the bound — some measured recovery
    exceeds R — is handed to {!Shrink} and reported as a minimal
    schedule plus a self-contained OCaml reproducer snippet. *)

open Btr_util
module Task = Btr_workload.Task
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault

(** {1 Parameter grids} *)

(** One point of the parameter grid: everything the offline phase
    depends on. [control_share] [None] keeps the topology's default
    bandwidth reservations; [Some c] reserves the fraction [c] of each
    link per member for the control (evidence) class, with 35% data —
    the E8 knob that under-provisions evidence distribution. *)
type params = {
  workload : string;  (** [avionics], [scada] or [random] *)
  topology : string;  (** [clique], [ring] or [dual-bus] *)
  nodes : int;
  f : int;
  r : Time.t;  (** requested recovery bound R *)
  bandwidth_bps : int;
  protect : Task.criticality;
  control_share : float option;
}

val default_params : params
(** The avionics demo configuration: avionics / clique / 6 nodes /
    f = 1 / R = 200ms / 10 MB/s / protect Medium / default shares. *)

val pp_params : Format.formatter -> params -> unit

type grid = {
  workloads : string list;
  topologies : string list;
  node_counts : int list;
  fault_bounds : int list;
  recovery_bounds : Time.t list;
  bandwidths : int list;
  protect_levels : Task.criticality list;
  control_shares : float option list;
  classes : string list;
      (** fault classes the schedule generator may draw from (subset of
          {!known_classes}). Not part of the config cross product — it
          restricts behavior generation for every trial. With the full
          default palette the generator keeps its historical weighted
          draw (seeded fixtures stay stable); any restriction switches
          to a uniform draw over the listed classes. *)
}

val known_classes : string list
(** [["crash"; "omit"; "omitto"; "delay"; "corrupt"; "equivocate";
    "babble"]] — the generator's full palette, in draw order. *)

val default_grid : grid
(** Every config axis a singleton of {!default_params}'s value;
    [classes] is {!known_classes}. *)

val grid_params : grid -> params list
(** The cross product, in a deterministic order (axes vary slowest to
    fastest in declaration order). Empty axes yield an empty list. *)

val validate_grid : grid -> (unit, string) result
(** Rejects empty axes, unknown workload/topology/fault-class names,
    and non-positive counts/bounds, so usage errors surface before any
    planning happens. *)

(** {1 Campaign specs and trials} *)

type spec = {
  grid : grid;
  trials : int;
  seed : int;
  shrink : bool;  (** minimize violations (default true) *)
  shrink_budget : int;  (** max predicate runs per violation *)
}

val spec :
  ?grid:grid -> ?trials:int -> ?seed:int -> ?shrink:bool -> ?shrink_budget:int ->
  unit -> spec
(** Defaults: {!default_grid}, 100 trials, seed 1, shrink with a
    150-run budget. *)

(** One executable trial. [runtime_seed] and [script] are pure functions
    of the campaign seed and [index], fixed at compile time. *)
type trial = {
  index : int;
  runtime_seed : int;
  params : params;
  script : Fault.script;
  horizon : Time.t;
}

val compile : spec -> trial list
(** Trials [0 .. trials-1]; trial [i] exercises grid configuration
    [i mod configs] with a schedule drawn from its own RNG — either a
    random batch of ≤ f faulty nodes with 1–2 events each, or a §3-style
    timed sequential attack (a fresh fault roughly every R). Fault
    bounds of 0 compile to fault-free trials. The horizon covers the
    last injection plus R plus settling slack, rounded to a period. *)

val trial_of_index : spec -> int -> trial option
(** [compile]d trial [i], without materializing the rest (replay). *)

(** {1 Running} *)

type run_stats = {
  worst_recovery : Time.t;
  recoveries : Time.t list;  (** one per injected fault, script order *)
  incorrect : Time.t;  (** total incorrect-output time (the k·R metric) *)
  deadline_miss_bp : int;  (** basis points, deterministic *)
  correct_bp : int;
  bytes_sent : int;
  control_bytes : int;
  sim_events : int;
  mode_changes : int;
  periods : int;
}

type outcome =
  | Pass of run_stats
  | Violation of run_stats  (** some measured recovery exceeded R *)
  | Rejected of string
      (** the planner or the static verifier refused the configuration —
          not a bound violation: nothing was deployed *)
  | Errored of string  (** unexpected exception; should not happen *)

val outcome_name : outcome -> string
(** ["pass"] / ["violation"] / ["rejected"] / ["error"]. *)

val violates : outcome -> bool

type verdict = { trial : trial; outcome : outcome }

type shrunk_violation = {
  source : trial;
  script : Fault.script;  (** minimized, canonically sorted *)
  stats : run_stats;  (** from replaying the minimized schedule *)
  shrink_runs : int;
  snippet : string;  (** self-contained OCaml reproducer *)
}

type result = {
  spec : spec;
  configs : int;
  jobs : int;
  verdicts : verdict list;  (** trial order *)
  violations : shrunk_violation list;  (** trial order *)
  cache_hits : int;
  cache_misses : int;
}

val plan_key : ?strikes:int -> seed:int -> params -> string
(** The strategy-cache key: workload/topology identity, node count,
    bandwidth, the workload-generator seed and
    {!Planner.config_key} of the resolved config. Equal keys mean the
    planner would build the identical strategy. [strikes] overrides the
    runtime omission-strike threshold (part of the admission answer, so
    part of the key); [None] keeps the historical key bytes. *)

(** The strategy cache. Keyed on the workload/topology identity plus
    {!Planner.config_key} of the resolved planner config; shared by the
    worker domains, sharded by the {!Btr_util.Fnv} hash of the key into
    16 independently locked hash-table buckets, so lookups are O(1) and
    workers only contend when their keys collide on a shard. Hit/miss
    counters live per shard, are bumped under the shard lock and are
    summed under the locks on read — exact at any moment, even
    mid-campaign. A cached [Error] (planner rejection) is a hit like
    any other — hundreds of trials on an infeasible configuration plan
    it exactly once. *)
module Cache : sig
  type t

  val create : seed:int -> t
  (** [seed] fixes the workload-generator stream ([random] workloads),
      which is part of the cache key's identity. *)

  val strategy : ?strikes:int -> t -> params -> (Planner.t, string) Stdlib.result
  (** [strikes] plans and admits under a non-default omission-strike
      threshold (a distinct cache key — the frontier's strikes axis). *)

  val hits : t -> int
  val misses : t -> int

  val derived : t -> int
  (** Strategies served by O(1) R-derivation: the requested config
      differed from an already-planned one only in [recovery_bound], so
      the cached base was retuned with
      {!Planner.with_recovery_bound} and re-admitted through the static
      verifier instead of being planned from scratch. Grid neighbours
      along the R axis hit this path. Counted as misses by {!misses}
      (the full key was absent); this counter refines them. *)
end

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]. *)

val run_script :
  ?strikes:int ->
  cache:Cache.t -> params -> runtime_seed:int -> Fault.script -> outcome
(** Plan (via the cache), deploy, inject, run to the derived horizon and
    judge. The single-trial path that {!run}, the shrinker's predicate
    and [campaign replay] all share. [strikes] overrides the runtime
    omission-strike threshold end to end (admission and deployment). *)

val shrink_violation :
  cache:Cache.t -> budget:int -> trial -> shrunk_violation option
(** Replays the trial; [None] if it does not actually violate. With
    [budget] 0 the original script is reported unshrunk. *)

val run : ?obs:Btr_obs.Obs.t -> ?jobs:int -> spec -> result
(** Compile, execute on [jobs] worker domains (default {!default_jobs};
    1 runs inline with no spawn), then shrink violations. [obs] (default
    fresh) receives [Campaign_started] / [Trial_verdict] /
    [Violation_shrunk] events and the [campaign.*] counters — all
    emitted post-join from the calling domain, in trial order, so traces
    are identical for every [jobs]. *)

val run_trials : ?obs:Btr_obs.Obs.t -> ?jobs:int -> spec -> trial list -> result
(** {!run} on an explicit trial list instead of [compile spec]: the
    orchestrator's shard and resume paths execute subsets through this.
    Verdicts come back in list order; telemetry (including the
    [campaign.trials] counter) covers exactly the given trials.
    [run spec = run_trials spec (compile spec)]. *)

(** {1 Schedule codec}

    Canonical text form of a fault script, one event as
    [class[.param…]@node@at_us] joined with [;] — e.g.
    [corrupt@3@250000;babble.8@5@0;omitto.1.2@4@40000]. Used in JSON
    artifacts and [campaign replay --script]. *)

val script_to_string : Fault.script -> string
val script_of_string : string -> (Fault.script, string) Stdlib.result
(** Round-trips: [script_of_string (script_to_string s)] returns the
    canonically sorted [s]. *)

(** {1 Artifacts} *)

val verdict_json : verdict -> string
(** One flat JSON object per trial; byte-deterministic. *)

val violation_json : shrunk_violation -> string
(** One flat JSON object per shrunk violation (the artifact's violation
    lines); byte-deterministic. *)

val result_json_lines : result -> string list
(** The campaign artifact: a header line, one line per verdict, one per
    (shrunk) violation, and a summary line carrying the
    {!fingerprint}. *)

val fingerprint : result -> string
(** FNV-1a 64 over the verdict lines, hex — equal iff the verdict lists
    are byte-identical (the [--jobs] invariance check). *)

val render_report : string list -> (string, string) Stdlib.result
(** Parse artifact lines (as written by {!result_json_lines}) and render
    the aggregate report: totals, a per-configuration table and the
    violation schedules. [Error] on malformed input. *)

(** Minimal flat-JSON parser for artifact lines (objects of string /
    int / float / bool fields only — exactly what this module emits). *)
module Flat_json : sig
  type value = Int of int | Float of float | Str of string | Bool of bool

  val parse : string -> ((string * value) list, string) Stdlib.result

  val to_string : (string * value) list -> string
  (** The canonical encoding {!parse} inverts:
      [parse (to_string fields) = Ok fields] and re-encoding is
      byte-identical, for any fields whose floats are finite. Field
      order is preserved. *)
end

val grid_axes : grid -> string
(** The grid-axes summary string artifact headers embed (the ["grid"]
    field) — stable identity of the config cross product, axis values
    comma-joined. *)

val params_fields : params -> (string * Flat_json.value) list
(** The parameter fields exactly as {!verdict_json} embeds them
    ([workload] … [control_share], in order), for artifact writers that
    extend the schema — the orchestrator's frontier slice lines. *)
