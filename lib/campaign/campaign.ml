open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Generators = Btr_workload.Generators
module Topology = Btr_net.Topology
module Net = Btr_net.Net
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault
module Obs = Btr_obs.Obs

(* ------------------------------------------------------------------ *)
(* Parameters and grids                                                *)

type params = {
  workload : string;
  topology : string;
  nodes : int;
  f : int;
  r : Time.t;
  bandwidth_bps : int;
  protect : Task.criticality;
  control_share : float option;
}

let default_params =
  {
    workload = "avionics";
    topology = "clique";
    nodes = 6;
    f = 1;
    r = Time.ms 200;
    bandwidth_bps = 10_000_000;
    protect = Task.Medium;
    control_share = None;
  }

let share_str = function
  | None -> "default"
  | Some c -> Printf.sprintf "%.6f" c

let pp_params ppf p =
  Format.fprintf ppf "%s/%s n=%d f=%d R=%a bw=%d protect=%a share=%s"
    p.workload p.topology p.nodes p.f Time.pp p.r p.bandwidth_bps
    Task.pp_criticality p.protect (share_str p.control_share)

type grid = {
  workloads : string list;
  topologies : string list;
  node_counts : int list;
  fault_bounds : int list;
  recovery_bounds : Time.t list;
  bandwidths : int list;
  protect_levels : Task.criticality list;
  control_shares : float option list;
  classes : string list;
}

let known_classes =
  [ "crash"; "omit"; "omitto"; "delay"; "corrupt"; "equivocate"; "babble" ]

let default_grid =
  {
    workloads = [ default_params.workload ];
    topologies = [ default_params.topology ];
    node_counts = [ default_params.nodes ];
    fault_bounds = [ default_params.f ];
    recovery_bounds = [ default_params.r ];
    bandwidths = [ default_params.bandwidth_bps ];
    protect_levels = [ default_params.protect ];
    control_shares = [ default_params.control_share ];
    classes = known_classes;
  }

let grid_params g =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun topology ->
          List.concat_map
            (fun nodes ->
              List.concat_map
                (fun f ->
                  List.concat_map
                    (fun r ->
                      List.concat_map
                        (fun bandwidth_bps ->
                          List.concat_map
                            (fun protect ->
                              List.map
                                (fun control_share ->
                                  {
                                    workload;
                                    topology;
                                    nodes;
                                    f;
                                    r;
                                    bandwidth_bps;
                                    protect;
                                    control_share;
                                  })
                                g.control_shares)
                            g.protect_levels)
                        g.bandwidths)
                    g.recovery_bounds)
                g.fault_bounds)
            g.node_counts)
        g.topologies)
    g.workloads

let known_workloads = [ "avionics"; "scada"; "random" ]
let known_topologies = [ "clique"; "ring"; "dual-bus" ]

let validate_grid g =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let nonempty name l = if l = [] then err "empty %s axis" name else Ok () in
  let ( let* ) r k = match r with Error _ as e -> e | Ok () -> k () in
  let* () = nonempty "workload" g.workloads in
  let* () = nonempty "topology" g.topologies in
  let* () = nonempty "nodes" g.node_counts in
  let* () = nonempty "f" g.fault_bounds in
  let* () = nonempty "R" g.recovery_bounds in
  let* () = nonempty "bandwidth" g.bandwidths in
  let* () = nonempty "protect" g.protect_levels in
  let* () = nonempty "control-share" g.control_shares in
  let* () = nonempty "classes" g.classes in
  let* () =
    match
      List.find_opt (fun c -> not (List.mem c known_classes)) g.classes
    with
    | Some c -> err "unknown fault class %S" c
    | None -> Ok ()
  in
  match List.find_opt (fun w -> not (List.mem w known_workloads)) g.workloads with
  | Some w -> err "unknown workload %S" w
  | None -> (
    match
      List.find_opt (fun t -> not (List.mem t known_topologies)) g.topologies
    with
    | Some t -> err "unknown topology %S" t
    | None ->
      if List.exists (fun n -> n < 2) g.node_counts then err "nodes < 2"
      else if List.exists (fun f -> f < 0) g.fault_bounds then err "f < 0"
      else if List.exists (fun r -> r <= Time.zero) g.recovery_bounds then
        err "R <= 0"
      else if List.exists (fun b -> b <= 0) g.bandwidths then err "bandwidth <= 0"
      else if
        List.exists
          (fun s -> match s with Some c -> c <= 0.0 || c > 0.6 | None -> false)
          g.control_shares
      then err "control share outside (0, 0.6]"
      else Ok ())

(* ------------------------------------------------------------------ *)
(* Specs and trials                                                    *)

type spec = {
  grid : grid;
  trials : int;
  seed : int;
  shrink : bool;
  shrink_budget : int;
}

let spec ?(grid = default_grid) ?(trials = 100) ?(seed = 1) ?(shrink = true)
    ?(shrink_budget = 150) () =
  { grid; trials; seed; shrink; shrink_budget }

type trial = {
  index : int;
  runtime_seed : int;
  params : params;
  script : Fault.script;
  horizon : Time.t;
}

(* Workload generators are deterministic in (campaign seed, params), so
   every trial of a configuration sees the same graph — a requirement
   for the plan cache to be sound. *)
let workload_seed seed = (seed * 7919) + 17

let workload_of ~seed p =
  match p.workload with
  | "avionics" -> Ok (Generators.avionics ~n_nodes:p.nodes)
  | "scada" -> Ok (Generators.scada ~n_nodes:p.nodes)
  | "random" ->
    Ok
      (Generators.random_layered
         ~rng:(Rng.create (workload_seed seed))
         ~n_nodes:p.nodes ~layers:3 ~width:3 ())
  | other -> Error (Printf.sprintf "unknown workload %S" other)

let topology_of p =
  let latency = Time.us 50 in
  match p.topology with
  | "clique" ->
    Ok (Topology.fully_connected ~n:p.nodes ~bandwidth_bps:p.bandwidth_bps ~latency)
  | "ring" -> Ok (Topology.ring ~n:p.nodes ~bandwidth_bps:p.bandwidth_bps ~latency)
  | "dual-bus" ->
    Ok (Topology.dual_bus ~n:p.nodes ~bandwidth_bps:p.bandwidth_bps ~latency)
  | other -> Error (Printf.sprintf "unknown topology %S" other)

let tune_of p c =
  let c = { c with Planner.protect_level = p.protect } in
  match p.control_share with
  | None -> c
  | Some control_frac ->
    { c with Planner.shares = Some { Net.data_frac = 0.35; control_frac } }

let resolved_config p = tune_of p (Planner.default_config ~f:p.f ~recovery_bound:p.r)

(* A non-default runtime strike threshold changes the admission answer
   (BTR-E305 reasons about strikes*period detection latency), so it is
   part of the cache key whenever it is overridden. [None] keeps the
   historical key bytes. *)
let strikes_suffix = function
  | None -> ""
  | Some k -> Printf.sprintf "|strikes=%d" k

(* The campaign plan-cache key: workload/topology identity plus the
   total serialization of the resolved planner config. Never physical
   equality — specs embed closures. *)
let plan_key ?strikes ~seed p =
  Printf.sprintf "%s|%s|n=%d|bw=%d|ws=%d|%s%s" p.workload p.topology p.nodes
    p.bandwidth_bps (workload_seed seed)
    (Planner.config_key (resolved_config p))
    (strikes_suffix strikes)

(* The same key with the requested R zeroed out: R is the one config
   field planning never reads, so two grid points differing only in R
   share plans and schedules — only the verifier's admission answer can
   differ. R-sweep campaigns use this to plan each base config once and
   derive the neighbors via [Planner.with_recovery_bound]. *)
let base_plan_key ?strikes ~seed p =
  Printf.sprintf "%s|%s|n=%d|bw=%d|ws=%d|%s%s" p.workload p.topology p.nodes
    p.bandwidth_bps (workload_seed seed)
    (Planner.config_key
       { (resolved_config p) with Planner.recovery_bound = Time.zero })
    (strikes_suffix strikes)

let period_of ~seed p =
  match workload_of ~seed p with
  | Ok g -> Graph.period g
  | Error _ -> Time.ms 20

(* --- fault-schedule generation ------------------------------------- *)

(* [List.init]'s evaluation order is not a guarantee we want to lean on
   for RNG draws; build effectful lists with an explicit loop. *)
let draw_list n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let behavior_of_class rng ~nodes ~node ~period cls =
  match cls with
  | "crash" -> Fault.Crash
  | "omit" -> Fault.Omit_outputs
  | "omitto" ->
    let others = List.filter (fun x -> x <> node) (List.init nodes Fun.id) in
    if others = [] then Fault.Omit_outputs
    else
      let m = 1 + Rng.int rng (Stdlib.max 1 (List.length others / 2)) in
      Fault.Omit_to (List.sort Int.compare (Rng.sample rng m others))
  | "delay" -> Fault.Delay_outputs (Time.us (Rng.int_in rng 500 (2 * period)))
  | "equivocate" -> Fault.Equivocate
  | "babble" -> Fault.Babble { bogus_per_period = Rng.int_in rng 2 8 }
  | _ -> Fault.Corrupt_outputs

(* The full-palette draw keeps the historical 8-way stream (corrupt is
   double-weighted) so seeded fixtures stay stable; a restricted
   [classes] axis draws uniformly over the listed classes. Sub-draws
   (omit-to target sets, delay magnitudes, babble rates) are shared, so
   identical (seed, index) pairs agree wherever both palettes can
   produce the same class. *)
let gen_behavior rng ~classes ~nodes ~node ~period =
  let cls =
    if List.equal String.equal classes known_classes then
      match Rng.int rng 8 with
      | 0 -> "crash"
      | 1 -> "omit"
      | 2 -> "omitto"
      | 3 -> "delay"
      | 4 | 5 -> "corrupt"
      | 6 -> "equivocate"
      | _ -> "babble"
    else List.nth classes (Rng.int rng (List.length classes))
  in
  behavior_of_class rng ~nodes ~node ~period cls

let gen_script rng ~classes ~nodes ~f ~r ~period =
  if f <= 0 then []
  else begin
    let k = 1 + Rng.int rng f in
    let victims = Rng.sample rng k (List.init nodes Fun.id) in
    let start = Time.add (Time.mul period 2) (Time.us (Rng.int rng period)) in
    let events =
      if Rng.int rng 10 < 3 then begin
        (* The §3 adversary: a fresh fault roughly every R. *)
        let behavior = gen_behavior rng ~classes ~nodes ~node:(-1) ~period in
        let gap =
          Time.max period (Time.add r (Time.sub (Time.us (Rng.int rng period)) (Time.div period 2)))
        in
        Fault.sequential_attack ~nodes:victims ~start ~gap behavior
      end
      else
        List.concat_map
          (fun node ->
            let n_events = if Rng.int rng 4 = 0 then 2 else 1 in
            draw_list n_events (fun _ ->
                {
                  Fault.at = Time.add start (Time.us (Rng.int rng (Time.mul period 16)));
                  node;
                  behavior = gen_behavior rng ~classes ~nodes ~node ~period;
                }))
          victims
    in
    List.sort Shrink.compare_event events
  end

let horizon_for ~period ~r script =
  let last =
    List.fold_left (fun a (e : Fault.event) -> Time.max a e.Fault.at) Time.zero script
  in
  let raw = Time.add last (Time.add r (Time.mul period 8)) in
  Time.mul period ((raw + period - 1) / period)

(* Trial [i]'s stream is derived from (campaign seed, i) alone, so any
   trial can be re-generated in isolation and results cannot depend on
   which worker ran what. *)
let trial_rng ~seed i = Rng.create (seed lxor ((i + 1) * 0x2545F4914F6CDD1D))

let make_trial ~seed ~classes ~configs i =
  let n_cfg = Array.length configs in
  let params, period = configs.(i mod n_cfg) in
  let rng = trial_rng ~seed i in
  let script =
    gen_script rng ~classes ~nodes:params.nodes ~f:params.f ~r:params.r ~period
  in
  let runtime_seed = Rng.int rng 0x3FFFFFFF in
  {
    index = i;
    runtime_seed;
    params;
    script;
    horizon = horizon_for ~period ~r:params.r script;
  }

let config_array spec =
  Array.of_list
    (List.map (fun p -> (p, period_of ~seed:spec.seed p)) (grid_params spec.grid))

let compile spec =
  let configs = config_array spec in
  if Array.length configs = 0 then []
  else
    draw_list spec.trials
      (make_trial ~seed:spec.seed ~classes:spec.grid.classes ~configs)

let trial_of_index spec i =
  let configs = config_array spec in
  if i < 0 || i >= spec.trials || Array.length configs = 0 then None
  else
    Some (make_trial ~seed:spec.seed ~classes:spec.grid.classes ~configs i)

(* ------------------------------------------------------------------ *)
(* Running                                                             *)

type run_stats = {
  worst_recovery : Time.t;
  recoveries : Time.t list;
  incorrect : Time.t;
  deadline_miss_bp : int;
  correct_bp : int;
  bytes_sent : int;
  control_bytes : int;
  sim_events : int;
  mode_changes : int;
  periods : int;
}

type outcome =
  | Pass of run_stats
  | Violation of run_stats
  | Rejected of string
  | Errored of string

let outcome_name = function
  | Pass _ -> "pass"
  | Violation _ -> "violation"
  | Rejected _ -> "rejected"
  | Errored _ -> "error"

let violates = function Violation _ -> true | _ -> false

type verdict = { trial : trial; outcome : outcome }

type shrunk_violation = {
  source : trial;
  script : Fault.script;
  stats : run_stats;
  shrink_runs : int;
  snippet : string;
}

type result = {
  spec : spec;
  configs : int;
  jobs : int;
  verdicts : verdict list;
  violations : shrunk_violation list;
  cache_hits : int;
  cache_misses : int;
}

module Cache = struct
  (* Sharded by the FNV-1a hash of the plan key: lookups are O(1) in a
     per-shard hash table (the old single-mutex assoc list re-scanned
     every entry under one global lock, serializing all workers), and
     contention is confined to workers racing on the same shard. The
     hash is stable (never [Hashtbl.hash]) so the shard layout — and
     with it the contention profile — is identical on every host. *)
  let shard_bits = 4

  let shard_count = 1 lsl shard_bits

  type shard = {
    table : (string, (Planner.t, string) Stdlib.result) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
    lock : Mutex.t;
  }

  type t = {
    seed : int;
    shards : shard array;
    (* First fully-planned strategy per R-stripped config, for deriving
       R-grid neighbors without replanning. Guarded by [base_lock];
       lock order is always shard lock, then base lock. *)
    by_base : (string, Planner.t) Hashtbl.t;
    base_lock : Mutex.t;
    mutable derived_strategies : int;
  }

  let create ~seed =
    {
      seed;
      shards =
        Array.init shard_count (fun _ ->
            { table = Hashtbl.create 16; hits = 0; misses = 0; lock = Mutex.create () });
      by_base = Hashtbl.create 16;
      base_lock = Mutex.create ();
      derived_strategies = 0;
    }

  let runtime_config ?strikes () =
    match strikes with
    | None -> Btr.Runtime.default_config
    | Some k ->
      { Btr.Runtime.default_config with Btr.Runtime.omission_strikes = k }

  let build ?strikes ~seed p =
    match workload_of ~seed p with
    | Error m -> Error m
    | Ok workload -> (
      match topology_of p with
      | Error m -> Error m
      | Ok topology -> (
        let s =
          Btr.Scenario.spec ~workload ~topology ~f:p.f ~recovery_bound:p.r
            ~tune:(tune_of p) ()
        in
        (* Scenario.plan includes the Btr_check static gate: a strategy
           the verifier rejects is cached as an error, exactly once. *)
        match Btr.Scenario.plan ~config:(runtime_config ?strikes ()) s with
        | Ok strategy -> Ok strategy
        | Error e -> Error (Format.asprintf "%a" Planner.pp_error e)))

  let shard_of t key = t.shards.(Fnv.hash key land (shard_count - 1))

  (* Admission gate for a derived strategy, mirroring the one inside
     [Scenario.plan] that [build] runs: the static verifier with the
     requested (default unless overridden) runtime strike threshold,
     errors formatted identically. *)
  let admit ?strikes strategy =
    let strikes =
      (runtime_config ?strikes ()).Btr.Runtime.omission_strikes
    in
    let report = Btr_check.Check.verify ~strikes strategy in
    match Btr_check.Check.to_planner_error report with
    | None -> Ok strategy
    | Some e -> Error (Format.asprintf "%a" Planner.pp_error e)

  (* Planning happens while holding the shard lock: the planner is fast
     (<100ms for every grid point we generate), building a config twice
     would waste more than the lock hold costs, and only workers whose
     keys collide on this shard wait — the other 15 shards stay free. *)
  let strategy ?strikes t p =
    let key = plan_key ?strikes ~seed:t.seed p in
    let s = shard_of t key in
    Mutex.lock s.lock;
    match Hashtbl.find_opt s.table key with
    | Some v ->
      s.hits <- s.hits + 1;
      Mutex.unlock s.lock;
      v
    | None -> (
      let produce () =
        let bkey = base_plan_key ?strikes ~seed:t.seed p in
        Mutex.lock t.base_lock;
        let base = Hashtbl.find_opt t.by_base bkey in
        Mutex.unlock t.base_lock;
        match base with
        | Some b ->
          (* An R-grid neighbor of an already-planned config: reuse its
             plans in O(1) and replay only the R-dependent admission. *)
          Mutex.lock t.base_lock;
          t.derived_strategies <- t.derived_strategies + 1;
          Mutex.unlock t.base_lock;
          admit ?strikes (Planner.with_recovery_bound b p.r)
        | None ->
          let v = build ?strikes ~seed:t.seed p in
          (match v with
          | Ok strategy ->
            Mutex.lock t.base_lock;
            if not (Hashtbl.mem t.by_base bkey) then
              Hashtbl.add t.by_base bkey strategy;
            Mutex.unlock t.base_lock
          | Error _ -> ());
          v
      in
      match produce () with
      | v ->
        Hashtbl.replace s.table key v;
        s.misses <- s.misses + 1;
        Mutex.unlock s.lock;
        v
      | exception e ->
        Mutex.unlock s.lock;
        raise e)

  (* Counter reads take each shard's lock in turn, so totals are exact
     even while workers are still planning — reading the mutable fields
     bare would race with the increments above. *)
  let sum_locked f t =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let v = f s in
        Mutex.unlock s.lock;
        acc + v)
      0 t.shards

  let hits t = sum_locked (fun s -> s.hits) t
  let misses t = sum_locked (fun s -> s.misses) t

  let derived t =
    Mutex.lock t.base_lock;
    let v = t.derived_strategies in
    Mutex.unlock t.base_lock;
    v
end

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let bp f = int_of_float ((f *. 10_000.0) +. 0.5)

let stats_of rt =
  let m = Btr.Runtime.metrics rt in
  let recoveries = Btr.Metrics.recovery_times m in
  let ns = Btr.Runtime.net_stats rt in
  {
    worst_recovery = List.fold_left Time.max Time.zero recoveries;
    recoveries;
    incorrect = Btr.Metrics.incorrect_time m;
    deadline_miss_bp = bp (Btr.Metrics.deadline_miss_fraction m);
    correct_bp = bp (Btr.Metrics.correct_fraction m);
    bytes_sent = ns.Net.bytes_sent;
    control_bytes = ns.Net.control_bytes_sent;
    sim_events = Btr_sim.Engine.events_processed (Btr.Runtime.engine rt);
    mode_changes = List.length (Btr.Runtime.mode_changes rt);
    periods = Btr.Metrics.periods_finalized m;
  }

let run_script ?strikes ~cache p ~runtime_seed script =
  match Cache.strategy ?strikes cache p with
  | Error m -> Rejected m
  | Ok strategy -> (
    try
      let period = Graph.period (Planner.workload strategy) in
      let horizon = horizon_for ~period ~r:p.r script in
      let config =
        {
          (Cache.runtime_config ?strikes ()) with
          Btr.Runtime.seed = runtime_seed;
        }
      in
      let rt = Btr.Runtime.create ~config ~script ~strategy () in
      Btr.Runtime.run rt ~horizon;
      let st = stats_of rt in
      if List.exists (fun rec_t -> Time.compare rec_t p.r > 0) st.recoveries then
        Violation st
      else Pass st
    with e -> Errored (Printexc.to_string e))

(* --- reproducer snippets ------------------------------------------- *)

let workload_expr ~wl_seed p =
  match p.workload with
  | "scada" -> Printf.sprintf "Btr_workload.Generators.scada ~n_nodes:%d" p.nodes
  | "random" ->
    Printf.sprintf
      "Btr_workload.Generators.random_layered ~rng:(Rng.create %d) ~n_nodes:%d \
       ~layers:3 ~width:3 ()"
      wl_seed p.nodes
  | _ -> Printf.sprintf "Btr_workload.Generators.avionics ~n_nodes:%d" p.nodes

let topology_expr p =
  let gen =
    match p.topology with
    | "ring" -> "ring"
    | "dual-bus" -> "dual_bus"
    | _ -> "fully_connected"
  in
  Printf.sprintf "Btr_net.Topology.%s ~n:%d ~bandwidth_bps:%d ~latency:(Time.us 50)"
    gen p.nodes p.bandwidth_bps

let criticality_expr (c : Task.criticality) =
  "Btr_workload.Task."
  ^
  match c with
  | Task.Best_effort -> "Best_effort"
  | Task.Low -> "Low"
  | Task.Medium -> "Medium"
  | Task.High -> "High"
  | Task.Safety_critical -> "Safety_critical"

let tune_expr p =
  let fields =
    (if p.protect = Task.Medium then []
     else
       [ Printf.sprintf "Btr_planner.Planner.protect_level = %s" (criticality_expr p.protect) ])
    @
    match p.control_share with
    | None -> []
    | Some c ->
      [
        Printf.sprintf
          "%sshares = Some { Btr_net.Net.data_frac = 0.35; control_frac = %.6f }"
          (if p.protect = Task.Medium then "Btr_planner.Planner." else "")
          c;
      ]
  in
  match fields with
  | [] -> ""
  | fs -> Printf.sprintf "\n      ~tune:(fun c -> { c with %s })" (String.concat "; " fs)

let behavior_expr (b : Fault.behavior) =
  match b with
  | Fault.Crash -> "Fault.Crash"
  | Fault.Omit_outputs -> "Fault.Omit_outputs"
  | Fault.Omit_to l ->
    Printf.sprintf "Fault.Omit_to [ %s ]" (String.concat "; " (List.map string_of_int l))
  | Fault.Delay_outputs d -> Printf.sprintf "Fault.Delay_outputs (Time.us %d)" d
  | Fault.Corrupt_outputs -> "Fault.Corrupt_outputs"
  | Fault.Equivocate -> "Fault.Equivocate"
  | Fault.Babble { bogus_per_period } ->
    Printf.sprintf "Fault.Babble { bogus_per_period = %d }" bogus_per_period

let event_expr (e : Fault.event) =
  Printf.sprintf "{ Fault.at = Time.us %d; node = %d; behavior = %s }" e.Fault.at
    e.Fault.node (behavior_expr e.Fault.behavior)

let repro_snippet (t : trial) ~wl_seed ~script ~horizon =
  let p = t.params in
  Printf.sprintf
    "(* Reproduces the Definition 3.1 violation found by campaign trial %d:\n\
    \   measured recovery exceeds R = %s. Uses only the public API. *)\n\
     open Btr_util\n\
     module Fault = Btr_fault.Fault\n\n\
     let () =\n\
    \  let spec =\n\
    \    Btr.Scenario.spec\n\
    \      ~workload:(%s)\n\
    \      ~topology:(%s)\n\
    \      ~f:%d ~recovery_bound:(Time.us %d)\n\
    \      ~script:[ %s ]\n\
    \      ~horizon:(Time.us %d) ~seed:%d%s ()\n\
    \  in\n\
    \  match Btr.Scenario.run spec with\n\
    \  | Error e -> Format.printf \"rejected: %%a@.\" Btr_planner.Planner.pp_error e\n\
    \  | Ok rt ->\n\
    \    List.iter\n\
    \      (fun r -> Format.printf \"recovery %%a (R = %%a)@.\" Time.pp r Time.pp (Time.us %d))\n\
    \      (Btr.Metrics.recovery_times (Btr.Runtime.metrics rt))\n"
    t.index (Time.to_string p.r) (workload_expr ~wl_seed p) (topology_expr p) p.f p.r
    (String.concat ";\n                " (List.map event_expr script))
    horizon t.runtime_seed (tune_expr p) p.r

let shrink_violation ~cache ~budget (t : trial) =
  let pred s = violates (run_script ~cache t.params ~runtime_seed:t.runtime_seed s) in
  if not (pred t.script) then None
  else begin
    let period =
      match Cache.strategy cache t.params with
      | Ok strategy -> Graph.period (Planner.workload strategy)
      | Error _ -> Time.ms 20
    in
    let sh = Shrink.minimize ~violates:pred ~round_to:period ~max_runs:budget t.script in
    match run_script ~cache t.params ~runtime_seed:t.runtime_seed sh.Shrink.script with
    | Violation stats ->
      let horizon = horizon_for ~period ~r:t.params.r sh.Shrink.script in
      Some
        {
          source = t;
          script = sh.Shrink.script;
          stats;
          shrink_runs = sh.Shrink.runs;
          snippet =
            repro_snippet t ~wl_seed:(workload_seed cache.Cache.seed)
              ~script:sh.Shrink.script ~horizon;
        }
    | _ -> None
  end

(* --- the domain pool ----------------------------------------------- *)

(* Execute an explicit trial list (the orchestrator's shard/resume path
   runs subsets; [run] passes the full compilation). Verdicts come back
   in list order and all telemetry covers exactly these trials. *)
let run_trials ?obs ?jobs spec trial_list =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let jobs = match jobs with Some j -> Stdlib.max 1 j | None -> default_jobs () in
  let cache = Cache.create ~seed:spec.seed in
  let trials = Array.of_list trial_list in
  let n = Array.length trials in
  let configs = List.length (grid_params spec.grid) in
  let verdict_of (t : trial) =
    {
      trial = t;
      outcome = run_script ~cache t.params ~runtime_seed:t.runtime_seed t.script;
    }
  in
  let slots = Array.make n None in
  if jobs = 1 || n <= 1 then
    Array.iteri (fun i t -> slots.(i) <- Some (verdict_of t)) trials
  else begin
    (* Workers claim chunks of consecutive indices with one atomic
       fetch-and-add each (the old design took a mutex per single index,
       so every trial boundary was a cross-domain synchronization) and
       write into distinct slots; per-trial determinism makes the slot
       contents independent of the interleaving. Chunks are ~1/8 of an
       even split so stragglers still balance: a worker stuck on a slow
       trial forfeits at most its current chunk to the others. *)
    let workers = Stdlib.min jobs n in
    let chunk = Stdlib.max 1 (n / (workers * 8)) in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = Stdlib.min n (start + chunk) in
          for i = start to stop - 1 do
            slots.(i) <- Some (verdict_of trials.(i))
          done;
          loop ()
        end
      in
      loop ()
    in
    let domains = draw_list workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  let verdicts =
    Array.to_list
      (Array.map
         (function Some v -> v | None -> invalid_arg "campaign: unfilled slot")
         slots)
  in
  let violations =
    List.filter_map
      (fun v ->
        if violates v.outcome then
          shrink_violation ~cache
            ~budget:(if spec.shrink then spec.shrink_budget else 0)
            v.trial
        else None)
      verdicts
  in
  (* All telemetry from the coordinating domain, in trial order: traces
     and counters are identical whatever [jobs] was. *)
  if Obs.enabled obs then begin
    Obs.emit obs ~at:Time.zero Btr_obs.Obs.Campaign
      (Btr_obs.Obs.Campaign_started { trials = n; configs });
    List.iter
      (fun v ->
        Obs.emit obs ~at:Time.zero Btr_obs.Obs.Campaign
          (Btr_obs.Obs.Trial_verdict
             { trial = v.trial.index; verdict = outcome_name v.outcome }))
      verdicts;
    List.iter
      (fun s ->
        Obs.emit obs ~at:Time.zero Btr_obs.Obs.Campaign
          (Btr_obs.Obs.Violation_shrunk
             {
               trial = s.source.index;
               events_before = List.length s.source.script;
               events_after = List.length s.script;
             }))
      violations
  end;
  let reg = Obs.registry obs in
  let count name v =
    Btr_obs.Obs.Counter.add (Btr_obs.Obs.Registry.counter reg Btr_obs.Obs.Campaign name) v
  in
  let tally pred = List.length (List.filter pred verdicts) in
  count "trials" n;
  count "violations" (tally (fun v -> violates v.outcome));
  count "rejected" (tally (fun v -> match v.outcome with Rejected _ -> true | _ -> false));
  count "errors" (tally (fun v -> match v.outcome with Errored _ -> true | _ -> false));
  count "plan_cache_hits" (Cache.hits cache);
  count "plan_cache_misses" (Cache.misses cache);
  count "shrink_runs" (List.fold_left (fun a s -> a + s.shrink_runs) 0 violations);
  {
    spec;
    configs;
    jobs;
    verdicts;
    violations;
    cache_hits = Cache.hits cache;
    cache_misses = Cache.misses cache;
  }

let run ?obs ?jobs spec = run_trials ?obs ?jobs spec (compile spec)

(* ------------------------------------------------------------------ *)
(* Schedule codec                                                      *)

let behavior_to_string (b : Fault.behavior) =
  match b with
  | Fault.Crash -> "crash"
  | Fault.Omit_outputs -> "omit"
  | Fault.Omit_to l -> "omitto" ^ String.concat "" (List.map (Printf.sprintf ".%d") l)
  | Fault.Delay_outputs d -> Printf.sprintf "delay.%d" d
  | Fault.Corrupt_outputs -> "corrupt"
  | Fault.Equivocate -> "equivocate"
  | Fault.Babble { bogus_per_period } -> Printf.sprintf "babble.%d" bogus_per_period

let script_to_string s =
  String.concat ";"
    (List.map
       (fun (e : Fault.event) ->
         Printf.sprintf "%s@%d@%d" (behavior_to_string e.Fault.behavior) e.Fault.node
           e.Fault.at)
       (List.sort Shrink.compare_event s))

let behavior_of_string s =
  match String.split_on_char '.' s with
  | [ "crash" ] -> Ok Fault.Crash
  | [ "omit" ] -> Ok Fault.Omit_outputs
  | [ "corrupt" ] -> Ok Fault.Corrupt_outputs
  | [ "equivocate" ] -> Ok Fault.Equivocate
  | [ "delay"; d ] -> (
    match int_of_string_opt d with
    | Some d when d > 0 -> Ok (Fault.Delay_outputs d)
    | _ -> Error (Printf.sprintf "bad delay %S" s))
  | [ "babble"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Fault.Babble { bogus_per_period = n })
    | _ -> Error (Printf.sprintf "bad babble %S" s))
  | "omitto" :: (_ :: _ as targets) -> (
    let parsed = List.map int_of_string_opt targets in
    if List.exists Option.is_none parsed then
      Error (Printf.sprintf "bad omitto %S" s)
    else Ok (Fault.Omit_to (List.map Option.get parsed)))
  | _ -> Error (Printf.sprintf "unknown fault class %S" s)

let event_of_string s =
  match String.split_on_char '@' s with
  | [ cls; node; at ] -> (
    match behavior_of_string cls, int_of_string_opt node, int_of_string_opt at with
    | Ok behavior, Some node, Some at when node >= 0 && at >= 0 ->
      Ok { Fault.at; node; behavior }
    | (Error _ as e), _, _ -> e |> Result.map (fun _ -> assert false)
    | _ -> Error (Printf.sprintf "bad event %S (want class[.param]@node@at_us)" s))
  | _ -> Error (Printf.sprintf "bad event %S (want class[.param]@node@at_us)" s)

let script_of_string s =
  if String.trim s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.sort Shrink.compare_event (List.rev acc))
      | part :: rest -> (
        match event_of_string (String.trim part) with
        | Ok e -> go (e :: acc) rest
        | Error _ as e -> e |> Result.map (fun _ -> []))
    in
    go [] (String.split_on_char ';' s)

(* ------------------------------------------------------------------ *)
(* JSON artifacts                                                      *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_field b first key value =
  if not !first then Buffer.add_char b ',';
  first := false;
  Buffer.add_char b '"';
  json_escape b key;
  Buffer.add_string b "\":";
  Buffer.add_string b value

let add_int b first key v = add_field b first key (string_of_int v)

let add_str b first key v =
  let vb = Buffer.create (String.length v + 2) in
  Buffer.add_char vb '"';
  json_escape vb v;
  Buffer.add_char vb '"';
  add_field b first key (Buffer.contents vb)

let add_bool b first key v = add_field b first key (if v then "true" else "false")

let obj f =
  let b = Buffer.create 256 in
  let first = ref true in
  Buffer.add_char b '{';
  f b first;
  Buffer.add_char b '}';
  Buffer.contents b

let add_params b first (p : params) =
  add_str b first "workload" p.workload;
  add_str b first "topology" p.topology;
  add_int b first "nodes" p.nodes;
  add_int b first "f" p.f;
  add_int b first "r_us" p.r;
  add_int b first "bandwidth_bps" p.bandwidth_bps;
  add_str b first "protect" (Format.asprintf "%a" Task.pp_criticality p.protect);
  add_str b first "control_share" (share_str p.control_share)

let add_stats b first (st : run_stats) =
  add_int b first "worst_recovery_us" st.worst_recovery;
  add_int b first "recoveries" (List.length st.recoveries);
  add_int b first "incorrect_us" st.incorrect;
  add_int b first "deadline_miss_bp" st.deadline_miss_bp;
  add_int b first "correct_bp" st.correct_bp;
  add_int b first "bytes" st.bytes_sent;
  add_int b first "control_bytes" st.control_bytes;
  add_int b first "sim_events" st.sim_events;
  add_int b first "mode_changes" st.mode_changes;
  add_int b first "periods" st.periods

let verdict_json v =
  obj (fun b first ->
      add_int b first "trial" v.trial.index;
      add_params b first v.trial.params;
      add_int b first "seed" v.trial.runtime_seed;
      add_int b first "events" (List.length v.trial.script);
      add_str b first "script" (script_to_string v.trial.script);
      add_int b first "horizon_us" v.trial.horizon;
      add_str b first "verdict" (outcome_name v.outcome);
      match v.outcome with
      | Pass st | Violation st -> add_stats b first st
      | Rejected reason | Errored reason -> add_str b first "reason" reason)

let violation_json s =
  obj (fun b first ->
      add_int b first "violation" s.source.index;
      add_str b first "script" (script_to_string s.script);
      add_int b first "events" (List.length s.script);
      add_int b first "events_before" (List.length s.source.script);
      add_int b first "shrink_runs" s.shrink_runs;
      add_int b first "r_us" s.source.params.r;
      add_stats b first s.stats;
      add_str b first "snippet" s.snippet)

let fingerprint r = Fnv.to_hex (Fnv.hash64_lines (List.map verdict_json r.verdicts))

let grid_axes_str g =
  let commas f l = String.concat "," (List.map f l) in
  Printf.sprintf "w=%s|t=%s|n=%s|f=%s|r_us=%s|bw=%s|protect=%s|share=%s"
    (commas Fun.id g.workloads) (commas Fun.id g.topologies)
    (commas string_of_int g.node_counts)
    (commas string_of_int g.fault_bounds)
    (commas string_of_int g.recovery_bounds)
    (commas string_of_int g.bandwidths)
    (commas (Format.asprintf "%a" Task.pp_criticality) g.protect_levels)
    (commas share_str g.control_shares)

let result_json_lines r =
  let header =
    obj (fun b first ->
        add_int b first "campaign" 1;
        add_int b first "seed" r.spec.seed;
        add_int b first "trials" r.spec.trials;
        add_int b first "configs" r.configs;
        add_bool b first "shrink" r.spec.shrink;
        add_str b first "grid" (grid_axes_str r.spec.grid))
  in
  let tally pred = List.length (List.filter pred r.verdicts) in
  let summary =
    obj (fun b first ->
        add_int b first "total" (List.length r.verdicts);
        add_int b first "violations" (tally (fun v -> violates v.outcome));
        add_int b first "rejected"
          (tally (fun v -> match v.outcome with Rejected _ -> true | _ -> false));
        add_int b first "errors"
          (tally (fun v -> match v.outcome with Errored _ -> true | _ -> false));
        add_int b first "cache_hits" r.cache_hits;
        add_int b first "cache_misses" r.cache_misses;
        add_int b first "configs" r.configs;
        add_str b first "fingerprint" (fingerprint r))
  in
  (header :: List.map verdict_json r.verdicts)
  @ List.map violation_json r.violations
  @ [ summary ]

(* ------------------------------------------------------------------ *)
(* Flat JSON parsing (for `campaign report`)                           *)

module Flat_json = struct
  type value = Int of int | Float of float | Str of string | Bool of bool

  (* Shortest decimal form that parses back to the same float: try the
     15-digit form first, fall back to the always-exact 17 digits. Only
     meaningful for finite floats — this module never emits non-finite
     values. Integral floats keep a trailing '.' so the token stays
     float-shaped: "1" would re-parse as Int and break round-tripping. *)
  let float_repr f =
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ "."

  let to_string fields =
    obj (fun b first ->
        List.iter
          (fun (k, v) ->
            match v with
            | Int i -> add_int b first k i
            | Float f -> add_field b first k (float_repr f)
            | Str s -> add_str b first k s
            | Bool v -> add_bool b first k v)
          fields)

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let expect c =
      match peek () with
      | Some x when x = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let skip_ws () =
      while
        match peek () with
        | Some (' ' | '\t' | '\n' | '\r') -> true
        | _ -> false
      do
        advance ()
      done
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> fail "bad \\u escape");
            pos := !pos + 4;
            go ()
          | _ -> fail "bad escape")
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_scalar () =
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else fail "bad literal"
      | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "bad literal"
      | Some ('-' | '0' .. '9') ->
        let start = !pos in
        let is_num c =
          match c with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while (match peek () with Some c -> is_num c | None -> false) do
          advance ()
        done;
        let tok = String.sub s start (!pos - start) in
        (match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok)))
      | _ -> fail "expected a scalar value"
    in
    try
      skip_ws ();
      expect '{';
      skip_ws ();
      let fields = ref [] in
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          skip_ws ();
          let v = parse_scalar () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ());
      skip_ws ();
      if !pos <> n then fail "trailing input";
      Ok (List.rev !fields)
    with Bad m -> Error m
end

let grid_axes = grid_axes_str

let params_fields (p : params) =
  [
    ("workload", Flat_json.Str p.workload);
    ("topology", Flat_json.Str p.topology);
    ("nodes", Flat_json.Int p.nodes);
    ("f", Flat_json.Int p.f);
    ("r_us", Flat_json.Int p.r);
    ("bandwidth_bps", Flat_json.Int p.bandwidth_bps);
    ("protect", Flat_json.Str (Format.asprintf "%a" Task.pp_criticality p.protect));
    ("control_share", Flat_json.Str (share_str p.control_share));
  ]

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

let render_report lines =
  let open Flat_json in
  let parse_all () =
    List.filteri (fun _ l -> String.trim l <> "") lines
    |> List.map (fun l ->
           match parse l with
           | Ok fields -> fields
           | Error m -> raise (Bad (Printf.sprintf "%s in line %s" m l)))
  in
  match parse_all () with
  | exception Bad m -> Error m
  | objs ->
    let get fields k = List.assoc_opt k fields in
    let int_of fields k = match get fields k with Some (Int i) -> Some i | _ -> None in
    let str_of fields k = match get fields k with Some (Str s) -> Some s | _ -> None in
    let verdict_lines = List.filter (fun o -> int_of o "trial" <> None) objs in
    let violation_lines = List.filter (fun o -> int_of o "violation" <> None) objs in
    let summary = List.find_opt (fun o -> int_of o "total" <> None) objs in
    let buf = Buffer.create 1024 in
    let tally pred = List.length (List.filter pred verdict_lines) in
    let verdict_is v o = str_of o "verdict" = Some v in
    Buffer.add_string buf
      (Printf.sprintf
         "campaign report: %d trials — %d pass, %d violations, %d rejected, %d errors\n"
         (List.length verdict_lines)
         (tally (verdict_is "pass"))
         (tally (verdict_is "violation"))
         (tally (verdict_is "rejected"))
         (tally (verdict_is "error")));
    (match summary with
    | Some s ->
      (match int_of s "cache_hits", int_of s "cache_misses" with
      | Some h, Some m ->
        Buffer.add_string buf
          (Printf.sprintf "plan cache: %d hits / %d misses (%d configs planned once)\n" h m m)
      | _ -> ());
      (match str_of s "fingerprint" with
      | Some fp -> Buffer.add_string buf (Printf.sprintf "fingerprint: %s\n" fp)
      | None -> ())
    | None -> ());
    Buffer.add_char buf '\n';
    (* Per-configuration aggregation, first-seen (= grid) order. *)
    let key_of o =
      Printf.sprintf "%s/%s n=%s f=%s R=%sus bw=%s %s share=%s"
        (Option.value ~default:"?" (str_of o "workload"))
        (Option.value ~default:"?" (str_of o "topology"))
        (match int_of o "nodes" with Some i -> string_of_int i | None -> "?")
        (match int_of o "f" with Some i -> string_of_int i | None -> "?")
        (match int_of o "r_us" with Some i -> string_of_int i | None -> "?")
        (match int_of o "bandwidth_bps" with Some i -> string_of_int i | None -> "?")
        (Option.value ~default:"?" (str_of o "protect"))
        (Option.value ~default:"?" (str_of o "control_share"))
    in
    let groups =
      List.fold_left
        (fun acc o ->
          let k = key_of o in
          if List.mem_assoc k acc then
            List.map (fun (k', os) -> if k' = k then (k', o :: os) else (k', os)) acc
          else acc @ [ (k, [ o ]) ])
        [] verdict_lines
    in
    let table =
      Table.create ~title:"per configuration"
        ~header:[ "configuration"; "trials"; "viol"; "rej"; "worst recovery"; "max incorrect" ]
    in
    List.iter
      (fun (k, os) ->
        let os = List.rev os in
        let n_tr = List.length os in
        let viol = List.length (List.filter (verdict_is "violation") os) in
        let rej = List.length (List.filter (verdict_is "rejected") os) in
        let maxi key =
          List.fold_left
            (fun a o -> match int_of o key with Some v -> Stdlib.max a v | None -> a)
            0 os
        in
        Table.add_row table
          [
            k;
            string_of_int n_tr;
            string_of_int viol;
            string_of_int rej;
            Time.to_string (maxi "worst_recovery_us");
            Time.to_string (maxi "incorrect_us");
          ])
      groups;
    Buffer.add_string buf (Table.render table);
    Buffer.add_char buf '\n';
    List.iter
      (fun o ->
        match int_of o "violation", str_of o "script" with
        | Some idx, Some script ->
          Buffer.add_string buf
            (Printf.sprintf
               "violation (trial %d): %s\n  events %s (from %s), shrink runs %s, worst recovery %s vs R %s\n"
               idx script
               (match int_of o "events" with Some i -> string_of_int i | None -> "?")
               (match int_of o "events_before" with Some i -> string_of_int i | None -> "?")
               (match int_of o "shrink_runs" with Some i -> string_of_int i | None -> "?")
               (match int_of o "worst_recovery_us" with
               | Some i -> Time.to_string i
               | None -> "?")
               (match int_of o "r_us" with Some i -> Time.to_string i | None -> "?"))
        | _ -> ())
      violation_lines;
    Ok (Buffer.contents buf)
