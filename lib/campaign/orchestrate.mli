(** Distributed, resumable campaign orchestration with adaptive
    frontier search.

    {!Campaign} executes one trial list inside one process; this module
    is the layer above it that makes large sweeps cheap to distribute
    and impossible to lose:

    - {b sharding}: a campaign's compiled trial list is partitioned by
      a stable FNV-1a rule ({!shard_of_trial}), so [--shard i/n]
      invocations on different hosts each execute a disjoint,
      deterministic subset and the union of their artifacts is
      byte-identical to an unsharded run at any [--jobs];
    - {b resumability}: {!run} can be given a previously written
      artifact; after cross-checking its header fingerprint against the
      freshly compiled grid it skips every trial whose verdict is
      already recorded, so a killed campaign continues instead of
      restarting;
    - {b combining}: {!combine} merges shard artifacts into the one
      canonical artifact an unsharded run would have written, with
      fingerprint and disjointness cross-checks;
    - {b frontier search}: instead of exhausting a grid, {!frontier}
      bisects along one numeric axis per config slice to locate the
      admit/violate boundary of Def-3.1 within a tolerance, typically
      an order of magnitude fewer trials than the grid
      ({!grid_scan} is the exhaustive reference it is audited
      against).

    Everything here inherits the executor's determinism contract: equal
    specs produce byte-identical artifacts whatever the shard/job/resume
    partitioning was. *)

(** {1 Sharding} *)

(** Shard [index] of [count]; [count = 1] is the unsharded canonical
    artifact (what {!combine} reconstructs). *)
type shard = { index : int; count : int }

val unsharded : shard
(** [{ index = 0; count = 1 }]. *)

val shard_of_string : string -> (shard, string) result
(** Parses ["i/n"] with [0 <= i < n]; {!shard_to_string} inverts. *)

val shard_to_string : shard -> string

val shard_of_trial : seed:int -> count:int -> int -> int
(** The stable partitioning rule: trial [i] of a campaign with [seed]
    belongs to shard [Fnv.hash "trial:<seed>:<i>" mod count]. Pure,
    host-independent, and insensitive to how many trials exist — adding
    trials never moves old ones between shards of the same [count]. *)

val shard_trials : shard -> Campaign.spec -> Campaign.trial list
(** The compiled trials of [spec] that belong to [shard], in ascending
    trial order. The union over all indices of a [count] is exactly
    [Campaign.compile spec], disjointly. *)

(** {1 Artifacts} *)

val spec_fingerprint : Campaign.spec -> string
(** FNV-1a 64 (hex) over the full compiled trial list — every index,
    runtime seed, schedule, horizon and parameter point, plus the spec
    header fields. Two specs agree iff they would execute the identical
    campaign, so this is the resume/combine compatibility check. *)

(** A parsed artifact. Verdict and violation lines are kept as raw
    strings (keyed by trial index) so resuming and combining reuse the
    recorded bytes instead of re-deriving them. *)
type artifact = {
  a_seed : int;
  a_trials : int;  (** planned trials of the full (unsharded) spec *)
  a_configs : int;
  a_shrink : bool;
  a_grid : string;  (** the grid-axes summary string *)
  a_spec_fp : string;
  a_shard : shard;
  a_complete : bool;  (** summary line present and marked complete *)
  a_fingerprint : string;  (** from the summary line; [""] if absent *)
  a_verdicts : (int * string) list;  (** ascending trial index *)
  a_violations : (int * string) list;  (** ascending source trial index *)
}

val parse_artifact : string list -> (artifact, string) result
(** Parses the lines of an orchestrated artifact. A final torn line
    (killed mid-write) is dropped; any other malformed line is an
    error, as are duplicate trial indices or a missing header. *)

(** {1 Orchestrated runs} *)

type run_result = {
  lines : string list;  (** the artifact to write *)
  total : int;  (** trials belonging to this shard *)
  executed : int;  (** trials actually run in this invocation *)
  skipped : int;  (** trials reused from the resume artifact *)
  complete : bool;  (** [skipped + executed = total] *)
  has_violations : bool;  (** over all verdict lines in [lines] *)
  new_violations : Campaign.shrunk_violation list;
      (** violations among the trials executed here (the resumed ones
          only exist as recorded lines) *)
}

val run :
  ?obs:Btr_obs.Obs.t ->
  ?jobs:int ->
  ?resume:artifact ->
  ?max_trials:int ->
  shard:shard ->
  Campaign.spec ->
  (run_result, string) result
(** Execute [spec]'s trials belonging to [shard] on the {!Campaign}
    pool and produce the shard artifact. With [resume], the artifact's
    header (seed, trial count, shard, shrink and {!spec_fingerprint})
    must match the compiled spec — [Error] otherwise — and recorded
    verdicts are skipped, their lines reused byte-for-byte.
    [max_trials] caps how many un-recorded trials this invocation
    executes (the orchestration equivalent of being killed mid-run: the
    artifact is well-formed but marked incomplete). [obs] additionally
    receives [Campaign_sharded] / [Campaign_resumed] events and the
    [campaign.shard.*] / [campaign.resume.skipped] counters;
    [campaign.trials] counts only the executed remainder, so
    skipped + executed = shard total holds on the registry. *)

val combine : string list list -> (string list * bool, string) result
(** Merge complete shard artifacts (their lines, in any shard order)
    into the canonical unsharded artifact. Cross-checks: headers agree
    (seed, trials, configs, shrink, grid, spec fingerprint), the shard
    set is exactly [0..n-1] for [n] inputs, every artifact is complete,
    trial indices are disjoint, land on their {!shard_of_trial} shard
    and cover [0..trials-1]. [Ok (lines, has_violations)] — the lines
    are byte-identical to an unsharded {!run} of the same spec;
    [has_violations] reports whether any merged verdict violated
    (callers map it to exit 3). *)

(** {1 Adaptive frontier search} *)

type axis = Axis_r | Axis_f | Axis_bandwidth | Axis_strikes

val axis_name : axis -> string
(** ["r"], ["f"], ["bandwidth"], ["strikes"]. *)

val axis_of_string : string -> (axis, string) result

type frontier_spec = {
  slice_grid : Campaign.grid;
      (** the config slices: its own values for the bisected axis are
          ignored (each slice spans [lo..hi] on that axis) *)
  axis : axis;
  lo : int;  (** µs for [Axis_r], bits/s, count for f/strikes *)
  hi : int;
  tolerance : int;  (** lattice step: points are [lo + k*tolerance] *)
  probes : int;  (** fault schedules drawn per evaluated point *)
  fseed : int;
}

(** One located boundary: the adjacent lattice points where the verdict
    flips. Which side is which depends on the axis direction (R and
    bandwidth admit above the boundary, f and strikes below). *)
type boundary = { admit_at : int; violate_at : int }

type slice_result = {
  slice : int;
  base : Campaign.params;  (** the slice's fixed parameters *)
  lo_admit : bool;
  hi_admit : bool;
  found : boundary option;  (** [None] when both endpoints agree *)
  evals : int;  (** lattice points evaluated *)
  probes_run : int;  (** trials executed (probes short-circuit) *)
}

type frontier_result = {
  fspec : frontier_spec;
  points : int;  (** lattice size: [(hi - lo) / tolerance + 1] *)
  slices : slice_result list;
  total_probes : int;
}

val frontier :
  ?obs:Btr_obs.Obs.t -> frontier_spec -> (frontier_result, string) result
(** Bisection per config slice: evaluate both lattice endpoints; when
    they disagree, binary-search the flip to adjacent lattice points
    (within [tolerance]) — O(log points) evaluations instead of the
    grid's O(points). A point {e admits} when the configuration is
    statically admitted and all its probe schedules pass; it
    {e violates} on a planner/verifier rejection, a measured Def-3.1
    violation, or an error. Each evaluated point is a pure function of
    (spec, axis value), so bisection and {!grid_scan} agree wherever
    the verdict is monotone along the axis. [obs] receives one
    [Frontier_located] event per slice and the [campaign.frontier.*]
    counters. *)

val grid_scan :
  ?obs:Btr_obs.Obs.t -> frontier_spec -> (frontier_result, string) result
(** The exhaustive reference: evaluate every lattice point of every
    slice and report the first verdict flip. Same result shape as
    {!frontier} so tests and benches can assert equal boundaries and
    compare [total_probes]. *)

val frontier_lines : frontier_result -> string list
(** The frontier artifact: a header line, one line per slice (its
    parameters plus the located boundary) and a summary line with a
    fingerprint over the slice lines. *)

val is_frontier_artifact : string list -> bool
(** True when the first parseable line carries the frontier header
    marker (how [campaign report] dispatches). *)

val render_frontier : string list -> (string, string) result
(** Parse frontier artifact lines and render the per-slice boundary
    table. *)
