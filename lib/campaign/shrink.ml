open Btr_util
module Fault = Btr_fault.Fault

let compare_event (a : Fault.event) (b : Fault.event) =
  match Time.compare a.Fault.at b.Fault.at with
  | 0 -> (
    match Int.compare a.Fault.node b.Fault.node with
    | 0 ->
      String.compare
        (Format.asprintf "%a" Fault.pp_behavior a.Fault.behavior)
        (Format.asprintf "%a" Fault.pp_behavior b.Fault.behavior)
    | c -> c)
  | c -> c

type result = {
  script : Fault.script;
  runs : int;
  initial_events : int;
  removed_events : int;
}

(* Replace element [i]; order is preserved. *)
let set_nth xs i x = List.mapi (fun j y -> if j = i then x else y) xs

let drop_nth xs i = List.filteri (fun j _ -> j <> i) xs

let minimize ~violates ?(round_to = Time.zero) ?(max_runs = 250) script0 =
  let runs = ref 0 in
  let accept cand =
    if !runs >= max_runs || cand = [] then false
    else begin
      incr runs;
      violates cand
    end
  in
  let current = ref script0 in
  (* Try each candidate in [cands]; commit the first accepted one. *)
  let first_accepted cands =
    match List.find_opt accept cands with
    | Some c ->
      current := c;
      true
    | None -> false
  in
  (* Pass 1: drop events. Halves first (cheap when most of the script is
     noise), then single events to a fixpoint. *)
  let rec drop_halves () =
    let s = !current in
    let n = List.length s in
    if n >= 4 then begin
      let half = n / 2 in
      let front = List.filteri (fun i _ -> i < half) s in
      let back = List.filteri (fun i _ -> i >= half) s in
      if first_accepted [ front; back ] then drop_halves ()
    end
  in
  let rec drop_singles () =
    let s = !current in
    let cands = List.mapi (fun i _ -> drop_nth s i) s in
    if first_accepted cands then drop_singles ()
  in
  (* Pass 2: simplify activation times — to zero, else rounded down. *)
  let simplify_times () =
    let changed = ref false in
    (* this pass never changes the script's length, so indices stay valid *)
    for i = 0 to List.length !current - 1 do
      let s = !current in
      let cur = List.nth s i in
      if cur.Fault.at <> Time.zero then begin
        let zeroed = set_nth s i { cur with Fault.at = Time.zero } in
        if accept zeroed then begin
          current := zeroed;
          changed := true
        end
        else if round_to > Time.zero then begin
          let rounded = Time.mul round_to (cur.Fault.at / round_to) in
          if rounded < cur.Fault.at then
            let cand = set_nth s i { cur with Fault.at = rounded } in
            if accept cand then begin
              current := cand;
              changed := true
            end
        end
      end
    done;
    !changed
  in
  (* Pass 3: shrink behaviour parameters toward their floor. *)
  let weaken (b : Fault.behavior) =
    match b with
    | Fault.Babble { bogus_per_period } when bogus_per_period > 1 ->
      Some (Fault.Babble { bogus_per_period = bogus_per_period / 2 })
    | Fault.Delay_outputs d when d > Time.ms 1 ->
      Some (Fault.Delay_outputs (Time.max (Time.ms 1) (Time.div d 2)))
    | Fault.Omit_to (_ :: _ :: _ as targets) ->
      Some (Fault.Omit_to (List.tl targets))
    | _ -> None
  in
  let rec simplify_params i =
    let s = !current in
    if i >= List.length s then false
    else
      let e = List.nth s i in
      match weaken e.Fault.behavior with
      | Some b when accept (set_nth s i { e with Fault.behavior = b }) ->
        current := set_nth s i { e with Fault.behavior = b };
        (* retry the same event: parameters shrink geometrically *)
        ignore (simplify_params i);
        true
      | _ -> simplify_params (i + 1)
  in
  let rec fixpoint () =
    let before = !current in
    drop_halves ();
    drop_singles ();
    let t = simplify_times () in
    let p = simplify_params 0 in
    if (t || p || !current <> before) && !runs < max_runs then fixpoint ()
  in
  if script0 <> [] && max_runs > 0 then fixpoint ();
  let script = List.sort compare_event !current in
  {
    script;
    runs = !runs;
    initial_events = List.length script0;
    removed_events = List.length script0 - List.length script;
  }
