(* Distributed, resumable campaign orchestration: sharding, resume,
   combine, adaptive frontier search. See orchestrate.mli.

   The whole module trades on one property of the executor: a trial's
   verdict (and its serialized line) is a pure function of the campaign
   spec and the trial index. Sharding, resuming and combining therefore
   only ever *partition* or *reuse* work — they can cross-check every
   merge byte-for-byte, and the canonical artifact of a campaign is
   unique however its execution was sliced. *)

open Btr_util
module Obs = Btr_obs.Obs
module J = Campaign.Flat_json

(* ------------------------------------------------------------------ *)
(* Sharding                                                            *)

type shard = { index : int; count : int }

let unsharded = { index = 0; count = 1 }

let shard_to_string s = Printf.sprintf "%d/%d" s.index s.count

let valid_shard s = s.count >= 1 && s.index >= 0 && s.index < s.count

let shard_of_string str =
  let bad () = Error (Printf.sprintf "bad shard %S (want i/n with 0 <= i < n)" str) in
  match String.split_on_char '/' (String.trim str) with
  | [ i; n ] -> (
    match int_of_string_opt i, int_of_string_opt n with
    | Some index, Some count when valid_shard { index; count } -> Ok { index; count }
    | _ -> bad ())
  | _ -> bad ()

(* The stable rule. Hashing (seed, index) — never the schedule bytes —
   keeps the partition independent of generator changes within a seed
   and spreads neighbouring indices (which share a grid config) across
   shards, so every shard planning-caches roughly the same configs.
   One FNV-1a pass is not enough here: when inputs differ only in the
   trailing index digits, the hash is near-linear in that digit (the
   final multiplies only carry upward), so [mod 2] would alternate
   even/odd and glue every even grid config to shard 0. Hashing the
   hex rendering of the first pass runs every output bit back through
   sixteen mixing rounds and disperses the low bits properly. *)
let shard_of_trial ~seed ~count i =
  if count <= 1 then 0
  else
    Fnv.hash (Fnv.to_hex (Fnv.hash64 (Printf.sprintf "trial:%d:%d" seed i)))
    mod count

let shard_trials shard (spec : Campaign.spec) =
  List.filter
    (fun (t : Campaign.trial) ->
      shard_of_trial ~seed:spec.seed ~count:shard.count t.index = shard.index)
    (Campaign.compile spec)

(* ------------------------------------------------------------------ *)
(* Spec fingerprints                                                   *)

let spec_fingerprint (spec : Campaign.spec) =
  let trial_line (t : Campaign.trial) =
    Printf.sprintf "%d|%d|%s|%d|%s" t.index t.runtime_seed
      (Campaign.script_to_string t.script)
      t.horizon
      (Format.asprintf "%a" Campaign.pp_params t.params)
  in
  let header =
    Printf.sprintf "spec|seed=%d|trials=%d|shrink=%b|budget=%d|grid=%s" spec.seed
      spec.trials spec.shrink spec.shrink_budget
      (Campaign.grid_axes spec.grid)
  in
  Fnv.to_hex (Fnv.hash64_lines (header :: List.map trial_line (Campaign.compile spec)))

(* ------------------------------------------------------------------ *)
(* Artifact lines                                                      *)

let int_of fields k = match List.assoc_opt k fields with Some (J.Int i) -> Some i | _ -> None
let str_of fields k = match List.assoc_opt k fields with Some (J.Str s) -> Some s | _ -> None

let bool_of fields k =
  match List.assoc_opt k fields with Some (J.Bool b) -> Some b | _ -> None

let header_line ~seed ~trials ~configs ~shrink ~grid ~spec_fp shard =
  J.to_string
    [
      ("campaign", J.Int 2);
      ("seed", J.Int seed);
      ("trials", J.Int trials);
      ("configs", J.Int configs);
      ("shrink", J.Bool shrink);
      ("grid", J.Str grid);
      ("spec_fp", J.Str spec_fp);
      ("shard_index", J.Int shard.index);
      ("shard_count", J.Int shard.count);
    ]

let verdict_name_of_line line =
  match J.parse line with Ok fields -> str_of fields "verdict" | Error _ -> None

(* The summary's tallies are recomputed from the verdict lines so a
   resumed or combined artifact summarizes the merged whole, not just
   the freshly executed part. No cache_hits/cache_misses here: those
   depend on how execution was partitioned, and the summary must be
   byte-identical however the campaign was sliced. *)
let summary_line ~verdict_lines ~configs ~complete shard =
  let tally v =
    List.length (List.filter (fun l -> verdict_name_of_line l = Some v) verdict_lines)
  in
  J.to_string
    [
      ("total", J.Int (List.length verdict_lines));
      ("violations", J.Int (tally "violation"));
      ("rejected", J.Int (tally "rejected"));
      ("errors", J.Int (tally "error"));
      ("configs", J.Int configs);
      ("complete", J.Bool complete);
      ("shard_index", J.Int shard.index);
      ("shard_count", J.Int shard.count);
      ("fingerprint", J.Str (Fnv.to_hex (Fnv.hash64_lines verdict_lines)));
    ]

type artifact = {
  a_seed : int;
  a_trials : int;
  a_configs : int;
  a_shrink : bool;
  a_grid : string;
  a_spec_fp : string;
  a_shard : shard;
  a_complete : bool;
  a_fingerprint : string;
  a_verdicts : (int * string) list;
  a_violations : (int * string) list;
}

let parse_artifact lines =
  let nonblank = List.filter (fun l -> String.trim l <> "") lines in
  (* Parse every line; a torn final line (the writer was killed
     mid-write) is dropped, anything else malformed is an error. *)
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | [ last ] -> (
      match J.parse last with
      | Ok f -> Ok (List.rev ((last, f) :: acc))
      | Error _ -> Ok (List.rev acc))
    | l :: rest -> (
      match J.parse l with
      | Ok f -> parse_all ((l, f) :: acc) rest
      | Error m -> Error (Printf.sprintf "malformed artifact line %S: %s" l m))
  in
  let ( let* ) r k = match r with Error _ as e -> e | Ok v -> k v in
  let* objs = parse_all [] nonblank in
  let headers = List.filter (fun (_, f) -> int_of f "campaign" <> None) objs in
  let summaries = List.filter (fun (_, f) -> int_of f "total" <> None) objs in
  let* _, header =
    match headers with
    | [ h ] -> Ok h
    | [] -> Error "artifact has no header line"
    | _ -> Error "artifact has multiple header lines (concatenated shards? use combine)"
  in
  let* () =
    match int_of header "campaign" with
    | Some 2 -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf
           "artifact version %d is not orchestrated (re-run campaign run to upgrade)" v)
    | None -> Error "artifact header has no version"
  in
  let* summary =
    match summaries with
    | [] -> Ok None
    | [ (_, s) ] -> Ok (Some s)
    | _ -> Error "artifact has multiple summary lines"
  in
  let req name =
    match int_of header name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "artifact header is missing %S" name)
  in
  let* a_seed = req "seed" in
  let* a_trials = req "trials" in
  let* a_configs = req "configs" in
  let* shard_index = req "shard_index" in
  let* shard_count = req "shard_count" in
  let a_shard = { index = shard_index; count = shard_count } in
  let* () =
    if valid_shard a_shard then Ok ()
    else Error (Printf.sprintf "artifact header has bad shard %s" (shard_to_string a_shard))
  in
  let* a_shrink =
    match bool_of header "shrink" with
    | Some b -> Ok b
    | None -> Error "artifact header is missing \"shrink\""
  in
  let* a_grid =
    match str_of header "grid" with
    | Some g -> Ok g
    | None -> Error "artifact header is missing \"grid\""
  in
  let* a_spec_fp =
    match str_of header "spec_fp" with
    | Some fp -> Ok fp
    | None -> Error "artifact header is missing \"spec_fp\""
  in
  let keyed key =
    List.filter_map
      (fun (line, f) -> match int_of f key with Some i -> Some (i, line) | None -> None)
      objs
  in
  let sort l = List.sort (fun (a, _) (b, _) -> Int.compare a b) l in
  let a_verdicts = sort (keyed "trial") in
  let a_violations = sort (keyed "violation") in
  let* () =
    let rec dup = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then Some a else dup rest
      | _ -> None
    in
    match dup a_verdicts with
    | Some i -> Error (Printf.sprintf "artifact records trial %d twice" i)
    | None -> Ok ()
  in
  let a_complete =
    match summary with Some s -> bool_of s "complete" = Some true | None -> false
  in
  let a_fingerprint =
    match summary with
    | Some s -> Option.value ~default:"" (str_of s "fingerprint")
    | None -> ""
  in
  Ok
    {
      a_seed;
      a_trials;
      a_configs;
      a_shrink;
      a_grid;
      a_spec_fp;
      a_shard;
      a_complete;
      a_fingerprint;
      a_verdicts;
      a_violations;
    }

(* ------------------------------------------------------------------ *)
(* Orchestrated runs                                                   *)

type run_result = {
  lines : string list;
  total : int;
  executed : int;
  skipped : int;
  complete : bool;
  has_violations : bool;
  new_violations : Campaign.shrunk_violation list;
}

let rec take k = function
  | [] -> []
  | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

let count_to reg name v =
  Obs.Counter.add (Obs.Registry.counter reg Obs.Campaign name) v

let assemble ~(spec : Campaign.spec) ~configs ~spec_fp ~shard ~complete ~verdicts
    ~violations =
  let verdict_lines = List.map snd verdicts in
  let header =
    header_line ~seed:spec.seed ~trials:spec.trials ~configs ~shrink:spec.shrink
      ~grid:(Campaign.grid_axes spec.grid) ~spec_fp shard
  in
  let summary = summary_line ~verdict_lines ~configs ~complete shard in
  let has_violations =
    List.exists (fun l -> verdict_name_of_line l = Some "violation") verdict_lines
  in
  ((header :: verdict_lines) @ List.map snd violations @ [ summary ], has_violations)

let run ?obs ?jobs ?resume ?max_trials ~shard (spec : Campaign.spec) =
  let ( let* ) r k = match r with Error _ as e -> e | Ok v -> k v in
  let* () =
    if valid_shard shard then Ok ()
    else Error (Printf.sprintf "bad shard %s" (shard_to_string shard))
  in
  let* () = Campaign.validate_grid spec.grid in
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let spec_fp = spec_fingerprint spec in
  let configs = List.length (Campaign.grid_params spec.grid) in
  let mine = shard_trials shard spec in
  let total = List.length mine in
  let reg = Obs.registry obs in
  Obs.Gauge.set (Obs.Registry.gauge reg Obs.Campaign "shard.index") shard.index;
  Obs.Gauge.set (Obs.Registry.gauge reg Obs.Campaign "shard.count") shard.count;
  count_to reg "shard.trials" total;
  if Obs.enabled obs then
    Obs.emit obs ~at:Time.zero Obs.Campaign
      (Obs.Campaign_sharded { shard = shard.index; shards = shard.count; trials = total });
  let* recorded_verdicts, recorded_violations =
    match resume with
    | None -> Ok ([], [])
    | Some (a : artifact) ->
      let* () =
        if a.a_shard <> shard then
          Error
            (Printf.sprintf "resume artifact is shard %s, this run is shard %s"
               (shard_to_string a.a_shard) (shard_to_string shard))
        else if a.a_seed <> spec.seed || a.a_trials <> spec.trials then
          Error
            (Printf.sprintf
               "resume artifact was seed %d / %d trials, this campaign is seed %d / %d \
                trials"
               a.a_seed a.a_trials spec.seed spec.trials)
        else if a.a_spec_fp <> spec_fp then
          Error
            (Printf.sprintf
               "resume artifact fingerprint %s does not match the compiled campaign %s \
                (different grid, shrink setting or generator?)"
               a.a_spec_fp spec_fp)
        else Ok ()
      in
      let* () =
        match
          List.find_opt
            (fun (i, _) ->
              not (List.exists (fun (t : Campaign.trial) -> t.index = i) mine))
            a.a_verdicts
        with
        | Some (i, _) ->
          Error
            (Printf.sprintf "resume artifact records trial %d, which is not in shard %s"
               i (shard_to_string shard))
        | None -> Ok ()
      in
      Ok (a.a_verdicts, a.a_violations)
  in
  let recorded i = List.mem_assoc i recorded_verdicts in
  let todo = List.filter (fun (t : Campaign.trial) -> not (recorded t.index)) mine in
  let skipped = total - List.length todo in
  count_to reg "resume.skipped" skipped;
  if Obs.enabled obs && resume <> None then
    Obs.emit obs ~at:Time.zero Obs.Campaign
      (Obs.Campaign_resumed { skipped; remaining = List.length todo });
  let todo = match max_trials with None -> todo | Some k -> take k todo in
  let executed = List.length todo in
  let result = Campaign.run_trials ~obs ?jobs spec todo in
  let new_verdicts =
    List.map
      (fun (v : Campaign.verdict) -> (v.trial.index, Campaign.verdict_json v))
      result.verdicts
  in
  let new_violation_lines =
    List.map
      (fun (s : Campaign.shrunk_violation) -> (s.source.index, Campaign.violation_json s))
      result.violations
  in
  let sort l = List.sort (fun (a, _) (b, _) -> Int.compare a b) l in
  let verdicts = sort (recorded_verdicts @ new_verdicts) in
  let violations = sort (recorded_violations @ new_violation_lines) in
  let complete = skipped + executed = total in
  let lines, has_violations =
    assemble ~spec ~configs ~spec_fp ~shard ~complete ~verdicts ~violations
  in
  Ok
    {
      lines;
      total;
      executed;
      skipped;
      complete;
      has_violations;
      new_violations = result.violations;
    }

(* ------------------------------------------------------------------ *)
(* Combine                                                             *)

let combine inputs =
  let ( let* ) r k = match r with Error _ as e -> e | Ok v -> k v in
  let* () = if inputs = [] then Error "no artifacts to combine" else Ok () in
  let rec parse_each i = function
    | [] -> Ok []
    | lines :: rest -> (
      match parse_artifact lines with
      | Error m -> Error (Printf.sprintf "artifact %d: %s" i m)
      | Ok a ->
        let* others = parse_each (i + 1) rest in
        Ok (a :: others))
  in
  let* arts = parse_each 0 inputs in
  let first = List.hd arts in
  let* () =
    match
      List.find_opt
        (fun a ->
          a.a_seed <> first.a_seed || a.a_trials <> first.a_trials
          || a.a_configs <> first.a_configs || a.a_shrink <> first.a_shrink
          || a.a_grid <> first.a_grid || a.a_spec_fp <> first.a_spec_fp)
        arts
    with
    | Some a ->
      Error
        (Printf.sprintf
           "artifacts disagree: spec %s (seed %d, %d trials) vs spec %s (seed %d, %d \
            trials) — shards of different campaigns cannot be combined"
           first.a_spec_fp first.a_seed first.a_trials a.a_spec_fp a.a_seed a.a_trials)
    | None -> Ok ()
  in
  let n = List.length arts in
  let* () =
    match List.find_opt (fun a -> a.a_shard.count <> n) arts with
    | Some a ->
      Error
        (Printf.sprintf "shard %s combined with %d artifact(s): need all %d shards"
           (shard_to_string a.a_shard) n a.a_shard.count)
    | None -> Ok ()
  in
  let indices = List.sort Int.compare (List.map (fun a -> a.a_shard.index) arts) in
  let* () =
    if indices = List.init n Fun.id then Ok ()
    else Error "shard indices are not exactly 0..n-1 (duplicate or missing shard)"
  in
  let* () =
    match List.find_opt (fun a -> not a.a_complete) arts with
    | Some a ->
      Error
        (Printf.sprintf "shard %s is incomplete — resume it before combining"
           (shard_to_string a.a_shard))
    | None -> Ok ()
  in
  (* Every trial index: recorded exactly once, in range, on the shard
     the rule assigns it to. *)
  let* () =
    let rec check_art = function
      | [] -> Ok ()
      | a :: rest ->
        let rec check_verdicts = function
          | [] -> check_art rest
          | (i, _) :: more ->
            if i < 0 || i >= first.a_trials then
              Error (Printf.sprintf "trial %d is outside 0..%d" i (first.a_trials - 1))
            else if shard_of_trial ~seed:first.a_seed ~count:n i <> a.a_shard.index then
              Error
                (Printf.sprintf
                   "trial %d is recorded in shard %d but hashes to shard %d — artifact \
                    was not produced by the sharding rule"
                   i a.a_shard.index
                   (shard_of_trial ~seed:first.a_seed ~count:n i))
            else check_verdicts more
        in
        check_verdicts a.a_verdicts
    in
    check_art arts
  in
  let verdicts =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.concat_map (fun a -> a.a_verdicts) arts)
  in
  let* () =
    if List.length verdicts = first.a_trials then Ok ()
    else
      Error
        (Printf.sprintf "combined shards record %d verdicts for %d trials"
           (List.length verdicts) first.a_trials)
  in
  let violations =
    List.sort (fun (a, _) (b, _) -> Int.compare a b)
      (List.concat_map (fun a -> a.a_violations) arts)
  in
  let verdict_lines = List.map snd verdicts in
  let header =
    header_line ~seed:first.a_seed ~trials:first.a_trials ~configs:first.a_configs
      ~shrink:first.a_shrink ~grid:first.a_grid ~spec_fp:first.a_spec_fp unsharded
  in
  let summary =
    summary_line ~verdict_lines ~configs:first.a_configs ~complete:true unsharded
  in
  let has_violations =
    List.exists (fun l -> verdict_name_of_line l = Some "violation") verdict_lines
  in
  Ok ((header :: verdict_lines) @ List.map snd violations @ [ summary ], has_violations)

(* ------------------------------------------------------------------ *)
(* Adaptive frontier search                                            *)

type axis = Axis_r | Axis_f | Axis_bandwidth | Axis_strikes

let axis_name = function
  | Axis_r -> "r"
  | Axis_f -> "f"
  | Axis_bandwidth -> "bandwidth"
  | Axis_strikes -> "strikes"

let axis_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "r" | "r_us" -> Ok Axis_r
  | "f" -> Ok Axis_f
  | "bandwidth" | "bw" -> Ok Axis_bandwidth
  | "strikes" -> Ok Axis_strikes
  | _ -> Error (Printf.sprintf "unknown axis %S (want r, f, bandwidth or strikes)" s)

type frontier_spec = {
  slice_grid : Campaign.grid;
  axis : axis;
  lo : int;
  hi : int;
  tolerance : int;
  probes : int;
  fseed : int;
}

type boundary = { admit_at : int; violate_at : int }

type slice_result = {
  slice : int;
  base : Campaign.params;
  lo_admit : bool;
  hi_admit : bool;
  found : boundary option;
  evals : int;
  probes_run : int;
}

type frontier_result = {
  fspec : frontier_spec;
  points : int;
  slices : slice_result list;
  total_probes : int;
}

let params_at axis (p : Campaign.params) v =
  match axis with
  | Axis_r -> { p with Campaign.r = v }
  | Axis_f -> { p with Campaign.f = v }
  | Axis_bandwidth -> { p with Campaign.bandwidth_bps = v }
  | Axis_strikes -> p (* strikes is a runtime knob, not a params field *)

(* The slice grid with the bisected axis collapsed to [lo]: what
   [grid_params] enumerates is then exactly the config slices, each
   carrying a placeholder on the bisected axis that [params_at]
   overwrites per evaluation. *)
let slice_axes fs =
  let g = fs.slice_grid in
  match fs.axis with
  | Axis_r -> { g with Campaign.recovery_bounds = [ fs.lo ] }
  | Axis_f -> { g with Campaign.fault_bounds = [ fs.lo ] }
  | Axis_bandwidth -> { g with Campaign.bandwidths = [ fs.lo ] }
  | Axis_strikes -> g

let validate_frontier fs =
  let ( let* ) r k = match r with Error _ as e -> e | Ok () -> k () in
  let check ok msg = if ok then Ok () else Error msg in
  let* () = check (fs.tolerance >= 1) "tolerance must be >= 1" in
  let* () = check (fs.probes >= 1) "probes must be >= 1" in
  let* () = check (fs.lo < fs.hi) "lo must be < hi" in
  let* () =
    check (fs.hi - fs.lo >= fs.tolerance) "range narrower than the tolerance lattice"
  in
  let* () =
    match fs.axis with
    | Axis_r | Axis_bandwidth | Axis_strikes ->
      check (fs.lo >= 1) (Printf.sprintf "%s lo must be >= 1" (axis_name fs.axis))
    | Axis_f -> check (fs.lo >= 0) "f lo must be >= 0"
  in
  Campaign.validate_grid (slice_axes fs)

(* One lattice point of one slice: admit iff the configuration is
   statically admitted and every probe schedule passes. Short-circuits
   on the first non-pass, so the probe count is data-dependent (and
   reported). Pure in (fseed, slice params, axis value) — the property
   bisection relies on. *)
let eval_point ~cache fs (base : Campaign.params) v =
  let p = params_at fs.axis base v in
  let strikes = match fs.axis with Axis_strikes -> Some v | _ -> None in
  let pspec =
    Campaign.spec
      ~grid:
        {
          Campaign.workloads = [ p.Campaign.workload ];
          topologies = [ p.Campaign.topology ];
          node_counts = [ p.Campaign.nodes ];
          fault_bounds = [ p.Campaign.f ];
          recovery_bounds = [ p.Campaign.r ];
          bandwidths = [ p.Campaign.bandwidth_bps ];
          protect_levels = [ p.Campaign.protect ];
          control_shares = [ p.Campaign.control_share ];
          classes = fs.slice_grid.Campaign.classes;
        }
      ~trials:fs.probes ~seed:fs.fseed ~shrink:false ()
  in
  let rec probe j used =
    if j >= fs.probes then (true, used)
    else
      match Campaign.trial_of_index pspec j with
      | None -> (false, used)
      | Some t -> (
        let outcome =
          Campaign.run_script ?strikes ~cache t.Campaign.params
            ~runtime_seed:t.Campaign.runtime_seed t.Campaign.script
        in
        match outcome with
        | Campaign.Pass _ -> probe (j + 1) (used + 1)
        | Campaign.Violation _ | Campaign.Rejected _ | Campaign.Errored _ ->
          (false, used + 1))
  in
  probe 0 0

(* Shared driver: [search] maps an eval-at-lattice-index function and
   the lattice size to (lo_admit, hi_admit, boundary, evals, probes). *)
let run_frontier ?obs fs ~search =
  match validate_frontier fs with
  | Error _ as e -> e
  | Ok () ->
    let obs = match obs with Some o -> o | None -> Obs.create () in
    let reg = Obs.registry obs in
    let points = ((fs.hi - fs.lo) / fs.tolerance) + 1 in
    let value_at k = fs.lo + (k * fs.tolerance) in
    let cache = Campaign.Cache.create ~seed:fs.fseed in
    let bases = Campaign.grid_params (slice_axes fs) in
    let slices =
      List.mapi
        (fun i base ->
          let eval_k k = eval_point ~cache fs base (value_at k) in
          let lo_admit, hi_admit, found, evals, probes_run = search eval_k points in
          let found =
            Option.map
              (fun (admit_k, violate_k) ->
                { admit_at = value_at admit_k; violate_at = value_at violate_k })
              found
          in
          count_to reg "frontier.probes" probes_run;
          count_to reg "frontier.evals" evals;
          count_to reg "frontier.slices" 1;
          if Obs.enabled obs then
            Obs.emit obs ~at:Time.zero Obs.Campaign
              (Obs.Frontier_located
                 {
                   slice = i;
                   axis = axis_name fs.axis;
                   boundary =
                     (match found with Some b -> b.admit_at | None -> -1);
                   probes = probes_run;
                 });
          { slice = i; base; lo_admit; hi_admit; found; evals; probes_run })
        bases
    in
    let total_probes = List.fold_left (fun a s -> a + s.probes_run) 0 slices in
    Ok { fspec = fs; points; slices; total_probes }

(* Lattice bisection: endpoints first; on disagreement, maintain the
   invariant verdict(lo_k) = verdict(0) and verdict(hi_k) = verdict(K)
   while halving, ending on the adjacent pair where the verdict flips —
   within one tolerance step, in 2 + ceil(log2 points) evaluations. *)
let bisect_search eval_k points =
  let a0, p0 = eval_k 0 in
  let aK, pK = eval_k (points - 1) in
  if a0 = aK then (a0, aK, None, 2, p0 + pK)
  else begin
    let lo_k = ref 0 and hi_k = ref (points - 1) in
    let evals = ref 2 and probes = ref (p0 + pK) in
    while !hi_k - !lo_k > 1 do
      let mid = (!lo_k + !hi_k) / 2 in
      let am, pm = eval_k mid in
      incr evals;
      probes := !probes + pm;
      if am = a0 then lo_k := mid else hi_k := mid
    done;
    let admit_k, violate_k = if a0 then (!lo_k, !hi_k) else (!hi_k, !lo_k) in
    (a0, aK, Some (admit_k, violate_k), !evals, !probes)
  end

(* The exhaustive reference: every lattice point, first flip wins. *)
let scan_search eval_k points =
  let verdicts = Array.init points (fun k -> eval_k k) in
  let evals = points in
  let probes = Array.fold_left (fun a (_, p) -> a + p) 0 verdicts in
  let a0 = fst verdicts.(0) in
  let aK = fst verdicts.(points - 1) in
  let rec first_flip k =
    if k >= points then None
    else if fst verdicts.(k) <> a0 then
      Some (if a0 then (k - 1, k) else (k, k - 1))
    else first_flip (k + 1)
  in
  (a0, aK, first_flip 1, evals, probes)

let frontier ?obs fs = run_frontier ?obs fs ~search:bisect_search
let grid_scan ?obs fs = run_frontier ?obs fs ~search:scan_search

(* ------------------------------------------------------------------ *)
(* Frontier artifacts                                                  *)

let frontier_lines fr =
  let fs = fr.fspec in
  let header =
    J.to_string
      [
        ("frontier", J.Int 1);
        ("seed", J.Int fs.fseed);
        ("axis", J.Str (axis_name fs.axis));
        ("lo", J.Int fs.lo);
        ("hi", J.Int (fs.lo + ((fr.points - 1) * fs.tolerance)));
        ("tolerance", J.Int fs.tolerance);
        ("probes_per_point", J.Int fs.probes);
        ("points", J.Int fr.points);
        ("slices", J.Int (List.length fr.slices));
        ("grid", J.Str (Campaign.grid_axes (slice_axes fs)));
      ]
  in
  let slice_line s =
    J.to_string
      ([ ("slice", J.Int s.slice) ]
      @ Campaign.params_fields s.base
      @ [ ("lo_admit", J.Bool s.lo_admit); ("hi_admit", J.Bool s.hi_admit) ]
      @ (match s.found with
        | Some b -> [ ("admit_at", J.Int b.admit_at); ("violate_at", J.Int b.violate_at) ]
        | None -> [ ("no_boundary", J.Bool true) ])
      @ [ ("evals", J.Int s.evals); ("probes", J.Int s.probes_run) ])
  in
  let slice_lines = List.map slice_line fr.slices in
  let summary =
    J.to_string
      [
        ("slices", J.Int (List.length fr.slices));
        ("boundaries", J.Int (List.length (List.filter (fun s -> s.found <> None) fr.slices)));
        ("total_probes", J.Int fr.total_probes);
        ("fingerprint", J.Str (Fnv.to_hex (Fnv.hash64_lines slice_lines)));
      ]
  in
  (header :: slice_lines) @ [ summary ]

let is_frontier_artifact lines =
  match List.find_opt (fun l -> String.trim l <> "") lines with
  | None -> false
  | Some l -> ( match J.parse l with Ok f -> int_of f "frontier" <> None | Error _ -> false)

let render_frontier lines =
  let nonblank = List.filter (fun l -> String.trim l <> "") lines in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match J.parse l with
      | Ok f -> parse_all (f :: acc) rest
      | Error m -> Error (Printf.sprintf "malformed frontier line %S: %s" l m))
  in
  match parse_all [] nonblank with
  | Error _ as e -> e
  | Ok objs -> (
    match List.find_opt (fun f -> int_of f "frontier" <> None) objs with
    | None -> Error "not a frontier artifact (no frontier header)"
    | Some header ->
      let axis = Option.value ~default:"?" (str_of header "axis") in
      let slices = List.filter (fun f -> int_of f "slice" <> None) objs in
      let summary = List.find_opt (fun f -> int_of f "total_probes" <> None) objs in
      let show v = if axis = "r" then Time.to_string v else string_of_int v in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf
           "frontier report: axis %s in [%s, %s] step %s, %s probes/point, %d slices%s\n"
           axis
           (match int_of header "lo" with Some v -> show v | None -> "?")
           (match int_of header "hi" with Some v -> show v | None -> "?")
           (match int_of header "tolerance" with Some v -> show v | None -> "?")
           (match int_of header "probes_per_point" with
           | Some v -> string_of_int v
           | None -> "?")
           (List.length slices)
           (match summary with
           | Some s -> (
             match int_of s "total_probes" with
             | Some p -> Printf.sprintf ", %d probes total" p
             | None -> "")
           | None -> ""));
      Buffer.add_char buf '\n';
      let table =
        Table.create ~title:"admit/violate boundary"
          ~header:[ "slice"; "configuration"; "boundary"; "evals"; "probes" ]
      in
      List.iter
        (fun o ->
          let istr k = match int_of o k with Some v -> string_of_int v | None -> "?" in
          let sstr k = Option.value ~default:"?" (str_of o k) in
          let axis_marked k name =
            if axis = name then "*" else istr k
          in
          let config =
            Printf.sprintf "%s/%s n=%s f=%s R=%s bw=%s %s share=%s" (sstr "workload")
              (sstr "topology") (istr "nodes") (axis_marked "f" "f")
              (if axis = "r" then "*"
               else
                 match int_of o "r_us" with Some v -> Time.to_string v | None -> "?")
              (axis_marked "bandwidth_bps" "bandwidth")
              (sstr "protect") (sstr "control_share")
          in
          let boundary =
            match int_of o "admit_at", int_of o "violate_at" with
            | Some a, Some v ->
              if a > v then Printf.sprintf "admit >= %s (violate <= %s)" (show a) (show v)
              else Printf.sprintf "admit <= %s (violate >= %s)" (show a) (show v)
            | _ -> (
              match bool_of o "lo_admit" with
              | Some true -> "all admit"
              | Some false -> "all violate"
              | None -> "?")
          in
          Table.add_row table
            [ istr "slice"; config; boundary; istr "evals"; istr "probes" ])
        slices;
      Buffer.add_string buf (Table.render table);
      Ok (Buffer.contents buf))
