open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Schedule = Btr_sched.Schedule
module Topology = Btr_net.Topology
module Net = Btr_net.Net

type reassignment = Minimal | Naive

type config = {
  f : int;
  recovery_bound : Time.t;
  protect_level : Task.criticality;
  degree : int;
  checker_overhead : Time.t;
  guard_wcet : Time.t;
  digest_size : int;
  evidence_size : int;
  detection_margin : Time.t;
  reassignment : reassignment;
  shares : Net.shares option;
}

let default_config ~f ~recovery_bound =
  {
    f;
    recovery_bound;
    protect_level = Task.Medium;
    degree = f + 1;
    checker_overhead = Time.us 100;
    guard_wcet = Time.us 200;
    digest_size = 32;
    evidence_size = 160;
    detection_margin = Time.ms 1;
    reassignment = Minimal;
    shares = None;
  }

(* A total, deterministic serialization of a *resolved* config. Two
   configs with equal fields get equal keys even when they were produced
   by different [tune] closures, so caches of built strategies (the
   campaign plan cache) can key on this instead of physical equality. *)
let config_key c =
  let crit l = Format.asprintf "%a" Task.pp_criticality l in
  let shares =
    match c.shares with
    | None -> "default"
    | Some s -> Printf.sprintf "%.6f/%.6f" s.Net.data_frac s.Net.control_frac
  in
  Printf.sprintf
    "f=%d;R=%d;protect=%s;degree=%d;checker=%d;guard=%d;digest=%d;evidence=%d;margin=%d;reassign=%s;shares=%s"
    c.f c.recovery_bound (crit c.protect_level) c.degree c.checker_overhead
    c.guard_wcet c.digest_size c.evidence_size c.detection_margin
    (match c.reassignment with Minimal -> "minimal" | Naive -> "naive")
    shares

(* FNV-1a rather than [Hashtbl.hash]: shard selectors derived from this
   must agree across processes and OCaml versions, or a resharded cache
   would silently change its contention profile between CI and hosts. *)
let config_key_hash c = Fnv.hash (config_key c)

(* The requested R is the one config field planning never reads: it
   gates [admitted] and the verifier's budget checks, but plans,
   schedules and transitions are computed without it. Keying plan reuse
   on the R-stripped serialization is what lets an R-only edit (or a
   campaign R-grid neighbor) reuse every plan. *)
let config_build_key c = config_key { c with recovery_bound = Time.zero }

(* {2 Dependency fingerprints}

   FNV-1a over a total serialization of exactly what planning reads.
   Equal fingerprints mean equal inputs, and planning is deterministic,
   so equal fingerprints imply equal outputs — the soundness basis for
   [replan_delta]'s plan reuse and for [Btr_check.Incr]'s memo keys. *)

let fp_buf_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let fp_buf_str b s =
  Buffer.add_string b s;
  Buffer.add_char b ';'

let workload_fingerprint (g : Graph.t) =
  let b = Buffer.create 1024 in
  fp_buf_int b (Graph.period g);
  List.iter
    (fun (x : Task.t) ->
      fp_buf_int b x.id;
      fp_buf_str b x.name;
      fp_buf_str b
        (match x.kind with
        | Task.Source -> "src"
        | Task.Compute -> "comp"
        | Task.Sink -> "sink");
      fp_buf_int b x.wcet;
      fp_buf_int b (Task.criticality_rank x.criticality);
      fp_buf_int b x.state_size;
      fp_buf_int b (match x.pinned with None -> -1 | Some n -> n))
    (Graph.tasks g);
  Buffer.add_char b '|';
  List.iter
    (fun (fl : Graph.flow) ->
      fp_buf_int b fl.flow_id;
      fp_buf_int b fl.producer;
      fp_buf_int b fl.consumer;
      fp_buf_int b fl.msg_size;
      fp_buf_int b (match fl.deadline with None -> -1 | Some d -> d))
    (Graph.flows g);
  Fnv.hash64 (Buffer.contents b)

let topology_fingerprint topo =
  let b = Buffer.create 1024 in
  List.iter (fp_buf_int b) (Topology.nodes topo);
  Buffer.add_char b '|';
  List.iter
    (fun (l : Topology.link) ->
      fp_buf_int b l.link_id;
      List.iter (fp_buf_int b) l.members;
      Buffer.add_char b ':';
      fp_buf_int b l.bandwidth_bps;
      fp_buf_int b l.latency)
    (Topology.links topo);
  Fnv.hash64 (Buffer.contents b)

(* Per-mode fingerprint, chained through the parent mode: a mode's plan
   depends on the workload, topology, R-stripped config, its own fault
   pattern, and (under Minimal reassignment) the parent mode's plan —
   which the parent's fingerprint already covers inductively. *)
let mode_fp ~base ~parent_fp ~mode_key =
  Fnv.hash64_lines
    [
      Fnv.to_hex base;
      (match parent_fp with None -> "-" | Some h -> Fnv.to_hex h);
      mode_key;
    ]

type plan = {
  faulty : int list;
  aug : Augment.t;
  assignment : (Task.id * int) list;
  schedule : Schedule.t;
  shed_below : Task.criticality option;
  lost_tasks : Task.id list;
}

let assignment_of plan tid = List.assoc_opt tid plan.assignment

type transition = {
  from_faulty : int list;
  new_fault : int;
  to_faulty : int list;
  moved : (Task.id * int * int) list;
  started : Task.id list;
  stopped : Task.id list;
  state_bytes : int;
  migration_bound : Time.t;
  recovery_bound : Time.t;
}

type stats = {
  modes : int;
  transitions : int;
  planning_seconds : float;
  worst_recovery : Time.t;
  total_moved_state : int;
}

type t = {
  config : config;
  workload : Graph.t;
  topology : Topology.t;
  plans : (string, plan) Hashtbl.t;
  transitions : (string * int, transition) Hashtbl.t;
  mode_fps : (string, int64) Hashtbl.t;
      (* per-mode dependency fingerprint, keyed like [plans] *)
  stats : stats;
}

type delta = {
  reused_modes : int;
  replanned_modes : int;
  reused_transitions : int;
  rebuilt_transitions : int;
  churn_moved_tasks : int;
}

type error =
  | Unschedulable of { faulty : int list; reason : string }
  | Disconnected of { faulty : int list }
  | Bad_config of string
  | Rejected of { diagnostics : (string * string) list }

let pp_fault_set ppf fs =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int fs))

let pp_error ppf = function
  | Unschedulable { faulty; reason } ->
    Format.fprintf ppf "mode %a unschedulable: %s" pp_fault_set faulty reason
  | Disconnected { faulty } ->
    Format.fprintf ppf "mode %a disconnects the surviving nodes" pp_fault_set faulty
  | Bad_config msg -> Format.fprintf ppf "bad config: %s" msg
  | Rejected { diagnostics } ->
    Format.fprintf ppf "strategy rejected by static verification:";
    List.iter
      (fun (code, msg) -> Format.fprintf ppf "@\n  [%s] %s" code msg)
      diagnostics

let key faulty = String.concat "," (List.map string_of_int (List.sort_uniq Int.compare faulty))

let cmp_transition_key (k1, y1) (k2, y2) =
  match String.compare k1 k2 with 0 -> Int.compare y1 y2 | c -> c

let xfer_of cfg topo ~faulty ~cls ~src ~dst ~size_bytes =
  Net.plan_transfer_time topo ?shares:cfg.shares ~avoid:faulty ~cls ~src ~dst
    ~size_bytes ()

(* Every ≤ f sized subset of nodes, smallest first so parents precede
   children in Minimal mode. *)
let fault_patterns nodes f =
  let rec subsets k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  in
  List.concat_map (fun k -> List.map (List.sort Int.compare) (subsets k nodes))
    (List.init (f + 1) Fun.id)

(* Greedy placement of the augmented graph onto the alive nodes. *)
let place_tasks cfg topo aug ~alive ~faulty ~parent =
  let g = aug.Augment.graph in
  let assignment : (Task.id, int) Hashtbl.t = Hashtbl.create 64 in
  let busy : (int, Time.t) Hashtbl.t = Hashtbl.create 16 in
  let busy_of n = Option.value ~default:Time.zero (Hashtbl.find_opt busy n) in
  let lanes_on_node orig n =
    List.exists
      (fun l -> Hashtbl.find_opt assignment l = Some n)
      (Augment.replicas_of aug orig)
  in
  let parent_node tid =
    match parent with
    | Some p when cfg.reassignment = Minimal -> assignment_of p tid
    | _ -> None
  in
  (* Locality costs probe transfer time from every already-placed
     producer to every candidate node. One BFS sweep per producer host
     (cached for the whole placement) answers all those probes with the
     exact routes the pairwise [xfer_of] would have found. *)
  let shares =
    match cfg.shares with Some s -> s | None -> Net.default_shares_for topo
  in
  let usable n = not (List.mem n faulty) in
  let sweeps : (int, Topology.paths) Hashtbl.t = Hashtbl.create 16 in
  let xfer_data ~src ~dst ~size_bytes =
    let p =
      match Hashtbl.find_opt sweeps src with
      | Some p -> p
      | None ->
        let p = Topology.paths_from topo ~usable ~src in
        Hashtbl.replace sweeps src p;
        p
    in
    match Topology.path_to p ~dst with
    | None -> None
    | Some path ->
      Some (Net.path_transfer_time shares ~cls:Net.Data ~size_bytes path)
  in
  let locality_cost tid n =
    List.fold_left
      (fun acc (fl : Graph.flow) ->
        match Hashtbl.find_opt assignment fl.producer with
        | None -> acc
        | Some pn ->
          if pn = n then acc
          else
            acc
            + Option.value ~default:1_000_000
                (xfer_data ~src:pn ~dst:n ~size_bytes:fl.msg_size))
      0 (Graph.producers_of g tid)
  in
  let cost tid n =
    let task = Graph.task g tid in
    let sep_penalty =
      match Augment.role_of aug tid with
      | Augment.Replica { orig; _ } ->
        (* Hard: two lanes of one task must not share a node. *)
        if lanes_on_node orig n then Some `Forbidden else None
      | Augment.Checker { orig } ->
        (* Soft but heavy: the checker should not sit with a lane it
           checks, or a faulty node could silence its own accuser. *)
        if lanes_on_node orig n then Some `Heavy else None
      | Augment.Original | Augment.Guard _ -> None
    in
    match sep_penalty with
    | Some `Forbidden -> None
    | pen ->
      let base =
        locality_cost tid n
        + (busy_of n / 2)
        + (if parent_node tid = Some n then -50_000 else 0)
        + (match pen with Some `Heavy -> 500_000 | _ -> 0)
      in
      ignore task;
      Some base
  in
  let exception Stuck of Task.id in
  try
    List.iter
      (fun tid ->
        let task = Graph.task g tid in
        let node =
          match task.Task.pinned with
          | Some n -> if List.mem n alive then n else raise (Stuck tid)
          | None ->
            let best =
              List.fold_left
                (fun best n ->
                  match cost tid n with
                  | None -> best
                  | Some c -> (
                    match best with
                    | Some (_, bc) when bc <= c -> best
                    | _ -> Some (n, c)))
                None alive
            in
            (match best with Some (n, _) -> n | None -> raise (Stuck tid))
        in
        Hashtbl.replace assignment tid node;
        Hashtbl.replace busy node (Time.add (busy_of node) task.Task.wcet))
      (Graph.topo_order g);
    Ok
      (List.map
         (fun (x : Task.t) -> (x.id, Hashtbl.find assignment x.id))
         (Graph.tasks g))
  with Stuck tid -> Error (Printf.sprintf "no feasible node for task %d" tid)

(* One mode: shed criticality levels from the bottom until schedulable. *)
let plan_mode cfg workload topo ~faulty ~parent =
  let alive =
    List.filter (fun n -> not (List.mem n faulty)) (Topology.nodes topo)
  in
  let lost_tasks =
    List.filter_map
      (fun (x : Task.t) ->
        match x.pinned with
        | Some n when List.mem n faulty -> Some x.id
        | _ -> None)
      (Graph.tasks workload)
  in
  let attempt floor =
    let keep (x : Task.t) =
      Task.compare_criticality x.criticality floor >= 0
      && not (List.mem x.id lost_tasks)
    in
    let kept = Graph.restrict workload ~keep in
    let aug =
      Augment.augment kept ~nodes:alive ~degree:cfg.degree
        ~protect_level:cfg.protect_level ~checker_overhead:cfg.checker_overhead
        ~guard_wcet:cfg.guard_wcet ~digest_size:cfg.digest_size
    in
    match place_tasks cfg topo aug ~alive ~faulty ~parent with
    | Error reason -> Error reason
    | Ok assignment ->
      let place tid = List.assoc tid assignment in
      let xfer ~src ~dst ~size_bytes =
        if src = dst then Some Time.zero
        else xfer_of cfg topo ~faulty ~cls:Net.Data ~src ~dst ~size_bytes
      in
      (match Schedule.list_schedule aug.Augment.graph ~place ~xfer with
      | Ok schedule ->
        Ok
          {
            faulty;
            aug;
            assignment;
            schedule;
            shed_below = (if floor = Task.Best_effort then None else Some floor);
            lost_tasks;
          }
      | Error failure ->
        Error (Format.asprintf "%a" Schedule.pp_failure failure))
  in
  let rec try_floors last_err = function
    | [] ->
      Error
        (Unschedulable
           { faulty; reason = Option.value ~default:"no tasks left" last_err })
    | floor :: rest -> (
      match attempt floor with
      | Ok plan -> Ok plan
      | Error reason -> try_floors (Some reason) rest)
  in
  try_floors None Task.all_criticalities

(* Bounded evidence-distribution latency in the new mode: worst-case
   pairwise control-class transfer among surviving nodes. One
   cost-accumulating BFS per source replaces the per-pair route+fold —
   same routes, same per-pair sums, same max — taking the bound from
   O(n³) to O(n·memberships) per fault set. *)
let evidence_bound cfg topo ~faulty =
  let shares =
    match cfg.shares with Some s -> s | None -> Net.default_shares_for topo
  in
  let alive =
    List.filter (fun n -> not (List.mem n faulty)) (Topology.nodes topo)
  in
  let usable n = not (List.mem n faulty) in
  let link_cost =
    Net.link_transfer_time shares ~cls:Net.Control ~size_bytes:cfg.evidence_size
  in
  List.fold_left
    (fun acc a ->
      let costs = Topology.cost_from topo ~usable ~src:a ~link_cost in
      List.fold_left
        (fun acc b ->
          if a = b then acc
          else
            match Hashtbl.find_opt costs b with
            | Some d -> Time.max acc d
            | None -> acc)
        acc alive)
    Time.zero alive

let make_transition ?evb cfg topo ~from_plan ~to_plan ~new_fault =
  let faulty = to_plan.faulty in
  let assigned p = p.assignment in
  let from_assign = assigned from_plan and to_assign = assigned to_plan in
  let moved =
    List.filter_map
      (fun (tid, to_node) ->
        match List.assoc_opt tid from_assign with
        | Some from_node when from_node <> to_node -> Some (tid, from_node, to_node)
        | _ -> None)
      to_assign
  in
  let started =
    List.filter_map
      (fun (tid, _) ->
        if List.mem_assoc tid from_assign then None else Some tid)
      to_assign
  in
  let stopped =
    List.filter_map
      (fun (tid, _) -> if List.mem_assoc tid to_assign then None else Some tid)
      from_assign
  in
  let g = to_plan.aug.Augment.graph in
  let state_of tid =
    match Graph.task g tid with
    | x -> x.Task.state_size
    | exception Invalid_argument _ -> 0
  in
  (* State moves only from surviving nodes; a faulty node's state is
     lost and the task restarts fresh. Transfers from one sender
     serialize on its control reservation, so the bound is the largest
     per-sender total. *)
  let migrations =
    List.filter (fun (_, from_node, _) -> not (List.mem from_node faulty)) moved
  in
  let state_bytes = List.fold_left (fun acc (tid, _, _) -> acc + state_of tid) 0 migrations in
  let senders = List.sort_uniq Int.compare (List.map (fun (_, f, _) -> f) migrations) in
  let migration_bound =
    List.fold_left
      (fun acc sender ->
        let total =
          List.fold_left
            (fun acc (tid, from_node, to_node) ->
              if from_node <> sender then acc
              else
                match
                  xfer_of cfg topo ~faulty ~cls:Net.Control ~src:from_node
                    ~dst:to_node ~size_bytes:(Stdlib.max 1 (state_of tid))
                with
                | Some d -> Time.add acc d
                | None -> acc)
            Time.zero migrations
        in
        Time.max acc total)
      Time.zero senders
  in
  let period = Graph.period g in
  let evidence =
    match evb with
    | Some f -> f faulty
    | None -> evidence_bound cfg topo ~faulty
  in
  let recovery_bound =
    Time.add
      (Time.add (Time.add period cfg.detection_margin) evidence)
      (Time.add migration_bound period)
  in
  {
    from_faulty = from_plan.faulty;
    new_fault;
    to_faulty = faulty;
    moved;
    started;
    stopped;
    state_bytes;
    migration_bound;
    recovery_bound;
  }

(* Shared core of [build] and [replan_delta]. When [previous] is given,
   a mode whose dependency fingerprint is unchanged reuses the previous
   plan verbatim (skipping the connectivity check too: equal
   fingerprints mean the topology and fault pattern are the ones the
   previous — connected — build saw). A transition is reused when its
   destination mode is reused: the destination fingerprint chains
   through the source mode's, so both endpoint plans are unchanged and
   [make_transition] is deterministic in them. [evidence_cache]
   (keyed by [key faulty]) persists evidence bounds across calls; the
   caller must flush it whenever topology, shares or evidence size
   change — fingerprint reuse is unaffected either way, the cache only
   short-circuits recomputation for rebuilt transitions. *)
let build_with ?previous ?evidence_cache cfg workload topo =
  let n = Topology.node_count topo in
  if cfg.f < 0 then Error (Bad_config "f < 0")
  else if cfg.degree < 1 then Error (Bad_config "degree < 1")
  else if cfg.degree > n - cfg.f then
    Error
      (Bad_config
         (Printf.sprintf "degree %d > surviving nodes %d: lanes cannot be separated"
            cfg.degree (n - cfg.f)))
  else begin
    (* btr-lint: allow wall-clock — planning_seconds is wall-clock
       telemetry about the planner itself; it never enters a trace. *)
    let started_at = Sys.time () in
    let plans = Hashtbl.create 64 in
    let transitions = Hashtbl.create 64 in
    let mode_fps = Hashtbl.create 64 in
    let base =
      Fnv.hash64_lines
        [
          Fnv.to_hex (workload_fingerprint workload);
          Fnv.to_hex (topology_fingerprint topo);
          config_build_key cfg;
        ]
    in
    let evb_cache =
      match evidence_cache with Some h -> h | None -> Hashtbl.create 16
    in
    let evb faulty =
      let k = key faulty in
      match Hashtbl.find_opt evb_cache k with
      | Some v -> v
      | None ->
        let v = evidence_bound cfg topo ~faulty in
        Hashtbl.replace evb_cache k v;
        v
    in
    let prev_plan k = Option.bind previous (fun p -> Hashtbl.find_opt p.plans k) in
    let prev_fp k = Option.bind previous (fun p -> Hashtbl.find_opt p.mode_fps k) in
    let prev_transition tk =
      Option.bind previous (fun p -> Hashtbl.find_opt p.transitions tk)
    in
    let reused = ref 0 and replanned = ref 0 in
    let reused_tr = ref 0 and rebuilt_tr = ref 0 and churn = ref 0 in
    let exception Failed of error in
    try
      List.iter
        (fun faulty ->
          let k = key faulty in
          let parent_key =
            match List.rev faulty with
            | [] -> None
            | _ :: rest_rev -> Some (key (List.rev rest_rev))
          in
          let parent_fp =
            Option.bind parent_key (fun pk -> Hashtbl.find_opt mode_fps pk)
          in
          let fp = mode_fp ~base ~parent_fp ~mode_key:k in
          Hashtbl.replace mode_fps k fp;
          let mode_reused =
            match (prev_fp k, prev_plan k) with
            | Some old_fp, Some old_plan when Int64.equal old_fp fp ->
              incr reused;
              Hashtbl.replace plans k old_plan;
              true
            | _ -> false
          in
          let plan =
            if mode_reused then Hashtbl.find plans k
            else begin
              incr replanned;
              if not (Topology.connected_without topo faulty) then
                raise (Failed (Disconnected { faulty }));
              let parent =
                Option.bind parent_key (fun pk -> Hashtbl.find_opt plans pk)
              in
              match plan_mode cfg workload topo ~faulty ~parent with
              | Error e -> raise (Failed e)
              | Ok plan ->
                Hashtbl.replace plans k plan;
                (match prev_plan k with
                | Some old ->
                  churn :=
                    !churn
                    + List.length
                        (List.filter
                           (fun (tid, node) ->
                             List.assoc_opt tid old.assignment <> Some node)
                           plan.assignment)
                | None -> ());
                plan
            end
          in
          (* A transition into this mode exists from every parent. *)
          List.iter
            (fun y ->
              let from_faulty = List.filter (fun x -> x <> y) faulty in
              match Hashtbl.find_opt plans (key from_faulty) with
              | None -> ()
              | Some from_plan -> (
                let tk = (key from_faulty, y) in
                match (if mode_reused then prev_transition tk else None) with
                | Some tr ->
                  incr reused_tr;
                  Hashtbl.replace transitions tk tr
                | None ->
                  incr rebuilt_tr;
                  let tr =
                    make_transition ~evb cfg topo ~from_plan ~to_plan:plan
                      ~new_fault:y
                  in
                  Hashtbl.replace transitions tk tr))
            faulty)
        (fault_patterns (Topology.nodes topo) cfg.f);
      let worst_recovery =
        Table.sorted_fold ~cmp:cmp_transition_key
          (fun _ tr acc -> Time.max acc tr.recovery_bound)
          transitions Time.zero
      in
      let total_moved_state =
        Table.sorted_fold ~cmp:cmp_transition_key
          (fun _ tr acc -> acc + tr.state_bytes)
          transitions 0
      in
      Ok
        ( {
            config = cfg;
            workload;
            topology = topo;
            plans;
            transitions;
            mode_fps;
            stats =
              {
                modes = Hashtbl.length plans;
                transitions = Hashtbl.length transitions;
                (* btr-lint: allow wall-clock — planner self-telemetry *)
                planning_seconds = Sys.time () -. started_at;
                worst_recovery;
                total_moved_state;
              };
          },
          {
            reused_modes = !reused;
            replanned_modes = !replanned;
            reused_transitions = !reused_tr;
            rebuilt_transitions = !rebuilt_tr;
            churn_moved_tasks = !churn;
          } )
    with Failed e -> Error e
  end

let build ?evidence_cache cfg workload topo =
  Result.map fst (build_with ?evidence_cache cfg workload topo)

let replan_delta ?evidence_cache t cfg workload topo =
  build_with ~previous:t ?evidence_cache cfg workload topo

let with_recovery_bound t r =
  { t with config = { t.config with recovery_bound = r } }

let mode_fingerprint t ~faulty = Hashtbl.find_opt t.mode_fps (key faulty)

let config t = t.config
let workload t = t.workload
let topology t = t.topology
let stats t = t.stats
let plan_for t ~faulty = Hashtbl.find_opt t.plans (key faulty)

let initial_plan t =
  match plan_for t ~faulty:[] with
  | Some p -> p
  | None -> invalid_arg "Planner.initial_plan: strategy has no fault-free plan"

let transition_for t ~from_faulty ~new_fault =
  Hashtbl.find_opt t.transitions (key from_faulty, new_fault)

(* Sorted by mode key, so callers see plans and transitions in a
   stable order regardless of planning insertion history. *)
let all_plans t =
  List.rev (Table.sorted_fold ~cmp:String.compare (fun _ p acc -> p :: acc) t.plans [])

let all_transitions t =
  List.rev
    (Table.sorted_fold ~cmp:cmp_transition_key (fun _ tr acc -> tr :: acc)
       t.transitions [])

let admitted t =
  Time.compare t.stats.worst_recovery t.config.recovery_bound <= 0
