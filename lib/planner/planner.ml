open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Schedule = Btr_sched.Schedule
module Topology = Btr_net.Topology
module Net = Btr_net.Net

type reassignment = Minimal | Naive

type config = {
  f : int;
  recovery_bound : Time.t;
  protect_level : Task.criticality;
  degree : int;
  checker_overhead : Time.t;
  guard_wcet : Time.t;
  digest_size : int;
  evidence_size : int;
  detection_margin : Time.t;
  reassignment : reassignment;
  shares : Net.shares option;
}

let default_config ~f ~recovery_bound =
  {
    f;
    recovery_bound;
    protect_level = Task.Medium;
    degree = f + 1;
    checker_overhead = Time.us 100;
    guard_wcet = Time.us 200;
    digest_size = 32;
    evidence_size = 160;
    detection_margin = Time.ms 1;
    reassignment = Minimal;
    shares = None;
  }

(* A total, deterministic serialization of a *resolved* config. Two
   configs with equal fields get equal keys even when they were produced
   by different [tune] closures, so caches of built strategies (the
   campaign plan cache) can key on this instead of physical equality. *)
let config_key c =
  let crit l = Format.asprintf "%a" Task.pp_criticality l in
  let shares =
    match c.shares with
    | None -> "default"
    | Some s -> Printf.sprintf "%.6f/%.6f" s.Net.data_frac s.Net.control_frac
  in
  Printf.sprintf
    "f=%d;R=%d;protect=%s;degree=%d;checker=%d;guard=%d;digest=%d;evidence=%d;margin=%d;reassign=%s;shares=%s"
    c.f c.recovery_bound (crit c.protect_level) c.degree c.checker_overhead
    c.guard_wcet c.digest_size c.evidence_size c.detection_margin
    (match c.reassignment with Minimal -> "minimal" | Naive -> "naive")
    shares

(* FNV-1a rather than [Hashtbl.hash]: shard selectors derived from this
   must agree across processes and OCaml versions, or a resharded cache
   would silently change its contention profile between CI and hosts. *)
let config_key_hash c = Fnv.hash (config_key c)

type plan = {
  faulty : int list;
  aug : Augment.t;
  assignment : (Task.id * int) list;
  schedule : Schedule.t;
  shed_below : Task.criticality option;
  lost_tasks : Task.id list;
}

let assignment_of plan tid = List.assoc_opt tid plan.assignment

type transition = {
  from_faulty : int list;
  new_fault : int;
  to_faulty : int list;
  moved : (Task.id * int * int) list;
  started : Task.id list;
  stopped : Task.id list;
  state_bytes : int;
  migration_bound : Time.t;
  recovery_bound : Time.t;
}

type stats = {
  modes : int;
  transitions : int;
  planning_seconds : float;
  worst_recovery : Time.t;
  total_moved_state : int;
}

type t = {
  config : config;
  workload : Graph.t;
  topology : Topology.t;
  plans : (string, plan) Hashtbl.t;
  transitions : (string * int, transition) Hashtbl.t;
  stats : stats;
}

type error =
  | Unschedulable of { faulty : int list; reason : string }
  | Disconnected of { faulty : int list }
  | Bad_config of string
  | Rejected of { diagnostics : (string * string) list }

let pp_fault_set ppf fs =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int fs))

let pp_error ppf = function
  | Unschedulable { faulty; reason } ->
    Format.fprintf ppf "mode %a unschedulable: %s" pp_fault_set faulty reason
  | Disconnected { faulty } ->
    Format.fprintf ppf "mode %a disconnects the surviving nodes" pp_fault_set faulty
  | Bad_config msg -> Format.fprintf ppf "bad config: %s" msg
  | Rejected { diagnostics } ->
    Format.fprintf ppf "strategy rejected by static verification:";
    List.iter
      (fun (code, msg) -> Format.fprintf ppf "@\n  [%s] %s" code msg)
      diagnostics

let key faulty = String.concat "," (List.map string_of_int (List.sort_uniq Int.compare faulty))

let cmp_transition_key (k1, y1) (k2, y2) =
  match String.compare k1 k2 with 0 -> Int.compare y1 y2 | c -> c

let xfer_of cfg topo ~faulty ~cls ~src ~dst ~size_bytes =
  Net.plan_transfer_time topo ?shares:cfg.shares ~avoid:faulty ~cls ~src ~dst
    ~size_bytes ()

(* Every ≤ f sized subset of nodes, smallest first so parents precede
   children in Minimal mode. *)
let fault_patterns nodes f =
  let rec subsets k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  in
  List.concat_map (fun k -> List.map (List.sort Int.compare) (subsets k nodes))
    (List.init (f + 1) Fun.id)

(* Greedy placement of the augmented graph onto the alive nodes. *)
let place_tasks cfg topo aug ~alive ~faulty ~parent =
  let g = aug.Augment.graph in
  let assignment : (Task.id, int) Hashtbl.t = Hashtbl.create 64 in
  let busy : (int, Time.t) Hashtbl.t = Hashtbl.create 16 in
  let busy_of n = Option.value ~default:Time.zero (Hashtbl.find_opt busy n) in
  let lanes_on_node orig n =
    List.exists
      (fun l -> Hashtbl.find_opt assignment l = Some n)
      (Augment.replicas_of aug orig)
  in
  let parent_node tid =
    match parent with
    | Some p when cfg.reassignment = Minimal -> assignment_of p tid
    | _ -> None
  in
  let locality_cost tid n =
    List.fold_left
      (fun acc (fl : Graph.flow) ->
        match Hashtbl.find_opt assignment fl.producer with
        | None -> acc
        | Some pn ->
          if pn = n then acc
          else
            acc
            + Option.value ~default:1_000_000
                (xfer_of cfg topo ~faulty ~cls:Net.Data ~src:pn ~dst:n
                   ~size_bytes:fl.msg_size))
      0 (Graph.producers_of g tid)
  in
  let cost tid n =
    let task = Graph.task g tid in
    let sep_penalty =
      match Augment.role_of aug tid with
      | Augment.Replica { orig; _ } ->
        (* Hard: two lanes of one task must not share a node. *)
        if lanes_on_node orig n then Some `Forbidden else None
      | Augment.Checker { orig } ->
        (* Soft but heavy: the checker should not sit with a lane it
           checks, or a faulty node could silence its own accuser. *)
        if lanes_on_node orig n then Some `Heavy else None
      | Augment.Original | Augment.Guard _ -> None
    in
    match sep_penalty with
    | Some `Forbidden -> None
    | pen ->
      let base =
        locality_cost tid n
        + (busy_of n / 2)
        + (if parent_node tid = Some n then -50_000 else 0)
        + (match pen with Some `Heavy -> 500_000 | _ -> 0)
      in
      ignore task;
      Some base
  in
  let exception Stuck of Task.id in
  try
    List.iter
      (fun tid ->
        let task = Graph.task g tid in
        let node =
          match task.Task.pinned with
          | Some n -> if List.mem n alive then n else raise (Stuck tid)
          | None ->
            let best =
              List.fold_left
                (fun best n ->
                  match cost tid n with
                  | None -> best
                  | Some c -> (
                    match best with
                    | Some (_, bc) when bc <= c -> best
                    | _ -> Some (n, c)))
                None alive
            in
            (match best with Some (n, _) -> n | None -> raise (Stuck tid))
        in
        Hashtbl.replace assignment tid node;
        Hashtbl.replace busy node (Time.add (busy_of node) task.Task.wcet))
      (Graph.topo_order g);
    Ok
      (List.map
         (fun (x : Task.t) -> (x.id, Hashtbl.find assignment x.id))
         (Graph.tasks g))
  with Stuck tid -> Error (Printf.sprintf "no feasible node for task %d" tid)

(* One mode: shed criticality levels from the bottom until schedulable. *)
let plan_mode cfg workload topo ~faulty ~parent =
  let alive =
    List.filter (fun n -> not (List.mem n faulty)) (Topology.nodes topo)
  in
  let lost_tasks =
    List.filter_map
      (fun (x : Task.t) ->
        match x.pinned with
        | Some n when List.mem n faulty -> Some x.id
        | _ -> None)
      (Graph.tasks workload)
  in
  let attempt floor =
    let keep (x : Task.t) =
      Task.compare_criticality x.criticality floor >= 0
      && not (List.mem x.id lost_tasks)
    in
    let kept = Graph.restrict workload ~keep in
    let aug =
      Augment.augment kept ~nodes:alive ~degree:cfg.degree
        ~protect_level:cfg.protect_level ~checker_overhead:cfg.checker_overhead
        ~guard_wcet:cfg.guard_wcet ~digest_size:cfg.digest_size
    in
    match place_tasks cfg topo aug ~alive ~faulty ~parent with
    | Error reason -> Error reason
    | Ok assignment ->
      let place tid = List.assoc tid assignment in
      let xfer ~src ~dst ~size_bytes =
        if src = dst then Some Time.zero
        else xfer_of cfg topo ~faulty ~cls:Net.Data ~src ~dst ~size_bytes
      in
      (match Schedule.list_schedule aug.Augment.graph ~place ~xfer with
      | Ok schedule ->
        Ok
          {
            faulty;
            aug;
            assignment;
            schedule;
            shed_below = (if floor = Task.Best_effort then None else Some floor);
            lost_tasks;
          }
      | Error failure ->
        Error (Format.asprintf "%a" Schedule.pp_failure failure))
  in
  let rec try_floors last_err = function
    | [] ->
      Error
        (Unschedulable
           { faulty; reason = Option.value ~default:"no tasks left" last_err })
    | floor :: rest -> (
      match attempt floor with
      | Ok plan -> Ok plan
      | Error reason -> try_floors (Some reason) rest)
  in
  try_floors None Task.all_criticalities

(* Bounded evidence-distribution latency in the new mode: worst-case
   pairwise control-class transfer among surviving nodes. *)
let evidence_bound cfg topo ~faulty =
  let alive = List.filter (fun n -> not (List.mem n faulty)) (Topology.nodes topo) in
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc b ->
          if a = b then acc
          else
            match
              xfer_of cfg topo ~faulty ~cls:Net.Control ~src:a ~dst:b
                ~size_bytes:cfg.evidence_size
            with
            | Some d -> Time.max acc d
            | None -> acc)
        acc alive)
    Time.zero alive

let make_transition cfg topo ~from_plan ~to_plan ~new_fault =
  let faulty = to_plan.faulty in
  let assigned p = p.assignment in
  let from_assign = assigned from_plan and to_assign = assigned to_plan in
  let moved =
    List.filter_map
      (fun (tid, to_node) ->
        match List.assoc_opt tid from_assign with
        | Some from_node when from_node <> to_node -> Some (tid, from_node, to_node)
        | _ -> None)
      to_assign
  in
  let started =
    List.filter_map
      (fun (tid, _) ->
        if List.mem_assoc tid from_assign then None else Some tid)
      to_assign
  in
  let stopped =
    List.filter_map
      (fun (tid, _) -> if List.mem_assoc tid to_assign then None else Some tid)
      from_assign
  in
  let g = to_plan.aug.Augment.graph in
  let state_of tid =
    match Graph.task g tid with
    | x -> x.Task.state_size
    | exception Invalid_argument _ -> 0
  in
  (* State moves only from surviving nodes; a faulty node's state is
     lost and the task restarts fresh. Transfers from one sender
     serialize on its control reservation, so the bound is the largest
     per-sender total. *)
  let migrations =
    List.filter (fun (_, from_node, _) -> not (List.mem from_node faulty)) moved
  in
  let state_bytes = List.fold_left (fun acc (tid, _, _) -> acc + state_of tid) 0 migrations in
  let senders = List.sort_uniq Int.compare (List.map (fun (_, f, _) -> f) migrations) in
  let migration_bound =
    List.fold_left
      (fun acc sender ->
        let total =
          List.fold_left
            (fun acc (tid, from_node, to_node) ->
              if from_node <> sender then acc
              else
                match
                  xfer_of cfg topo ~faulty ~cls:Net.Control ~src:from_node
                    ~dst:to_node ~size_bytes:(Stdlib.max 1 (state_of tid))
                with
                | Some d -> Time.add acc d
                | None -> acc)
            Time.zero migrations
        in
        Time.max acc total)
      Time.zero senders
  in
  let period = Graph.period g in
  let recovery_bound =
    Time.add
      (Time.add (Time.add period cfg.detection_margin) (evidence_bound cfg topo ~faulty))
      (Time.add migration_bound period)
  in
  {
    from_faulty = from_plan.faulty;
    new_fault;
    to_faulty = faulty;
    moved;
    started;
    stopped;
    state_bytes;
    migration_bound;
    recovery_bound;
  }

let build cfg workload topo =
  let n = Topology.node_count topo in
  if cfg.f < 0 then Error (Bad_config "f < 0")
  else if cfg.degree < 1 then Error (Bad_config "degree < 1")
  else if cfg.degree > n - cfg.f then
    Error
      (Bad_config
         (Printf.sprintf "degree %d > surviving nodes %d: lanes cannot be separated"
            cfg.degree (n - cfg.f)))
  else begin
    (* btr-lint: allow wall-clock — planning_seconds is wall-clock
       telemetry about the planner itself; it never enters a trace. *)
    let started_at = Sys.time () in
    let plans = Hashtbl.create 64 in
    let transitions = Hashtbl.create 64 in
    let exception Failed of error in
    try
      List.iter
        (fun faulty ->
          if not (Topology.connected_without topo faulty) then
            raise (Failed (Disconnected { faulty }));
          let parent =
            match List.rev faulty with
            | [] -> None
            | _ :: rest_rev -> Hashtbl.find_opt plans (key (List.rev rest_rev))
          in
          match plan_mode cfg workload topo ~faulty ~parent with
          | Error e -> raise (Failed e)
          | Ok plan ->
            Hashtbl.replace plans (key faulty) plan;
            (* A transition into this mode exists from every parent. *)
            List.iter
              (fun y ->
                let from_faulty = List.filter (fun x -> x <> y) faulty in
                match Hashtbl.find_opt plans (key from_faulty) with
                | None -> ()
                | Some from_plan ->
                  let tr =
                    make_transition cfg topo ~from_plan ~to_plan:plan ~new_fault:y
                  in
                  Hashtbl.replace transitions (key from_faulty, y) tr)
              faulty)
        (fault_patterns (Topology.nodes topo) cfg.f);
      let worst_recovery =
        Table.sorted_fold ~cmp:cmp_transition_key
          (fun _ tr acc -> Time.max acc tr.recovery_bound)
          transitions Time.zero
      in
      let total_moved_state =
        Table.sorted_fold ~cmp:cmp_transition_key
          (fun _ tr acc -> acc + tr.state_bytes)
          transitions 0
      in
      Ok
        {
          config = cfg;
          workload;
          topology = topo;
          plans;
          transitions;
          stats =
            {
              modes = Hashtbl.length plans;
              transitions = Hashtbl.length transitions;
              (* btr-lint: allow wall-clock — planner self-telemetry *)
              planning_seconds = Sys.time () -. started_at;
              worst_recovery;
              total_moved_state;
            };
        }
    with Failed e -> Error e
  end

let config t = t.config
let workload t = t.workload
let topology t = t.topology
let stats t = t.stats
let plan_for t ~faulty = Hashtbl.find_opt t.plans (key faulty)

let initial_plan t =
  match plan_for t ~faulty:[] with
  | Some p -> p
  | None -> invalid_arg "Planner.initial_plan: strategy has no fault-free plan"

let transition_for t ~from_faulty ~new_fault =
  Hashtbl.find_opt t.transitions (key from_faulty, new_fault)

(* Sorted by mode key, so callers see plans and transitions in a
   stable order regardless of planning insertion history. *)
let all_plans t =
  List.rev (Table.sorted_fold ~cmp:String.compare (fun _ p acc -> p :: acc) t.plans [])

let all_transitions t =
  List.rev
    (Table.sorted_fold ~cmp:cmp_transition_key (fun _ tr acc -> tr :: acc)
       t.transitions [])

let admitted t =
  Time.compare t.stats.worst_recovery t.config.recovery_bound <= 0
