(** The offline planner (paper §4.1).

    Before the system runs, the planner computes a {e strategy}: one
    {e plan} (a distributed schedule) per anticipated fault pattern —
    every subset of at most [f] nodes — plus the mode {e transitions}
    between them. The strategy is installed in every node so that, at
    runtime, valid evidence of a fault deterministically selects the
    next plan with no online (re)scheduling and no central scheduler to
    attack.

    For each mode the planner:
    + drops tasks pinned to faulty nodes (their sensors/actuators are
      physically gone) and guards of faulty nodes;
    + places the augmented tasks on the surviving nodes under hard
      constraints — no two lanes of the same task on one node, a
      checker never co-located with a lane it checks — using locality
      and load-balance heuristics, preferring to keep the parent mode's
      assignment (minimal reassignment, so transitions move little
      state);
    + derives the static schedule; if unschedulable, sheds the lowest
      criticality level present and retries (mixed-criticality
      degradation, §1);
    + costs every transition into the mode (state to migrate, bounded
      transfer time) and derives a recovery-time bound, which is
      admitted against the requested R.

    The recovery bound for a transition decomposes exactly as the
    paper's architecture does: detection (≤ one period + margin, the
    checker runs every period) + evidence distribution (bounded by the
    reserved control bandwidth) + state migration + activation at the
    next period boundary. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Schedule = Btr_sched.Schedule
module Topology = Btr_net.Topology
module Net = Btr_net.Net

type reassignment = Minimal | Naive

type config = {
  f : int;  (** fault bound: plans exist for every ≤ f node subset *)
  recovery_bound : Time.t;  (** requested R *)
  protect_level : Task.criticality;  (** replicate at or above this *)
  degree : int;  (** replica lanes per protected task; use [f + 1] *)
  checker_overhead : Time.t;
  guard_wcet : Time.t;
  digest_size : int;
  evidence_size : int;
  detection_margin : Time.t;  (** watchdog slack beyond the schedule *)
  reassignment : reassignment;
  shares : Net.shares option;  (** must match the runtime network *)
}

val default_config : f:int -> recovery_bound:Time.t -> config
(** degree = f+1, protect Medium and above, 100µs checker overhead,
    200µs guards, 32B digests, 160B evidence, 1ms margin, Minimal. *)

val config_key : config -> string
(** A total, deterministic serialization of a config: equal fields give
    equal keys, regardless of how the config was produced (e.g. by
    different [Scenario.spec.tune] closures). Strategy caches — the
    campaign plan cache in particular — key on this, never on physical
    equality of configs or closures. Covers every field, including the
    bandwidth shares. *)

val config_key_hash : config -> int
(** {!Btr_util.Fnv.hash} of {!config_key}: a stable, non-negative
    bucket selector for sharded strategy caches. Equal configs hash
    equal on every host and OCaml version (unlike [Hashtbl.hash]). *)

type plan = {
  faulty : int list;  (** this mode's fault pattern, sorted *)
  aug : Augment.t;  (** augmented workload actually running *)
  assignment : (Task.id * int) list;
  schedule : Schedule.t;
  shed_below : Task.criticality option;
      (** tasks strictly below this level were shed; [None] = nothing *)
  lost_tasks : Task.id list;
      (** original pinned tasks lost with their faulty node *)
}

val assignment_of : plan -> Task.id -> int option

type transition = {
  from_faulty : int list;
  new_fault : int;
  to_faulty : int list;
  moved : (Task.id * int * int) list;  (** augmented task, from, to *)
  started : Task.id list;  (** newly running (previously shed/absent) *)
  stopped : Task.id list;
  state_bytes : int;  (** migrated from surviving nodes *)
  migration_bound : Time.t;
  recovery_bound : Time.t;
      (** detection + distribution + migration + activation *)
}

type stats = {
  modes : int;
  transitions : int;
  planning_seconds : float;
  worst_recovery : Time.t;
  total_moved_state : int;
}

type t

type error =
  | Unschedulable of { faulty : int list; reason : string }
      (** even the highest-criticality-only workload does not fit *)
  | Disconnected of { faulty : int list }
  | Bad_config of string
  | Rejected of { diagnostics : (string * string) list }
      (** the built strategy failed static verification
          ({!Btr_check.Check}); pairs are (error code, message). The
          planner itself never constructs this — the verifier does, and
          {!Btr.Scenario} surfaces it in place of a deployable strategy. *)

val pp_error : Format.formatter -> error -> unit

val build :
  ?evidence_cache:(string, Time.t) Hashtbl.t ->
  config ->
  Graph.t ->
  Topology.t ->
  (t, error) result
(** [evidence_cache] (keyed by the sorted fault pattern, as
    {!mode_fingerprint}'s [faulty]) memoizes evidence-distribution
    bounds across calls. Callers passing one must flush it whenever the
    topology, shares or evidence size change; results are identical
    either way. *)

(** {1 Incremental replanning}

    Dependency fingerprints let a rebuilt strategy reuse plans from a
    previous one when their inputs are unchanged — the planner half of
    the incremental verification story ({!Btr_check.Incr}). *)

type delta = {
  reused_modes : int;  (** plans taken verbatim from the previous strategy *)
  replanned_modes : int;
  reused_transitions : int;
  rebuilt_transitions : int;
  churn_moved_tasks : int;
      (** across replanned modes, assignments that differ from the
          previous strategy's plan for the same mode — the
          minimal-reassignment churn measure (E7) *)
}

val replan_delta :
  ?evidence_cache:(string, Time.t) Hashtbl.t ->
  t ->
  config ->
  Graph.t ->
  Topology.t ->
  (t * delta, error) result
(** Rebuild against edited inputs, reusing every plan whose dependency
    fingerprint (workload, topology, R-stripped config, fault pattern,
    chained through the parent mode) is unchanged. Reuse is sound
    because planning is deterministic in exactly those inputs: the
    result is the strategy {!build} would produce from scratch. *)

val with_recovery_bound : t -> Time.t -> t
(** The same strategy re-admitted against a different requested R.
    O(1) and sound: R is the one config field planning never reads —
    plans, schedules and transition bounds are all R-independent. The
    campaign plan cache uses this to derive R-grid neighbors without
    replanning. *)

val workload_fingerprint : Graph.t -> int64
(** FNV-1a over a total serialization of everything planning reads from
    the workload (period; task ids, names, kinds, WCETs, criticalities,
    state sizes, pins; flow endpoints, sizes, deadlines). *)

val topology_fingerprint : Topology.t -> int64
(** Likewise for the topology (nodes; link ids, members, bandwidths,
    latencies). *)

val mode_fingerprint : t -> faulty:int list -> int64 option
(** The dependency fingerprint of the mode's plan: equal fingerprints
    (across strategies) imply equal plans. {!Btr_check.Incr} keys its
    per-mode memo tables on this. [None] for unknown fault patterns. *)

val config : t -> config
val workload : t -> Graph.t
val topology : t -> Topology.t
val stats : t -> stats

val plan_for : t -> faulty:int list -> plan option
(** The plan for a fault pattern (order-insensitive); [None] if
    |faulty| > f or an unknown node is named. *)

val initial_plan : t -> plan
(** The fault-free mode. *)

val transition_for : t -> from_faulty:int list -> new_fault:int -> transition option

val all_plans : t -> plan list
val all_transitions : t -> transition list

val admitted : t -> bool
(** Whether every transition's recovery bound is within [recovery_bound]. *)
