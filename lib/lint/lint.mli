(** Determinism linter for the BTR sources.

    Everything in this repository must be byte-deterministic: traces
    replay exactly, the planner is a pure function of its inputs, and
    two runs with the same seed are identical. The classic ways OCaml
    code silently loses that property are (a) iterating a [Hashtbl] —
    order depends on insertion history and hash seeding, (b) polymorphic
    [compare]/[=] on domain types — order changes when a type gains a
    field, and mutable records compare by current contents, (c) reading
    the wall clock, and (d) the global [Random] state. This module
    detects those patterns syntactically (via ppxlib's parser — no type
    information needed) so CI can refuse them; [bin/btr_lint] is the
    driver.

    A finding is suppressed by a comment [(* btr-lint: allow <rule> *)]
    placed on the same line or the line above (the comment may span
    lines; suppression covers the line after it ends). The sanctioned
    escape hatches live in {!Btr_util.Table} ([sorted_iter] and
    friends) and [lib/util/rng.ml], which is exempt from the clock and
    random rules — it is where seeding is allowed to touch the world. *)

type rule =
  | Hashtbl_order
      (** BTR-L001: [Hashtbl.iter]/[fold]/[to_seq*] observe
          nondeterministic order; route through [Table.sorted_*]. *)
  | Poly_compare
      (** BTR-L002: bare [compare], or [=]/[<>] passed first-class —
          structural comparison that silently changes meaning as types
          evolve. Use a typed compare ([Int.compare], a domain [cmp]). *)
  | Wall_clock
      (** BTR-L003: [Sys.time]/[Unix.gettimeofday] etc. — wall-clock
          readings do not replay. Simulated time is [Btr_util.Time]. *)
  | Raw_random
      (** BTR-L004: the global [Random] module — unseeded, unsplittable
          state. Use [Btr_util.Rng]. *)
  | Fingerprint_order
      (** BTR-L005: a [Hashtbl] iterator inside the arguments of an
          [Btr_util.Fnv] fingerprint call ([Fnv.hash], [Fnv.hash64],
          [Fnv.hash64_lines]) with no intervening sort. Worse than
          L001: the nondeterministic order is baked into a hash that
          typically keys a memo table or a cross-run artifact, so two
          identical systems fingerprint differently and incremental
          reuse silently breaks. Emitted in addition to L001 at the
          same location. *)

val all_rules : rule list

val rule_name : rule -> string
(** The name used in [btr-lint: allow <name>] directives:
    ["hashtbl-order"], ["poly-compare"], ["wall-clock"],
    ["raw-random"], ["fingerprint-order"]. *)

val rule_of_name : string -> rule option
val rule_id : rule -> string
(** Stable code: ["BTR-L001"] … ["BTR-L005"]. *)

val describe : rule -> string

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

val lint_string : file:string -> string -> (finding list, string) result
(** Lints one compilation unit given as source text; [file] labels
    findings and selects path exemptions (a path ending in
    [lib/util/rng.ml] is exempt from {!Wall_clock} and {!Raw_random}).
    [Error] carries a parse-failure message. Findings are in source
    order. *)

val lint_file : string -> (finding list, string) result
(** Reads the file and delegates to {!lint_string}. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [BTR-L001] message] — compiler-style, clickable. *)
