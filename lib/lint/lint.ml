type rule =
  | Hashtbl_order
  | Poly_compare
  | Wall_clock
  | Raw_random
  | Fingerprint_order

let all_rules =
  [ Hashtbl_order; Poly_compare; Wall_clock; Raw_random; Fingerprint_order ]

let rule_name = function
  | Hashtbl_order -> "hashtbl-order"
  | Poly_compare -> "poly-compare"
  | Wall_clock -> "wall-clock"
  | Raw_random -> "raw-random"
  | Fingerprint_order -> "fingerprint-order"

let rule_of_name n = List.find_opt (fun r -> rule_name r = n) all_rules

let rule_id = function
  | Hashtbl_order -> "BTR-L001"
  | Poly_compare -> "BTR-L002"
  | Wall_clock -> "BTR-L003"
  | Raw_random -> "BTR-L004"
  | Fingerprint_order -> "BTR-L005"

let describe = function
  | Hashtbl_order ->
    "Hashtbl iteration order depends on insertion history; use \
     Btr_util.Table.sorted_iter/sorted_fold/sorted_keys/sorted_bindings"
  | Poly_compare ->
    "polymorphic comparison silently changes meaning as types evolve; use a \
     typed compare (Int.compare, String.compare, a domain cmp)"
  | Wall_clock ->
    "wall-clock readings do not replay; simulated time lives in Btr_util.Time"
  | Raw_random ->
    "the global Random state is unseeded and unsplittable; use Btr_util.Rng"
  | Fingerprint_order ->
    "a Hashtbl iterator feeding an Fnv fingerprint bakes nondeterministic \
     order into a memo key; sort the bindings (Table.sorted_*) before hashing"

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_id f.rule)
    f.message

(* ------------------------------------------------------------------ *)
(* Suppression directives.

   Comments do not survive parsing, so we scan the raw source for
   [btr-lint: allow <rule>] inside comments, tracking comment nesting
   and skipping string/char literals so a "(*" inside a string cannot
   confuse us. A directive suppresses its rule from the comment's first
   line through the line after it closes (covering both trailing
   same-line comments and a comment block above the offending line). *)

type suppression = { s_rule : rule; from_line : int; to_line : int }

let directives_in text =
  let needle = "btr-lint:" in
  let n = String.length text and k = String.length needle in
  let rules = ref [] in
  let i = ref 0 in
  while !i + k <= n do
    if String.sub text !i k = needle then begin
      let j = ref (!i + k) in
      while !j < n && text.[!j] = ' ' do incr j done;
      if !j + 5 <= n && String.sub text !j 5 = "allow" then begin
        j := !j + 5;
        while !j < n && text.[!j] = ' ' do incr j done;
        let start = !j in
        while
          !j < n && (text.[!j] = '-' || (text.[!j] >= 'a' && text.[!j] <= 'z'))
        do
          incr j
        done;
        match rule_of_name (String.sub text start (!j - start)) with
        | Some r -> rules := r :: !rules
        | None -> ()
      end;
      i := !j
    end
    else incr i
  done;
  !rules

let scan_suppressions src =
  let n = String.length src in
  let line = ref 1 in
  let sups = ref [] in
  let i = ref 0 in
  let peek o = if !i + o < n then Some src.[!i + o] else None in
  (* Skip a string literal starting at !i (which points at '"'). *)
  let skip_string () =
    incr i;
    let fin = ref false in
    while not !fin && !i < n do
      (match src.[!i] with
      | '\\' -> incr i
      | '"' -> fin := true
      | '\n' -> incr line
      | _ -> ());
      incr i
    done
  in
  (* Skip a quoted string literal {id|...|id} starting at '{'. Returns
     false (without consuming) when this '{' does not open one. *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while !j < n && src.[!j] >= 'a' && src.[!j] <= 'z' do incr j done;
    if !j < n && src.[!j] = '|' then begin
      let id = String.sub src (!i + 1) (!j - !i - 1) in
      let closing = "|" ^ id ^ "}" in
      let ck = String.length closing in
      i := !j + 1;
      let fin = ref false in
      while not !fin && !i < n do
        if !i + ck <= n && String.sub src !i ck = closing then begin
          i := !i + ck;
          fin := true
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done;
      true
    end
    else false
  in
  while !i < n do
    match src.[!i] with
    | '\n' ->
      incr line;
      incr i
    | '"' -> skip_string ()
    | '{' -> if not (skip_quoted_string ()) then incr i
    | '\'' -> (
      (* Char literal or type variable/label quote. *)
      match (peek 1, peek 2) with
      | Some '\\', _ ->
        i := !i + 2;
        while !i < n && src.[!i] <> '\'' do incr i done;
        incr i
      | Some c, Some '\'' ->
        if c = '\n' then incr line;
        i := !i + 3
      | _ ->
        incr i)
    | '(' when peek 1 = Some '*' ->
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if src.[!i] = '(' && peek 1 = Some '*' then begin
          incr depth;
          i := !i + 2
        end
        else if src.[!i] = '*' && peek 1 = Some ')' then begin
          decr depth;
          i := !i + 2
        end
        else if src.[!i] = '"' then skip_string ()
        else begin
          if src.[!i] = '\n' then incr line;
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      List.iter
        (fun r ->
          sups :=
            { s_rule = r; from_line = start_line; to_line = !line + 1 } :: !sups)
        (directives_in (Buffer.contents buf))
    | _ -> incr i
  done;
  !sups

(* ------------------------------------------------------------------ *)
(* The AST walk. *)

let exempt_path ~file rule =
  match rule with
  | Wall_clock | Raw_random ->
    let norm = String.map (fun c -> if c = '\\' then '/' else c) file in
    let suffix = "lib/util/rng.ml" in
    let ln = String.length norm and ls = String.length suffix in
    norm = "rng.ml" || (ln >= ls && String.sub norm (ln - ls) ls = suffix)
  | Hashtbl_order | Poly_compare | Fingerprint_order -> false

let hashtbl_iterators = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

(* Entry points of the Btr_util.Fnv fingerprinting API. An unordered
   Hashtbl iterator anywhere inside their argument expressions bakes
   nondeterministic order into a fingerprint — the memo-key soundness
   hazard BTR-L005 exists to catch. *)
let fnv_entry path =
  let stripped =
    match path with
    | "Stdlib" :: rest | "Btr_util" :: rest -> rest
    | p -> p
  in
  match stripped with
  | [ "Fnv"; ("hash" | "hash64" | "hash64_lines") ] -> true
  | _ -> false

let classify path =
  let stripped = match path with "Stdlib" :: rest -> rest | p -> p in
  match stripped with
  | [ "Hashtbl"; fn ] when List.mem fn hashtbl_iterators ->
    Some
      ( Hashtbl_order,
        Printf.sprintf
          "Hashtbl.%s observes nondeterministic order; use Table.sorted_* \
           (or annotate: btr-lint: allow hashtbl-order)"
          fn )
  | [ "compare" ] ->
    Some
      ( Poly_compare,
        "bare polymorphic compare; use a typed compare (Int.compare, a \
         domain cmp)" )
  | [ ("=" | "<>") ] ->
    Some
      ( Poly_compare,
        "polymorphic equality passed first-class; use a typed equality" )
  | [ "Sys"; ("time" | "cpu_time") ] | [ "Unix"; ("time" | "gettimeofday") ] ->
    Some
      ( Wall_clock,
        Printf.sprintf "%s reads the wall clock; simulated time is \
                        Btr_util.Time"
          (String.concat "." stripped) )
  | "Random" :: _ :: _ ->
    Some
      ( Raw_random,
        Printf.sprintf "%s uses the global Random state; use Btr_util.Rng"
          (String.concat "." path) )
  | _ -> None

let lint_structure ~file ~suppressions str =
  let findings = ref [] in
  let suppressed line rule =
    exempt_path ~file rule
    || List.exists
         (fun s -> s.s_rule = rule && s.from_line <= line && line <= s.to_line)
         suppressions
  in
  let add (loc : Ppxlib.Location.t) rule message =
    let line = loc.loc_start.pos_lnum in
    if not (suppressed line rule) then
      findings :=
        {
          file;
          line;
          col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
          rule;
          message;
        }
        :: !findings
  in
  let walker =
    object (self)
      inherit Ppxlib.Ast_traverse.iter as super

      (* > 0 while visiting the arguments of an Fnv fingerprint call;
         Hashtbl iterators found there also violate BTR-L005. *)
      val mutable fnv_depth = 0

      method! expression e =
        match e.pexp_desc with
        | Pexp_apply
            ( { pexp_desc = Pexp_ident { txt = Lident ("=" | "<>"); _ }; _ },
              ([ _; _ ] as args) ) ->
          (* Fully-applied infix structural equality is pervasive and
             mostly fine on ints/strings; first-class and sectioned
             uses are flagged. *)
          List.iter (fun (_, a) -> self#expression a) args
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
          when fnv_entry (Ppxlib.Longident.flatten_exn txt) ->
          fnv_depth <- fnv_depth + 1;
          List.iter (fun (_, a) -> self#expression a) args;
          fnv_depth <- fnv_depth - 1
        | Pexp_ident { txt; loc } -> (
          match classify (Ppxlib.Longident.flatten_exn txt) with
          | Some (rule, message) ->
            add loc rule message;
            if rule = Hashtbl_order && fnv_depth > 0 then
              add loc Fingerprint_order
                "Hashtbl iteration feeds an Fnv fingerprint: the hash (and \
                 any memo key built from it) depends on insertion order; \
                 sort first (Table.sorted_*)"
          | None -> ())
        | _ -> super#expression e
    end
  in
  walker#structure str;
  List.rev !findings

let lint_string ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Ppxlib.Parse.implementation lexbuf with
  | exception exn ->
    Error (Printf.sprintf "%s: parse error (%s)" file (Printexc.to_string exn))
  | str ->
    let suppressions = scan_suppressions src in
    Ok (lint_structure ~file ~suppressions str)

let lint_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | src -> lint_string ~file:path src
