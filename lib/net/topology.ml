type node_id = int

type link = {
  link_id : int;
  members : node_id list;
  bandwidth_bps : int;
  latency : Btr_util.Time.t;
}

type t = {
  node_list : node_id list;
  link_list : link list;
  by_id : (int, link) Hashtbl.t;
  by_node : (node_id, link list) Hashtbl.t;
}

(* Set-based duplicate detection: same verdict as the naive pairwise
   scan, linear instead of quadratic so fleet-scale (10^4-node)
   topologies construct in milliseconds. *)
let distinct xs =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

let create ~nodes ~links =
  if not (distinct nodes) then invalid_arg "Topology.create: duplicate node ids";
  if not (distinct (List.map (fun l -> l.link_id) links)) then
    invalid_arg "Topology.create: duplicate link ids";
  let node_set = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace node_set n ()) nodes;
  let check_link l =
    if List.length l.members < 2 then
      invalid_arg (Printf.sprintf "Topology.create: link %d has < 2 members" l.link_id);
    if not (distinct l.members) then
      invalid_arg (Printf.sprintf "Topology.create: link %d repeats a member" l.link_id);
    if l.bandwidth_bps <= 0 then
      invalid_arg (Printf.sprintf "Topology.create: link %d bandwidth <= 0" l.link_id);
    List.iter
      (fun m ->
        if not (Hashtbl.mem node_set m) then
          invalid_arg
            (Printf.sprintf "Topology.create: link %d member %d is not a node"
               l.link_id m))
      l.members
  in
  List.iter check_link links;
  let by_id = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace by_id l.link_id l) links;
  let by_node = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace by_node n []) nodes;
  List.iter
    (fun l ->
      List.iter
        (fun m -> Hashtbl.replace by_node m (l :: Hashtbl.find by_node m))
        l.members)
    links;
  (* Keep per-node link lists in ascending link id for determinism. *)
  List.iter
    (fun n ->
      let ls = Hashtbl.find by_node n in
      Hashtbl.replace by_node n
        (List.sort (fun a b -> Int.compare a.link_id b.link_id) ls))
    nodes;
  { node_list = nodes; link_list = links; by_id; by_node }

let nodes t = t.node_list
let links t = t.link_list
let node_count t = List.length t.node_list

let find_link t id =
  match Hashtbl.find_opt t.by_id id with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Topology.find_link: no link %d" id)

let links_of_node t n =
  match Hashtbl.find_opt t.by_node n with Some ls -> ls | None -> []

let neighbors t n =
  let out =
    List.concat_map
      (fun l -> List.filter (fun m -> m <> n) l.members)
      (links_of_node t n)
  in
  List.sort_uniq Int.compare out

let share_link t a b =
  let shared =
    List.filter (fun l -> List.mem b l.members) (links_of_node t a)
  in
  match shared with
  | [] -> None
  | ls ->
    Some
      (List.fold_left
         (fun best l -> if l.bandwidth_bps > best.bandwidth_bps then l else best)
         (List.hd ls) (List.tl ls))

(* BFS over nodes where an edge (a -> b) exists when a link contains both
   and relaying through intermediate nodes is allowed by [usable]. *)
let route_gen t ~usable ~src ~dst =
  if src = dst then Some []
  else begin
    let prev : (node_id, node_id * link) Hashtbl.t = Hashtbl.create 16 in
    let visited = Hashtbl.create 16 in
    Hashtbl.replace visited src ();
    let q = Queue.create () in
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let here = Queue.pop q in
      let expand l =
        List.iter
          (fun m ->
            if m <> here && not (Hashtbl.mem visited m) && (m = dst || usable m)
            then begin
              Hashtbl.replace visited m ();
              Hashtbl.replace prev m (here, l);
              if m = dst then found := true else Queue.push m q
            end)
          l.members
      in
      List.iter expand (links_of_node t here)
    done;
    if not !found then None
    else begin
      let rec rebuild acc n =
        if n = src then acc
        else
          let p, l = Hashtbl.find prev n in
          rebuild (l :: acc) p
      in
      Some (rebuild [] dst)
    end
  end

let route t ~src ~dst = route_gen t ~usable:(fun _ -> true) ~src ~dst

let route_avoiding t ~avoid ~src ~dst =
  route_gen t ~usable:(fun n -> not (List.mem n avoid)) ~src ~dst

let next_hop_node t ~here ~link ~dst =
  if List.mem dst link.members then dst
  else begin
    (* Pick the member (other than [here]) that is nearest to [dst];
       deterministic because members are listed in a fixed order. *)
    let candidates = List.filter (fun m -> m <> here) link.members in
    let dist n =
      match route t ~src:n ~dst with
      | Some path -> List.length path
      | None -> max_int
    in
    match candidates with
    | [] -> invalid_arg "Topology.next_hop_node: degenerate link"
    | c :: cs -> List.fold_left (fun best m -> if dist m < dist best then m else best) c cs
  end

(* Single-source variant of [route_gen]: one BFS from [src] yields, for
   every destination, exactly the path [route_gen t ~usable ~src ~dst]
   would return. The expansion order is identical (links in ascending
   id, members in declared order, first encounter wins), and the
   queue's evolution before a given destination is first reached does
   not depend on that destination: [route_gen] only special-cases [dst]
   by (a) stopping early — which cannot change [prev] entries already
   recorded — and (b) letting an unusable [dst] terminate a route. We
   reproduce (b) by recording a predecessor for unusable nodes without
   ever relaying through them. *)
type paths = {
  p_src : node_id;
  p_prev : (node_id, node_id * link) Hashtbl.t;
}

let paths_from t ~usable ~src =
  let prev : (node_id, node_id * link) Hashtbl.t = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  Hashtbl.replace visited src ();
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let here = Queue.pop q in
    let expand l =
      List.iter
        (fun m ->
          if m <> here && not (Hashtbl.mem visited m) then begin
            Hashtbl.replace visited m ();
            Hashtbl.replace prev m (here, l);
            if usable m then Queue.push m q
          end)
        l.members
    in
    List.iter expand (links_of_node t here)
  done;
  { p_src = src; p_prev = prev }

let reached p n = n = p.p_src || Hashtbl.mem p.p_prev n

let path_to p ~dst =
  if dst = p.p_src then Some []
  else if not (Hashtbl.mem p.p_prev dst) then None
  else begin
    let rec rebuild acc n =
      if n = p.p_src then acc
      else
        let pr, l = Hashtbl.find p.p_prev n in
        rebuild (l :: acc) pr
    in
    Some (rebuild [] dst)
  end

(* Same traversal as [paths_from] but accumulates a per-destination cost
   (sum of [link_cost] along the unique BFS path) during the sweep, so a
   caller needing costs for all destinations pays O(nodes + memberships)
   instead of rebuilding each path. [cost m] equals folding [link_cost]
   over [path_to ~dst:m] because the path is exactly the prev-chain and
   integer addition is associative. *)
let cost_from t ~usable ~src ~link_cost =
  let cost : (node_id, Btr_util.Time.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace cost src Btr_util.Time.zero;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let here = Queue.pop q in
    let here_cost = Hashtbl.find cost here in
    let expand l =
      let c = Btr_util.Time.add here_cost (link_cost l) in
      List.iter
        (fun m ->
          if m <> here && not (Hashtbl.mem cost m) then begin
            Hashtbl.replace cost m c;
            if usable m then Queue.push m q
          end)
        l.members
    in
    List.iter expand (links_of_node t here)
  done;
  cost

let connected_without t broken =
  let broken_set = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace broken_set n ()) broken;
  let alive =
    List.filter (fun n -> not (Hashtbl.mem broken_set n)) t.node_list
  in
  match alive with
  | [] -> true
  | first :: rest ->
    (* One BFS reaches exactly the set the old per-destination
       [route_gen] probes reached: every alive destination is usable,
       so "reachable as an endpoint" and "reachable as a relay"
       coincide for the nodes we query. *)
    let p =
      paths_from t ~usable:(fun m -> not (Hashtbl.mem broken_set m)) ~src:first
    in
    List.for_all (fun n -> reached p n) rest

let pp ppf t =
  Format.fprintf ppf "@[<v>topology: %d nodes, %d links@," (node_count t)
    (List.length t.link_list);
  List.iter
    (fun l ->
      Format.fprintf ppf "  link %d: members=[%s] bw=%dB/s lat=%a@," l.link_id
        (String.concat "," (List.map string_of_int l.members))
        l.bandwidth_bps Btr_util.Time.pp l.latency)
    t.link_list;
  Format.fprintf ppf "@]"

let fully_connected ~n ~bandwidth_bps ~latency =
  let nodes = List.init n Fun.id in
  let links = ref [] in
  let id = ref 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      links := { link_id = !id; members = [ a; b ]; bandwidth_bps; latency } :: !links;
      incr id
    done
  done;
  create ~nodes ~links:(List.rev !links)

let ring ~n ~bandwidth_bps ~latency =
  let nodes = List.init n Fun.id in
  let links =
    List.init n (fun i ->
        { link_id = i; members = [ i; (i + 1) mod n ]; bandwidth_bps; latency })
  in
  create ~nodes ~links

let star ~n ~hub ~bandwidth_bps ~latency =
  let nodes = List.init n Fun.id in
  let spokes = List.filter (fun i -> i <> hub) nodes in
  let links =
    List.mapi
      (fun idx spoke ->
        { link_id = idx; members = [ hub; spoke ]; bandwidth_bps; latency })
      spokes
  in
  create ~nodes ~links

let dual_bus ~n ~bandwidth_bps ~latency =
  let nodes = List.init n Fun.id in
  let bus id = { link_id = id; members = nodes; bandwidth_bps; latency } in
  create ~nodes ~links:[ bus 0; bus 1 ]
