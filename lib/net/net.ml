open Btr_util
module Engine = Btr_sim.Engine
module Obs = Btr_obs.Obs

type node_id = Topology.node_id
type cls = Data | Control

let cls_name = function Data -> "data" | Control -> "control"
let pp_cls ppf c = Format.pp_print_string ppf (cls_name c)

type shares = { data_frac : float; control_frac : float }

let default_shares ~n_members =
  let per = 1.0 /. float_of_int n_members in
  { data_frac = 0.8 *. per; control_frac = 0.2 *. per }

type 'a recv = {
  src : node_id;
  dst : node_id;
  payload : 'a;
  size_bytes : int;
  cls : cls;
  sent_at : Time.t;
  delivered_at : Time.t;
  hops : int;
}

type 'a t = {
  eng : Engine.t;
  obs : Obs.t;
  topo : Topology.t;
  shares : shares;
  residual_loss : float;
  handlers : (node_id, 'a recv -> unit) Hashtbl.t;
  (* Per (sender, link, class): when the sender's slice frees up. *)
  busy_until : (node_id * int * cls, Time.t) Hashtbl.t;
  relay_policy : (node_id, src:node_id -> dst:node_id -> cls:cls -> bool) Hashtbl.t;
  relay_delay : (node_id, Time.t) Hashtbl.t;
  mutable route_avoid : node_id list;
  loss_rng : Rng.t;
  (* Registry counters: always on, one field write per bump. *)
  sent : Obs.Counter.t;
  delivered : Obs.Counter.t;
  lost : Obs.Counter.t;
  relay_dropped : Obs.Counter.t;
  data_bytes : Obs.Counter.t;
  control_bytes : Obs.Counter.t;
  by_sender : (node_id * cls, int) Hashtbl.t;
  data_lat : Stats.Acc.t;
  control_lat : Stats.Acc.t;
}

let create eng topo ?shares ?(residual_loss = 0.0) () =
  let shares =
    match shares with
    | Some s -> s
    | None ->
      let worst =
        List.fold_left
          (fun acc (l : Topology.link) -> Stdlib.max acc (List.length l.members))
          2 (Topology.links topo)
      in
      default_shares ~n_members:worst
  in
  List.iter
    (fun (l : Topology.link) ->
      let n = float_of_int (List.length l.members) in
      if n *. (shares.data_frac +. shares.control_frac) > 1.0 +. 1e-9 then
        invalid_arg
          (Printf.sprintf "Net.create: link %d reservations exceed capacity"
             l.link_id))
    (Topology.links topo);
  let obs = Engine.obs eng in
  let reg = Obs.registry obs in
  {
    eng;
    obs;
    topo;
    shares;
    residual_loss;
    handlers = Hashtbl.create 16;
    busy_until = Hashtbl.create 64;
    relay_policy = Hashtbl.create 8;
    relay_delay = Hashtbl.create 8;
    route_avoid = [];
    loss_rng = Rng.split (Engine.rng eng);
    sent = Obs.Registry.counter reg Obs.Net "msgs-sent";
    delivered = Obs.Registry.counter reg Obs.Net "msgs-delivered";
    lost = Obs.Registry.counter reg Obs.Net "msgs-lost";
    relay_dropped = Obs.Registry.counter reg Obs.Net "relay-dropped";
    data_bytes = Obs.Registry.counter reg Obs.Net "bytes.data";
    control_bytes = Obs.Registry.counter reg Obs.Net "bytes.control";
    by_sender = Hashtbl.create 16;
    data_lat = Stats.Acc.create ();
    control_lat = Stats.Acc.create ();
  }

let engine t = t.eng
let topology t = t.topo
let set_handler t n f = Hashtbl.replace t.handlers n f

let frac t = function Data -> t.shares.data_frac | Control -> t.shares.control_frac

let reserved_rate t _node (link : Topology.link) cls =
  Stdlib.max 1 (int_of_float (float_of_int link.bandwidth_bps *. frac t cls))

(* Serialization time of [size] bytes at [rate] bytes/s, in µs, >= 1. *)
let serialize_time ~size ~rate =
  Stdlib.max 1 (size * 1_000_000 / rate)

let charge_bytes t sender cls size =
  Obs.Counter.add
    (match cls with Data -> t.data_bytes | Control -> t.control_bytes)
    size;
  let key = (sender, cls) in
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.by_sender key) in
  Hashtbl.replace t.by_sender key (prev + size)

let bytes_sent_by t n cls =
  Option.value ~default:0 (Hashtbl.find_opt t.by_sender (n, cls))

let route t ~src ~dst =
  Topology.route_avoiding t.topo ~avoid:t.route_avoid ~src ~dst

(* One hop: [sender] pushes the message onto [link]; when serialization
   and propagation complete, [k] runs at the far end. *)
let hop t ~sender ~(link : Topology.link) ~cls ~size k =
  let rate = reserved_rate t sender link cls in
  let key = (sender, link.link_id, cls) in
  let free = Option.value ~default:Time.zero (Hashtbl.find_opt t.busy_until key) in
  let start = Time.max (Engine.now t.eng) free in
  let departure = Time.add start (serialize_time ~size ~rate) in
  Hashtbl.replace t.busy_until key departure;
  charge_bytes t sender cls size;
  let arrival = Time.add departure link.latency in
  ignore (Engine.schedule t.eng ~at:arrival (fun _ -> k arrival))

let deliver t msg =
  Obs.Counter.incr t.delivered;
  let lat = Time.to_sec_f (Time.sub msg.delivered_at msg.sent_at) in
  (match msg.cls with
  | Data -> Stats.Acc.add t.data_lat lat
  | Control -> Stats.Acc.add t.control_lat lat);
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at:msg.delivered_at ~node:msg.dst Obs.Net
      (Obs.Msg_delivered
         {
           src = msg.src;
           dst = msg.dst;
           cls = cls_name msg.cls;
           bytes = msg.size_bytes;
           latency = Time.sub msg.delivered_at msg.sent_at;
           hops = msg.hops;
         });
  match Hashtbl.find_opt t.handlers msg.dst with
  | Some f -> f msg
  | None -> ()

let relay_allows t node ~src ~dst ~cls =
  match Hashtbl.find_opt t.relay_policy node with
  | None -> true
  | Some p -> p ~src ~dst ~cls

let relay_extra_delay t node =
  Option.value ~default:Time.zero (Hashtbl.find_opt t.relay_delay node)

let send t ~src ~dst ~cls ~size_bytes payload =
  match route t ~src ~dst with
  | None -> false
  | Some path ->
    Obs.Counter.incr t.sent;
    let sent_at = Engine.now t.eng in
    if Obs.enabled t.obs then
      Obs.emit t.obs ~at:sent_at ~node:src Obs.Net
        (Obs.Msg_sent { src; dst; cls = cls_name cls; bytes = size_bytes });
    let rec traverse here remaining hops =
      match remaining with
      | [] ->
        let finish at =
          deliver t
            { src; dst; payload; size_bytes; cls; sent_at; delivered_at = at; hops }
        in
        if here = dst then finish (Engine.now t.eng)
        else () (* unreachable: path exhausted away from dst *)
      | link :: rest ->
        let nxt = Topology.next_hop_node t.topo ~here ~link ~dst in
        hop t ~sender:here ~link ~cls ~size:size_bytes (fun _arrival ->
            if t.residual_loss > 0.0 && Rng.float t.loss_rng 1.0 < t.residual_loss
            then begin
              Obs.Counter.incr t.lost;
              if Obs.enabled t.obs then
                Obs.emit t.obs ~at:(Engine.now t.eng) ~node:nxt Obs.Net
                  (Obs.Msg_lost { src; dst; cls = cls_name cls })
            end
            else if nxt = dst && rest = [] then
              deliver t
                {
                  src;
                  dst;
                  payload;
                  size_bytes;
                  cls;
                  sent_at;
                  delivered_at = Engine.now t.eng;
                  hops = hops + 1;
                }
            else if not (relay_allows t nxt ~src ~dst ~cls) then begin
              Obs.Counter.incr t.relay_dropped;
              if Obs.enabled t.obs then
                Obs.emit t.obs ~at:(Engine.now t.eng) ~node:nxt Obs.Net
                  (Obs.Relay_dropped { relay = nxt; src; dst; cls = cls_name cls })
            end
            else begin
              let extra = relay_extra_delay t nxt in
              if Time.equal extra Time.zero then traverse nxt rest (hops + 1)
              else
                ignore
                  (Engine.schedule_in t.eng ~delay:extra (fun _ ->
                       traverse nxt rest (hops + 1)))
            end)
    in
    if path = [] then begin
      (* Local delivery still goes through the event queue for ordering. *)
      ignore
        (Engine.schedule_in t.eng ~delay:Time.zero (fun _ ->
             deliver t
               {
                 src;
                 dst;
                 payload;
                 size_bytes;
                 cls;
                 sent_at;
                 delivered_at = Engine.now t.eng;
                 hops = 0;
               }));
      true
    end
    else begin
      traverse src path 0;
      true
    end

let transfer_time t ~src ~dst ~cls ~size_bytes =
  match route t ~src ~dst with
  | None -> None
  | Some path ->
    let total =
      List.fold_left
        (fun acc (link : Topology.link) ->
          let rate = reserved_rate t src link cls in
          Time.add acc (Time.add (serialize_time ~size:size_bytes ~rate) link.latency))
        Time.zero path
    in
    Some total

let default_shares_for topo =
  let worst =
    List.fold_left
      (fun acc (l : Topology.link) -> Stdlib.max acc (List.length l.members))
      2 (Topology.links topo)
  in
  default_shares ~n_members:worst

let reservation_rate shares (link : Topology.link) cls =
  let f = match cls with Data -> shares.data_frac | Control -> shares.control_frac in
  Stdlib.max 1 (int_of_float (float_of_int link.bandwidth_bps *. f))

let link_transfer_time shares ~cls ~size_bytes (link : Topology.link) =
  let rate = reservation_rate shares link cls in
  Time.add (serialize_time ~size:size_bytes ~rate) link.latency

let path_transfer_time shares ~cls ~size_bytes path =
  List.fold_left
    (fun acc link -> Time.add acc (link_transfer_time shares ~cls ~size_bytes link))
    Time.zero path

let plan_transfer_time topo ?shares ?(avoid = []) ~cls ~src ~dst ~size_bytes () =
  let shares = match shares with Some s -> s | None -> default_shares_for topo in
  match Topology.route_avoiding topo ~avoid ~src ~dst with
  | None -> None
  | Some path -> Some (path_transfer_time shares ~cls ~size_bytes path)

let set_relay_policy t n p = Hashtbl.replace t.relay_policy n p
let set_relay_delay t n d = Hashtbl.replace t.relay_delay n d
let set_route_avoid t ns = t.route_avoid <- ns

type stats = {
  messages_sent : int;
  messages_delivered : int;
  messages_lost : int;
  messages_dropped_by_relay : int;
  bytes_sent : int;
  data_bytes_sent : int;
  control_bytes_sent : int;
  data_latencies : float list;
  control_latencies : float list;
}

let stats t =
  {
    messages_sent = Obs.Counter.value t.sent;
    messages_delivered = Obs.Counter.value t.delivered;
    messages_lost = Obs.Counter.value t.lost;
    messages_dropped_by_relay = Obs.Counter.value t.relay_dropped;
    bytes_sent = Obs.Counter.value t.data_bytes + Obs.Counter.value t.control_bytes;
    data_bytes_sent = Obs.Counter.value t.data_bytes;
    control_bytes_sent = Obs.Counter.value t.control_bytes;
    data_latencies = Stats.Acc.values t.data_lat;
    control_latencies = Stats.Acc.values t.control_lat;
  }
