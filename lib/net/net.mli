(** Runtime message transport over a {!Topology}, with statically
    reserved per-sender bandwidth.

    Faithful to the paper's §2.1 model: each sender owns a fixed slice
    of every link it sits on, enforced below the node (hardware MAC), so
    even a Byzantine "babbling idiot" can only saturate its own slice.
    Two traffic classes exist — [Data] for workload flows and [Control]
    for evidence/mode-change traffic — because §4.3 requires evidence
    distribution to run on reserved resources that bound its latency
    regardless of data load.

    Transmission of a [b]-byte message on a link takes
    [b / reserved_rate(sender, link, class)] of queueing-free time;
    back-to-back sends queue behind one another (per sender, link and
    class), then the link's propagation latency applies. Multi-hop
    messages are store-and-forward relayed by intermediate nodes, each
    relay charging its own reservation; Byzantine relays can drop or
    delay them via the relay-policy hooks (fault injection uses this).

    Losses are assumed masked by FEC (§2.1); an optional residual-loss
    probability exercises that assumption's boundary. *)

open Btr_util

type node_id = Topology.node_id

type cls = Data | Control

val cls_name : cls -> string
(** ["data"] / ["control"]; used in telemetry events. *)

val pp_cls : Format.formatter -> cls -> unit

type shares = { data_frac : float; control_frac : float }
(** Fraction of a link's raw bandwidth reserved to {e each member} per
    class. Must satisfy [members * (data + control) <= 1] for every
    link; {!create} checks this. *)

val default_shares : n_members:int -> shares
(** Splits 100% of the link evenly among members, 80/20 data/control. *)

val default_shares_for : Topology.t -> shares
(** The shares {!create} (and {!plan_transfer_time}) fall back to when
    none are given: {!default_shares} sized for the most-populated link
    of the topology. Exposed so offline analyses ({!Btr_check}) reason
    about exactly the reservations the runtime will enforce. *)

val reservation_rate : shares -> Topology.link -> cls -> int
(** Bytes/second one member's static reservation provides on [link] for
    [cls] — the offline counterpart of {!reserved_rate}. *)

type 'a recv = {
  src : node_id;
  dst : node_id;
  payload : 'a;
  size_bytes : int;
  cls : cls;
  sent_at : Time.t;
  delivered_at : Time.t;
  hops : int;
}

type 'a t

val create :
  Btr_sim.Engine.t ->
  Topology.t ->
  ?shares:shares ->
  ?residual_loss:float ->
  unit ->
  'a t

val engine : 'a t -> Btr_sim.Engine.t
val topology : 'a t -> Topology.t

val set_handler : 'a t -> node_id -> ('a recv -> unit) -> unit
(** At most one handler per node; later calls replace earlier ones. *)

val send :
  'a t -> src:node_id -> dst:node_id -> cls:cls -> size_bytes:int -> 'a -> bool
(** Queues a message; [false] when no route exists (after
    {!set_route_avoid}) or when src = dst handler is absent. Delivery is
    asynchronous via the destination handler. *)

val reserved_rate : 'a t -> node_id -> Topology.link -> cls -> int
(** Bytes/second the sender owns on that link for that class. *)

val transfer_time :
  'a t -> src:node_id -> dst:node_id -> cls:cls -> size_bytes:int -> Time.t option
(** Queueing-free end-to-end time for a message along the current route:
    sum of per-hop serialization + propagation. The planner uses this to
    bound state-migration and evidence-distribution times. *)

val plan_transfer_time :
  Topology.t ->
  ?shares:shares ->
  ?avoid:node_id list ->
  cls:cls ->
  src:node_id ->
  dst:node_id ->
  size_bytes:int ->
  unit ->
  Time.t option
(** Offline variant of {!transfer_time} for the planner: computes the
    queueing-free bound from the topology and reservation shares alone,
    routing around [avoid] (default []), without a live network.
    [shares] defaults as in {!create}. *)

val link_transfer_time :
  shares -> cls:cls -> size_bytes:int -> Topology.link -> Time.t
(** One hop of {!plan_transfer_time}: serialization at the reserved rate
    plus the link's propagation latency. Feed to {!Topology.cost_from}
    for all-destinations bounds in one sweep. *)

val path_transfer_time :
  shares -> cls:cls -> size_bytes:int -> Topology.link list -> Time.t
(** Sum of {!link_transfer_time} over a path, i.e. what
    {!plan_transfer_time} returns for the route it found. *)

(** {1 Fault-injection hooks} *)

val set_relay_policy :
  'a t -> node_id -> (src:node_id -> dst:node_id -> cls:cls -> bool) -> unit
(** Consulted when the node is asked to forward a transit message;
    returning [false] silently drops it (omission by a Byzantine relay). *)

val set_relay_delay : 'a t -> node_id -> Time.t -> unit
(** Extra delay a (Byzantine) relay adds to every message it forwards. *)

val set_route_avoid : 'a t -> node_id list -> unit
(** Nodes that routing must no longer relay through (known-faulty set
    after mode changes). Endpoints may still be faulty nodes. *)

(** {1 Statistics} *)

type stats = {
  messages_sent : int;
  messages_delivered : int;
  messages_lost : int;
  messages_dropped_by_relay : int;
  bytes_sent : int;  (** data + control *)
  data_bytes_sent : int;
  control_bytes_sent : int;
  data_latencies : float list;  (** seconds, delivered [Data] messages *)
  control_latencies : float list;  (** seconds, delivered [Control] *)
}

val stats : 'a t -> stats
val bytes_sent_by : 'a t -> node_id -> cls -> int
