(** Static network topologies for the CPS system model (paper §2.1).

    A topology is a set of nodes and a set of links; each link is a
    shared medium (bus) connecting a subset of the nodes, with a finite
    bandwidth and a propagation latency. Bandwidth on each link is
    statically divided among the nodes attached to it — the paper's
    hardware-MAC answer to the babbling-idiot problem — so routing and
    reservations can be computed offline by the planner. *)

type node_id = int

type link = {
  link_id : int;
  members : node_id list;  (** nodes attached to this bus; ≥ 2, distinct *)
  bandwidth_bps : int;  (** raw medium capacity, bytes per second *)
  latency : Btr_util.Time.t;  (** propagation delay per hop *)
}

type t

val create : nodes:node_id list -> links:link list -> t
(** Validates: node ids distinct, link ids distinct, every link member
    is a declared node, every link has ≥ 2 members and positive
    bandwidth. Raises [Invalid_argument] otherwise. *)

val nodes : t -> node_id list
val links : t -> link list
val node_count : t -> int
val find_link : t -> int -> link
val links_of_node : t -> node_id -> link list
val neighbors : t -> node_id -> node_id list
val share_link : t -> node_id -> node_id -> link option
(** Some link both nodes sit on (the highest-bandwidth one if several). *)

val route : t -> src:node_id -> dst:node_id -> link list option
(** Minimum-hop path as the list of links to traverse; [Some []] when
    [src = dst]; [None] when disconnected. Deterministic tie-breaking
    (lowest link id first), so plans are stable across runs. *)

val route_avoiding : t -> avoid:node_id list -> src:node_id -> dst:node_id -> link list option
(** Like {!route} but refuses to relay through nodes in [avoid]
    (endpoints are exempt). Used once nodes are known to be faulty. *)

val next_hop_node : t -> here:node_id -> link:link -> dst:node_id -> node_id
(** The member of [link] that a message for [dst] should be handed to
    next when it is currently at [here]; [dst] itself if attached. *)

val connected_without : t -> node_id list -> bool
(** Are the remaining nodes still mutually reachable if the given nodes
    stop relaying? Endpoint connectivity for planner feasibility. *)

(** {1 Single-source sweeps}

    One BFS answers route queries from a fixed source to {e every}
    destination, with the exact routes {!route_avoiding} would return
    pair-by-pair (same expansion order, same tie-breaking). These turn
    the verifier's all-pairs evidence bounds from O(n³) per fault set
    into O(n·memberships), which is what makes 10³–10⁴-node fleets
    checkable. *)

type paths
(** Shortest-path tree from one source under a [usable] predicate. *)

val paths_from : t -> usable:(node_id -> bool) -> src:node_id -> paths
(** BFS from [src] relaying only through nodes satisfying [usable].
    Unusable nodes are still reachable as endpoints (the {!route_avoiding}
    exemption) but never relay. *)

val reached : paths -> node_id -> bool
(** [reached p n] iff [path_to p ~dst:n] is [Some _]. *)

val path_to : paths -> dst:node_id -> link list option
(** The links of the route recorded in the sweep; equals
    [route_gen src dst] under the same [usable] predicate for every
    destination. [Some []] when [dst] is the source. *)

val cost_from :
  t ->
  usable:(node_id -> bool) ->
  src:node_id ->
  link_cost:(link -> Btr_util.Time.t) ->
  (node_id, Btr_util.Time.t) Hashtbl.t
(** Same traversal as {!paths_from}, accumulating
    [sum of link_cost over the route] per destination during the sweep.
    Absent keys are unreachable; the source maps to {!Btr_util.Time.zero}. *)

val pp : Format.formatter -> t -> unit

(** {1 Generators} *)

val fully_connected :
  n:int -> bandwidth_bps:int -> latency:Btr_util.Time.t -> t
(** One point-to-point link per node pair. *)

val ring : n:int -> bandwidth_bps:int -> latency:Btr_util.Time.t -> t

val star :
  n:int -> hub:node_id -> bandwidth_bps:int -> latency:Btr_util.Time.t -> t
(** [n] nodes, point-to-point spokes to [hub]. *)

val dual_bus :
  n:int -> bandwidth_bps:int -> latency:Btr_util.Time.t -> t
(** Two shared buses, every node on both — the classic avionics layout
    (e.g. ARINC/SAFEbus-style redundant buses). *)
