open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph

type slot = { task : Task.id; start : Time.t; finish : Time.t }

type t = {
  period : Time.t;
  by_node : (int, slot list) Hashtbl.t;  (* ascending start *)
  by_task : (Task.id, int * slot) Hashtbl.t;
}

type failure =
  | Overload of { node : int; demand : Time.t; period : Time.t }
  | Deadline_miss of { flow_id : int; completion : Time.t; deadline : Time.t }
  | No_route of { src_node : int; dst_node : int }

let pp_failure ppf = function
  | Overload { node; demand; period } ->
    Format.fprintf ppf "node %d overloaded: demand %a > period %a" node Time.pp
      demand Time.pp period
  | Deadline_miss { flow_id; completion; deadline } ->
    Format.fprintf ppf "flow %d misses deadline: completes %a > %a" flow_id
      Time.pp completion Time.pp deadline
  | No_route { src_node; dst_node } ->
    Format.fprintf ppf "no route from node %d to node %d" src_node dst_node

type xfer = src:int -> dst:int -> size_bytes:int -> Time.t option

let list_schedule g ~place ~xfer =
  let exception Fail of failure in
  try
    let by_node = Hashtbl.create 8 in
    let by_task = Hashtbl.create 32 in
    let node_free = Hashtbl.create 8 in
    let free n = Option.value ~default:Time.zero (Hashtbl.find_opt node_free n) in
    let finish_of tid =
      match Hashtbl.find_opt by_task tid with
      | Some (_, s) -> s.finish
      | None -> assert false (* topo order guarantees producers done *)
    in
    List.iter
      (fun tid ->
        let task = Graph.task g tid in
        let node = place tid in
        let ready =
          List.fold_left
            (fun acc (f : Graph.flow) ->
              let pnode = place f.producer in
              let arrival =
                if pnode = node then finish_of f.producer
                else
                  match xfer ~src:pnode ~dst:node ~size_bytes:f.msg_size with
                  | Some d -> Time.add (finish_of f.producer) d
                  | None -> raise (Fail (No_route { src_node = pnode; dst_node = node }))
              in
              Time.max acc arrival)
            Time.zero (Graph.producers_of g tid)
        in
        let start = Time.max ready (free node) in
        let finish = Time.add start task.Task.wcet in
        if Time.compare finish (Graph.period g) > 0 then begin
          (* Distinguish raw overload from precedence-induced overrun by
             reporting the node's total demand. *)
          let demand =
            List.fold_left
              (fun acc (x : Task.t) -> if place x.id = node then Time.add acc x.wcet else acc)
              Time.zero (Graph.tasks g)
          in
          raise (Fail (Overload { node; demand; period = Graph.period g }))
        end;
        let slot = { task = tid; start; finish } in
        Hashtbl.replace by_task tid (node, slot);
        Hashtbl.replace by_node node
          (slot :: Option.value ~default:[] (Hashtbl.find_opt by_node node));
        Hashtbl.replace node_free node finish)
      (Graph.topo_order g);
    Table.sorted_iter ~cmp:Int.compare
      (fun n slots ->
        Hashtbl.replace by_node n
          (List.sort (fun a b -> Time.compare a.start b.start) slots))
      (Hashtbl.copy by_node);
    let sched = { period = Graph.period g; by_node; by_task } in
    (* Sink-flow deadlines: the output reaches the physical world when
       the sink task completes. *)
    List.iter
      (fun (f : Graph.flow) ->
        match f.deadline with
        | None -> ()
        | Some d ->
          let _, sink_slot = Hashtbl.find by_task f.consumer in
          if Time.compare sink_slot.finish d > 0 then
            raise
              (Fail
                 (Deadline_miss
                    { flow_id = f.flow_id; completion = sink_slot.finish; deadline = d })))
      (Graph.sink_flows g);
    Ok sched
  with Fail f -> Error f

let period t = t.period

let nodes t = Table.sorted_keys ~cmp:Int.compare t.by_node

let slots_on t n = Option.value ~default:[] (Hashtbl.find_opt t.by_node n)

let window t tid =
  Option.map (fun (_, s) -> (s.start, s.finish)) (Hashtbl.find_opt t.by_task tid)

let node_of t tid = Option.map fst (Hashtbl.find_opt t.by_task tid)

let makespan t =
  Table.sorted_fold ~cmp:Int.compare
    (fun _ slots acc ->
      List.fold_left (fun acc s -> Time.max acc s.finish) acc slots)
    t.by_node Time.zero

let node_utilization t n =
  let busy =
    List.fold_left (fun acc s -> Time.add acc (Time.sub s.finish s.start)) Time.zero
      (slots_on t n)
  in
  Time.to_sec_f busy /. Time.to_sec_f t.period

let sink_completion t g flow_id =
  let f = Graph.flow g flow_id in
  Option.map (fun (_, s) -> s.finish) (Hashtbl.find_opt t.by_task f.consumer)

let validate t g ~xfer =
  let problems = ref [] in
  let err fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (* Slots within the period and non-overlapping per node. Sorted
     traversal: the problem list's order is part of the error string. *)
  Table.sorted_iter ~cmp:Int.compare
    (fun n slots ->
      let rec check_overlap = function
        | a :: (b :: _ as rest) ->
          if Time.compare a.finish b.start > 0 then
            err "node %d: slots for tasks %d and %d overlap" n a.task b.task;
          check_overlap rest
        | _ -> ()
      in
      check_overlap slots;
      List.iter
        (fun s ->
          if Time.compare s.start Time.zero < 0 || Time.compare s.finish t.period > 0
          then err "node %d: slot for task %d outside [0, period]" n s.task;
          let wcet = (Graph.task g s.task).Task.wcet in
          if not (Time.equal (Time.sub s.finish s.start) wcet) then
            err "task %d: slot length differs from wcet" s.task)
        slots)
    t.by_node;
  (* Precedence edges. *)
  List.iter
    (fun (f : Graph.flow) ->
      match Hashtbl.find_opt t.by_task f.producer, Hashtbl.find_opt t.by_task f.consumer
      with
      | Some (pn, ps), Some (cn, cs) ->
        let arrival =
          if pn = cn then ps.finish
          else
            match xfer ~src:pn ~dst:cn ~size_bytes:f.msg_size with
            | Some d -> Time.add ps.finish d
            | None ->
              err "flow %d: no route %d -> %d" f.flow_id pn cn;
              ps.finish
        in
        if Time.compare cs.start arrival < 0 then
          err "flow %d: consumer %d starts before input arrives" f.flow_id f.consumer
      | _ -> err "flow %d: endpoint not scheduled" f.flow_id)
    (Graph.flows g);
  (* Deadlines. *)
  List.iter
    (fun (f : Graph.flow) ->
      match f.deadline, Hashtbl.find_opt t.by_task f.consumer with
      | Some d, Some (_, s) when Time.compare s.finish d > 0 ->
        err "flow %d: deadline missed" f.flow_id
      | _ -> ())
    (Graph.sink_flows g);
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule (period %a):@," Time.pp t.period;
  List.iter
    (fun n ->
      Format.fprintf ppf "  node %d:" n;
      List.iter
        (fun s -> Format.fprintf ppf " [%a,%a)t%d" Time.pp s.start Time.pp s.finish s.task)
        (slots_on t n);
      Format.fprintf ppf "@,")
    (nodes t);
  Format.fprintf ppf "@]"
