open Btr_util

type periodic = { wcet : Time.t; period : Time.t; deadline : Time.t }

let task ~wcet ~period ?deadline () =
  let deadline = Option.value ~default:period deadline in
  if wcet <= 0 then invalid_arg "Analysis.task: wcet <= 0";
  if period <= 0 then invalid_arg "Analysis.task: period <= 0";
  if deadline <= 0 then invalid_arg "Analysis.task: deadline <= 0";
  if deadline > period then invalid_arg "Analysis.task: deadline > period";
  { wcet; period; deadline }

let utilization ts =
  List.fold_left
    (fun acc t -> acc +. (Time.to_sec_f t.wcet /. Time.to_sec_f t.period))
    0.0 ts

let edf_schedulable_implicit ts = utilization ts <= 1.0 +. 1e-12

let demand_bound ts ~horizon =
  List.fold_left
    (fun acc t ->
      if horizon < t.deadline then acc
      else
        let jobs = ((horizon - t.deadline) / t.period) + 1 in
        Time.add acc (Time.mul t.wcet jobs))
    Time.zero ts

let hyperperiod ts = List.fold_left (fun acc t -> Time.lcm acc t.period) 1 ts

(* Test points: every absolute deadline d = k*T_i + D_i within the
   hyperperiod. For synchronous release this set is sufficient. *)
let deadline_points ts ~upto =
  let points = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let d = ref t.deadline in
      while !d <= upto do
        Hashtbl.replace points !d ();
        d := Time.add !d t.period
      done)
    ts;
  Table.sorted_keys ~cmp:Time.compare points

let edf_schedulable ts =
  match ts with
  | [] -> true
  | _ ->
    utilization ts <= 1.0 +. 1e-12
    && List.for_all
         (fun d -> Time.compare (demand_bound ts ~horizon:d) d <= 0)
         (deadline_points ts ~upto:(hyperperiod ts))

let response_times ts =
  (* Deadline-monotonic priority order; remember original positions. *)
  let indexed = List.mapi (fun i t -> (i, t)) ts in
  let by_prio =
    List.sort (fun (_, a) (_, b) -> Time.compare a.deadline b.deadline) indexed
  in
  let results = Array.make (List.length ts) None in
  List.iteri
    (fun rank (orig_idx, t) ->
      let higher = List.filteri (fun r _ -> r < rank) by_prio in
      (* R = C + sum_{hp} ceil(R/T_j) C_j, iterated to fixpoint. *)
      let rec iterate r =
        let interference =
          List.fold_left
            (fun acc (_, h) ->
              let jobs = (r + h.period - 1) / h.period in
              Time.add acc (Time.mul h.wcet jobs))
            Time.zero higher
        in
        let r' = Time.add t.wcet interference in
        if Time.compare r' t.deadline > 0 then None
        else if Time.equal r' r then Some r'
        else iterate r'
      in
      results.(orig_idx) <- iterate t.wcet)
    by_prio;
  Array.to_list results

let fp_schedulable ts =
  List.for_all2
    (fun t r -> match r with Some x -> Time.compare x t.deadline <= 0 | None -> false)
    ts (response_times ts)

type dual = {
  lo_wcet : Time.t;
  hi_wcet : Time.t;
  dual_period : Time.t;
  hi_criticality : bool;
}

let vestal_schedulable ds =
  let u select =
    List.fold_left
      (fun acc d ->
        match select d with
        | Some c -> acc +. (Time.to_sec_f c /. Time.to_sec_f d.dual_period)
        | None -> acc)
      0.0 ds
  in
  let lo_mode = u (fun d -> Some d.lo_wcet) in
  let hi_mode = u (fun d -> if d.hi_criticality then Some d.hi_wcet else None) in
  lo_mode <= 1.0 +. 1e-12 && hi_mode <= 1.0 +. 1e-12

module Edf_sim = struct
  type job = { abs_deadline : Time.t; mutable remaining : Time.t }

  let deadline_misses ts ~horizon =
    (* Event-driven preemptive EDF with synchronous release. *)
    let jobs : job list ref = ref [] in
    let misses = ref 0 in
    let release now =
      List.iter
        (fun t ->
          if now mod t.period = 0 then
            jobs := { abs_deadline = Time.add now t.deadline; remaining = t.wcet } :: !jobs)
        ts
    in
    let next_release now =
      List.fold_left
        (fun acc t ->
          let next = Time.mul t.period ((now / t.period) + 1) in
          Time.min acc next)
        Time.infinity ts
    in
    let rec run now =
      if Time.compare now horizon >= 0 then ()
      else begin
        release now;
        let upto = Time.min horizon (next_release now) in
        (* Run EDF within [now, upto): repeatedly pick the earliest
           deadline job and execute it (no releases occur inside). *)
        let rec work t =
          if Time.compare t upto >= 0 then ()
          else begin
            jobs := List.filter (fun j -> j.remaining > 0) !jobs;
            match
              List.sort (fun a b -> Time.compare a.abs_deadline b.abs_deadline) !jobs
            with
            | [] -> ()
            | j :: _ ->
              let slice = Time.min j.remaining (Time.sub upto t) in
              j.remaining <- Time.sub j.remaining slice;
              let t' = Time.add t slice in
              if j.remaining = 0 && Time.compare t' j.abs_deadline > 0 then incr misses;
              work t'
          end
        in
        work now;
        (* Jobs whose deadline passed while still unfinished miss. *)
        jobs :=
          List.filter
            (fun j ->
              if Time.compare j.abs_deadline upto <= 0 && j.remaining > 0 then begin
                incr misses;
                false
              end
              else true)
            !jobs;
        run upto
      end
    in
    run Time.zero;
    !misses
end
