module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Planner = Btr_planner.Planner
module Augment = Btr_planner.Augment

module Fault_set = struct
  type t = {
    mutable node_list : int list;  (* sorted *)
    mutable path_list : (int * int) list;
    (* path -> suspected endpoints (sorted); only suspect-carrying
       paths are actionable for mode switching. *)
    mutable suspect_list : ((int * int) * int list) list;
  }

  let create () = { node_list = []; path_list = []; suspect_list = [] }

  let add_node t n =
    if List.mem n t.node_list then false
    else begin
      t.node_list <- List.sort Int.compare (n :: t.node_list);
      true
    end

  let norm (a, b) = if a <= b then (a, b) else (b, a)

  let cmp_path (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

  let suspects_of t p =
    match
      List.find_opt (fun (q, _) -> cmp_path q (norm p) = 0) t.suspect_list
    with
    | Some (_, s) -> s
    | None -> []

  let add_path ?suspect t p =
    let p = norm p in
    let path_new = not (List.mem p t.path_list) in
    if path_new then
      t.path_list <- List.sort cmp_path (p :: t.path_list);
    let suspect_new =
      match suspect with
      | None -> false
      | Some s ->
        let a, b = p in
        if s <> a && s <> b then false
        else begin
          let prev = suspects_of t p in
          if List.mem s prev then false
          else begin
            let merged = List.sort Int.compare (s :: prev) in
            t.suspect_list <-
              List.sort
                (fun (p1, _) (p2, _) -> cmp_path p1 p2)
                ((p, merged)
                :: List.filter (fun (q, _) -> cmp_path q p <> 0) t.suspect_list);
            true
          end
        end
    in
    path_new || suspect_new

  let nodes t = t.node_list
  let paths t = t.path_list
  let mem_node t n = List.mem n t.node_list
  let mem_path t p = List.mem (norm p) t.path_list

  let union t other =
    let changed = ref false in
    List.iter (fun n -> if add_node t n then changed := true) other.node_list;
    List.iter (fun p -> if add_path t p then changed := true) other.path_list;
    List.iter
      (fun (p, ss) ->
        List.iter (fun s -> if add_path ~suspect:s t p then changed := true) ss)
      other.suspect_list;
    !changed

  (* All k-subsets of a sorted list, in lexicographic order. *)
  let rec combos k lst =
    if k = 0 then [ [] ]
    else
      match lst with
      | [] -> []
      | x :: rest -> List.map (fun c -> x :: c) (combos (k - 1) rest) @ combos k rest

  let target t ~f =
    let attributed = t.node_list in
    let covered_by s (a, b) = List.mem a s || List.mem b s in
    (* Paths whose omission is already explained by an attributed node
       need no further action; the rest must be covered by evicting a
       small set of additional nodes — each candidate cover member is an
       endpoint of some such path, so the paper's self-incrimination
       argument applies (a liar's bogus paths all share the liar). *)
    let uncovered =
      List.filter (fun (p, _) -> not (covered_by attributed p)) t.suspect_list
    in
    match uncovered with
    | [] -> attributed
    | _ ->
      let budget = f - List.length attributed in
      if budget <= 0 then attributed
      else begin
        let endpoints =
          List.sort_uniq Int.compare
            (List.concat_map (fun ((a, b), _) -> [ a; b ]) uncovered)
        in
        let suspects =
          List.sort_uniq Int.compare (List.concat_map snd uncovered)
        in
        let non_suspects s =
          List.length (List.filter (fun n -> not (List.mem n suspects)) s)
        in
        let best = ref [] in
        (try
           for k = 1 to min budget (List.length endpoints) do
             List.iter
               (fun s ->
                 if List.for_all (fun (p, _) -> covered_by s p) uncovered then
                   match !best with
                   | [] -> best := s
                   | b -> if non_suspects s < non_suspects b then best := s)
               (combos k endpoints);
             (* Minimal size wins outright; preferences only break ties
                within one size class. *)
             match !best with [] -> () | _ -> raise Exit
           done
         with Exit -> ());
        match !best with
        | [] ->
          (* No cover fits the fault budget: evicting a partial guess
             could frame correct nodes without restoring the bound, so
             act only on what is attributed. *)
          attributed
        | cover -> List.sort_uniq Int.compare (attributed @ cover)
      end
end

type action =
  | Stop of Task.id
  | Start_fresh of Task.id
  | Start_after_state of { task : Task.id; from_node : int; bytes : int }
  | Send_state of { task : Task.id; to_node : int; bytes : int }

let pp_action ppf = function
  | Stop t -> Format.fprintf ppf "stop task %d" t
  | Start_fresh t -> Format.fprintf ppf "start task %d (fresh)" t
  | Start_after_state { task; from_node; bytes } ->
    Format.fprintf ppf "start task %d after %dB of state from node %d" task bytes
      from_node
  | Send_state { task; to_node; bytes } ->
    Format.fprintf ppf "send %dB of task %d state to node %d" bytes task to_node

let diff ~node ~from_plan ~to_plan =
  let open Planner in
  let from_assign = from_plan.assignment and to_assign = to_plan.assignment in
  let state_size tid =
    match Graph.task to_plan.aug.Augment.graph tid with
    | x -> x.Task.state_size
    | exception Invalid_argument _ -> (
      match Graph.task from_plan.aug.Augment.graph tid with
      | x -> x.Task.state_size
      | exception Invalid_argument _ -> 0)
  in
  let actions = ref [] in
  let emit a = actions := a :: !actions in
  (* Tasks leaving this node: stop; ship state if they moved to a live
     node and carry state. *)
  List.iter
    (fun (tid, old_node) ->
      if old_node = node then
        match List.assoc_opt tid to_assign with
        | Some new_node when new_node = node -> ()
        | Some new_node ->
          emit (Stop tid);
          let bytes = state_size tid in
          if bytes > 0 && not (List.mem node to_plan.faulty) then
            emit (Send_state { task = tid; to_node = new_node; bytes })
        | None -> emit (Stop tid))
    from_assign;
  (* Tasks arriving at this node. *)
  List.iter
    (fun (tid, new_node) ->
      if new_node = node then
        match List.assoc_opt tid from_assign with
        | Some old_node when old_node = node -> ()
        | Some old_node ->
          let bytes = state_size tid in
          if bytes > 0 && not (List.mem old_node to_plan.faulty) then
            emit (Start_after_state { task = tid; from_node = old_node; bytes })
          else emit (Start_fresh tid)
        | None -> emit (Start_fresh tid))
    to_assign;
  List.rev !actions
