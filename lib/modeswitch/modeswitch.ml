module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Planner = Btr_planner.Planner
module Augment = Btr_planner.Augment

module Fault_set = struct
  type t = {
    mutable node_list : int list;  (* sorted *)
    mutable path_list : (int * int) list;
  }

  let create () = { node_list = []; path_list = [] }

  let add_node t n =
    if List.mem n t.node_list then false
    else begin
      t.node_list <- List.sort Int.compare (n :: t.node_list);
      true
    end

  let norm (a, b) = if a <= b then (a, b) else (b, a)

  let add_path t p =
    let p = norm p in
    if List.mem p t.path_list then false
    else begin
      t.path_list <-
        List.sort
          (fun (a1, b1) (a2, b2) ->
            match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
          (p :: t.path_list);
      true
    end

  let nodes t = t.node_list
  let paths t = t.path_list
  let mem_node t n = List.mem n t.node_list
  let mem_path t p = List.mem (norm p) t.path_list

  let union t other =
    let changed = ref false in
    List.iter (fun n -> if add_node t n then changed := true) other.node_list;
    List.iter (fun p -> if add_path t p then changed := true) other.path_list;
    !changed
end

type action =
  | Stop of Task.id
  | Start_fresh of Task.id
  | Start_after_state of { task : Task.id; from_node : int; bytes : int }
  | Send_state of { task : Task.id; to_node : int; bytes : int }

let pp_action ppf = function
  | Stop t -> Format.fprintf ppf "stop task %d" t
  | Start_fresh t -> Format.fprintf ppf "start task %d (fresh)" t
  | Start_after_state { task; from_node; bytes } ->
    Format.fprintf ppf "start task %d after %dB of state from node %d" task bytes
      from_node
  | Send_state { task; to_node; bytes } ->
    Format.fprintf ppf "send %dB of task %d state to node %d" bytes task to_node

let diff ~node ~from_plan ~to_plan =
  let open Planner in
  let from_assign = from_plan.assignment and to_assign = to_plan.assignment in
  let state_size tid =
    match Graph.task to_plan.aug.Augment.graph tid with
    | x -> x.Task.state_size
    | exception Invalid_argument _ -> (
      match Graph.task from_plan.aug.Augment.graph tid with
      | x -> x.Task.state_size
      | exception Invalid_argument _ -> 0)
  in
  let actions = ref [] in
  let emit a = actions := a :: !actions in
  (* Tasks leaving this node: stop; ship state if they moved to a live
     node and carry state. *)
  List.iter
    (fun (tid, old_node) ->
      if old_node = node then
        match List.assoc_opt tid to_assign with
        | Some new_node when new_node = node -> ()
        | Some new_node ->
          emit (Stop tid);
          let bytes = state_size tid in
          if bytes > 0 && not (List.mem node to_plan.faulty) then
            emit (Send_state { task = tid; to_node = new_node; bytes })
        | None -> emit (Stop tid))
    from_assign;
  (* Tasks arriving at this node. *)
  List.iter
    (fun (tid, new_node) ->
      if new_node = node then
        match List.assoc_opt tid from_assign with
        | Some old_node when old_node = node -> ()
        | Some old_node ->
          let bytes = state_size tid in
          if bytes > 0 && not (List.mem old_node to_plan.faulty) then
            emit (Start_after_state { task = tid; from_node = old_node; bytes })
          else emit (Start_fresh tid)
        | None -> emit (Start_fresh tid))
    to_assign;
  List.rev !actions
