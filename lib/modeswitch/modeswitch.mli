(** Mode changes (paper §4.4).

    No global agreement is needed to reconfigure: the next plan is a
    function of the set of attributed-faulty nodes, and that set is
    append-only (valid evidence can only add to it). So every correct
    node maintains a grow-only {!Fault_set}, and, as evidence reaches
    all correct nodes, their fault sets — and hence their plans —
    converge. {!diff} computes the local actions a node must take to
    move from one plan to the next: stop tasks that left it, migrate
    state for tasks that moved away, start tasks that arrived (waiting
    for their state if the old host survives). *)

module Task = Btr_workload.Task
module Planner = Btr_planner.Planner
module Augment = Btr_planner.Augment

module Fault_set : sig
  type t

  val create : unit -> t

  val add_node : t -> int -> bool
  (** [true] if the node was not already in the set. *)

  val add_path : ?suspect:int -> t -> int * int -> bool
  (** [true] if the path was new {e or} a new suspect was recorded for
      it. [suspect] marks the endpoint the declarer believes is at
      fault (for omissions: the non-detector endpoint); it is ignored
      unless it is one of the path's endpoints. Paths without suspects
      (timing glitches) are tracked but never drive eviction. *)

  val nodes : t -> int list
  (** Sorted; this is the strategy lookup key. *)

  val paths : t -> (int * int) list
  val suspects_of : t -> int * int -> int list
  val mem_node : t -> int -> bool
  val mem_path : t -> int * int -> bool

  val target : t -> f:int -> int list
  (** The sorted node set the next plan should treat as faulty:
      attributed nodes, plus — when suspect-carrying paths remain
      unexplained and budget ([f] minus attributed) allows — a minimum
      cover of those paths by their endpoints, preferring covers made
      of declared suspects, then lexicographically smallest. A faulty
      declarer flooding bogus paths only adds paths it is an endpoint
      of, so the minimum cover converges on the declarer itself.
      All-or-nothing: if no cover fits the budget the result is just
      the attributed nodes. *)

  val union : t -> t -> bool
  (** Merge the second into the first; [true] if anything was new. *)
end

(** What one node must do to move between two plans. *)
type action =
  | Stop of Task.id
  | Start_fresh of Task.id
      (** begin running at the next boundary, no state needed (either a
          stateless task or its previous host is faulty — state lost) *)
  | Start_after_state of { task : Task.id; from_node : int; bytes : int }
      (** begin running once the previous host ships the state *)
  | Send_state of { task : Task.id; to_node : int; bytes : int }

val pp_action : Format.formatter -> action -> unit

val diff :
  node:int -> from_plan:Planner.plan -> to_plan:Planner.plan -> action list
(** Local action list for [node]. Tasks are matched by augmented id
    across the two plans (augmentation is deterministic per mode, so
    ids are stable for tasks that exist in both). State only moves for
    tasks with [state_size > 0] whose old host is not faulty in the new
    plan. *)
