open Btr_util
module Evidence = Btr_evidence.Evidence
module Obs = Btr_obs.Obs

let path_statement_admissible (s : Evidence.statement) =
  match s.accused with
  | Evidence.Path (a, b) -> s.detector = a || s.detector = b
  | Evidence.Node _ -> true

module Watchdog = struct
  type expectation = { from_node : int; deadline : Time.t; mutable met : bool }
  type late = { flow : int; period : int; from_node : int; lateness : Time.t }

  type miss = {
    miss_flow : int;
    miss_period : int;
    miss_from : int;
    account : int;
    declared : bool;
  }

  type t = {
    node : int;
    margin : Time.t;
    strikes : int;
    obs : Obs.t;
    late_count : Obs.Counter.t;
    missing_count : Obs.Counter.t;
    reset_count : Obs.Counter.t;
    table : (int * int, expectation) Hashtbl.t;
    (* Per-sender strike account, shared across every watcher path from
       that sender to this node. Bumped at most once per sweep, reset on
       a timely arrival — so only a sustained per-sender outage (not
       accumulated unrelated losses) ever reaches [strikes]. *)
    accounts : (int, int) Hashtbl.t;
  }

  let create ~node ~margin ?(strikes = 1) ?(obs = Obs.null) () =
    if strikes < 1 then invalid_arg "Watchdog.create: strikes < 1";
    let reg = Obs.registry obs in
    {
      node;
      margin;
      strikes;
      obs;
      late_count = Obs.Registry.counter reg Obs.Detect "watchdog-late";
      missing_count = Obs.Registry.counter reg Obs.Detect "watchdog-missing";
      reset_count = Obs.Registry.counter reg Obs.Detect "strike-resets";
      table = Hashtbl.create 64;
      accounts = Hashtbl.create 16;
    }

  let account t ~from_node =
    Option.value ~default:0 (Hashtbl.find_opt t.accounts from_node)

  let expect t ~flow ~period ~from_node ~deadline =
    if not (Hashtbl.mem t.table (flow, period)) then
      Hashtbl.replace t.table (flow, period) { from_node; deadline; met = false }

  let note_arrival t ~flow ~period ~at =
    match Hashtbl.find_opt t.table (flow, period) with
    | None -> None
    | Some e ->
      e.met <- true;
      let limit = Time.add e.deadline t.margin in
      if Time.compare at limit > 0 then begin
        let lateness = Time.sub at limit in
        Obs.Counter.incr t.late_count;
        if Obs.enabled t.obs then
          Obs.emit t.obs ~at ~node:t.node Obs.Detect
            (Obs.Watchdog_late { flow; period; from_node = e.from_node; lateness });
        Some { flow; period; from_node = e.from_node; lateness }
      end
      else begin
        (* A timely arrival proves the sender is live on this path right
           now: clear its strike account so sporadic, spread-out link
           loss can never accumulate into a false declaration. *)
        if account t ~from_node:e.from_node > 0 then begin
          Hashtbl.replace t.accounts e.from_node 0;
          Obs.Counter.incr t.reset_count
        end;
        None
      end

  let cmp_flow_period (f1, p1) (f2, p2) =
    match Int.compare f1 f2 with 0 -> Int.compare p1 p2 | c -> c

  let sweep t ~now =
    (* Sorted traversal: the report order feeds evidence emission and
       the telemetry trace, so it must not depend on insertion order. *)
    let due =
      List.filter
        (fun ((_ : int * int), (e : expectation)) ->
          (not e.met) && Time.compare now (Time.add e.deadline t.margin) > 0)
        (Table.sorted_bindings ~cmp:cmp_flow_period t.table)
    in
    (* Bump each sender's account at most once per sweep, no matter how
       many of its flows are overdue: detection latency then depends on
       sustained periods of silence, not on watcher fan-in. *)
    let bumped = Hashtbl.create 4 in
    List.iter
      (fun (_, (e : expectation)) ->
        if not (Hashtbl.mem bumped e.from_node) then begin
          Hashtbl.replace bumped e.from_node ();
          Hashtbl.replace t.accounts e.from_node
            (1 + account t ~from_node:e.from_node)
        end)
      due;
    List.map
      (fun ((flow, period), e) ->
        e.met <- true;
        let n = account t ~from_node:e.from_node in
        let declared = n >= t.strikes in
        if declared then begin
          Obs.Counter.incr t.missing_count;
          if Obs.enabled t.obs then
            Obs.emit t.obs ~at:now ~node:t.node Obs.Detect
              (Obs.Watchdog_missing { flow; period; from_node = e.from_node })
        end;
        {
          miss_flow = flow;
          miss_period = period;
          miss_from = e.from_node;
          account = n;
          declared;
        })
      due

  let overdue t ~now =
    List.filter_map
      (fun m ->
        if m.declared then Some (m.miss_flow, m.miss_period, m.miss_from)
        else None)
      (sweep t ~now)

  let pending t =
    Table.sorted_fold ~cmp:cmp_flow_period
      (fun _ e acc -> if e.met then acc else acc + 1)
      t.table 0
end

module Attribution = struct
  type t = {
    threshold : int;
    window : int;
    counterpart : (int, int list ref) Hashtbl.t;
    (* Set mirror of [counterpart] so membership checks are O(1); the
       list keeps first-seen order for deterministic output. *)
    counterpart_set : (int * int, unit) Hashtbl.t;
    attributed_set : (int, unit) Hashtbl.t;
    mutable attributed_rev : int list;
    (* sender -> (watcher -> period of its most recent suspicion) *)
    suspicions : (int, (int, int) Hashtbl.t) Hashtbl.t;
    corroborated : (int, unit) Hashtbl.t;
  }

  let create ?(window = 4) ~threshold () =
    if threshold < 1 then invalid_arg "Attribution.create: threshold < 1";
    if window < 1 then invalid_arg "Attribution.create: window < 1";
    {
      threshold;
      window;
      counterpart = Hashtbl.create 16;
      counterpart_set = Hashtbl.create 32;
      attributed_set = Hashtbl.create 16;
      attributed_rev = [];
      suspicions = Hashtbl.create 16;
      corroborated = Hashtbl.create 4;
    }

  let counterparties t n =
    match Hashtbl.find_opt t.counterpart n with Some l -> List.rev !l | None -> []

  let is_attributed t n = Hashtbl.mem t.attributed_set n

  let note_one t node other =
    if Hashtbl.mem t.counterpart_set (node, other) then false
    else begin
      Hashtbl.replace t.counterpart_set (node, other) ();
      let l =
        match Hashtbl.find_opt t.counterpart node with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace t.counterpart node l;
          l
      in
      l := other :: !l;
      List.length !l >= t.threshold && not (is_attributed t node)
    end

  let note_path t ~a ~b =
    let newly = ref [] in
    if note_one t a b then newly := a :: !newly;
    if note_one t b a then newly := b :: !newly;
    List.iter
      (fun n ->
        Hashtbl.replace t.attributed_set n ();
        t.attributed_rev <- n :: t.attributed_rev)
      !newly;
    List.rev !newly

  let attributed t = List.rev t.attributed_rev

  let is_corroborated t ~sender = Hashtbl.mem t.corroborated sender

  let note_suspicion t ~sender ~watcher ~period =
    if Hashtbl.mem t.corroborated sender then []
    else begin
      let tbl =
        match Hashtbl.find_opt t.suspicions sender with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace t.suspicions sender tbl;
          tbl
      in
      let prev = Option.value ~default:min_int (Hashtbl.find_opt tbl watcher) in
      if period > prev then Hashtbl.replace tbl watcher period;
      (* Only suspicions recent enough to describe the same outage count
         as corroborating; stale entries from an old, recovered glitch
         age out of the window. *)
      let recent =
        Table.sorted_fold ~cmp:Int.compare
          (fun w p acc -> if period - p <= t.window then w :: acc else acc)
          tbl []
      in
      let recent = List.sort Int.compare recent in
      if List.length recent >= t.threshold then begin
        Hashtbl.replace t.corroborated sender ();
        recent
      end
      else []
    end
end
