open Btr_util
module Evidence = Btr_evidence.Evidence
module Obs = Btr_obs.Obs

let path_statement_admissible (s : Evidence.statement) =
  match s.accused with
  | Evidence.Path (a, b) -> s.detector = a || s.detector = b
  | Evidence.Node _ -> true

module Watchdog = struct
  type expectation = { from_node : int; deadline : Time.t; mutable met : bool }
  type late = { flow : int; period : int; from_node : int; lateness : Time.t }

  type t = {
    node : int;
    margin : Time.t;
    strikes : int;
    obs : Obs.t;
    late_count : Obs.Counter.t;
    missing_count : Obs.Counter.t;
    table : (int * int, expectation) Hashtbl.t;
    misses : (int, int) Hashtbl.t;  (* per from_node missing count *)
  }

  let create ~node ~margin ?(strikes = 1) ?(obs = Obs.null) () =
    if strikes < 1 then invalid_arg "Watchdog.create: strikes < 1";
    let reg = Obs.registry obs in
    {
      node;
      margin;
      strikes;
      obs;
      late_count = Obs.Registry.counter reg Obs.Detect "watchdog-late";
      missing_count = Obs.Registry.counter reg Obs.Detect "watchdog-missing";
      table = Hashtbl.create 64;
      misses = Hashtbl.create 16;
    }

  let expect t ~flow ~period ~from_node ~deadline =
    if not (Hashtbl.mem t.table (flow, period)) then
      Hashtbl.replace t.table (flow, period) { from_node; deadline; met = false }

  let note_arrival t ~flow ~period ~at =
    match Hashtbl.find_opt t.table (flow, period) with
    | None -> None
    | Some e ->
      e.met <- true;
      let limit = Time.add e.deadline t.margin in
      if Time.compare at limit > 0 then begin
        let lateness = Time.sub at limit in
        Obs.Counter.incr t.late_count;
        if Obs.enabled t.obs then
          Obs.emit t.obs ~at ~node:t.node Obs.Detect
            (Obs.Watchdog_late { flow; period; from_node = e.from_node; lateness });
        Some { flow; period; from_node = e.from_node; lateness }
      end
      else None

  let cmp_flow_period (f1, p1) (f2, p2) =
    match Int.compare f1 f2 with 0 -> Int.compare p1 p2 | c -> c

  let overdue t ~now =
    (* Sorted traversal: the report order feeds evidence emission and
       the telemetry trace, so it must not depend on insertion order. *)
    let due =
      List.filter
        (fun (_, e) ->
          (not e.met) && Time.compare now (Time.add e.deadline t.margin) > 0)
        (Table.sorted_bindings ~cmp:cmp_flow_period t.table)
    in
    (* Mark as met so the next sweep skips them; report a sender only
       once it has accumulated [strikes] misses (loss tolerance). *)
    List.filter_map
      (fun ((flow, period), e) ->
        e.met <- true;
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.misses e.from_node) in
        Hashtbl.replace t.misses e.from_node n;
        if n >= t.strikes then begin
          Obs.Counter.incr t.missing_count;
          if Obs.enabled t.obs then
            Obs.emit t.obs ~at:now ~node:t.node Obs.Detect
              (Obs.Watchdog_missing { flow; period; from_node = e.from_node });
          Some (flow, period, e.from_node)
        end
        else None)
      due

  let pending t =
    Table.sorted_fold ~cmp:cmp_flow_period
      (fun _ e acc -> if e.met then acc else acc + 1)
      t.table 0
end

module Attribution = struct
  type t = {
    threshold : int;
    counterpart : (int, int list ref) Hashtbl.t;
    mutable attributed_rev : int list;
  }

  let create ~threshold =
    if threshold < 1 then invalid_arg "Attribution.create: threshold < 1";
    { threshold; counterpart = Hashtbl.create 16; attributed_rev = [] }

  let counterparties t n =
    match Hashtbl.find_opt t.counterpart n with Some l -> !l | None -> []

  let is_attributed t n = List.mem n t.attributed_rev

  let note_one t node other =
    let l =
      match Hashtbl.find_opt t.counterpart node with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.counterpart node l;
        l
    in
    if List.mem other !l then false
    else begin
      l := other :: !l;
      List.length !l >= t.threshold && not (is_attributed t node)
    end

  let note_path t ~a ~b =
    let newly = ref [] in
    if note_one t a b then newly := a :: !newly;
    if note_one t b a then newly := b :: !newly;
    List.iter (fun n -> t.attributed_rev <- n :: t.attributed_rev) !newly;
    List.rev !newly

  let attributed t = List.rev t.attributed_rev
end
