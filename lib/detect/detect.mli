(** Runtime fault detection (paper §4.2).

    Three mechanisms cooperate:

    - {b Replay checking} (in the BTR runtime, using this module's
      verdict helpers): checking tasks recompute a replica's output from
      the signed inputs that replica presented; a mismatch is
      {e attributable} evidence against the replica's node.
    - {b Watchdogs} ({!Watchdog}): every expected message has a known
      arrival window, because schedules are static. A message that
      never arrives is an {e omission}; one that arrives outside its
      window (plus margin) is a {e timing} fault. Omissions cannot be
      pinned on an endpoint — the sender may have failed to send or the
      receiver may be lying — so they only yield {e path} declarations.
    - {b Attribution} ({!Attribution}): path declarations are counted
      per endpoint. A node that appears on at least [threshold]
      distinct problematic paths is attributed as faulty. With
      [threshold = f + 1], no correct node is ever falsely attributed:
      a correct endpoint acquires problematic paths only opposite
      faulty counterparties, and there are at most [f] of those. A
      faulty node that omits toward fewer than [f + 1] counterparties
      evades attribution, but then per-path workarounds (backup lanes)
      already keep outputs correct — exactly the paper's proposal. *)

open Btr_util
module Evidence = Btr_evidence.Evidence

val path_statement_admissible : Evidence.statement -> bool
(** Per §4.2, a node may declare (without further proof) a problem only
    with a path {e it is an endpoint of}. Statements violating this are
    dropped — and a declared path always incriminates its declarer as
    one of the two suspects, so flooding bogus declarations
    self-incriminates. *)

module Watchdog : sig
  type t

  type late = { flow : int; period : int; from_node : int; lateness : Time.t }

  val create :
    node:int -> margin:Time.t -> ?strikes:int -> ?obs:Btr_obs.Obs.t -> unit -> t
  (** [margin] is slack added to scheduled arrival times before
      declaring anything; it absorbs queueing jitter. [strikes]
      (default 1) is how many missing messages a path must accumulate
      before it is reported: 1 matches the paper's FEC assumption
      ("losses are rare enough to be ignored"); higher values trade
      detection latency for robustness to residual link loss. [obs]
      (default null) receives [Watchdog_late]/[Watchdog_missing] events
      and the [detect.watchdog-*] counters. *)

  val expect :
    t -> flow:int -> period:int -> from_node:int -> deadline:Time.t -> unit
  (** Registers that a message on [flow] for [period] should arrive by
      [deadline] (absolute). Idempotent per (flow, period). *)

  val note_arrival : t -> flow:int -> period:int -> at:Time.t -> late option
  (** Marks the expectation satisfied. Returns the timing violation if
      the arrival missed its window by more than the margin. Arrivals
      with no registered expectation return [None]. *)

  val overdue : t -> now:Time.t -> (int * int * int) list
  (** [(flow, period, from_node)] for every expectation whose deadline
      (+margin) passed unsatisfied; each is reported exactly once. *)

  val pending : t -> int
end

module Attribution : sig
  type t

  val create : threshold:int -> t

  val note_path : t -> a:int -> b:int -> int list
  (** Records the unordered path and returns the nodes that became
      attributable {e because of this call} (newly crossed the
      threshold of distinct counterparties); [] otherwise. Duplicate
      declarations of the same path are idempotent. *)

  val counterparties : t -> int -> int list
  val attributed : t -> int list
  val is_attributed : t -> int -> bool
end
