(** Runtime fault detection (paper §4.2).

    Three mechanisms cooperate:

    - {b Replay checking} (in the BTR runtime, using this module's
      verdict helpers): checking tasks recompute a replica's output from
      the signed inputs that replica presented; a mismatch is
      {e attributable} evidence against the replica's node.
    - {b Watchdogs} ({!Watchdog}): every expected message has a known
      arrival window, because schedules are static. A message that
      never arrives is an {e omission}; one that arrives outside its
      window (plus margin) is a {e timing} fault. Omissions cannot be
      pinned on an endpoint — the sender may have failed to send or the
      receiver may be lying — so they only yield {e path} declarations.
    - {b Attribution} ({!Attribution}): path declarations are counted
      per endpoint. A node that appears on at least [threshold]
      distinct problematic paths is attributed as faulty. With
      [threshold = f + 1], no correct node is ever falsely attributed:
      a correct endpoint acquires problematic paths only opposite
      faulty counterparties, and there are at most [f] of those. A
      faulty node that omits toward fewer than [f + 1] counterparties
      evades direct attribution; {e corroboration}
      ({!Attribution.note_suspicion}) closes that gap by combining
      sub-threshold watchdog observations from [threshold] distinct
      watchers of the same sender into admissible path evidence, while
      strike-account resets on timely arrivals keep sporadic link loss
      from ever looking like such a sender. *)

open Btr_util
module Evidence = Btr_evidence.Evidence

val path_statement_admissible : Evidence.statement -> bool
(** Per §4.2, a node may declare (without further proof) a problem only
    with a path {e it is an endpoint of}. Statements violating this are
    dropped — and a declared path always incriminates its declarer as
    one of the two suspects, so flooding bogus declarations
    self-incriminates. *)

module Watchdog : sig
  type t

  type late = { flow : int; period : int; from_node : int; lateness : Time.t }

  type miss = {
    miss_flow : int;
    miss_period : int;
    miss_from : int;
    account : int;  (** the sender's strike account after this sweep *)
    declared : bool;  (** [account >= strikes]: report as an omission *)
  }

  val create :
    node:int -> margin:Time.t -> ?strikes:int -> ?obs:Btr_obs.Obs.t -> unit -> t
  (** [margin] is slack added to scheduled arrival times before
      declaring anything; it absorbs queueing jitter. [strikes]
      (default 1) is how many {e consecutive} sweeps a sender must have
      at least one message overdue before it is reported: 1 matches the
      paper's FEC assumption ("losses are rare enough to be ignored");
      higher values trade detection latency for robustness to residual
      link loss. Strike accounts are kept {e per sender}, bumped at
      most once per sweep, and reset by any timely arrival from that
      sender, so unrelated losses spread over a long run never
      accumulate into a false declaration. [obs] (default null)
      receives [Watchdog_late]/[Watchdog_missing] events and the
      [detect.watchdog-late]/[detect.watchdog-missing]/
      [detect.strike-resets] counters. *)

  val expect :
    t -> flow:int -> period:int -> from_node:int -> deadline:Time.t -> unit
  (** Registers that a message on [flow] for [period] should arrive by
      [deadline] (absolute). Idempotent per (flow, period). *)

  val note_arrival : t -> flow:int -> period:int -> at:Time.t -> late option
  (** Marks the expectation satisfied. Returns the timing violation if
      the arrival missed its window by more than the margin; a timely
      arrival additionally resets the sender's strike account to zero.
      Arrivals with no registered expectation return [None]. *)

  val sweep : t -> now:Time.t -> miss list
  (** Reports every expectation whose deadline (+margin) passed
      unsatisfied, each exactly once, in (flow, period) order. Sweeping
      bumps each overdue sender's strike account (once per sweep) and
      returns the account alongside each miss so callers can surface
      sub-threshold suspicions for corroboration; entries with
      [declared = true] have reached the strike threshold and warrant a
      path declaration on their own. *)

  val overdue : t -> now:Time.t -> (int * int * int) list
  (** [(flow, period, from_node)] for the [declared] subset of
      {!sweep}; kept for callers that only care about
      threshold-crossing omissions. *)

  val account : t -> from_node:int -> int
  (** Current strike account for a sender (0 if never missed). *)

  val pending : t -> int
end

module Attribution : sig
  type t

  val create : ?window:int -> threshold:int -> unit -> t
  (** [window] (default 4) is how many periods apart two watchers'
      suspicions of the same sender may be and still corroborate each
      other; it bounds how long a recovered glitch can linger as
      evidence. *)

  val note_path : t -> a:int -> b:int -> int list
  (** Records the unordered path and returns the nodes that became
      attributable {e because of this call} (newly crossed the
      threshold of distinct counterparties); [] otherwise. Duplicate
      declarations of the same path are idempotent. *)

  val note_suspicion : t -> sender:int -> watcher:int -> period:int -> int list
  (** Records that [watcher] holds a sub-threshold omission suspicion
      against [sender] as of [period]. When [threshold] distinct
      watchers hold suspicions within [window] periods of each other,
      returns the sorted list of corroborating watchers — exactly once,
      at the call that completes the quorum; [] otherwise. Corroborated
      suspicions justify {e path} workarounds (the sender is cut off
      from each corroborating watcher), not node attribution: with
      [threshold = f + 1] at least one corroborator is correct, but
      residual link loss could still explain each individual
      observation, so framing the sender as a {e node} would be
      unsound. *)

  val is_corroborated : t -> sender:int -> bool

  val counterparties : t -> int -> int list
  (** Distinct counterparties of [n]'s problematic paths, in first-seen
      order. *)

  val attributed : t -> int list
  val is_attributed : t -> int -> bool
end
