open Btr_util
module Engine = Btr_sim.Engine
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Net = Btr_net.Net
module Fault = Btr_fault.Fault
module Behavior = Btr.Behavior
module Golden = Btr.Golden
module Metrics = Btr.Metrics
module Obs = Btr_obs.Obs

type style =
  | Unreplicated
  | Pbft of { f : int }
  | Zz of { f : int; timeout : Time.t }
  | Selfstab of { audit_interval : Time.t; expose_prob : float }

let style_name = function
  | Unreplicated -> "no-ft"
  | Pbft _ -> "pbft-lite"
  | Zz _ -> "zz-lite"
  | Selfstab _ -> "self-stab"

type msg =
  | Copy of { flow : int; period : int; value : float array; digest : int64 }
      (* a producer replica's output copy, sent to a consumer/sink node *)
  | Agree of { task : Task.id; period : int; digest : int64 }
      (* PBFT-style digest exchange within a producer group *)
  | Activate of { task : Task.id; period : int }
      (* ZZ: a consumer asks the standbys to recompute *)

type t = {
  eng : Engine.t;
  obs : Obs.t;
  exec_count : Obs.Counter.t;
  net : msg Net.t;
  topo : Topology.t;
  workload : Graph.t;
  style : style;
  behaviors : Behavior.table;
  golden : Golden.t;
  metrics : Metrics.t;
  period_len : Time.t;
  horizon : Time.t;
  groups : (Task.id, int list) Hashtbl.t;
  standbys : (Task.id, int list) Hashtbl.t;
  byz : (int, Fault.behavior) Hashtbl.t;
  mutable exposed : int list;  (* self-stab: nodes an audit caught *)
  (* received copies per (consumer node, flow, period):
     (digest, value, arrival, sender) *)
  copies : (int * int * int, (int64 * float array * Time.t * int) list ref) Hashtbl.t;
  accepted : (int * int * int, float array * Time.t) Hashtbl.t;
  votes : (int * Task.id * int, (int64 * int) list ref) Hashtbl.t;
      (* agreement votes at a group member: (digest, voter) *)
  outputs : (int * Task.id * int, float array) Hashtbl.t;
  released : (int * Task.id * int, unit) Hashtbl.t;
  executed : (int * Task.id * int, unit) Hashtbl.t;
  activated : (Task.id * int, unit) Hashtbl.t;
  mutable busy_total : Time.t;
  busy : (int, Time.t) Hashtbl.t;
  mutable executions : int;
}

let metrics t = t.metrics
let net_stats t = Net.stats t.net
let bytes_sent t = (Net.stats t.net).Net.bytes_sent

let cpu_utilization t =
  Time.to_sec_f t.busy_total
  /. (Time.to_sec_f t.horizon *. float_of_int (Topology.node_count t.topo))

let replication_factor t =
  let computes = List.length (Graph.compute_tasks t.workload) in
  let periods = t.horizon / t.period_len in
  if computes = 0 || periods = 0 then 0.0
  else float_of_int t.executions /. float_of_int (computes * periods)

let group_size = function
  | Unreplicated | Selfstab _ -> 1
  | Pbft { f } -> (3 * f) + 1
  | Zz { f; _ } -> f + 1

let quorum_matching = function
  | Unreplicated | Selfstab _ -> 1
  | Pbft { f } | Zz { f; _ } -> f + 1

let agreement_quorum = function Pbft { f } -> (2 * f) + 1 | _ -> 1

(* Round-robin groups over the surviving nodes, offset per task. *)
let assign_groups workload topo style ~exclude ~into_groups ~into_standbys =
  let nodes =
    Array.of_list
      (List.filter (fun n -> not (List.mem n exclude)) (Topology.nodes topo))
  in
  let n = Array.length nodes in
  List.iteri
    (fun idx (x : Task.t) ->
      match x.pinned with
      | Some p ->
        Hashtbl.replace into_groups x.id [ p ];
        Hashtbl.replace into_standbys x.id []
      | None ->
        let size = Stdlib.min n (group_size style) in
        let pick count start = List.init count (fun i -> nodes.((start + i) mod n)) in
        Hashtbl.replace into_groups x.id (pick size idx);
        let spare =
          match style with
          | Zz { f; _ } -> pick (Stdlib.min f (n - size)) (idx + size)
          | Unreplicated | Pbft _ | Selfstab _ -> []
        in
        Hashtbl.replace into_standbys x.id spare)
    (Graph.tasks workload)

let group t tid = Option.value ~default:[] (Hashtbl.find_opt t.groups tid)
let standby t tid = Option.value ~default:[] (Hashtbl.find_opt t.standbys tid)
let behavior_of t node = Hashtbl.find_opt t.byz node
let node_running t node = behavior_of t node <> Some Fault.Crash

(* Byzantine output filter, per destination. Equivocation alternates
   clean/garbage by destination parity. *)
let byz_value t node ~dst value =
  match behavior_of t node with
  | None -> Some (value, Time.zero)
  | Some Fault.Crash | Some Fault.Omit_outputs -> None
  | Some (Fault.Omit_to targets) ->
    if List.mem dst targets then None else Some (value, Time.zero)
  | Some (Fault.Delay_outputs d) -> Some (value, d)
  | Some Fault.Corrupt_outputs ->
    Some (Array.map (fun x -> x +. 1009.0) value, Time.zero)
  | Some Fault.Equivocate ->
    if dst mod 2 = 0 then Some (value, Time.zero)
    else Some (Array.map (fun x -> x +. 1009.0) value, Time.zero)
  | Some (Fault.Babble _) -> Some (value, Time.zero)

let send t ~src ~dst ~size m =
  ignore (Net.send t.net ~src ~dst ~cls:Net.Data ~size_bytes:size m)

(* Charge wcet on the node's serial CPU; run [k] when it completes. *)
let charge_cpu t node wcet k =
  let free = Option.value ~default:Time.zero (Hashtbl.find_opt t.busy node) in
  let start = Time.max (Engine.now t.eng) free in
  let finish = Time.add start wcet in
  Hashtbl.replace t.busy node finish;
  t.busy_total <- Time.add t.busy_total wcet;
  ignore (Engine.schedule t.eng ~at:finish (fun _ -> k ()))

let distinct_vote_count entries d =
  List.length
    (List.sort_uniq Int.compare
       (List.filter_map (fun (dg, voter) -> if Int64.equal dg d then Some voter else None)
          entries))

let copies_for t node flow period =
  match Hashtbl.find_opt t.copies (node, flow, period) with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.copies (node, flow, period) l;
    l

(* Matching-copy quorum among distinct senders; [needed] is capped by
   the producer group's size (a pinned source has only one copy). *)
let quorum_value ~needed entries =
  let digests = List.sort_uniq Int64.compare (List.map (fun (d, _, _, _) -> d) entries) in
  List.find_map
    (fun d ->
      let matching = List.filter (fun (dg, _, _, _) -> Int64.equal dg d) entries in
      let senders =
        List.sort_uniq Int.compare (List.map (fun (_, _, _, s) -> s) matching)
      in
      if List.length senders >= needed then
        match matching with
        | (_, v, arr, _) :: rest ->
          let latest =
            List.fold_left (fun acc (_, _, a, _) -> Time.max acc a) arr rest
          in
          Some (v, latest)
        | [] -> None
      else None)
    digests

let is_sink t tid = (Graph.task t.workload tid).Task.kind = Task.Sink

let rec try_execute t node tid period =
  let key = (node, tid, period) in
  if
    (not (Hashtbl.mem t.executed key))
    && node_running t node
    && (List.mem node (group t tid) || List.mem node (standby t tid))
  then begin
    let incoming = Graph.producers_of t.workload tid in
    let inputs =
      List.filter_map
        (fun (fl : Graph.flow) ->
          Option.map
            (fun (v, _) -> { Behavior.orig_flow = fl.flow_id; value = v })
            (Hashtbl.find_opt t.accepted (node, fl.flow_id, period)))
        incoming
    in
    if List.length inputs = List.length incoming then begin
      Hashtbl.replace t.executed key ();
      let x = Graph.task t.workload tid in
      charge_cpu t node x.Task.wcet (fun () ->
          if node_running t node then begin
            if x.Task.kind = Task.Compute then begin
              t.executions <- t.executions + 1;
              Obs.Counter.incr t.exec_count
            end;
            if Obs.enabled t.obs then
              Obs.emit t.obs ~at:(Engine.now t.eng) ~node Obs.Baseline
                (Obs.Lane_exec
                   { task = tid; period; role = style_name t.style });
            match Behavior.find t.behaviors tid ~period ~inputs with
            | None -> ()
            | Some value ->
              Hashtbl.replace t.outputs key value;
              (match t.style with
              | Pbft _ when x.Task.pinned = None ->
                (* Agreement round before release. *)
                let g = group t tid in
                let digest = Behavior.value_digest value in
                List.iter
                  (fun member ->
                    match byz_value t node ~dst:member [||] with
                    | None -> ()
                    | Some (_, extra) ->
                      let fire _ =
                        if member = node then on_agree t member tid period digest node
                        else send t ~src:node ~dst:member ~size:48 (Agree { task = tid; period; digest })
                      in
                      if Time.equal extra Time.zero then fire ()
                      else ignore (Engine.schedule_in t.eng ~delay:extra fire))
                  g
              | Unreplicated | Zz _ | Selfstab _ | Pbft _ ->
                release_output t node tid period value)
          end)
    end
  end

and on_agree t node task period digest voter =
  if node_running t node then begin
    let key = (node, task, period) in
    let l =
      match Hashtbl.find_opt t.votes key with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.votes key l;
        l
    in
    l := (digest, voter) :: !l;
    match Hashtbl.find_opt t.outputs key with
    | None -> ()
    | Some value ->
      let own = Behavior.value_digest value in
      if
        (not (Hashtbl.mem t.released key))
        && distinct_vote_count ((own, node) :: !l) own >= agreement_quorum t.style
      then begin
        Hashtbl.replace t.released key ();
        release_output t node task period value
      end
  end

and release_output t node tid period value =
  List.iter
    (fun (fl : Graph.flow) ->
      let receivers =
        List.sort_uniq Int.compare (group t fl.consumer @ standby t fl.consumer)
      in
      List.iter
        (fun dst ->
          match byz_value t node ~dst value with
          | None -> ()
          | Some (v, extra) ->
            let m =
              Copy { flow = fl.flow_id; period; value = v; digest = Behavior.value_digest v }
            in
            if Time.equal extra Time.zero then send t ~src:node ~dst ~size:fl.msg_size m
            else
              ignore
                (Engine.schedule_in t.eng ~delay:extra (fun _ ->
                     send t ~src:node ~dst ~size:fl.msg_size m)))
        receivers)
    (Graph.consumers_of t.workload tid)

and accept_check t node flow period =
  let key = (node, flow, period) in
  if not (Hashtbl.mem t.accepted key) then begin
    let entries = !(copies_for t node flow period) in
    let fl = Graph.flow t.workload flow in
    let needed =
      Stdlib.min (quorum_matching t.style)
        (Stdlib.max 1 (List.length (group t fl.producer)))
    in
    match quorum_value ~needed entries with
    | Some (value, arrived) ->
      Hashtbl.replace t.accepted key (value, arrived);
      if is_sink t fl.consumer then begin
        if List.mem node (group t fl.consumer) then
          Metrics.record_delivery t.metrics ~orig_flow:flow ~period ~value ~arrived
            ~lane:0
      end
      else try_execute t node fl.consumer period
    | None -> (
      (* ZZ: all active copies in but disagreeing -> wake the standbys. *)
      match t.style with
      | Zz _ ->
        let active = List.length (group t fl.producer) in
        let senders =
          List.sort_uniq Int.compare (List.map (fun (_, _, _, s) -> s) entries)
        in
        if List.length senders >= active then activate_standbys t fl.producer period
      | Unreplicated | Pbft _ | Selfstab _ -> ())
  end

and activate_standbys t task period =
  if not (Hashtbl.mem t.activated (task, period)) then begin
    Hashtbl.replace t.activated (task, period) ();
    if Obs.enabled t.obs then
      Obs.emit t.obs ~at:(Engine.now t.eng) Obs.Baseline
        (Obs.Standby_activated { task; period });
    List.iter
      (fun sb -> send t ~src:sb ~dst:sb ~size:32 (Activate { task; period }))
      (standby t task)
  end

let on_receive t node (r : msg Net.recv) =
  if node_running t node then
    match r.Net.payload with
    | Copy { flow; period; value; digest } ->
      let l = copies_for t node flow period in
      l := (digest, value, r.Net.delivered_at, r.Net.src) :: !l;
      accept_check t node flow period;
      (* ZZ: arm the disagreement timeout on first copy. *)
      (match t.style with
      | Zz { timeout; _ } when List.length !l = 1 ->
        ignore
          (Engine.schedule_in t.eng ~delay:timeout (fun _ ->
               if not (Hashtbl.mem t.accepted (node, flow, period)) then
                 activate_standbys t (Graph.flow t.workload flow).Graph.producer
                   period))
      | _ -> ())
    | Agree { task; period; digest } -> on_agree t node task period digest r.Net.src
    | Activate { task; period } -> try_execute t node task period

let run_sources t period =
  List.iter
    (fun (x : Task.t) ->
      match x.pinned with
      | None -> ()
      | Some node ->
        if node_running t node then
          charge_cpu t node x.wcet (fun () ->
              if node_running t node then
                match Behavior.find t.behaviors x.id ~period ~inputs:[] with
                | None -> ()
                | Some value ->
                  (match byz_value t node ~dst:(-2) value with
                  | Some (v, _) -> Golden.note_source t.golden ~task:x.id ~period v
                  | None -> ());
                  release_output t node x.id period value))
    (Graph.sources t.workload)

let audit t =
  match t.style with
  | Selfstab { expose_prob; _ } ->
    let rng = Engine.rng t.eng in
    (* Sorted traversal: each candidate consumes an RNG draw, so the
       visit order is part of the deterministic-replay contract. *)
    let newly =
      Table.sorted_fold ~cmp:Int.compare
        (fun node _ acc ->
          if (not (List.mem node t.exposed)) && Rng.float rng 1.0 < expose_prob
          then node :: acc
          else acc)
        t.byz []
    in
    if newly <> [] then begin
      if Obs.enabled t.obs then
        List.iter
          (fun node ->
            Obs.emit t.obs ~at:(Engine.now t.eng) ~node Obs.Baseline
              (Obs.Audit_exposed { node }))
          newly;
      t.exposed <- newly @ t.exposed;
      assign_groups t.workload t.topo t.style ~exclude:t.exposed
        ~into_groups:t.groups ~into_standbys:t.standbys;
      Net.set_route_avoid t.net t.exposed
    end
  | Unreplicated | Pbft _ | Zz _ -> ()

let run ?(seed = 1) ?(behaviors = []) ?obs ~workload ~topology ~style ~script
    ~horizon () =
  let eng = Engine.create ~seed ?obs () in
  let obs = Engine.obs eng in
  let net = Net.create eng topology () in
  let table = Behavior.table workload ~overrides:behaviors in
  let groups = Hashtbl.create 32 and standbys = Hashtbl.create 32 in
  assign_groups workload topology style ~exclude:[] ~into_groups:groups
    ~into_standbys:standbys;
  let t =
    {
      eng;
      obs;
      exec_count = Obs.Registry.counter (Obs.registry obs) Obs.Baseline "executions";
      net;
      topo = topology;
      workload;
      style;
      behaviors = table;
      golden = Golden.create workload table;
      metrics = Metrics.create ~obs workload;
      period_len = Graph.period workload;
      horizon;
      groups;
      standbys;
      byz = Hashtbl.create 4;
      exposed = [];
      copies = Hashtbl.create 512;
      accepted = Hashtbl.create 512;
      votes = Hashtbl.create 128;
      outputs = Hashtbl.create 256;
      released = Hashtbl.create 256;
      executed = Hashtbl.create 512;
      activated = Hashtbl.create 32;
      busy_total = Time.zero;
      busy = Hashtbl.create 16;
      executions = 0;
    }
  in
  List.iter
    (fun node -> Net.set_handler net node (on_receive t node))
    (Topology.nodes topology);
  List.iter
    (fun (ev : Fault.event) ->
      ignore
        (Engine.schedule eng ~at:ev.Fault.at (fun _ ->
             Hashtbl.replace t.byz ev.Fault.node ev.Fault.behavior;
             Metrics.record_injection t.metrics ~at:(Engine.now eng)
               ~node:ev.Fault.node
               ~what:(Fault.behavior_name ev.Fault.behavior))))
    script;
  let total = horizon / t.period_len in
  for p = 0 to total do
    ignore
      (Engine.schedule eng ~at:(Time.mul t.period_len p) (fun _ ->
           if p > 0 then
             Metrics.finalize_period t.metrics ~golden:t.golden ~period:(p - 1);
           if p < total then run_sources t p))
  done;
  (match style with
  | Selfstab { audit_interval; _ } ->
    ignore (Engine.every eng ~period:audit_interval (fun _ -> audit t))
  | Unreplicated | Pbft _ | Zz _ -> ());
  Engine.run ~until:horizon eng;
  t
