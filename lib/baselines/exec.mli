(** Baseline fault-tolerance protocols on the same substrate.

    The paper positions BTR against masking BFT (PBFT [17], §3.1), the
    reactive-replication middle ground (ZZ [71], §5), self-stabilization
    ([28], §3.1) and, implicitly, running unprotected. To compare like
    with like, all four run here on the {e same} simulator, network
    model, workload, behaviours, golden reference and metrics as the
    BTR runtime — only the protocol differs.

    Unlike BTR these baselines schedule dynamically (data-driven
    execution with per-node CPU serialization): that is faithful to how
    these protocols are deployed, and the loss of static timing
    guarantees is precisely one of the paper's arguments (E4).

    - {!Unreplicated}: each task runs once; no detection, no recovery.
    - {!Pbft}: every protected task runs on a group of [3f+1] nodes;
      after computing, group members exchange signed digests all-to-all
      and release their value only with a [2f+1] matching quorum;
      consumers and sinks accept a value once [f+1] received copies
      match. Masks up to [f] Byzantine replicas, at 3f+1 execution cost
      and two extra message rounds on every dataflow edge.
    - {!Zz}: [f+1] active replicas; consumers accept when all [f+1]
      copies agree, and otherwise (mismatch or timeout) trigger [f]
      standby recomputations on spare nodes and take an [f+1] matching
      quorum of the enlarged set — cheap when fault-free, slow under
      attack.
    - {!Selfstab}: unreplicated, but a periodic audit exposes each
      faulty node independently with some probability, after which its
      tasks are reassigned. Converges {e eventually}; no bound. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Fault = Btr_fault.Fault

type style =
  | Unreplicated
  | Pbft of { f : int }
  | Zz of { f : int; timeout : Time.t }
  | Selfstab of { audit_interval : Time.t; expose_prob : float }

val style_name : style -> string

type t

val run :
  ?seed:int ->
  ?behaviors:(Task.id * Btr.Behavior.fn) list ->
  ?obs:Btr_obs.Obs.t ->
  workload:Graph.t ->
  topology:Topology.t ->
  style:style ->
  script:Fault.script ->
  horizon:Time.t ->
  unit ->
  t

val metrics : t -> Btr.Metrics.t
val net_stats : t -> Btr_net.Net.stats

val replication_factor : t -> float
(** Mean executions per protected compute task per period. *)

val cpu_utilization : t -> float
(** Total busy CPU time across nodes / (nodes × horizon). *)

val bytes_sent : t -> int
