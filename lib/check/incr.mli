(** Incremental verification: edits in, diagnostic deltas out.

    Fleet-scale configurations (10³–10⁴ nodes) make from-scratch
    {!Check.verify} runs the bottleneck of any edit-compile-check loop.
    This module keeps a persistent analysis {!state} whose memo tables
    cache every expensive verification unit — per-(mode, node)
    response-time analyses, per-mode bandwidth ledgers and table
    validations, per-fault-set evidence bounds, per-(mode, sender)
    selective-omission cuts — keyed by FNV-1a fingerprints of exactly
    the inputs each unit reads. Applying an {!edit} replans through
    {!Planner.replan_delta} (which reuses plans whose dependency
    fingerprints are unchanged) and re-verifies through
    {!Check.verify_units} with memoizing wrappers around
    {!Check.default_units}: only the dependency cone of the edit is
    recomputed, and on every memo miss the {e default} unit runs, so

    {v report st = Check.verify (strategy st) v}

    holds byte-for-byte by construction (see the [incr] equivalence
    property in the test suite). *)

module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner

(** One elementary change to the verified system. Constructors edit
    exactly one of the three inputs (topology, workload, config). *)
type edit =
  | Add_node of int
  | Remove_node of int
      (** Also drops the node from link member lists; links left with
          fewer than two members disappear. *)
  | Add_link of Topology.link
  | Retune_link of {
      link : int;
      bandwidth_bps : int option;  (** [None] keeps the current value *)
      latency : Btr_util.Time.t option;
    }
  | Add_flow of Graph.flow
  | Remove_flow of int
  | Retune_flow of {
      flow : int;
      msg_size : int option;
      deadline : Btr_util.Time.t option option;
          (** [None] keeps; [Some None] clears; [Some (Some d)] sets. *)
    }
  | Set_f of int
      (** Also re-derives [degree = max 1 (f+1)], matching
          {!Planner.default_config}. *)
  | Set_recovery_bound of Btr_util.Time.t
      (** The cheapest edit: planning never reads R, so the strategy is
          reused in O(1) and only the R-dependent admission checks
          replay. *)

type apply_error =
  | Invalid_edit of string
      (** The edit does not apply (unknown id, invariant violation). *)
  | Plan_failed of Planner.error
      (** The edited system admits no strategy. *)

val pp_apply_error : Format.formatter -> apply_error -> unit

type state
(** Persistent analysis state: current inputs, strategy, report, and
    the memo tables shared across every {!apply} so far. *)

type report_delta = {
  appeared : Check.diagnostic list;
      (** diagnostics in the new report but not the old (multiset
          difference, new-report order) *)
  disappeared : Check.diagnostic list;
}

val pp_report_delta : Format.formatter -> report_delta -> unit

val init :
  ?strikes:int ->
  Planner.config ->
  Graph.t ->
  Topology.t ->
  (state, Planner.error) result
(** Plan and verify from scratch, warming the memo tables. [strikes]
    (default 1) as in {!Check.verify_view}. *)

val apply : state -> edit -> (state * report_delta, apply_error) result
(** Apply one edit: rebuild the edited input, replan reusing every mode
    whose dependency fingerprint is unchanged, re-verify reusing every
    memoized analysis whose inputs are unchanged. On [Error] the state
    is unchanged (memo tables may have warmed). *)

val report : state -> Check.report
(** The current report — byte-identical (including JSON rendering and
    omission witnesses) to [Check.verify] of a strategy built from
    scratch on the current inputs. *)

val strategy : state -> Planner.t
val view : state -> Check.view

val last_plan_delta : state -> Planner.delta option
(** Plan-level reuse measured by the most recent {!apply}; [None]
    before the first. *)

(** Cumulative memo hit/miss counters per analysis family, for cone
    tests and the planner bench. *)
type memo_stats = {
  static_hits : int;
  static_misses : int;  (** link capacity + control reserves *)
  reserve_hits : int;
  reserve_misses : int;  (** per-mode data-reserve ledgers *)
  rta_hits : int;
  rta_misses : int;  (** per-(mode, node) response-time analyses *)
  sched_hits : int;
  sched_misses : int;  (** per-mode table re-validations *)
  routes_hits : int;
  routes_misses : int;  (** per-mode survivor-connectivity sweeps *)
  evb_hits : int;
  evb_misses : int;  (** per-fault-set evidence bounds *)
  cuts_hits : int;
  cuts_misses : int;  (** per-(mode, sender) omission cut rows *)
}

val memo_stats : state -> memo_stats
val reset_memo_stats : state -> unit
(** Zero the counters (the cached entries stay). *)

val parse_edit : string -> (edit, string) result
(** One edit per line, e.g. [retune-flow 3 size=128],
    [add-link id=2 members=0,1,4 bw=1000000 lat-us=50],
    [set-recovery-bound-us 300000]. Inverse of {!edit_to_string}. *)

val edit_to_string : edit -> string
