open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Net = Btr_net.Net
module Schedule = Btr_sched.Schedule
module Analysis = Btr_sched.Analysis
module Augment = Btr_planner.Augment
module Planner = Btr_planner.Planner
module Obs = Btr_obs.Obs

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type code =
  | Link_oversubscribed
  | Data_reserve_exceeded
  | Control_reserve_tight
  | Node_overutilized
  | Response_time_divergent
  | Schedule_invalid
  | Mode_missing
  | Transition_missing
  | Recovery_bound_exceeded
  | Recovery_bound_understated
  | Selective_omission_undetectable
  | Omission_needs_corroboration
  | Transition_target_unknown
  | Orphan_mode
  | Evidence_unroutable
  | Evidence_budget_dominant

let all_codes =
  [
    Link_oversubscribed;
    Data_reserve_exceeded;
    Control_reserve_tight;
    Node_overutilized;
    Response_time_divergent;
    Schedule_invalid;
    Mode_missing;
    Transition_missing;
    Recovery_bound_exceeded;
    Recovery_bound_understated;
    Selective_omission_undetectable;
    Omission_needs_corroboration;
    Transition_target_unknown;
    Orphan_mode;
    Evidence_unroutable;
    Evidence_budget_dominant;
  ]

let code_id = function
  | Link_oversubscribed -> "BTR-E101"
  | Data_reserve_exceeded -> "BTR-E102"
  | Control_reserve_tight -> "BTR-W103"
  | Node_overutilized -> "BTR-E201"
  | Response_time_divergent -> "BTR-W202"
  | Schedule_invalid -> "BTR-E203"
  | Mode_missing -> "BTR-E301"
  | Transition_missing -> "BTR-E302"
  | Recovery_bound_exceeded -> "BTR-E303"
  | Recovery_bound_understated -> "BTR-W304"
  | Selective_omission_undetectable -> "BTR-E305"
  | Omission_needs_corroboration -> "BTR-W306"
  | Transition_target_unknown -> "BTR-E401"
  | Orphan_mode -> "BTR-E402"
  | Evidence_unroutable -> "BTR-E403"
  | Evidence_budget_dominant -> "BTR-W404"

(* Total inverse of [code_id] over [all_codes], built once from the
   list itself so a new constructor cannot desync the two: extending
   [code] without extending [all_codes] is caught by the exhaustiveness
   check below (and by the round-trip unit test). *)
let code_of_id =
  let table = List.map (fun c -> (code_id c, c)) all_codes in
  fun id -> List.assoc_opt id table

let () =
  (* Tripwire at module init: every listed code must round-trip. *)
  List.iter
    (fun c ->
      match code_of_id (code_id c) with
      | Some c' when c' = c -> ()
      | _ -> invalid_arg "Check.code_of_id: all_codes and code_id desynced")
    all_codes

let severity_of = function
  | Link_oversubscribed | Data_reserve_exceeded | Node_overutilized
  | Schedule_invalid | Mode_missing | Transition_missing
  | Recovery_bound_exceeded | Selective_omission_undetectable
  | Transition_target_unknown | Orphan_mode | Evidence_unroutable ->
    Error
  | Control_reserve_tight | Response_time_divergent
  | Recovery_bound_understated | Omission_needs_corroboration
  | Evidence_budget_dominant ->
    Warning

let describe = function
  | Link_oversubscribed ->
    "per-member static reservations must fit inside each link's raw capacity (§2.1)"
  | Data_reserve_exceeded ->
    "each sender's per-period data traffic must fit its reserved slice in every mode (§2.1)"
  | Control_reserve_tight ->
    "one evidence record should serialize on every control reservation within a period (§4.3)"
  | Node_overutilized -> "per-node demand must fit in the period in every mode (§4.1)"
  | Response_time_divergent ->
    "fixed-priority response-time analysis should converge for every node's task set (§4.1)"
  | Schedule_invalid ->
    "every mode's static table must pass independent validation (§4.1)"
  | Mode_missing -> "every fault set of size ≤ f needs a plan (Def. 3.1)"
  | Transition_missing ->
    "every reachable one-fault extension needs a staged transition (Def. 3.1)"
  | Recovery_bound_exceeded ->
    "every transition's recovery bound must fit inside R (Def. 3.1)"
  | Recovery_bound_understated ->
    "stored recovery bounds must cover detection + evidence + migration + activation (§4.4)"
  | Selective_omission_undetectable ->
    "a sender omitting toward a minimal watcher subset must still be caught within R under the configured strike threshold (Def. 3.1, §4.2)"
  | Omission_needs_corroboration ->
    "selective omission on this config is caught within R only by multi-watcher corroboration, not by any single watchdog (§4.2)"
  | Transition_target_unknown -> "transitions must connect known modes (§4.4)"
  | Orphan_mode -> "every mode must be reachable from the fault-free root (§4.4)"
  | Evidence_unroutable ->
    "evidence must be routable between every pair of survivors on control bandwidth (§4.3)"
  | Evidence_budget_dominant ->
    "evidence distribution should not dominate the recovery budget (§4.3)"

type locus = {
  faulty : int list option;
  node : int option;
  flow : int option;
  link : int option;
  new_fault : int option;
}

let no_locus = { faulty = None; node = None; flow = None; link = None; new_fault = None }

type diagnostic = { code : code; message : string; locus : locus }

type report = {
  diagnostics : diagnostic list;
  modes : int;
  transitions : int;
  fault_sets : int;
}

let passed r =
  List.for_all (fun d -> severity_of d.code <> Error) r.diagnostics

let errors r = List.filter (fun d -> severity_of d.code = Error) r.diagnostics
let warnings r = List.filter (fun d -> severity_of d.code = Warning) r.diagnostics

type view = {
  config : Planner.config;
  workload : Graph.t;
  topology : Topology.t;
  plans : Planner.plan list;
  transitions : Planner.transition list;
}

let view_of_strategy s =
  {
    config = Planner.config s;
    workload = Planner.workload s;
    topology = Planner.topology s;
    plans = Planner.all_plans s;
    transitions = Planner.all_transitions s;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let pp_fault_set ppf fs =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int fs))

let pp_diagnostic ppf d =
  Format.fprintf ppf "[%s]" (code_id d.code);
  Option.iter (fun fs -> Format.fprintf ppf " mode %a:" pp_fault_set fs) d.locus.faulty;
  Format.fprintf ppf " %s" d.message

let pp_report ppf r =
  Format.fprintf ppf "@[<v>checked %d modes, %d transitions, %d fault sets: %s"
    r.modes r.transitions r.fault_sets
    (if passed r then "PASS" else "FAIL");
  List.iter (fun d -> Format.fprintf ppf "@,%a" pp_diagnostic d) r.diagnostics;
  Format.fprintf ppf "@]"

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let encode_diagnostic b d =
  Buffer.add_string b "{\"code\":\"";
  Buffer.add_string b (code_id d.code);
  Buffer.add_string b "\",\"severity\":\"";
  Buffer.add_string b (severity_name (severity_of d.code));
  Buffer.add_string b "\",\"message\":\"";
  json_escape b d.message;
  Buffer.add_char b '"';
  Option.iter
    (fun fs ->
      Buffer.add_string b ",\"faulty\":[";
      List.iteri
        (fun i n ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int n))
        fs;
      Buffer.add_char b ']')
    d.locus.faulty;
  let opt_int key v =
    Option.iter
      (fun n ->
        Buffer.add_string b ",\"";
        Buffer.add_string b key;
        Buffer.add_string b "\":";
        Buffer.add_string b (string_of_int n))
      v
  in
  opt_int "node" d.locus.node;
  opt_int "flow" d.locus.flow;
  opt_int "link" d.locus.link;
  opt_int "new_fault" d.locus.new_fault;
  Buffer.add_char b '}'

let diagnostic_to_json d =
  let b = Buffer.create 128 in
  encode_diagnostic b d;
  Buffer.contents b

(* Stable total order on diagnostics for the JSON rendering: severity
   (errors first), then code, locus, message. Insensitive to check
   emission order, so two byte-identical reports stay byte-identical in
   JSON even if the verifier's internal sweep order ever changes. *)
let compare_diagnostic d1 d2 =
  let sev c = match severity_of c with Error -> 0 | Warning -> 1 in
  let cmp_opt cmp a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> cmp x y
  in
  let ( <?> ) c next = if c <> 0 then c else next () in
  Int.compare (sev d1.code) (sev d2.code) <?> fun () ->
  String.compare (code_id d1.code) (code_id d2.code) <?> fun () ->
  cmp_opt (List.compare Int.compare) d1.locus.faulty d2.locus.faulty <?> fun () ->
  cmp_opt Int.compare d1.locus.node d2.locus.node <?> fun () ->
  cmp_opt Int.compare d1.locus.flow d2.locus.flow <?> fun () ->
  cmp_opt Int.compare d1.locus.link d2.locus.link <?> fun () ->
  cmp_opt Int.compare d1.locus.new_fault d2.locus.new_fault <?> fun () ->
  String.compare d1.message d2.message

let report_to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\"verdict\":\"%s\",\"modes\":%d,\"transitions\":%d,\"fault_sets\":%d,\"diagnostics\":["
       (if passed r then "pass" else "fail")
       r.modes r.transitions r.fault_sets);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      encode_diagnostic b d)
    (List.stable_sort compare_diagnostic r.diagnostics);
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The checks. Each takes the view and appends diagnostics.            *)

let key faulty = List.sort_uniq Int.compare faulty

let shares_of v =
  match v.config.Planner.shares with
  | Some s -> s
  | None -> Net.default_shares_for v.topology

(* Every ≤ f sized subset, smallest first, deterministic order. *)
let fault_patterns nodes f =
  let rec subsets k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  in
  List.concat_map
    (fun k -> List.map (List.sort Int.compare) (subsets k nodes))
    (List.init (Stdlib.max 0 f + 1) Fun.id)

let alive_of v faulty =
  List.filter (fun n -> not (List.mem n faulty)) (Topology.nodes v.topology)

let xfer_oracle v ~faulty ~cls ~src ~dst ~size_bytes =
  if src = dst then Some Time.zero
  else
    Net.plan_transfer_time v.topology ?shares:v.config.Planner.shares
      ~avoid:faulty ~cls ~src ~dst ~size_bytes ()

(* Worst-case pairwise control-class latency among survivors — the same
   decomposition the planner admits transitions against (§4.3). One
   cost-accumulating BFS per source replaces the per-pair route+fold:
   identical routes (see {!Topology.paths_from}), identical per-pair
   sums, identical max — at O(n·memberships) per fault set instead of
   O(n³). *)
let evidence_bound v ~faulty =
  let shares = shares_of v in
  let alive = alive_of v faulty in
  let usable n = not (List.mem n faulty) in
  let link_cost =
    Net.link_transfer_time shares ~cls:Net.Control
      ~size_bytes:v.config.Planner.evidence_size
  in
  List.fold_left
    (fun acc a ->
      let costs = Topology.cost_from v.topology ~usable ~src:a ~link_cost in
      List.fold_left
        (fun acc b ->
          if a = b then acc
          else
            match Hashtbl.find_opt costs b with
            | Some d -> Time.max acc d
            | None -> acc)
        acc alive)
    Time.zero alive

(* Each verification unit returns its diagnostics as a list, in the
   order the old push-based checks emitted them. [verify_units]
   composes the units; {!Incr} substitutes memoizing wrappers for the
   same functions, so incremental and from-scratch verification run
   literally the same code on a memo miss — the equivalence guarantee
   is by construction, not by parallel implementation. *)

(* (a) Static reservations fit inside every link (babbling-idiot guard). *)
let link_capacity_diags v =
  let s = shares_of v in
  List.filter_map
    (fun (l : Topology.link) ->
      let members = float_of_int (List.length l.members) in
      let total = members *. (s.Net.data_frac +. s.Net.control_frac) in
      if total > 1.0 +. 1e-9 then
        Some
          {
            code = Link_oversubscribed;
            message =
              Printf.sprintf
                "link %d: %d members x (data %.3f + control %.3f) = %.1f%% of capacity"
                l.link_id (List.length l.members) s.Net.data_frac
                s.Net.control_frac (100. *. total);
            locus = { no_locus with link = Some l.link_id };
          }
      else None)
    (Topology.links v.topology)

(* (a') Per mode: the data bytes each sender pushes per period fit its
   reserved slice on every link its routes traverse. *)
let data_reserve_diags v (p : Planner.plan) =
  let shares = shares_of v in
  let g = p.Planner.aug.Augment.graph in
  let period = Graph.period g in
  (* (sender, link_id) -> bytes per period, plus one witness flow *)
  let demand = Hashtbl.create 64 in
  List.iter
    (fun (fl : Graph.flow) ->
      match
        ( List.assoc_opt fl.producer p.Planner.assignment,
          List.assoc_opt fl.consumer p.Planner.assignment )
      with
      | Some src, Some dst when src <> dst -> (
        match
          Topology.route_avoiding v.topology ~avoid:p.Planner.faulty ~src ~dst
        with
        | None -> ()
        | Some path ->
          let here = ref src in
          List.iter
            (fun (link : Topology.link) ->
              let k = (!here, link.link_id) in
              let bytes, _ =
                Option.value ~default:(0, fl.flow_id) (Hashtbl.find_opt demand k)
              in
              Hashtbl.replace demand k (bytes + fl.msg_size, fl.flow_id);
              here := Topology.next_hop_node v.topology ~here:!here ~link ~dst)
            path)
      | _ -> ())
    (Graph.flows g);
  let out = ref [] in
  Table.sorted_iter
    ~cmp:(fun (n1, l1) (n2, l2) ->
      match Int.compare n1 n2 with 0 -> Int.compare l1 l2 | c -> c)
    (fun (sender, link_id) (bytes, witness) ->
      let link = Topology.find_link v.topology link_id in
      let rate = Net.reservation_rate shares link Net.Data in
      (* bytes per period vs. rate bytes/s: demand in bytes/s *)
      let demand_bps = bytes * 1_000_000 / Stdlib.max 1 period in
      if demand_bps > rate then
        out :=
          {
            code = Data_reserve_exceeded;
            message =
              Printf.sprintf
                "node %d on link %d: %dB per period needs %dB/s, reserve is %dB/s"
                sender link_id bytes demand_bps rate;
            locus =
              {
                no_locus with
                faulty = Some p.Planner.faulty;
                node = Some sender;
                flow = Some witness;
                link = Some link_id;
              };
          }
          :: !out)
    demand;
  List.rev !out

(* (a'') Control reservations can carry one evidence record per period. *)
let control_reserve_diags v =
  let s = shares_of v in
  let period = Graph.period v.workload in
  List.filter_map
    (fun (l : Topology.link) ->
      let rate = Net.reservation_rate s l Net.Control in
      let serialize =
        Stdlib.max 1 (v.config.Planner.evidence_size * 1_000_000 / rate)
      in
      if Time.compare serialize period > 0 then
        Some
          {
            code = Control_reserve_tight;
            message =
              Printf.sprintf
                "link %d: serializing one %dB evidence record takes %s > period %s"
                l.link_id v.config.Planner.evidence_size (Time.to_string serialize)
                (Time.to_string period);
            locus = { no_locus with link = Some l.link_id };
          }
      else None)
    (Topology.links v.topology)

(* (b) Per-mode, per-node schedulability via classical analysis.
   [rta_inputs] extracts, per alive node, exactly what response-time
   analysis reads: the (task, wcet, deadline) triples in assignment
   order. The memo layer keys on a fingerprint of those triples — a
   flow-size retune leaves them unchanged and hits. *)
let rta_inputs v (p : Planner.plan) =
  let g = p.Planner.aug.Augment.graph in
  let period = Graph.period g in
  let alive = alive_of v p.Planner.faulty in
  (* RTA deadline: the period, tightened by any sink flow the task
     produces (advisory — the deployed tables are time-triggered,
     and a fixed table can order around interference that
     deadline-monotonic analysis must assume). *)
  let deadline_of tid =
    List.fold_left
      (fun acc (fl : Graph.flow) ->
        match fl.deadline with
        | Some d when Time.compare d acc < 0 -> d
        | _ -> acc)
      period (Graph.consumers_of g tid)
  in
  (* Group the assignment by node in one pass, preserving assignment
     order within each node — the same per-node lists the old
     per-node filter produced, without the nodes × tasks scan. *)
  let by_node : (int, (Task.id * Time.t * Time.t) list) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (tid, n) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_node n) in
      Hashtbl.replace by_node n
        ((tid, (Graph.task g tid).Task.wcet, deadline_of tid) :: prev))
    p.Planner.assignment;
  List.filter_map
    (fun node ->
      match Hashtbl.find_opt by_node node with
      | None | Some [] -> None
      | Some rev -> Some (node, List.rev rev))
    alive

let node_rta_diags _v (p : Planner.plan) ~node ~tasks =
  let g = p.Planner.aug.Augment.graph in
  let period = Graph.period g in
  let ts =
    List.map (fun (_, wcet, deadline) -> Analysis.task ~wcet ~period ~deadline ()) tasks
  in
  let u = Analysis.utilization ts in
  if u > 1.0 +. 1e-9 then
    [
      {
        code = Node_overutilized;
        message =
          Printf.sprintf "node %d: utilization %.3f > 1 (%d tasks)" node u
            (List.length ts);
        locus = { no_locus with faulty = Some p.Planner.faulty; node = Some node };
      };
    ]
  else if not (Analysis.fp_schedulable ts) then
    [
      {
        code = Response_time_divergent;
        message =
          Printf.sprintf
            "node %d: fixed-priority response times exceed deadlines (util %.3f)"
            node u;
        locus = { no_locus with faulty = Some p.Planner.faulty; node = Some node };
      };
    ]
  else []

(* (b') Independent re-validation of the mode's static table. *)
let schedule_valid_diags v (p : Planner.plan) =
  let g = p.Planner.aug.Augment.graph in
  let xfer ~src ~dst ~size_bytes =
    xfer_oracle v ~faulty:p.Planner.faulty ~cls:Net.Data ~src ~dst ~size_bytes
  in
  match Schedule.validate p.Planner.schedule g ~xfer with
  | exception Invalid_argument msg ->
    (* A table referencing tasks the mode's graph does not declare
       is invalid, not a verifier crash. *)
    [
      {
        code = Schedule_invalid;
        message = msg;
        locus = { no_locus with faulty = Some p.Planner.faulty };
      };
    ]
  | Ok () -> []
  | Error msg ->
    [
      {
        code = Schedule_invalid;
        message = msg;
        locus = { no_locus with faulty = Some p.Planner.faulty };
      };
    ]

(* (c) Definition 3.1 coverage: every fault set of size ≤ f has a plan,
   every one-fault extension a transition, every transition fits R. *)

(* First-wins indexes over the view's plan and transition lists: the
   same lookup results as the original [List.find_opt] scans (first
   match in list order) at O(1) per query instead of O(modes), which
   matters once coverage enumerates thousands of fault patterns. *)
let index_plans v =
  let idx : (int list, Planner.plan) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (p : Planner.plan) ->
      if not (Hashtbl.mem idx p.Planner.faulty) then
        Hashtbl.add idx p.Planner.faulty p)
    v.plans;
  idx

let index_transitions v =
  let idx : (int list * int, Planner.transition) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (tr : Planner.transition) ->
      let k = (tr.Planner.from_faulty, tr.Planner.new_fault) in
      if not (Hashtbl.mem idx k) then Hashtbl.add idx k tr)
    v.transitions;
  idx

(* [evb] is the (possibly memoized) evidence-bound oracle; coverage
   asks for the same fault set once per contained fault, so even the
   from-scratch path profits from the per-pass memo in [verify_units]. *)
let coverage_diags v ~evb push =
  let plan_idx = index_plans v in
  let tr_idx = index_transitions v in
  let plan_for faulty = Hashtbl.find_opt plan_idx (key faulty) in
  let transition_for ~from_faulty ~new_fault =
    Hashtbl.find_opt tr_idx (key from_faulty, new_fault)
  in
  let r = v.config.Planner.recovery_bound in
  let patterns = fault_patterns (Topology.nodes v.topology) v.config.Planner.f in
  List.iter
    (fun faulty ->
      match plan_for faulty with
      | None ->
        push
          {
            code = Mode_missing;
            message =
              Printf.sprintf "fault set of size %d has no plan" (List.length faulty);
            locus = { no_locus with faulty = Some faulty };
          }
      | Some to_plan ->
        List.iter
          (fun y ->
            let from_faulty = List.filter (fun x -> x <> y) faulty in
            if plan_for from_faulty <> None then
              match transition_for ~from_faulty ~new_fault:y with
              | None ->
                push
                  {
                    code = Transition_missing;
                    message =
                      Format.asprintf "no transition %a -> %a" pp_fault_set
                        from_faulty pp_fault_set faulty;
                    locus =
                      { no_locus with faulty = Some from_faulty; new_fault = Some y };
                  }
              | Some tr ->
                if Time.compare tr.Planner.recovery_bound r > 0 then
                  push
                    {
                      code = Recovery_bound_exceeded;
                      message =
                        Format.asprintf
                          "transition %a -> %a: recovery bound %a > R = %a"
                          pp_fault_set from_faulty pp_fault_set faulty Time.pp
                          tr.Planner.recovery_bound Time.pp r;
                      locus =
                        {
                          no_locus with
                          faulty = Some from_faulty;
                          new_fault = Some y;
                        };
                    };
                (* Recompose the bound from the paper's architecture:
                   detection (one period + margin) + evidence
                   distribution + state migration + activation at the
                   next period boundary (§4.4). *)
                let period = Graph.period to_plan.Planner.aug.Augment.graph in
                let floor_bound =
                  Time.add
                    (Time.add
                       (Time.add period v.config.Planner.detection_margin)
                       (evb faulty))
                    (Time.add tr.Planner.migration_bound period)
                in
                if Time.compare tr.Planner.recovery_bound floor_bound < 0 then
                  push
                    {
                      code = Recovery_bound_understated;
                      message =
                        Format.asprintf
                          "transition %a -> %a: stored bound %a < recomputed %a"
                          pp_fault_set from_faulty pp_fault_set faulty Time.pp
                          tr.Planner.recovery_bound Time.pp floor_bound;
                      locus =
                        {
                          no_locus with
                          faulty = Some from_faulty;
                          new_fault = Some y;
                        };
                    })
          faulty)
    patterns;
  List.length patterns

(* (c') Selective omission (the §4.2 gap): a faulty sender need not go
   silent toward everyone — omitting toward a carefully chosen minority
   of watchers can starve every lane of a protected output while each
   individual watchdog stays below its declaration threshold. This
   check enumerates, per mode and per candidate sender F, the minimal
   set of watcher hosts F must omit toward to cut every live lane of
   each protected sink flow, and bounds the resulting detection time
   two ways: the direct path (one watcher sustains [strikes]
   consecutive missed sweeps, declares, and the suspect-path cover
   evicts F) and the corroboration path (when the minimal cut already
   touches >= f+1 watchers, their first-sweep suspicions corroborate).
   Scope: only direct sender cuts are modeled — F omitting as a relay
   on someone else's route (ring topologies) is a documented
   limitation, kept out so that relay topologies are not rejected for
   patterns the campaign generator cannot produce either. *)

type omission_witness = {
  ow_mode : int list;  (* the plan's faulty set the sender attacks from *)
  ow_sender : int;
  ow_targets : int list;  (* minimal watcher hosts to omit toward *)
  ow_flow : int;  (* original sink flow starved *)
  ow_watchers : int;  (* = List.length ow_targets *)
}

(* Smallest subset of [List.concat sets] hitting every set, smallest
   then lexicographically first; sets must be nonempty. *)
let min_hitting_set sets =
  let candidates = List.sort_uniq Int.compare (List.concat sets) in
  let rec combos k lst =
    if k = 0 then [ [] ]
    else
      match lst with
      | [] -> []
      | x :: rest -> List.map (fun c -> x :: c) (combos (k - 1) rest) @ combos k rest
  in
  let hits w set = List.exists (fun x -> List.mem x w) set in
  let rec try_k k =
    if k > List.length candidates then None
    else
      match
        List.find_opt
          (fun w -> List.for_all (hits w) sets)
          (combos k candidates)
      with
      | Some w -> Some w
      | None -> try_k (k + 1)
  in
  try_k 1

let protected_sink_flows v =
  let level = v.config.Planner.protect_level in
  List.filter
    (fun (fl : Graph.flow) ->
      let producer = Graph.task v.workload fl.producer in
      Task.compare_criticality producer.Task.criticality level >= 0)
    (Graph.sink_flows v.workload)

(* Per (plan, sender) worst flow the sender can starve by selective
   omission, with its minimal watcher cut and both detection bounds. *)
type omission_case = {
  oc_plan : Planner.plan;
  oc_sender : int;
  oc_flow : int;
  oc_targets : int list;
  oc_direct : Time.t;  (* detection via one watcher reaching [strikes] *)
  oc_corro : Time.t option;  (* via corroboration, when the cut >= f+1 *)
  oc_fatal : bool;  (* no path fits inside R *)
}

(* Per protected sink flow (in [protected_sink_flows] order): the
   minimal watcher cut [sender] must omit toward to starve that flow in
   mode [p], or [None] when the flow is shed in this mode, some lane
   has no direct hop from the sender, or no hitting set exists. This is
   a pure function of the mode's structure — R, strikes and evidence
   bounds do not enter — so the memo layer keys it on the mode
   fingerprint alone and replays the cheap R-dependent selection. *)
let omission_cut_rows v (p : Planner.plan) ~sender =
  let aug = p.Planner.aug in
  let g = aug.Augment.graph in
  let host_idx : (Task.id, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (tid, n) ->
      if not (Hashtbl.mem host_idx tid) then Hashtbl.add host_idx tid n)
    p.Planner.assignment;
  let host tid = Hashtbl.find_opt host_idx tid in
  (* Live lane chains per protected original sink flow: the delivery
     hop plus the transitive producer closure behind it, all assigned
     in this mode. *)
  let chains_of (orig_fl : Graph.flow) =
    List.filter_map
      (fun (fl : Graph.flow) ->
        match Augment.orig_flow_of aug fl.flow_id with
        | Some (ofid, _) when ofid = orig_fl.Graph.flow_id ->
          if Augment.orig_of aug fl.consumer <> orig_fl.Graph.consumer then None
          else begin
            let closure = Hashtbl.create 16 in
            let rec go tid =
              if not (Hashtbl.mem closure tid) then begin
                Hashtbl.replace closure tid ();
                List.iter
                  (fun (pf : Graph.flow) -> go pf.producer)
                  (Graph.producers_of g tid)
              end
            in
            go fl.producer;
            let live =
              host fl.consumer <> None
              && Table.sorted_fold ~cmp:Int.compare
                   (fun tid () acc -> acc && host tid <> None)
                   closure true
            in
            if not live then None
            else
              let hops =
                fl
                :: List.filter
                     (fun (hf : Graph.flow) -> Hashtbl.mem closure hf.consumer)
                     (Graph.flows g)
              in
              Some hops
          end
        | _ -> None)
      (Graph.flows g)
  in
  List.map
    (fun (orig_fl : Graph.flow) ->
      match chains_of orig_fl with
      | [] -> None (* flow not carried in this mode: shed *)
      | chains ->
        let cuts =
          List.map
            (fun hops ->
              List.sort_uniq Int.compare
                (List.filter_map
                   (fun (hf : Graph.flow) ->
                     match (host hf.producer, host hf.consumer) with
                     | Some ph, Some ch when ph = sender && ch <> sender -> Some ch
                     | _ -> None)
                   hops))
            chains
        in
        if List.for_all (fun c -> c <> []) cuts then
          match min_hitting_set cuts with
          | None -> None
          | Some targets -> Some (orig_fl.Graph.flow_id, targets)
        else None)
    (protected_sink_flows v)

(* Replays the worst-flow selection over precomputed cut rows. The old
   in-line code short-circuited once a fatal flow was found; under the
   [better] rule a later flow can never displace a fatal winner, so
   scanning every row yields the identical case list. *)
let omission_cases v ~strikes ~evb ~cuts =
  let r = v.config.Planner.recovery_bound in
  let f = v.config.Planner.f in
  let threshold = f + 1 in
  let tr_idx = index_transitions v in
  let cases = ref [] in
  List.iter
    (fun (p : Planner.plan) ->
      if List.length p.Planner.faulty < f then begin
        let g = p.Planner.aug.Augment.graph in
        let alive = alive_of v p.Planner.faulty in
        List.iter
          (fun sender ->
            match Hashtbl.find_opt tr_idx (key p.Planner.faulty, sender) with
            | None -> () (* E302 owns the missing transition *)
            | Some tr ->
              let period = Graph.period g in
              (* Mirror the runtime watchdog margin: configured margin
                 plus a tenth of a period of queueing slack. *)
              let margin =
                Time.add v.config.Planner.detection_margin (Time.div period 10)
              in
              let faulty' = key (sender :: p.Planner.faulty) in
              let base =
                Time.add
                  (Time.add margin (evb faulty'))
                  (Time.add tr.Planner.migration_bound (Time.mul period 2))
              in
              let direct = Time.add (Time.mul period strikes) base in
              let corro = Time.add period base in
              (* Worst flow for this sender: prefer a fatal one. *)
              let worst = ref None in
              List.iter
                (fun row ->
                  match (!worst, row) with
                  | Some (_, _, true), _ | _, None -> ()
                  | _, Some (flow_id, targets) ->
                    let m = List.length targets in
                    let corro_applies = m >= threshold in
                    let detectable =
                      Time.compare direct r <= 0
                      || (corro_applies && Time.compare corro r <= 0)
                    in
                    let fatal = not detectable in
                    let needs_corro = detectable && Time.compare direct r > 0 in
                    if fatal || needs_corro then
                      let better =
                        match !worst with
                        | None -> true
                        | Some (_, _, was_fatal) -> fatal && not was_fatal
                      in
                      if better then
                        worst := Some (flow_id, (targets, corro_applies), fatal))
                (cuts p ~sender);
              (match !worst with
              | None -> ()
              | Some (flow, (targets, corro_applies), fatal) ->
                cases :=
                  {
                    oc_plan = p;
                    oc_sender = sender;
                    oc_flow = flow;
                    oc_targets = targets;
                    oc_direct = direct;
                    oc_corro = (if corro_applies then Some corro else None);
                    oc_fatal = fatal;
                  }
                  :: !cases))
          alive
      end)
    v.plans;
  List.rev !cases

let selective_omission_cases v ~strikes =
  omission_cases v ~strikes
    ~evb:(fun faulty -> evidence_bound v ~faulty)
    ~cuts:(fun p ~sender -> omission_cut_rows v p ~sender)

let omission_diags v ~strikes cases =
  let r = v.config.Planner.recovery_bound in
  List.map
    (fun c ->
      let p = c.oc_plan in
      if c.oc_fatal then
        {
          code = Selective_omission_undetectable;
          message =
            Format.asprintf
              "node %d can starve flow %d by omitting toward %a (%d watcher%s, \
               strikes=%d): detection needs %a > R = %a"
              c.oc_sender c.oc_flow pp_fault_set c.oc_targets
              (List.length c.oc_targets)
              (if List.length c.oc_targets = 1 then "" else "s")
              strikes Time.pp c.oc_direct Time.pp r;
          locus =
            {
              no_locus with
              faulty = Some p.Planner.faulty;
              node = Some c.oc_sender;
              flow = Some c.oc_flow;
            };
        }
      else
        {
          code = Omission_needs_corroboration;
          message =
            Format.asprintf
              "node %d starving flow %d (omitting toward %a) is caught within \
               R = %a only by %d-watcher corroboration (single-watchdog \
               detection needs %a)"
              c.oc_sender c.oc_flow pp_fault_set c.oc_targets Time.pp r
              (List.length c.oc_targets) Time.pp c.oc_direct;
          locus =
            {
              no_locus with
              faulty = Some p.Planner.faulty;
              node = Some c.oc_sender;
              flow = Some c.oc_flow;
            };
        })
    cases

let selective_omission_witnesses ?(strikes = 1) v =
  List.filter_map
    (fun c ->
      if c.oc_fatal then
        Some
          {
            ow_mode = c.oc_plan.Planner.faulty;
            ow_sender = c.oc_sender;
            ow_targets = c.oc_targets;
            ow_flow = c.oc_flow;
            ow_watchers = List.length c.oc_targets;
          }
      else None)
    (selective_omission_cases v ~strikes)

(* (d) Mode-graph sanity: transitions connect known modes, every mode
   is reachable from the fault-free root, evidence can flood in every
   mode, and its bound leaves room for the rest of the recovery. *)
let transition_sanity_diags v =
  let known : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (p : Planner.plan) -> Hashtbl.replace known p.Planner.faulty ())
    v.plans;
  List.concat_map
    (fun (tr : Planner.transition) ->
      List.filter_map
        (fun (name, fs) ->
          if not (Hashtbl.mem known (key fs)) then
            Some
              {
                code = Transition_target_unknown;
                message =
                  Format.asprintf "transition %a -> %a: %s mode has no plan"
                    pp_fault_set tr.Planner.from_faulty pp_fault_set
                    tr.Planner.to_faulty name;
                locus =
                  {
                    no_locus with
                    faulty = Some fs;
                    new_fault = Some tr.Planner.new_fault;
                  };
              }
          else None)
        [ ("source", tr.Planner.from_faulty); ("target", tr.Planner.to_faulty) ])
    v.transitions

(* Reachability from the fault-free root over the transition graph,
   with transitions indexed by source mode so the walk is linear in
   edges rather than modes × transitions. *)
let orphan_mode_diags v =
  let known = List.map (fun (p : Planner.plan) -> p.Planner.faulty) v.plans in
  if not (List.mem [] known) then []
  else begin
    let by_from : (int list, Planner.transition list) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun (tr : Planner.transition) ->
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt by_from tr.Planner.from_faulty)
        in
        Hashtbl.replace by_from tr.Planner.from_faulty (tr :: prev))
      v.transitions;
    let visited = Hashtbl.create 16 in
    let rec visit fs =
      if not (Hashtbl.mem visited fs) then begin
        Hashtbl.replace visited fs ();
        List.iter
          (fun (tr : Planner.transition) -> visit (key tr.Planner.to_faulty))
          (Option.value ~default:[] (Hashtbl.find_opt by_from fs))
      end
    in
    visit [];
    List.filter_map
      (fun fs ->
        if not (Hashtbl.mem visited fs) then
          Some
            {
              code = Orphan_mode;
              message = "mode is unreachable from the fault-free root";
              locus = { no_locus with faulty = Some fs };
            }
        else None)
      known
  end

(* (d') Per mode: evidence routable between every pair of survivors.
   Fast path: one BFS from the first survivor — link connectivity is an
   equivalence relation over usable nodes, so "first reaches all" is
   exactly "every pair is routable" and the all-clear costs
   O(memberships) instead of O(n³). Any failure falls back to the
   pairwise probe to report the identical per-pair diagnostics. *)
let evidence_routes_diags v (p : Planner.plan) =
  let faulty = p.Planner.faulty in
  let alive = alive_of v faulty in
  let all_connected =
    match alive with
    | [] -> true
    | first :: rest ->
      let sweep =
        Topology.paths_from v.topology
          ~usable:(fun n -> not (List.mem n faulty))
          ~src:first
      in
      List.for_all (fun n -> Topology.reached sweep n) rest
  in
  if all_connected then []
  else begin
    let out = ref [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a < b then
              match
                xfer_oracle v ~faulty ~cls:Net.Control ~src:a ~dst:b
                  ~size_bytes:v.config.Planner.evidence_size
              with
              | Some _ -> ()
              | None ->
                out :=
                  {
                    code = Evidence_unroutable;
                    message =
                      Printf.sprintf "no control route between survivors %d and %d"
                        a b;
                    locus = { no_locus with faulty = Some faulty; node = Some a };
                  }
                  :: !out)
          alive)
      alive;
    List.rev !out
  end

(* ------------------------------------------------------------------ *)
(* Composition. The [units] record is the seam {!Incr} replaces with
   memoizing wrappers; [verify_units default_units] is the from-scratch
   verifier. Emission order below replicates the historical push order
   exactly, so reports are byte-identical across both paths. *)

type units = {
  u_link_capacity : view -> diagnostic list;
  u_control_reserves : view -> diagnostic list;
  u_data_reserves : view -> Planner.plan -> diagnostic list;
  u_node_rta :
    view ->
    Planner.plan ->
    node:int ->
    tasks:(Task.id * Time.t * Time.t) list ->
    diagnostic list;
  u_schedule_valid : view -> Planner.plan -> diagnostic list;
  u_evb : view -> int list -> Time.t;
  u_omission_cuts :
    view -> Planner.plan -> sender:int -> (int * int list) option list;
  u_evidence_routes : view -> Planner.plan -> diagnostic list;
}

let default_units =
  {
    u_link_capacity = link_capacity_diags;
    u_control_reserves = control_reserve_diags;
    u_data_reserves = data_reserve_diags;
    u_node_rta = node_rta_diags;
    u_schedule_valid = schedule_valid_diags;
    u_evb = (fun v faulty -> evidence_bound v ~faulty);
    u_omission_cuts = omission_cut_rows;
    u_evidence_routes = evidence_routes_diags;
  }

let verify_units ?(obs = Obs.null) ?(strikes = 1) u v =
  let rev = ref [] in
  let push d = rev := d :: !rev in
  let push_all ds = List.iter push ds in
  (* One evidence-bound memo per pass: coverage, omission and the
     budget check ask for overlapping fault sets. *)
  let evb_tbl : (int list, Time.t) Hashtbl.t = Hashtbl.create 64 in
  let evb faulty =
    let k = key faulty in
    match Hashtbl.find_opt evb_tbl k with
    | Some t -> t
    | None ->
      let t = u.u_evb v k in
      Hashtbl.add evb_tbl k t;
      t
  in
  push_all (u.u_link_capacity v);
  List.iter (fun p -> push_all (u.u_data_reserves v p)) v.plans;
  push_all (u.u_control_reserves v);
  List.iter
    (fun p ->
      List.iter
        (fun (node, tasks) -> push_all (u.u_node_rta v p ~node ~tasks))
        (rta_inputs v p);
      push_all (u.u_schedule_valid v p))
    v.plans;
  let fault_sets = coverage_diags v ~evb push in
  push_all
    (omission_diags v ~strikes
       (omission_cases v ~strikes ~evb
          ~cuts:(fun p ~sender -> u.u_omission_cuts v p ~sender)));
  push_all (transition_sanity_diags v);
  push_all (orphan_mode_diags v);
  List.iter
    (fun (p : Planner.plan) ->
      push_all (u.u_evidence_routes v p);
      let faulty = p.Planner.faulty in
      if faulty <> [] then begin
        let eb = evb faulty in
        if Time.compare (Time.mul eb 2) v.config.Planner.recovery_bound > 0 then
          push
            {
              code = Evidence_budget_dominant;
              message =
                Format.asprintf
                  "evidence distribution bound %a exceeds half of R = %a" Time.pp
                  eb Time.pp v.config.Planner.recovery_bound;
              locus = { no_locus with faulty = Some faulty };
            }
      end)
    v.plans;
  let diagnostics =
    let all = List.rev !rev in
    List.filter (fun d -> severity_of d.code = Error) all
    @ List.filter (fun d -> severity_of d.code = Warning) all
  in
  let report =
    {
      diagnostics;
      modes = List.length v.plans;
      transitions = List.length v.transitions;
      fault_sets;
    }
  in
  if Obs.enabled obs then
    List.iter
      (fun d ->
        Obs.emit obs ~at:Time.zero
          ?node:d.locus.node Obs.Check
          (Obs.Check_diagnostic
             {
               code = code_id d.code;
               severity = severity_name (severity_of d.code);
               detail = Format.asprintf "%a" pp_diagnostic d;
             }))
      report.diagnostics;
  report

let verify_view ?obs ?strikes v = verify_units ?obs ?strikes default_units v
let verify ?obs ?strikes s = verify_view ?obs ?strikes (view_of_strategy s)

let to_planner_error r =
  if passed r then None
  else
    Some
      (Planner.Rejected
         {
           diagnostics =
             List.map
               (fun d -> (code_id d.code, Format.asprintf "%a" pp_diagnostic d))
               (errors r);
         })
