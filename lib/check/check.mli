(** Static verification of recovery strategies (Definition 3.1).

    The paper's central promise is that a BTR system {e guarantees}
    recovery within [R(f)] for every fault set of size at most [f].
    That is a property of the offline strategy, so it should be proved
    or refuted before any simulation runs — the way FTOS-Verify argues
    fault-tolerance properties should be checked on the system model,
    and the way GeoShield pre-validates recovery plans. This module
    takes a built {!Planner.t} (or a raw {!view} of one, so tests can
    corrupt it) and statically discharges the obligations:

    - {b bandwidth} (§2.1): the per-member static reservations fit
      inside every link's raw capacity (the babbling-idiot guard), and
      in every mode the data traffic each sender must push per period
      fits inside its reserved slice;
    - {b schedulability} (§4.1): per mode and node, utilization and
      fixed-priority response-time bounds from {!Btr_sched.Analysis},
      plus full independent re-validation of the static tables;
    - {b recovery coverage} (Def. 3.1): every fault set of size ≤ f has
      a plan; every single-fault extension has a transition whose
      staged state and activation path fit inside R;
    - {b mode-graph sanity} (§4.4): transitions connect known modes,
      no mode is unreachable from the fault-free root, and evidence can
      be distributed between every pair of survivors on the reserved
      control bandwidth.

    Verdicts are structured diagnostics with stable error codes
    (["BTR-E303"]); they are rendered as text, emitted on the
    {!Btr_obs.Obs} bus and serialized as JSON. [Btr.Scenario] runs the
    verifier after planning and refuses to deploy a strategy that fails
    ({!Planner.error.Rejected}). *)

module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner

type severity = Error | Warning

val severity_name : severity -> string
(** ["error"] / ["warning"]. *)

(** Stable diagnostic codes. The numeric ranges group the Definition
    3.1 obligations: 1xx bandwidth, 2xx schedulability, 3xx recovery
    coverage, 4xx mode-graph sanity. Errors make {!passed} false;
    warnings do not. *)
type code =
  | Link_oversubscribed  (** BTR-E101: static reservations exceed a link's raw capacity *)
  | Data_reserve_exceeded
      (** BTR-E102: a sender's per-period data traffic does not fit its
          reserved slice in some mode *)
  | Control_reserve_tight
      (** BTR-W103: one evidence record cannot be serialized on some
          link's control reservation within a period *)
  | Node_overutilized  (** BTR-E201: a node's demand exceeds the period in some mode *)
  | Response_time_divergent
      (** BTR-W202: fixed-priority response-time analysis diverges for a
          node's task set (advisory — the deployed tables are
          time-triggered, not fixed-priority) *)
  | Schedule_invalid
      (** BTR-E203: a mode's static table fails independent validation *)
  | Mode_missing  (** BTR-E301: a fault set of size ≤ f has no plan *)
  | Transition_missing
      (** BTR-E302: a reachable mode extension has no staged transition *)
  | Recovery_bound_exceeded  (** BTR-E303: a transition's bound exceeds R *)
  | Recovery_bound_understated
      (** BTR-W304: a stored recovery bound is smaller than the
          detection + evidence + migration + activation decomposition
          recomputed from first principles *)
  | Selective_omission_undetectable
      (** BTR-E305: a sender can starve a protected sink flow by
          omitting toward a minimal watcher subset, and neither the
          per-watcher strike path nor multi-watcher corroboration
          detects it within R (§4.2 selective omission) *)
  | Omission_needs_corroboration
      (** BTR-W306: selective omission on this configuration is caught
          within R only because the minimal cut spans ≥ f+1 watchers
          whose sub-threshold suspicions corroborate — no single
          watchdog reaches its strike threshold in time *)
  | Transition_target_unknown
      (** BTR-E401: a transition names a mode that has no plan *)
  | Orphan_mode
      (** BTR-E402: a mode unreachable from the fault-free root via
          transitions *)
  | Evidence_unroutable
      (** BTR-E403: two survivors of some mode have no control-class
          route, so evidence cannot flood *)
  | Evidence_budget_dominant
      (** BTR-W404: recomputed evidence distribution alone consumes
          more than half of R *)

val all_codes : code list
val code_id : code -> string
(** ["BTR-E101"], ["BTR-W304"], … stable across releases. *)

val code_of_id : string -> code option
val severity_of : code -> severity
val describe : code -> string
(** One-line human description of the obligation the code checks. *)

(** Where a diagnostic points. Unset fields do not apply. *)
type locus = {
  faulty : int list option;  (** the mode (fault pattern) concerned *)
  node : int option;
  flow : int option;
  link : int option;
  new_fault : int option;  (** transition: the arriving fault *)
}

val no_locus : locus

type diagnostic = { code : code; message : string; locus : locus }

type report = {
  diagnostics : diagnostic list;  (** errors first, then warnings *)
  modes : int;  (** plans examined *)
  transitions : int;
  fault_sets : int;  (** fault patterns enumerated for coverage *)
}

val passed : report -> bool
(** No [Error]-severity diagnostics. *)

val errors : report -> diagnostic list
val warnings : report -> diagnostic list

(** A raw, correctable image of a strategy. {!verify} works on views so
    that tests can corrupt one field at a time and exercise every
    diagnostic; {!view_of_strategy} extracts the faithful view. *)
type view = {
  config : Planner.config;
  workload : Graph.t;
  topology : Topology.t;
  plans : Planner.plan list;
  transitions : Planner.transition list;
}

val view_of_strategy : Planner.t -> view

(** A concrete attack the selective-omission check could not rule out:
    from the mode running with [ow_mode] faulty, node [ow_sender]
    omitting toward exactly the hosts in [ow_targets] starves original
    sink flow [ow_flow] without any detection path fitting in R. The
    conformance suite replays these as [Omit_to] schedules past the
    admission gate to confirm each rejection is genuine. *)
type omission_witness = {
  ow_mode : int list;
  ow_sender : int;
  ow_targets : int list;
  ow_flow : int;
  ow_watchers : int;  (** [List.length ow_targets] *)
}

val selective_omission_witnesses : ?strikes:int -> view -> omission_witness list
(** One witness per BTR-E305 diagnostic {!verify_view} would raise,
    in the same order. [strikes] (default 1) is the watchdog
    declaration threshold the runtime will be configured with. *)

(** {1 Verification units}

    The verifier is composed from per-obligation functions so that the
    incremental layer ({!Btr_check.Incr}) can substitute memoizing
    wrappers for the {e same} functions: on a memo miss both paths run
    literally the same code, which is what makes [Incr.report]
    provably identical to {!verify_view} rather than a parallel
    implementation that could drift. *)

type units = {
  u_link_capacity : view -> diagnostic list;
      (** BTR-E101 over every link (static, mode-independent). *)
  u_control_reserves : view -> diagnostic list;
      (** BTR-W103 over every link (static, mode-independent). *)
  u_data_reserves : view -> Planner.plan -> diagnostic list;
      (** BTR-E102 for one mode's routed per-sender demand. *)
  u_node_rta :
    view ->
    Planner.plan ->
    node:int ->
    tasks:(Btr_workload.Task.id * Btr_util.Time.t * Btr_util.Time.t) list ->
    diagnostic list;
      (** BTR-E201/W202 for one node of one mode. [tasks] are the
          [(task, wcet, deadline)] triples response-time analysis
          reads, in assignment order — everything the result depends
          on besides the period, so a memo may key on exactly that. *)
  u_schedule_valid : view -> Planner.plan -> diagnostic list;
      (** BTR-E203: independent re-validation of one mode's table. *)
  u_evb : view -> int list -> Btr_util.Time.t;
      (** Worst-case pairwise evidence-distribution bound for one
          (sorted) fault set — the §4.3 term of every recovery bound. *)
  u_omission_cuts :
    view -> Planner.plan -> sender:int -> (int * int list) option list;
      (** Per protected sink flow (in declaration order): the minimal
          watcher cut [sender] must omit toward to starve it in this
          mode, or [None] when the flow is shed or uncuttable. Pure in
          the mode structure; R and strikes enter only in the replayed
          selection, so this is the expensive memoizable core of
          BTR-E305/W306. *)
  u_evidence_routes : view -> Planner.plan -> diagnostic list;
      (** BTR-E403 for one mode's survivor pairs. *)
}

val default_units : units
(** The from-scratch implementations; {!verify_view} is
    [verify_units default_units]. *)

val verify_units :
  ?obs:Btr_obs.Obs.t -> ?strikes:int -> units -> view -> report
(** Runs every check through the given unit implementations, in the
    fixed historical emission order. Two [units] values whose
    functions are extensionally equal produce byte-identical
    reports. *)

val evidence_bound : view -> faulty:int list -> Btr_util.Time.t
(** The default [u_evb]: worst-case control-class transfer time between
    any two survivors of [faulty], via one cost-accumulating BFS per
    source. *)

val verify_view : ?obs:Btr_obs.Obs.t -> ?strikes:int -> view -> report
(** Runs every check. [strikes] (default 1) is the runtime watchdog's
    consecutive-miss declaration threshold, used by the
    selective-omission analysis (BTR-E305/W306). Each diagnostic is
    also emitted on [obs] (default null) as a [Check_diagnostic] event
    at simulated time 0. *)

val verify : ?obs:Btr_obs.Obs.t -> ?strikes:int -> Planner.t -> report
(** [verify_view] of [view_of_strategy]. *)

val to_planner_error : report -> Planner.error option
(** [Some (Rejected _)] carrying the error diagnostics when the report
    failed; [None] when it {!passed}. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** [[BTR-E303] mode {1,3}: transition +3 recovery bound 210ms > R 200ms]. *)

val pp_report : Format.formatter -> report -> unit

val diagnostic_to_json : diagnostic -> string
val report_to_json : report -> string
(** One JSON object; diagnostics in a stable sorted order (severity,
    then code, locus, message) independent of internal emission order;
    deterministic byte-for-byte for a given view. *)
