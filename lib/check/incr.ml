open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Net = Btr_net.Net
module Planner = Btr_planner.Planner

(* ------------------------------------------------------------------ *)
(* Edits                                                               *)

type edit =
  | Add_node of int
  | Remove_node of int
  | Add_link of Topology.link
  | Retune_link of {
      link : int;
      bandwidth_bps : int option;
      latency : Time.t option;
    }
  | Add_flow of Graph.flow
  | Remove_flow of int
  | Retune_flow of {
      flow : int;
      msg_size : int option;
      deadline : Time.t option option;
    }
  | Set_f of int
  | Set_recovery_bound of Time.t

type apply_error = Invalid_edit of string | Plan_failed of Planner.error

let pp_apply_error ppf = function
  | Invalid_edit msg -> Format.fprintf ppf "invalid edit: %s" msg
  | Plan_failed e -> Format.fprintf ppf "replanning failed: %a" Planner.pp_error e

(* ------------------------------------------------------------------ *)
(* Memo tables                                                         *)

type counter = { mutable hits : int; mutable misses : int }

let fresh_counter () = { hits = 0; misses = 0 }

type memo_stats = {
  static_hits : int;
  static_misses : int;  (** link capacity + control reserves *)
  reserve_hits : int;
  reserve_misses : int;  (** per-mode data-reserve ledgers *)
  rta_hits : int;
  rta_misses : int;  (** per-(mode, node) response-time analyses *)
  sched_hits : int;
  sched_misses : int;  (** per-mode table re-validations *)
  routes_hits : int;
  routes_misses : int;  (** per-mode survivor-connectivity sweeps *)
  evb_hits : int;
  evb_misses : int;  (** per-fault-set evidence bounds *)
  cuts_hits : int;
  cuts_misses : int;  (** per-(mode, sender) omission cut rows *)
}

type memo = {
  static_tbl : (string, Check.diagnostic list) Hashtbl.t;
  reserve_tbl : (string, Check.diagnostic list) Hashtbl.t;
  rta_tbl : (string, Check.diagnostic list) Hashtbl.t;
  sched_tbl : (string, Check.diagnostic list) Hashtbl.t;
  routes_tbl : (string, Check.diagnostic list) Hashtbl.t;
  evb_tbl : (string, Time.t) Hashtbl.t;
  cuts_tbl : (string, (int * int list) option list) Hashtbl.t;
  (* Shared with the planner's evidence-bound computations; unlike the
     tables above its keys do not embed the network signature, so it is
     flushed whenever topology, shares or evidence size change. *)
  evb_planner : (string, Time.t) Hashtbl.t;
  c_static : counter;
  c_reserve : counter;
  c_rta : counter;
  c_sched : counter;
  c_routes : counter;
  c_evb : counter;
  c_cuts : counter;
}

let fresh_memo () =
  {
    static_tbl = Hashtbl.create 16;
    reserve_tbl = Hashtbl.create 64;
    rta_tbl = Hashtbl.create 256;
    sched_tbl = Hashtbl.create 64;
    routes_tbl = Hashtbl.create 64;
    evb_tbl = Hashtbl.create 64;
    cuts_tbl = Hashtbl.create 256;
    evb_planner = Hashtbl.create 64;
    c_static = fresh_counter ();
    c_reserve = fresh_counter ();
    c_rta = fresh_counter ();
    c_sched = fresh_counter ();
    c_routes = fresh_counter ();
    c_evb = fresh_counter ();
    c_cuts = fresh_counter ();
  }

let memo_find tbl ctr k compute =
  match Hashtbl.find_opt tbl k with
  | Some v ->
    ctr.hits <- ctr.hits + 1;
    v
  | None ->
    ctr.misses <- ctr.misses + 1;
    let v = compute () in
    Hashtbl.add tbl k v;
    v

(* ------------------------------------------------------------------ *)
(* Dependency keys. Every memo key names exactly what the wrapped unit
   reads, so a hit is sound by construction:

   - mode-keyed units (data reserves, table validation, survivor
     routes, omission cuts) read nothing outside (workload, topology,
     R-stripped config, fault pattern, parent chain), which is
     precisely what {!Planner.mode_fingerprint} hashes — and equal
     fingerprints imply equal plans;
   - the RTA key hashes the (task, wcet, deadline) triples and period
     the analysis actually consumes, plus the locus fields it prints;
   - network-keyed entries (static link checks, evidence bounds) hash
     the topology fingerprint, shares and evidence size — workload
     edits leave them untouched. *)

let shares_sig (c : Planner.config) =
  match c.Planner.shares with
  | None -> "auto"
  | Some s -> Printf.sprintf "%h:%h" s.Net.data_frac s.Net.control_frac

let net_sig (v : Check.view) =
  Printf.sprintf "%s|%s|%d"
    (Fnv.to_hex (Planner.topology_fingerprint v.Check.topology))
    (shares_sig v.Check.config)
    v.Check.config.Planner.evidence_size

let rta_key (p : Planner.plan) ~period ~node ~tasks =
  let b = Buffer.create 128 in
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "%d," n)) p.Planner.faulty;
  Buffer.add_string b (Printf.sprintf "|%d|%d" (period : Time.t) node);
  List.iter
    (fun (tid, wcet, deadline) ->
      Buffer.add_string b
        (Printf.sprintf "|%d:%d:%d" (tid : Task.id) (wcet : Time.t)
           (deadline : Time.t)))
    tasks;
  "rta|" ^ Fnv.to_hex (Fnv.hash64 (Buffer.contents b))

(* Memo-wrapping the default units: on a hit the stored diagnostics are
   returned; on a miss the {e default} implementation runs, so the
   incremental path can never diverge from {!Check.verify_view} — at
   worst it recomputes. A plan whose mode fingerprint is unavailable
   (never the case for plans of the strategy that produced the view)
   bypasses its memo entirely. *)
let units_of (m : memo) (strategy : Planner.t) : Check.units =
  let d = Check.default_units in
  let mode_keyed :
      'a.
      string ->
      (string, 'a) Hashtbl.t ->
      counter ->
      (unit -> 'a) ->
      Planner.plan ->
      suffix:string ->
      'a =
   fun prefix tbl ctr compute p ~suffix ->
    match Planner.mode_fingerprint strategy ~faulty:p.Planner.faulty with
    | None -> compute ()
    | Some fp -> memo_find tbl ctr (prefix ^ Fnv.to_hex fp ^ suffix) compute
  in
  {
    Check.u_link_capacity =
      (fun v ->
        memo_find m.static_tbl m.c_static
          ("lc|" ^ net_sig v)
          (fun () -> d.Check.u_link_capacity v));
    u_control_reserves =
      (fun v ->
        let k =
          Printf.sprintf "cr|%s|%d" (net_sig v)
            (Graph.period v.Check.workload : Time.t)
        in
        memo_find m.static_tbl m.c_static k (fun () -> d.Check.u_control_reserves v));
    u_data_reserves =
      (fun v p ->
        mode_keyed "reserve|" m.reserve_tbl m.c_reserve
          (fun () -> d.Check.u_data_reserves v p)
          p ~suffix:"");
    u_node_rta =
      (fun v p ~node ~tasks ->
        let period = Graph.period p.Planner.aug.Btr_planner.Augment.graph in
        memo_find m.rta_tbl m.c_rta
          (rta_key p ~period ~node ~tasks)
          (fun () -> d.Check.u_node_rta v p ~node ~tasks));
    u_schedule_valid =
      (fun v p ->
        mode_keyed "sched|" m.sched_tbl m.c_sched
          (fun () -> d.Check.u_schedule_valid v p)
          p ~suffix:"");
    u_evb =
      (fun v faulty ->
        let k =
          Printf.sprintf "evb|%s|%s" (net_sig v)
            (String.concat "," (List.map string_of_int faulty))
        in
        memo_find m.evb_tbl m.c_evb k (fun () -> d.Check.u_evb v faulty));
    u_omission_cuts =
      (fun v p ~sender ->
        mode_keyed "cuts|" m.cuts_tbl m.c_cuts
          (fun () -> d.Check.u_omission_cuts v p ~sender)
          p
          ~suffix:(Printf.sprintf "|%d" sender));
    u_evidence_routes =
      (fun v p ->
        mode_keyed "routes|" m.routes_tbl m.c_routes
          (fun () -> d.Check.u_evidence_routes v p)
          p ~suffix:"");
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)

type state = {
  config : Planner.config;
  workload : Graph.t;
  topology : Topology.t;
  strategy : Planner.t;
  view : Check.view;
  st_report : Check.report;
  strikes : int;
  memo : memo;
  last_delta : Planner.delta option;
}

type report_delta = {
  appeared : Check.diagnostic list;
  disappeared : Check.diagnostic list;
}

let report st = st.st_report
let strategy st = st.strategy
let view st = st.view
let last_plan_delta st = st.last_delta

let memo_stats st =
  let m = st.memo in
  {
    static_hits = m.c_static.hits;
    static_misses = m.c_static.misses;
    reserve_hits = m.c_reserve.hits;
    reserve_misses = m.c_reserve.misses;
    rta_hits = m.c_rta.hits;
    rta_misses = m.c_rta.misses;
    sched_hits = m.c_sched.hits;
    sched_misses = m.c_sched.misses;
    routes_hits = m.c_routes.hits;
    routes_misses = m.c_routes.misses;
    evb_hits = m.c_evb.hits;
    evb_misses = m.c_evb.misses;
    cuts_hits = m.c_cuts.hits;
    cuts_misses = m.c_cuts.misses;
  }

let reset_memo_stats st =
  List.iter
    (fun c ->
      c.hits <- 0;
      c.misses <- 0)
    [
      st.memo.c_static;
      st.memo.c_reserve;
      st.memo.c_rta;
      st.memo.c_sched;
      st.memo.c_routes;
      st.memo.c_evb;
      st.memo.c_cuts;
    ]

let init ?(strikes = 1) config workload topology =
  let memo = fresh_memo () in
  match Planner.build ~evidence_cache:memo.evb_planner config workload topology with
  | Error e -> Error e
  | Ok strategy ->
    let view = Check.view_of_strategy strategy in
    let st_report = Check.verify_units ~strikes (units_of memo strategy) view in
    Ok
      {
        config;
        workload;
        topology;
        strategy;
        view;
        st_report;
        strikes;
        memo;
        last_delta = None;
      }

(* ------------------------------------------------------------------ *)
(* Applying edits to the inputs                                        *)

let edited_workload st = function
  | Add_flow fl ->
    Some
      (Graph.create_relaxed ~period:(Graph.period st.workload)
         ~tasks:(Graph.tasks st.workload)
         ~flows:(Graph.flows st.workload @ [ fl ]))
  | Remove_flow id ->
    if not (List.exists (fun (f : Graph.flow) -> f.flow_id = id) (Graph.flows st.workload))
    then invalid_arg (Printf.sprintf "no flow %d" id)
    else
      Some
        (Graph.create_relaxed ~period:(Graph.period st.workload)
           ~tasks:(Graph.tasks st.workload)
           ~flows:
             (List.filter
                (fun (f : Graph.flow) -> f.flow_id <> id)
                (Graph.flows st.workload)))
  | Retune_flow { flow; msg_size; deadline } ->
    if not (List.exists (fun (f : Graph.flow) -> f.flow_id = flow) (Graph.flows st.workload))
    then invalid_arg (Printf.sprintf "no flow %d" flow)
    else
      Some
        (Graph.create_relaxed ~period:(Graph.period st.workload)
           ~tasks:(Graph.tasks st.workload)
           ~flows:
             (List.map
                (fun (f : Graph.flow) ->
                  if f.flow_id <> flow then f
                  else
                    {
                      f with
                      msg_size = Option.value ~default:f.msg_size msg_size;
                      deadline = Option.value ~default:f.deadline deadline;
                    })
                (Graph.flows st.workload)))
  | _ -> None

let edited_topology st = function
  | Add_node n ->
    Some
      (Topology.create
         ~nodes:(Topology.nodes st.topology @ [ n ])
         ~links:(Topology.links st.topology))
  | Remove_node n ->
    if not (List.mem n (Topology.nodes st.topology)) then
      invalid_arg (Printf.sprintf "no node %d" n)
    else
      let links =
        List.filter_map
          (fun (l : Topology.link) ->
            let members = List.filter (fun m -> m <> n) l.Topology.members in
            if List.length members < 2 then None
            else Some { l with Topology.members })
          (Topology.links st.topology)
      in
      Some
        (Topology.create
           ~nodes:(List.filter (fun m -> m <> n) (Topology.nodes st.topology))
           ~links)
  | Add_link l ->
    Some
      (Topology.create
         ~nodes:(Topology.nodes st.topology)
         ~links:(Topology.links st.topology @ [ l ]))
  | Retune_link { link; bandwidth_bps; latency } ->
    if
      not
        (List.exists
           (fun (l : Topology.link) -> l.Topology.link_id = link)
           (Topology.links st.topology))
    then invalid_arg (Printf.sprintf "no link %d" link)
    else
      Some
        (Topology.create
           ~nodes:(Topology.nodes st.topology)
           ~links:
             (List.map
                (fun (l : Topology.link) ->
                  if l.Topology.link_id <> link then l
                  else
                    {
                      l with
                      Topology.bandwidth_bps =
                        Option.value ~default:l.Topology.bandwidth_bps
                          bandwidth_bps;
                      latency = Option.value ~default:l.Topology.latency latency;
                    })
                (Topology.links st.topology)))
  | _ -> None

let edited_config st = function
  | Set_f f ->
    if f < 0 then invalid_arg "f must be >= 0"
    (* degree tracks f the way [Planner.default_config] sets it: f+1
       replica lanes keep one survivor under any admissible pattern. *)
    else Some { st.config with Planner.f; degree = Stdlib.max 1 (f + 1) }
  | Set_recovery_bound r ->
    if Time.compare r Time.zero <= 0 then invalid_arg "R must be positive"
    else Some { st.config with Planner.recovery_bound = r }
  | _ -> None

let edited_inputs st edit =
  match
    (edited_config st edit, edited_workload st edit, edited_topology st edit)
  with
  | Some c, None, None -> (c, st.workload, st.topology)
  | None, Some w, None -> (st.config, w, st.topology)
  | None, None, Some t -> (st.config, st.workload, t)
  | _ -> assert false (* each constructor edits exactly one input *)

(* ------------------------------------------------------------------ *)
(* Report diffing: multiset difference on the canonical JSON encoding,
   preserving report order on both sides.                              *)

let report_delta_of (old_r : Check.report) (new_r : Check.report) =
  let counts diags =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun d ->
        let k = Check.diagnostic_to_json d in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      diags;
    tbl
  in
  let leftover counts_other diags =
    let tbl = counts counts_other in
    List.filter
      (fun d ->
        let k = Check.diagnostic_to_json d in
        match Hashtbl.find_opt tbl k with
        | Some n when n > 0 ->
          Hashtbl.replace tbl k (n - 1);
          false
        | _ -> true)
      diags
  in
  {
    appeared = leftover old_r.Check.diagnostics new_r.Check.diagnostics;
    disappeared = leftover new_r.Check.diagnostics old_r.Check.diagnostics;
  }

let pp_report_delta ppf rd =
  Format.fprintf ppf "@[<v>+%d -%d diagnostics" (List.length rd.appeared)
    (List.length rd.disappeared);
  List.iter
    (fun d -> Format.fprintf ppf "@,+ %a" Check.pp_diagnostic d)
    rd.appeared;
  List.iter
    (fun d -> Format.fprintf ppf "@,- %a" Check.pp_diagnostic d)
    rd.disappeared;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Apply                                                               *)

let apply st edit =
  match edited_inputs st edit with
  | exception Invalid_argument msg -> Error (Invalid_edit msg)
  | config, workload, topology -> (
    let old_view_sig = net_sig st.view in
    let new_sig =
      net_sig { st.view with Check.config; topology }
    in
    if old_view_sig <> new_sig then Hashtbl.reset st.memo.evb_planner;
    let planned =
      match edit with
      | Set_recovery_bound r ->
        (* R is the one input planning never reads: reuse the whole
           strategy in O(1) instead of walking every fault pattern. *)
        let s = Planner.with_recovery_bound st.strategy r in
        Ok
          ( s,
            {
              Planner.reused_modes = List.length (Planner.all_plans s);
              replanned_modes = 0;
              reused_transitions = List.length (Planner.all_transitions s);
              rebuilt_transitions = 0;
              churn_moved_tasks = 0;
            } )
      | _ ->
        Planner.replan_delta ~evidence_cache:st.memo.evb_planner st.strategy
          config workload topology
    in
    match planned with
    | Error e -> Error (Plan_failed e)
    | Ok (strategy, delta) ->
      let view = Check.view_of_strategy strategy in
      let st_report =
        Check.verify_units ~strikes:st.strikes (units_of st.memo strategy) view
      in
      let rd = report_delta_of st.st_report st_report in
      Ok
        ( {
            st with
            config;
            workload;
            topology;
            strategy;
            view;
            st_report;
            last_delta = Some delta;
          },
          rd ))

(* ------------------------------------------------------------------ *)
(* Edit scripts: a line-oriented textual form for [btr check --delta]. *)

let edit_to_string = function
  | Add_node n -> Printf.sprintf "add-node %d" n
  | Remove_node n -> Printf.sprintf "remove-node %d" n
  | Add_link l ->
    Printf.sprintf "add-link id=%d members=%s bw=%d lat-us=%d" l.Topology.link_id
      (String.concat "," (List.map string_of_int l.Topology.members))
      l.Topology.bandwidth_bps
      (l.Topology.latency : Time.t)
  | Retune_link { link; bandwidth_bps; latency } ->
    String.concat " "
      (Printf.sprintf "retune-link %d" link
      :: Option.to_list (Option.map (Printf.sprintf "bw=%d") bandwidth_bps)
      @ Option.to_list
          (Option.map (fun (l : Time.t) -> Printf.sprintf "lat-us=%d" l) latency))
  | Add_flow f ->
    String.concat " "
      (Printf.sprintf "add-flow id=%d producer=%d consumer=%d size=%d"
         f.Graph.flow_id f.Graph.producer f.Graph.consumer f.Graph.msg_size
      :: Option.to_list
           (Option.map
              (fun (d : Time.t) -> Printf.sprintf "deadline-us=%d" d)
              f.Graph.deadline))
  | Remove_flow id -> Printf.sprintf "remove-flow %d" id
  | Retune_flow { flow; msg_size; deadline } ->
    String.concat " "
      (Printf.sprintf "retune-flow %d" flow
      :: Option.to_list (Option.map (Printf.sprintf "size=%d") msg_size)
      @ Option.to_list
          (Option.map
             (function
               | None -> "deadline=none"
               | Some (d : Time.t) -> Printf.sprintf "deadline-us=%d" d)
             deadline))
  | Set_f f -> Printf.sprintf "set-f %d" f
  | Set_recovery_bound r -> Printf.sprintf "set-recovery-bound-us %d" (r : Time.t)

let parse_edit line =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let int_of s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "not an integer: %S" s)
  in
  let ( let* ) = Result.bind in
  let kv tok =
    match String.index_opt tok '=' with
    | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
    | None -> None
  in
  let lookup pairs k = Option.map snd (List.find_opt (fun (k', _) -> k' = k) pairs) in
  let opt_int pairs k =
    match lookup pairs k with
    | None -> Ok None
    | Some s ->
      let* n = int_of s in
      Ok (Some n)
  in
  let req_int pairs k =
    match lookup pairs k with
    | None -> fail "missing %s=" k
    | Some s -> int_of s
  in
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Error "empty edit"
  | cmd :: args -> (
    let pairs = List.filter_map kv args in
    match (cmd, args) with
    | "add-node", [ n ] ->
      let* n = int_of n in
      Ok (Add_node n)
    | "remove-node", [ n ] ->
      let* n = int_of n in
      Ok (Remove_node n)
    | "add-link", _ ->
      let* id = req_int pairs "id" in
      let* bw = req_int pairs "bw" in
      let* lat = req_int pairs "lat-us" in
      let* members =
        match lookup pairs "members" with
        | None -> fail "missing members="
        | Some s ->
          List.fold_right
            (fun tok acc ->
              let* acc = acc in
              let* n = int_of tok in
              Ok (n :: acc))
            (String.split_on_char ',' s)
            (Ok [])
      in
      Ok
        (Add_link
           {
             Topology.link_id = id;
             members;
             bandwidth_bps = bw;
             latency = Time.us lat;
           })
    | "retune-link", id :: _ ->
      let* link = int_of id in
      let* bw = opt_int pairs "bw" in
      let* lat = opt_int pairs "lat-us" in
      if bw = None && lat = None then fail "retune-link: nothing to change"
      else
        Ok
          (Retune_link
             { link; bandwidth_bps = bw; latency = Option.map Time.us lat })
    | "add-flow", _ ->
      let* id = req_int pairs "id" in
      let* producer = req_int pairs "producer" in
      let* consumer = req_int pairs "consumer" in
      let* size = req_int pairs "size" in
      let* dl = opt_int pairs "deadline-us" in
      Ok
        (Add_flow
           {
             Graph.flow_id = id;
             producer;
             consumer;
             msg_size = size;
             deadline = Option.map Time.us dl;
           })
    | "remove-flow", [ n ] ->
      let* n = int_of n in
      Ok (Remove_flow n)
    | "retune-flow", id :: _ ->
      let* flow = int_of id in
      let* size = opt_int pairs "size" in
      let* dl =
        match lookup pairs "deadline" with
        | Some "none" -> Ok (Some None)
        | Some other -> fail "deadline=%s (expected none or deadline-us=N)" other
        | None ->
          let* d = opt_int pairs "deadline-us" in
          Ok (Option.map (fun d -> Some (Time.us d)) d)
      in
      if size = None && dl = None then fail "retune-flow: nothing to change"
      else Ok (Retune_flow { flow; msg_size = size; deadline = dl })
    | "set-f", [ n ] ->
      let* n = int_of n in
      Ok (Set_f n)
    | "set-recovery-bound-us", [ n ] ->
      let* n = int_of n in
      Ok (Set_recovery_bound (Time.us n))
    | _ -> fail "unrecognized edit: %s" cmd)
