open Btr_util
module Obs = Btr_obs.Obs

type backend = Wheel | Pheap

(* A handle carries the shared per-engine [counters] record rather than
   the engine itself: [cancel] takes only a handle, and the static nil
   values below must stay constructible, so [counters.env] smuggles in
   the two things cancellation needs from the engine — the wheel (for
   the O(1) unlink) and the obs counter — behind a constant
   constructor. *)
type handle = {
  mutable alive : bool;
  mutable queued : int;
  mutable fire : t -> unit;
      (* the user's callback, stored directly — no wrapper closure, so
         firing reads one fewer cache line and scheduling allocates
         only the handle *)
  mutable period : int;
      (* -1 one-shot; else the engine re-arms every [period] µs. Native
         rather than closed over: the re-arm state rides the handle
         record the firing path has already loaded. *)
  mutable next_at : Time.t; (* the armed deadline when period >= 0 *)
  mutable cell : handle Twheel.cell;
      (* the armed wheel cell; [nil_cell] when unarmed or on pheap *)
  ctrs : counters;
}

and counters = { mutable live : int; env : env }

and env =
  | Nil_env
  | Env of { wq : handle Twheel.t option; c_cancelled : Obs.Counter.t }

(* [fire : t -> unit] closes a type cycle through the event queue, so
   the pairing-heap backend hides its state behind closures ([pq],
   built by [make_pq] below) rather than appearing in these types —
   a functor application cannot join a recursive type group. *)
and t = {
  mutable clock : Time.t;
  q : queue;
  mutable next_seq : int;
  mutable processed : int;
  ectrs : counters;
  rng : Rng.t;
  obs : Obs.t;
  c_scheduled : Obs.Counter.t;
  c_fired : Obs.Counter.t;
  c_pool : Obs.Counter.t;
  c_cells : Obs.Counter.t;
}

and queue = Qw of handle Twheel.t | Qp of pq

and pq = {
  pq_insert : at:Time.t -> seq:int -> handle -> live:int -> unit;
  pq_find_min : unit -> (Time.t * handle) option;
  pq_delete_min : live:int -> unit;
  pq_len : unit -> int;
}

let nop _ = ()

(* The knot the wheel's intrusive cells require: a detached sentinel
   cell whose payload is a dead handle whose cell is the sentinel.
   Shared by every engine — the wheel never mutates its nil, so this is
   safe across campaign domains. *)
let rec nil_handle =
  {
    alive = false;
    queued = 0;
    fire = nop;
    period = -1;
    next_at = 0;
    cell = nil_cell;
    ctrs = { live = 0; env = Nil_env };
  }

and nil_cell =
  {
    Twheel.c_at = 0;
    c_seq = 0;
    c_payload = nil_handle;
    c_prev = nil_cell;
    c_next = nil_cell;
    c_lvl = -1;
  }

type pevent = { pat : Time.t; pseq : int; ph : handle }

module Eq = Pheap.Make (struct
  type t = pevent

  let compare a b =
    match Time.compare a.pat b.pat with
    | 0 -> Int.compare a.pseq b.pseq
    | c -> c
end)

(* Pheap backend only: cancelled events stay in the heap until popped —
   unless they come to dominate it, in which case the heap is rebuilt
   from the live events. (at, seq) ordering is total, so a rebuild can
   never change which event fires next. The wheel needs none of this:
   cancel unlinks its cell eagerly, so no dead cell is ever queued. *)
let dead_floor = 64

let make_pq () =
  let heap = ref Eq.empty in
  (* events physically queued, cancelled included *)
  let plen = ref 0 in
  let compact live =
    let dead = !plen - live in
    if dead >= dead_floor && dead * 2 > !plen then begin
      let keep =
        Eq.fold (fun acc ev -> if ev.ph.alive then ev :: acc else acc) [] !heap
      in
      heap := Eq.of_list keep;
      plen := live
    end
  in
  {
    pq_insert =
      (fun ~at ~seq h ~live ->
        heap := Eq.insert { pat = at; pseq = seq; ph = h } !heap;
        incr plen;
        compact live);
    pq_find_min =
      (fun () ->
        match Eq.find_min !heap with
        | None -> None
        | Some ev -> Some (ev.pat, ev.ph));
    pq_delete_min =
      (fun ~live ->
        (match Eq.delete_min !heap with
        | Some (_, rest) -> heap := rest
        | None -> ());
        decr plen;
        (* Checked on pop as well as push: a mass cancel followed by a
           pure drain must still shed its dead weight. *)
        compact live);
    pq_len = (fun () -> !plen);
  }

(* The process-wide default, so `--engine-backend` reaches every engine
   a campaign's worker domains create without threading a parameter
   through Runtime/Scenario/Campaign configs (whose records feed
   fingerprints). Set once at CLI parse time, before any domain spawns;
   read-only afterwards. *)
let default_backend_ref = ref Wheel
let set_default_backend b = default_backend_ref := b
let default_backend () = !default_backend_ref
let backend_name = function Wheel -> "wheel" | Pheap -> "pheap"

let backend_of_string = function
  | "wheel" -> Some Wheel
  | "pheap" -> Some Pheap
  | _ -> None

let create ?(seed = 1) ?backend ?obs () =
  let backend =
    match backend with Some b -> b | None -> !default_backend_ref
  in
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let counter name = Obs.Registry.counter (Obs.registry obs) Obs.Sim name in
  let c_cancelled = counter "engine.cancelled" in
  let q, env =
    match backend with
    | Wheel ->
      let w = Twheel.create ~nil:nil_cell () in
      (Qw w, Env { wq = Some w; c_cancelled })
    | Pheap -> (Qp (make_pq ()), Env { wq = None; c_cancelled })
  in
  {
    clock = Time.zero;
    q;
    next_seq = 0;
    processed = 0;
    ectrs = { live = 0; env };
    rng = Rng.create seed;
    obs;
    c_scheduled = counter "engine.scheduled";
    c_fired = counter "engine.fired";
    c_pool = counter "engine.pool-reuse";
    c_cells = counter "engine.cells";
  }

let backend_of t = match t.q with Qw _ -> Wheel | Qp _ -> Pheap
let now t = t.clock
let rng t = t.rng
let obs t = t.obs

let new_handle t =
  {
    alive = true;
    queued = 0;
    fire = nop;
    period = -1;
    next_at = 0;
    cell = nil_cell;
    ctrs = t.ectrs;
  }

let push t ~at h =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (match t.q with
   | Qw w ->
     (* A dead handle's re-arm (periodic task cancelled from inside its
        own callback) links nothing, but still consumed a sequence
        number above, so both backends assign identical seqs to
        identical op scripts — the differential harness depends on
        this. *)
     if h.alive then begin
       if Twheel.pool_ready w then Obs.Counter.incr t.c_pool
       else Obs.Counter.incr t.c_cells;
       h.cell <- Twheel.add w ~at ~seq h;
       h.queued <- h.queued + 1
     end
   | Qp p ->
     p.pq_insert ~at ~seq h ~live:t.ectrs.live;
     h.queued <- h.queued + 1);
  if h.alive then begin
    t.ectrs.live <- t.ectrs.live + 1;
    Obs.Counter.incr t.c_scheduled
  end

let schedule t ~at f =
  if Time.compare at t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%s is before now=%s"
         (Time.to_string at) (Time.to_string t.clock));
  let h = new_handle t in
  h.fire <- f;
  push t ~at h;
  h

let schedule_in t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(Time.add t.clock delay) f

let every t ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let start =
    match start with Some s -> s | None -> Time.add t.clock period
  in
  (* One handle guards every firing, so cancelling it also voids the
     firing already sitting in the queue. Re-arming is native (see
     [rearm]): it allocates nothing — on the wheel the freshly recycled
     cell is reused — and touches no state off the handle record. *)
  let h = new_handle t in
  h.fire <- f;
  h.period <- period;
  h.next_at <- start;
  push t ~at:start h;
  h

let cancel h =
  if h.alive then begin
    h.alive <- false;
    h.ctrs.live <- h.ctrs.live - h.queued;
    match h.ctrs.env with
    | Nil_env -> ()
    | Env e ->
      if h.queued > 0 then Obs.Counter.add e.c_cancelled h.queued;
      (match e.wq with
       | Some w ->
         if h.cell != nil_cell then begin
           ignore (Twheel.unlink w h.cell : bool);
           h.cell <- nil_cell;
           h.queued <- 0
         end
       | None -> ())
  end

(* Periodic re-arm, after the callback returns (so events the callback
   scheduled take earlier seqs, exactly as the closure-based re-arm
   did). Unconditional on liveness: a handle cancelled from inside its
   own callback still consumes a sequence number here, keeping seq
   assignment identical across backends. *)
let rearm t h =
  if h.period >= 0 then begin
    h.next_at <- Time.add h.next_at h.period;
    push t ~at:h.next_at h
  end

(* Cancel unlinks wheel cells eagerly, so a popped cell is always
   live. Recycle before firing: a re-arm inside [h.fire] then reuses
   this very cell. *)
let fire_cell t w (c : handle Twheel.cell) =
  let h = c.Twheel.c_payload in
  let at = c.Twheel.c_at in
  h.cell <- nil_cell;
  h.queued <- h.queued - 1;
  Twheel.recycle w c;
  t.clock <- at;
  t.ectrs.live <- t.ectrs.live - 1;
  t.processed <- t.processed + 1;
  Obs.Counter.incr t.c_fired;
  h.fire t;
  rearm t h

(* Fire the next live event at or before [horizon]. Dead pheap events
   encountered on the way are dropped silently, without advancing the
   clock — observable behavior (clock, counters, firing order) is
   identical across backends; only physical queue occupancy differs. *)
let step_until t ~horizon =
  match t.q with
  | Qw w ->
    let c = Twheel.pop_at_most w ~horizon in
    if c == nil_cell then false
    else begin
      fire_cell t w c;
      true
    end
  | Qp p ->
    let rec pop () =
      match p.pq_find_min () with
      | None -> false
      | Some (at, h) ->
        if Time.compare at horizon > 0 then false
        else begin
          p.pq_delete_min ~live:t.ectrs.live;
          h.queued <- h.queued - 1;
          if h.alive then begin
            t.clock <- at;
            t.ectrs.live <- t.ectrs.live - 1;
            t.processed <- t.processed + 1;
            Obs.Counter.incr t.c_fired;
            h.fire t;
            rearm t h;
            true
          end
          else pop ()
        end
    in
    pop ()

let step t = step_until t ~horizon:Time.infinity

let run ?(until = Time.infinity) t =
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at:t.clock Obs.Sim (Obs.Run_started { until });
  let rec loop () = if step_until t ~horizon:until then loop () in
  loop ();
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at:t.clock Obs.Sim
      (Obs.Run_finished { events = t.processed })

let events_processed t = t.processed
let pending t = t.ectrs.live

let pending_cells t =
  match t.q with Qw w -> Twheel.length w | Qp p -> p.pq_len ()
