open Btr_util
module Obs = Btr_obs.Obs

(* A handle carries the shared live-event counter rather than the engine
   itself: the event type sits inside the pairing-heap functor, so
   pointing handles at [t] would close a type cycle through [Eq.t]. *)
type counters = { mutable live : int }

type handle = { mutable alive : bool; mutable queued : int; ctrs : counters }

type event = { at : Time.t; seq : int; fire : unit -> unit; handle : handle }

module Eq = Pheap.Make (struct
  type t = event

  let compare a b =
    match Time.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c
end)

type t = {
  mutable clock : Time.t;
  mutable queue : Eq.t;
  mutable queue_len : int;  (* events physically queued, cancelled included *)
  mutable next_seq : int;
  mutable processed : int;
  ctrs : counters;
  rng : Rng.t;
  obs : Obs.t;
}

let create ?(seed = 1) ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    clock = Time.zero;
    queue = Eq.empty;
    queue_len = 0;
    next_seq = 0;
    processed = 0;
    ctrs = { live = 0 };
    rng = Rng.create seed;
    obs;
  }

let now t = t.clock
let rng t = t.rng
let obs t = t.obs

let new_handle t = { alive = true; queued = 0; ctrs = t.ctrs }

(* Cancelled events stay in the heap until popped — unless they come to
   dominate it. Long campaigns cancel periodic work wholesale (mode
   switches, teardown), and every comparison a trial's hot loop makes
   against a dead event is pure waste, so once the dead fraction crosses
   1/2 (with a floor that keeps small queues out of it) the heap is
   rebuilt from the live events only. (at, seq) ordering is total, so a
   rebuild can never change which event fires next. *)
let dead_floor = 64

let maybe_compact t =
  let dead = t.queue_len - t.ctrs.live in
  if dead >= dead_floor && dead * 2 > t.queue_len then begin
    let keep =
      Eq.fold (fun acc ev -> if ev.handle.alive then ev :: acc else acc) [] t.queue
    in
    t.queue <- Eq.of_list keep;
    t.queue_len <- t.ctrs.live
  end

let push t ~at h fire =
  t.queue <- Eq.insert { at; seq = t.next_seq; fire; handle = h } t.queue;
  t.next_seq <- t.next_seq + 1;
  t.queue_len <- t.queue_len + 1;
  h.queued <- h.queued + 1;
  if h.alive then t.ctrs.live <- t.ctrs.live + 1;
  maybe_compact t

let schedule t ~at f =
  if Time.compare at t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%s is before now=%s"
         (Time.to_string at) (Time.to_string t.clock));
  let h = new_handle t in
  push t ~at h (fun () -> f t);
  h

let schedule_in t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(Time.add t.clock delay) f

let every t ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let start =
    match start with Some s -> s | None -> Time.add t.clock period
  in
  (* One handle guards every firing, so cancelling it also voids the
     firing already sitting in the queue; one closure serves every
     firing (the armed time lives in [next]), so re-arming allocates
     only the event itself. *)
  let h = new_handle t in
  let next = ref start in
  let rec tick () =
    f t;
    next := Time.add !next period;
    push t ~at:!next h tick
  in
  push t ~at:start h tick;
  h

let cancel h =
  if h.alive then begin
    h.alive <- false;
    h.ctrs.live <- h.ctrs.live - h.queued
  end

let step t =
  match Eq.delete_min t.queue with
  | None -> false
  | Some (ev, rest) ->
    t.queue <- rest;
    t.queue_len <- t.queue_len - 1;
    let h = ev.handle in
    h.queued <- h.queued - 1;
    (* Checked on pop as well as push: a mass cancel followed by a pure
       drain (no further pushes) must still shed its dead weight. *)
    maybe_compact t;
    t.clock <- ev.at;
    if h.alive then begin
      t.ctrs.live <- t.ctrs.live - 1;
      t.processed <- t.processed + 1;
      ev.fire ()
    end;
    true

let run ?(until = Time.infinity) t =
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at:t.clock Obs.Sim (Obs.Run_started { until });
  let rec loop () =
    match Eq.find_min t.queue with
    | None -> ()
    | Some ev ->
      if Time.compare ev.at until > 0 then ()
      else if step t then loop ()
  in
  loop ();
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at:t.clock Obs.Sim
      (Obs.Run_finished { events = t.processed })

let events_processed t = t.processed
let pending t = t.ctrs.live
