open Btr_util
module Obs = Btr_obs.Obs

type event = { at : Time.t; seq : int; fire : unit -> unit; cancelled : bool ref }

module Eq = Pheap.Make (struct
  type t = event

  let compare a b =
    match Time.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c
end)

type t = {
  mutable clock : Time.t;
  mutable queue : Eq.t;
  mutable next_seq : int;
  mutable processed : int;
  rng : Rng.t;
  obs : Obs.t;
}

type handle = bool ref

let create ?(seed = 1) ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    clock = Time.zero;
    queue = Eq.empty;
    next_seq = 0;
    processed = 0;
    rng = Rng.create seed;
    obs;
  }

let now t = t.clock
let rng t = t.rng
let obs t = t.obs

let push t ~at ?cancelled fire =
  let cancelled = match cancelled with Some c -> c | None -> ref false in
  t.queue <- Eq.insert { at; seq = t.next_seq; fire; cancelled } t.queue;
  t.next_seq <- t.next_seq + 1;
  cancelled

let schedule t ~at f =
  if Time.compare at t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%s is before now=%s"
         (Time.to_string at) (Time.to_string t.clock));
  push t ~at (fun () -> f t)

let schedule_in t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(Time.add t.clock delay) f

let every t ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let start =
    match start with Some s -> s | None -> Time.add t.clock period
  in
  (* Every armed firing shares the one [stopped] ref as its per-event
     cancel flag, so cancelling the handle also voids the firing already
     sitting in the queue instead of leaving it live until its time. *)
  let stopped = ref false in
  let rec arm at =
    ignore
      (push t ~at ~cancelled:stopped (fun () ->
           f t;
           arm (Time.add at period)))
  in
  arm start;
  stopped

let cancel h = h := true

let step t =
  match Eq.delete_min t.queue with
  | None -> false
  | Some (ev, rest) ->
    t.queue <- rest;
    t.clock <- ev.at;
    if not !(ev.cancelled) then begin
      t.processed <- t.processed + 1;
      ev.fire ()
    end;
    true

let run ?(until = Time.infinity) t =
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at:t.clock Obs.Sim (Obs.Run_started { until });
  let rec loop () =
    match Eq.find_min t.queue with
    | None -> ()
    | Some ev ->
      if Time.compare ev.at until > 0 then ()
      else if step t then loop ()
  in
  loop ();
  if Obs.enabled t.obs then
    Obs.emit t.obs ~at:t.clock Obs.Sim
      (Obs.Run_finished { events = t.processed })

let events_processed t = t.processed

let pending t =
  Eq.fold (fun acc ev -> if !(ev.cancelled) then acc else acc + 1) 0 t.queue
