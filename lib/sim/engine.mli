(** Deterministic discrete-event simulation engine.

    Drives everything in this repository: the network, node schedulers,
    plants, fault injection and the BTR runtime all execute as events on
    one engine. Execution order is total and reproducible: events fire
    in (time, insertion sequence) order, and all randomness flows from
    the engine's seeded {!Btr_util.Rng.t}.

    Telemetry flows through the engine's {!Btr_obs.Obs.t} context:
    every layer holding the engine reaches the event sinks and the
    metric registry via {!obs}, so one context covers the whole
    deployment. The default context has a null sink — counters work,
    events cost one branch. *)

open Btr_util
module Obs = Btr_obs.Obs

type t

type handle
(** A scheduled event that can be cancelled before it fires. *)

type backend =
  | Wheel  (** hierarchical timing wheel ({!Btr_util.Twheel}) — default *)
  | Pheap  (** pairing heap — reference backend for differential testing *)

(** The two backends are observably equivalent: identical (time, seq)
    firing order, clock trajectory, {!pending} counts and obs counters
    for any op sequence — a property the differential harness in
    [test/test_wheel.ml] holds over random op scripts. The wheel is the
    production backend (O(1) amortized insert/extract, pooled cells,
    O(1) cancel); the heap is retained as the independently-simple
    oracle. *)

val set_default_backend : backend -> unit
(** Backend used by {!create} when [?backend] is omitted — process-wide,
    so one CLI flag reaches the engines created inside campaign worker
    domains. Set it before spawning work; initial value is {!Wheel}. *)

val default_backend : unit -> backend
val backend_of_string : string -> backend option
val backend_name : backend -> string

val backend_of : t -> backend
(** The backend this engine was created with. *)

val create : ?seed:int -> ?backend:backend -> ?obs:Obs.t -> unit -> t
(** [create ~seed ()] makes an engine at time 0. Default seed is 1;
    default [backend] is {!default_backend}; default [obs] is a fresh
    null-sink context ({!Obs.create}). *)

val now : t -> Time.t
val rng : t -> Rng.t

val obs : t -> Obs.t
(** The engine's observability context (shared by all layers built on
    this engine). *)

val schedule : t -> at:Time.t -> (t -> unit) -> handle
(** [schedule t ~at f] runs [f t] when simulated time reaches [at].
    Raises [Invalid_argument] if [at] is in the past. *)

val schedule_in : t -> delay:Time.t -> (t -> unit) -> handle
(** [schedule_in t ~delay f] is [schedule t ~at:(now t + delay) f].
    Requires [delay >= 0]. *)

val every : t -> period:Time.t -> ?start:Time.t -> (t -> unit) -> handle
(** Periodic event, first firing at [start] (default: next period
    boundary from now). Cancelling the handle stops future firings and
    also voids the already-queued next firing ({!pending} reflects it
    immediately). *)

val cancel : handle -> unit
(** Idempotent; a cancelled event is skipped when its time comes. *)

val step : t -> bool
(** Fires the next live pending event. [false] if none remained.
    Cancelled events are dropped silently without advancing the
    clock, on both backends. *)

val run : ?until:Time.t -> t -> unit
(** Processes events until the queue drains or simulated time would
    exceed [until]. Events at exactly [until] still fire. Emits
    [Run_started]/[Run_finished] events when tracing is enabled. *)

val events_processed : t -> int

val pending : t -> int
(** Queued events that are still live (cancelled ones excluded). O(1):
    maintained as a counter on push/cancel/step, exact at all times,
    identical across backends. *)

val pending_cells : t -> int
(** Physical queue occupancy, cancelled events included. On the wheel
    backend this equals {!pending} at all times — cancellation unlinks
    its cell in O(1), so drain cost scales with live events only. On
    the pheap backend dead events linger until popped or compacted
    (compaction triggers once they dominate; it cannot reorder firings
    because the (time, sequence) order is total). *)
