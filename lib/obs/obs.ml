open Btr_util

type subsystem =
  | Sim
  | Net
  | Sched
  | Runtime
  | Detect
  | Evidence
  | Modeswitch
  | Fault
  | Plant
  | Baseline
  | Check
  | Campaign

let subsystem_name = function
  | Sim -> "sim"
  | Net -> "net"
  | Sched -> "sched"
  | Runtime -> "runtime"
  | Detect -> "detect"
  | Evidence -> "evidence"
  | Modeswitch -> "modeswitch"
  | Fault -> "fault"
  | Plant -> "plant"
  | Baseline -> "baseline"
  | Check -> "check"
  | Campaign -> "campaign"

type payload =
  | Run_started of { until : Time.t }
  | Run_finished of { events : int }
  | Msg_sent of { src : int; dst : int; cls : string; bytes : int }
  | Msg_delivered of {
      src : int;
      dst : int;
      cls : string;
      bytes : int;
      latency : Time.t;
      hops : int;
    }
  | Msg_lost of { src : int; dst : int; cls : string }
  | Relay_dropped of { relay : int; src : int; dst : int; cls : string }
  | Lane_exec of { task : int; period : int; role : string }
  | Checker_replay of { task : int; lane : int; period : int; ok : bool }
  | Watchdog_late of {
      flow : int;
      period : int;
      from_node : int;
      lateness : Time.t;
    }
  | Watchdog_missing of { flow : int; period : int; from_node : int }
  | Watchdog_suspect of {
      flow : int;
      period : int;
      from_node : int;
      account : int;
    }
  | Corroborated of { sender : int; watchers : int }
  | Evidence_emitted of {
      accused : string;
      fault_class : string;
      period : int;
    }
  | Evidence_admitted of {
      verdict : string;
      detector : int;
      accused : string;
    }
  | Mode_staged of { faulty : int list }
  | Mode_activated of { faulty : int list; latency : Time.t }
  | Fault_injected of { behavior : string }
  | Delivery of { flow : int; period : int; lane : int }
  | Shed of { flow : int; period : int }
  | Verdict of { flow : int; period : int; status : string }
  | Standby_activated of { task : int; period : int }
  | Audit_exposed of { node : int }
  | Check_diagnostic of { code : string; severity : string; detail : string }
  | Campaign_started of { trials : int; configs : int }
  | Trial_verdict of { trial : int; verdict : string }
  | Violation_shrunk of { trial : int; events_before : int; events_after : int }
  | Campaign_sharded of { shard : int; shards : int; trials : int }
  | Campaign_resumed of { skipped : int; remaining : int }
  | Frontier_located of {
      slice : int;
      axis : string;
      boundary : int;
      probes : int;
    }
  | Note of { what : string; detail : string }

type event = {
  at : Time.t;
  seq : int;
  sub : subsystem;
  node : int;
  payload : payload;
}

(* ------------------------------------------------------------------ *)
(* Counters, gauges, registry                                           *)

module Counter = struct
  type t = { name : string; mutable value : int }

  let name c = c.name
  let value c = c.value
  let incr c = c.value <- c.value + 1
  let add c n = c.value <- c.value + n
end

module Gauge = struct
  type t = { name : string; mutable value : int }

  let name g = g.name
  let value g = g.value
  let set g v = g.value <- v
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    gauges : (string, Gauge.t) Hashtbl.t;
  }

  let create () = { counters = Hashtbl.create 32; gauges = Hashtbl.create 8 }

  let qualified sub name = subsystem_name sub ^ "." ^ name

  let counter t sub name =
    let q = qualified sub name in
    match Hashtbl.find_opt t.counters q with
    | Some c -> c
    | None ->
      let c = { Counter.name = q; value = 0 } in
      Hashtbl.replace t.counters q c;
      c

  let gauge t sub name =
    let q = qualified sub name in
    match Hashtbl.find_opt t.gauges q with
    | Some g -> g
    | None ->
      let g = { Gauge.name = q; value = 0 } in
      Hashtbl.replace t.gauges q g;
      g

  let counters t =
    Table.sorted_fold ~cmp:String.compare
      (fun k c acc -> (k, c.Counter.value) :: acc)
      t.counters []
    |> List.rev

  let gauges t =
    Table.sorted_fold ~cmp:String.compare
      (fun k g acc -> (k, g.Gauge.value) :: acc)
      t.gauges []
    |> List.rev

  let json_escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let to_json t =
    let b = Buffer.create 256 in
    let obj pairs =
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          json_escape b k;
          Buffer.add_string b "\":";
          Buffer.add_string b (string_of_int v))
        pairs;
      Buffer.add_char b '}'
    in
    Buffer.add_string b "{\"counters\":";
    obj (counters t);
    Buffer.add_string b ",\"gauges\":";
    obj (gauges t);
    Buffer.add_char b '}';
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* JSON event encoding                                                  *)

let payload_tag = function
  | Run_started _ -> "run-started"
  | Run_finished _ -> "run-finished"
  | Msg_sent _ -> "msg-sent"
  | Msg_delivered _ -> "msg-delivered"
  | Msg_lost _ -> "msg-lost"
  | Relay_dropped _ -> "relay-dropped"
  | Lane_exec _ -> "lane-exec"
  | Checker_replay _ -> "checker-replay"
  | Watchdog_late _ -> "watchdog-late"
  | Watchdog_missing _ -> "watchdog-missing"
  | Watchdog_suspect _ -> "watchdog-suspect"
  | Corroborated _ -> "corroborated"
  | Evidence_emitted _ -> "evidence-emitted"
  | Evidence_admitted _ -> "evidence-admitted"
  | Mode_staged _ -> "mode-staged"
  | Mode_activated _ -> "mode-activated"
  | Fault_injected _ -> "fault-injected"
  | Delivery _ -> "delivery"
  | Shed _ -> "shed"
  | Verdict _ -> "verdict"
  | Standby_activated _ -> "standby-activated"
  | Audit_exposed _ -> "audit-exposed"
  | Check_diagnostic _ -> "check-diagnostic"
  | Campaign_started _ -> "campaign-started"
  | Trial_verdict _ -> "trial-verdict"
  | Violation_shrunk _ -> "violation-shrunk"
  | Campaign_sharded _ -> "campaign-sharded"
  | Campaign_resumed _ -> "campaign-resumed"
  | Frontier_located _ -> "frontier-located"
  | Note _ -> "note"

let add_int b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":";
  Buffer.add_string b (string_of_int v)

let add_str b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":\"";
  Registry.json_escape b v;
  Buffer.add_char b '"'

let add_bool b key v =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b (if v then "\":true" else "\":false")

let add_int_list b key vs =
  Buffer.add_string b ",\"";
  Buffer.add_string b key;
  Buffer.add_string b "\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    vs;
  Buffer.add_char b ']'

let add_payload b = function
  | Run_started { until } ->
    if until = Time.infinity then add_int b "until" (-1)
    else add_int b "until" until
  | Run_finished { events } -> add_int b "events" events
  | Msg_sent { src; dst; cls; bytes } ->
    add_int b "src" src;
    add_int b "dst" dst;
    add_str b "cls" cls;
    add_int b "bytes" bytes
  | Msg_delivered { src; dst; cls; bytes; latency; hops } ->
    add_int b "src" src;
    add_int b "dst" dst;
    add_str b "cls" cls;
    add_int b "bytes" bytes;
    add_int b "latency" latency;
    add_int b "hops" hops
  | Msg_lost { src; dst; cls } ->
    add_int b "src" src;
    add_int b "dst" dst;
    add_str b "cls" cls
  | Relay_dropped { relay; src; dst; cls } ->
    add_int b "relay" relay;
    add_int b "src" src;
    add_int b "dst" dst;
    add_str b "cls" cls
  | Lane_exec { task; period; role } ->
    add_int b "task" task;
    add_int b "period" period;
    add_str b "role" role
  | Checker_replay { task; lane; period; ok } ->
    add_int b "task" task;
    add_int b "lane" lane;
    add_int b "period" period;
    add_bool b "ok" ok
  | Watchdog_late { flow; period; from_node; lateness } ->
    add_int b "flow" flow;
    add_int b "period" period;
    add_int b "from" from_node;
    add_int b "lateness" lateness
  | Watchdog_missing { flow; period; from_node } ->
    add_int b "flow" flow;
    add_int b "period" period;
    add_int b "from" from_node
  | Watchdog_suspect { flow; period; from_node; account } ->
    add_int b "flow" flow;
    add_int b "period" period;
    add_int b "from" from_node;
    add_int b "account" account
  | Corroborated { sender; watchers } ->
    add_int b "sender" sender;
    add_int b "watchers" watchers
  | Evidence_emitted { accused; fault_class; period } ->
    add_str b "accused" accused;
    add_str b "class" fault_class;
    add_int b "period" period
  | Evidence_admitted { verdict; detector; accused } ->
    add_str b "verdict" verdict;
    add_int b "detector" detector;
    add_str b "accused" accused
  | Mode_staged { faulty } -> add_int_list b "faulty" faulty
  | Mode_activated { faulty; latency } ->
    add_int_list b "faulty" faulty;
    add_int b "latency" latency
  | Fault_injected { behavior } -> add_str b "behavior" behavior
  | Delivery { flow; period; lane } ->
    add_int b "flow" flow;
    add_int b "period" period;
    add_int b "lane" lane
  | Shed { flow; period } ->
    add_int b "flow" flow;
    add_int b "period" period
  | Verdict { flow; period; status } ->
    add_int b "flow" flow;
    add_int b "period" period;
    add_str b "status" status
  | Standby_activated { task; period } ->
    add_int b "task" task;
    add_int b "period" period
  | Audit_exposed { node } -> add_int b "exposed" node
  | Check_diagnostic { code; severity; detail } ->
    add_str b "code" code;
    add_str b "severity" severity;
    add_str b "detail" detail
  | Campaign_started { trials; configs } ->
    add_int b "trials" trials;
    add_int b "configs" configs
  | Trial_verdict { trial; verdict } ->
    add_int b "trial" trial;
    add_str b "verdict" verdict
  | Violation_shrunk { trial; events_before; events_after } ->
    add_int b "trial" trial;
    add_int b "before" events_before;
    add_int b "after" events_after
  | Campaign_sharded { shard; shards; trials } ->
    add_int b "shard" shard;
    add_int b "shards" shards;
    add_int b "trials" trials
  | Campaign_resumed { skipped; remaining } ->
    add_int b "skipped" skipped;
    add_int b "remaining" remaining
  | Frontier_located { slice; axis; boundary; probes } ->
    add_int b "slice" slice;
    add_str b "axis" axis;
    add_int b "boundary" boundary;
    add_int b "probes" probes
  | Note { what; detail } ->
    add_str b "what" what;
    add_str b "detail" detail

let encode_event b e =
  Buffer.add_string b "{\"t\":";
  Buffer.add_string b (string_of_int e.at);
  Buffer.add_string b ",\"seq\":";
  Buffer.add_string b (string_of_int e.seq);
  Buffer.add_string b ",\"sub\":\"";
  Buffer.add_string b (subsystem_name e.sub);
  Buffer.add_char b '"';
  if e.node >= 0 then add_int b "node" e.node;
  Buffer.add_string b ",\"ev\":\"";
  Buffer.add_string b (payload_tag e.payload);
  Buffer.add_char b '"';
  add_payload b e.payload;
  Buffer.add_char b '}'

let event_to_json e =
  let b = Buffer.create 128 in
  encode_event b e;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Sinks and contexts                                                   *)

type sink =
  | Null
  | Memory of { capacity : int; buf : event option array; mutable next : int }
  | Jsonl of { oc : out_channel; scratch : Buffer.t }

type t = { sink : sink; reg : Registry.t; mutable seq : int }

let null = { sink = Null; reg = Registry.create (); seq = 0 }
let create () = { sink = Null; reg = Registry.create (); seq = 0 }

let with_memory ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Obs.with_memory: capacity < 1";
  {
    sink = Memory { capacity; buf = Array.make capacity None; next = 0 };
    reg = Registry.create ();
    seq = 0;
  }

let with_jsonl oc =
  { sink = Jsonl { oc; scratch = Buffer.create 256 }; reg = Registry.create (); seq = 0 }

let enabled t = t.sink <> Null

let emit t ~at ?(node = -1) sub payload =
  match t.sink with
  | Null -> ()
  | Memory m ->
    let e = { at; seq = t.seq; sub; node; payload } in
    t.seq <- t.seq + 1;
    m.buf.(m.next mod m.capacity) <- Some e;
    m.next <- m.next + 1
  | Jsonl { oc; scratch } ->
    let e = { at; seq = t.seq; sub; node; payload } in
    t.seq <- t.seq + 1;
    Buffer.clear scratch;
    encode_event scratch e;
    Buffer.add_char scratch '\n';
    Buffer.output_buffer oc scratch

let events t =
  match t.sink with
  | Null | Jsonl _ -> []
  | Memory m ->
    let first = Stdlib.max 0 (m.next - m.capacity) in
    List.filter_map
      (fun i -> m.buf.(i mod m.capacity))
      (List.init (m.next - first) (fun k -> first + k))

let registry t = t.reg
let flush t = match t.sink with Jsonl { oc; _ } -> Stdlib.flush oc | _ -> ()
let metrics_json t = Registry.to_json t.reg
