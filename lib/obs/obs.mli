(** Structured observability: typed events, metric registry, sinks.

    Every layer of the stack — engine, network, runtime, detector,
    evidence distributor, mode switcher, baselines — reports through one
    of these contexts instead of ad-hoc [Printf]/string traces, so the
    bounded-time claims of the paper (recovery within R, evidence
    flooded within its reserved-bandwidth bound, mode switches at period
    boundaries) can be audited from a single machine-readable stream.

    Two kinds of telemetry coexist:

    - {b events}: timestamped variant records tagged with a subsystem
      and (when meaningful) a node id, recorded only when a sink is
      attached ({!enabled}). With the default null sink the emit path
      is a single branch — no closures, no formatting, no allocation —
      so instrumented hot paths cost nothing when tracing is off. Call
      sites therefore guard construction:
      [if Obs.enabled obs then Obs.emit obs ~at ... (Msg_sent ...)].
    - {b counters/gauges}: always-on monotonic integers grouped in a
      per-context {!Registry}; incrementing is one field write.

    Sinks: [null] (drop), in-memory ring buffer (keeps the last
    [capacity] events, for tests and examples), and a JSONL writer
    (one JSON object per line, deterministic byte-for-byte given a
    deterministic simulation). *)

open Btr_util

type subsystem =
  | Sim
  | Net
  | Sched
  | Runtime
  | Detect
  | Evidence
  | Modeswitch
  | Fault
  | Plant
  | Baseline
  | Check  (** the static plan verifier ({!Btr_check}) *)
  | Campaign  (** the fault-injection campaign engine ({!Btr_campaign}) *)

val subsystem_name : subsystem -> string
(** Lowercase stable name, used in JSON output and metric names. *)

(** The event taxonomy. Payload fields are integers, strings and
    simulated times only, so JSONL output needs no float formatting and
    stays byte-deterministic. *)
type payload =
  | Run_started of { until : Time.t }
      (** the engine began draining its queue *)
  | Run_finished of { events : int }  (** queue drained or horizon hit *)
  | Msg_sent of { src : int; dst : int; cls : string; bytes : int }
  | Msg_delivered of {
      src : int;
      dst : int;
      cls : string;
      bytes : int;
      latency : Time.t;
      hops : int;
    }
  | Msg_lost of { src : int; dst : int; cls : string }
      (** residual (post-FEC) loss on a hop *)
  | Relay_dropped of { relay : int; src : int; dst : int; cls : string }
      (** a Byzantine relay refused to forward *)
  | Lane_exec of { task : int; period : int; role : string }
      (** a scheduled task slot ran on the emitting node *)
  | Checker_replay of { task : int; lane : int; period : int; ok : bool }
      (** a checker replayed a lane's computation (§4.2) *)
  | Watchdog_late of {
      flow : int;
      period : int;
      from_node : int;
      lateness : Time.t;
    }
  | Watchdog_missing of { flow : int; period : int; from_node : int }
      (** an expected message never arrived within deadline + margin *)
  | Watchdog_suspect of {
      flow : int;
      period : int;
      from_node : int;
      account : int;
    }
      (** a sender's strike account is above zero but below the
          declaration threshold — grounds for corroboration, not for a
          declaration on its own *)
  | Corroborated of { sender : int; watchers : int }
      (** [watchers] distinct watchers' sub-threshold suspicions of
          [sender] combined into omission-grade path evidence *)
  | Evidence_emitted of {
      accused : string;
      fault_class : string;
      period : int;
    }
  | Evidence_admitted of {
      verdict : string;
      detector : int;
      accused : string;
    }  (** a received record was validated: fresh/duplicate/invalid *)
  | Mode_staged of { faulty : int list }
      (** the node picked its next plan and began the transition *)
  | Mode_activated of { faulty : int list; latency : Time.t }
      (** the pending plan took effect; [latency] is measured from the
          evidence arrival that triggered staging (§4.4 switch time) *)
  | Fault_injected of { behavior : string }
  | Delivery of { flow : int; period : int; lane : int }
      (** a sink acted on a value (which replica lane won) *)
  | Shed of { flow : int; period : int }
      (** the mode intentionally does not produce this output *)
  | Verdict of { flow : int; period : int; status : string }
      (** per-period output judgment against the golden executor *)
  | Standby_activated of { task : int; period : int }
      (** ZZ-style reactive activation in a baseline *)
  | Audit_exposed of { node : int }
      (** a self-stabilization audit caught a faulty node *)
  | Check_diagnostic of { code : string; severity : string; detail : string }
      (** a static-verification finding (code like [BTR-E303]) *)
  | Campaign_started of { trials : int; configs : int }
      (** a fault-injection campaign compiled its trial list; [configs]
          is the parameter-grid size (worker count is deliberately not
          recorded: traces are identical for any [--jobs]) *)
  | Trial_verdict of { trial : int; verdict : string }
      (** one campaign trial finished: [pass]/[violation]/[rejected] *)
  | Violation_shrunk of { trial : int; events_before : int; events_after : int }
      (** the shrinker minimized a bound violation's fault schedule *)
  | Campaign_sharded of { shard : int; shards : int; trials : int }
      (** an orchestrated run selected its deterministic shard: [trials]
          of the full grid's trial list hash to shard [shard] of
          [shards] *)
  | Campaign_resumed of { skipped : int; remaining : int }
      (** a resumed run found [skipped] verdicts already recorded in the
          artifact and has [remaining] trials left to execute *)
  | Frontier_located of {
      slice : int;
      axis : string;
      boundary : int;  (** admit-side axis value, or -1 when the slice
                           has no admit/violate crossing in range *)
      probes : int;
    }  (** adaptive frontier search finished one config slice *)
  | Note of { what : string; detail : string }
      (** escape hatch for one-off annotations; keep rare *)

type event = {
  at : Time.t;
  seq : int;  (** emission order, unique per context *)
  sub : subsystem;
  node : int;  (** emitting node, or -1 when not node-specific *)
  payload : payload;
}

(** {1 Counters and gauges} *)

module Counter : sig
  type t

  val name : t -> string
  val value : t -> int
  val incr : t -> unit
  val add : t -> int -> unit
end

module Gauge : sig
  type t

  val name : t -> string
  val value : t -> int
  val set : t -> int -> unit
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> subsystem -> string -> Counter.t
  (** Get-or-create by qualified name [subsystem.name]. *)

  val gauge : t -> subsystem -> string -> Gauge.t

  val counters : t -> (string * int) list
  (** Sorted by qualified name. *)

  val gauges : t -> (string * int) list

  val to_json : t -> string
  (** [{"counters":{...},"gauges":{...}}], keys sorted. *)
end

(** {1 Contexts} *)

type t

val null : t
(** Shared always-disabled context: events dropped, registry live but
    shared by every user of [null] — prefer {!create} for anything whose
    counters you intend to read. *)

val create : unit -> t
(** Fresh context with a null sink and its own registry: counters work,
    events are dropped for free. The engine's default. *)

val with_memory : ?capacity:int -> unit -> t
(** Ring buffer keeping the last [capacity] (default 65536) events. *)

val with_jsonl : out_channel -> t
(** Streams each event as one JSON line; call {!flush} when done. The
    channel is not closed by this module. *)

val enabled : t -> bool
(** [true] iff a recording sink is attached. Guard event construction
    with this so the disabled path allocates nothing. *)

val emit : t -> at:Time.t -> ?node:int -> subsystem -> payload -> unit
(** Records an event (no-op when not {!enabled}). [node] defaults to -1
    (not node-specific). *)

val events : t -> event list
(** Memory sink contents, oldest first; [] for other sinks. *)

val registry : t -> Registry.t
val flush : t -> unit

(** {1 Encoding} *)

val event_to_json : event -> string
(** One-line JSON object: ["{\"t\":<us>,\"seq\":n,\"sub\":...,\"node\":n,\"ev\":...,<payload fields>}"].
    [node] is omitted when -1. *)

val metrics_json : t -> string
(** The context registry's {!Registry.to_json}. *)
