open Btr_util
module Auth = Btr_crypto.Auth
module Evidence = Btr_evidence.Evidence

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setup () =
  let auth = Auth.create () in
  let k0 = Auth.gen_key auth ~owner:0 in
  let k1 = Auth.gen_key auth ~owner:1 in
  (auth, k0, k1)

let stmt ?(detector = 0) ?(accused = Evidence.Node 3) () =
  {
    Evidence.accused;
    fault_class = Evidence.Wrong_value;
    detector;
    period = 7;
    detected_at = Time.ms 140;
    detail = "replay mismatch";
  }

let test_sign_validate () =
  let auth, k0, _ = setup () in
  let r = Evidence.sign auth k0 (stmt ()) in
  check_bool "validates" true (Evidence.validate auth r)

let test_wrong_signer_rejected () =
  let auth, _, k1 = setup () in
  Alcotest.check_raises "cannot sign as another node"
    (Invalid_argument "Evidence.sign: detector must sign its own statements")
    (fun () -> ignore (Evidence.sign auth k1 (stmt ~detector:0 ())))

let test_tampered_rejected () =
  let auth, k0, _ = setup () in
  let r = Evidence.sign auth k0 (stmt ()) in
  let tampered =
    { r with Evidence.statement = { r.Evidence.statement with Evidence.period = 8 } }
  in
  check_bool "tampered statement fails" false (Evidence.validate auth tampered)

let test_forged_rejected () =
  let auth, _, _ = setup () in
  let r = { Evidence.statement = stmt (); tag = Auth.forge_tag () } in
  check_bool "forged tag fails" false (Evidence.validate auth r)

let test_path_normalized () =
  (match Evidence.path 5 2 with
  | Evidence.Path (2, 5) -> ()
  | _ -> Alcotest.fail "path not normalized");
  check_bool "encode equal for both orders" true
    (Evidence.encode (stmt ~accused:(Evidence.path 5 2) ())
    = Evidence.encode (stmt ~accused:(Evidence.path 2 5) ()))

let test_encode_injective () =
  let variants =
    [
      stmt ();
      stmt ~detector:1 ();
      stmt ~accused:(Evidence.Node 4) ();
      stmt ~accused:(Evidence.path 0 3) ();
      { (stmt ()) with Evidence.period = 8 };
      { (stmt ()) with Evidence.fault_class = Evidence.Timing };
      { (stmt ()) with Evidence.detail = "other" };
      { (stmt ()) with Evidence.detected_at = Time.ms 141 };
    ]
  in
  let encodings = List.map Evidence.encode variants in
  check_int "all encodings distinct" (List.length variants)
    (List.length (List.sort_uniq String.compare encodings))

let test_distributor_fresh_then_duplicate () =
  let auth, k0, _ = setup () in
  let d = Evidence.Distributor.create ~node:1 () in
  let r = Evidence.sign auth k0 (stmt ()) in
  check_bool "fresh" true (Evidence.Distributor.admit d auth r = Evidence.Distributor.Fresh);
  check_bool "duplicate" true
    (Evidence.Distributor.admit d auth r = Evidence.Distributor.Duplicate);
  check_int "seen once" 1 (List.length (Evidence.Distributor.seen d))

let test_distributor_invalid_counted () =
  let auth, _, _ = setup () in
  let d = Evidence.Distributor.create ~node:1 () in
  let bogus = { Evidence.statement = stmt ~detector:0 (); tag = Auth.forge_tag () } in
  check_bool "invalid" true
    (Evidence.Distributor.admit d auth bogus = Evidence.Distributor.Invalid);
  check_int "counted against claimed signer" 1
    (Evidence.Distributor.invalid_count_from d 0);
  check_int "not admitted" 0 (List.length (Evidence.Distributor.seen d))

let test_already_sent () =
  let auth, k0, _ = setup () in
  let d = Evidence.Distributor.create ~node:0 () in
  let r = Evidence.sign auth k0 (stmt ()) in
  check_bool "first send allowed" false (Evidence.Distributor.already_sent d r ~dst:2);
  check_bool "second send suppressed" true (Evidence.Distributor.already_sent d r ~dst:2);
  check_bool "other destination allowed" false
    (Evidence.Distributor.already_sent d r ~dst:3)

let test_size_positive () =
  let auth, k0, _ = setup () in
  let r = Evidence.sign auth k0 (stmt ()) in
  check_bool "has a wire size" true (Evidence.size_bytes r > 16)

let prop_roundtrip =
  QCheck.Test.make ~name:"any well-formed statement signs and validates"
    ~count:200
    QCheck.(quad small_nat small_nat (int_bound 1000) (int_bound 3))
    (fun (accused, detector, period, cls) ->
      let auth = Auth.create () in
      let k = Auth.gen_key auth ~owner:detector in
      let fault_class =
        List.nth
          [ Evidence.Wrong_value; Evidence.Omission; Evidence.Timing; Evidence.Equivocation ]
          cls
      in
      let s =
        {
          Evidence.accused = Evidence.Node accused;
          fault_class;
          detector;
          period;
          detected_at = period * 1000;
          detail = "x";
        }
      in
      Evidence.validate auth (Evidence.sign auth k s))

let suite =
  [
    ("sign then validate", `Quick, test_sign_validate);
    ("cannot sign for another detector", `Quick, test_wrong_signer_rejected);
    ("tampering invalidates", `Quick, test_tampered_rejected);
    ("forged tags rejected", `Quick, test_forged_rejected);
    ("paths are unordered", `Quick, test_path_normalized);
    ("encoding is injective", `Quick, test_encode_injective);
    ("distributor: fresh then duplicate", `Quick, test_distributor_fresh_then_duplicate);
    ("distributor: invalid counted against signer", `Quick, test_distributor_invalid_counted);
    ("distributor: forward-once bookkeeping", `Quick, test_already_sent);
    ("records have a wire size", `Quick, test_size_positive);
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
