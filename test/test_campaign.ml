open Btr_util
module Campaign = Btr_campaign.Campaign
module Shrink = Btr_campaign.Shrink
module Task = Btr_workload.Task
module Fault = Btr_fault.Fault
module Obs = Btr_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- grids ---------------------------------------------------------- *)

let two_axis_grid =
  {
    Campaign.default_grid with
    Campaign.fault_bounds = [ 1; 2 ];
    control_shares = [ None; Some 0.005 ];
  }

let test_grid_cross_product () =
  check_int "singleton grid" 1 (List.length (Campaign.grid_params Campaign.default_grid));
  let ps = Campaign.grid_params two_axis_grid in
  check_int "2x2 grid" 4 (List.length ps);
  (* declaration order: f varies slower than control_share *)
  let fs = List.map (fun (p : Campaign.params) -> p.Campaign.f) ps in
  check_bool "f order" true (fs = [ 1; 1; 2; 2 ]);
  List.iter
    (fun (p : Campaign.params) ->
      check_int "nodes fixed" 6 p.Campaign.nodes;
      check_int "R fixed" (Time.ms 200) p.Campaign.r)
    ps

let test_grid_validation () =
  let ok g = Result.is_ok (Campaign.validate_grid g) in
  check_bool "default valid" true (ok Campaign.default_grid);
  check_bool "empty axis" false
    (ok { Campaign.default_grid with Campaign.workloads = [] });
  check_bool "unknown workload" false
    (ok { Campaign.default_grid with Campaign.workloads = [ "nosuch" ] });
  check_bool "unknown topology" false
    (ok { Campaign.default_grid with Campaign.topologies = [ "star" ] });
  check_bool "negative f" false
    (ok { Campaign.default_grid with Campaign.fault_bounds = [ -1 ] });
  check_bool "zero R" false
    (ok { Campaign.default_grid with Campaign.recovery_bounds = [ Time.zero ] });
  check_bool "share > 0.6" false
    (ok { Campaign.default_grid with Campaign.control_shares = [ Some 0.9 ] })

let test_classes_validation () =
  let ok g = Result.is_ok (Campaign.validate_grid g) in
  check_bool "empty classes" false
    (ok { Campaign.default_grid with Campaign.classes = [] });
  check_bool "unknown class" false
    (ok { Campaign.default_grid with Campaign.classes = [ "omitto"; "gray" ] });
  check_bool "single-class palette" true
    (ok { Campaign.default_grid with Campaign.classes = [ "omitto" ] })

let test_known_classes_complete () =
  check_int "seven behavior classes" 7 (List.length Campaign.known_classes);
  List.iter
    (fun c ->
      check_bool (c ^ " validates alone") true
        (Result.is_ok
           (Campaign.validate_grid
              { Campaign.default_grid with Campaign.classes = [ c ] })))
    Campaign.known_classes

let test_classes_restrict_scripts () =
  (* A single-class palette draws only that behavior, over many trials. *)
  let spec =
    Campaign.spec
      ~grid:{ Campaign.default_grid with Campaign.classes = [ "omitto" ] }
      ~trials:30 ~seed:11 ()
  in
  let events = ref 0 in
  List.iter
    (fun (t : Campaign.trial) ->
      List.iter
        (fun (e : Fault.event) ->
          incr events;
          match e.Fault.behavior with
          | Fault.Omit_to targets ->
            check_bool "omit-to targets nonempty" true (targets <> [])
          | _ -> Alcotest.fail "non-omitto event from an omitto-only palette")
        t.Campaign.script)
    (Campaign.compile spec);
  check_bool "palette actually produced events" true (!events > 0)

let test_classes_not_in_cross_product () =
  (* The classes axis shapes behavior generation, not the config grid. *)
  let n g = List.length (Campaign.grid_params g) in
  check_int "classes axis does not multiply configs"
    (n Campaign.default_grid)
    (n { Campaign.default_grid with Campaign.classes = [ "crash" ] })

(* --- compilation ---------------------------------------------------- *)

let test_compile_deterministic () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:12 ~seed:5 () in
  let a = Campaign.compile spec and b = Campaign.compile spec in
  check_int "trial count" 12 (List.length a);
  List.iter2
    (fun (x : Campaign.trial) (y : Campaign.trial) ->
      check_int "seed equal" x.Campaign.runtime_seed y.Campaign.runtime_seed;
      check_string "script equal"
        (Campaign.script_to_string x.Campaign.script)
        (Campaign.script_to_string y.Campaign.script))
    a b;
  (* round-robin over the grid *)
  List.iteri
    (fun i (t : Campaign.trial) ->
      check_int "trial index" i t.Campaign.index;
      let expected = List.nth (Campaign.grid_params two_axis_grid) (i mod 4) in
      check_int "config round-robin f" expected.Campaign.f t.Campaign.params.Campaign.f)
    a

let test_trial_of_index () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:9 ~seed:3 () in
  let all = Campaign.compile spec in
  List.iteri
    (fun i (t : Campaign.trial) ->
      match Campaign.trial_of_index spec i with
      | None -> Alcotest.failf "trial %d missing" i
      | Some u ->
        check_int "seed" t.Campaign.runtime_seed u.Campaign.runtime_seed;
        check_int "horizon" t.Campaign.horizon u.Campaign.horizon;
        check_string "script"
          (Campaign.script_to_string t.Campaign.script)
          (Campaign.script_to_string u.Campaign.script))
    all;
  check_bool "out of range" true (Campaign.trial_of_index spec 9 = None);
  check_bool "negative" true (Campaign.trial_of_index spec (-1) = None)

let test_scripts_respect_f () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:40 ~seed:9 () in
  List.iter
    (fun (t : Campaign.trial) ->
      let nodes =
        List.sort_uniq Int.compare
          (List.map (fun (e : Fault.event) -> e.Fault.node) t.Campaign.script)
      in
      check_bool "faulty nodes <= f" true
        (List.length nodes <= t.Campaign.params.Campaign.f);
      List.iter
        (fun (e : Fault.event) ->
          check_bool "event before horizon" true
            (Time.compare e.Fault.at t.Campaign.horizon < 0))
        t.Campaign.script)
    (Campaign.compile spec)

(* --- the schedule codec --------------------------------------------- *)

let test_codec_roundtrip_known () =
  let s = "babble.8@5@0;omitto.1.2@4@40000;corrupt@3@250000" in
  match Campaign.script_of_string s with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok script ->
    check_int "events" 3 (List.length script);
    check_string "canonical roundtrip" s (Campaign.script_to_string script)

let test_codec_rejects_garbage () =
  let bad = [ "frob@1@2"; "crash@x@2"; "crash@1"; "babble@1@2"; "delay.0@1@2"; "omitto@1@2" ] in
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Result.is_error (Campaign.script_of_string s)))
    bad;
  check_bool "empty script ok" true (Campaign.script_of_string "" = Ok [])

let prop_codec_roundtrip =
  (* generated trial scripts survive to_string/of_string unchanged *)
  QCheck.Test.make ~name:"codec roundtrips compiled scripts" ~count:30
    QCheck.(map (fun s -> abs s) small_int)
    (fun seed ->
      let spec = Campaign.spec ~grid:two_axis_grid ~trials:8 ~seed () in
      List.for_all
        (fun (t : Campaign.trial) ->
          let str = Campaign.script_to_string t.Campaign.script in
          match Campaign.script_of_string str with
          | Error _ -> false
          | Ok back -> Campaign.script_to_string back = str)
        (Campaign.compile spec))

(* --- determinism across worker counts ------------------------------- *)

let prop_jobs_invariant =
  (* The tentpole's regression guard: chunked index claiming and the
     sharded plan cache must preserve byte-identical artifacts (verdict
     lines, counters, fingerprint) for every worker count. Trial counts
     vary with the seed so the chunking edges (n < jobs, n = jobs,
     chunk > 1 remainders) all get exercised. *)
  QCheck.Test.make ~name:"artifacts identical for jobs in {1,2,4,8}" ~count:50
    QCheck.(map (fun s -> abs s) small_int)
    (fun seed ->
      let spec =
        Campaign.spec ~grid:two_axis_grid
          ~trials:(4 + (seed mod 5))
          ~seed ~shrink:false ()
      in
      let base = Campaign.run ~jobs:1 spec in
      let lines = Campaign.result_json_lines base in
      List.for_all
        (fun jobs -> Campaign.result_json_lines (Campaign.run ~jobs spec) = lines)
        [ 2; 4; 8 ])

let test_full_artifact_jobs_invariant () =
  (* the whole artifact must not depend on the worker count. This seed
     used to produce selective-omission violations; since the detector
     shares strikes per sender and lanes abstain on partial inputs, the
     statically-admitted default grid runs clean — which is itself the
     regression being pinned here (the conformance suite sweeps it
     exhaustively). *)
  let spec = Campaign.spec ~trials:10 ~seed:7 () in
  let a = Campaign.run ~jobs:1 spec and b = Campaign.run ~jobs:3 spec in
  check_bool "admitted grid runs clean" true (a.Campaign.violations = []);
  check_bool "artifacts identical" true
    (Campaign.result_json_lines a = Campaign.result_json_lines b);
  check_int "jobs recorded" 3 b.Campaign.jobs

let test_shrunk_violations_replay () =
  (* Generated scripts respect f, and admitted configs now survive every
     in-budget schedule — so a violation worth shrinking needs a script
     beyond the fault budget: two crashed nodes at f = 1. The shrunk
     script must replay standalone through a fresh cache. *)
  let script =
    match
      Campaign.script_of_string
        "crash@2@250000;babble.4@0@50000;crash@3@300000;delay.2000@4@100000"
    with
    | Ok s -> s
    | Error m -> Alcotest.failf "bad fixture: %s" m
  in
  let params = Campaign.default_params in
  let trial =
    { Campaign.index = 0; runtime_seed = 1; params; script; horizon = Time.sec 1 }
  in
  let cache = Campaign.Cache.create ~seed:1 in
  match Campaign.shrink_violation ~cache ~budget:150 trial with
  | None -> Alcotest.fail "two crashes at f=1 must violate"
  | Some s ->
    let cache2 = Campaign.Cache.create ~seed:1 in
    let outcome =
      Campaign.run_script ~cache:cache2 params ~runtime_seed:1 s.Campaign.script
    in
    check_bool "shrunk script still violates" true (Campaign.violates outcome);
    check_bool "no larger than source" true
      (List.length s.Campaign.script <= List.length script)

(* --- plan cache ------------------------------------------------------ *)

let test_plan_cache_shared () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:16 ~seed:2 ~shrink:false () in
  let result = Campaign.run ~jobs:1 spec in
  (* 4 configs -> 4 plans, everything else must hit *)
  check_int "misses = configs" 4 result.Campaign.cache_misses;
  check_bool "hits cover the rest" true (result.Campaign.cache_hits >= 12)

let test_cache_counters_exact () =
  (* The per-shard hit/miss counters are bumped under the shard lock
     and summed under the locks on read, so totals are exact, not
     best-effort: with shrinking off and a violation-free fixture the
     cache is consulted exactly once per trial, at any worker count. *)
  List.iter
    (fun jobs ->
      let spec =
        Campaign.spec ~grid:two_axis_grid ~trials:16 ~seed:2 ~shrink:false ()
      in
      let r = Campaign.run ~jobs spec in
      check_bool "fixture stays violation-free" true (r.Campaign.violations = []);
      check_int
        (Printf.sprintf "hits + misses = trials at jobs=%d" jobs)
        16
        (r.Campaign.cache_hits + r.Campaign.cache_misses);
      check_int
        (Printf.sprintf "misses = configs at jobs=%d" jobs)
        4 r.Campaign.cache_misses)
    [ 1; 4 ]

let test_cache_derives_r_neighbours () =
  (* Two grid points differing only in R share the R-stripped base: the
     second must be served by with_recovery_bound derivation, not a
     fresh plan. Both counts as misses (the full key was absent), and
     the derived strategy must verify and report the requested R. *)
  let cache = Campaign.Cache.create ~seed:1 in
  let base = Campaign.default_params in
  let tighter = { base with Campaign.r = Time.ms 150 } in
  (match Campaign.Cache.strategy cache base with
  | Error m -> Alcotest.failf "base params rejected: %s" m
  | Ok _ -> ());
  check_int "no derivation yet" 0 (Campaign.Cache.derived cache);
  (match Campaign.Cache.strategy cache tighter with
  | Error m -> Alcotest.failf "R-neighbour rejected: %s" m
  | Ok s ->
    check_int "derived strategy carries the requested R" (Time.ms 150)
      (Btr_planner.Planner.config s).Btr_planner.Planner.recovery_bound);
  check_int "second config was derived" 1 (Campaign.Cache.derived cache);
  check_int "both were cache misses" 2 (Campaign.Cache.misses cache);
  (* repeat lookups hit the full key, not the derivation path *)
  (match Campaign.Cache.strategy cache tighter with
  | Error m -> Alcotest.failf "repeat lookup failed: %s" m
  | Ok _ -> ());
  check_int "repeat is a plain hit" 1 (Campaign.Cache.derived cache);
  check_int "hits" 1 (Campaign.Cache.hits cache)

let test_plan_key_semantics () =
  let base = Campaign.default_params in
  let same = { base with Campaign.workload = "avionics" } in
  check_string "semantically equal params share a key"
    (Campaign.plan_key ~seed:1 base)
    (Campaign.plan_key ~seed:1 same);
  let shares = { base with Campaign.control_share = Some 0.02 } in
  let protect = { base with Campaign.protect = Task.High } in
  let faults = { base with Campaign.f = 2 } in
  List.iter
    (fun p ->
      check_bool "differing config differs" true
        (Campaign.plan_key ~seed:1 base <> Campaign.plan_key ~seed:1 p))
    [ shares; protect; faults ]

(* --- shrinking ------------------------------------------------------- *)

(* A deterministic violation: two crashed nodes exceed the f = 1 budget,
   so no plan covers them and the second crash's tasks stay missing to
   the horizon. (The historic fixture here — omitto.3.5@2@250000, a
   selective omission out-waiting detection — no longer violates: the
   detector closes it; test_conformance pins that.) Three noise events
   that each pass on their own ride along; the shrinker must strip down
   to a two-node budget breach. *)
let noisy_violation_script () =
  match
    Campaign.script_of_string
      "crash@2@250000;equivocate@1@400000;crash@3@300000;delay.2000@4@100000;babble.4@0@50000"
  with
  | Ok s -> s
  | Error m -> Alcotest.failf "bad fixture: %s" m

let test_shrinker_minimizes_known_violation () =
  let params = Campaign.default_params in
  let trial =
    {
      Campaign.index = 0;
      runtime_seed = 1;
      params;
      script = noisy_violation_script ();
      horizon = Time.sec 1;
    }
  in
  let cache = Campaign.Cache.create ~seed:1 in
  match Campaign.shrink_violation ~cache ~budget:150 trial with
  | None -> Alcotest.fail "fixture no longer violates"
  | Some s ->
    check_bool "shrunk to <= 3 events" true (List.length s.Campaign.script <= 3);
    check_bool "kept two distinct faulty nodes (the budget breach)" true
      (List.length
         (List.sort_uniq Int.compare
            (List.map (fun (e : Fault.event) -> e.Fault.node) s.Campaign.script))
      = 2);
    check_bool "snippet is a program" true
      (String.length s.Campaign.snippet > 0
      && String.sub s.Campaign.snippet 0 2 = "(*");
    (* replay through a fresh cache *)
    let cache2 = Campaign.Cache.create ~seed:1 in
    check_bool "replays to the same violation" true
      (Campaign.violates
         (Campaign.run_script ~cache:cache2 params ~runtime_seed:1
            s.Campaign.script))

let test_shrink_budget_zero_keeps_script () =
  let params = Campaign.default_params in
  let script = noisy_violation_script () in
  let trial =
    { Campaign.index = 0; runtime_seed = 1; params; script; horizon = Time.sec 1 }
  in
  let cache = Campaign.Cache.create ~seed:1 in
  match Campaign.shrink_violation ~cache ~budget:0 trial with
  | None -> Alcotest.fail "fixture no longer violates"
  | Some s ->
    check_int "unshrunk" (List.length script) (List.length s.Campaign.script);
    check_int "no runs" 0 s.Campaign.shrink_runs

let test_shrinker_unit () =
  (* pure predicate: violation iff a crash on node 0 is present *)
  let crash0 = { Fault.at = Time.ms 7; node = 0; behavior = Fault.Crash } in
  let noise =
    [
      { Fault.at = Time.ms 1; node = 1; behavior = Fault.Equivocate };
      { Fault.at = Time.ms 2; node = 2; behavior = Fault.Babble { bogus_per_period = 8 } };
      { Fault.at = Time.ms 3; node = 3; behavior = Fault.Omit_outputs };
      { Fault.at = Time.ms 4; node = 4; behavior = Fault.Corrupt_outputs };
    ]
  in
  let violates s =
    List.exists
      (fun (e : Fault.event) ->
        e.Fault.node = 0 && e.Fault.behavior = Fault.Crash)
      s
  in
  let r = Shrink.minimize ~violates ~round_to:(Time.ms 5) (noise @ [ crash0 ]) in
  check_int "single event left" 1 (List.length r.Shrink.script);
  check_int "removed" 4 r.Shrink.removed_events;
  (match r.Shrink.script with
  | [ e ] ->
    check_int "the crash survives" 0 e.Fault.node;
    check_int "time zeroed" 0 e.Fault.at
  | _ -> Alcotest.fail "expected singleton");
  check_bool "result satisfies predicate" true (violates r.Shrink.script)

let test_shrinker_weakens_params () =
  let babble n = { Fault.at = Time.zero; node = 0; behavior = Fault.Babble { bogus_per_period = n } } in
  (* violation iff some babble >= 2 bogus/period *)
  let violates s =
    List.exists
      (fun (e : Fault.event) ->
        match e.Fault.behavior with
        | Fault.Babble { bogus_per_period } -> bogus_per_period >= 2
        | _ -> false)
      s
  in
  let r = Shrink.minimize ~violates [ babble 64 ] in
  match r.Shrink.script with
  | [ { Fault.behavior = Fault.Babble { bogus_per_period }; _ } ] ->
    check_int "babble halved to the floor" 2 bogus_per_period
  | _ -> Alcotest.fail "expected one babble event"

(* --- observability --------------------------------------------------- *)

let test_obs_events_and_counters () =
  let obs = Obs.with_memory () in
  let spec = Campaign.spec ~trials:10 ~seed:7 () in
  let result = Campaign.run ~obs ~jobs:2 spec in
  let events = Obs.events obs in
  let count pred = List.length (List.filter pred events) in
  check_int "one campaign-started" 1
    (count (fun e ->
         match e.Obs.payload with Obs.Campaign_started _ -> true | _ -> false));
  check_int "one verdict event per trial" 10
    (count (fun e ->
         match e.Obs.payload with Obs.Trial_verdict _ -> true | _ -> false));
  check_int "one shrink event per violation"
    (List.length result.Campaign.violations)
    (count (fun e ->
         match e.Obs.payload with Obs.Violation_shrunk _ -> true | _ -> false));
  (* verdict events arrive in trial order whatever the pool did *)
  let verdict_trials =
    List.filter_map
      (fun e ->
        match e.Obs.payload with
        | Obs.Trial_verdict { trial; _ } -> Some trial
        | _ -> None)
      events
  in
  check_bool "trial order" true (verdict_trials = List.init 10 Fun.id);
  let counters = Obs.Registry.counters (Obs.registry obs) in
  let counter name = List.assoc_opt name counters in
  check_bool "campaign.trials" true (counter "campaign.trials" = Some 10);
  check_bool "campaign.violations" true
    (counter "campaign.violations"
    = Some (List.length result.Campaign.violations));
  check_bool "cache counters exported" true
    (counter "campaign.plan_cache_misses" = Some result.Campaign.cache_misses)

(* --- artifacts ------------------------------------------------------- *)

let test_flat_json_parses_verdicts () =
  let spec = Campaign.spec ~trials:4 ~seed:7 ~shrink:false () in
  let result = Campaign.run ~jobs:1 spec in
  List.iter
    (fun v ->
      match Campaign.Flat_json.parse (Campaign.verdict_json v) with
      | Error m -> Alcotest.failf "verdict line unparseable: %s" m
      | Ok fields ->
        check_bool "has trial" true
          (match List.assoc_opt "trial" fields with
          | Some (Campaign.Flat_json.Int _) -> true
          | _ -> false);
        check_bool "has verdict" true
          (match List.assoc_opt "verdict" fields with
          | Some (Campaign.Flat_json.Str _) -> true
          | _ -> false))
    result.Campaign.verdicts

let test_flat_json_rejects_garbage () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Result.is_error (Campaign.Flat_json.parse s)))
    [ ""; "{"; "{\"a\":}"; "{\"a\":1,}"; "{\"a\":1}x"; "[1]"; "{\"a\":{}}" ]

let test_flat_json_escapes () =
  match Campaign.Flat_json.parse "{\"s\":\"a\\\"b\\n\\u0041\",\"n\":-3,\"b\":true}" with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok fields ->
    check_bool "string unescaped" true
      (List.assoc_opt "s" fields = Some (Campaign.Flat_json.Str "a\"b\nA"));
    check_bool "negative int" true
      (List.assoc_opt "n" fields = Some (Campaign.Flat_json.Int (-3)));
    check_bool "bool" true
      (List.assoc_opt "b" fields = Some (Campaign.Flat_json.Bool true))

(* Satellite: encode -> parse -> re-encode is the identity on arbitrary
   field lists, byte for byte. Strings exercise the full escape table
   (quotes, backslashes, control bytes, high bytes pass through raw);
   floats are kept finite and must survive exactly, including integral
   values, which float_repr keeps float-shaped with a trailing '.'. *)
let prop_flat_json_roundtrip =
  let module J = Campaign.Flat_json in
  let gen =
    let open QCheck.Gen in
    let any_char = map Char.chr (int_bound 255) in
    let any_string = string_size ~gen:any_char (int_bound 12) in
    let finite_float =
      map (fun f -> if Float.is_finite f then f else 0.5) float
    in
    let value =
      oneof
        [
          map (fun i -> J.Int i) int;
          map (fun b -> J.Bool b) bool;
          map (fun s -> J.Str s) any_string;
          map (fun f -> J.Float f) finite_float;
        ]
    in
    list_size (int_bound 8) (pair any_string value)
  in
  let print fields =
    String.concat ";"
      (List.map
         (fun (k, v) ->
           Printf.sprintf "%S=%s" k
             (match v with
             | Campaign.Flat_json.Str s -> Printf.sprintf "Str %S" s
             | Campaign.Flat_json.Int i -> Printf.sprintf "Int %d" i
             | Campaign.Flat_json.Bool b -> Printf.sprintf "Bool %b" b
             | Campaign.Flat_json.Float f -> Printf.sprintf "Float %h" f))
         fields)
  in
  QCheck.Test.make ~name:"flat json encode/parse round-trip" ~count:300
    (QCheck.make ~print gen) (fun fields ->
      let line = Campaign.Flat_json.to_string fields in
      match Campaign.Flat_json.parse line with
      | Error m -> QCheck.Test.fail_reportf "unparseable %S: %s" line m
      | Ok back ->
        if back <> fields then
          QCheck.Test.fail_reportf "fields changed: %s <> %s" (print back)
            (print fields)
        else if Campaign.Flat_json.to_string back <> line then
          QCheck.Test.fail_reportf "re-encode not byte-identical: %S <> %S"
            (Campaign.Flat_json.to_string back) line
        else true)

let test_report_renders () =
  let spec = Campaign.spec ~trials:10 ~seed:7 () in
  let result = Campaign.run ~jobs:1 spec in
  let lines = Campaign.result_json_lines result in
  check_int "header + verdicts + violations + summary"
    (1 + 10 + List.length result.Campaign.violations + 1)
    (List.length lines);
  match Campaign.render_report lines with
  | Error m -> Alcotest.failf "render failed: %s" m
  | Ok report ->
    check_bool "mentions totals" true (contains ~sub:"10 trials" report);
    check_bool "mentions fingerprint" true
      (contains ~sub:(Campaign.fingerprint result) report)

let test_report_rejects_garbage () =
  check_bool "malformed line" true
    (Result.is_error (Campaign.render_report [ "{\"trial\":" ]))

let suite =
  [
    Alcotest.test_case "grid cross product" `Quick test_grid_cross_product;
    Alcotest.test_case "grid validation" `Quick test_grid_validation;
    Alcotest.test_case "classes axis validation" `Quick test_classes_validation;
    Alcotest.test_case "known classes all validate" `Quick test_known_classes_complete;
    Alcotest.test_case "single-class palette restricts scripts" `Quick
      test_classes_restrict_scripts;
    Alcotest.test_case "classes not part of cross product" `Quick
      test_classes_not_in_cross_product;
    Alcotest.test_case "compile is deterministic" `Quick test_compile_deterministic;
    Alcotest.test_case "trial_of_index = compile !! i" `Quick test_trial_of_index;
    Alcotest.test_case "scripts respect f and horizon" `Quick test_scripts_respect_f;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip_known;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_jobs_invariant;
    Alcotest.test_case "full artifact jobs-invariant" `Quick
      test_full_artifact_jobs_invariant;
    Alcotest.test_case "shrunk violations replay" `Quick test_shrunk_violations_replay;
    Alcotest.test_case "plan cache shared across trials" `Quick test_plan_cache_shared;
    Alcotest.test_case "cache counters exact at jobs 1 and 4" `Quick
      test_cache_counters_exact;
    Alcotest.test_case "cache derives R-axis neighbours" `Quick
      test_cache_derives_r_neighbours;
    Alcotest.test_case "plan_key semantics" `Quick test_plan_key_semantics;
    Alcotest.test_case "shrinker minimizes known violation" `Quick
      test_shrinker_minimizes_known_violation;
    Alcotest.test_case "shrink budget 0 keeps script" `Quick
      test_shrink_budget_zero_keeps_script;
    Alcotest.test_case "shrinker drops noise (unit)" `Quick test_shrinker_unit;
    Alcotest.test_case "shrinker weakens parameters" `Quick test_shrinker_weakens_params;
    Alcotest.test_case "obs events and counters" `Quick test_obs_events_and_counters;
    Alcotest.test_case "flat json parses verdicts" `Quick test_flat_json_parses_verdicts;
    Alcotest.test_case "flat json rejects garbage" `Quick test_flat_json_rejects_garbage;
    Alcotest.test_case "flat json unescapes" `Quick test_flat_json_escapes;
    QCheck_alcotest.to_alcotest prop_flat_json_roundtrip;
    Alcotest.test_case "report renders" `Quick test_report_renders;
    Alcotest.test_case "report rejects garbage" `Quick test_report_rejects_garbage;
  ]
