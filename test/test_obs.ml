open Btr_util
module Obs = Btr_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Registry *)

let test_registry_get_or_create () =
  let reg = Obs.Registry.create () in
  let a = Obs.Registry.counter reg Obs.Net "msgs-sent" in
  let b = Obs.Registry.counter reg Obs.Net "msgs-sent" in
  Obs.Counter.incr a;
  Obs.Counter.add b 2;
  check_int "same counter behind one name" 3 (Obs.Counter.value a);
  check_str "qualified name" "net.msgs-sent" (Obs.Counter.name a);
  let g = Obs.Registry.gauge reg Obs.Sim "queue-depth" in
  Obs.Gauge.set g 7;
  Obs.Gauge.set g 4;
  check_int "gauge keeps last" 4 (Obs.Gauge.value g)

let test_registry_sorted_listing () =
  let reg = Obs.Registry.create () in
  Obs.Counter.incr (Obs.Registry.counter reg Obs.Net "b");
  Obs.Counter.incr (Obs.Registry.counter reg Obs.Detect "a");
  Alcotest.(check (list (pair string int)))
    "counters sorted by qualified name"
    [ ("detect.a", 1); ("net.b", 1) ]
    (Obs.Registry.counters reg)

let test_registry_json () =
  let reg = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg Obs.Evidence "dedup-hits") 5;
  Obs.Gauge.set (Obs.Registry.gauge reg Obs.Sim "depth") 2;
  check_str "registry json"
    {|{"counters":{"evidence.dedup-hits":5},"gauges":{"sim.depth":2}}|}
    (Obs.Registry.to_json reg)

(* Contexts and sinks *)

let test_null_disabled () =
  check_bool "null disabled" false (Obs.enabled Obs.null);
  let fresh = Obs.create () in
  check_bool "fresh null-sink disabled" false (Obs.enabled fresh);
  Obs.emit fresh ~at:Time.zero Obs.Sim (Obs.Note { what = "x"; detail = "y" });
  check_int "nothing retained" 0 (List.length (Obs.events fresh))

let test_memory_ring () =
  let obs = Obs.with_memory ~capacity:4 () in
  check_bool "memory sink enabled" true (Obs.enabled obs);
  for i = 0 to 5 do
    Obs.emit obs ~at:(Time.us i) Obs.Sim
      (Obs.Note { what = "n"; detail = string_of_int i })
  done;
  let evs = Obs.events obs in
  check_int "keeps last capacity" 4 (List.length evs);
  Alcotest.(check (list int))
    "oldest first, newest last" [ 2; 3; 4; 5 ]
    (List.map (fun (e : Obs.event) -> e.Obs.seq) evs)

let test_event_json () =
  let obs = Obs.with_memory () in
  Obs.emit obs ~at:(Time.ms 2) ~node:3 Obs.Net
    (Obs.Msg_sent { src = 3; dst = 1; cls = "data"; bytes = 64 });
  Obs.emit obs ~at:(Time.ms 3) Obs.Modeswitch
    (Obs.Mode_staged { faulty = [ 1; 4 ] });
  match Obs.events obs with
  | [ sent; staged ] ->
    check_str "msg-sent json"
      {|{"t":2000,"seq":0,"sub":"net","node":3,"ev":"msg-sent","src":3,"dst":1,"cls":"data","bytes":64}|}
      (Obs.event_to_json sent);
    check_str "node omitted when -1"
      {|{"t":3000,"seq":1,"sub":"modeswitch","ev":"mode-staged","faulty":[1,4]}|}
      (Obs.event_to_json staged)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_campaign_event_json () =
  let obs = Obs.with_memory () in
  Obs.emit obs ~at:Time.zero Obs.Campaign
    (Obs.Campaign_started { trials = 50; configs = 4 });
  Obs.emit obs ~at:Time.zero Obs.Campaign
    (Obs.Trial_verdict { trial = 7; verdict = "violation" });
  Obs.emit obs ~at:Time.zero Obs.Campaign
    (Obs.Violation_shrunk { trial = 7; events_before = 5; events_after = 1 });
  match Obs.events obs with
  | [ started; verdict; shrunk ] ->
    check_str "campaign-started json"
      {|{"t":0,"seq":0,"sub":"campaign","ev":"campaign-started","trials":50,"configs":4}|}
      (Obs.event_to_json started);
    check_str "trial-verdict json"
      {|{"t":0,"seq":1,"sub":"campaign","ev":"trial-verdict","trial":7,"verdict":"violation"}|}
      (Obs.event_to_json verdict);
    check_str "violation-shrunk json"
      {|{"t":0,"seq":2,"sub":"campaign","ev":"violation-shrunk","trial":7,"before":5,"after":1}|}
      (Obs.event_to_json shrunk)
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l)

(* End-to-end: the demo deployment's trace *)

let demo_trace seed =
  let obs = Obs.with_memory ~capacity:100_000 () in
  (match Btr.Scenario.run (Btr.Scenario.avionics_demo ~seed ~obs ()) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "demo plan rejected");
  ( String.concat "\n" (List.map Obs.event_to_json (Obs.events obs)),
    Obs.metrics_json obs )

let test_demo_trace_deterministic () =
  let trace1, metrics1 = demo_trace 1 in
  let trace2, metrics2 = demo_trace 1 in
  check_bool "same seed, byte-identical trace" true (String.equal trace1 trace2);
  check_str "same seed, identical metrics" metrics1 metrics2;
  check_bool "trace is non-trivial" true (String.length trace1 > 10_000)

let test_demo_trace_covers_subsystems () =
  let obs = Obs.with_memory ~capacity:100_000 () in
  (match Btr.Scenario.run (Btr.Scenario.avionics_demo ~obs ()) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "demo plan rejected");
  let subs =
    List.sort_uniq String.compare
      (List.map
         (fun (e : Obs.event) -> Obs.subsystem_name e.Obs.sub)
         (Obs.events obs))
  in
  List.iter
    (fun s -> check_bool ("trace has " ^ s) true (List.mem s subs))
    [ "sim"; "net"; "runtime"; "detect"; "evidence"; "modeswitch"; "fault" ]

let test_demo_counters () =
  let obs = Obs.create () in
  (* Null sink: no events, but every counter still accumulates. *)
  (match Btr.Scenario.run (Btr.Scenario.avionics_demo ~obs ()) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "demo plan rejected");
  check_int "no events recorded" 0 (List.length (Obs.events obs));
  let counters = Obs.Registry.counters (Obs.registry obs) in
  let get name = Option.value ~default:(-1) (List.assoc_opt name counters) in
  check_bool "messages flowed" true (get "net.msgs-sent" > 0);
  check_bool "evidence admitted" true (get "evidence.records-admitted" > 0);
  check_bool "verdicts counted" true (get "runtime.verdicts.correct" > 0);
  check_bool "the corrupt periods were judged wrong" true
    (get "runtime.verdicts.wrong" > 0)

let suite =
  [
    ("registry get-or-create", `Quick, test_registry_get_or_create);
    ("registry sorted listing", `Quick, test_registry_sorted_listing);
    ("registry json", `Quick, test_registry_json);
    ("null contexts disabled", `Quick, test_null_disabled);
    ("memory ring keeps newest", `Quick, test_memory_ring);
    ("event json encoding", `Quick, test_event_json);
    ("campaign event json encoding", `Quick, test_campaign_event_json);
    ("demo trace deterministic per seed", `Quick, test_demo_trace_deterministic);
    ("demo trace covers subsystems", `Quick, test_demo_trace_covers_subsystems);
    ("counters accumulate with null sink", `Quick, test_demo_counters);
  ]
