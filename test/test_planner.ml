open Btr_util
open Btr_workload
module Augment = Btr_planner.Augment
module Planner = Btr_planner.Planner
module Topology = Btr_net.Topology
module Schedule = Btr_sched.Schedule

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let topo6 () =
  Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000 ~latency:(Time.us 50)

let build ?(f = 1) ?(r = Time.ms 200) ?(tune = Fun.id) g topo =
  let cfg = tune (Planner.default_config ~f ~recovery_bound:r) in
  Planner.build cfg g topo

let must_build ?f ?r ?tune g topo =
  match build ?f ?r ?tune g topo with
  | Ok s -> s
  | Error e -> Alcotest.failf "planner failed: %a" Planner.pp_error e

(* Augment *)

let aug_avionics degree =
  Augment.augment
    (Generators.avionics ~n_nodes:6)
    ~nodes:[ 0; 1; 2; 3; 4; 5 ] ~degree ~protect_level:Task.Medium
    ~checker_overhead:(Time.us 100) ~guard_wcet:(Time.us 200) ~digest_size:32

let test_augment_counts () =
  let g = Generators.avionics ~n_nodes:6 in
  let aug = aug_avionics 2 in
  (* protected = compute tasks with criticality >= Medium *)
  let protected_count =
    List.length
      (List.filter
         (fun (x : Task.t) ->
           x.kind = Task.Compute
           && Task.compare_criticality x.criticality Task.Medium >= 0)
         (Graph.tasks g))
  in
  let expected =
    Graph.task_count g (* originals incl. lane-0 reuse *)
    + protected_count (* one extra lane each *)
    + protected_count (* one checker each *)
    + 6 (* guards *)
  in
  check_int "augmented task count" expected (Graph.task_count aug.Augment.graph);
  check_int "checkers" protected_count (List.length (Augment.checkers aug));
  check_int "guards" 6 (List.length (Augment.guards aug))

let test_augment_roles_and_lanes () =
  let aug = aug_avionics 3 in
  List.iter
    (fun (x : Task.t) ->
      match Augment.role_of aug x.id with
      | Augment.Replica { orig; lane } ->
        check_int "lane_of agrees" lane (Augment.lane_of aug x.id);
        check_int "orig_of agrees" orig (Augment.orig_of aug x.id);
        check_int "replica group size" 3 (List.length (Augment.replicas_of aug orig))
      | Augment.Checker { orig } ->
        check_bool "checker watches a protected task" true
          (Augment.is_protected aug orig)
      | Augment.Original | Augment.Guard _ -> ())
    (Graph.tasks aug.Augment.graph)

let test_augment_digest_flows () =
  let aug = aug_avionics 2 in
  let digest_flows = Augment.digest_flow_ids aug in
  (* one per lane per protected task *)
  check_int "digest flow count" (2 * List.length (Augment.checkers aug))
    (List.length digest_flows);
  List.iter
    (fun fid ->
      check_bool "digest flows have no orig flow" true
        (Augment.orig_flow_of aug fid = None))
    digest_flows

let test_augment_sinks_get_all_lanes () =
  let g = Generators.avionics ~n_nodes:6 in
  let aug = aug_avionics 2 in
  List.iter
    (fun (fl : Graph.flow) ->
      let consumer = Graph.task g fl.consumer in
      let producer = Graph.task g fl.producer in
      if consumer.Task.kind = Task.Sink && Augment.is_protected aug producer.Task.id
      then begin
        let copies =
          List.filter
            (fun (af : Graph.flow) ->
              Augment.orig_flow_of aug af.flow_id = Some (fl.flow_id, 0)
              || Augment.orig_flow_of aug af.flow_id = Some (fl.flow_id, 1))
            (Graph.flows aug.Augment.graph)
        in
        check_int "one copy per lane reaches the sink" 2 (List.length copies)
      end)
    (Graph.sink_flows g)

let test_augment_degree_one () =
  let aug = aug_avionics 1 in
  check_bool "degree-1 keeps original ids" true
    (List.for_all
       (fun (x : Task.t) ->
         match Augment.role_of aug x.id with
         | Augment.Replica { lane; _ } -> lane = 0
         | Augment.Original | Augment.Checker _ | Augment.Guard _ -> true)
       (Graph.tasks aug.Augment.graph))

(* Planner *)

let test_build_avionics () =
  let s = must_build (Generators.avionics ~n_nodes:6) (topo6 ()) in
  let st = Planner.stats s in
  check_int "modes = 1 + n" 7 st.Planner.modes;
  check_int "transitions = n" 6 st.Planner.transitions;
  check_bool "admitted within 200ms" true (Planner.admitted s)

let test_replica_separation () =
  let s = must_build ~f:2 (Generators.avionics ~n_nodes:6) (topo6 ()) in
  List.iter
    (fun (p : Planner.plan) ->
      let aug = p.Planner.aug in
      List.iter
        (fun (x : Task.t) ->
          let lanes = Augment.replicas_of aug x.id in
          if List.length lanes > 1 then begin
            let nodes = List.filter_map (Planner.assignment_of p) lanes in
            check_int "lanes on distinct nodes" (List.length nodes)
              (List.length (List.sort_uniq Int.compare nodes))
          end)
        (Graph.tasks aug.Augment.original))
    (Planner.all_plans s)

let test_no_tasks_on_faulty_nodes () =
  let s = must_build ~f:2 (Generators.avionics ~n_nodes:6) (topo6 ()) in
  List.iter
    (fun (p : Planner.plan) ->
      List.iter
        (fun (_, node) ->
          check_bool "assignment avoids faulty nodes" false
            (List.mem node p.Planner.faulty))
        p.Planner.assignment)
    (Planner.all_plans s)

let test_schedules_validate () =
  let s = must_build ~f:1 (Generators.avionics ~n_nodes:6) (topo6 ()) in
  let cfg = Planner.config s in
  List.iter
    (fun (p : Planner.plan) ->
      let xfer ~src ~dst ~size_bytes =
        if src = dst then Some Time.zero
        else
          Btr_net.Net.plan_transfer_time (topo6 ()) ?shares:cfg.Planner.shares
            ~avoid:p.Planner.faulty ~cls:Btr_net.Net.Data ~src ~dst ~size_bytes ()
      in
      match Schedule.validate p.Planner.schedule p.Planner.aug.Augment.graph ~xfer with
      | Ok () -> ()
      | Error m -> Alcotest.failf "plan %s invalid: %s"
          (String.concat "," (List.map string_of_int p.Planner.faulty)) m)
    (Planner.all_plans s)

let test_lost_pinned_tasks () =
  let s = must_build ~f:1 (Generators.avionics ~n_nodes:6) (topo6 ()) in
  match Planner.plan_for s ~faulty:[ 0 ] with
  | None -> Alcotest.fail "mode {0} missing"
  | Some p ->
    (* Node 0 hosts the pitot sensor and the PFD display. *)
    check_bool "pinned tasks on node 0 are lost" true
      (List.length p.Planner.lost_tasks >= 2)

let test_transition_minimality () =
  let g = Generators.avionics ~n_nodes:6 in
  let minimal = must_build ~f:1 g (topo6 ()) in
  let naive =
    must_build ~f:1 ~tune:(fun c -> { c with Planner.reassignment = Planner.Naive })
      g (topo6 ())
  in
  let moved s =
    List.fold_left
      (fun acc (tr : Planner.transition) -> acc + List.length tr.Planner.moved)
      0 (Planner.all_transitions s)
  in
  check_bool "minimal reassignment moves no more tasks than naive" true
    (moved minimal <= moved naive);
  check_bool "minimal moves strictly less state in total" true
    ((Planner.stats minimal).Planner.total_moved_state
    <= (Planner.stats naive).Planner.total_moved_state)

let test_transition_structure () =
  let s = must_build ~f:1 (Generators.avionics ~n_nodes:6) (topo6 ()) in
  List.iter
    (fun (tr : Planner.transition) ->
      check_bool "new fault joins the mode" true
        (List.mem tr.Planner.new_fault tr.Planner.to_faulty);
      check_bool "recovery bound positive" true
        (Time.compare tr.Planner.recovery_bound Time.zero > 0);
      List.iter
        (fun (_, from_node, to_node) ->
          check_bool "moves change node" true (from_node <> to_node);
          check_bool "moves land on surviving nodes" false
            (List.mem to_node tr.Planner.to_faulty))
        tr.Planner.moved)
    (Planner.all_transitions s)

let test_shedding_under_pressure () =
  (* 3 nodes, f = 1: after a fault only 2 nodes remain for an avionics
     workload with doubled lanes — the best-effort IFE must go. *)
  let g = Generators.avionics ~n_nodes:4 in
  let topo = Topology.fully_connected ~n:4 ~bandwidth_bps:10_000_000 ~latency:(Time.us 50) in
  let s = must_build ~f:1 ~r:(Time.sec 1) g topo in
  let degraded =
    List.filter (fun (p : Planner.plan) -> p.Planner.shed_below <> None)
      (Planner.all_plans s)
  in
  (* Shedding is criticality-monotone whenever it happens. *)
  List.iter
    (fun (p : Planner.plan) ->
      match p.Planner.shed_below with
      | None -> ()
      | Some floor ->
        List.iter
          (fun (x : Task.t) ->
            check_bool "no kept task below the floor" true
              (Task.compare_criticality x.criticality floor >= 0))
          (Graph.tasks p.Planner.aug.Augment.original))
    (Planner.all_plans s);
  ignore degraded

let test_plan_for_is_order_insensitive () =
  let s = must_build ~f:2 (Generators.avionics ~n_nodes:6) (topo6 ()) in
  let a = Planner.plan_for s ~faulty:[ 1; 3 ] in
  let b = Planner.plan_for s ~faulty:[ 3; 1 ] in
  check_bool "same plan" true
    (match a, b with
    | Some x, Some y -> x.Planner.faulty = y.Planner.faulty
    | _ -> false);
  check_bool "unknown pattern gives None" true (Planner.plan_for s ~faulty:[ 1; 2; 3 ] = None)

let test_bad_configs_rejected () =
  let g = Generators.avionics ~n_nodes:6 in
  (match build ~f:5 g (topo6 ()) with
  | Error (Planner.Bad_config _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Planner.pp_error e
  | Ok _ -> Alcotest.fail "degree 6 on 1 surviving node should fail");
  match
    build ~tune:(fun c -> { c with Planner.degree = 0 }) g (topo6 ())
  with
  | Error (Planner.Bad_config _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Planner.pp_error e
  | Ok _ -> Alcotest.fail "degree 0 should fail"

let test_disconnection_detected () =
  let g = Generators.scada ~n_nodes:4 in
  let topo = Topology.star ~n:4 ~hub:3 ~bandwidth_bps:10_000_000 ~latency:(Time.us 50) in
  match build ~f:1 g topo with
  | Error (Planner.Disconnected { faulty }) ->
    check_bool "hub failure disconnects" true (faulty = [ 3 ])
  | Error e -> Alcotest.failf "wrong error: %a" Planner.pp_error e
  | Ok _ -> Alcotest.fail "star with faulty hub must be rejected"

let test_unschedulable_detected () =
  (* Make the workload impossible: single huge compute task per period. *)
  let src = Task.make ~id:0 ~name:"s" ~kind:Task.Source ~wcet:(Time.us 10) ~pinned:0 () in
  let heavy =
    Task.make ~id:1 ~name:"h" ~wcet:(Time.ms 15) ~criticality:Task.Safety_critical ()
  in
  let sink = Task.make ~id:2 ~name:"k" ~kind:Task.Sink ~wcet:(Time.us 10) ~pinned:1 () in
  let g =
    Graph.create ~period:(Time.ms 10) ~tasks:[ src; heavy; sink ]
      ~flows:
        [
          { Graph.flow_id = 0; producer = 0; consumer = 1; msg_size = 8; deadline = None };
          { Graph.flow_id = 1; producer = 1; consumer = 2; msg_size = 8; deadline = Some (Time.ms 9) };
        ]
  in
  match build ~f:1 g (topo6 ()) with
  | Error (Planner.Unschedulable _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Planner.pp_error e
  | Ok _ -> Alcotest.fail "15ms task in a 10ms period should be unschedulable"

let prop_random_workloads_plan_and_validate =
  QCheck.Test.make
    ~name:"random workloads: every mode's schedule passes independent validation"
    ~count:25
    QCheck.(int_range 0 5000)
    (fun seed ->
      let rng = Rng.create seed in
      let g =
        Generators.random_layered ~rng ~n_nodes:5 ~layers:2 ~width:3
          ~utilization_target:0.8 ()
      in
      let topo =
        Topology.fully_connected ~n:5 ~bandwidth_bps:20_000_000 ~latency:(Time.us 20)
      in
      match build ~f:1 ~r:(Time.sec 1) g topo with
      | Error _ -> QCheck.assume_fail ()
      | Ok s ->
        let cfg = Planner.config s in
        List.for_all
          (fun (p : Planner.plan) ->
            let xfer ~src ~dst ~size_bytes =
              if src = dst then Some Time.zero
              else
                Btr_net.Net.plan_transfer_time topo ?shares:cfg.Planner.shares
                  ~avoid:p.Planner.faulty ~cls:Btr_net.Net.Data ~src ~dst
                  ~size_bytes ()
            in
            Schedule.validate p.Planner.schedule p.Planner.aug.Augment.graph ~xfer
            = Ok ())
          (Planner.all_plans s))

(* config_key: the serialization campaigns key their plan cache on *)

let test_config_key_total () =
  let base = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 200) in
  Alcotest.(check string)
    "equal configs, equal keys"
    (Planner.config_key base)
    (Planner.config_key { base with Planner.f = 1 });
  (* two closures with the same meaning must agree through the key,
     which is the whole point: closures themselves are incomparable *)
  let t1 c = { c with Planner.protect_level = Task.High } in
  let t2 c = { c with Planner.protect_level = Task.High } in
  Alcotest.(check string) "tune closures compare via key"
    (Planner.config_key (t1 base))
    (Planner.config_key (t2 base));
  let distinct =
    [
      { base with Planner.f = 2 };
      { base with Planner.recovery_bound = Time.ms 100 };
      { base with Planner.protect_level = Task.Safety_critical };
      { base with Planner.degree = 3 };
      { base with Planner.reassignment = Planner.Naive };
      { base with
        Planner.shares = Some { Btr_net.Net.data_frac = 0.35; control_frac = 0.02 }
      };
    ]
  in
  let keys = List.map Planner.config_key (base :: distinct) in
  Alcotest.(check int)
    "every varied field changes the key"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_resolved_config_applies_tune () =
  let spec =
    Btr.Scenario.spec
      ~workload:(Generators.avionics ~n_nodes:6)
      ~topology:(topo6 ()) ~f:1 ~recovery_bound:(Time.ms 200)
      ~tune:(fun c -> { c with Planner.protect_level = Task.High })
      ()
  in
  let cfg = Btr.Scenario.resolved_config spec in
  Alcotest.(check bool)
    "tune applied" true
    (cfg.Planner.protect_level = Task.High);
  Alcotest.(check string)
    "resolved key matches hand-tuned key"
    (Planner.config_key
       { (Planner.default_config ~f:1 ~recovery_bound:(Time.ms 200)) with
         Planner.protect_level = Task.High
       })
    (Planner.config_key cfg)

(* Incremental replanning *)

let test_replan_delta_reuse () =
  let g = Generators.avionics ~n_nodes:6 in
  let s = must_build g (topo6 ()) in
  let modes = List.length (Planner.all_plans s)
  and transitions = List.length (Planner.all_transitions s) in
  (* Unchanged inputs: every plan and transition is taken verbatim. *)
  (match Planner.replan_delta s (Planner.config s) g (topo6 ()) with
  | Error e -> Alcotest.failf "replan failed: %a" Planner.pp_error e
  | Ok (s', d) ->
    check_int "all modes reused" modes d.Planner.reused_modes;
    check_int "none replanned" 0 d.Planner.replanned_modes;
    check_int "all transitions reused" transitions d.Planner.reused_transitions;
    check_int "none rebuilt" 0 d.Planner.rebuilt_transitions;
    check_int "no churn" 0 d.Planner.churn_moved_tasks;
    check_bool "plans shared, not copied" true
      (List.for_all2 ( == ) (Planner.all_plans s) (Planner.all_plans s')));
  (* A topology change invalidates every mode fingerprint; the rebuilt
     strategy must be the one build would produce from scratch. *)
  let topo' =
    Topology.fully_connected ~n:6 ~bandwidth_bps:20_000_000 ~latency:(Time.us 50)
  in
  match Planner.replan_delta s (Planner.config s) g topo' with
  | Error e -> Alcotest.failf "replan failed: %a" Planner.pp_error e
  | Ok (s', d) ->
    check_int "nothing reused" 0 d.Planner.reused_modes;
    check_int "all replanned" modes d.Planner.replanned_modes;
    let scratch = must_build g topo' in
    List.iter
      (fun (p : Planner.plan) ->
        check_bool "fingerprints match scratch build" true
          (Planner.mode_fingerprint s' ~faulty:p.Planner.faulty
          = Planner.mode_fingerprint scratch ~faulty:p.Planner.faulty))
      (Planner.all_plans scratch)

let test_with_recovery_bound () =
  let g = Generators.avionics ~n_nodes:6 in
  let s = must_build g (topo6 ()) in
  let s' = Planner.with_recovery_bound s (Time.ms 150) in
  check_int "R retuned" (Time.ms 150) (Planner.config s').Planner.recovery_bound;
  check_bool "plans shared, not replanned" true
    (List.for_all2 ( == ) (Planner.all_plans s) (Planner.all_plans s'));
  check_bool "transitions shared" true
    (List.for_all2 ( == ) (Planner.all_transitions s) (Planner.all_transitions s'));
  (* admission is re-judged against the new R *)
  let fresh = must_build ~r:(Time.ms 150) g (topo6 ()) in
  check_bool "admission matches a scratch build at the new R" true
    (Planner.admitted s' = Planner.admitted fresh)

let suite =
  [
    ("augment: task counts", `Quick, test_augment_counts);
    ("augment: roles and lanes consistent", `Quick, test_augment_roles_and_lanes);
    ("augment: digest flows wired to checkers", `Quick, test_augment_digest_flows);
    ("augment: sinks receive every lane", `Quick, test_augment_sinks_get_all_lanes);
    ("augment: degree one is the identity on ids", `Quick, test_augment_degree_one);
    ("build avionics strategy", `Quick, test_build_avionics);
    ("replica lanes on distinct nodes", `Quick, test_replica_separation);
    ("no tasks on faulty nodes", `Quick, test_no_tasks_on_faulty_nodes);
    ("every mode's schedule validates", `Quick, test_schedules_validate);
    ("pinned tasks on faulty nodes are lost", `Quick, test_lost_pinned_tasks);
    ("minimal reassignment beats naive", `Quick, test_transition_minimality);
    ("transition structure", `Quick, test_transition_structure);
    ("shedding is criticality-monotone", `Quick, test_shedding_under_pressure);
    ("plan lookup ignores order", `Quick, test_plan_for_is_order_insensitive);
    ("bad configs rejected", `Quick, test_bad_configs_rejected);
    ("disconnection detected", `Quick, test_disconnection_detected);
    ("unschedulable workloads detected", `Quick, test_unschedulable_detected);
    ("replan_delta reuses unchanged modes", `Quick, test_replan_delta_reuse);
    ("with_recovery_bound is O(1) and re-admits", `Quick, test_with_recovery_bound);
    ("config_key is total and injective on fields", `Quick, test_config_key_total);
    ("scenario resolved_config applies tune", `Quick, test_resolved_config_applies_tune);
    QCheck_alcotest.to_alcotest prop_random_workloads_plan_and_validate;
  ]
