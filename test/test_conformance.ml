(* Adversarial conformance: the static verifier's selective-omission
   verdict and the runtime detector agree in both directions.

   Accept side: on a statically admitted configuration, no omit-to
   schedule — exhaustively, every sender against every nonempty subset
   of the other nodes — drives recovery past R. This is the soundness
   gap the old per-path strike counter had: [omitto.3.5@2@250000]
   (node 2 omitting toward {3,5} on the avionics clique) starved each
   watcher below its declaration threshold and poisoned a lane to the
   horizon (the E11 open finding, now closed).

   Reject side: every BTR-E305 diagnostic carries a witness schedule,
   and forcing the rejected configuration past the admission gate with
   [Scenario.run_unchecked] makes that witness actually violate R — the
   rejection is genuine, not conservatism. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Generators = Btr_workload.Generators
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Check = Btr_check.Check
module Fault = Btr_fault.Fault
module Campaign = Btr_campaign.Campaign

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let clique n =
  Topology.fully_connected ~n ~bandwidth_bps:10_000_000 ~latency:(Time.us 50)

let avionics = lazy (Generators.avionics ~n_nodes:6)

let omitto_spec ?(f = 1) ?(r = Time.ms 200) ~sender ~targets () =
  Btr.Scenario.spec ~workload:(Lazy.force avionics) ~topology:(clique 6) ~f
    ~recovery_bound:r
    ~script:
      [ { Fault.at = Time.ms 250; node = sender; behavior = Fault.Omit_to targets } ]
    ~horizon:(Time.sec 1) ()

let recoveries rt = Btr.Metrics.recovery_times (Btr.Runtime.metrics rt)

let violates_r ~r rt =
  List.exists (fun t -> Time.compare t r > 0) (recoveries rt)

(* --- the historic reproducer ---------------------------------------- *)

let historic = "omitto.3.5@2@250000"

let test_historic_snippet_roundtrip () =
  (* The reproducer identifier from the E11 finding must keep parsing
     and printing byte-for-byte, so the regression below pins exactly
     the schedule the old detector failed on. *)
  match Campaign.script_of_string historic with
  | Error m -> Alcotest.failf "historic script no longer parses: %s" m
  | Ok script ->
    check_string "codec round-trips the reproducer" historic
      (Campaign.script_to_string script);
    (match script with
    | [ { Fault.at; node; behavior = Fault.Omit_to targets } ] ->
      check_int "at 250ms" 250_000 at;
      check_int "sender 2" 2 node;
      check_bool "targets {3,5}" true (targets = [ 3; 5 ])
    | _ -> Alcotest.fail "historic script shape changed")

let test_historic_trial_passes () =
  (* Replayed through the same single-trial path the campaign and the
     CLI `campaign replay` use: the admitted default configuration must
     now absorb the schedule (cross-path strike sharing + lane
     abstention), where the seed semantics let it run Wrong to the
     horizon. *)
  let script =
    match Campaign.script_of_string historic with
    | Ok s -> s
    | Error m -> Alcotest.failf "parse: %s" m
  in
  let cache = Campaign.Cache.create ~seed:1 in
  match Campaign.run_script ~cache Campaign.default_params ~runtime_seed:1 script with
  | Campaign.Pass st ->
    check_bool "worst recovery within R" true
      (Time.compare st.Campaign.worst_recovery Campaign.default_params.Campaign.r <= 0)
  | Campaign.Violation st ->
    Alcotest.failf "the selective-omission gap is back: worst recovery %s"
      (Format.asprintf "%a" Time.pp st.Campaign.worst_recovery)
  | Campaign.Rejected m -> Alcotest.failf "default config rejected: %s" m
  | Campaign.Errored m -> Alcotest.failf "trial errored: %s" m

(* --- accept side: exhaustive omit-to sweep -------------------------- *)

let subsets l =
  List.fold_left (fun acc x -> acc @ List.map (fun s -> x :: s) acc) [ [] ] l

let test_exhaustive_omitto_sweep () =
  (* Every sender x every nonempty target subset on the admitted
     avionics clique: 6 x 31 = 186 deployments, none may violate. *)
  let nodes = [ 0; 1; 2; 3; 4; 5 ] in
  let r = Time.ms 200 in
  let failures = ref [] in
  List.iter
    (fun sender ->
      List.iter
        (fun targets ->
          if targets <> [] then
            let targets = List.sort Int.compare targets in
            match Btr.Scenario.run (omitto_spec ~sender ~targets ()) with
            | Error e ->
              Alcotest.failf "admitted config failed to deploy: %a"
                Planner.pp_error e
            | Ok rt ->
              if violates_r ~r rt then
                failures := (sender, targets) :: !failures)
        (subsets (List.filter (fun x -> x <> sender) nodes)))
    nodes;
  check_bool
    (Printf.sprintf "no omit-to subset violates (found %d)"
       (List.length !failures))
    true (!failures = [])

let test_omitto_campaign_clean () =
  (* The randomized counterpart, through the campaign engine: an
     omitto-focused palette across f x control-share, multicore. Only
     statically admitted grid points may execute, and none of their
     trials may violate. *)
  let grid =
    {
      Campaign.default_grid with
      Campaign.fault_bounds = [ 1 ];
      control_shares = [ None; Some 0.2 ];
      classes = [ "omitto" ];
    }
  in
  check_bool "grid validates" true
    (Campaign.validate_grid grid = Ok ());
  let spec = Campaign.spec ~grid ~trials:24 ~seed:7 ~shrink:false () in
  let result = Campaign.run ~jobs:2 spec in
  check_int "all trials ran" 24 (List.length result.Campaign.verdicts);
  check_bool "no violation verdict" true
    (List.for_all
       (fun (v : Campaign.verdict) -> not (Campaign.violates v.Campaign.outcome))
       result.Campaign.verdicts);
  check_bool "admitted points actually executed" true
    (List.exists
       (fun (v : Campaign.verdict) ->
         match v.Campaign.outcome with Campaign.Pass _ -> true | _ -> false)
       result.Campaign.verdicts);
  check_bool "no shrunk violations" true (result.Campaign.violations = [])

(* --- reject side: every E305 rejection has a live witness ----------- *)

(* strikes = 3 with R = 80ms: a single watcher needs 3 missed periods to
   declare, which no longer fits R, and sender 0's minimal cut is one
   watcher, so corroboration (f+1 = 2 watchers) cannot close it either.
   The probe grid in test_check exercises the same point statically;
   here we force it past the gate and watch it burn. *)
let witness_strikes = 3
let witness_r = Time.ms 80

let witness_config =
  { Btr.Runtime.default_config with Btr.Runtime.omission_strikes = witness_strikes }

let witness_view () =
  match
    Planner.build
      (Planner.default_config ~f:1 ~recovery_bound:witness_r)
      (Lazy.force avionics) (clique 6)
  with
  | Ok s -> Check.view_of_strategy s
  | Error e -> Alcotest.failf "planner failed: %a" Planner.pp_error e

let test_e305_gate_rejects () =
  let spec = omitto_spec ~r:witness_r ~sender:0 ~targets:[ 2 ] () in
  match Btr.Scenario.plan ~config:witness_config spec with
  | Ok _ -> Alcotest.fail "gate admitted a selectively-omittable config"
  | Error (Planner.Rejected { diagnostics }) ->
    check_bool "BTR-E305 among the diagnostics" true
      (List.exists (fun (code, _) -> code = "BTR-E305") diagnostics)
  | Error e -> Alcotest.failf "expected Rejected, got %a" Planner.pp_error e

let test_e305_witnesses_violate () =
  let wits = Check.selective_omission_witnesses ~strikes:witness_strikes (witness_view ()) in
  check_bool "at least one witness" true (wits <> []);
  List.iter
    (fun (w : Check.omission_witness) ->
      check_int "witness watcher count" (List.length w.Check.ow_targets)
        w.Check.ow_watchers;
      let spec =
        omitto_spec ~r:witness_r ~sender:w.Check.ow_sender
          ~targets:w.Check.ow_targets ()
      in
      match Btr.Scenario.run_unchecked ~config:witness_config spec with
      | Error e -> Alcotest.failf "unchecked deploy failed: %a" Planner.pp_error e
      | Ok rt ->
        check_bool
          (Printf.sprintf "witness sender %d omitting toward {%s} violates R"
             w.Check.ow_sender
             (String.concat "," (List.map string_of_int w.Check.ow_targets)))
          true
          (violates_r ~r:witness_r rt))
    wits

let test_witnesses_match_diagnostics () =
  (* One witness per E305 diagnostic, same order, same locus — the
     report a user sees and the schedules this suite replays cannot
     drift apart. *)
  let v = witness_view () in
  let report = Check.verify_view ~strikes:witness_strikes v in
  let e305 =
    List.filter
      (fun (d : Check.diagnostic) -> d.Check.code = Check.Selective_omission_undetectable)
      report.Check.diagnostics
  in
  let wits = Check.selective_omission_witnesses ~strikes:witness_strikes v in
  check_int "one witness per E305 diagnostic" (List.length e305) (List.length wits);
  List.iter2
    (fun (d : Check.diagnostic) (w : Check.omission_witness) ->
      check_bool "locus node is the sender" true
        (d.Check.locus.Check.node = Some w.Check.ow_sender);
      check_bool "locus flow is the starved flow" true
        (d.Check.locus.Check.flow = Some w.Check.ow_flow);
      check_bool "locus mode is the witness mode" true
        (d.Check.locus.Check.faulty = Some w.Check.ow_mode))
    e305 wits

let test_strikes_tighten_the_gate () =
  (* Raising the runtime's strike tolerance weakens detection, so the
     set of admitted configurations must shrink monotonically: anything
     rejected at [strikes] stays rejected at [strikes + 1]. *)
  let v = witness_view () in
  let rejected strikes =
    List.length (Check.selective_omission_witnesses ~strikes v)
  in
  let r1 = rejected 1 and r2 = rejected 2 and r3 = rejected 3 in
  check_bool "witness count monotone in strikes" true (r1 <= r2 && r2 <= r3);
  check_bool "3-strike watchdog rejected here" true (r3 > 0)

let suite =
  [
    ("historic reproducer round-trips", `Quick, test_historic_snippet_roundtrip);
    ("omitto.3.5@2@250000 passes on the admitted config", `Quick, test_historic_trial_passes);
    ("exhaustive omit-to sweep stays within R", `Slow, test_exhaustive_omitto_sweep);
    ("omitto-focused campaign runs clean", `Slow, test_omitto_campaign_clean);
    ("gate rejects the 3-strike config with E305", `Quick, test_e305_gate_rejects);
    ("E305 witnesses violate past the gate", `Quick, test_e305_witnesses_violate);
    ("witnesses match the diagnostics", `Quick, test_witnesses_match_diagnostics);
    ("admission is monotone in strike tolerance", `Quick, test_strikes_tighten_the_gate);
  ]
