let () =
  Alcotest.run "btr"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("sim", Test_sim.suite);
      ("wheel", Test_wheel.suite);
      ("crypto", Test_crypto.suite);
      ("net", Test_net.suite);
      ("workload", Test_workload.suite);
      ("sched", Test_sched.suite);
      ("analysis", Test_analysis.suite);
      ("plant", Test_plant.suite);
      ("evidence", Test_evidence.suite);
      ("authlog", Test_authlog.suite);
      ("detect", Test_detect.suite);
      ("planner", Test_planner.suite);
      ("modeswitch", Test_modeswitch.suite);
      ("check", Test_check.suite);
      ("incr", Test_incr.suite);
      ("lint", Test_lint.suite);
      ("core", Test_core.suite);
      ("campaign", Test_campaign.suite);
      ("orchestrate", Test_orchestrate.suite);
      ("runtime", Test_runtime.suite);
      ("conformance", Test_conformance.suite);
      ("baselines", Test_baselines.suite);
    ]
