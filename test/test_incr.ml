(* Incremental verification: Incr.report must be byte-identical to a
   from-scratch Planner.build + Check.verify on the edited inputs — the
   equivalence the memo keys claim — and edits outside an analysis
   family's dependency cone must not miss in that family's memo. *)

open Btr_util
module Graph = Btr_workload.Graph
module Generators = Btr_workload.Generators
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Check = Btr_check.Check
module Incr = Btr_check.Incr

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let clique n =
  Topology.fully_connected ~n ~bandwidth_bps:10_000_000 ~latency:(Time.us 50)

let fleet_topo n =
  Topology.dual_bus ~n ~bandwidth_bps:(1_000_000 * n) ~latency:(Time.us 50)

let scratch_json st =
  let v = Incr.view st in
  match Planner.build v.Check.config v.Check.workload v.Check.topology with
  | Error e -> Alcotest.failf "scratch build failed: %a" Planner.pp_error e
  | Ok s -> Check.report_to_json (Check.verify s)

let init_exn ?strikes cfg w t =
  match Incr.init ?strikes cfg w t with
  | Ok st -> st
  | Error e -> Alcotest.failf "init failed: %a" Planner.pp_error e

(* ------------------------------------------------------------------ *)

let test_init_matches_scratch () =
  let w = Generators.avionics ~n_nodes:6 in
  let cfg = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 200) in
  let st = init_exn cfg w (clique 6) in
  check_string "init report = scratch report" (scratch_json st)
    (Check.report_to_json (Incr.report st))

let test_set_r_cone () =
  let w = Generators.fleet ~n_nodes:8 in
  let cfg = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 100) in
  let st = init_exn cfg w (fleet_topo 8) in
  Incr.reset_memo_stats st;
  let st, _ = Result.get_ok (Incr.apply st (Incr.Set_recovery_bound (Time.ms 80))) in
  let s = Incr.memo_stats st in
  (* R touches no analysis input: every family must hit. *)
  check_int "rta misses" 0 s.Incr.rta_misses;
  check_int "reserve misses" 0 s.Incr.reserve_misses;
  check_int "sched misses" 0 s.Incr.sched_misses;
  check_int "routes misses" 0 s.Incr.routes_misses;
  check_int "evb misses" 0 s.Incr.evb_misses;
  check_int "cuts misses" 0 s.Incr.cuts_misses;
  check_int "static misses" 0 s.Incr.static_misses;
  check_bool "some hits happened" true (s.Incr.rta_hits > 0);
  (match Incr.last_plan_delta st with
  | Some d ->
    check_int "no mode replanned" 0 d.Planner.replanned_modes;
    check_bool "all modes reused" true (d.Planner.reused_modes > 0)
  | None -> Alcotest.fail "expected a plan delta");
  check_string "still = scratch" (scratch_json st)
    (Check.report_to_json (Incr.report st))

let test_flow_retune_cone () =
  let w = Generators.fleet ~n_nodes:8 in
  let cfg = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 100) in
  let st = init_exn cfg w (fleet_topo 8) in
  let fl = List.hd (Graph.flows w) in
  Incr.reset_memo_stats st;
  let st, _ =
    Result.get_ok
      (Incr.apply st
         (Incr.Retune_flow
            { flow = fl.Graph.flow_id; msg_size = Some (fl.Graph.msg_size * 2);
              deadline = None }))
  in
  let s = Incr.memo_stats st in
  (* A message-size change replans every mode (the workload fingerprint
     is coarse) but leaves RTA inputs, the network and evidence bounds
     untouched: those families must hit across the rebuilt plans. *)
  check_int "rta misses" 0 s.Incr.rta_misses;
  check_int "evb misses" 0 s.Incr.evb_misses;
  check_int "static misses" 0 s.Incr.static_misses;
  check_bool "reserve ledgers recomputed" true (s.Incr.reserve_misses > 0);
  check_string "still = scratch" (scratch_json st)
    (Check.report_to_json (Incr.report st))

let test_link_retune_cone () =
  let w = Generators.fleet ~n_nodes:8 in
  let cfg = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 100) in
  let st = init_exn cfg w (fleet_topo 8) in
  Incr.reset_memo_stats st;
  let st, _ =
    Result.get_ok
      (Incr.apply st
         (Incr.Retune_link
            { link = 0; bandwidth_bps = Some (16_000_000); latency = None }))
  in
  let s = Incr.memo_stats st in
  (* Bandwidth enters evidence bounds and ledgers, not RTA triples. *)
  check_int "rta misses" 0 s.Incr.rta_misses;
  check_bool "evb recomputed" true (s.Incr.evb_misses > 0);
  check_string "still = scratch" (scratch_json st)
    (Check.report_to_json (Incr.report st))

let test_invalid_edit_keeps_state () =
  let w = Generators.avionics ~n_nodes:6 in
  let cfg = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 200) in
  let st = init_exn cfg w (clique 6) in
  let before = Check.report_to_json (Incr.report st) in
  (match Incr.apply st (Incr.Remove_flow 99_999) with
  | Error (Incr.Invalid_edit _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Incr.pp_apply_error e
  | Ok _ -> Alcotest.fail "expected Invalid_edit");
  check_string "state unchanged" before (Check.report_to_json (Incr.report st))

let test_parse_round_trip () =
  let edits =
    [
      Incr.Add_node 7;
      Incr.Remove_node 3;
      Incr.Add_link
        {
          Topology.link_id = 9;
          members = [ 0; 1; 4 ];
          bandwidth_bps = 1_000_000;
          latency = Time.us 50;
        };
      Incr.Retune_link
        { link = 2; bandwidth_bps = Some 5_000_000; latency = None };
      Incr.Retune_link { link = 2; bandwidth_bps = None; latency = Some (Time.us 10) };
      Incr.Add_flow
        {
          Graph.flow_id = 42;
          producer = 1;
          consumer = 2;
          msg_size = 64;
          deadline = Some (Time.ms 15);
        };
      Incr.Add_flow
        { Graph.flow_id = 43; producer = 1; consumer = 2; msg_size = 64; deadline = None };
      Incr.Remove_flow 42;
      Incr.Retune_flow { flow = 3; msg_size = Some 128; deadline = None };
      Incr.Retune_flow { flow = 3; msg_size = None; deadline = Some None };
      Incr.Retune_flow
        { flow = 3; msg_size = None; deadline = Some (Some (Time.ms 15)) };
      Incr.Set_f 2;
      Incr.Set_recovery_bound (Time.ms 300);
    ]
  in
  List.iter
    (fun e ->
      match Incr.parse_edit (Incr.edit_to_string e) with
      | Ok e' ->
        check_bool (Incr.edit_to_string e ^ " round-trips") true (e = e')
      | Error msg -> Alcotest.failf "parse %S: %s" (Incr.edit_to_string e) msg)
    edits;
  check_bool "garbage rejected" true
    (Result.is_error (Incr.parse_edit "frobnicate 3"))

(* ------------------------------------------------------------------ *)
(* The tentpole property: a random edit script applied incrementally
   always leaves the report byte-identical (JSON and E305 witnesses) to
   planning and verifying the final inputs from scratch. *)

let random_edit rng st =
  let v = Incr.view st in
  let flows = Graph.flows v.Check.workload in
  let links = Topology.links v.Check.topology in
  match Rng.int rng 8 with
  | 0 ->
    let fl = Rng.pick_list rng flows in
    Incr.Retune_flow
      {
        flow = fl.Graph.flow_id;
        msg_size = Some (16 + Rng.int rng 256);
        deadline = None;
      }
  | 1 ->
    let fl = Rng.pick_list rng flows in
    let deadline =
      if Rng.bool rng then Some None
      else Some (Some (Time.ms (10 + Rng.int rng 100)))
    in
    Incr.Retune_flow { flow = fl.Graph.flow_id; msg_size = None; deadline }
  | 2 ->
    let fl = Rng.pick_list rng flows in
    let fresh =
      1 + List.fold_left (fun m (f : Graph.flow) -> Stdlib.max m f.flow_id) 0 flows
    in
    Incr.Add_flow { fl with Graph.flow_id = fresh; msg_size = 16 + Rng.int rng 128 }
  | 3 ->
    let fl = Rng.pick_list rng flows in
    Incr.Remove_flow fl.Graph.flow_id
  | 4 ->
    let l = Rng.pick_list rng links in
    Incr.Retune_link
      {
        link = l.Topology.link_id;
        bandwidth_bps = Some (5_000_000 + Rng.int rng 20_000_000);
        latency = None;
      }
  | 5 ->
    let l = Rng.pick_list rng links in
    Incr.Retune_link
      {
        link = l.Topology.link_id;
        bandwidth_bps = None;
        latency = Some (Time.us (10 + Rng.int rng 200));
      }
  | 6 -> Incr.Set_f (Rng.int rng 2)
  | _ -> Incr.Set_recovery_bound (Time.ms (50 + Rng.int rng 400))

let prop_equivalence =
  QCheck.Test.make ~name:"incremental report = from-scratch report" ~count:50
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 2 in
      let workload =
        Generators.random_layered ~rng:(Rng.split rng) ~n_nodes:n ~layers:3
          ~width:3 ()
      in
      let cfg = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 300) in
      match Incr.init cfg workload (clique n) with
      | Error _ -> true (* unplannable seed: vacuous *)
      | Ok st0 ->
        let st = ref st0 in
        let ok = ref true in
        for _ = 1 to 20 do
          if !ok then begin
            let edit = random_edit rng !st in
            match Incr.apply !st edit with
            | Error (Incr.Invalid_edit _ | Incr.Plan_failed _) ->
              (* state must be unchanged; keep editing from it *)
              ()
            | Ok (st', _) ->
              st := st';
              let v = Incr.view st' in
              (match
                 Planner.build v.Check.config v.Check.workload v.Check.topology
               with
              | Error _ ->
                (* apply succeeded but scratch failed: divergence *)
                ok := false
              | Ok s ->
                let scratch = Check.verify s in
                if
                  Check.report_to_json scratch
                  <> Check.report_to_json (Incr.report st')
                then ok := false
                else begin
                  (* E305 witnesses must agree too, including order. *)
                  let wi = Check.selective_omission_witnesses (Incr.view st') in
                  let ws =
                    Check.selective_omission_witnesses
                      (Check.view_of_strategy s)
                  in
                  if wi <> ws then ok := false
                end)
          end
        done;
        !ok)

let suite =
  [
    Alcotest.test_case "init report equals from-scratch" `Quick
      test_init_matches_scratch;
    Alcotest.test_case "Set_recovery_bound invalidates nothing" `Quick
      test_set_r_cone;
    Alcotest.test_case "flow retune leaves RTA and evidence memos warm" `Quick
      test_flow_retune_cone;
    Alcotest.test_case "link retune leaves RTA memo warm" `Quick
      test_link_retune_cone;
    Alcotest.test_case "invalid edit leaves state unchanged" `Quick
      test_invalid_edit_keeps_state;
    Alcotest.test_case "edit scripts round-trip through text" `Quick
      test_parse_round_trip;
    QCheck_alcotest.to_alcotest prop_equivalence;
  ]
