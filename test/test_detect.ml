open Btr_util
module Detect = Btr_detect.Detect
module Evidence = Btr_evidence.Evidence

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_path_admissibility () =
  let s accused =
    {
      Evidence.accused;
      fault_class = Evidence.Omission;
      detector = 2;
      period = 0;
      detected_at = 0;
      detail = "";
    }
  in
  check_bool "own path ok" true
    (Detect.path_statement_admissible (s (Evidence.path 2 5)));
  check_bool "own path ok (other end)" true
    (Detect.path_statement_admissible (s (Evidence.path 5 2)));
  check_bool "third-party path rejected" false
    (Detect.path_statement_admissible (s (Evidence.path 4 5)));
  check_bool "node accusations unaffected" true
    (Detect.path_statement_admissible (s (Evidence.Node 9)))

(* Watchdog *)

let test_watchdog_on_time () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 1) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  check_bool "on-time arrival is quiet" true
    (Detect.Watchdog.note_arrival w ~flow:7 ~period:0 ~at:(Time.ms 9) = None);
  Alcotest.(check (list (triple int int int)))
    "nothing overdue" []
    (Detect.Watchdog.overdue w ~now:(Time.ms 100))

let test_watchdog_late () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 1) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  match Detect.Watchdog.note_arrival w ~flow:7 ~period:0 ~at:(Time.ms 14) with
  | Some l ->
    check_int "from node" 3 l.Detect.Watchdog.from_node;
    check_int "lateness beyond margin" (Time.ms 3) l.Detect.Watchdog.lateness
  | None -> Alcotest.fail "expected lateness"

let test_watchdog_margin_absorbs () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 2) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  check_bool "within margin" true
    (Detect.Watchdog.note_arrival w ~flow:7 ~period:0 ~at:(Time.ms 11) = None)

let test_watchdog_overdue_once () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 1) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  Detect.Watchdog.expect w ~flow:8 ~period:0 ~from_node:4 ~deadline:(Time.ms 10);
  check_bool "not due before deadline" true
    (Detect.Watchdog.overdue w ~now:(Time.ms 10) = []);
  check_int "both overdue" 2 (List.length (Detect.Watchdog.overdue w ~now:(Time.ms 12)));
  check_int "reported once" 0 (List.length (Detect.Watchdog.overdue w ~now:(Time.ms 20)))

let test_watchdog_unexpected_arrival () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero () in
  check_bool "unknown flow ignored" true
    (Detect.Watchdog.note_arrival w ~flow:99 ~period:0 ~at:(Time.ms 1) = None)

let test_watchdog_expect_idempotent () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero () in
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:2 ~deadline:(Time.ms 5);
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:9 ~deadline:(Time.ms 50);
  match Detect.Watchdog.overdue w ~now:(Time.ms 10) with
  | [ (1, 0, 2) ] -> ()
  | l -> Alcotest.failf "expected the first registration, got %d entries" (List.length l)

let test_watchdog_strikes () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero ~strikes:3 () in
  let miss flow =
    Detect.Watchdog.expect w ~flow ~period:0 ~from_node:7 ~deadline:(Time.ms 10);
    Detect.Watchdog.overdue w ~now:(Time.ms 20)
  in
  Alcotest.(check (list (triple int int int))) "first miss silent" [] (miss 1);
  Alcotest.(check (list (triple int int int))) "second miss silent" [] (miss 2);
  Alcotest.(check (list (triple int int int)))
    "third strike reports" [ (3, 0, 7) ] (miss 3);
  Alcotest.(check (list (triple int int int)))
    "and keeps reporting afterwards" [ (4, 0, 7) ] (miss 4)

let test_watchdog_strikes_per_sender () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero ~strikes:2 () in
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:7 ~deadline:(Time.ms 1);
  Detect.Watchdog.expect w ~flow:2 ~period:0 ~from_node:8 ~deadline:(Time.ms 1);
  check_bool "one miss each: nobody reported" true
    (Detect.Watchdog.overdue w ~now:(Time.ms 5) = []);
  Detect.Watchdog.expect w ~flow:1 ~period:1 ~from_node:7 ~deadline:(Time.ms 11);
  Alcotest.(check (list (triple int int int)))
    "7 crosses its own threshold" [ (1, 1, 7) ]
    (Detect.Watchdog.overdue w ~now:(Time.ms 15))

(* Strike accounts: cross-path sharing, once-per-sweep bumps, resets *)

let declared_of l =
  List.filter (fun (m : Detect.Watchdog.miss) -> m.Detect.Watchdog.declared) l

let test_strikes_shared_across_paths () =
  (* The account is per sender, not per flow: misses on different flows
     from the same sender accumulate — exactly what the old per-path
     counter failed to do for selective omission (a sender starving k
     different watcher paths never gave any single path [strikes]
     consecutive misses). *)
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero ~strikes:2 () in
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:7 ~deadline:(Time.ms 10);
  check_bool "first path miss sub-threshold" true
    (declared_of (Detect.Watchdog.sweep w ~now:(Time.ms 11)) = []);
  Detect.Watchdog.expect w ~flow:2 ~period:1 ~from_node:7 ~deadline:(Time.ms 20);
  match Detect.Watchdog.sweep w ~now:(Time.ms 21) with
  | [ m ] ->
    check_int "the second miss is on a different flow" 2 m.Detect.Watchdog.miss_flow;
    check_int "but the shared account reached the threshold" 2
      m.Detect.Watchdog.account;
    check_bool "declared" true m.Detect.Watchdog.declared
  | l -> Alcotest.failf "expected one miss, got %d" (List.length l)

let test_strike_bumped_once_per_sweep () =
  (* Many flows missing in the same sweep are one observation of the
     sender, not several: the account must not jump straight to the
     threshold on a single bad period. *)
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero ~strikes:2 () in
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:7 ~deadline:(Time.ms 10);
  Detect.Watchdog.expect w ~flow:2 ~period:0 ~from_node:7 ~deadline:(Time.ms 10);
  match Detect.Watchdog.sweep w ~now:(Time.ms 11) with
  | [ a; b ] ->
    check_int "account bumped once" 1 a.Detect.Watchdog.account;
    check_int "same account on both misses" 1 b.Detect.Watchdog.account;
    check_bool "neither declared" true (declared_of [ a; b ] = [])
  | l -> Alcotest.failf "expected two misses, got %d" (List.length l)

let test_strike_reset_on_timely_arrival () =
  (* Monotonicity fix: interleaving sporadic losses with long healthy
     stretches must never accumulate into a declaration, because every
     timely arrival resets the sender's account; a genuine outage of
     [strikes] consecutive periods still declares. *)
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero ~strikes:3 () in
  let deadline p = Time.ms (10 * (p + 1)) in
  let sweep_at p =
    Detect.Watchdog.sweep w ~now:(Time.add (deadline p) (Time.ms 1))
  in
  (* 30 periods losing every third message: 10 losses, none declared. *)
  for p = 0 to 29 do
    Detect.Watchdog.expect w ~flow:1 ~period:p ~from_node:7 ~deadline:(deadline p);
    if p mod 3 = 0 then
      check_bool "sporadic loss stays sub-threshold" true
        (declared_of (sweep_at p) = [])
    else begin
      ignore (Detect.Watchdog.note_arrival w ~flow:1 ~period:p ~at:(deadline p));
      check_int "timely arrival resets the account" 0
        (Detect.Watchdog.account w ~from_node:7);
      ignore (sweep_at p)
    end
  done;
  (* A real outage: three consecutive misses cross the threshold. *)
  for p = 30 to 32 do
    Detect.Watchdog.expect w ~flow:1 ~period:p ~from_node:7 ~deadline:(deadline p);
    let d = declared_of (sweep_at p) in
    if p < 32 then check_bool "first two strikes silent" true (d = [])
    else
      match d with
      | [ m ] ->
        check_int "declared against sender 7" 7 m.Detect.Watchdog.miss_from;
        check_int "account equals the threshold" 3 m.Detect.Watchdog.account
      | l -> Alcotest.failf "expected one declaration, got %d" (List.length l)
  done

(* Corroboration *)

let test_corroboration_quorum_once () =
  let a = Detect.Attribution.create ~window:4 ~threshold:2 () in
  Alcotest.(check (list int))
    "first watcher alone" []
    (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:1 ~period:0);
  check_bool "not yet corroborated" false
    (Detect.Attribution.is_corroborated a ~sender:7);
  Alcotest.(check (list int))
    "second watcher completes the quorum" [ 1; 2 ]
    (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:2 ~period:2);
  check_bool "corroborated" true (Detect.Attribution.is_corroborated a ~sender:7);
  Alcotest.(check (list int))
    "fires exactly once" []
    (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:3 ~period:2)

let test_corroboration_window_ages_out () =
  (* Two glitches ten periods apart describe different outages; only
     observations within the window corroborate each other. *)
  let a = Detect.Attribution.create ~window:4 ~threshold:2 () in
  ignore (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:1 ~period:0);
  Alcotest.(check (list int))
    "stale suspicion does not corroborate" []
    (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:2 ~period:10);
  Alcotest.(check (list int))
    "a fresh pair does" [ 2; 3 ]
    (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:3 ~period:12)

let test_corroboration_needs_distinct_watchers () =
  let a = Detect.Attribution.create ~window:8 ~threshold:2 () in
  ignore (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:1 ~period:0);
  ignore (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:1 ~period:1);
  Alcotest.(check (list int))
    "one watcher repeating is not a quorum" []
    (Detect.Attribution.note_suspicion a ~sender:7 ~watcher:1 ~period:2);
  check_bool "not corroborated" false
    (Detect.Attribution.is_corroborated a ~sender:7)

(* Attribution *)

let test_attribution_threshold () =
  let a = Detect.Attribution.create ~threshold:2 () in
  Alcotest.(check (list int)) "one path: nobody" [] (Detect.Attribution.note_path a ~a:4 ~b:1);
  Alcotest.(check (list int))
    "second distinct counterpart attributes node 4" [ 4 ]
    (Detect.Attribution.note_path a ~a:4 ~b:2);
  check_bool "attributed" true (Detect.Attribution.is_attributed a 4);
  check_bool "counterparties tracked" true
    (List.sort Int.compare (Detect.Attribution.counterparties a 4) = [ 1; 2 ])

let test_attribution_duplicate_paths_dont_count () =
  let a = Detect.Attribution.create ~threshold:2 () in
  ignore (Detect.Attribution.note_path a ~a:4 ~b:1);
  ignore (Detect.Attribution.note_path a ~a:4 ~b:1);
  ignore (Detect.Attribution.note_path a ~a:1 ~b:4);
  check_bool "same path repeated never attributes" false
    (Detect.Attribution.is_attributed a 4)

let test_attribution_no_false_positive_with_threshold_f1 () =
  (* f = 1, threshold 2: a correct node facing one faulty counterpart
     never crosses the threshold, however many declarations repeat. *)
  let a = Detect.Attribution.create ~threshold:2 () in
  for _ = 1 to 10 do
    ignore (Detect.Attribution.note_path a ~a:0 ~b:9)
  done;
  check_bool "victim safe" false (Detect.Attribution.is_attributed a 0);
  check_bool "attacker not yet attributable either" false
    (Detect.Attribution.is_attributed a 9);
  (* The attacker omits toward a second counterpart: now it crosses. *)
  Alcotest.(check (list int)) "attacker attributed" [ 9 ]
    (Detect.Attribution.note_path a ~a:1 ~b:9)

let test_attribution_order_deterministic () =
  (* [attributed] reports nodes in first-attribution order, independent
     of the endpoint order inside each declaration — artifact diffs and
     eviction decisions must not depend on who declared first. *)
  let go order =
    let a = Detect.Attribution.create ~threshold:2 () in
    List.iter
      (fun (x, y) -> ignore (Detect.Attribution.note_path a ~a:x ~b:y))
      order;
    Detect.Attribution.attributed a
  in
  Alcotest.(check (list int)) "9 attributed before 5" [ 9; 5 ]
    (go [ (9, 1); (9, 2); (5, 3); (5, 4) ]);
  Alcotest.(check (list int)) "endpoint order irrelevant" [ 9; 5 ]
    (go [ (1, 9); (2, 9); (3, 5); (4, 5) ])

let test_attribution_counterparties_first_seen () =
  let a = Detect.Attribution.create ~threshold:3 () in
  ignore (Detect.Attribution.note_path a ~a:4 ~b:2);
  ignore (Detect.Attribution.note_path a ~a:1 ~b:4);
  ignore (Detect.Attribution.note_path a ~a:4 ~b:0);
  Alcotest.(check (list int))
    "counterparties in first-seen order" [ 2; 1; 0 ]
    (Detect.Attribution.counterparties a 4)

let test_attribution_reports_each_node_once () =
  let a = Detect.Attribution.create ~threshold:1 () in
  Alcotest.(check (list int)) "both endpoints at threshold 1" [ 4; 1 ]
    (Detect.Attribution.note_path a ~a:4 ~b:1);
  Alcotest.(check (list int))
    "4 not re-reported; its new counterpart 2 crosses threshold 1" [ 2 ]
    (Detect.Attribution.note_path a ~a:4 ~b:2)

let prop_attribution_needs_threshold_distinct =
  QCheck.Test.make
    ~name:"a node is attributed iff it saw >= threshold distinct counterparties"
    ~count:200
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(1 -- 20) (int_bound 5)))
    (fun (threshold, others) ->
      let a = Detect.Attribution.create ~threshold () in
      List.iter (fun b -> ignore (Detect.Attribution.note_path a ~a:100 ~b)) others;
      let distinct = List.length (List.sort_uniq Int.compare others) in
      Detect.Attribution.is_attributed a 100 = (distinct >= threshold))

let suite =
  [
    ("path admissibility", `Quick, test_path_admissibility);
    ("watchdog: on-time arrivals are quiet", `Quick, test_watchdog_on_time);
    ("watchdog: lateness measured beyond margin", `Quick, test_watchdog_late);
    ("watchdog: margin absorbs jitter", `Quick, test_watchdog_margin_absorbs);
    ("watchdog: overdue reported exactly once", `Quick, test_watchdog_overdue_once);
    ("watchdog: unexpected arrivals ignored", `Quick, test_watchdog_unexpected_arrival);
    ("watchdog: expectations are idempotent", `Quick, test_watchdog_expect_idempotent);
    ("watchdog: strike threshold", `Quick, test_watchdog_strikes);
    ("watchdog: strikes counted per sender", `Quick, test_watchdog_strikes_per_sender);
    ("watchdog: strikes shared across paths", `Quick, test_strikes_shared_across_paths);
    ("watchdog: account bumped once per sweep", `Quick, test_strike_bumped_once_per_sweep);
    ("watchdog: timely arrivals reset the account", `Quick, test_strike_reset_on_timely_arrival);
    ("corroboration: quorum fires exactly once", `Quick, test_corroboration_quorum_once);
    ("corroboration: window ages suspicions out", `Quick, test_corroboration_window_ages_out);
    ("corroboration: needs distinct watchers", `Quick, test_corroboration_needs_distinct_watchers);
    ("attribution: threshold of distinct counterparties", `Quick, test_attribution_threshold);
    ("attribution: duplicates don't count", `Quick, test_attribution_duplicate_paths_dont_count);
    ("attribution: no false positives at f+1", `Quick, test_attribution_no_false_positive_with_threshold_f1);
    ("attribution: reported once", `Quick, test_attribution_reports_each_node_once);
    ("attribution: deterministic order", `Quick, test_attribution_order_deterministic);
    ("attribution: counterparties first-seen", `Quick, test_attribution_counterparties_first_seen);
    QCheck_alcotest.to_alcotest prop_attribution_needs_threshold_distinct;
  ]
