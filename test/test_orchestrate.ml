(* The orchestration subsystem: deterministic sharding, resumable runs,
   shard combining and adaptive frontier search. The load-bearing
   property throughout is byte-identity: however a campaign's execution
   is partitioned — shards, worker counts, interrupt-and-resume — the
   canonical artifact is the same bytes. *)

open Btr_util
module Campaign = Btr_campaign.Campaign
module Orchestrate = Btr_campaign.Orchestrate
module Obs = Btr_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let two_axis_grid =
  {
    Campaign.default_grid with
    Campaign.fault_bounds = [ 1; 2 ];
    control_shares = [ None; Some 0.005 ];
  }

let unsharded_lines ?jobs spec =
  match Orchestrate.run ?jobs ~shard:Orchestrate.unsharded spec with
  | Ok r -> r.Orchestrate.lines
  | Error m -> Alcotest.failf "unsharded run failed: %s" m

(* --- sharding -------------------------------------------------------- *)

let test_shard_of_string () =
  let ok s i n =
    match Orchestrate.shard_of_string s with
    | Ok sh ->
      check_int "index" i sh.Orchestrate.index;
      check_int "count" n sh.Orchestrate.count;
      check_string "roundtrip" (Printf.sprintf "%d/%d" i n)
        (Orchestrate.shard_to_string sh)
    | Error m -> Alcotest.failf "shard %S rejected: %s" s m
  in
  ok "0/1" 0 1;
  ok "2/3" 2 3;
  ok " 1/4 " 1 4;
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Result.is_error (Orchestrate.shard_of_string s)))
    [ ""; "1"; "1/"; "/2"; "2/2"; "-1/2"; "0/0"; "a/b"; "1/2/3" ]

let test_shard_rule_pinned () =
  (* The partitioning rule is persisted in artifacts and cross-checked
     by combine, so it must never drift. These values were computed at
     introduction time; a mismatch means old shard artifacts no longer
     combine. *)
  let got seed count n =
    List.init n (fun i -> Orchestrate.shard_of_trial ~seed ~count i)
  in
  check_bool "seed 5, 2 shards" true
    (got 5 2 12 = [ 1; 0; 0; 0; 0; 0; 1; 0; 0; 0; 0; 1 ]);
  check_bool "seed 5, 3 shards" true
    (got 5 3 12 = [ 0; 2; 1; 1; 2; 2; 2; 2; 0; 2; 1; 0 ]);
  check_bool "seed 42, 4 shards" true
    (got 42 4 8 = [ 1; 3; 1; 2; 1; 0; 1; 1 ]);
  check_bool "count 1 is identically shard 0" true
    (got 123 1 20 = List.init 20 (fun _ -> 0))

let test_shard_partition () =
  (* Union over the shards = compile, disjointly, for n in {2, 3, 4}. *)
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:23 ~seed:9 () in
  let all =
    List.map (fun (t : Campaign.trial) -> t.Campaign.index) (Campaign.compile spec)
  in
  List.iter
    (fun count ->
      let parts =
        List.init count (fun index ->
            List.map
              (fun (t : Campaign.trial) -> t.Campaign.index)
              (Orchestrate.shard_trials { Orchestrate.index; count } spec))
      in
      let union = List.sort Int.compare (List.concat parts) in
      check_bool
        (Printf.sprintf "union of %d shards = compile" count)
        true (union = all);
      (* each shard ascending (disjointness follows from union = all) *)
      List.iter
        (fun part -> check_bool "ascending" true (List.sort Int.compare part = part))
        parts)
    [ 2; 3; 4 ]

let test_spec_fingerprint () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:10 ~seed:4 () in
  let fp = Orchestrate.spec_fingerprint spec in
  check_string "deterministic" fp (Orchestrate.spec_fingerprint spec);
  List.iter
    (fun (what, other) ->
      check_bool (what ^ " changes the fingerprint") true
        (Orchestrate.spec_fingerprint other <> fp))
    [
      ("seed", { spec with Campaign.seed = 5 });
      ("trials", { spec with Campaign.trials = 11 });
      ("shrink", { spec with Campaign.shrink = false });
      ("grid", { spec with Campaign.grid = Campaign.default_grid });
    ]

(* --- the acceptance property ----------------------------------------- *)

let prop_shard_combine_resume_identity =
  (* ISSUE 8's acceptance property: for shard counts n in {2, 3} the
     combined shard artifacts are byte-identical to the unsharded run
     at jobs in {1, 4}, and an interrupted run resumed from its partial
     artifact reproduces the same bytes (hence the same fingerprint). *)
  QCheck.Test.make ~name:"shard/combine/resume reproduce unsharded bytes" ~count:15
    QCheck.(map (fun s -> abs s) small_int)
    (fun seed ->
      let spec =
        Campaign.spec ~grid:two_axis_grid
          ~trials:(6 + (seed mod 7))
          ~seed ~shrink:false ()
      in
      let full = unsharded_lines ~jobs:1 spec in
      let sharded_ok =
        List.for_all
          (fun count ->
            List.for_all
              (fun jobs ->
                let parts =
                  List.init count (fun index ->
                      match
                        Orchestrate.run ~jobs ~shard:{ Orchestrate.index; count } spec
                      with
                      | Ok r -> r.Orchestrate.lines
                      | Error _ -> [])
                in
                match Orchestrate.combine parts with
                | Ok (lines, _) -> lines = full
                | Error _ -> false)
              [ 1; 4 ])
          [ 2; 3 ]
      in
      let resume_ok =
        (* interrupt shard 0/2 partway, resume from the partial bytes *)
        let shard = { Orchestrate.index = 0; count = 2 } in
        match Orchestrate.run ~jobs:1 ~max_trials:2 ~shard spec with
        | Error _ -> false
        | Ok partial -> (
          match Orchestrate.parse_artifact partial.Orchestrate.lines with
          | Error _ -> false
          | Ok art -> (
            match Orchestrate.run ~jobs:4 ~resume:art ~shard spec with
            | Error _ -> false
            | Ok resumed -> (
              resumed.Orchestrate.complete
              &&
              match Orchestrate.run ~jobs:1 ~shard spec with
              | Ok direct -> resumed.Orchestrate.lines = direct.Orchestrate.lines
              | Error _ -> false)))
      in
      sharded_ok && resume_ok)

(* --- resume ----------------------------------------------------------- *)

let test_resume_counters () =
  (* skipped + executed = shard total, on the result and on the
     registry: campaign.resume.skipped + campaign.trials = campaign.shard.trials. *)
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:11 ~seed:3 ~shrink:false () in
  let shard = Orchestrate.unsharded in
  let partial =
    match Orchestrate.run ~jobs:1 ~max_trials:4 ~shard spec with
    | Ok r -> r
    | Error m -> Alcotest.failf "partial run failed: %s" m
  in
  check_bool "partial incomplete" true (not partial.Orchestrate.complete);
  check_int "partial executed" 4 partial.Orchestrate.executed;
  let art =
    match Orchestrate.parse_artifact partial.Orchestrate.lines with
    | Ok a -> a
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  check_bool "partial artifact not complete" true (not art.Orchestrate.a_complete);
  let obs = Obs.with_memory () in
  let resumed =
    match Orchestrate.run ~obs ~jobs:2 ~resume:art ~shard spec with
    | Ok r -> r
    | Error m -> Alcotest.failf "resume failed: %s" m
  in
  check_int "skipped" 4 resumed.Orchestrate.skipped;
  check_int "executed" 7 resumed.Orchestrate.executed;
  check_bool "complete" true resumed.Orchestrate.complete;
  let counters = Obs.Registry.counters (Obs.registry obs) in
  let counter name = Option.value ~default:(-1) (List.assoc_opt name counters) in
  check_int "campaign.resume.skipped" 4 (counter "campaign.resume.skipped");
  check_int "campaign.trials counts only the remainder" 7 (counter "campaign.trials");
  check_int "skipped + executed = shard total" (counter "campaign.shard.trials")
    (counter "campaign.resume.skipped" + counter "campaign.trials");
  let events = Obs.events obs in
  check_int "one resume event" 1
    (List.length
       (List.filter
          (fun e ->
            match e.Obs.payload with
            | Obs.Campaign_resumed { skipped = 4; remaining = 7 } -> true
            | _ -> false)
          events));
  check_int "one shard event" 1
    (List.length
       (List.filter
          (fun e ->
            match e.Obs.payload with Obs.Campaign_sharded _ -> true | _ -> false)
          events))

let test_resume_rejects_mismatch () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:8 ~seed:3 ~shrink:false () in
  let shard = Orchestrate.unsharded in
  let art =
    match Orchestrate.run ~jobs:1 ~max_trials:3 ~shard spec with
    | Ok r -> (
      match Orchestrate.parse_artifact r.Orchestrate.lines with
      | Ok a -> a
      | Error m -> Alcotest.failf "parse failed: %s" m)
    | Error m -> Alcotest.failf "run failed: %s" m
  in
  let rejects what spec' shard' =
    match Orchestrate.run ~jobs:1 ~resume:art ~shard:shard' spec' with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "resume accepted a mismatched %s" what
  in
  rejects "seed" { spec with Campaign.seed = 4 } shard;
  rejects "trial count" { spec with Campaign.trials = 9 } shard;
  rejects "grid" { spec with Campaign.grid = Campaign.default_grid } shard;
  rejects "shrink flag" { spec with Campaign.shrink = true } shard;
  rejects "shard" spec { Orchestrate.index = 0; count = 2 }

let test_resume_of_complete_artifact_is_noop () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:7 ~seed:6 ~shrink:false () in
  let shard = Orchestrate.unsharded in
  let full =
    match Orchestrate.run ~jobs:1 ~shard spec with
    | Ok r -> r
    | Error m -> Alcotest.failf "run failed: %s" m
  in
  let art =
    match Orchestrate.parse_artifact full.Orchestrate.lines with
    | Ok a -> a
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  match Orchestrate.run ~jobs:1 ~resume:art ~shard spec with
  | Error m -> Alcotest.failf "resume failed: %s" m
  | Ok r ->
    check_int "nothing executed" 0 r.Orchestrate.executed;
    check_int "everything skipped" 7 r.Orchestrate.skipped;
    check_bool "bytes reproduced" true
      (r.Orchestrate.lines = full.Orchestrate.lines)

(* --- artifact parsing ------------------------------------------------- *)

let test_parse_artifact_torn_tail () =
  let spec = Campaign.spec ~trials:5 ~seed:2 ~shrink:false () in
  let lines = unsharded_lines ~jobs:1 spec in
  (* killing the writer mid-line leaves a torn last line: dropped *)
  let torn = lines @ [ "{\"trial\":99,\"work" ] in
  (match Orchestrate.parse_artifact torn with
  | Error m -> Alcotest.failf "torn tail not tolerated: %s" m
  | Ok a -> check_int "verdicts intact" 5 (List.length a.Orchestrate.a_verdicts));
  (* a malformed line in the middle is corruption, not a torn write *)
  let corrupt = List.mapi (fun i l -> if i = 2 then "{\"bad" else l) lines in
  check_bool "mid-file corruption rejected" true
    (Result.is_error (Orchestrate.parse_artifact corrupt))

let test_parse_artifact_rejects () =
  let spec = Campaign.spec ~trials:4 ~seed:2 ~shrink:false () in
  let lines = unsharded_lines ~jobs:1 spec in
  check_bool "no header" true
    (Result.is_error (Orchestrate.parse_artifact (List.tl lines)));
  check_bool "concatenated artifacts" true
    (Result.is_error (Orchestrate.parse_artifact (lines @ lines)));
  (* duplicate verdict line *)
  let dup =
    match lines with
    | h :: v :: rest -> h :: v :: v :: rest
    | _ -> Alcotest.fail "artifact too short"
  in
  check_bool "duplicate trial" true (Result.is_error (Orchestrate.parse_artifact dup));
  (* a v1 (pre-orchestration) artifact has no spec_fp/shard header *)
  let v1 = Campaign.result_json_lines (Campaign.run ~jobs:1 spec) in
  check_bool "v1 artifact rejected with guidance" true
    (match Orchestrate.parse_artifact v1 with
    | Error m -> contains ~sub:"version 1" m
    | Ok _ -> false)

(* --- combine ---------------------------------------------------------- *)

let shard_lines spec count index =
  match Orchestrate.run ~jobs:1 ~shard:{ Orchestrate.index; count } spec with
  | Ok r -> r.Orchestrate.lines
  | Error m -> Alcotest.failf "shard %d/%d failed: %s" index count m

let test_combine_rejects () =
  let spec = Campaign.spec ~grid:two_axis_grid ~trials:10 ~seed:8 ~shrink:false () in
  let s0 = shard_lines spec 2 0 and s1 = shard_lines spec 2 1 in
  let expect_err what inputs =
    match Orchestrate.combine inputs with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "combine accepted %s" what
  in
  expect_err "nothing" [];
  expect_err "a missing shard" [ s0 ];
  expect_err "a duplicated shard" [ s0; s0 ];
  let other = Campaign.spec ~grid:two_axis_grid ~trials:10 ~seed:9 ~shrink:false () in
  expect_err "shards of different campaigns" [ s0; shard_lines other 2 1 ];
  (* an incomplete shard must be resumed before combining *)
  let partial =
    match
      Orchestrate.run ~jobs:1 ~max_trials:1 ~shard:{ Orchestrate.index = 1; count = 2 }
        spec
    with
    | Ok r -> r.Orchestrate.lines
    | Error m -> Alcotest.failf "partial failed: %s" m
  in
  expect_err "an incomplete shard" [ s0; partial ];
  (* the happy path still works *)
  match Orchestrate.combine [ s1; s0 ] with
  | Error m -> Alcotest.failf "order-independent combine failed: %s" m
  | Ok (lines, _) ->
    check_bool "input order does not matter" true (lines = unsharded_lines ~jobs:1 spec)

(* --- frontier --------------------------------------------------------- *)

let r_frontier_spec =
  {
    Orchestrate.slice_grid = Campaign.default_grid;
    axis = Orchestrate.Axis_r;
    lo = Time.ms 20;
    hi = Time.ms 400;
    tolerance = Time.ms 10;
    probes = 2;
    fseed = 3;
  }

let test_frontier_matches_grid_scan () =
  (* The acceptance bar: bisection finds the same boundary as the
     exhaustive lattice scan on the reference slice, in at most half
     the trials (it is ~6x fewer here). *)
  let fr =
    match Orchestrate.frontier r_frontier_spec with
    | Ok fr -> fr
    | Error m -> Alcotest.failf "frontier failed: %s" m
  in
  let scan =
    match Orchestrate.grid_scan r_frontier_spec with
    | Ok fr -> fr
    | Error m -> Alcotest.failf "grid scan failed: %s" m
  in
  check_int "one slice" 1 (List.length fr.Orchestrate.slices);
  let fs = List.hd fr.Orchestrate.slices and ss = List.hd scan.Orchestrate.slices in
  (match fs.Orchestrate.found, ss.Orchestrate.found with
  | Some b, Some b' ->
    check_int "same admit boundary" b'.Orchestrate.admit_at b.Orchestrate.admit_at;
    check_int "same violate boundary" b'.Orchestrate.violate_at b.Orchestrate.violate_at;
    check_int "adjacent lattice points" r_frontier_spec.Orchestrate.tolerance
      (b.Orchestrate.admit_at - b.Orchestrate.violate_at)
  | _ -> Alcotest.fail "expected a boundary on the reference slice");
  check_bool "endpoint verdicts agree" true
    (fs.Orchestrate.lo_admit = ss.Orchestrate.lo_admit
    && fs.Orchestrate.hi_admit = ss.Orchestrate.hi_admit);
  check_bool "R admits above the boundary" true
    (fs.Orchestrate.hi_admit && not fs.Orchestrate.lo_admit);
  check_bool
    (Printf.sprintf "<= 0.5x the trials (%d vs %d)" fr.Orchestrate.total_probes
       scan.Orchestrate.total_probes)
    true
    (2 * fr.Orchestrate.total_probes <= scan.Orchestrate.total_probes);
  check_bool "bisection evals are logarithmic" true
    (fs.Orchestrate.evals <= 8 && ss.Orchestrate.evals = fr.Orchestrate.points)

let test_frontier_f_axis () =
  (* f admits below the boundary: direction flips relative to R. *)
  let fs =
    {
      Orchestrate.slice_grid =
        { Campaign.default_grid with Campaign.topologies = [ "ring" ]; node_counts = [ 7 ] };
      axis = Orchestrate.Axis_f;
      lo = 0;
      hi = 3;
      tolerance = 1;
      probes = 2;
      fseed = 3;
    }
  in
  match Orchestrate.frontier fs, Orchestrate.grid_scan fs with
  | Ok fr, Ok scan -> (
    let s = List.hd fr.Orchestrate.slices in
    check_bool "f admits at lo" true s.Orchestrate.lo_admit;
    check_bool "f violates at hi" true (not s.Orchestrate.hi_admit);
    match s.Orchestrate.found, (List.hd scan.Orchestrate.slices).Orchestrate.found with
    | Some b, Some b' ->
      check_int "same boundary as scan" b'.Orchestrate.admit_at b.Orchestrate.admit_at;
      check_bool "admit side below violate side" true
        (b.Orchestrate.admit_at < b.Orchestrate.violate_at)
    | _ -> Alcotest.fail "expected an f boundary")
  | Error m, _ | _, Error m -> Alcotest.failf "f frontier failed: %s" m

let test_frontier_no_boundary () =
  (* Entirely inside the admit region: two endpoint evals, no boundary. *)
  let fs = { r_frontier_spec with Orchestrate.lo = Time.ms 150; hi = Time.ms 300 } in
  match Orchestrate.frontier fs with
  | Error m -> Alcotest.failf "frontier failed: %s" m
  | Ok fr ->
    let s = List.hd fr.Orchestrate.slices in
    check_bool "no boundary" true (s.Orchestrate.found = None);
    check_bool "both endpoints admit" true
      (s.Orchestrate.lo_admit && s.Orchestrate.hi_admit);
    check_int "only the endpoints evaluated" 2 s.Orchestrate.evals

let test_frontier_counters_and_events () =
  let obs = Obs.with_memory () in
  match Orchestrate.frontier ~obs r_frontier_spec with
  | Error m -> Alcotest.failf "frontier failed: %s" m
  | Ok fr ->
    let counters = Obs.Registry.counters (Obs.registry obs) in
    let counter name = Option.value ~default:(-1) (List.assoc_opt name counters) in
    check_int "campaign.frontier.probes" fr.Orchestrate.total_probes
      (counter "campaign.frontier.probes");
    check_int "campaign.frontier.slices" (List.length fr.Orchestrate.slices)
      (counter "campaign.frontier.slices");
    let located =
      List.filter_map
        (fun e ->
          match e.Obs.payload with
          | Obs.Frontier_located { axis; boundary; _ } -> Some (axis, boundary)
          | _ -> None)
        (Obs.events obs)
    in
    check_int "one event per slice" (List.length fr.Orchestrate.slices)
      (List.length located);
    (match located, (List.hd fr.Orchestrate.slices).Orchestrate.found with
    | [ (axis, boundary) ], Some b ->
      check_string "axis tag" "r" axis;
      check_int "boundary payload is the admit side" b.Orchestrate.admit_at boundary
    | _ -> Alcotest.fail "expected one located event with a boundary")

let test_frontier_validation () =
  let bad what fs =
    match Orchestrate.frontier fs with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "frontier accepted %s" what
  in
  bad "lo >= hi" { r_frontier_spec with Orchestrate.lo = Time.ms 400; hi = Time.ms 20 };
  bad "zero tolerance" { r_frontier_spec with Orchestrate.tolerance = 0 };
  bad "zero probes" { r_frontier_spec with Orchestrate.probes = 0 };
  bad "range narrower than the lattice"
    { r_frontier_spec with Orchestrate.lo = 100; hi = 105; tolerance = 10 };
  bad "zero R lo" { r_frontier_spec with Orchestrate.lo = 0 };
  bad "empty slice grid"
    {
      r_frontier_spec with
      Orchestrate.slice_grid =
        { Campaign.default_grid with Campaign.workloads = [] };
    }

let test_frontier_artifact_roundtrip () =
  match Orchestrate.frontier r_frontier_spec with
  | Error m -> Alcotest.failf "frontier failed: %s" m
  | Ok fr -> (
    let lines = Orchestrate.frontier_lines fr in
    check_bool "tagged as frontier artifact" true
      (Orchestrate.is_frontier_artifact lines);
    check_bool "campaign artifacts are not" true
      (not
         (Orchestrate.is_frontier_artifact
            (unsharded_lines ~jobs:1
               (Campaign.spec ~trials:2 ~seed:1 ~shrink:false ()))));
    match Orchestrate.render_frontier lines with
    | Error m -> Alcotest.failf "render failed: %s" m
    | Ok report ->
      check_bool "reports the axis" true (contains ~sub:"axis r" report);
      check_bool "reports the boundary" true (contains ~sub:"admit >=" report);
      check_bool "frontier lines are deterministic" true
        (match Orchestrate.frontier r_frontier_spec with
        | Ok fr' -> Orchestrate.frontier_lines fr' = lines
        | Error _ -> false))

let suite =
  [
    Alcotest.test_case "shard_of_string" `Quick test_shard_of_string;
    Alcotest.test_case "shard rule pinned" `Quick test_shard_rule_pinned;
    Alcotest.test_case "shards partition the trial list" `Quick test_shard_partition;
    Alcotest.test_case "spec fingerprint" `Quick test_spec_fingerprint;
    QCheck_alcotest.to_alcotest prop_shard_combine_resume_identity;
    Alcotest.test_case "resume counters and events" `Quick test_resume_counters;
    Alcotest.test_case "resume rejects mismatches" `Quick test_resume_rejects_mismatch;
    Alcotest.test_case "resume of a complete artifact" `Quick
      test_resume_of_complete_artifact_is_noop;
    Alcotest.test_case "parse tolerates a torn tail" `Quick test_parse_artifact_torn_tail;
    Alcotest.test_case "parse rejects corrupt artifacts" `Quick test_parse_artifact_rejects;
    Alcotest.test_case "combine cross-checks" `Quick test_combine_rejects;
    Alcotest.test_case "frontier = grid scan at <= 0.5x trials" `Quick
      test_frontier_matches_grid_scan;
    Alcotest.test_case "frontier on the f axis" `Quick test_frontier_f_axis;
    Alcotest.test_case "frontier without a boundary" `Quick test_frontier_no_boundary;
    Alcotest.test_case "frontier counters and events" `Quick
      test_frontier_counters_and_events;
    Alcotest.test_case "frontier validation" `Quick test_frontier_validation;
    Alcotest.test_case "frontier artifact roundtrip" `Quick
      test_frontier_artifact_roundtrip;
  ]
