open Btr_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Time *)

let test_time_units () =
  check_int "ms" 1_000 (Time.ms 1);
  check_int "sec" 1_000_000 (Time.sec 1);
  check_int "add" (Time.ms 3) (Time.add (Time.ms 1) (Time.ms 2));
  check_int "round-trip of_sec_f" (Time.ms 1500) (Time.of_sec_f 1.5);
  Alcotest.(check (float 1e-9)) "to_sec_f" 0.25 (Time.to_sec_f (Time.ms 250))

let test_time_infinity () =
  check_int "add inf" Time.infinity (Time.add Time.infinity (Time.sec 5));
  check_int "add to inf" Time.infinity (Time.add (Time.sec 5) Time.infinity);
  check_bool "inf is max" true (Time.compare Time.infinity (Time.sec 1000000) > 0)

let test_time_lcm () =
  check_int "lcm 4 6" 12 (Time.lcm 4 6);
  check_int "lcm periods" (Time.ms 20) (Time.lcm (Time.ms 4) (Time.ms 10));
  check_int "lcm same" (Time.ms 5) (Time.lcm (Time.ms 5) (Time.ms 5))

let test_time_pp () =
  Alcotest.(check string) "s" "2s" (Time.to_string (Time.sec 2));
  Alcotest.(check string) "ms" "15ms" (Time.to_string (Time.ms 15));
  Alcotest.(check string) "us" "7us" (Time.to_string 7);
  Alcotest.(check string) "inf" "inf" (Time.to_string Time.infinity)

(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check_bool "different streams" true (xs <> ys)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int child 1_000_000) in
  check_bool "split stream differs" true (xs <> ys)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check_bool "in [0,10)" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 8 in
    check_bool "in [5,8]" true (w >= 5 && w <= 8);
    let f = Rng.float r 2.0 in
    check_bool "float in [0,2)" true (f >= 0.0 && f < 2.0)
  done

let test_rng_sample () =
  let r = Rng.create 11 in
  let s = Rng.sample r 3 [ 1; 2; 3; 4; 5 ] in
  check_int "sample size" 3 (List.length s);
  check_int "distinct" 3 (List.length (List.sort_uniq Int.compare s));
  check_int "sample oversized" 2 (List.length (Rng.sample r 10 [ 1; 2 ]))

let test_rng_gaussian () =
  let r = Rng.create 13 in
  let xs = List.init 5000 (fun _ -> Rng.gaussian r ~mean:10.0 ~stddev:2.0) in
  let m = Stats.mean xs in
  check_bool "mean near 10" true (Float.abs (m -. 10.0) < 0.2);
  let sd = Stats.stddev xs in
  check_bool "sd near 2" true (Float.abs (sd -. 2.0) < 0.2)

(* Pheap *)

module Ih = Pheap.Make (Int)

let test_pheap_basic () =
  let h = Ih.of_list [ 5; 1; 4; 1; 3 ] in
  check_int "size" 5 (Ih.size h);
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (Ih.to_sorted_list h)

let test_pheap_empty () =
  check_bool "empty" true (Ih.is_empty Ih.empty);
  check_bool "find_min none" true (Ih.find_min Ih.empty = None);
  check_bool "delete_min none" true (Ih.delete_min Ih.empty = None)

let test_pheap_merge () =
  let a = Ih.of_list [ 3; 9 ] and b = Ih.of_list [ 1; 7 ] in
  Alcotest.(check (list int)) "merged" [ 1; 3; 7; 9 ] (Ih.to_sorted_list (Ih.merge a b))

let test_pheap_persistent () =
  let h = Ih.of_list [ 2; 1 ] in
  match Ih.delete_min h with
  | None -> Alcotest.fail "expected min"
  | Some (m, _) ->
    check_int "min" 1 m;
    check_int "original untouched" 2 (Ih.size h)

let prop_pheap_sorts =
  QCheck.Test.make ~name:"pheap drains any list in sorted order" ~count:200
    QCheck.(list int)
    (fun xs -> Ih.to_sorted_list (Ih.of_list xs) = List.sort Int.compare xs)

let test_pheap_fold () =
  let h = Ih.of_list [ 4; 2; 7 ] in
  check_int "fold sums every element" 13 (Ih.fold ( + ) 0 h);
  check_int "fold on empty" 0 (Ih.fold ( + ) 0 Ih.empty)

(* Drain a heap checking only order and count — no materialized list, so
   the memory load at production scale stays flat. *)
let drain_sorted h =
  let count = ref 0 and last = ref min_int and sorted = ref true in
  let rec go h =
    match Ih.delete_min h with
    | None -> ()
    | Some (x, h') ->
      if x < !last then sorted := false;
      last := x;
      incr count;
      go h'
  in
  go h;
  (!count, !sorted)

(* merge_pairs used to recurse once per sibling pair, and ascending
   inserts park every element in one root-level sibling list — so the
   first delete_min at production-scale event counts overflowed the
   stack. Descending inserts instead chain the heap n deep, which the
   traversals (fold/size) must also survive. Both shapes at 1M. *)
let test_pheap_million_drain () =
  let n = 1_000_000 in
  let asc = ref Ih.empty in
  for i = 1 to n do
    asc := Ih.insert i !asc
  done;
  let count, sorted = drain_sorted !asc in
  check_int "ascending: all drained" n count;
  check_bool "ascending: nondecreasing" true sorted;
  let desc = ref Ih.empty in
  for i = n downto 1 do
    desc := Ih.insert i !desc
  done;
  check_int "descending: fold survives the chain" n (Ih.fold (fun a _ -> a + 1) 0 !desc);
  check_int "descending: size agrees" n (Ih.size !desc);
  let count, sorted = drain_sorted !desc in
  check_int "descending: all drained" n count;
  check_bool "descending: nondecreasing" true sorted

let prop_pheap_order_at_depth =
  (* Heap order holds at depth: successive delete-min values never
     decrease over random insert streams well past toy sizes. *)
  QCheck.Test.make ~name:"pheap delete-min is nondecreasing at depth" ~count:20
    QCheck.(pair (int_range 1 5_000) small_int)
    (fun (n, seed) ->
      let rng = Rng.create (seed + 1) in
      let h = ref Ih.empty in
      for _ = 1 to n do
        h := Ih.insert (Rng.int rng 1_000_000) !h
      done;
      let count, sorted = drain_sorted !h in
      count = n && sorted)

(* Random interleaving of inserts and delete-mins against a sorted-list
   model: catches heap-shape bugs plain drain-after-build misses. *)
let prop_pheap_interleaved =
  QCheck.Test.make
    ~name:"pheap interleaved insert/delete-min matches a sorted-list model"
    ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let ok = ref true in
      let heap = ref Ih.empty and model = ref [] in
      List.iter
        (fun (is_delete, x) ->
          if is_delete then
            match Ih.delete_min !heap, !model with
            | None, [] -> ()
            | Some (m, h), y :: rest ->
              if m <> y then ok := false;
              heap := h;
              model := rest
            | Some _, [] | None, _ :: _ -> ok := false
          else begin
            heap := Ih.insert x !heap;
            model := List.sort Int.compare (x :: !model)
          end)
        ops;
      !ok && Ih.to_sorted_list !heap = !model)

let prop_pheap_merge_is_union =
  QCheck.Test.make ~name:"pheap merge drains the multiset union" ~count:200
    QCheck.(pair (list small_int) (list small_int))
    (fun (xs, ys) ->
      Ih.to_sorted_list (Ih.merge (Ih.of_list xs) (Ih.of_list ys))
      = List.sort Int.compare (xs @ ys))

(* Stats *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  check_int "count" 4 s.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.max;
  Alcotest.(check (float 1e-9)) "p50" 2.5 s.p50

let test_stats_percentile () =
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 0.0);
  Alcotest.(check (float 1e-9)) "p100" 3.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 100.0);
  Alcotest.(check (float 1e-9)) "singleton" 5.0 (Stats.percentile [ 5.0 ] 90.0)

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  check_int "buckets" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check_int "all counted" 4 total;
  check_int "empty data" 0 (List.length (Stats.histogram ~buckets:3 []))

let test_stats_acc () =
  let acc = Stats.Acc.create () in
  Stats.Acc.add acc 1.0;
  Stats.Acc.add acc 3.0;
  check_int "count" 2 (Stats.Acc.count acc);
  Alcotest.(check (list (float 1e-9))) "order" [ 1.0; 3.0 ] (Stats.Acc.values acc)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile stays within data range" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      let lo = List.fold_left Stdlib.min Float.infinity xs in
      let hi = List.fold_left Stdlib.max Float.neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* Table *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  check_int "rows" 2 (Table.row_count t);
  let s = Table.render t in
  check_bool "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  check_bool "pads short rows" true (String.length s > 20)

let suite =
  [
    ("time units", `Quick, test_time_units);
    ("time infinity", `Quick, test_time_infinity);
    ("time lcm", `Quick, test_time_lcm);
    ("time pp", `Quick, test_time_pp);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng sample", `Quick, test_rng_sample);
    ("rng gaussian", `Slow, test_rng_gaussian);
    ("pheap basic", `Quick, test_pheap_basic);
    ("pheap empty", `Quick, test_pheap_empty);
    ("pheap merge", `Quick, test_pheap_merge);
    ("pheap persistent", `Quick, test_pheap_persistent);
    ("pheap fold", `Quick, test_pheap_fold);
    ("pheap 1M-element drain (no stack overflow)", `Slow, test_pheap_million_drain);
    ("stats summary", `Quick, test_stats_summary);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats histogram", `Quick, test_stats_histogram);
    ("stats acc", `Quick, test_stats_acc);
    ("table render", `Quick, test_table_render);
    QCheck_alcotest.to_alcotest prop_pheap_sorts;
    QCheck_alcotest.to_alcotest prop_pheap_interleaved;
    QCheck_alcotest.to_alcotest prop_pheap_merge_is_union;
    QCheck_alcotest.to_alcotest prop_pheap_order_at_depth;
    QCheck_alcotest.to_alcotest prop_percentile_within_range;
  ]
