(* Differential harness for the two engine backends.

   The timing wheel (Btr_util.Twheel, the production queue) and the
   pairing heap (the independently-simple oracle) must be observably
   indistinguishable: identical (time, callback) firing sequences,
   identical clock trajectory, identical pending counts and identical
   sim.engine.* obs counters for any sequence of engine operations.
   A random op-script interpreter drives both backends over the same
   script and compares full traces; targeted scripts cover the
   adversarial corners (same-µs bursts, cancel of an already-fired
   handle, far-future events beyond the wheels' 2^39 µs span, cursor
   rewind after a horizon-bounded run, a periodic cancelling itself
   from its own callback), and wheel-only tests pin the allocation
   diet and the structural fix for the cancelled-fraction anomaly. *)

open Btr_util
module Engine = Btr_sim.Engine
module Obs = Btr_obs.Obs
module Campaign = Btr_campaign.Campaign
module Scenario = Btr.Scenario

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 The op language} *)

type op =
  | Schedule of int  (* one-shot at now + offset *)
  | Burst of int * int  (* k one-shots at the same now + offset *)
  | Far of int  (* one-shot at now + 2^40 + offset: overflow level *)
  | Periodic of int * int  (* period, start = now + offset *)
  | Cancel of int  (* cancel the (i mod created)-th handle *)
  | Drain of int  (* run ~until:(now + d) *)
  | Step
  | Drain_all  (* run ~until:(now + 50ms): drains every one-shot *)

let op_to_string = function
  | Schedule o -> Printf.sprintf "Schedule %d" o
  | Burst (k, o) -> Printf.sprintf "Burst (%d, %d)" k o
  | Far o -> Printf.sprintf "Far %d" o
  | Periodic (p, s) -> Printf.sprintf "Periodic (%d, %d)" p s
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Drain d -> Printf.sprintf "Drain %d" d
  | Step -> "Step"
  | Drain_all -> "Drain_all"

(* What the interpreter records: every callback firing (identity and
   clock), and after each op a snapshot of the observable engine state.
   Two backends are equivalent iff their full traces are equal. *)
type ev =
  | Fired of int * int  (* callback id, clock at firing *)
  | Snap of int * int * int  (* pending, clock, events_processed *)

let run_script backend ops =
  let e = Engine.create ~backend () in
  let trace = ref [] in
  let hs = ref [] in
  let nhs = ref 0 in
  let fresh = ref 0 in
  let note h =
    hs := h :: !hs;
    incr nhs
  in
  let cb id eng = trace := Fired (id, Engine.now eng) :: !trace in
  let next_id () =
    let id = !fresh in
    incr fresh;
    id
  in
  let apply = function
    | Schedule off ->
      let at = Time.add (Engine.now e) off in
      note (Engine.schedule e ~at (cb (next_id ())))
    | Burst (k, off) ->
      let at = Time.add (Engine.now e) off in
      for _ = 1 to k do
        note (Engine.schedule e ~at (cb (next_id ())))
      done
    | Far off ->
      let at = Time.add (Engine.now e) ((1 lsl 40) + off) in
      note (Engine.schedule e ~at (cb (next_id ())))
    | Periodic (period, s) ->
      let start = Time.add (Engine.now e) s in
      note (Engine.every e ~period ~start (cb (next_id ())))
    | Cancel i -> if !nhs > 0 then Engine.cancel (List.nth !hs (i mod !nhs))
    | Drain d -> Engine.run ~until:(Time.add (Engine.now e) d) e
    | Step -> ignore (Engine.step e : bool)
    | Drain_all -> Engine.run ~until:(Time.add (Engine.now e) (Time.ms 50)) e
  in
  List.iter
    (fun op ->
      apply op;
      trace :=
        Snap (Engine.pending e, Engine.now e, Engine.events_processed e)
        :: !trace)
    ops;
  let counters =
    Obs.Registry.counters (Obs.registry (Engine.obs e))
    |> List.filter (fun (name, _) ->
           (* pool/cell counters are wheel-implementation detail; the
              logical counters must match across backends *)
           name = "sim.engine.scheduled"
           || name = "sim.engine.fired"
           || name = "sim.engine.cancelled")
  in
  (List.rev !trace, counters)

let diff_check name ops =
  let wheel = run_script Engine.Wheel ops in
  let pheap = run_script Engine.Pheap ops in
  check_bool (name ^ ": wheel trace = pheap trace") true (wheel = pheap)

(* {1 Random differential property} *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun o -> Schedule o) (int_bound 5_000));
        (2, map2 (fun k o -> Burst (2 + k, o)) (int_bound 6) (int_bound 1_000));
        (1, map (fun o -> Far o) (int_bound 1_000));
        ( 2,
          map2
            (fun p s -> Periodic (100 + p, s))
            (int_bound 2_000) (int_bound 1_000) );
        (3, map (fun i -> Cancel i) (int_bound 64));
        (3, map (fun d -> Drain d) (int_bound 10_000));
        (1, return Step);
        (1, return Drain_all);
      ])

let arb_script =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_bound 40) gen_op)

let prop_backends_equivalent =
  QCheck.Test.make
    ~name:"random op scripts: wheel and pheap traces identical" ~count:250
    arb_script
    (fun ops -> run_script Engine.Wheel ops = run_script Engine.Pheap ops)

(* {1 Adversarial scripts} *)

let test_same_us_bursts () =
  diff_check "interleaved same-µs bursts"
    [
      Burst (64, 100);
      Burst (64, 100);
      Schedule 100;
      Drain 1_000;
      Burst (32, 0);
      Drain_all;
    ]

let test_cancel_after_fired () =
  diff_check "cancelling an already-fired handle is inert"
    [
      Schedule 10;
      Drain 100;
      Cancel 0;
      Cancel 0;
      Schedule 5;
      Drain 100;
      Cancel 1;
      Drain_all;
    ]

let test_far_future_events () =
  (* Beyond the top wheel horizon (2^39 µs): park in overflow, pull
     back in via the rescan, fire in seq order. *)
  diff_check "far-future events cross the overflow level"
    [
      Far 5;
      Far 5;
      Schedule 7;
      Drain ((1 lsl 40) + 1_000_000);
      Schedule 3;
      Drain_all;
    ]

let test_rewind_after_horizon () =
  (* run ~until leaves the wheel cursor at the horizon; a later
     schedule lands behind it and must rewind, not be lost. *)
  diff_check "schedule behind the cursor after a bounded run"
    [
      Schedule 5_000;
      Drain 10_000;
      Schedule 100;
      Schedule 50;
      Drain 10_000;
      Burst (8, 1);
      Drain_all;
    ]

let test_cancel_storm_differential () =
  diff_check "mass cancellation"
    [
      Burst (7, 500);
      Periodic (250, 100);
      Burst (7, 500);
      Cancel 3;
      Cancel 5;
      Cancel 8;
      Cancel 13;
      Drain 2_000;
      Cancel 0;
      Cancel 1;
      Drain_all;
    ]

let test_schedule_at_infinity () =
  let run backend =
    let e = Engine.create ~backend () in
    let fired = ref [] in
    ignore
      (Engine.schedule e ~at:Time.infinity (fun e ->
           fired := Engine.now e :: !fired));
    ignore
      (Engine.schedule e ~at:(Time.ms 1) (fun e ->
           fired := Engine.now e :: !fired));
    Engine.run e;
    (List.rev !fired, Engine.now e, Engine.pending e)
  in
  let w = run Engine.Wheel and p = run Engine.Pheap in
  check_bool "infinity-scheduled events drain identically" true (w = p);
  let times, clock, pending = w in
  check_bool "fires at infinity" true (times = [ Time.ms 1; Time.infinity ]);
  check_int "clock at infinity" Time.infinity clock;
  check_int "nothing pending" 0 pending

let test_periodic_cancels_itself () =
  (* Cancellation from inside the handle's own callback: the re-arm
     pushes on a dead handle — the wheel links nothing (but burns the
     seq), the heap enqueues a dead event it later skips silently. *)
  let run backend =
    let e = Engine.create ~backend () in
    let n = ref 0 in
    let h = ref None in
    h :=
      Some
        (Engine.every e ~period:(Time.ms 1) (fun _ ->
             incr n;
             if !n = 3 then Engine.cancel (Option.get !h)));
    Engine.run ~until:(Time.ms 10) e;
    (!n, Engine.pending e, Engine.now e, Engine.events_processed e)
  in
  let w = run Engine.Wheel and p = run Engine.Pheap in
  check_bool "self-cancel identical across backends" true (w = p);
  let n, pending, clock, processed = w in
  check_int "fires exactly thrice" 3 n;
  check_int "nothing pending after self-cancel" 0 pending;
  check_int "clock at last firing" (Time.ms 3) clock;
  check_int "three events processed" 3 processed

let test_million_event_drain () =
  (* Stack safety and exactness at depth: schedule 1M one-shots over a
     ~1s spread, drain completely. Every loop in the wheel (seek hops,
     cascades, rescans, slot walks) must be iterative. *)
  let n = 1_000_000 in
  let e = Engine.create ~backend:Engine.Wheel () in
  let fired = ref 0 in
  let last = ref (-1) in
  let mono = ref true in
  for i = 1 to n do
    ignore
      (Engine.schedule e
         ~at:(i * 7919 mod 1_000_003)
         (fun e ->
           incr fired;
           if Engine.now e < !last then mono := false;
           last := Engine.now e))
  done;
  check_int "1M pending" n (Engine.pending e);
  Engine.run e;
  check_int "all fired" n !fired;
  check_int "all processed" n (Engine.events_processed e);
  check_bool "nondecreasing firing times" true !mono;
  check_int "queue empty" 0 (Engine.pending_cells e)

let test_deep_differential_drain () =
  (* Same shape differentially, at a depth the heap oracle can afford. *)
  let n = 50_000 in
  let run backend =
    let e = Engine.create ~backend () in
    let acc = ref 0 in
    for i = 1 to n do
      ignore
        (Engine.schedule e
           ~at:(i * 7919 mod 100_003)
           (fun e -> acc := (!acc * 31) + Engine.now e))
    done;
    Engine.run e;
    (!acc, Engine.events_processed e, Engine.now e)
  in
  check_bool "50k-event drain identical" true
    (run Engine.Wheel = run Engine.Pheap)

(* {1 Allocation diet and the cancelled-fraction fix} *)

let engine_counter e name =
  match
    List.assoc_opt ("sim.engine." ^ name)
      (Obs.Registry.counters (Obs.registry (Engine.obs e)))
  with
  | Some v -> v
  | None -> 0

let test_periodic_steady_state_allocates_nothing () =
  let e = Engine.create ~backend:Engine.Wheel () in
  ignore (Engine.every e ~period:(Time.ms 1) (fun _ -> ()));
  Engine.run ~until:(Time.ms 1_000) e;
  check_int "1000 firings" 1_000 (Engine.events_processed e);
  check_int "one cell ever allocated" 1 (engine_counter e "cells");
  check_int "every re-arm reused the recycled cell" 1_000
    (engine_counter e "pool-reuse");
  check_int "pushes reconcile with cells + reuse"
    (engine_counter e "scheduled")
    (engine_counter e "cells" + engine_counter e "pool-reuse")

(* The PR-5 engine walked cancelled events through the heap until
   compaction; at 90% cancelled the bench showed per-live-event cost
   *rising* with depth. The wheel unlinks on cancel, so the physical
   queue holds exactly the live events at all times — drain cost scales
   with live events only, by construction. *)
let test_cancelled_fraction_leaves_no_residue () =
  let n = 10_000 in
  let e = Engine.create ~backend:Engine.Wheel () in
  let hs =
    Array.init n (fun i ->
        Engine.schedule e ~at:(i + 1) (fun _ -> ()))
  in
  check_int "all physically queued" n (Engine.pending_cells e);
  for i = 0 to n - 1 do
    if i mod 10 <> 0 then Engine.cancel hs.(i)
  done;
  check_int "live count drops" (n / 10) (Engine.pending e);
  check_int "cancelled cells leave the queue immediately" (n / 10)
    (Engine.pending_cells e);
  check_int "voided firings counted" (n - (n / 10))
    (engine_counter e "cancelled");
  Engine.run e;
  check_int "only live events fired" (n / 10) (Engine.events_processed e);
  check_int "drained" 0 (Engine.pending_cells e);
  (* the pool now feeds later load: no fresh allocation *)
  let cells_before = engine_counter e "cells" in
  for i = 1 to 100 do
    ignore (Engine.schedule e ~at:(Time.add (Engine.now e) i) (fun _ -> ()))
  done;
  check_int "post-storm load allocates nothing" cells_before
    (engine_counter e "cells")

(* {1 End-to-end invariance} *)

let with_backend b f =
  let prev = Engine.default_backend () in
  Engine.set_default_backend b;
  Fun.protect ~finally:(fun () -> Engine.set_default_backend prev) f

(* One campaign spec, 25 trials, both backends: artifacts byte-identical
   and FNV fingerprints equal — verdicts are backend-independent. *)
let test_campaign_backend_invariance () =
  let spec = Campaign.spec ~trials:25 ~seed:7 () in
  let artifact backend =
    with_backend backend (fun () ->
        let r = Campaign.run ~jobs:1 spec in
        (Campaign.result_json_lines r, Campaign.fingerprint r))
  in
  let lines_w, fp_w = artifact Engine.Wheel in
  let lines_p, fp_p = artifact Engine.Pheap in
  check_bool "campaign artifact byte-identical across backends" true
    (lines_w = lines_p);
  Alcotest.(check string) "FNV fingerprints equal" fp_w fp_p

(* A full-stack scenario (detection, evidence flooding, a mode switch)
   under both backends: the sim.engine.* counters must reconcile
   exactly — same scheduled/fired/cancelled, and on the wheel every
   push is accounted to either a fresh cell or a pooled one. *)
let test_scenario_engine_counters_reconcile () =
  let counters backend =
    with_backend backend (fun () ->
        let obs = Obs.create () in
        match Scenario.run (Scenario.avionics_demo ~obs ()) with
        | Error _ -> Alcotest.fail "avionics demo must deploy"
        | Ok rt ->
          let e = Btr.Runtime.engine rt in
          ( engine_counter e "scheduled",
            engine_counter e "fired",
            engine_counter e "cancelled",
            Engine.pending e,
            engine_counter e "cells",
            engine_counter e "pool-reuse" ))
  in
  let sw, fw, cw, pw, cells, reuse = counters Engine.Wheel in
  let sp, fp, cp, pp, _, _ = counters Engine.Pheap in
  check_int "scheduled equal" sp sw;
  check_int "fired equal" fp fw;
  check_int "cancelled equal" cp cw;
  check_int "pending equal" pp pw;
  check_int "scheduled = fired + cancelled + pending" sw (fw + cw + pw);
  check_int "every wheel push is a fresh or pooled cell" sw (cells + reuse);
  check_bool "steady-state periodic load reuses cells" true (reuse > cells)

let suite =
  [
    ("same-µs bursts", `Quick, test_same_us_bursts);
    ("cancel of fired handle", `Quick, test_cancel_after_fired);
    ("far-future via overflow level", `Quick, test_far_future_events);
    ("rewind after bounded run", `Quick, test_rewind_after_horizon);
    ("mass cancellation", `Quick, test_cancel_storm_differential);
    ("events at Time.infinity", `Quick, test_schedule_at_infinity);
    ("periodic cancels itself", `Quick, test_periodic_cancels_itself);
    ("1M-event drain is exact and stack-safe", `Quick, test_million_event_drain);
    ("50k-event drain differential", `Quick, test_deep_differential_drain);
    ( "steady-state periodic allocates nothing",
      `Quick,
      test_periodic_steady_state_allocates_nothing );
    ( "cancelled events leave no residue",
      `Quick,
      test_cancelled_fraction_leaves_no_residue );
    ( "campaign artifact invariant under backend",
      `Quick,
      test_campaign_backend_invariance );
    ( "scenario engine counters reconcile",
      `Quick,
      test_scenario_engine_counters_reconcile );
    QCheck_alcotest.to_alcotest prop_backends_equivalent;
  ]
