(* Determinism linter: the canonical hazard — an unsorted Hashtbl.iter
   feeding a trace — must be caught; suppression comments and path
   exemptions must be honored; benign idioms must stay quiet. *)

module Lint = Btr_lint_core.Lint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let findings ?(file = "fixture.ml") src =
  match Lint.lint_string ~file src with
  | Ok fs -> fs
  | Error m -> Alcotest.failf "lint failed: %s" m

let rules ?file src = List.map (fun (f : Lint.finding) -> f.rule) (findings ?file src)

let test_hashtbl_iter_feeding_trace () =
  let src =
    "let emit_trace h out =\n\
    \  Hashtbl.iter (fun k v -> output_string out (k ^ string_of_int v)) h\n"
  in
  match findings src with
  | [ f ] ->
    check_bool "rule" true (f.rule = Lint.Hashtbl_order);
    check_int "line" 2 f.line;
    check_int "col" 2 f.col
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_hashtbl_variants () =
  check_bool "fold" true (rules "let n h = Hashtbl.fold (fun _ _ a -> a + 1) h 0" = [ Lint.Hashtbl_order ]);
  check_bool "to_seq" true (rules "let s h = Hashtbl.to_seq h" = [ Lint.Hashtbl_order ]);
  check_bool "stdlib-qualified" true
    (rules "let f h g = Stdlib.Hashtbl.iter g h" = [ Lint.Hashtbl_order ]);
  check_bool "replace is fine" true (rules "let f h = Hashtbl.replace h 1 2" = [])

let test_poly_compare () =
  check_bool "bare compare" true
    (rules "let s l = List.sort compare l" = [ Lint.Poly_compare ]);
  check_bool "stdlib compare" true
    (rules "let s l = List.sort Stdlib.compare l" = [ Lint.Poly_compare ]);
  check_bool "first-class =" true
    (rules "let f l = List.exists (( = ) 1) l" = [ Lint.Poly_compare ]);
  check_bool "infix = is quiet" true (rules "let f x = x = 1" = []);
  check_bool "infix <> is quiet" true (rules "let f x = x <> 1" = []);
  check_bool "typed compare is quiet" true
    (rules "let s l = List.sort Int.compare l" = [])

let test_wall_clock_and_random () =
  check_bool "Sys.time" true (rules "let t () = Sys.time ()" = [ Lint.Wall_clock ]);
  check_bool "Unix.gettimeofday" true
    (rules "let t () = Unix.gettimeofday ()" = [ Lint.Wall_clock ]);
  check_bool "Random.int" true (rules "let r () = Random.int 5" = [ Lint.Raw_random ]);
  check_bool "Random.self_init" true
    (rules "let () = Random.self_init ()" = [ Lint.Raw_random ])

let test_rng_path_exempt () =
  let src = "let seed () = Random.self_init (); int_of_float (Sys.time ())" in
  check_bool "exempt in lib/util/rng.ml" true
    (rules ~file:"lib/util/rng.ml" src = []);
  check_bool "hashtbl still flagged in rng.ml" true
    (rules ~file:"lib/util/rng.ml" "let f h g = Hashtbl.iter g h"
    = [ Lint.Hashtbl_order ]);
  check_bool "flagged elsewhere" true (List.length (rules src) = 2)

let test_suppression_same_line () =
  let src =
    "let f h g = Hashtbl.iter g h (* btr-lint: allow hashtbl-order *)\n"
  in
  check_bool "suppressed" true (rules src = [])

let test_suppression_preceding_comment () =
  let src =
    "(* btr-lint: allow wall-clock — self-profiling,\n\
    \   never enters a trace *)\n\
     let t () = Sys.time ()\n"
  in
  check_bool "multi-line comment covers next line" true (rules src = [])

let test_suppression_wrong_rule () =
  let src = "(* btr-lint: allow wall-clock *)\nlet f h g = Hashtbl.iter g h\n" in
  check_bool "other rules still fire" true (rules src = [ Lint.Hashtbl_order ])

let test_suppression_does_not_leak () =
  let src =
    "let f h g = Hashtbl.iter g h (* btr-lint: allow hashtbl-order *)\n\
     let x = 1\n\
     let y = 2\n\
     let g h k = Hashtbl.iter k h\n"
  in
  match findings src with
  | [ f ] -> check_int "only the distant use flagged" 4 f.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_directive_in_string_is_inert () =
  let src =
    "let s = {|(* btr-lint: allow hashtbl-order *)|}\n\
     let f h g = Hashtbl.iter g h\n"
  in
  check_bool "quoted string is not a comment" true
    (rules src = [ Lint.Hashtbl_order ])

let test_fingerprint_order_hit () =
  (* Hashing a Hashtbl fold: both the order hazard (L001) and the
     memo-key hazard (L005) fire at the same location. *)
  let src =
    "let fp h =\n\
    \  Btr_util.Fnv.hash64 (Hashtbl.fold (fun k v a -> a ^ k ^ v) h \"\")\n"
  in
  (match findings src with
  | [ a; b ] ->
    check_bool "L001 first" true (a.rule = Lint.Hashtbl_order);
    check_bool "L005 second" true (b.rule = Lint.Fingerprint_order);
    check_int "same line" a.line b.line
  | fs -> Alcotest.failf "expected two findings, got %d" (List.length fs));
  (* unqualified entry point, iterator passed through a pipeline arg *)
  check_bool "Fnv.hash64_lines" true
    (rules "let fp h = Fnv.hash64_lines (Hashtbl.fold (fun k _ a -> k :: a) h [])"
    = [ Lint.Hashtbl_order; Lint.Fingerprint_order ])

let test_fingerprint_order_quiet () =
  check_bool "sorted bindings are quiet" true
    (rules "let fp l = Btr_util.Fnv.hash64 (String.concat \",\" l)" = []);
  (* a Hashtbl iterator outside any Fnv call is only L001 *)
  check_bool "iterator without Fnv is L001 only" true
    (rules "let ks h = Hashtbl.fold (fun k _ a -> k :: a) h []"
    = [ Lint.Hashtbl_order ]);
  (* an Fnv call whose argument was materialized elsewhere is quiet *)
  check_bool "hash of a prebuilt string is quiet" true
    (rules "let fp s = Fnv.hash64 s" = [])

let test_fingerprint_order_suppression () =
  let src =
    "let fp h =\n\
    \  (* commutative xor, order-free: btr-lint: allow hashtbl-order\n\
    \     btr-lint: allow fingerprint-order *)\n\
    \  Fnv.hash64 (Hashtbl.fold (fun _ v a -> a ^ v) h \"\")\n"
  in
  check_bool "both suppressible in one comment" true (rules src = []);
  let only_l001 =
    "let fp h =\n\
    \  (* btr-lint: allow hashtbl-order *)\n\
    \  Fnv.hash64 (Hashtbl.fold (fun _ v a -> a ^ v) h \"\")\n"
  in
  check_bool "allowing L001 does not silence L005" true
    (rules only_l001 = [ Lint.Fingerprint_order ])

let test_parse_error_reported () =
  match Lint.lint_string ~file:"bad.ml" "let let = in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_rule_ids_stable () =
  check_bool "ids" true
    (List.map Lint.rule_id Lint.all_rules
    = [ "BTR-L001"; "BTR-L002"; "BTR-L003"; "BTR-L004"; "BTR-L005" ]);
  check_bool "names roundtrip" true
    (List.for_all
       (fun r -> Lint.rule_of_name (Lint.rule_name r) = Some r)
       Lint.all_rules)

let suite =
  [
    ("unsorted Hashtbl.iter feeding a trace fails", `Quick, test_hashtbl_iter_feeding_trace);
    ("all Hashtbl iteration forms flagged", `Quick, test_hashtbl_variants);
    ("polymorphic compare flagged, typed quiet", `Quick, test_poly_compare);
    ("wall clock and global Random flagged", `Quick, test_wall_clock_and_random);
    ("lib/util/rng.ml is exempt from clock/random", `Quick, test_rng_path_exempt);
    ("same-line suppression", `Quick, test_suppression_same_line);
    ("preceding multi-line comment suppression", `Quick, test_suppression_preceding_comment);
    ("suppression is rule-specific", `Quick, test_suppression_wrong_rule);
    ("suppression does not leak down the file", `Quick, test_suppression_does_not_leak);
    ("directives inside strings are inert", `Quick, test_directive_in_string_is_inert);
    ("Hashtbl iterator inside Fnv call is L005", `Quick, test_fingerprint_order_hit);
    ("L005 stays quiet off the fingerprint path", `Quick, test_fingerprint_order_quiet);
    ("L005 suppression is independent of L001", `Quick, test_fingerprint_order_suppression);
    ("parse errors are reported", `Quick, test_parse_error_reported);
    ("rule ids are stable", `Quick, test_rule_ids_stable);
  ]
