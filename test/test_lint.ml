(* Determinism linter: the canonical hazard — an unsorted Hashtbl.iter
   feeding a trace — must be caught; suppression comments and path
   exemptions must be honored; benign idioms must stay quiet. *)

module Lint = Btr_lint_core.Lint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let findings ?(file = "fixture.ml") src =
  match Lint.lint_string ~file src with
  | Ok fs -> fs
  | Error m -> Alcotest.failf "lint failed: %s" m

let rules ?file src = List.map (fun (f : Lint.finding) -> f.rule) (findings ?file src)

let test_hashtbl_iter_feeding_trace () =
  let src =
    "let emit_trace h out =\n\
    \  Hashtbl.iter (fun k v -> output_string out (k ^ string_of_int v)) h\n"
  in
  match findings src with
  | [ f ] ->
    check_bool "rule" true (f.rule = Lint.Hashtbl_order);
    check_int "line" 2 f.line;
    check_int "col" 2 f.col
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_hashtbl_variants () =
  check_bool "fold" true (rules "let n h = Hashtbl.fold (fun _ _ a -> a + 1) h 0" = [ Lint.Hashtbl_order ]);
  check_bool "to_seq" true (rules "let s h = Hashtbl.to_seq h" = [ Lint.Hashtbl_order ]);
  check_bool "stdlib-qualified" true
    (rules "let f h g = Stdlib.Hashtbl.iter g h" = [ Lint.Hashtbl_order ]);
  check_bool "replace is fine" true (rules "let f h = Hashtbl.replace h 1 2" = [])

let test_poly_compare () =
  check_bool "bare compare" true
    (rules "let s l = List.sort compare l" = [ Lint.Poly_compare ]);
  check_bool "stdlib compare" true
    (rules "let s l = List.sort Stdlib.compare l" = [ Lint.Poly_compare ]);
  check_bool "first-class =" true
    (rules "let f l = List.exists (( = ) 1) l" = [ Lint.Poly_compare ]);
  check_bool "infix = is quiet" true (rules "let f x = x = 1" = []);
  check_bool "infix <> is quiet" true (rules "let f x = x <> 1" = []);
  check_bool "typed compare is quiet" true
    (rules "let s l = List.sort Int.compare l" = [])

let test_wall_clock_and_random () =
  check_bool "Sys.time" true (rules "let t () = Sys.time ()" = [ Lint.Wall_clock ]);
  check_bool "Unix.gettimeofday" true
    (rules "let t () = Unix.gettimeofday ()" = [ Lint.Wall_clock ]);
  check_bool "Random.int" true (rules "let r () = Random.int 5" = [ Lint.Raw_random ]);
  check_bool "Random.self_init" true
    (rules "let () = Random.self_init ()" = [ Lint.Raw_random ])

let test_rng_path_exempt () =
  let src = "let seed () = Random.self_init (); int_of_float (Sys.time ())" in
  check_bool "exempt in lib/util/rng.ml" true
    (rules ~file:"lib/util/rng.ml" src = []);
  check_bool "hashtbl still flagged in rng.ml" true
    (rules ~file:"lib/util/rng.ml" "let f h g = Hashtbl.iter g h"
    = [ Lint.Hashtbl_order ]);
  check_bool "flagged elsewhere" true (List.length (rules src) = 2)

let test_suppression_same_line () =
  let src =
    "let f h g = Hashtbl.iter g h (* btr-lint: allow hashtbl-order *)\n"
  in
  check_bool "suppressed" true (rules src = [])

let test_suppression_preceding_comment () =
  let src =
    "(* btr-lint: allow wall-clock — self-profiling,\n\
    \   never enters a trace *)\n\
     let t () = Sys.time ()\n"
  in
  check_bool "multi-line comment covers next line" true (rules src = [])

let test_suppression_wrong_rule () =
  let src = "(* btr-lint: allow wall-clock *)\nlet f h g = Hashtbl.iter g h\n" in
  check_bool "other rules still fire" true (rules src = [ Lint.Hashtbl_order ])

let test_suppression_does_not_leak () =
  let src =
    "let f h g = Hashtbl.iter g h (* btr-lint: allow hashtbl-order *)\n\
     let x = 1\n\
     let y = 2\n\
     let g h k = Hashtbl.iter k h\n"
  in
  match findings src with
  | [ f ] -> check_int "only the distant use flagged" 4 f.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_directive_in_string_is_inert () =
  let src =
    "let s = {|(* btr-lint: allow hashtbl-order *)|}\n\
     let f h g = Hashtbl.iter g h\n"
  in
  check_bool "quoted string is not a comment" true
    (rules src = [ Lint.Hashtbl_order ])

let test_parse_error_reported () =
  match Lint.lint_string ~file:"bad.ml" "let let = in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_rule_ids_stable () =
  check_bool "ids" true
    (List.map Lint.rule_id Lint.all_rules
    = [ "BTR-L001"; "BTR-L002"; "BTR-L003"; "BTR-L004" ]);
  check_bool "names roundtrip" true
    (List.for_all
       (fun r -> Lint.rule_of_name (Lint.rule_name r) = Some r)
       Lint.all_rules)

let suite =
  [
    ("unsorted Hashtbl.iter feeding a trace fails", `Quick, test_hashtbl_iter_feeding_trace);
    ("all Hashtbl iteration forms flagged", `Quick, test_hashtbl_variants);
    ("polymorphic compare flagged, typed quiet", `Quick, test_poly_compare);
    ("wall clock and global Random flagged", `Quick, test_wall_clock_and_random);
    ("lib/util/rng.ml is exempt from clock/random", `Quick, test_rng_path_exempt);
    ("same-line suppression", `Quick, test_suppression_same_line);
    ("preceding multi-line comment suppression", `Quick, test_suppression_preceding_comment);
    ("suppression is rule-specific", `Quick, test_suppression_wrong_rule);
    ("suppression does not leak down the file", `Quick, test_suppression_does_not_leak);
    ("directives inside strings are inert", `Quick, test_directive_in_string_is_inert);
    ("parse errors are reported", `Quick, test_parse_error_reported);
    ("rule ids are stable", `Quick, test_rule_ids_stable);
  ]
