(* End-to-end integration tests: a full BTR deployment on the simulator,
   one per Byzantine behaviour class, plus the headline properties —
   recovery within R, the k·R sequential-attack bound, convergence of
   all correct nodes, and determinism. *)

open Btr_util
module Fault = Btr_fault.Fault
module Planner = Btr_planner.Planner
module Topology = Btr_net.Topology

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let recovery_bound = Time.ms 200

let scenario ?(n = 6) ?(f = 1) ?(horizon = Time.sec 1) ?(seed = 1) script =
  Btr.Scenario.spec
    ~workload:(Btr_workload.Generators.avionics ~n_nodes:n)
    ~topology:
      (Topology.fully_connected ~n ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
    ~f ~recovery_bound ~script ~horizon ~seed ()

let run_ok s =
  match Btr.Scenario.run s with
  | Ok rt -> rt
  | Error e -> Alcotest.failf "scenario failed to plan: %a" Planner.pp_error e

let correct_nodes rt =
  let faulty =
    List.map (fun (_, n, _) -> n) (Btr.Metrics.injections (Btr.Runtime.metrics rt))
  in
  List.filter
    (fun n -> not (List.mem n faulty))
    (Topology.nodes (Planner.topology (Btr.Runtime.strategy rt)))

let test_fault_free () =
  let rt = run_ok (scenario []) in
  let m = Btr.Runtime.metrics rt in
  Alcotest.(check (float 1e-9)) "all outputs correct" 1.0 (Btr.Metrics.correct_fraction m);
  check_int "no incorrect time" 0 (Btr.Metrics.incorrect_time m);
  Alcotest.(check (float 1e-9)) "no deadline misses" 0.0 (Btr.Metrics.deadline_miss_fraction m);
  check_int "no mode changes" 0 (List.length (Btr.Runtime.mode_changes rt))

(* One test per behaviour class: the fault is detected, all correct
   nodes converge on a mode excluding the faulty node, and protected
   outputs recover within R. *)
let behaviour_case name behavior ~expect_mode_change =
  let test () =
    let node = 3 in
    let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node behavior)) in
    let m = Btr.Runtime.metrics rt in
    if expect_mode_change then begin
      List.iter
        (fun c ->
          Alcotest.(check (list int))
            (Printf.sprintf "node %d converged on {%d}" c node)
            [ node ] (Btr.Runtime.node_mode rt c))
        (correct_nodes rt)
    end;
    List.iter
      (fun r ->
        check_bool
          (Printf.sprintf "%s: recovery %s within R" name (Time.to_string r))
          true
          (Time.compare r recovery_bound <= 0))
      (Btr.Metrics.recovery_times m)
  in
  (Printf.sprintf "%s fault: detected, recovered within R" name, `Quick, test)

let test_corruption_caught_by_replay () =
  let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs)) in
  let records = Btr.Runtime.evidence_seen rt 0 in
  check_bool "some wrong-value evidence exists" true
    (List.exists
       (fun (r : Btr_evidence.Evidence.record) ->
         r.Btr_evidence.Evidence.statement.Btr_evidence.Evidence.fault_class
         = Btr_evidence.Evidence.Wrong_value)
       records)

let test_crash_attributed_via_paths () =
  let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node:3 Fault.Crash)) in
  let records = Btr.Runtime.evidence_seen rt 0 in
  check_bool "omission path declarations exist" true
    (List.exists
       (fun (r : Btr_evidence.Evidence.record) ->
         match r.Btr_evidence.Evidence.statement.Btr_evidence.Evidence.accused with
         | Btr_evidence.Evidence.Path (a, b) -> a = 3 || b = 3
         | Btr_evidence.Evidence.Node _ -> false)
       records)

let test_equivocation_caught () =
  let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node:3 Fault.Equivocate)) in
  let records = Btr.Runtime.evidence_seen rt 0 in
  check_bool "equivocation evidence exists" true
    (List.exists
       (fun (r : Btr_evidence.Evidence.record) ->
         r.Btr_evidence.Evidence.statement.Btr_evidence.Evidence.fault_class
         = Btr_evidence.Evidence.Equivocation)
       records)

let test_babbler_accused_of_forgery () =
  let rt =
    run_ok
      (scenario (Fault.single ~at:(Time.ms 250) ~node:3 (Fault.Babble { bogus_per_period = 4 })))
  in
  let records = Btr.Runtime.evidence_seen rt 0 in
  check_bool "forged-evidence accusation against the babbler" true
    (List.exists
       (fun (r : Btr_evidence.Evidence.record) ->
         let s = r.Btr_evidence.Evidence.statement in
         s.Btr_evidence.Evidence.fault_class = Btr_evidence.Evidence.Forged_evidence
         && s.Btr_evidence.Evidence.accused = Btr_evidence.Evidence.Node 3)
       records);
  (* The flood never delayed valid operation: outputs stayed correct. *)
  check_int "no incorrect output from babbling" 0
    (Btr.Metrics.incorrect_time (Btr.Runtime.metrics rt))

let test_no_false_attribution () =
  (* Under every behaviour, no CORRECT node ever lands in any correct
     node's fault set (threshold f+1 plus NACKs prevent framing). *)
  List.iter
    (fun behavior ->
      let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node:3 behavior)) in
      List.iter
        (fun c ->
          List.iter
            (fun accused ->
              check_bool
                (Printf.sprintf "behaviour %s: node %d only attributes node 3"
                   (Fault.behavior_name behavior) c)
                true (accused = 3))
            (Btr.Runtime.node_fault_nodes rt c))
        (correct_nodes rt))
    [
      Fault.Crash;
      Fault.Omit_outputs;
      Fault.Corrupt_outputs;
      Fault.Equivocate;
      Fault.Delay_outputs (Time.ms 8);
      Fault.Babble { bogus_per_period = 4 };
    ]

let test_sequential_attack_kr_bound () =
  (* §3: an adversary controlling k nodes, triggering one fault every R,
     forces at most k·R of incorrect output. *)
  let f = 2 in
  let script =
    Fault.sequential_attack ~nodes:[ 3; 1 ] ~start:(Time.ms 200) ~gap:recovery_bound
      Fault.Corrupt_outputs
  in
  let rt = run_ok (scenario ~f ~horizon:(Time.sec 2) script) in
  let m = Btr.Runtime.metrics rt in
  let k = 2 in
  check_bool
    (Printf.sprintf "incorrect time %s <= k*R = %s"
       (Time.to_string (Btr.Metrics.incorrect_time m))
       (Time.to_string (Time.mul recovery_bound k)))
    true
    (Time.compare (Btr.Metrics.incorrect_time m) (Time.mul recovery_bound k) <= 0);
  List.iter
    (fun c ->
      Alcotest.(check (list int))
        "converged on both faults" [ 1; 3 ] (Btr.Runtime.node_mode rt c))
    (correct_nodes rt)

let test_two_simultaneous_faults () =
  let f = 2 in
  let script =
    Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs
    @ Fault.single ~at:(Time.ms 250) ~node:4 Fault.Crash
  in
  let rt = run_ok (scenario ~f ~horizon:(Time.sec 2) script) in
  List.iter
    (fun c ->
      Alcotest.(check (list int)) "mode covers both" [ 3; 4 ] (Btr.Runtime.node_mode rt c))
    (correct_nodes rt)

let test_determinism () =
  let run () =
    let rt = run_ok (scenario ~seed:7 (Fault.single ~at:(Time.ms 250) ~node:3 Fault.Crash)) in
    let m = Btr.Runtime.metrics rt in
    ( Btr.Metrics.correct_fraction m,
      Btr.Metrics.incorrect_time m,
      Btr.Runtime.mode_changes rt,
      Btr.Metrics.recovery_times m )
  in
  check_bool "identical runs for identical seeds" true (run () = run ())

let test_evidence_flood_reaches_everyone () =
  let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs)) in
  let keys node =
    List.sort_uniq String.compare
      (List.map Btr_evidence.Evidence.dedup_key (Btr.Runtime.evidence_seen rt node))
  in
  let reference = keys (List.hd (correct_nodes rt)) in
  check_bool "someone saw evidence" true (reference <> []);
  List.iter
    (fun c ->
      check_bool
        (Printf.sprintf "node %d saw the same evidence" c)
        true
        (keys c = reference))
    (correct_nodes rt)

let test_state_migration_happens () =
  let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node:3 Fault.Crash)) in
  check_bool "control class carried evidence and state" true
    (Btr.Runtime.control_bytes rt > 0)

let test_sink_lane_fallback () =
  (* Omission on a node hosting a primary lane: the sink should act on a
     backup lane's value in the same period — visible as lane > 0 use. *)
  let used_backup = ref false in
  List.iter
    (fun node ->
      let rt = run_ok (scenario (Fault.single ~at:(Time.ms 250) ~node Fault.Omit_outputs)) in
      let m = Btr.Runtime.metrics rt in
      List.iter
        (fun fl ->
          List.iter
            (fun (lane, _) -> if lane > 0 then used_backup := true)
            (Btr.Metrics.lanes_used m ~orig_flow:fl))
        (Btr.Metrics.protected_flows m))
    [ 0; 1; 2; 3; 4; 5 ];
  check_bool "some sink fell back to a backup lane" true !used_backup

let test_late_injection_has_no_effect_before () =
  let rt = run_ok (scenario (Fault.single ~at:(Time.ms 600) ~node:3 Fault.Corrupt_outputs)) in
  let m = Btr.Runtime.metrics rt in
  (* All periods before the injection are fully correct. *)
  let before = Time.ms 600 / Time.ms 20 in
  List.iter
    (fun fl ->
      List.iteri
        (fun p s ->
          if p < before then
            check_bool
              (Printf.sprintf "flow %d period %d clean before injection" fl p)
              true
              (s = Btr.Metrics.Correct || s = Btr.Metrics.Shed))
        (Btr.Metrics.timeline m ~orig_flow:fl))
    (Btr.Metrics.protected_flows m)

let test_lossy_links_with_strike_tolerance () =
  (* Residual loss breaks the paper's FEC assumption; with a 3-strike
     omission threshold, random losses never frame a correct node and a
     real crash is still caught. Since strike accounts are shared per
     sender and suspect-carrying paths drive eviction directly, the
     crash may be acted on (evicted into the mode) before any node
     crosses the attribution threshold — so "caught" is asserted on the
     mode, and "never framed" on both attribution and eviction. *)
  let config =
    { Btr.Runtime.default_config with residual_loss = 0.003; omission_strikes = 3 }
  in
  let s = scenario ~horizon:(Time.sec 2) (Fault.single ~at:(Time.ms 500) ~node:3 Fault.Crash) in
  (match Btr.Scenario.plan s with
  | Error e -> Alcotest.failf "plan: %a" Planner.pp_error e
  | Ok strategy ->
    let rt =
      Btr.Runtime.create ~config ~script:s.Btr.Scenario.script ~strategy ()
    in
    Btr.Runtime.run rt ~horizon:s.Btr.Scenario.horizon;
    List.iter
      (fun c ->
        List.iter
          (fun accused ->
            check_bool
              (Printf.sprintf "node %d attributes only the crashed node" c)
              true (accused = 3))
          (Btr.Runtime.node_fault_nodes rt c);
        List.iter
          (fun evicted ->
            check_bool
              (Printf.sprintf "node %d evicts only the crashed node" c)
              true (evicted = 3))
          (Btr.Runtime.node_mode rt c))
      (correct_nodes rt);
    check_bool "crash still caught under loss" true
      (List.exists
         (fun c -> List.mem 3 (Btr.Runtime.node_mode rt c))
         (correct_nodes rt)))

let test_scada_unprotected_consumers () =
  (* Regression: the SCADA trend/HMI chains are unprotected consumers of
     the replicated PLC; they receive one copy per lane and must treat
     those as ONE logical input (duplicates once diverged from golden). *)
  let s =
    Btr.Scenario.spec
      ~workload:(Btr_workload.Generators.scada ~n_nodes:6)
      ~topology:
        (Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
           ~latency:(Time.us 50))
      ~f:1 ~recovery_bound:(Time.ms 300) ~horizon:(Time.ms 1500)
      ~script:(Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs)
      ()
  in
  let rt = run_ok s in
  let m = Btr.Runtime.metrics rt in
  check_bool "all outputs correct around a bounded blip" true
    (Btr.Metrics.correct_fraction m > 0.95);
  List.iter
    (fun r -> check_bool "bounded recovery" true (Time.compare r (Time.ms 300) <= 0))
    (Btr.Metrics.recovery_times m)

let test_dual_bus_topology () =
  (* The avionics-style shared-bus layout: every node on two redundant
     buses; reservations are per member, so bandwidth is scarcer. *)
  let s =
    Btr.Scenario.spec
      ~workload:(Btr_workload.Generators.avionics ~n_nodes:6)
      ~topology:
        (Topology.dual_bus ~n:6 ~bandwidth_bps:40_000_000 ~latency:(Time.us 20))
      ~f:1 ~recovery_bound ~horizon:(Time.sec 1)
      ~script:(Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs)
      ()
  in
  let rt = run_ok s in
  let m = Btr.Runtime.metrics rt in
  check_bool "recovers on a shared bus" true
    (List.for_all
       (fun r -> Time.compare r recovery_bound <= 0)
       (Btr.Metrics.recovery_times m));
  List.iter
    (fun c ->
      Alcotest.(check (list int)) "converged" [ 3 ] (Btr.Runtime.node_mode rt c))
    (correct_nodes rt)

let test_ring_topology_with_byzantine_relay () =
  (* On a ring, traffic is relayed through intermediate nodes; a crashed
     node also stops relaying, so the system must both reroute and
     reconfigure. *)
  let s =
    Btr.Scenario.spec
      ~workload:(Btr_workload.Generators.avionics ~n_nodes:6)
      ~topology:(Topology.ring ~n:6 ~bandwidth_bps:40_000_000 ~latency:(Time.us 20))
      ~f:1 ~recovery_bound:(Time.ms 300) ~horizon:(Time.sec 1)
      ~script:(Fault.single ~at:(Time.ms 250) ~node:4 Fault.Crash)
      ()
  in
  match Btr.Scenario.run s with
  | Error _ ->
    (* A ring may legitimately be unschedulable for this workload; the
       planner saying so loudly is the correct behaviour. *)
    ()
  | Ok rt ->
    let m = Btr.Runtime.metrics rt in
    check_bool "bounded incorrectness on a ring" true
      (Time.compare (Btr.Metrics.incorrect_time m) (Time.ms 300) <= 0);
    check_bool "no correct node framed" true
      (List.for_all
         (fun c ->
           List.for_all (fun x -> x = 4) (Btr.Runtime.node_fault_nodes rt c))
         (correct_nodes rt))

let prop_recovery_within_r_random_faults =
  QCheck.Test.make
    ~name:"recovery <= R for a random single fault (node, class, time)" ~count:20
    QCheck.(triple (int_bound 5) (int_bound 3) (int_range 5 25))
    (fun (node, cls, inject_period) ->
      let behavior =
        List.nth
          [ Fault.Crash; Fault.Omit_outputs; Fault.Corrupt_outputs; Fault.Equivocate ]
          cls
      in
      let at = Time.mul (Time.ms 20) inject_period in
      let rt = run_ok (scenario (Fault.single ~at ~node behavior)) in
      List.for_all
        (fun r -> Time.compare r recovery_bound <= 0)
        (Btr.Metrics.recovery_times (Btr.Runtime.metrics rt)))

let suite =
  [
    ("fault-free run is perfect", `Quick, test_fault_free);
    behaviour_case "crash" Fault.Crash ~expect_mode_change:true;
    behaviour_case "omission" Fault.Omit_outputs ~expect_mode_change:true;
    behaviour_case "corruption" Fault.Corrupt_outputs ~expect_mode_change:true;
    behaviour_case "equivocation" Fault.Equivocate ~expect_mode_change:true;
    behaviour_case "delay" (Fault.Delay_outputs (Time.ms 8)) ~expect_mode_change:false;
    ("replay produces wrong-value evidence", `Quick, test_corruption_caught_by_replay);
    ("crash attributed via path counting", `Quick, test_crash_attributed_via_paths);
    ("equivocation caught via consumer acks", `Quick, test_equivocation_caught);
    ("babbler accused of forgery, no damage", `Quick, test_babbler_accused_of_forgery);
    ("no correct node is ever falsely attributed", `Slow, test_no_false_attribution);
    ("sequential attack bounded by k*R", `Quick, test_sequential_attack_kr_bound);
    ("two simultaneous faults handled with f=2", `Quick, test_two_simultaneous_faults);
    ("runs are deterministic", `Quick, test_determinism);
    ("evidence reaches all correct nodes", `Quick, test_evidence_flood_reaches_everyone);
    ("control plane carries state and evidence", `Quick, test_state_migration_happens);
    ("sinks fall back to backup lanes", `Quick, test_sink_lane_fallback);
    ("clean before a late injection", `Quick, test_late_injection_has_no_effect_before);
    ("lossy links tolerated with strike threshold", `Quick, test_lossy_links_with_strike_tolerance);
    ("scada: unprotected consumers of replicated producers", `Quick, test_scada_unprotected_consumers);
    ("dual-bus topology", `Quick, test_dual_bus_topology);
    ("ring topology with a Byzantine relay", `Quick, test_ring_topology_with_byzantine_relay);
    QCheck_alcotest.to_alcotest prop_recovery_within_r_random_faults;
  ]
