open Btr_util
module Engine = Btr_sim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_schedule_order () =
  let e = Engine.create () in
  let order = ref [] in
  let note tag _ = order := tag :: !order in
  ignore (Engine.schedule e ~at:(Time.ms 5) (note "b"));
  ignore (Engine.schedule e ~at:(Time.ms 1) (note "a"));
  ignore (Engine.schedule e ~at:(Time.ms 9) (note "c"));
  Engine.run e;
  Alcotest.(check (list string)) "fires in time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_fifo_at_same_time () =
  let e = Engine.create () in
  let order = ref [] in
  let note tag _ = order := tag :: !order in
  ignore (Engine.schedule e ~at:(Time.ms 1) (note "first"));
  ignore (Engine.schedule e ~at:(Time.ms 1) (note "second"));
  ignore (Engine.schedule e ~at:(Time.ms 1) (note "third"));
  Engine.run e;
  Alcotest.(check (list string)) "insertion order breaks ties"
    [ "first"; "second"; "third" ] (List.rev !order)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.schedule e ~at:(Time.ms 3) (fun e -> seen := Engine.now e));
  Engine.run e;
  check_int "clock at event time" (Time.ms 3) !seen;
  check_int "clock stays" (Time.ms 3) (Engine.now e)

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:(Time.ms 5) (fun _ -> ()));
  Engine.run e;
  Alcotest.check_raises "past schedule"
    (Invalid_argument "Engine.schedule: at=1ms is before now=5ms") (fun () ->
      ignore (Engine.schedule e ~at:(Time.ms 1) (fun _ -> ())))

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:(Time.ms 2) (fun _ -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  check_bool "cancelled event skipped" false !fired;
  check_int "not counted as processed" 0 (Engine.events_processed e)

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun t -> ignore (Engine.schedule e ~at:t (fun _ -> incr count)))
    [ Time.ms 1; Time.ms 2; Time.ms 3 ];
  Engine.run ~until:(Time.ms 2) e;
  check_int "only events <= until" 2 !count;
  check_int "rest still pending" 1 (Engine.pending e);
  Engine.run e;
  check_int "drains on resume" 3 !count

let test_periodic () =
  let e = Engine.create () in
  let times = ref [] in
  let h = Engine.every e ~period:(Time.ms 10) (fun e -> times := Engine.now e :: !times) in
  ignore (Engine.schedule e ~at:(Time.ms 35) (fun _ -> Engine.cancel h));
  Engine.run ~until:(Time.ms 100) e;
  Alcotest.(check (list int)) "fires each period until cancelled"
    [ Time.ms 10; Time.ms 20; Time.ms 30 ] (List.rev !times)

let test_periodic_start () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.every e ~period:(Time.ms 10) ~start:Time.zero (fun e ->
         times := Engine.now e :: !times));
  Engine.run ~until:(Time.ms 25) e;
  Alcotest.(check (list int)) "explicit start" [ 0; Time.ms 10; Time.ms 20 ]
    (List.rev !times)

let test_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref [] in
  ignore
    (Engine.schedule e ~at:(Time.ms 1) (fun e ->
         ignore
           (Engine.schedule_in e ~delay:(Time.ms 4) (fun e ->
                hits := Engine.now e :: !hits))));
  Engine.run e;
  Alcotest.(check (list int)) "event scheduled from event" [ Time.ms 5 ] !hits

let test_determinism () =
  let run_once () =
    let e = Engine.create ~seed:99 () in
    let log = ref [] in
    for i = 1 to 50 do
      let delay = Time.us (Rng.int (Engine.rng e) 10_000) in
      ignore
        (Engine.schedule e ~at:delay (fun e ->
             log := (i, Engine.now e) :: !log))
    done;
    Engine.run e;
    !log
  in
  check_bool "same seed, same execution" true (run_once () = run_once ())

let test_obs_run_events () =
  let obs = Btr_obs.Obs.with_memory () in
  let e = Engine.create ~obs () in
  ignore (Engine.schedule e ~at:(Time.ms 1) (fun _ -> ()));
  Engine.run ~until:(Time.ms 2) e;
  match Btr_obs.Obs.events obs with
  | [ started; finished ] ->
    check_bool "run started first"
      (started.Btr_obs.Obs.payload = Btr_obs.Obs.Run_started { until = Time.ms 2 })
      true;
    check_bool "run finished with event count"
      (finished.Btr_obs.Obs.payload = Btr_obs.Obs.Run_finished { events = 1 })
      true
  | l -> Alcotest.failf "expected two events, got %d" (List.length l)

let test_obs_default_disabled () =
  let e = Engine.create () in
  check_bool "default context records nothing" false
    (Btr_obs.Obs.enabled (Engine.obs e));
  ignore (Engine.schedule e ~at:(Time.ms 1) (fun _ -> ()));
  Engine.run e;
  check_int "no events retained" 0
    (List.length (Btr_obs.Obs.events (Engine.obs e)))

(* The leak the `every` rewrite fixed: cancelling a periodic handle must
   also drop the already-armed next firing from the queue. *)
let test_periodic_cancel_drops_pending () =
  let e = Engine.create () in
  let h = Engine.every e ~period:(Time.ms 10) (fun _ -> ()) in
  ignore (Engine.schedule e ~at:(Time.ms 15) (fun _ -> Engine.cancel h));
  Engine.run ~until:(Time.ms 15) e;
  check_int "armed firing no longer pending" 0 (Engine.pending e)

(* pending is now a live-event counter, not an O(n) fold; it must stay
   exact across cancel-heavy periodic workloads — every alive [every]
   handle keeps exactly one armed firing queued, cancellation voids it
   immediately, and the dead-event compaction the storm triggers must
   not perturb the count. *)
let test_backend_selection () =
  let e = Engine.create () in
  check_bool "wheel is the default backend" true
    (Engine.backend_of e = Engine.Wheel);
  let p = Engine.create ~backend:Engine.Pheap () in
  check_bool "explicit pheap backend" true (Engine.backend_of p = Engine.Pheap);
  check_bool "backend names round-trip" true
    (Engine.backend_of_string (Engine.backend_name Engine.Wheel)
     = Some Engine.Wheel
    && Engine.backend_of_string (Engine.backend_name Engine.Pheap)
       = Some Engine.Pheap
    && Engine.backend_of_string "nope" = None)

let test_pending_exact_under_cancel_storm_on backend () =
  let e = Engine.create ~backend () in
  let n = 512 in
  let hs =
    Array.init n (fun i ->
        Engine.every e ~period:(Time.ms ((i mod 9) + 1)) (fun _ -> ()))
  in
  check_int "one armed firing per periodic" n (Engine.pending e);
  (* kill 3/4 up front: enough dead mass to cross the compaction
     threshold once the survivors start re-arming *)
  for i = 0 to n - 1 do
    if i mod 4 <> 0 then Engine.cancel hs.(i)
  done;
  check_int "cancel voids armed firings immediately" (n / 4) (Engine.pending e);
  (* double-cancel must not double-count *)
  for i = 0 to n - 1 do
    if i mod 4 <> 0 then Engine.cancel hs.(i)
  done;
  check_int "cancel is idempotent" (n / 4) (Engine.pending e);
  Engine.run ~until:(Time.ms 50) e;
  check_int "survivors re-arm exactly one firing each" (n / 4) (Engine.pending e);
  ignore
    (Engine.schedule e ~at:(Time.ms 60) (fun _ -> Array.iter Engine.cancel hs));
  Engine.run ~until:(Time.ms 70) e;
  check_int "mid-run mass cancel drains pending to zero" 0 (Engine.pending e);
  check_bool "cancelled backlog never fires" true (Engine.events_processed e > 0)

let prop_events_fire_in_order =
  QCheck.Test.make ~name:"random events always fire in nondecreasing time order"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 100_000))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          ignore (Engine.schedule e ~at:d (fun e -> fired := Engine.now e :: !fired)))
        delays;
      Engine.run e;
      let ts = List.rev !fired in
      List.length ts = List.length delays
      && List.for_all2 Time.equal ts (List.sort Int.compare delays))

let suite =
  [
    ("events fire in time order", `Quick, test_schedule_order);
    ("same-time events are FIFO", `Quick, test_fifo_at_same_time);
    ("clock advances to event time", `Quick, test_clock_advances);
    ("scheduling in the past is rejected", `Quick, test_schedule_in_past_rejected);
    ("cancelled events are skipped", `Quick, test_cancel);
    ("run ~until stops at horizon", `Quick, test_run_until);
    ("periodic events fire and cancel", `Quick, test_periodic);
    ("periodic with explicit start", `Quick, test_periodic_start);
    ("events can schedule events", `Quick, test_nested_scheduling);
    ("execution is deterministic per seed", `Quick, test_determinism);
    ("obs records run start/finish", `Quick, test_obs_run_events);
    ("obs disabled by default", `Quick, test_obs_default_disabled);
    ("periodic cancel drops armed firing", `Quick, test_periodic_cancel_drops_pending);
    ("backend selection and naming", `Quick, test_backend_selection);
    ( "pending exact under cancel storm (wheel)",
      `Quick,
      test_pending_exact_under_cancel_storm_on Engine.Wheel );
    ( "pending exact under cancel storm (pheap)",
      `Quick,
      test_pending_exact_under_cancel_storm_on Engine.Pheap );
    QCheck_alcotest.to_alcotest prop_events_fire_in_order;
  ]
