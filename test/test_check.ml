(* Static verifier: a pristine strategy passes; for every diagnostic
   code there is a minimal corrupted view that makes it fire; and the
   headline property — the verifier accepting a strategy implies
   simulated recovery stays within R. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Generators = Btr_workload.Generators
module Topology = Btr_net.Topology
module Net = Btr_net.Net
module Planner = Btr_planner.Planner
module Augment = Btr_planner.Augment
module Check = Btr_check.Check
module Fault = Btr_fault.Fault

let check_bool = Alcotest.(check bool)

let clique n =
  Topology.fully_connected ~n ~bandwidth_bps:10_000_000 ~latency:(Time.us 50)

let strategy =
  lazy
    (let g = Generators.avionics ~n_nodes:6 in
     let cfg = Planner.default_config ~f:1 ~recovery_bound:(Time.ms 200) in
     match Planner.build cfg g (clique 6) with
     | Ok s -> s
     | Error e -> Alcotest.failf "planner failed: %a" Planner.pp_error e)

let base_view () = Check.view_of_strategy (Lazy.force strategy)

let has code report =
  List.exists
    (fun (d : Check.diagnostic) -> d.code = code)
    report.Check.diagnostics

(* Corrupt the view, verify, and require [code] among the diagnostics
   (an Error code must also fail the report). [strikes] is the runtime
   watchdog declaration threshold seen by the selective-omission check. *)
let fires ?strikes code corrupt () =
  let report = Check.verify_view ?strikes (corrupt (base_view ())) in
  check_bool (Check.code_id code ^ " fires") true (has code report);
  match Check.severity_of code with
  | Check.Error ->
    check_bool (Check.code_id code ^ " fails the report") false
      (Check.passed report)
  | Check.Warning -> ()

let with_shares v s =
  { v with Check.config = { v.Check.config with Planner.shares = Some s } }

let test_pristine_passes () =
  let report = Check.verify_view (base_view ()) in
  check_bool "avionics strategy passes" true (Check.passed report);
  check_bool "no error diagnostics" true (Check.errors report = [])

let test_json_shape () =
  let report = Check.verify_view (base_view ()) in
  let json = Check.report_to_json report in
  check_bool "json verdict" true
    (String.length json > 0 && String.sub json 0 18 = "{\"verdict\":\"pass\",")

(* BTR-E101: clique links have 2 members; 2 x (0.5 + 0.2) > 1. *)
let e101 =
  fires Check.Link_oversubscribed (fun v ->
      with_shares v { Net.data_frac = 0.5; control_frac = 0.2 })

(* BTR-E102: a data reserve of ~1 B/s cannot carry any flow. *)
let e102 =
  fires Check.Data_reserve_exceeded (fun v ->
      with_shares v { Net.data_frac = 1e-9; control_frac = 0.05 })

(* BTR-W103: a control reserve of ~1 B/s takes 160s per evidence record. *)
let w103 =
  fires Check.Control_reserve_tight (fun v ->
      with_shares v { Net.data_frac = 0.4; control_frac = 1e-9 })

(* BTR-E201: every task of the fault-free mode piled onto node 0. *)
let e201 =
  fires Check.Node_overutilized (fun v ->
      {
        v with
        Check.plans =
          List.map
            (fun (p : Planner.plan) ->
              if p.faulty = [] then
                {
                  p with
                  assignment = List.map (fun (t, _) -> (t, 0)) p.assignment;
                }
              else p)
            v.Check.plans;
      })

(* BTR-W202: utilization 0.9 <= 1, but a 4ms task feeding a sink flow
   with a 2ms deadline diverges under deadline-monotonic RTA. *)
let w202 =
  fires Check.Response_time_divergent (fun v ->
      let g =
        Graph.create_relaxed ~period:(Time.ms 10)
          ~tasks:
            [
              Task.make ~id:0 ~name:"a" ~wcet:(Time.ms 4) ();
              Task.make ~id:1 ~name:"b" ~wcet:(Time.ms 4) ();
              Task.make ~id:2 ~name:"s" ~kind:Task.Sink ~wcet:(Time.ms 1)
                ~pinned:0 ();
            ]
          ~flows:
            [
              {
                Graph.flow_id = 0;
                producer = 1;
                consumer = 2;
                msg_size = 8;
                deadline = Some (Time.ms 2);
              };
            ]
      in
      let aug =
        Augment.augment g ~nodes:[ 0; 1; 2; 3; 4; 5 ] ~degree:1
          ~protect_level:Task.Safety_critical ~checker_overhead:(Time.us 100)
          ~guard_wcet:(Time.us 200) ~digest_size:32
      in
      {
        v with
        Check.plans =
          List.map
            (fun (p : Planner.plan) ->
              if p.faulty = [] then
                { p with aug; assignment = [ (0, 0); (1, 0); (2, 0) ] }
              else p)
            v.Check.plans;
      })

(* BTR-E203: the fault-free mode handed a degraded mode's table. *)
let e203 =
  fires Check.Schedule_invalid (fun v ->
      let donor =
        List.find (fun (p : Planner.plan) -> p.faulty <> []) v.Check.plans
      in
      {
        v with
        Check.plans =
          List.map
            (fun (p : Planner.plan) ->
              if p.faulty = [] then { p with schedule = donor.schedule } else p)
            v.Check.plans;
      })

(* BTR-E301: the plan for fault set {5} deleted. *)
let e301 =
  fires Check.Mode_missing (fun v ->
      {
        v with
        Check.plans =
          List.filter (fun (p : Planner.plan) -> p.faulty <> [ 5 ]) v.Check.plans;
      })

(* BTR-E302: the transition {} -> {3} deleted. *)
let drop_transition_to_3 v =
  {
    v with
    Check.transitions =
      List.filter
        (fun (tr : Planner.transition) ->
          not (tr.from_faulty = [] && tr.new_fault = 3))
        v.Check.transitions;
  }

let e302 = fires Check.Transition_missing drop_transition_to_3

(* BTR-E303: R shrunk below every transition's bound. *)
let e303 =
  fires Check.Recovery_bound_exceeded (fun v ->
      {
        v with
        Check.config = { v.Check.config with Planner.recovery_bound = Time.ms 1 };
      })

(* BTR-W304: a stored bound forged down to 1µs. *)
let w304 =
  fires Check.Recovery_bound_understated (fun v ->
      {
        v with
        Check.transitions =
          List.map
            (fun (tr : Planner.transition) ->
              if tr.from_faulty = [] && tr.new_fault = 3 then
                { tr with recovery_bound = Time.us 1 }
              else tr)
            v.Check.transitions;
      })

let with_recovery_bound v r =
  { v with Check.config = { v.Check.config with Planner.recovery_bound = r } }

(* BTR-E305: at R = 60ms the strike path misses its deadline for every
   selective-omission cut, and sender 0's minimal cut is a single
   watcher ({2}), so corroboration (which needs f+1 = 2 distinct
   watchers) cannot save it either. R = 60ms is chosen so that E303
   does {e not} also fire: the transitions themselves still fit. *)
let e305 =
  fires Check.Selective_omission_undetectable (fun v ->
      with_recovery_bound v (Time.ms 60))

(* BTR-W306: with a 2-strike watchdog at R = 80ms, single-watchdog
   declaration takes 2 periods + slack > R, but the senders whose
   minimal cut spans >= 2 watchers are still caught in time through
   first-sweep corroboration. *)
let w306 =
  fires ~strikes:2 Check.Omission_needs_corroboration (fun v ->
      with_recovery_bound v (Time.ms 80))

(* BTR-E401: a transition retargeted at a mode nobody planned. *)
let e401 =
  fires Check.Transition_target_unknown (fun v ->
      {
        v with
        Check.transitions =
          List.map
            (fun (tr : Planner.transition) ->
              if tr.from_faulty = [] && tr.new_fault = 3 then
                { tr with to_faulty = [ 9 ]; new_fault = 9 }
              else tr)
            v.Check.transitions;
      })

(* BTR-E402: an extra plan for {4,5} that no transition reaches. *)
let e402 =
  fires Check.Orphan_mode (fun v ->
      let donor =
        List.find (fun (p : Planner.plan) -> p.faulty = [ 4 ]) v.Check.plans
      in
      { v with Check.plans = v.Check.plans @ [ { donor with faulty = [ 4; 5 ] } ] })

(* BTR-E403: the clique's plans judged against a star — when the hub is
   the faulty node, the survivors have no route left. *)
let e403 =
  fires Check.Evidence_unroutable (fun v ->
      {
        v with
        Check.topology =
          Topology.star ~n:6 ~hub:0 ~bandwidth_bps:10_000_000
            ~latency:(Time.us 50);
      })

(* BTR-W404: 10MB evidence records dwarf the 200ms budget. *)
let w404 =
  fires Check.Evidence_budget_dominant (fun v ->
      {
        v with
        Check.config = { v.Check.config with Planner.evidence_size = 10_000_000 };
      })

let test_code_id_round_trip () =
  (* code_of_id is a total inverse of code_id over all_codes — stable
     ids in artifacts must resolve back to the code that produced them. *)
  Alcotest.(check int) "sixteen codes" 16 (List.length Check.all_codes);
  List.iter
    (fun c ->
      check_bool (Check.code_id c ^ " round-trips") true
        (Check.code_of_id (Check.code_id c) = Some c))
    Check.all_codes;
  check_bool "unknown id rejected" true (Check.code_of_id "BTR-E999" = None);
  check_bool "empty id rejected" true (Check.code_of_id "" = None)

let test_json_order_stable () =
  (* report_to_json sorts diagnostics (severity, code, locus, message),
     so two reports carrying the same multiset serialize identically
     whatever order verification emitted them in. *)
  let report = Check.verify_view (with_shares (base_view ())
      { Net.data_frac = 0.5; control_frac = 0.2 }) in
  check_bool "fixture has several diagnostics" true
    (List.length report.Check.diagnostics > 1);
  let shuffled =
    { report with Check.diagnostics = List.rev report.Check.diagnostics }
  in
  Alcotest.(check string) "serialization is order-insensitive"
    (Check.report_to_json report)
    (Check.report_to_json shuffled)

let test_scenario_rejects () =
  (* The Scenario pipeline must surface verification failures as
     Planner.Rejected instead of deploying. An impossible R triggers it
     end to end. *)
  let spec =
    Btr.Scenario.spec
      ~workload:(Generators.avionics ~n_nodes:6)
      ~topology:(clique 6) ~f:1 ~recovery_bound:(Time.us 10) ()
  in
  match Btr.Scenario.plan spec with
  | Error (Planner.Rejected { diagnostics }) ->
    check_bool "diagnostics carried" true (diagnostics <> []);
    check_bool "codes are stable ids" true
      (List.for_all
         (fun (code, _) -> Check.code_of_id code <> None)
         diagnostics)
  | Error e -> Alcotest.failf "expected Rejected, got %a" Planner.pp_error e
  | Ok _ -> Alcotest.fail "expected rejection for R = 10us"

let test_every_code_covered () =
  (* Meta-test: the corpus above exercises every declared code. *)
  let covered =
    [
      Check.Link_oversubscribed;
      Check.Data_reserve_exceeded;
      Check.Control_reserve_tight;
      Check.Node_overutilized;
      Check.Response_time_divergent;
      Check.Schedule_invalid;
      Check.Mode_missing;
      Check.Transition_missing;
      Check.Recovery_bound_exceeded;
      Check.Recovery_bound_understated;
      Check.Selective_omission_undetectable;
      Check.Omission_needs_corroboration;
      Check.Transition_target_unknown;
      Check.Orphan_mode;
      Check.Evidence_unroutable;
      Check.Evidence_budget_dominant;
    ]
  in
  check_bool "corpus covers all_codes" true
    (List.for_all (fun c -> List.mem c covered) Check.all_codes
    && List.length covered = List.length Check.all_codes)

(* Every protected sink output Correct (or deliberately Shed) in every
   finalized period — the fault-free feasibility the paper's recovery
   promise presumes. Some deep random workloads cannot deliver their
   outputs within a period even with no fault injected; recovery is
   meaningless for those deployments, so the property skips them. *)
let deployment_clean workload rt =
  let m = Btr.Runtime.metrics rt in
  let prot = Btr.Metrics.protected_flows m in
  List.for_all
    (fun (fl : Graph.flow) ->
      (not (List.mem fl.flow_id prot))
      || List.for_all
           (fun p ->
             match Btr.Metrics.status m ~orig_flow:fl.flow_id ~period:p with
             | Some (Btr.Metrics.Correct | Btr.Metrics.Shed) | None -> true
             | Some _ -> false)
           (List.init 60 Fun.id))
    (Graph.sink_flows workload)

(* The tentpole property: acceptance is meaningful. If Scenario.plan
   (which runs the verifier) accepts a random strategy whose fault-free
   deployment delivers its outputs, then simulating a crash recovers
   within R. *)
let prop_accept_implies_bounded_recovery =
  QCheck.Test.make ~name:"verifier accepts => simulated recovery <= R"
    ~count:100
    QCheck.(pair (int_range 1 10_000) (int_bound 3))
    (fun (seed, node) ->
      let workload =
        Generators.random_layered ~rng:(Rng.create seed) ~n_nodes:4 ~layers:3
          ~width:3 ()
      in
      let r = Time.ms 300 in
      let spec ?script () =
        Btr.Scenario.spec ~workload ~topology:(clique 4) ~f:1 ~recovery_bound:r
          ?script ~horizon:(Time.sec 1) ~seed ()
      in
      match Btr.Scenario.plan (spec ()) with
      | Error _ -> true (* not accepted: property is vacuous *)
      | Ok _ -> (
        match Btr.Scenario.run (spec ()) with
        | Error _ -> false (* accepted strategies must deploy *)
        | Ok rt0 when not (deployment_clean workload rt0) -> true
        | Ok _ -> (
          match
            Btr.Scenario.run
              (spec
                 ~script:(Fault.single ~at:(Time.ms 110) ~node Fault.Crash)
                 ())
          with
          | Error _ -> false
          | Ok rt ->
            List.for_all
              (fun rec_t -> Time.compare rec_t r <= 0)
              (Btr.Metrics.recovery_times (Btr.Runtime.metrics rt)))))

(* KNOWN DIVERGENCE, pinned. The acceptance property above skips
   deployments whose fault-free run is not clean, and at the current
   QCHECK_SEED the draw below never comes up — but it is a real
   counterexample to "verifier accepts => simulated recovery <= R":
   the verifier accepts workload seed 41 at R = 300ms, yet simulating
   node 2's crash at 110ms measures an 890ms recovery. This test pins
   the divergent measurement so the eventual checker/simulator fix
   flips exactly the last assertion (and deletes this paragraph)
   instead of surfacing as a mystery property failure. *)
let test_pinned_divergence_seed41 () =
  let seed = 41 in
  let workload =
    Generators.random_layered ~rng:(Rng.create seed) ~n_nodes:4 ~layers:3
      ~width:3 ()
  in
  let r = Time.ms 300 in
  let spec ?script () =
    Btr.Scenario.spec ~workload ~topology:(clique 4) ~f:1 ~recovery_bound:r
      ?script ~horizon:(Time.sec 1) ~seed ()
  in
  check_bool "verifier accepts the seed-41 deployment" true
    (Result.is_ok (Btr.Scenario.plan (spec ())));
  (match
     Btr.Scenario.run
       (spec ~script:(Fault.single ~at:(Time.ms 110) ~node:2 Fault.Crash) ())
   with
  | Error e -> Alcotest.failf "faulted run failed to deploy: %a" Planner.pp_error e
  | Ok rt ->
    let worst =
      List.fold_left Time.max Time.zero
        (Btr.Metrics.recovery_times (Btr.Runtime.metrics rt))
    in
    Alcotest.(check int)
      "pinned divergent recovery (us)" 890_000 worst;
    (* Flip this assertion to [<= 0] once the divergence is fixed. *)
    check_bool "simulated recovery exceeds accepted R (known divergence)"
      true
      (Time.compare worst r > 0))

(* The omission-shaped generalization: acceptance must also survive the
   adversary the old detector starved on. Draw a sender and a random
   nonempty subset of the other nodes as omission targets; accepted
   strategies must keep recovery within R against that schedule. *)
let prop_accept_implies_bounded_recovery_omitto =
  QCheck.Test.make
    ~name:"verifier accepts => omit-to recovery <= R (random watcher subsets)"
    ~count:100
    QCheck.(triple (int_range 1 10_000) (int_bound 3) (int_range 1 7))
    (fun (seed, sender, mask) ->
      let workload =
        Generators.random_layered ~rng:(Rng.create seed) ~n_nodes:4 ~layers:3
          ~width:3 ()
      in
      let others = List.filter (fun x -> x <> sender) [ 0; 1; 2; 3 ] in
      let targets =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) others
      in
      let targets = if targets = [] then [ List.hd others ] else targets in
      let r = Time.ms 300 in
      let spec ?script () =
        Btr.Scenario.spec ~workload ~topology:(clique 4) ~f:1 ~recovery_bound:r
          ?script ~horizon:(Time.sec 1) ~seed ()
      in
      match Btr.Scenario.plan (spec ()) with
      | Error _ -> true (* not accepted: property is vacuous *)
      | Ok _ -> (
        match Btr.Scenario.run (spec ()) with
        | Error _ -> false
        | Ok rt0 when not (deployment_clean workload rt0) -> true
        | Ok _ -> (
          match
            Btr.Scenario.run
              (spec
                 ~script:
                   [
                     {
                       Fault.at = Time.ms 110;
                       node = sender;
                       behavior = Fault.Omit_to targets;
                     };
                   ]
                 ())
          with
          | Error _ -> false
          | Ok rt ->
            List.for_all
              (fun rec_t -> Time.compare rec_t r <= 0)
              (Btr.Metrics.recovery_times (Btr.Runtime.metrics rt)))))

(* The dual: a BTR-E305 rejection is not conservatism — in the decisive
   regime (R at most (strikes + 1) periods, so no detection path can
   possibly fit), some witness schedule genuinely violates when forced
   past the gate. Outside that regime the static bound keeps a safety
   margin of about two periods over the simulator, which is exactly
   what a verifier is for. *)
let witness_strategy_cache : (int, Btr_planner.Planner.t) Hashtbl.t =
  Hashtbl.create 8

let witness_strategy ~r_ms =
  match Hashtbl.find_opt witness_strategy_cache r_ms with
  | Some s -> s
  | None ->
    let s =
      match
        Planner.build
          (Planner.default_config ~f:1 ~recovery_bound:(Time.ms r_ms))
          (Generators.avionics ~n_nodes:6)
          (clique 6)
      with
      | Ok s -> s
      | Error e -> Alcotest.failf "planner failed: %a" Planner.pp_error e
    in
    Hashtbl.replace witness_strategy_cache r_ms s;
    s

let prop_e305_reject_implies_violating_schedule =
  QCheck.Test.make
    ~name:"E305 reject => a witness schedule violates (decisive regime)"
    ~count:40
    QCheck.(pair (int_range 1 5) (int_range 0 12))
    (fun (strikes, r_step) ->
      let period_ms = 20 in
      let r_ms =
        Stdlib.min (40 + (10 * r_step)) (period_ms * (strikes + 1))
      in
      let r = Time.ms r_ms in
      let v = Check.view_of_strategy (witness_strategy ~r_ms) in
      let wits = Check.selective_omission_witnesses ~strikes v in
      let config =
        { Btr.Runtime.default_config with Btr.Runtime.omission_strikes = strikes }
      in
      wits <> []
      && List.exists
           (fun (w : Check.omission_witness) ->
             let spec =
               Btr.Scenario.spec
                 ~workload:(Generators.avionics ~n_nodes:6)
                 ~topology:(clique 6) ~f:1 ~recovery_bound:r
                 ~script:
                   [
                     {
                       Fault.at = Time.ms 250;
                       node = w.Check.ow_sender;
                       behavior = Fault.Omit_to w.Check.ow_targets;
                     };
                   ]
                 ~horizon:(Time.sec 1) ()
             in
             match Btr.Scenario.run_unchecked ~config spec with
             | Error _ -> false
             | Ok rt ->
               List.exists
                 (fun rec_t -> Time.compare rec_t r > 0)
                 (Btr.Metrics.recovery_times (Btr.Runtime.metrics rt)))
           wits)

let suite =
  [
    ("pristine avionics strategy passes", `Quick, test_pristine_passes);
    ("report serializes to JSON", `Quick, test_json_shape);
    ("E101 link oversubscribed", `Quick, e101);
    ("E102 data reserve exceeded", `Quick, e102);
    ("W103 control reserve tight", `Quick, w103);
    ("E201 node overutilized", `Quick, e201);
    ("W202 response time divergent", `Quick, w202);
    ("E203 schedule invalid", `Quick, e203);
    ("E301 mode missing", `Quick, e301);
    ("E302 transition missing", `Quick, e302);
    ("E303 recovery bound exceeded", `Quick, e303);
    ("W304 recovery bound understated", `Quick, w304);
    ("E305 selective omission undetectable", `Quick, e305);
    ("W306 omission needs corroboration", `Quick, w306);
    ("E401 transition target unknown", `Quick, e401);
    ("E402 orphan mode", `Quick, e402);
    ("E403 evidence unroutable", `Quick, e403);
    ("W404 evidence budget dominant", `Quick, w404);
    ("code ids round-trip through code_of_id", `Quick, test_code_id_round_trip);
    ("JSON report order is stable", `Quick, test_json_order_stable);
    ("scenario rejects an infeasible plan", `Quick, test_scenario_rejects);
    ("corpus covers every code", `Quick, test_every_code_covered);
    ( "pinned divergence: seed 41 accepted but recovers in 890ms",
      `Quick,
      test_pinned_divergence_seed41 );
    QCheck_alcotest.to_alcotest prop_accept_implies_bounded_recovery;
    QCheck_alcotest.to_alcotest prop_accept_implies_bounded_recovery_omitto;
    QCheck_alcotest.to_alcotest prop_e305_reject_implies_violating_schedule;
  ]
