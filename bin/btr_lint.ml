(* Determinism linter driver: walks the given roots (default: the
   repository's source directories) for .ml files, lints each with
   Btr_lint_core.Lint, prints compiler-style findings and exits 1 when
   any are found — CI's blocking lint job runs exactly this. *)

module Lint = Btr_lint_core.Lint

let usage () =
  prerr_endline "usage: btr_lint [PATH...]";
  prerr_endline "  Lints .ml files under each PATH (default: bench bin lib test).";
  prerr_endline "  Rules:";
  List.iter
    (fun r ->
      Printf.eprintf "    %s %-14s %s\n" (Lint.rule_id r) (Lint.rule_name r)
        (Lint.describe r))
    Lint.all_rules;
  prerr_endline
    "  Suppress with a comment: (* btr-lint: allow <rule-name> *) on the";
  prerr_endline "  same line or the line above."

let rec walk path acc =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && (entry.[0] = '_' || entry.[0] = '.') then
          acc
        else walk (Filename.concat path entry) acc)
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-help" args then begin
    usage ();
    exit 0
  end;
  (match List.find_opt (fun a -> String.length a > 0 && a.[0] = '-') args with
  | Some flag ->
    Printf.eprintf "btr_lint: unknown option %s\n" flag;
    usage ();
    exit 2
  | None -> ());
  let roots = if args = [] then [ "bench"; "bin"; "lib"; "test" ] else args in
  (match List.find_opt (fun r -> not (Sys.file_exists r)) roots with
  | Some missing ->
    Printf.eprintf "btr_lint: no such file or directory: %s\n" missing;
    exit 2
  | None -> ());
  let files = List.sort String.compare (List.concat_map (fun r -> walk r []) roots) in
  let failed = ref false in
  let n_findings = ref 0 in
  List.iter
    (fun file ->
      match Lint.lint_file file with
      | Error msg ->
        failed := true;
        Printf.eprintf "btr_lint: %s\n" msg
      | Ok findings ->
        List.iter
          (fun f ->
            incr n_findings;
            Format.printf "%a@." Lint.pp_finding f)
          findings)
    files;
  if !n_findings > 0 || !failed then begin
    Printf.printf "btr_lint: %d finding(s) in %d file(s)\n" !n_findings
      (List.length files);
    exit 1
  end
  else Printf.printf "btr_lint: %d file(s) clean\n" (List.length files)
