(* btr — command-line front end for the BTR library.

   Examples:
     btr plan  --workload avionics --nodes 6 -f 1 -r 200
     btr check --workload avionics --nodes 6 -f 1 -r 200 --json
     btr run   --workload scada --nodes 5 -f 1 -r 300 \
               --fault corrupt:3:250 --horizon 2000
     btr workloads *)

open Btr_util
open Cmdliner
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Generators = Btr_workload.Generators
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Check = Btr_check.Check
module Incr = Btr_check.Incr
module Fault = Btr_fault.Fault
module Engine = Btr_sim.Engine

let workload_of_name name ~nodes ~seed =
  match name with
  | "avionics" -> Ok (Generators.avionics ~n_nodes:nodes)
  | "scada" -> Ok (Generators.scada ~n_nodes:nodes)
  | "random" ->
    Ok
      (Generators.random_layered ~rng:(Rng.create seed) ~n_nodes:nodes ~layers:3
         ~width:3 ())
  | other -> Error (Printf.sprintf "unknown workload %S" other)

let topology_of_name name ~nodes =
  match name with
  | "clique" ->
    Ok (Topology.fully_connected ~n:nodes ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
  | "ring" -> Ok (Topology.ring ~n:nodes ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
  | "dual-bus" ->
    Ok (Topology.dual_bus ~n:nodes ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
  | other -> Error (Printf.sprintf "unknown topology %S" other)

(* faults are written class:node:at_ms, e.g. corrupt:3:250 *)
let parse_fault s =
  match String.split_on_char ':' s with
  | [ cls; node; at ] -> (
    let node = int_of_string_opt node and at = int_of_string_opt at in
    let behavior =
      match cls with
      | "crash" -> Some Fault.Crash
      | "omit" -> Some Fault.Omit_outputs
      | "corrupt" -> Some Fault.Corrupt_outputs
      | "equivocate" -> Some Fault.Equivocate
      | "delay" -> Some (Fault.Delay_outputs (Time.ms 8))
      | "babble" -> Some (Fault.Babble { bogus_per_period = 4 })
      | _ -> None
    in
    match behavior, node, at with
    | Some b, Some node, Some at_ms ->
      Ok { Fault.at = Time.ms at_ms; node; behavior = b }
    | _ -> Error (`Msg (Printf.sprintf "bad fault spec %S" s)))
  | _ ->
    Error (`Msg (Printf.sprintf "bad fault spec %S (want class:node:at_ms)" s))

let fault_conv = Arg.conv (parse_fault, fun ppf _ -> Format.fprintf ppf "<fault>")

(* Observability plumbing shared by `run` and the default demo. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Stream every telemetry event to $(docv) as JSON lines.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the metric registry (counters/gauges) to $(docv) as JSON.")

(* Build the context the deployment reports through, run [k] with it,
   then flush the sinks. --metrics without --trace still needs a fresh
   context so the counters are not shared with unrelated runs. *)
let with_obs ~trace ~metrics k =
  try
    let oc = Option.map open_out trace in
    let obs =
      match oc with
      | Some oc -> Some (Btr_obs.Obs.with_jsonl oc)
      | None -> Option.map (fun _ -> Btr_obs.Obs.create ()) metrics
    in
    let code = k obs in
    Option.iter
      (fun obs ->
        Btr_obs.Obs.flush obs;
        Option.iter
          (fun file ->
            let mc = open_out file in
            output_string mc (Btr_obs.Obs.metrics_json obs);
            output_char mc '\n';
            close_out mc)
          metrics)
      obs;
    Option.iter close_out oc;
    code
  with Sys_error m ->
    Printf.eprintf "error: %s\n" m;
    1

let report rt ~r =
  let m = Btr.Runtime.metrics rt in
  Format.printf "%a@." Btr.Metrics.pp_summary m;
  List.iter
    (fun (t, node, mode) ->
      Format.printf "t=%a: node %d -> mode {%s}@." Time.pp t node
        (String.concat "," (List.map string_of_int mode)))
    (Btr.Runtime.mode_changes rt);
  List.iteri
    (fun i rec_t ->
      Format.printf "fault %d recovery: %a (R = %dms)@." (i + 1) Time.pp rec_t r)
    (Btr.Metrics.recovery_times m)

(* Common options *)
let workload_arg =
  Arg.(value & opt string "avionics" & info [ "workload"; "w" ] ~doc:"Workload: avionics, scada or random.")

let topology_arg =
  Arg.(value & opt string "clique" & info [ "topology"; "t" ] ~doc:"Topology: clique, ring or dual-bus.")

let nodes_arg = Arg.(value & opt int 6 & info [ "nodes"; "n" ] ~doc:"Number of nodes.")
let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault bound.")
let r_arg = Arg.(value & opt int 200 & info [ "r" ] ~doc:"Recovery bound R in ms.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.")

(* Event-queue backend for every engine this invocation creates
   (scenario runs, campaign worker domains). Verdicts and artifacts are
   identical for either choice; pheap is kept for differential runs. *)
let backend_arg =
  let parse s =
    match Engine.backend_of_string s with
    | Some b -> Ok b
    | None ->
      Error (`Msg (Printf.sprintf "unknown engine backend %S (wheel or pheap)" s))
  in
  let backend_conv =
    Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Engine.backend_name b))
  in
  Arg.(
    value
    & opt backend_conv (Engine.default_backend ())
    & info [ "engine-backend" ] ~docv:"BACKEND"
        ~doc:
          "Sim-engine event queue: wheel (timing wheel, default) or pheap (the \
           pairing-heap baseline). Results are byte-identical either way.")

let build_strategy workload topology nodes f r seed =
  match workload_of_name workload ~nodes ~seed with
  | Error m -> Error m
  | Ok g -> (
    match topology_of_name topology ~nodes with
    | Error m -> Error m
    | Ok topo -> (
      let cfg = Planner.default_config ~f ~recovery_bound:(Time.ms r) in
      match Planner.build cfg g topo with
      | Ok s -> Ok (g, topo, s)
      | Error e -> Error (Format.asprintf "%a" Planner.pp_error e)))

let plan_cmd =
  let doc = "Compute and summarize an offline BTR strategy." in
  let run workload topology nodes f r seed verbose =
    match build_strategy workload topology nodes f r seed with
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
    | Ok (_, _, s) ->
      let st = Planner.stats s in
      Printf.printf
        "strategy: %d modes, %d transitions, planned in %.1fms\n\
         worst-case recovery bound: %s (requested R = %dms) -> %s\n"
        st.Planner.modes st.Planner.transitions
        (st.Planner.planning_seconds *. 1e3)
        (Time.to_string st.Planner.worst_recovery)
        r
        (if Planner.admitted s then "ADMITTED" else "REJECTED");
      if verbose then
        List.iter
          (fun (p : Planner.plan) ->
            Format.printf "@.mode {%s}%s:@.%a@."
              (String.concat "," (List.map string_of_int p.Planner.faulty))
              (match p.Planner.shed_below with
              | None -> ""
              | Some c -> Format.asprintf " (shed below %a)" Task.pp_criticality c)
              Btr_sched.Schedule.pp p.Planner.schedule)
          (Planner.all_plans s);
      0
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every mode's schedule.")
  in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(
      const run $ workload_arg $ topology_arg $ nodes_arg $ f_arg $ r_arg
      $ seed_arg $ verbose)

let run_cmd =
  let doc = "Deploy a strategy on the simulator and inject faults." in
  let run backend workload topology nodes f r seed faults horizon_ms trace metrics =
    Engine.set_default_backend backend;
    match build_strategy workload topology nodes f r seed with
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
    | Ok (g, topo, _) ->
      with_obs ~trace ~metrics (fun obs ->
          let s =
            Btr.Scenario.spec ~workload:g ~topology:topo ~f
              ~recovery_bound:(Time.ms r) ~script:faults
              ~horizon:(Time.ms horizon_ms) ~seed ?obs ()
          in
          match Btr.Scenario.run s with
          | Error e ->
            Format.eprintf "error: %a@." Planner.pp_error e;
            1
          | Ok rt ->
            report rt ~r;
            0)
  in
  let faults =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ] ~doc:"Fault to inject, as class:node:at_ms (repeatable).")
  in
  let horizon =
    Arg.(value & opt int 1000 & info [ "horizon" ] ~doc:"Simulated run length in ms.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ backend_arg $ workload_arg $ topology_arg $ nodes_arg $ f_arg
      $ r_arg $ seed_arg $ faults $ horizon $ trace_arg $ metrics_arg)

(* Replay an edit script against the incremental verifier: one edit per
   line in Incr.parse_edit syntax, blank lines and #-comments skipped.
   Each applied edit reports the diagnostics that appeared/disappeared
   and how much plan reuse the delta engine achieved; the final report
   is identical to a from-scratch `btr check` of the edited system. *)
let check_delta workload topology nodes f r seed json file =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "error: %s\n" m; 1) fmt in
  match workload_of_name workload ~nodes ~seed with
  | Error m -> fail "%s" m
  | Ok g -> (
    match topology_of_name topology ~nodes with
    | Error m -> fail "%s" m
    | Ok topo -> (
      let cfg = Planner.default_config ~f ~recovery_bound:(Time.ms r) in
      match Incr.init cfg g topo with
      | Error e -> fail "%s" (Format.asprintf "%a" Planner.pp_error e)
      | Ok st0 -> (
        match In_channel.with_open_text file In_channel.input_lines with
        | exception Sys_error m -> fail "%s" m
        | lines ->
          let st = ref st0 and line_no = ref 0 and failed = ref None in
          List.iter
            (fun line ->
              incr line_no;
              let line = String.trim line in
              if !failed = None && line <> "" && line.[0] <> '#' then
                match Incr.parse_edit line with
                | Error m ->
                  failed := Some (Printf.sprintf "%s:%d: %s" file !line_no m)
                | Ok edit -> (
                  match Incr.apply !st edit with
                  | Error e ->
                    failed :=
                      Some
                        (Format.asprintf "%s:%d: %a" file !line_no
                           Incr.pp_apply_error e)
                  | Ok (st', delta) ->
                    st := st';
                    if not json then begin
                      Format.printf "@[<v2>%d: %s@,%a" !line_no
                        (Incr.edit_to_string edit) Incr.pp_report_delta delta;
                      (match Incr.last_plan_delta st' with
                      | Some d ->
                        Format.printf
                          "@,plan: %d/%d modes reused, %d tasks moved"
                          d.Planner.reused_modes
                          (d.Planner.reused_modes + d.Planner.replanned_modes)
                          d.Planner.churn_moved_tasks
                      | None -> ());
                      Format.printf "@]@."
                    end))
            lines;
          (match !failed with
          | Some m ->
            Printf.eprintf "error: %s\n" m;
            1
          | None ->
            let report = Incr.report !st in
            if json then print_endline (Check.report_to_json report)
            else begin
              let s = Incr.memo_stats !st in
              let hits =
                s.Incr.static_hits + s.Incr.reserve_hits + s.Incr.rta_hits
                + s.Incr.sched_hits + s.Incr.routes_hits + s.Incr.evb_hits
                + s.Incr.cuts_hits
              and misses =
                s.Incr.static_misses + s.Incr.reserve_misses + s.Incr.rta_misses
                + s.Incr.sched_misses + s.Incr.routes_misses + s.Incr.evb_misses
                + s.Incr.cuts_misses
              in
              Format.printf "memo: %d hits, %d misses over the script@.%a@."
                hits misses Check.pp_report report
            end;
            if Check.passed report then 0 else 1))))

let check_cmd =
  let doc =
    "Statically verify a strategy's recovery obligations (Definition 3.1)."
  in
  let run workload topology nodes f r seed json list_codes delta trace metrics =
    if list_codes then begin
      List.iter
        (fun c ->
          Printf.printf "%s %-7s %s\n" (Check.code_id c)
            (Check.severity_name (Check.severity_of c))
            (Check.describe c))
        Check.all_codes;
      0
    end
    else
      match delta with
      | Some file -> check_delta workload topology nodes f r seed json file
      | None -> (
      match build_strategy workload topology nodes f r seed with
      | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
      | Ok (_, _, s) ->
        with_obs ~trace ~metrics (fun obs ->
            let report = Check.verify ?obs s in
            if json then print_endline (Check.report_to_json report)
            else Format.printf "%a@." Check.pp_report report;
            if Check.passed report then 0 else 1))
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let list_codes =
    Arg.(
      value & flag
      & info [ "codes" ] ~doc:"List every diagnostic code and exit.")
  in
  let delta =
    Arg.(
      value
      & opt (some string) None
      & info [ "delta" ] ~docv:"FILE"
          ~doc:
            "Replay the edit script in $(docv) (one edit per line, e.g. \
             'retune-flow 3 size=128'; blank lines and # comments skipped) \
             through the incremental verifier, reporting per-edit diagnostic \
             deltas and the final report.")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ workload_arg $ topology_arg $ nodes_arg $ f_arg $ r_arg
      $ seed_arg $ json $ list_codes $ delta $ trace_arg $ metrics_arg)

let workloads_cmd =
  let doc = "List built-in workloads and show their structure." in
  let run nodes seed =
    List.iter
      (fun name ->
        match workload_of_name name ~nodes ~seed with
        | Ok g -> Format.printf "-- %s --@.%a@." name Graph.pp g
        | Error _ -> ())
      [ "avionics"; "scada"; "random" ];
    0
  in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const run $ nodes_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* campaign run | replay | report                                      *)

module Campaign = Btr_campaign.Campaign
module Orchestrate = Btr_campaign.Orchestrate

let criticality_of_name = function
  | "best-effort" -> Ok Task.Best_effort
  | "low" -> Ok Task.Low
  | "medium" -> Ok Task.Medium
  | "high" -> Ok Task.High
  | "safety-critical" -> Ok Task.Safety_critical
  | other -> Error (Printf.sprintf "unknown protect level %S" other)

let share_of_name = function
  | "default" -> Ok None
  | s -> (
    match float_of_string_opt s with
    | Some c -> Ok (Some c)
    | None -> Error (Printf.sprintf "bad control share %S (want a float or 'default')" s))

(* Campaign CLI errors are usage errors: exit 2, like cmdliner's own. *)
let usage_error m =
  Printf.eprintf "btr campaign: %s\n" m;
  2

let rec map_result f = function
  | [] -> Ok []
  | x :: xs -> (
    match f x with
    | Error _ as e -> e
    | Ok y -> ( match map_result f xs with Error _ as e -> e | Ok ys -> Ok (y :: ys)))

let grid_of workloads topologies node_counts fault_bounds r_ms bandwidths protects
    shares classes =
  match map_result criticality_of_name protects with
  | Error m -> Error m
  | Ok protect_levels -> (
    match map_result share_of_name shares with
    | Error m -> Error m
    | Ok control_shares -> (
      let g =
        {
          Campaign.workloads;
          topologies;
          node_counts;
          fault_bounds;
          recovery_bounds = List.map Time.ms r_ms;
          bandwidths;
          protect_levels;
          control_shares;
          classes;
        }
      in
      match Campaign.validate_grid g with Error m -> Error m | Ok () -> Ok g))

let write_lines file lines =
  let oc = open_out file in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

(* Grid axes: each option takes a comma-separated list and the campaign
   crosses them. *)
let list_opt ~names ~default ~docv ~doc cv =
  Arg.(value & opt (list cv) default & info names ~docv ~doc)

(* The grid-axis option set, shared by `campaign run` (the cross
   product it executes) and `campaign frontier` (the config slices it
   bisects). Evaluates to the parsed-and-validated grid. *)
let grid_args =
  let workloads =
    list_opt ~names:[ "workload"; "w" ] ~default:[ "avionics" ] ~docv:"LIST"
      ~doc:"Workloads to cross: avionics, scada, random." Arg.string
  in
  let topologies =
    list_opt ~names:[ "topology"; "t" ] ~default:[ "clique" ] ~docv:"LIST"
      ~doc:"Topologies to cross: clique, ring, dual-bus." Arg.string
  in
  let node_counts =
    list_opt ~names:[ "nodes"; "n" ] ~default:[ 6 ] ~docv:"LIST"
      ~doc:"Node counts to cross." Arg.int
  in
  let fault_bounds =
    list_opt ~names:[ "f" ] ~default:[ 1 ] ~docv:"LIST" ~doc:"Fault bounds to cross."
      Arg.int
  in
  let r_ms =
    list_opt ~names:[ "r" ] ~default:[ 200 ] ~docv:"LIST"
      ~doc:"Recovery bounds R in ms to cross." Arg.int
  in
  let bandwidths =
    list_opt ~names:[ "bandwidth" ] ~default:[ 10_000_000 ] ~docv:"LIST"
      ~doc:"Link bandwidths in bits/s to cross." Arg.int
  in
  let protects =
    list_opt ~names:[ "protect" ] ~default:[ "medium" ] ~docv:"LIST"
      ~doc:"Protect levels to cross: best-effort, low, medium, high, safety-critical."
      Arg.string
  in
  let shares =
    list_opt ~names:[ "control-share" ] ~default:[ "default" ] ~docv:"LIST"
      ~doc:"Control bandwidth shares to cross: floats in (0, 0.6], or 'default'."
      Arg.string
  in
  let classes =
    list_opt ~names:[ "classes" ] ~default:Campaign.known_classes ~docv:"LIST"
      ~doc:
        "Fault classes the schedule generator may draw: crash, omit, omitto, \
         delay, corrupt, equivocate, babble. Restricting the list focuses the \
         campaign (e.g. --classes omitto for selective-omission conformance)."
      Arg.string
  in
  Term.(
    const grid_of $ workloads $ topologies $ node_counts $ fault_bounds $ r_ms
    $ bandwidths $ protects $ shares $ classes)

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let json_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the JSONL artifact to $(docv) ('-' for stdout).")

let campaign_run_cmd =
  let doc = "Run a randomized fault-injection campaign over a parameter grid." in
  let run backend grid_r trials seed jobs json_file no_shrink shrink_budget
      shard_s resume max_trials trace metrics =
    Engine.set_default_backend backend;
    match grid_r with
    | Error m -> usage_error m
    | Ok grid -> (
      if trials <= 0 then usage_error "trials must be positive"
      else if jobs < 0 then usage_error "jobs must be >= 1"
      else if max_trials <> None && Option.get max_trials <= 0 then
        usage_error "max-trials must be positive"
      else
        match Orchestrate.shard_of_string shard_s with
        | Error m -> usage_error m
        | Ok shard -> (
          let resume_art =
            match resume, json_file with
            | false, _ -> Ok None
            | true, (None | Some "-") ->
              Error "--resume needs --json FILE (the artifact to continue)"
            | true, Some file ->
              if not (Sys.file_exists file) then Ok None
              else (
                match Orchestrate.parse_artifact (read_lines file) with
                | Ok a -> Ok (Some a)
                | Error m -> Error (Printf.sprintf "%s: %s" file m))
          in
          match resume_art with
          | Error m -> usage_error m
          | Ok resume ->
            with_obs ~trace ~metrics (fun obs ->
                let spec =
                  Campaign.spec ~grid ~trials ~seed ~shrink:(not no_shrink)
                    ~shrink_budget ()
                in
                let jobs = if jobs = 0 then Campaign.default_jobs () else jobs in
                match
                  Orchestrate.run ?obs ~jobs ?resume ?max_trials ~shard spec
                with
                | Error m -> usage_error m
                | Ok r ->
                  (match json_file with
                  | Some "-" -> List.iter print_endline r.Orchestrate.lines
                  | Some file -> write_lines file r.Orchestrate.lines
                  | None -> ());
                  if shard.Orchestrate.count > 1 then
                    Printf.printf "shard %s: %d of %d trials\n"
                      (Orchestrate.shard_to_string shard)
                      r.Orchestrate.total trials;
                  if r.Orchestrate.skipped > 0 then
                    Printf.printf "resumed: %d recorded verdicts reused, %d executed\n"
                      r.Orchestrate.skipped r.Orchestrate.executed;
                  if not r.Orchestrate.complete then
                    Printf.printf
                      "incomplete: %d of %d shard trials recorded (continue with \
                       --resume)\n"
                      (r.Orchestrate.skipped + r.Orchestrate.executed)
                      r.Orchestrate.total;
                  (match Campaign.render_report r.Orchestrate.lines with
                  | Ok report -> print_string report
                  | Error m -> Printf.eprintf "internal report error: %s\n" m);
                  List.iter
                    (fun (s : Campaign.shrunk_violation) ->
                      Printf.printf "\nreproducer (trial %d):\n%s"
                        s.Campaign.source.Campaign.index s.Campaign.snippet)
                    r.Orchestrate.new_violations;
                  if r.Orchestrate.has_violations then 3 else 0)))
  in
  let trials =
    Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Number of trials to run.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains (0 = one less than the recommended domain count). \
             Verdicts are identical for every value.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report violations unminimized.")
  in
  let shrink_budget =
    Arg.(
      value & opt int 150
      & info [ "shrink-budget" ] ~doc:"Max shrink replays per violation.")
  in
  let shard =
    Arg.(
      value & opt string "0/1"
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Execute only the trials that hash to shard $(docv) (stable FNV-1a \
             rule). Run every shard 0/N .. (N-1)/N anywhere, then merge with \
             $(b,campaign combine) — the result is byte-identical to an \
             unsharded run.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the artifact at $(b,--json) $(i,FILE) if it exists: \
             verdicts already recorded there are reused (after a header \
             fingerprint cross-check against the compiled grid), only the \
             missing trials execute.")
  in
  let max_trials =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-trials" ] ~docv:"N"
          ~doc:
            "Execute at most $(docv) trials this invocation and write a \
             well-formed partial artifact (finish it later with --resume).")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ backend_arg $ grid_args $ trials $ seed_arg $ jobs
      $ json_file_arg $ no_shrink $ shrink_budget $ shard $ resume $ max_trials
      $ trace_arg $ metrics_arg)

(* Rebuild a trial from its artifact verdict line. *)
let trial_from_artifact file index =
  let open Campaign.Flat_json in
  let int_of fields k = match List.assoc_opt k fields with Some (Int i) -> Some i | _ -> None in
  let str_of fields k = match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None in
  let lines = List.filter (fun l -> String.trim l <> "") (read_lines file) in
  let rec find = function
    | [] -> Error (Printf.sprintf "no trial %d in %s" index file)
    | line :: rest -> (
      match parse line with
      | Error m -> Error (Printf.sprintf "%s: %s" file m)
      | Ok fields ->
        if int_of fields "trial" <> Some index then find rest
        else
          let req name v =
            match v with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "trial %d line lacks %S" index name)
          in
          let ( let* ) r k = Result.bind r k in
          let* workload = req "workload" (str_of fields "workload") in
          let* topology = req "topology" (str_of fields "topology") in
          let* nodes = req "nodes" (int_of fields "nodes") in
          let* f = req "f" (int_of fields "f") in
          let* r = req "r_us" (int_of fields "r_us") in
          let* bandwidth_bps = req "bandwidth_bps" (int_of fields "bandwidth_bps") in
          let* protect_s = req "protect" (str_of fields "protect") in
          let* protect = criticality_of_name protect_s in
          let* share_s = req "control_share" (str_of fields "control_share") in
          let* control_share = share_of_name share_s in
          let* runtime_seed = req "seed" (int_of fields "seed") in
          let* script_s = req "script" (str_of fields "script") in
          let* script = Campaign.script_of_string script_s in
          Ok
            ( {
                Campaign.workload;
                topology;
                nodes;
                f;
                r;
                bandwidth_bps;
                protect;
                control_share;
              },
              runtime_seed,
              script ))
  in
  find lines

let print_outcome params runtime_seed script (outcome : Campaign.outcome) =
  Format.printf "%a seed=%d@.script: %s@." Campaign.pp_params params runtime_seed
    (Campaign.script_to_string script);
  match outcome with
  | Campaign.Rejected m ->
    Printf.printf "verdict: rejected (%s)\n" m;
    1
  | Campaign.Errored m ->
    Printf.printf "verdict: error (%s)\n" m;
    1
  | Campaign.Pass st ->
    Printf.printf "verdict: pass (worst recovery %s <= R %s)\n"
      (Time.to_string st.Campaign.worst_recovery)
      (Time.to_string params.Campaign.r);
    0
  | Campaign.Violation st ->
    Printf.printf "verdict: VIOLATION (worst recovery %s > R %s)\n"
      (Time.to_string st.Campaign.worst_recovery)
      (Time.to_string params.Campaign.r);
    3

let campaign_replay_cmd =
  let doc =
    "Replay one trial deterministically — from an artifact ($(b,--from) + \
     $(b,--trial)) or from an explicit $(b,--script)."
  in
  let run backend from trial_idx script_s workload topology nodes f r_ms
      protect_s share_s campaign_seed runtime_seed =
    Engine.set_default_backend backend;
    let replay (params : Campaign.params) runtime_seed script =
      let cache = Campaign.Cache.create ~seed:campaign_seed in
      print_outcome params runtime_seed script
        (Campaign.run_script ~cache params ~runtime_seed script)
    in
    match from, script_s with
    | Some _, Some _ -> usage_error "--from and --script are mutually exclusive"
    | Some file, None -> (
      match trial_idx with
      | None -> usage_error "--from needs --trial N"
      | Some idx -> (
        match trial_from_artifact file idx with
        | Error m ->
          Printf.eprintf "error: %s\n" m;
          1
        | Ok (params, runtime_seed, script) -> replay params runtime_seed script))
    | None, Some s -> (
      match
        ( Campaign.script_of_string s,
          criticality_of_name protect_s,
          share_of_name share_s )
      with
      | Error m, _, _ | _, Error m, _ | _, _, Error m -> usage_error m
      | Ok script, Ok protect, Ok control_share ->
        replay
          {
            Campaign.workload;
            topology;
            nodes;
            f;
            r = Time.ms r_ms;
            bandwidth_bps = 10_000_000;
            protect;
            control_share;
          }
          runtime_seed script)
    | None, None -> usage_error "need --script, or --from FILE --trial N"
  in
  let from =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE" ~doc:"Campaign JSONL artifact to replay from.")
  in
  let trial_idx =
    Arg.(
      value
      & opt (some int) None
      & info [ "trial" ] ~docv:"N" ~doc:"Trial index within $(b,--from).")
  in
  let script_s =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"SCRIPT"
          ~doc:
            "Fault schedule as class[.param]\\@node\\@at_us joined with ';', e.g. \
             'corrupt\\@3\\@250000;babble.8\\@5\\@0'.")
  in
  let protect =
    Arg.(value & opt string "medium" & info [ "protect" ] ~doc:"Protect level.")
  in
  let share =
    Arg.(
      value & opt string "default"
      & info [ "control-share" ] ~doc:"Control bandwidth share, or 'default'.")
  in
  let campaign_seed =
    Arg.(
      value & opt int 1
      & info [ "campaign-seed" ]
          ~doc:"Campaign seed (fixes the random workload stream).")
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const run $ backend_arg $ from $ trial_idx $ script_s $ workload_arg
      $ topology_arg $ nodes_arg $ f_arg $ r_arg $ protect $ share
      $ campaign_seed $ seed_arg)

let campaign_combine_cmd =
  let doc =
    "Merge shard artifacts into the canonical campaign artifact (byte-identical \
     to an unsharded run)."
  in
  let run files out =
    if files = [] then usage_error "need at least one shard artifact"
    else
      match
        try Ok (List.map read_lines files) with Sys_error m -> Error m
      with
      | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
      | Ok inputs -> (
        match Orchestrate.combine inputs with
        | Error m ->
          Printf.eprintf "btr campaign combine: %s\n" m;
          2
        | Ok (lines, has_violations) ->
          (match out with
          | "-" -> List.iter print_endline lines
          | file ->
            write_lines file lines;
            Printf.printf "combined %d shard artifact(s) into %s\n"
              (List.length files) file);
          if has_violations then 3 else 0)
  in
  let files =
    Arg.(value & pos_all string [] & info [] ~docv:"SHARD.jsonl" ~doc:"Shard artifacts.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "json"; "o" ] ~docv:"FILE"
          ~doc:"Write the combined artifact to $(docv) (default stdout).")
  in
  Cmd.v (Cmd.info "combine" ~doc) Term.(const run $ files $ out)

let campaign_frontier_cmd =
  let doc =
    "Locate the Def-3.1 admit/violate boundary along one axis by per-slice \
     bisection instead of an exhaustive grid."
  in
  let run backend grid_r axis_s lo hi tol probes seed scan json_file trace
      metrics =
    Engine.set_default_backend backend;
    match grid_r with
    | Error m -> usage_error m
    | Ok grid -> (
      match Orchestrate.axis_of_string axis_s with
      | Error m -> usage_error m
      | Ok axis ->
        (* The r axis is specified in ms on the CLI, like --r. *)
        let scale v =
          match axis with Orchestrate.Axis_r -> Time.ms v | _ -> v
        in
        let fs =
          {
            Orchestrate.slice_grid = grid;
            axis;
            lo = scale lo;
            hi = scale hi;
            tolerance = scale tol;
            probes;
            fseed = seed;
          }
        in
        with_obs ~trace ~metrics (fun obs ->
            let search =
              if scan then Orchestrate.grid_scan else Orchestrate.frontier
            in
            match search ?obs fs with
            | Error m -> usage_error m
            | Ok fr ->
              let lines = Orchestrate.frontier_lines fr in
              (match json_file with
              | Some "-" -> List.iter print_endline lines
              | Some file -> write_lines file lines
              | None -> ());
              (match Orchestrate.render_frontier lines with
              | Ok report -> print_string report
              | Error m -> Printf.eprintf "internal report error: %s\n" m);
              0))
  in
  let axis =
    Arg.(
      value & opt string "r"
      & info [ "axis" ] ~docv:"AXIS"
          ~doc:
            "Numeric axis to bisect: r (recovery bound, ms), f (fault bound), \
             bandwidth (bits/s) or strikes (omission-strike threshold). The \
             grid option for that axis is ignored; every other grid option \
             defines the config slices.")
  in
  let lo =
    Arg.(
      required
      & opt (some int) None
      & info [ "lo" ] ~docv:"N" ~doc:"Lower end of the search range (ms for axis r).")
  in
  let hi =
    Arg.(
      required
      & opt (some int) None
      & info [ "hi" ] ~docv:"N" ~doc:"Upper end of the search range (ms for axis r).")
  in
  let tol =
    Arg.(
      value & opt int 1
      & info [ "tol" ] ~docv:"N"
          ~doc:
            "Boundary tolerance: the bisection lattice step (ms for axis r). \
             The located boundary is a pair of adjacent lattice points.")
  in
  let probes =
    Arg.(
      value & opt int 3
      & info [ "probes" ] ~docv:"N"
          ~doc:"Randomized fault schedules drawn per evaluated point.")
  in
  let scan =
    Arg.(
      value & flag
      & info [ "scan" ]
          ~doc:
            "Exhaustively evaluate every lattice point instead of bisecting \
             (the reference the bisection is audited against).")
  in
  Cmd.v (Cmd.info "frontier" ~doc)
    Term.(
      const run $ backend_arg $ grid_args $ axis $ lo $ hi $ tol $ probes
      $ seed_arg $ scan $ json_file_arg $ trace_arg $ metrics_arg)

let campaign_report_cmd =
  let doc =
    "Render the aggregate report from a campaign (or frontier) JSONL artifact."
  in
  let run file =
    match read_lines file with
    | exception Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      1
    | lines -> (
      let rendered =
        if Orchestrate.is_frontier_artifact lines then
          Orchestrate.render_frontier lines
        else Campaign.render_report lines
      in
      match rendered with
      | Ok report ->
        print_string report;
        0
      | Error m ->
        Printf.eprintf "error: %s\n" m;
        1)
  in
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE" ~doc:"Campaign or frontier JSONL artifact.")
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ file)

let campaign_cmd =
  let doc = "Fault-injection campaigns: randomized search for Definition 3.1 violations." in
  Cmd.group
    (Cmd.info "campaign" ~doc)
    [
      campaign_run_cmd;
      campaign_replay_cmd;
      campaign_report_cmd;
      campaign_combine_cmd;
      campaign_frontier_cmd;
    ]

(* With no subcommand, run the demo deployment: handy for producing a
   full trace (`btr --trace t.jsonl`) without memorizing options. *)
let demo_term =
  let run backend seed trace metrics =
    Engine.set_default_backend backend;
    with_obs ~trace ~metrics (fun obs ->
        match Btr.Scenario.run (Btr.Scenario.avionics_demo ~seed ?obs ()) with
        | Error e ->
          Format.eprintf "error: %a@." Planner.pp_error e;
          1
        | Ok rt ->
          report rt ~r:200;
          0)
  in
  Term.(const run $ backend_arg $ seed_arg $ trace_arg $ metrics_arg)

let () =
  let doc = "bounded-time recovery for cyber-physical systems" in
  let info = Cmd.info "btr" ~version:"1.0.0" ~doc in
  (* term_err = 2: unknown subcommands or flags exit 2 (usage error),
     so scripts can tell misuse from a failed check/run (1). *)
  exit
    (Cmd.eval' ~term_err:2
       (Cmd.group ~default:demo_term info
          [ plan_cmd; check_cmd; run_cmd; campaign_cmd; workloads_cmd ]))
