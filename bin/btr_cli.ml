(* btr — command-line front end for the BTR library.

   Examples:
     btr plan  --workload avionics --nodes 6 -f 1 -r 200
     btr check --workload avionics --nodes 6 -f 1 -r 200 --json
     btr run   --workload scada --nodes 5 -f 1 -r 300 \
               --fault corrupt:3:250 --horizon 2000
     btr workloads *)

open Btr_util
open Cmdliner
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Generators = Btr_workload.Generators
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Check = Btr_check.Check
module Fault = Btr_fault.Fault

let workload_of_name name ~nodes ~seed =
  match name with
  | "avionics" -> Ok (Generators.avionics ~n_nodes:nodes)
  | "scada" -> Ok (Generators.scada ~n_nodes:nodes)
  | "random" ->
    Ok
      (Generators.random_layered ~rng:(Rng.create seed) ~n_nodes:nodes ~layers:3
         ~width:3 ())
  | other -> Error (Printf.sprintf "unknown workload %S" other)

let topology_of_name name ~nodes =
  match name with
  | "clique" ->
    Ok (Topology.fully_connected ~n:nodes ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
  | "ring" -> Ok (Topology.ring ~n:nodes ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
  | "dual-bus" ->
    Ok (Topology.dual_bus ~n:nodes ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
  | other -> Error (Printf.sprintf "unknown topology %S" other)

(* faults are written class:node:at_ms, e.g. corrupt:3:250 *)
let parse_fault s =
  match String.split_on_char ':' s with
  | [ cls; node; at ] -> (
    let node = int_of_string_opt node and at = int_of_string_opt at in
    let behavior =
      match cls with
      | "crash" -> Some Fault.Crash
      | "omit" -> Some Fault.Omit_outputs
      | "corrupt" -> Some Fault.Corrupt_outputs
      | "equivocate" -> Some Fault.Equivocate
      | "delay" -> Some (Fault.Delay_outputs (Time.ms 8))
      | "babble" -> Some (Fault.Babble { bogus_per_period = 4 })
      | _ -> None
    in
    match behavior, node, at with
    | Some b, Some node, Some at_ms ->
      Ok { Fault.at = Time.ms at_ms; node; behavior = b }
    | _ -> Error (`Msg (Printf.sprintf "bad fault spec %S" s)))
  | _ ->
    Error (`Msg (Printf.sprintf "bad fault spec %S (want class:node:at_ms)" s))

let fault_conv = Arg.conv (parse_fault, fun ppf _ -> Format.fprintf ppf "<fault>")

(* Observability plumbing shared by `run` and the default demo. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Stream every telemetry event to $(docv) as JSON lines.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the metric registry (counters/gauges) to $(docv) as JSON.")

(* Build the context the deployment reports through, run [k] with it,
   then flush the sinks. --metrics without --trace still needs a fresh
   context so the counters are not shared with unrelated runs. *)
let with_obs ~trace ~metrics k =
  try
    let oc = Option.map open_out trace in
    let obs =
      match oc with
      | Some oc -> Some (Btr_obs.Obs.with_jsonl oc)
      | None -> Option.map (fun _ -> Btr_obs.Obs.create ()) metrics
    in
    let code = k obs in
    Option.iter
      (fun obs ->
        Btr_obs.Obs.flush obs;
        Option.iter
          (fun file ->
            let mc = open_out file in
            output_string mc (Btr_obs.Obs.metrics_json obs);
            output_char mc '\n';
            close_out mc)
          metrics)
      obs;
    Option.iter close_out oc;
    code
  with Sys_error m ->
    Printf.eprintf "error: %s\n" m;
    1

let report rt ~r =
  let m = Btr.Runtime.metrics rt in
  Format.printf "%a@." Btr.Metrics.pp_summary m;
  List.iter
    (fun (t, node, mode) ->
      Format.printf "t=%a: node %d -> mode {%s}@." Time.pp t node
        (String.concat "," (List.map string_of_int mode)))
    (Btr.Runtime.mode_changes rt);
  List.iteri
    (fun i rec_t ->
      Format.printf "fault %d recovery: %a (R = %dms)@." (i + 1) Time.pp rec_t r)
    (Btr.Metrics.recovery_times m)

(* Common options *)
let workload_arg =
  Arg.(value & opt string "avionics" & info [ "workload"; "w" ] ~doc:"Workload: avionics, scada or random.")

let topology_arg =
  Arg.(value & opt string "clique" & info [ "topology"; "t" ] ~doc:"Topology: clique, ring or dual-bus.")

let nodes_arg = Arg.(value & opt int 6 & info [ "nodes"; "n" ] ~doc:"Number of nodes.")
let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault bound.")
let r_arg = Arg.(value & opt int 200 & info [ "r" ] ~doc:"Recovery bound R in ms.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.")

let build_strategy workload topology nodes f r seed =
  match workload_of_name workload ~nodes ~seed with
  | Error m -> Error m
  | Ok g -> (
    match topology_of_name topology ~nodes with
    | Error m -> Error m
    | Ok topo -> (
      let cfg = Planner.default_config ~f ~recovery_bound:(Time.ms r) in
      match Planner.build cfg g topo with
      | Ok s -> Ok (g, topo, s)
      | Error e -> Error (Format.asprintf "%a" Planner.pp_error e)))

let plan_cmd =
  let doc = "Compute and summarize an offline BTR strategy." in
  let run workload topology nodes f r seed verbose =
    match build_strategy workload topology nodes f r seed with
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
    | Ok (_, _, s) ->
      let st = Planner.stats s in
      Printf.printf
        "strategy: %d modes, %d transitions, planned in %.1fms\n\
         worst-case recovery bound: %s (requested R = %dms) -> %s\n"
        st.Planner.modes st.Planner.transitions
        (st.Planner.planning_seconds *. 1e3)
        (Time.to_string st.Planner.worst_recovery)
        r
        (if Planner.admitted s then "ADMITTED" else "REJECTED");
      if verbose then
        List.iter
          (fun (p : Planner.plan) ->
            Format.printf "@.mode {%s}%s:@.%a@."
              (String.concat "," (List.map string_of_int p.Planner.faulty))
              (match p.Planner.shed_below with
              | None -> ""
              | Some c -> Format.asprintf " (shed below %a)" Task.pp_criticality c)
              Btr_sched.Schedule.pp p.Planner.schedule)
          (Planner.all_plans s);
      0
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every mode's schedule.")
  in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(
      const run $ workload_arg $ topology_arg $ nodes_arg $ f_arg $ r_arg
      $ seed_arg $ verbose)

let run_cmd =
  let doc = "Deploy a strategy on the simulator and inject faults." in
  let run workload topology nodes f r seed faults horizon_ms trace metrics =
    match build_strategy workload topology nodes f r seed with
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
    | Ok (g, topo, _) ->
      with_obs ~trace ~metrics (fun obs ->
          let s =
            Btr.Scenario.spec ~workload:g ~topology:topo ~f
              ~recovery_bound:(Time.ms r) ~script:faults
              ~horizon:(Time.ms horizon_ms) ~seed ?obs ()
          in
          match Btr.Scenario.run s with
          | Error e ->
            Format.eprintf "error: %a@." Planner.pp_error e;
            1
          | Ok rt ->
            report rt ~r;
            0)
  in
  let faults =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ] ~doc:"Fault to inject, as class:node:at_ms (repeatable).")
  in
  let horizon =
    Arg.(value & opt int 1000 & info [ "horizon" ] ~doc:"Simulated run length in ms.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ topology_arg $ nodes_arg $ f_arg $ r_arg
      $ seed_arg $ faults $ horizon $ trace_arg $ metrics_arg)

let check_cmd =
  let doc =
    "Statically verify a strategy's recovery obligations (Definition 3.1)."
  in
  let run workload topology nodes f r seed json list_codes trace metrics =
    if list_codes then begin
      List.iter
        (fun c ->
          Printf.printf "%s %-7s %s\n" (Check.code_id c)
            (Check.severity_name (Check.severity_of c))
            (Check.describe c))
        Check.all_codes;
      0
    end
    else
      match build_strategy workload topology nodes f r seed with
      | Error m ->
        Printf.eprintf "error: %s\n" m;
        1
      | Ok (_, _, s) ->
        with_obs ~trace ~metrics (fun obs ->
            let report = Check.verify ?obs s in
            if json then print_endline (Check.report_to_json report)
            else Format.printf "%a@." Check.pp_report report;
            if Check.passed report then 0 else 1)
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let list_codes =
    Arg.(
      value & flag
      & info [ "codes" ] ~doc:"List every diagnostic code and exit.")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ workload_arg $ topology_arg $ nodes_arg $ f_arg $ r_arg
      $ seed_arg $ json $ list_codes $ trace_arg $ metrics_arg)

let workloads_cmd =
  let doc = "List built-in workloads and show their structure." in
  let run nodes seed =
    List.iter
      (fun name ->
        match workload_of_name name ~nodes ~seed with
        | Ok g -> Format.printf "-- %s --@.%a@." name Graph.pp g
        | Error _ -> ())
      [ "avionics"; "scada"; "random" ];
    0
  in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const run $ nodes_arg $ seed_arg)

(* With no subcommand, run the demo deployment: handy for producing a
   full trace (`btr --trace t.jsonl`) without memorizing options. *)
let demo_term =
  let run seed trace metrics =
    with_obs ~trace ~metrics (fun obs ->
        match Btr.Scenario.run (Btr.Scenario.avionics_demo ~seed ?obs ()) with
        | Error e ->
          Format.eprintf "error: %a@." Planner.pp_error e;
          1
        | Ok rt ->
          report rt ~r:200;
          0)
  in
  Term.(const run $ seed_arg $ trace_arg $ metrics_arg)

let () =
  let doc = "bounded-time recovery for cyber-physical systems" in
  let info = Cmd.info "btr" ~version:"1.0.0" ~doc in
  (* term_err = 2: unknown subcommands or flags exit 2 (usage error),
     so scripts can tell misuse from a failed check/run (1). *)
  exit
    (Cmd.eval' ~term_err:2
       (Cmd.group ~default:demo_term info
          [ plan_cmd; check_cmd; run_cmd; workloads_cmd ]))
