bench/experiments.ml: Array Btr Btr_baselines Btr_fault Btr_net Btr_planner Btr_plant Btr_sched Btr_sim Btr_util Btr_workload Float Format List Option Printf Stats String Table Time
