bench/main.mli:
