bench/micro.ml: Analyze Bechamel Benchmark Btr Btr_crypto Btr_net Btr_planner Btr_sim Btr_util Btr_workload Hashtbl Instance Lazy List Measure Printf Staged String Test Toolkit
