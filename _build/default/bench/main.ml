(* Benchmark harness: regenerates every experiment table (E1-E9, see
   DESIGN.md section 3 and EXPERIMENTS.md) and, with --micro, runs the
   Bechamel microbenchmarks.

   Usage:
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe e2 e3      # selected experiments
     dune exec bench/main.exe -- --micro # microbenchmarks only  *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let micro = List.mem "--micro" args in
  let wanted = List.filter (fun a -> a <> "--micro") args in
  if micro then begin
    print_endline "== microbenchmarks ==";
    Micro.run ()
  end;
  let selected =
    match wanted with
    | [] -> if micro then [] else Experiments.all
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt (String.lowercase_ascii n) Experiments.all with
          | Some fn -> Some (n, fn)
          | None ->
            Printf.eprintf "unknown experiment %S (have: %s)\n" n
              (String.concat ", " (List.map fst Experiments.all));
            None)
        names
  in
  List.iter
    (fun (name, fn) ->
      Printf.printf "running %s...\n%!" name;
      fn ())
    selected
