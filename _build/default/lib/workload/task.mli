(** Tasks of the periodic dataflow workload (paper §2.1, "Workload").

    The system has a period [P]; during each period every task releases
    one job. A task consumes inputs from sources and/or other tasks and
    produces at least one output toward a sink or another task. *)

open Btr_util

type id = int

type kind =
  | Source  (** reads the physical world; pinned to a node *)
  | Compute  (** placeable by the planner *)
  | Sink  (** drives an actuator; pinned to a node *)

(** Criticality levels, ordered: [Best_effort < Low < Medium < High <
    Safety_critical]. The planner sheds lower levels first when a
    post-fault mode is unschedulable. *)
type criticality = Best_effort | Low | Medium | High | Safety_critical

val criticality_rank : criticality -> int
val criticality_of_rank : int -> criticality
val compare_criticality : criticality -> criticality -> int
val pp_criticality : Format.formatter -> criticality -> unit
val all_criticalities : criticality list

type t = {
  id : id;
  name : string;
  kind : kind;
  wcet : Time.t;  (** worst-case execution time per job *)
  criticality : criticality;
  state_size : int;  (** bytes of state to migrate on reassignment *)
  pinned : int option;  (** node the task must run on (all sources/sinks) *)
}

val make :
  id:id ->
  name:string ->
  ?kind:kind ->
  wcet:Time.t ->
  ?criticality:criticality ->
  ?state_size:int ->
  ?pinned:int ->
  unit ->
  t
(** Defaults: [Compute], [Medium] criticality, 0 state, unpinned.
    Raises [Invalid_argument] when a source/sink lacks [pinned], or
    [wcet <= 0]. *)

val is_placeable : t -> bool
(** Compute tasks without a pin — everything the planner may move. *)

val pp : Format.formatter -> t -> unit
