(** The periodic dataflow graph: tasks plus flows (paper §2.1).

    Each flow carries one message per period from a producer task to a
    consumer task. Flows whose consumer is a sink carry the system's
    outputs and have an end-to-end deadline by which the output must
    reach the sink. *)

open Btr_util

type flow = {
  flow_id : int;
  producer : Task.id;
  consumer : Task.id;
  msg_size : int;  (** bytes per period *)
  deadline : Time.t option;  (** end-to-end for sink flows, else None *)
}

type t

val create : period:Time.t -> tasks:Task.t list -> flows:flow list -> t
(** Validates the paper's workload model and raises [Invalid_argument]
    otherwise: task and flow ids distinct; flows reference declared
    tasks; the task graph is acyclic; sources have no incoming flows;
    sinks have no outgoing flows and at least one incoming; every
    non-sink task has at least one outgoing flow; sink flows have
    deadlines no larger than needed to be meaningful (0 < d). *)

val create_relaxed : period:Time.t -> tasks:Task.t list -> flows:flow list -> t
(** Like {!create} but permits tasks with no outputs and sinks with no
    inputs. Used for planner-augmented graphs, where checking/guard
    tasks consume CPU without producing dataflow outputs, and for
    degraded modes in which a flow endpoint has been shed. *)

val period : t -> Time.t
val tasks : t -> Task.t list
val flows : t -> flow list
val task : t -> Task.id -> Task.t
val flow : t -> int -> flow
val task_count : t -> int

val producers_of : t -> Task.id -> flow list
(** Incoming flows of a task. *)

val consumers_of : t -> Task.id -> flow list
(** Outgoing flows of a task. *)

val sources : t -> Task.t list
val sinks : t -> Task.t list
val compute_tasks : t -> Task.t list

val topo_order : t -> Task.id list
(** Producers before consumers; deterministic (stable by id). *)

val sink_flows : t -> flow list
(** Flows delivering system outputs, i.e. consumer is a sink. *)

val utilization : t -> float
(** Sum over tasks of wcet/period — demand on a single-node system. *)

val tasks_at_least : t -> Task.criticality -> Task.t list
(** Tasks with criticality >= the given level. *)

val restrict : t -> keep:(Task.t -> bool) -> t
(** Sub-workload containing the kept tasks and the flows among them.
    Used by the planner when shedding low-criticality tasks. Keeps the
    graph valid by also dropping flows that dangle. *)

val pp : Format.formatter -> t -> unit
