lib/workload/generators.ml: Btr_util Graph List Printf Rng Stdlib Task Time
