lib/workload/generators.mli: Btr_util Graph Rng Time
