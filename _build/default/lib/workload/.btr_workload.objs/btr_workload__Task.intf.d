lib/workload/task.mli: Btr_util Format Time
