lib/workload/graph.mli: Btr_util Format Task Time
