lib/workload/graph.ml: Btr_util Format Hashtbl Int List Printf Task Time
