lib/workload/task.ml: Btr_util Format Int Printf Time
