open Btr_util

type id = int
type kind = Source | Compute | Sink
type criticality = Best_effort | Low | Medium | High | Safety_critical

let criticality_rank = function
  | Best_effort -> 0
  | Low -> 1
  | Medium -> 2
  | High -> 3
  | Safety_critical -> 4

let criticality_of_rank = function
  | 0 -> Best_effort
  | 1 -> Low
  | 2 -> Medium
  | 3 -> High
  | 4 -> Safety_critical
  | r -> invalid_arg (Printf.sprintf "Task.criticality_of_rank: %d" r)

let compare_criticality a b = Int.compare (criticality_rank a) (criticality_rank b)

let pp_criticality ppf c =
  Format.pp_print_string ppf
    (match c with
    | Best_effort -> "best-effort"
    | Low -> "low"
    | Medium -> "medium"
    | High -> "high"
    | Safety_critical -> "safety-critical")

let all_criticalities = [ Best_effort; Low; Medium; High; Safety_critical ]

type t = {
  id : id;
  name : string;
  kind : kind;
  wcet : Time.t;
  criticality : criticality;
  state_size : int;
  pinned : int option;
}

let make ~id ~name ?(kind = Compute) ~wcet ?(criticality = Medium)
    ?(state_size = 0) ?pinned () =
  if wcet <= 0 then
    invalid_arg (Printf.sprintf "Task.make: %s has wcet <= 0" name);
  if state_size < 0 then
    invalid_arg (Printf.sprintf "Task.make: %s has negative state" name);
  (match kind, pinned with
  | (Source | Sink), None ->
    invalid_arg
      (Printf.sprintf "Task.make: %s is a source/sink and must be pinned" name)
  | _ -> ());
  { id; name; kind; wcet; criticality; state_size; pinned }

let is_placeable t = t.kind = Compute && t.pinned = None

let pp ppf t =
  Format.fprintf ppf "task %d (%s) %s wcet=%a crit=%a%s" t.id t.name
    (match t.kind with Source -> "source" | Compute -> "compute" | Sink -> "sink")
    Time.pp t.wcet pp_criticality t.criticality
    (match t.pinned with
    | Some n -> Printf.sprintf " pinned=%d" n
    | None -> "")
