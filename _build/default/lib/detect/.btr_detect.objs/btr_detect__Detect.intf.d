lib/detect/detect.mli: Btr_evidence Btr_util Time
