lib/detect/detect.ml: Btr_evidence Btr_util Hashtbl List Option Time
