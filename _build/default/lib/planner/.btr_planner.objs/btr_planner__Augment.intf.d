lib/planner/augment.mli: Btr_util Btr_workload Time
