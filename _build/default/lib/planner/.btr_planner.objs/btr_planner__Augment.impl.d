lib/planner/augment.ml: Btr_util Btr_workload Fun Hashtbl Int List Printf Stdlib Time
