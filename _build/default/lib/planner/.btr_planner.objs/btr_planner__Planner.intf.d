lib/planner/planner.mli: Augment Btr_net Btr_sched Btr_util Btr_workload Format Time
