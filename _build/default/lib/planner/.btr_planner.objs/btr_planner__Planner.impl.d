lib/planner/planner.ml: Augment Btr_net Btr_sched Btr_util Btr_workload Format Fun Hashtbl Int List Option Printf Stdlib String Sys Time
