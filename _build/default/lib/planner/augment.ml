open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph

type role =
  | Original
  | Replica of { orig : Task.id; lane : int }
  | Checker of { orig : Task.id }
  | Guard of { node : int }

type t = {
  graph : Graph.t;
  original : Graph.t;
  degree : int;
  roles : (Task.id * role) list;
  flow_origin : (int * (int * int)) list;  (* aug flow -> (orig flow, lane) *)
}

let role_of t id =
  match List.assoc_opt id t.roles with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Augment.role_of: unknown task %d" id)

let orig_of t id =
  match role_of t id with
  | Original -> id
  | Replica { orig; _ } | Checker { orig } -> orig
  | Guard _ -> id

let lane_of t id =
  match role_of t id with Replica { lane; _ } -> lane | Original | Checker _ | Guard _ -> 0

let replicas_of t orig =
  let lanes =
    List.filter_map
      (fun (id, role) ->
        match role with
        | Replica { orig = o; lane } when o = orig -> Some (lane, id)
        | Replica _ | Original | Checker _ | Guard _ -> None)
      t.roles
  in
  match lanes with
  | [] -> [ orig ]
  | _ -> List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) lanes)

let checker_of t orig =
  List.find_map
    (fun (id, role) ->
      match role with
      | Checker { orig = o } when o = orig -> Some id
      | Checker _ | Original | Replica _ | Guard _ -> None)
    t.roles

let checkers t =
  List.filter_map
    (fun (id, role) ->
      match role with Checker _ -> Some id | Original | Replica _ | Guard _ -> None)
    t.roles

let guards t =
  List.filter_map
    (fun (id, role) ->
      match role with Guard { node } -> Some (id, node) | Original | Replica _ | Checker _ -> None)
    t.roles

let is_protected t orig =
  match replicas_of t orig with [ single ] -> single <> orig | _ -> true

let orig_flow_of t fid = List.assoc_opt fid t.flow_origin

let digest_flow_ids t =
  List.filter_map
    (fun (f : Graph.flow) ->
      match role_of t f.consumer with
      | Checker _ -> Some f.flow_id
      | Original | Replica _ | Guard _ -> None)
    (Graph.flows t.graph)

let primary_sink_flows t =
  List.filter_map
    (fun (f : Graph.flow) ->
      let consumer_is_sink =
        (Graph.task t.graph f.consumer).Task.kind = Task.Sink
      in
      if consumer_is_sink && lane_of t f.producer = 0 then Some f.flow_id else None)
    (Graph.flows t.graph)

let augment g ~nodes ~degree ~protect_level ~checker_overhead ~guard_wcet
    ~digest_size =
  if degree < 1 then invalid_arg "Augment.augment: degree < 1";
  let next_task = ref (1 + List.fold_left (fun m (x : Task.t) -> Stdlib.max m x.id) 0 (Graph.tasks g)) in
  let next_flow =
    ref (1 + List.fold_left (fun m (f : Graph.flow) -> Stdlib.max m f.flow_id) 0 (Graph.flows g))
  in
  let fresh_task () =
    let id = !next_task in
    incr next_task;
    id
  in
  let fresh_flow () =
    let id = !next_flow in
    incr next_flow;
    id
  in
  let protect (x : Task.t) =
    x.kind = Task.Compute
    && Task.compare_criticality x.criticality protect_level >= 0
  in
  (* lane_ids.(orig) = augmented id per lane; unprotected map to self. *)
  let lane_id : (Task.id * int, Task.id) Hashtbl.t = Hashtbl.create 64 in
  let roles = ref [] in
  let tasks = ref [] in
  let add_task x role =
    tasks := x :: !tasks;
    roles := (x.Task.id, role) :: !roles
  in
  List.iter
    (fun (x : Task.t) ->
      if protect x then
        for lane = 0 to degree - 1 do
          let id = if lane = 0 then x.id else fresh_task () in
          let name = Printf.sprintf "%s#%d" x.name lane in
          add_task { x with Task.id; name } (Replica { orig = x.id; lane });
          Hashtbl.replace lane_id (x.id, lane) id
        done
      else begin
        add_task x Original;
        for lane = 0 to degree - 1 do
          Hashtbl.replace lane_id (x.id, lane) x.id
        done
      end)
    (Graph.tasks g);
  (* Flows: lane-wise wiring. A flow between two tasks becomes one flow
     per lane between the corresponding lane instances; where an
     endpoint is unreplicated all lanes share it, and duplicate edges
     (unreplicated -> unreplicated) collapse back to one flow. Sinks
     thus receive every lane's copy and can fall back to a backup lane
     within the same period. *)
  let flows = ref [] in
  let flow_origin = ref [] in
  let seen_pairs = Hashtbl.create 64 in
  List.iter
    (fun (f : Graph.flow) ->
      List.iter
        (fun lane ->
          let p = Hashtbl.find lane_id (f.producer, lane) in
          (* Sinks are unreplicated, so every lane's copy converges on
             the one sink task; other consumers stay lane-local. *)
          let c = Hashtbl.find lane_id (f.consumer, lane) in
          if not (Hashtbl.mem seen_pairs (p, c, f.flow_id)) then begin
            Hashtbl.replace seen_pairs (p, c, f.flow_id) ();
            let flow_id = if lane = 0 then f.flow_id else fresh_flow () in
            flows := { f with Graph.flow_id; producer = p; consumer = c } :: !flows;
            flow_origin := (flow_id, (f.flow_id, lane)) :: !flow_origin
          end)
        (List.init degree Fun.id))
    (Graph.flows g);
  (* Checkers: one per protected task, fed a digest from every lane. *)
  List.iter
    (fun (x : Task.t) ->
      if protect x then begin
        let cid = fresh_task () in
        add_task
          (Task.make ~id:cid
             ~name:(Printf.sprintf "check:%s" x.name)
             ~wcet:(Time.add x.wcet checker_overhead) ~criticality:x.criticality
             ())
          (Checker { orig = x.id });
        for lane = 0 to degree - 1 do
          let p = Hashtbl.find lane_id (x.id, lane) in
          flows :=
            {
              Graph.flow_id = fresh_flow ();
              producer = p;
              consumer = cid;
              msg_size = digest_size;
              deadline = None;
            }
            :: !flows
        done
      end)
    (Graph.tasks g);
  (* Guards: per-node evidence-verification CPU reserve, pinned. *)
  List.iter
    (fun node ->
      let gid = fresh_task () in
      add_task
        (Task.make ~id:gid
           ~name:(Printf.sprintf "guard:n%d" node)
           ~wcet:guard_wcet ~criticality:Task.Safety_critical ~pinned:node ())
        (Guard { node }))
    nodes;
  let graph =
    Graph.create_relaxed ~period:(Graph.period g) ~tasks:(List.rev !tasks)
      ~flows:(List.rev !flows)
  in
  { graph; original = g; degree; roles = List.rev !roles; flow_origin = List.rev !flow_origin }
