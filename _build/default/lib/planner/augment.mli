(** Dataflow augmentation (paper §4.1, first planner step).

    The planner "first augments the dataflow graph with additional
    tasks": replicas, checking tasks and verification tasks. All of
    them consume CPU and bandwidth and are scheduled together with the
    workload — there are no extra resources for BTR.

    Replication model: each protected compute task is cloned into
    [degree] {e lanes} (lane 0 is the primary). Lane [i] of a task
    consumes from lane [i] of its producers (or from the unreplicated
    source), so the lanes form redundant, independent pipelines.
    Actuator sinks consume the primary lane's output — this is how BTR
    "can use the output of some replicas without waiting for the
    others" (§1). Every lane additionally sends a signed digest of its
    output to a {e checking task}, which detects divergence and — since
    tasks are deterministic functions of signed inputs — replays the
    computation to identify the culprit (the PeerReview insight, cited
    in §4.2). Checker WCET therefore includes one replay of the checked
    task. Per-node {e verification guard} tasks reserve the CPU needed
    to validate and endorse incoming evidence (§4.3).

    Sources and sinks are physical (sensors/actuators) and cannot be
    replicated in software; they stay pinned and unreplicated. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph

type role =
  | Original  (** an unreplicated original task (source/sink/unprotected) *)
  | Replica of { orig : Task.id; lane : int }
  | Checker of { orig : Task.id }  (** compares the lanes of [orig] *)
  | Guard of { node : int }  (** per-node evidence-verification reserve *)

type t = {
  graph : Graph.t;  (** the augmented dataflow graph *)
  original : Graph.t;
  degree : int;  (** number of lanes *)
  roles : (Task.id * role) list;
  flow_origin : (int * (int * int)) list;
      (** augmented data flow id → (original flow id, lane) *)
}

val role_of : t -> Task.id -> role
val replicas_of : t -> Task.id -> Task.id list
(** Augmented ids of the lanes of an original task, by lane order;
    [[orig]] itself for unreplicated tasks. *)

val checker_of : t -> Task.id -> Task.id option
(** The checker watching an original task, if it is protected. *)

val orig_of : t -> Task.id -> Task.id
(** The original task behind an augmented id (itself for guards'
    pseudo-originals and unreplicated tasks). *)

val lane_of : t -> Task.id -> int
(** Lane index (0 for originals, checkers and guards). *)

val checkers : t -> Task.id list
val guards : t -> (Task.id * int) list
(** Guard task ids with the node they are pinned to. *)

val digest_flow_ids : t -> int list
(** Flow ids of the replica→checker digest flows. *)

val is_protected : t -> Task.id -> bool
(** Whether the original task was replicated. *)

val primary_sink_flows : t -> int list
(** Augmented flow ids that deliver primary-lane outputs to sinks —
    the system outputs whose correctness BTR is judged on. *)

val orig_flow_of : t -> int -> (int * int) option
(** [(original flow id, lane)] behind an augmented data flow id;
    [None] for replica→checker digest flows. *)

val augment :
  Graph.t ->
  nodes:int list ->
  degree:int ->
  protect_level:Task.criticality ->
  checker_overhead:Time.t ->
  guard_wcet:Time.t ->
  digest_size:int ->
  t
(** Builds the augmented workload. [degree] >= 1 lanes for compute
    tasks with criticality >= [protect_level]; one checker per
    protected task (WCET = task WCET + [checker_overhead], modelling
    replay-based diagnosis); one guard per node in [nodes] with WCET
    [guard_wcet]. Raises [Invalid_argument] for degree < 1. *)
