lib/evidence/authlog.ml: Btr_crypto Int64 List Printf
