lib/evidence/evidence.mli: Btr_crypto Btr_util Format Time
