lib/evidence/authlog.mli: Btr_crypto
