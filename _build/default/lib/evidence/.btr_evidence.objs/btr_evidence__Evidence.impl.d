lib/evidence/evidence.ml: Btr_crypto Btr_util Format Hashtbl List Option Printf String Time
