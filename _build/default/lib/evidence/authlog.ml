module Auth = Btr_crypto.Auth

type entry =
  | Sent of { flow : int; period : int; digest : int64 }
  | Received of { flow : int; period : int; digest : int64; from_node : int }
  | Executed of { task : int; period : int; output_digest : int64 }

let encode_entry = function
  | Sent { flow; period; digest } -> Printf.sprintf "S|%d|%d|%Lx" flow period digest
  | Received { flow; period; digest; from_node } ->
    Printf.sprintf "R|%d|%d|%Lx|%d" flow period digest from_node
  | Executed { task; period; output_digest } ->
    Printf.sprintf "E|%d|%d|%Lx" task period output_digest

type t = {
  log_owner : int;
  mutable rev_entries : entry list;
  mutable chain : Auth.Chain.link;
  mutable count : int;
}

let create ~owner =
  { log_owner = owner; rev_entries = []; chain = Auth.Chain.genesis; count = 0 }

let owner t = t.log_owner

let append t e =
  t.rev_entries <- e :: t.rev_entries;
  t.chain <- Auth.Chain.extend t.chain (encode_entry e);
  t.count <- t.count + 1

let length t = t.count
let head t = t.chain
let entries t = List.rev t.rev_entries

type checkpoint = {
  cp_owner : int;
  cp_length : int;
  cp_head : Auth.Chain.link;
  cp_tag : Auth.tag;
}

let checkpoint_message ~owner ~length ~head =
  Printf.sprintf "checkpoint|%d|%d|%Lx" owner length head

let checkpoint t auth secret =
  if Auth.owner_of_secret secret <> t.log_owner then
    invalid_arg "Authlog.checkpoint: secret does not belong to the log owner";
  {
    cp_owner = t.log_owner;
    cp_length = t.count;
    cp_head = t.chain;
    cp_tag =
      Auth.sign auth secret
        (checkpoint_message ~owner:t.log_owner ~length:t.count ~head:t.chain);
  }

let verify_checkpoint auth cp =
  Auth.verify auth ~signer:cp.cp_owner
    (checkpoint_message ~owner:cp.cp_owner ~length:cp.cp_length ~head:cp.cp_head)
    cp.cp_tag

type audit_result = Consistent | Tampered of { at_length : int } | Truncated

let audit cp presented =
  if List.length presented < cp.cp_length then Truncated
  else begin
    (* Fold the chain over exactly the committed prefix. *)
    let rec walk chain n = function
      | _ when n = cp.cp_length ->
        if Int64.equal chain cp.cp_head then Consistent
        else Tampered { at_length = n }
      | [] -> Truncated
      | e :: rest ->
        let chain' = Auth.Chain.extend chain (encode_entry e) in
        (* Early exit is impossible without per-entry commitments, so
           mismatches surface only at the committed head. *)
        walk chain' (n + 1) rest
    in
    walk Auth.Chain.genesis 0 presented
  end
