(** Tamper-evident commitment logs (the PeerReview mechanism the paper
    builds its detector on, §4.2).

    Each node appends every message send/receive and every task
    execution to a hash-chained log and periodically signs the chain
    head (a {e checkpoint}). A signed checkpoint commits the node to
    everything before it: presenting a log segment that does not
    reproduce the committed hash is itself evidence of tampering, and
    replaying a committed segment against the task's deterministic
    behaviour exposes wrong outputs. The BTR runtime's checkers perform
    that replay online; this module provides the offline commitment and
    audit machinery that makes the evidence independently verifiable. *)

module Auth = Btr_crypto.Auth

type entry =
  | Sent of { flow : int; period : int; digest : int64 }
  | Received of { flow : int; period : int; digest : int64; from_node : int }
  | Executed of { task : int; period : int; output_digest : int64 }

val encode_entry : entry -> string
(** Canonical, injective encoding (covered by the hash chain). *)

type t

val create : owner:int -> t
val owner : t -> int
val append : t -> entry -> unit
val length : t -> int
val head : t -> Auth.Chain.link
(** Hash-chain head covering all entries appended so far. *)

val entries : t -> entry list
(** Oldest first. *)

type checkpoint = {
  cp_owner : int;
  cp_length : int;
  cp_head : Auth.Chain.link;
  cp_tag : Auth.tag;
}

val checkpoint : t -> Auth.t -> Auth.secret -> checkpoint
(** Sign the current head. Raises [Invalid_argument] if the secret does
    not belong to the log owner. *)

val verify_checkpoint : Auth.t -> checkpoint -> bool

type audit_result =
  | Consistent
  | Tampered of { at_length : int }
      (** the presented entries do not reproduce the committed head *)
  | Truncated
      (** fewer entries presented than the checkpoint commits to *)

val audit : checkpoint -> entry list -> audit_result
(** Replays the hash chain over the presented prefix of entries and
    compares with the commitment. The checkpoint must already have been
    verified with {!verify_checkpoint}. *)
