open Btr_util
module Auth = Btr_crypto.Auth

type fault_class =
  | Wrong_value
  | Omission
  | Timing
  | Equivocation
  | Forged_evidence

let pp_fault_class ppf c =
  Format.pp_print_string ppf
    (match c with
    | Wrong_value -> "wrong-value"
    | Omission -> "omission"
    | Timing -> "timing"
    | Equivocation -> "equivocation"
    | Forged_evidence -> "forged-evidence")

type accused = Node of int | Path of int * int

let path a b = if a <= b then Path (a, b) else Path (b, a)

type statement = {
  accused : accused;
  fault_class : fault_class;
  detector : int;
  period : int;
  detected_at : Time.t;
  detail : string;
}

let encode s =
  let accused =
    match s.accused with
    | Node n -> Printf.sprintf "node:%d" n
    | Path (a, b) -> Printf.sprintf "path:%d-%d" a b
  in
  Printf.sprintf "%s|%s|det:%d|p:%d|t:%d|%s" accused
    (Format.asprintf "%a" pp_fault_class s.fault_class)
    s.detector s.period s.detected_at s.detail

type record = { statement : statement; tag : Auth.tag }

let sign auth secret statement =
  if Auth.owner_of_secret secret <> statement.detector then
    invalid_arg "Evidence.sign: detector must sign its own statements";
  { statement; tag = Auth.sign auth secret (encode statement) }

let validate auth r =
  Auth.verify auth ~signer:r.statement.detector (encode r.statement) r.tag

let size_bytes r = String.length (encode r.statement) + 16

let dedup_key r = encode r.statement

let pp ppf r =
  let s = r.statement in
  Format.fprintf ppf "[%a by node %d @ %a, period %d: %s]" pp_fault_class
    s.fault_class s.detector Time.pp s.detected_at s.period
    (match s.accused with
    | Node n -> Printf.sprintf "node %d" n
    | Path (a, b) -> Printf.sprintf "path %d-%d" a b)

module Distributor = struct
  type verdict = Fresh | Duplicate | Invalid

  type t = {
    node : int;
    seen_keys : (string, unit) Hashtbl.t;
    mutable rev_seen : record list;
    sent : (string * int, unit) Hashtbl.t;
    invalid_by : (int, int) Hashtbl.t;
  }

  let create ~node =
    {
      node;
      seen_keys = Hashtbl.create 32;
      rev_seen = [];
      sent = Hashtbl.create 64;
      invalid_by = Hashtbl.create 8;
    }

  let node t = t.node

  let admit t auth r =
    if not (validate auth r) then begin
      let signer = r.statement.detector in
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.invalid_by signer) in
      Hashtbl.replace t.invalid_by signer (prev + 1);
      Invalid
    end
    else begin
      let k = dedup_key r in
      if Hashtbl.mem t.seen_keys k then Duplicate
      else begin
        Hashtbl.replace t.seen_keys k ();
        t.rev_seen <- r :: t.rev_seen;
        Fresh
      end
    end

  let already_sent t r ~dst =
    let k = (dedup_key r, dst) in
    if Hashtbl.mem t.sent k then true
    else begin
      Hashtbl.replace t.sent k ();
      false
    end

  let seen t = List.rev t.rev_seen

  let invalid_count_from t n =
    Option.value ~default:0 (Hashtbl.find_opt t.invalid_by n)
end
