lib/net/net.ml: Btr_sim Btr_util Format Hashtbl List Option Printf Rng Stats Stdlib Time Topology
