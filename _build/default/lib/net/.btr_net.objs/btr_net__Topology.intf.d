lib/net/topology.mli: Btr_util Format
