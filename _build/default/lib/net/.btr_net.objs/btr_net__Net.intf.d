lib/net/net.mli: Btr_sim Btr_util Format Time Topology
