lib/net/topology.ml: Btr_util Format Fun Hashtbl Int List Printf Queue String
