lib/modeswitch/modeswitch.ml: Btr_planner Btr_workload Format Int List
