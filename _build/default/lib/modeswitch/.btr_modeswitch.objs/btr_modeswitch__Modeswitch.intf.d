lib/modeswitch/modeswitch.mli: Btr_planner Btr_workload Format
