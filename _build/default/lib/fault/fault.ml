open Btr_util

type behavior =
  | Crash
  | Omit_outputs
  | Omit_to of int list
  | Delay_outputs of Time.t
  | Corrupt_outputs
  | Equivocate
  | Babble of { bogus_per_period : int }

let behavior_name = function
  | Crash -> "crash"
  | Omit_outputs -> "omit"
  | Omit_to _ -> "omit-to"
  | Delay_outputs _ -> "delay"
  | Corrupt_outputs -> "corrupt"
  | Equivocate -> "equivocate"
  | Babble _ -> "babble"

let pp_behavior ppf b =
  match b with
  | Omit_to nodes ->
    Format.fprintf ppf "omit-to[%s]"
      (String.concat "," (List.map string_of_int nodes))
  | Delay_outputs d -> Format.fprintf ppf "delay(%a)" Time.pp d
  | Babble { bogus_per_period } -> Format.fprintf ppf "babble(%d)" bogus_per_period
  | Crash | Omit_outputs | Corrupt_outputs | Equivocate ->
    Format.pp_print_string ppf (behavior_name b)

type event = { at : Time.t; node : int; behavior : behavior }
type script = event list

let single ~at ~node behavior = [ { at; node; behavior } ]

let sequential_attack ~nodes ~start ~gap behavior =
  List.mapi
    (fun i node -> { at = Time.add start (Time.mul gap i); node; behavior })
    nodes

let all_behaviors =
  [
    Crash;
    Omit_outputs;
    Omit_to [ 0 ];
    Delay_outputs (Time.ms 5);
    Corrupt_outputs;
    Equivocate;
    Babble { bogus_per_period = 4 };
  ]
