lib/fault/fault.mli: Btr_util Format Time
