lib/fault/fault.ml: Btr_util Format List String Time
