(** Byzantine fault injection.

    The threat model (paper §2.1) is an adversary with complete control
    over up to [f] compromised nodes. The network's hardware MAC still
    enforces bandwidth reservations and compromised nodes cannot forge
    other nodes' authenticators, but within those limits they can do
    anything: stay silent, send wrong values, delay, equivocate, or
    flood the control channel with bogus evidence. Each capability is a
    {!behavior}; a {!script} binds behaviours to nodes and activation
    times, and the BTR runtime applies them at the node hooks. *)

open Btr_util

type behavior =
  | Crash  (** stop executing and sending entirely *)
  | Omit_outputs  (** execute but never send *)
  | Omit_to of int list  (** drop messages to specific nodes only *)
  | Delay_outputs of Time.t  (** send everything late *)
  | Corrupt_outputs  (** send wrong values (correct timing) *)
  | Equivocate
      (** send corrupted values on data flows while reporting clean
          digests to checkers *)
  | Babble of { bogus_per_period : int }
      (** flood the control channel with invalid evidence records *)

val pp_behavior : Format.formatter -> behavior -> unit
val behavior_name : behavior -> string

type event = { at : Time.t; node : int; behavior : behavior }
type script = event list

val single : at:Time.t -> node:int -> behavior -> script

val sequential_attack :
  nodes:int list -> start:Time.t -> gap:Time.t -> behavior -> script
(** The §3 worst case: the adversary triggers a fresh fault every [gap]
    (set [gap = R] to force up to [k·R] of incorrect output). *)

val all_behaviors : behavior list
(** One representative of each class, for coverage sweeps. *)
