module Task = Btr_workload.Task
module Graph = Btr_workload.Graph

type t = {
  graph : Graph.t;
  behaviors : Behavior.table;
  sources : (Task.id * int, float array) Hashtbl.t;
  memo : (Task.id * int, float array option) Hashtbl.t;
}

let create graph behaviors =
  { graph; behaviors; sources = Hashtbl.create 64; memo = Hashtbl.create 256 }

let note_source t ~task ~period value =
  if not (Hashtbl.mem t.sources (task, period)) then
    Hashtbl.replace t.sources (task, period) value

let rec value t ~task ~period =
  match Hashtbl.find_opt t.memo (task, period) with
  | Some v -> v
  | None ->
    let x = Graph.task t.graph task in
    let v =
      match x.Task.kind with
      | Task.Source -> Hashtbl.find_opt t.sources (task, period)
      | Task.Sink -> None
      | Task.Compute ->
        let inputs =
          List.filter_map
            (fun (f : Graph.flow) ->
              match value t ~task:f.producer ~period with
              | Some v -> Some { Behavior.orig_flow = f.flow_id; value = v }
              | None -> None)
            (Graph.producers_of t.graph task)
        in
        Behavior.find t.behaviors task ~period ~inputs
    in
    (* Only cache positive results: a [None] may merely mean "queried
       before the source for this period was recorded", and must not
       stick once the recording arrives. *)
    if v <> None then Hashtbl.replace t.memo (task, period) v;
    v

let digest t ~task ~period =
  Option.map Behavior.value_digest (value t ~task ~period)

let flow_value t ~flow ~period =
  let f = Graph.flow t.graph flow in
  value t ~task:f.producer ~period
