open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Topology = Btr_net.Topology
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault

type spec = {
  workload : Graph.t;
  topology : Topology.t;
  f : int;
  recovery_bound : Time.t;
  script : Fault.script;
  horizon : Time.t;
  seed : int;
  behaviors : (Task.id * Behavior.fn) list;
  tune : Planner.config -> Planner.config;
}

let spec ~workload ~topology ~f ~recovery_bound ?(script = []) ?horizon
    ?(seed = 1) ?(behaviors = []) ?(tune = Fun.id) () =
  let horizon =
    match horizon with
    | Some h -> h
    | None -> Time.mul (Graph.period workload) 100
  in
  { workload; topology; f; recovery_bound; script; horizon; seed; behaviors; tune }

let plan s =
  let cfg = s.tune (Planner.default_config ~f:s.f ~recovery_bound:s.recovery_bound) in
  Planner.build cfg s.workload s.topology

let prepare s =
  match plan s with
  | Error e -> Error e
  | Ok strategy ->
    let config = { Runtime.default_config with seed = s.seed } in
    Ok (Runtime.create ~config ~behaviors:s.behaviors ~script:s.script ~strategy ())

let run s =
  match prepare s with
  | Error e -> Error e
  | Ok rt ->
    Runtime.run rt ~horizon:s.horizon;
    Ok rt
