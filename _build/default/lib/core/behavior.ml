module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Auth = Btr_crypto.Auth

type input = { orig_flow : int; value : float array }
type fn = period:int -> inputs:input list -> float array option

let mix_int64 acc v =
  let open Int64 in
  let z = add acc (mul (of_int v) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  logxor z (shift_right_logical z 27)

let default_compute tid ~period ~inputs =
  match inputs with
  | [] -> None
  | _ ->
    (* Fold the inputs in flow order so the result is independent of
       arrival order; keep floats exact by mixing their bit patterns. *)
    let sorted =
      List.sort (fun a b -> Int.compare a.orig_flow b.orig_flow) inputs
    in
    let acc =
      List.fold_left
        (fun acc { orig_flow; value } ->
          let acc = mix_int64 acc orig_flow in
          Array.fold_left
            (fun acc x -> mix_int64 acc (Int64.to_int (Int64.bits_of_float x)))
            acc value)
        (mix_int64 (Int64.of_int tid) period)
        sorted
    in
    (* Keep the magnitude tame so examples can still plot the values. *)
    Some [| Int64.to_float (Int64.rem acc 1_000_000L) /. 1_000.0 |]

let counter_source tid ~period ~inputs:_ =
  Some [| float_of_int tid; float_of_int period |]

let constant_source v ~period:_ ~inputs:_ = Some (Array.copy v)

let value_digest v =
  let buf = Buffer.create 32 in
  Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf "%h;" x)) v;
  Auth.digest (Buffer.contents buf)

let equal_value a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if Float.abs (x -. b.(i)) > 1e-9 then ok := false) a;
  !ok

type table = (Task.id, fn) Hashtbl.t

let table g ~overrides =
  let t = Hashtbl.create 32 in
  List.iter
    (fun (x : Task.t) ->
      match x.kind with
      | Task.Source -> Hashtbl.replace t x.id (counter_source x.id)
      | Task.Compute -> Hashtbl.replace t x.id (default_compute x.id)
      | Task.Sink -> ())
    (Graph.tasks g);
  List.iter (fun (tid, fn) -> Hashtbl.replace t tid fn) overrides;
  t

let find t tid =
  match Hashtbl.find_opt t tid with
  | Some fn -> fn
  | None -> default_compute tid
