lib/core/behavior.ml: Array Btr_crypto Btr_workload Buffer Float Hashtbl Int Int64 List Printf
