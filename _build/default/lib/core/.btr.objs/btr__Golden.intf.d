lib/core/golden.mli: Behavior Btr_workload
