lib/core/behavior.mli: Btr_workload
