lib/core/runtime.mli: Behavior Btr_crypto Btr_evidence Btr_fault Btr_net Btr_planner Btr_sim Btr_util Btr_workload Golden Metrics Time
