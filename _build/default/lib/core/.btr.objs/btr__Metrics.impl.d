lib/core/metrics.ml: Behavior Btr_util Btr_workload Format Fun Golden Hashtbl List Option Stdlib String Time
