lib/core/metrics.mli: Btr_util Btr_workload Format Golden Time
