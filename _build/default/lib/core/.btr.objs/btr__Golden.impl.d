lib/core/golden.ml: Behavior Btr_workload Hashtbl List Option
