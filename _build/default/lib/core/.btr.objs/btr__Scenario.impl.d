lib/core/scenario.ml: Behavior Btr_fault Btr_net Btr_planner Btr_util Btr_workload Fun Runtime Time
