lib/core/scenario.mli: Behavior Btr_fault Btr_net Btr_planner Btr_util Btr_workload Runtime Time
