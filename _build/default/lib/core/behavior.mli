(** Task behaviours: what a task computes each period.

    The system model treats each task as a deterministic function from
    its per-period inputs to one output (paper §3's "expected
    behavior"). Determinism is what makes replay-based fault detection
    possible: given the signed inputs a replica presented, anyone can
    recompute what it should have sent.

    Behaviours are registered per {e original} task id; all replica
    lanes of a task share one behaviour, and the golden executor uses
    the same table — so "correct output" is defined once. *)

module Task = Btr_workload.Task
module Graph = Btr_workload.Graph

type input = { orig_flow : int; value : float array }

type fn = period:int -> inputs:input list -> float array option
(** [None] means the task produces no output this period (e.g. its
    triggering inputs are absent). Implementations must be
    deterministic in (period, inputs). *)

val default_compute : Task.id -> fn
(** A deterministic synthetic computation: mixes the task id, period
    and all input values into a single float. Produces [None] when the
    task has inputs registered as a consumer but received none. *)

val counter_source : Task.id -> fn
(** Source producing [[| task; period |]] — recognizably unique per
    period, so corruption and staleness are observable. *)

val constant_source : float array -> fn

val value_digest : float array -> int64
(** Canonical digest of an output value (exact, hex-rendered floats);
    what replicas send to their checker. *)

val equal_value : float array -> float array -> bool

type table

val table : Graph.t -> overrides:(Task.id * fn) list -> table
(** Behaviour per task of the (original) workload: sources default to
    {!counter_source}, compute tasks to {!default_compute}; sinks have
    no behaviour. [overrides] replace the defaults (used by the plant
    examples to wire sensors and controllers). *)

val find : table -> Task.id -> fn
