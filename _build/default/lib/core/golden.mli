(** The reference ("golden") executor.

    Defines what the system's outputs {e should} be each period:
    evaluate the original dataflow graph with the shared behaviour
    table, feeding it the values the physical sources actually emitted.
    The BTR definition (paper §3) judges outputs against "a system in
    which all nodes are correct" — given the same physical inputs —
    and this module is that system.

    Source values are recorded as the real sources produce them
    (including values corrupted by a compromised source node: attacks
    on sensors themselves are input, not computation, per the paper's
    threat-model scoping in §5). A source that emits nothing leaves its
    value absent, and downstream golden values degrade exactly as a
    correct distributed execution would. *)

module Task = Btr_workload.Task
module Graph = Btr_workload.Graph

type t

val create : Graph.t -> Behavior.table -> t
(** [Graph.t] is the {e original} workload (not augmented). *)

val note_source : t -> task:Task.id -> period:int -> float array -> unit
(** Record what a source emitted. At most once per (task, period);
    later calls are ignored (first write wins, matching "the sensor
    reading of that period"). *)

val value : t -> task:Task.id -> period:int -> float array option
(** Expected output of the task for the period; memoized. *)

val digest : t -> task:Task.id -> period:int -> int64 option

val flow_value : t -> flow:int -> period:int -> float array option
(** Expected value carried by an original flow = its producer's value. *)
