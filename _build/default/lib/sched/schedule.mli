(** Static, time-triggered distributed schedules.

    A plan (paper §4) prescribes a schedule for each node. Because the
    workload releases every task once per system period [P], the
    hyperperiod is [P] and a schedule is a set of non-overlapping slots
    per node within [0, P), repeated every period. Slots are derived by
    list scheduling in dataflow order, so precedence constraints —
    including network transfer times between tasks on different nodes —
    are respected by construction. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph

type slot = { task : Task.id; start : Time.t; finish : Time.t }

type t

type failure =
  | Overload of { node : int; demand : Time.t; period : Time.t }
      (** a node's assigned work does not fit in the period *)
  | Deadline_miss of { flow_id : int; completion : Time.t; deadline : Time.t }
  | No_route of { src_node : int; dst_node : int }
      (** the placement needs a transfer between disconnected nodes *)

val pp_failure : Format.formatter -> failure -> unit

type xfer = src:int -> dst:int -> size_bytes:int -> Time.t option
(** Queueing-free network transfer-time oracle (see
    {!Btr_net.Net.transfer_time}); [src = dst] must give [Some 0]. *)

val list_schedule :
  Graph.t -> place:(Task.id -> int) -> xfer:xfer -> (t, failure) result
(** Greedy list scheduling in topological order: each task starts when
    all its inputs have arrived and its node is free. Fails with the
    first constraint violation found. *)

val period : t -> Time.t
val nodes : t -> int list
val slots_on : t -> int -> slot list
(** In increasing start order. *)

val window : t -> Task.id -> (Time.t * Time.t) option
(** [Some (start, finish)] of the task's slot; [None] if not scheduled. *)

val node_of : t -> Task.id -> int option
val makespan : t -> Time.t
(** Latest finish across all nodes. *)

val node_utilization : t -> int -> float
(** Busy time on the node divided by the period. *)

val sink_completion : t -> Graph.t -> int -> Time.t option
(** Completion time of the sink task consuming the given flow. *)

val validate : t -> Graph.t -> xfer:xfer -> (unit, string) result
(** Independent checker used by tests and the planner: slots within
    [0, period], no per-node overlap, every precedence edge satisfied
    with its transfer time, every scheduled sink flow meets its
    deadline. *)

val pp : Format.formatter -> t -> unit
