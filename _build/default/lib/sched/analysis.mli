(** Classical uniprocessor schedulability analysis.

    The planner's static tables are built constructively, but admission
    reasoning about per-node task sets uses the standard real-time
    results (the paper situates BTR against this literature, §4.1 and
    [12]): EDF utilization and processor-demand tests, fixed-priority
    response-time analysis, and a Vestal-style dual-criticality test of
    the kind mixed-criticality CPS certify against.

    All functions are pure; times are {!Btr_util.Time.t}. *)

open Btr_util

type periodic = {
  wcet : Time.t;
  period : Time.t;
  deadline : Time.t;  (** relative; constrained: deadline <= period *)
}

val task : wcet:Time.t -> period:Time.t -> ?deadline:Time.t -> unit -> periodic
(** [deadline] defaults to the period (implicit deadline). Raises
    [Invalid_argument] on non-positive fields or deadline > period. *)

val utilization : periodic list -> float

val edf_schedulable_implicit : periodic list -> bool
(** Exact for implicit deadlines: U <= 1 (Liu & Layland). *)

val demand_bound : periodic list -> horizon:Time.t -> Time.t
(** Processor demand h(t) = sum_i max(0, floor((t - D_i)/T_i) + 1) * C_i. *)

val edf_schedulable : periodic list -> bool
(** Exact for constrained deadlines: U <= 1 and h(t) <= t at every
    absolute deadline up to the hyperperiod (sufficient test points for
    synchronous release). *)

val response_times : periodic list -> Time.t option list
(** Fixed-priority response-time analysis with deadline-monotonic
    priorities (list order is reordered internally; results match the
    input order). [None] when the recurrence diverges past the deadline
    — the task is unschedulable under fixed priorities. *)

val fp_schedulable : periodic list -> bool
(** All response times exist and meet their deadlines. *)

(** Vestal-style dual-criticality task: a LO and a HI execution budget.
    HI tasks may overrun their LO budget, at which point LO tasks are
    dropped (the mode switch the planner's shedding mirrors). *)
type dual = {
  lo_wcet : Time.t;
  hi_wcet : Time.t;  (** >= lo_wcet; = lo_wcet for LO-criticality tasks *)
  dual_period : Time.t;
  hi_criticality : bool;
}

val vestal_schedulable : dual list -> bool
(** Sufficient utilization-based AMC test: LO mode fits with every task
    at its LO budget, and HI mode fits with only HI tasks at their HI
    budgets. *)

(** A concrete preemptive EDF simulator, for validating the analysis
    (and the analysis validates it back, property-tested). *)
module Edf_sim : sig
  val deadline_misses : periodic list -> horizon:Time.t -> int
  (** Simulates synchronous release over [horizon]; counts jobs that
      miss their absolute deadline. *)
end
