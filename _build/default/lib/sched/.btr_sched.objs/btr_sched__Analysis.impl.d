lib/sched/analysis.ml: Array Btr_util Hashtbl List Option Time
