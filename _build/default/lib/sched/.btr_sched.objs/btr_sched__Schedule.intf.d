lib/sched/schedule.mli: Btr_util Btr_workload Format Time
