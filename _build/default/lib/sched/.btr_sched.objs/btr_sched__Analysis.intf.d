lib/sched/analysis.mli: Btr_util Time
