lib/sched/schedule.ml: Btr_util Btr_workload Format Hashtbl Int List Option String Time
