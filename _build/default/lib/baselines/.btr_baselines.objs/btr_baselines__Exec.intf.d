lib/baselines/exec.mli: Btr Btr_fault Btr_net Btr_util Btr_workload Time
