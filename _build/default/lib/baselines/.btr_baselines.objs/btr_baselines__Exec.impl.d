lib/baselines/exec.ml: Array Btr Btr_fault Btr_net Btr_sim Btr_util Btr_workload Hashtbl Int Int64 List Option Rng Stdlib Time
