lib/crypto/auth.mli: Btr_util Time
