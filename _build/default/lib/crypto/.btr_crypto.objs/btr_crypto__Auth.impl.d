lib/crypto/auth.ml: Btr_util Char Hashtbl Int64 List Printf Rng String Time
