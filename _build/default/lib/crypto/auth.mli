(** Simulated message authentication.

    BTR's evidence machinery needs two things from cryptography: that a
    correct node's statements cannot be forged by other (possibly
    Byzantine) nodes, and that signing/verifying has a CPU cost that
    competes with the real-time workload (§4.1: "there are no extra
    resources for BTR"). Both are provided without real cryptography:

    - tags are 64-bit keyed digests; unforgeability holds because the
      simulator hands each node only its own {!secret}, so Byzantine
      code simply has no way to produce another node's tag (and guessing
      succeeds with probability 2{^-64});
    - every [sign]/[verify] reports its cost from the {!cost_model}, and
      callers charge it to the node's CPU budget.

    Real deployments would substitute Ed25519 or CBC-MAC authenticators;
    nothing above this module depends on the tag construction. *)

open Btr_util

type t
(** The key authority: generates keys and verifies tags. Conceptually
    this is "the PKI established at system integration time". *)

type secret
(** A node-held signing key. Possession is the only way to sign. *)

type tag
(** An authenticator over a message. *)

type cost_model = { sign_cost : Time.t; verify_cost : Time.t }

val default_costs : cost_model
(** 50µs sign, 20µs verify — commodity-MCU ballpark for short MACs. *)

val create : ?costs:cost_model -> unit -> t

val gen_key : t -> owner:int -> secret
(** Registers and returns the signing key for principal [owner].
    Raises [Invalid_argument] if [owner] already has a key. *)

val owner_of_secret : secret -> int

val sign : t -> secret -> string -> tag
val verify : t -> signer:int -> string -> tag -> bool
(** [verify] is [false] for unknown signers rather than raising: a
    Byzantine node may well claim a nonexistent identity. *)

val sign_cost : t -> Time.t
val verify_cost : t -> Time.t

val tag_to_string : tag -> string
val equal_tag : tag -> tag -> bool

val forge_tag : unit -> tag
(** A structurally valid but unauthenticated tag. Used only by fault
    injection to model a Byzantine node fabricating evidence; [verify]
    rejects it (except with the 2{^-64} collision probability that real
    MACs also have — the simulation treats it as zero). *)

val digest : string -> int64
(** FNV-1a 64-bit content digest, used for hash chains and replica
    output comparison. *)

(** Tamper-evident logs: each record's digest covers its predecessor,
    as in PeerReview-style evidence logs. *)
module Chain : sig
  type link = int64

  val genesis : link
  val extend : link -> string -> link
  val of_records : string list -> link
end
