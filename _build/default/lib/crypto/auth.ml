open Btr_util

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let digest_into acc s =
  let h = ref acc in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let digest s = digest_into fnv_offset s

type secret = { owner : int; key : int64 }
type tag = { signer : int; value : int64 }
type cost_model = { sign_cost : Time.t; verify_cost : Time.t }

let default_costs = { sign_cost = Time.us 50; verify_cost = Time.us 20 }

type t = { keys : (int, int64) Hashtbl.t; costs : cost_model; key_rng : Rng.t }

let create ?(costs = default_costs) () =
  { keys = Hashtbl.create 16; costs; key_rng = Rng.create 0x5EC4E7 }

let gen_key t ~owner =
  if Hashtbl.mem t.keys owner then
    invalid_arg (Printf.sprintf "Auth.gen_key: owner %d already registered" owner);
  let key = Rng.bits64 t.key_rng in
  Hashtbl.replace t.keys owner key;
  { owner; key }

let owner_of_secret s = s.owner

let mac key msg =
  (* Keyed digest: mix the key into both ends so extension attacks on the
     toy digest cannot matter even in principle. *)
  let open Int64 in
  let inner = digest_into (logxor fnv_offset key) msg in
  mul (logxor inner (shift_right_logical key 17)) fnv_prime

let sign _t secret msg = { signer = secret.owner; value = mac secret.key msg }

let verify t ~signer msg tag =
  tag.signer = signer
  &&
  match Hashtbl.find_opt t.keys signer with
  | None -> false
  | Some key -> Int64.equal (mac key msg) tag.value

let sign_cost t = t.costs.sign_cost
let verify_cost t = t.costs.verify_cost

let tag_to_string tag = Printf.sprintf "%d:%016Lx" tag.signer tag.value
let equal_tag a b = a.signer = b.signer && Int64.equal a.value b.value
let forge_tag () = { signer = -1; value = 0xDEADBEEFL }

module Chain = struct
  type link = int64

  let genesis = fnv_offset
  let extend prev record = digest_into (Int64.add prev 1L) record
  let of_records records = List.fold_left extend genesis records
end
