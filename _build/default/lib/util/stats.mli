(** Summary statistics for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Full-population summary. Raises [Invalid_argument] on []. *)

val summarize_opt : float list -> summary option

val mean : float list -> float
val stddev : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics. Raises [Invalid_argument] on []. *)

val histogram : buckets:int -> float list -> (float * float * int) list
(** [(lo, hi, count)] rows covering [min, max] of the data in equal-width
    buckets. Empty input gives []. *)

val pp_summary : Format.formatter -> summary -> unit

(** Counters and accumulators used by simulation metrics. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val values : t -> float list
  (** In insertion order. *)

  val summary : t -> summary option
end
