(** Logical time for the simulator, in integer microseconds.

    All BTR components run on deterministic logical time; there is no
    wall-clock anywhere in the library. Using integers keeps arithmetic
    exact, so schedule hyperperiods and deadlines never drift. *)

type t = int
(** A duration or an instant, in microseconds. Instants are durations
    since the simulation epoch. *)

val zero : t
val infinity : t
(** A sentinel later than any reachable simulated instant. *)

val us : int -> t
val ms : int -> t
val sec : int -> t

val of_sec_f : float -> t
(** [of_sec_f s] rounds [s] seconds to the nearest microsecond. *)

val to_sec_f : t -> float
val to_ms_f : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t
val div : t -> int -> t
val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val lcm : t -> t -> t
(** Least common multiple; used to compute schedule hyperperiods. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: picks µs/ms/s units automatically. *)

val to_string : t -> string
