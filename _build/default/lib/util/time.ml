type t = int

let zero = 0
let infinity = max_int

let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000

let of_sec_f s = int_of_float (Float.round (s *. 1e6))
let to_sec_f t = float_of_int t /. 1e6
let to_ms_f t = float_of_int t /. 1e3

let add a b = if a = infinity || b = infinity then infinity else a + b
let sub a b = a - b
let mul t k = if t = infinity then infinity else t * k
let div t k = t / k
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b

let pp ppf t =
  if t = infinity then Format.pp_print_string ppf "inf"
  else if t mod 1_000_000 = 0 && t >= 1_000_000 then
    Format.fprintf ppf "%ds" (t / 1_000_000)
  else if t mod 1_000 = 0 && t >= 1_000 then Format.fprintf ppf "%dms" (t / 1_000)
  else if t >= 1_000_000 then Format.fprintf ppf "%.3fs" (to_sec_f t)
  else if t >= 1_000 then Format.fprintf ppf "%.3fms" (to_ms_f t)
  else Format.fprintf ppf "%dus" t

let to_string t = Format.asprintf "%a" pp t
