type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value fits OCaml's positive int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let int_in t lo hi = lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let k = Stdlib.min k (Array.length a) in
  Array.to_list (Array.sub a 0 k)
