lib/util/pheap.mli:
