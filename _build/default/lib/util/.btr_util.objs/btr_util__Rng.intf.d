lib/util/rng.mli:
