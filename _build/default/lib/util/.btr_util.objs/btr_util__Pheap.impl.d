lib/util/pheap.ml: List
