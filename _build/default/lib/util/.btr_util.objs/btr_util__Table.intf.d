lib/util/table.mli:
