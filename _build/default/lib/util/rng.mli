(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic choice in the library draws from an explicit [Rng.t]
    so that a simulation is a pure function of its seed. The generator
    supports {!split} to derive independent streams for subsystems
    without sharing mutable state across them. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split rng] advances [rng] and returns a new generator whose stream
    is independent of the remainder of [rng]'s. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] is uniform in [0, n). Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float rng x] is uniform in [0, x). *)

val bool : t -> bool

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal deviate. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample rng k xs] draws [min k (length xs)] distinct elements,
    preserving no particular order. *)
