(** Plain-text tables for experiment output.

    The bench harness prints one table per reproduced experiment; this
    keeps the rendering uniform and column-aligned. *)

type t

val create : title:string -> header:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val row_count : t -> int

val render : t -> string
val print : t -> unit
(** Renders to stdout followed by a blank line. *)

val cell_f : float -> string
(** Fixed 3-decimal rendering used for measured values. *)

val cell_pct : float -> string
(** Percentage with 1 decimal, e.g. [12.5%]. *)
