type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    {
      count = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = List.fold_left Stdlib.min Float.infinity xs;
      max = List.fold_left Stdlib.max Float.neg_infinity xs;
      p50 = percentile xs 50.0;
      p90 = percentile xs 90.0;
      p99 = percentile xs 99.0;
    }

let summarize_opt = function [] -> None | xs -> Some (summarize xs)

let histogram ~buckets xs =
  match xs with
  | [] -> []
  | _ ->
    let lo = List.fold_left Stdlib.min Float.infinity xs in
    let hi = List.fold_left Stdlib.max Float.neg_infinity xs in
    let width =
      if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0
    in
    let counts = Array.make buckets 0 in
    let place x =
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.max 0 (Stdlib.min (buckets - 1) i) in
      counts.(i) <- counts.(i) + 1
    in
    List.iter place xs;
    List.init buckets (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

module Acc = struct
  type t = { mutable rev_values : float list; mutable count : int }

  let create () = { rev_values = []; count = 0 }

  let add t x =
    t.rev_values <- x :: t.rev_values;
    t.count <- t.count + 1

  let count t = t.count
  let values t = List.rev t.rev_values
  let summary t = summarize_opt (values t)
end
