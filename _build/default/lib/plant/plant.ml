open Btr_util

type model = {
  name : string;
  initial : float array;
  derivative : t:float -> state:float array -> input:float -> float array;
  output : float array -> float;
  in_envelope : float array -> bool;
  envelope_distance : float array -> float;
}

type t = {
  m : model;
  dt : Time.t;
  mutable clock : Time.t;
  mutable x : float array;
  mutable u : float;
  mutable outside : Time.t;
  mutable worst : float;
  mutable dead : bool;
}

let create m ~dt =
  if dt <= 0 then invalid_arg "Plant.create: dt <= 0";
  {
    m;
    dt;
    clock = Time.zero;
    x = Array.copy m.initial;
    u = 0.0;
    outside = Time.zero;
    worst = 0.0;
    dead = false;
  }

let model t = t.m
let state t = Array.copy t.x
let output t = t.m.output t.x
let now t = t.clock
let set_input t u = t.u <- u
let input t = t.u

let axpy a x y = Array.mapi (fun i yi -> yi +. (a *. x.(i))) y

let rk4_step m ~t_s ~dt_s x u =
  let f t x = m.derivative ~t ~state:x ~input:u in
  let k1 = f t_s x in
  let k2 = f (t_s +. (dt_s /. 2.0)) (axpy (dt_s /. 2.0) k1 x) in
  let k3 = f (t_s +. (dt_s /. 2.0)) (axpy (dt_s /. 2.0) k2 x) in
  let k4 = f (t_s +. dt_s) (axpy dt_s k3 x) in
  Array.mapi
    (fun i xi ->
      xi +. (dt_s /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
    x

let advance t ~until =
  while Time.compare t.clock until < 0 do
    let dt_s = Time.to_sec_f t.dt in
    t.x <- rk4_step t.m ~t_s:(Time.to_sec_f t.clock) ~dt_s t.x t.u;
    t.clock <- Time.add t.clock t.dt;
    let d = t.m.envelope_distance t.x in
    if d > t.worst then t.worst <- d;
    if not (t.m.in_envelope t.x) then begin
      t.outside <- Time.add t.outside t.dt;
      if d > 3.0 then t.dead <- true
    end
  done

let in_envelope t = t.m.in_envelope t.x
let time_outside_envelope t = t.outside
let max_excursion t = t.worst
let failed t = t.dead

(* Envelope distance is normalized: 1.0 at the envelope boundary. *)

let inverted_pendulum () =
  let g_over_l = 9.81 /. 1.0 and damping = 0.1 and limit = 0.35 in
  (* A small periodic disturbance torque (wind gusts) keeps the upright
     equilibrium from being numerically metastable: with control it is
     compensated invisibly; with control frozen, it seeds divergence. *)
  let disturbance t = 0.5 *. sin (2.0 *. Float.pi *. 0.8 *. t) in
  {
    name = "inverted-pendulum";
    initial = [| 0.05; 0.0 |];
    derivative =
      (fun ~t ~state ~input ->
        let theta = state.(0) and omega = state.(1) in
        [|
          omega;
          (g_over_l *. sin theta) -. (damping *. omega) +. input +. disturbance t;
        |]);
    output = (fun x -> x.(0));
    in_envelope = (fun x -> Float.abs x.(0) <= limit);
    envelope_distance = (fun x -> Float.abs x.(0) /. limit);
  }

let pressure_vessel ?(inflow = 0.4) () =
  let p_max = 10.0 and relief_rate = 1.2 in
  {
    name = "pressure-vessel";
    initial = [| 5.0 |];
    derivative =
      (fun ~t:_ ~state ~input ->
        let valve = Float.max 0.0 (Float.min 1.0 input) in
        let rate = inflow -. (relief_rate *. valve) in
        (* Pressure floors at ambient: venting an empty vessel does
           nothing. *)
        [| (if state.(0) <= 0.0 && rate < 0.0 then 0.0 else rate) |]);
    output = (fun x -> x.(0));
    in_envelope = (fun x -> x.(0) <= p_max && x.(0) >= 0.0);
    envelope_distance = (fun x -> Float.max (x.(0) /. p_max) 0.0);
  }

let cruise_control ?(v_set = 30.0) () =
  let mass = 1000.0 and drag = 50.0 and margin = 5.0 in
  {
    name = "cruise-control";
    initial = [| v_set |];
    derivative =
      (fun ~t:_ ~state ~input -> [| (input -. (drag *. state.(0))) /. mass |]);
    output = (fun x -> x.(0));
    in_envelope = (fun x -> Float.abs (x.(0) -. v_set) <= margin);
    envelope_distance = (fun x -> Float.abs (x.(0) -. v_set) /. margin);
  }

module Controller = struct
  type kind =
    | Pid of { kp : float; ki : float; kd : float; setpoint : float }
    | State_feedback of float array
    | Bang_bang of { threshold : float; low : float; high : float }

  type ctl = {
    kind : kind;
    mutable integral : float;
    mutable prev_error : float option;
  }

  let pid ~kp ~ki ~kd ~setpoint =
    { kind = Pid { kp; ki; kd; setpoint }; integral = 0.0; prev_error = None }

  let state_feedback ~gains =
    { kind = State_feedback gains; integral = 0.0; prev_error = None }

  let bang_bang ~threshold ~low ~high =
    { kind = Bang_bang { threshold; low; high }; integral = 0.0; prev_error = None }

  let compute c ~dt_s ~measurement =
    match c.kind with
    | State_feedback gains ->
      let n = Stdlib.min (Array.length gains) (Array.length measurement) in
      let u = ref 0.0 in
      for i = 0 to n - 1 do
        u := !u -. (gains.(i) *. measurement.(i))
      done;
      !u
    | Bang_bang { threshold; low; high } ->
      if measurement.(0) > threshold then high else low
    | Pid { kp; ki; kd; setpoint } ->
      let e = setpoint -. measurement.(0) in
      c.integral <- c.integral +. (e *. dt_s);
      let de =
        match c.prev_error with
        | Some pe when dt_s > 0.0 -> (e -. pe) /. dt_s
        | _ -> 0.0
      in
      c.prev_error <- Some e;
      (kp *. e) +. (ki *. c.integral) +. (kd *. de)

  let reset c =
    c.integral <- 0.0;
    c.prev_error <- None

  let default_for m =
    match m.name with
    | "inverted-pendulum" -> state_feedback ~gains:[| 25.0; 8.0 |]
    | "pressure-vessel" -> bang_bang ~threshold:6.0 ~low:0.0 ~high:1.0
    | "cruise-control" -> pid ~kp:400.0 ~ki:150.0 ~kd:0.0 ~setpoint:30.0
    | name -> invalid_arg ("Controller.default_for: unknown model " ^ name)
end
