(** Physical plant models.

    The paper's core argument (§1, §2) is that the physical side of a
    CPS has inertia: a short interval of missing or wrong control
    commands does not push it out of its safety envelope, so recovery
    within a bound R is as good as masking — provided R is small enough.
    These models make that argument quantitative (experiment E6): each
    plant integrates simple dynamics and a safety-envelope monitor
    records how far and how long the state strays.

    Integration is fixed-step RK4 on logical time; models are
    deterministic given their disturbance sequence. *)

open Btr_util

type model = {
  name : string;
  initial : float array;
  derivative : t:float -> state:float array -> input:float -> float array;
      (** time derivative of the state under control input [input];
          [t] is simulation time in seconds (for disturbances) *)
  output : float array -> float;  (** what the plant's sensor reads *)
  in_envelope : float array -> bool;
  envelope_distance : float array -> float;
      (** >= 0; 0 on the envelope boundary, grows with excursion depth;
          used to report "how close to disaster" *)
}

type t

val create : model -> dt:Time.t -> t
(** [dt] is the integration step (must divide the control period). *)

val model : t -> model
val state : t -> float array
(** A copy; mutating it does not affect the plant. *)

val output : t -> float
val now : t -> Time.t

val set_input : t -> float -> unit
(** Zero-order hold: the value applies until changed. Faulty control is
    modelled by simply writing a wrong value (or never updating). *)

val input : t -> float

val advance : t -> until:Time.t -> unit
(** Integrates forward in [dt] steps. No-op if [until <= now]. *)

val in_envelope : t -> bool
val time_outside_envelope : t -> Time.t
(** Accumulated time spent outside the safety envelope so far. *)

val max_excursion : t -> float
(** Largest {!model.envelope_distance} observed. *)

val failed : t -> bool
(** Latches [true] once the excursion exceeds the hard limit (3x the
    envelope), modelling unrecoverable physical damage. *)

(** {1 Models} *)

val inverted_pendulum : unit -> model
(** Inverted pendulum: state [|theta; omega|], with a small periodic
    disturbance torque (so the upright equilibrium is not numerically
    metastable). Unstable — with control frozen, theta diverges within
    a second. Envelope |theta| <= 0.35 rad. Input is torque. *)

val pressure_vessel : ?inflow:float -> unit -> model
(** Vessel pressurized by a constant [inflow] (default 0.4 bar/s) and
    vented by a relief valve: input in [0,1] is valve opening. Envelope
    pressure <= 10 bar. Slow dynamics — the plant that tolerates
    "five seconds". *)

val cruise_control : ?v_set:float -> unit -> model
(** First-order vehicle speed under drag; input is engine force.
    Envelope |v − v_set| <= 5 m/s. *)

(** {1 Controllers} *)

module Controller : sig
  type ctl

  val pid : kp:float -> ki:float -> kd:float -> setpoint:float -> ctl
  val state_feedback : gains:float array -> ctl
  (** [u = −gains · state]. *)

  val bang_bang : threshold:float -> low:float -> high:float -> ctl
  (** [high] when measurement exceeds [threshold], else [low]; for the
      relief valve. *)

  val compute : ctl -> dt_s:float -> measurement:float array -> float
  (** One control-period update. [measurement] is the full state for
      state feedback, or [[|y|]] for pid/bang-bang. *)

  val reset : ctl -> unit

  val default_for : model -> ctl
  (** A stabilizing controller for each built-in model. *)
end
