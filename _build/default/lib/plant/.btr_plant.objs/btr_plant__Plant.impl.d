lib/plant/plant.ml: Array Btr_util Float Stdlib Time
