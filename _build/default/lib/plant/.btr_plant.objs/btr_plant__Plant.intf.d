lib/plant/plant.mli: Btr_util Time
