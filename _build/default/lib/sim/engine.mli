(** Deterministic discrete-event simulation engine.

    Drives everything in this repository: the network, node schedulers,
    plants, fault injection and the BTR runtime all execute as events on
    one engine. Execution order is total and reproducible: events fire
    in (time, insertion sequence) order, and all randomness flows from
    the engine's seeded {!Btr_util.Rng.t}. *)

open Btr_util

type t

type handle
(** A scheduled event that can be cancelled before it fires. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine at time 0. Default seed is 1. *)

val now : t -> Time.t
val rng : t -> Rng.t

val schedule : t -> at:Time.t -> (t -> unit) -> handle
(** [schedule t ~at f] runs [f t] when simulated time reaches [at].
    Raises [Invalid_argument] if [at] is in the past. *)

val schedule_in : t -> delay:Time.t -> (t -> unit) -> handle
(** [schedule_in t ~delay f] is [schedule t ~at:(now t + delay) f].
    Requires [delay >= 0]. *)

val every : t -> period:Time.t -> ?start:Time.t -> (t -> unit) -> handle
(** Periodic event, first firing at [start] (default: next period
    boundary from now). Cancelling the handle stops future firings. *)

val cancel : handle -> unit
(** Idempotent; a cancelled event is skipped when its time comes. *)

val step : t -> bool
(** Fires the next pending event. [false] if the queue was empty. *)

val run : ?until:Time.t -> t -> unit
(** Processes events until the queue drains or simulated time would
    exceed [until]. Events at exactly [until] still fire. *)

val events_processed : t -> int
val pending : t -> int

val trace : t -> string -> string -> unit
(** [trace t subsystem msg] appends to the trace log (cheap no-op unless
    tracing was enabled). *)

val set_tracing : t -> bool -> unit

val traces : t -> (Time.t * string * string) list
(** Collected trace records, oldest first. *)
