lib/sim/engine.mli: Btr_util Rng Time
