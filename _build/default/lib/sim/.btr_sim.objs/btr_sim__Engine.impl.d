lib/sim/engine.ml: Btr_util Int List Pheap Printf Rng Time
