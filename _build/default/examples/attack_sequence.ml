(* The §3 worst case: an adversary who controls k nodes triggers one
   fresh fault every R seconds, forcing up to k separate recoveries.
   BTR's promise is that total incorrect output stays below k*R — and
   that if the physical deadline is D, choosing R := D/f keeps the
   plant safe even against this schedule.

     dune exec examples/attack_sequence.exe *)

open Btr_util
module Fault = Btr_fault.Fault
module Planner = Btr_planner.Planner

let () =
  let r = Time.ms 200 in
  let f = 3 in
  let workload = Btr_workload.Generators.avionics ~n_nodes:8 in
  let topology =
    Btr_net.Topology.fully_connected ~n:8 ~bandwidth_bps:10_000_000
      ~latency:(Time.us 50)
  in
  (* Three compromised nodes, revealed one every R. *)
  let script =
    Fault.sequential_attack ~nodes:[ 3; 5; 6 ] ~start:(Time.ms 300) ~gap:r
      Fault.Corrupt_outputs
  in
  let scenario =
    Btr.Scenario.spec ~workload ~topology ~f ~recovery_bound:r ~script
      ~horizon:(Time.sec 2) ()
  in
  match Btr.Scenario.run scenario with
  | Error e -> Format.printf "planning failed: %a@." Planner.pp_error e
  | Ok rt ->
    let m = Btr.Runtime.metrics rt in
    Format.printf "%a@." Btr.Metrics.pp_summary m;
    Format.printf "injections:@.";
    List.iter
      (fun (t, node, what) ->
        Format.printf "  t=%a: node %d turns %s@." Time.pp t node what)
      (Btr.Metrics.injections m);
    Format.printf "@.per-fault recoveries (bound R = %a):@." Time.pp r;
    List.iteri
      (fun i rec_time ->
        Format.printf "  fault %d: %a %s@." (i + 1) Time.pp rec_time
          (if Time.compare rec_time r <= 0 then "(within R)" else "(EXCEEDS R)"))
      (Btr.Metrics.recovery_times m);
    let bad = Btr.Metrics.incorrect_time m in
    let k = List.length (Btr.Metrics.injections m) in
    Format.printf "@.total incorrect output: %a <= k*R = %a: %b@." Time.pp bad
      Time.pp (Time.mul r k)
      (Time.compare bad (Time.mul r k) <= 0);
    Format.printf "final mode everywhere: {%s}@."
      (String.concat ","
         (List.map string_of_int (Btr.Runtime.node_mode rt 0)))
