(* The paper's §2 motivating scenario, closed loop: "when a sensor
   indicates a pressure increase in some part of the system, the system
   may need to respond within seconds — e.g., by opening a safety valve
   — to prevent an explosion."

   A pressure vessel is filled at a constant rate; a replicated PLC
   opens the relief valve when pressure crosses a threshold. We corrupt
   the node running the PLC primary just before the threshold is reached
   — the worst moment: the fail-safe valve holds its last valid command,
   shut, while the vessel keeps filling. BTR recovers long before the
   vessel's multi-second inertia budget (the actual five-second rule)
   runs out; without recovery the vessel bursts.

     dune exec examples/scada_vessel.exe *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Fault = Btr_fault.Fault
module Planner = Btr_planner.Planner
module Plant = Btr_plant.Plant
module Engine = Btr_sim.Engine

let build_workload () =
  let ms = Time.ms and us = Time.us in
  let sensor =
    Task.make ~id:0 ~name:"pressure-sensor" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:0 ()
  in
  let plc =
    Task.make ~id:1 ~name:"plc" ~wcet:(ms 3) ~criticality:Task.Safety_critical
      ~state_size:4096 ()
  in
  let valve =
    Task.make ~id:2 ~name:"relief-valve" ~kind:Task.Sink ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:1 ()
  in
  let ballast id node =
    Task.make ~id ~name:(Printf.sprintf "payload-n%d" node) ~wcet:(ms 30)
      ~criticality:Task.Best_effort ~pinned:node ()
  in
  Graph.create_relaxed ~period:(ms 50)
    ~tasks:[ sensor; plc; valve; ballast 3 0; ballast 4 1 ]
    ~flows:
      [
        { Graph.flow_id = 0; producer = 0; consumer = 1; msg_size = 64; deadline = None };
        { Graph.flow_id = 1; producer = 1; consumer = 2; msg_size = 32; deadline = Some (ms 40) };
      ]

let run ~f ~script ~horizon =
  (* Faster filling than the default, so mistakes hurt sooner. *)
  let plant = Plant.create (Plant.pressure_vessel ~inflow:0.8 ()) ~dt:(Time.ms 5) in
  let behaviors =
    [
      (0, fun ~period:_ ~inputs:_ -> Some [| Plant.output plant |]);
      ( 1,
        (* bang-bang: open wide above 6 bar. Deterministic, replayable. *)
        fun ~period:_ ~inputs ->
          match inputs with
          | [ { Btr.Behavior.value = p; _ } ] when Array.length p >= 1 ->
            Some [| (if p.(0) > 6.0 then 1.0 else 0.0) |]
          | _ -> None );
    ]
  in
  let scenario =
    Btr.Scenario.spec ~workload:(build_workload ())
      ~topology:
        (Btr_net.Topology.fully_connected ~n:5 ~bandwidth_bps:10_000_000
           ~latency:(Time.us 50))
      ~f ~recovery_bound:(Time.ms 500) ~script ~horizon ~behaviors ()
  in
  match Btr.Scenario.prepare scenario with
  | Error e -> Format.kasprintf failwith "planning failed: %a" Planner.pp_error e
  | Ok rt ->
    let eng = Btr.Runtime.engine rt in
    ignore
      (Engine.every eng ~period:(Time.ms 5) (fun e ->
           Plant.advance plant ~until:(Engine.now e)));
    (* A real valve controller validates its input and fails safe by
       holding the last valid command when fed garbage. The corrupt PLC
       sends values far out of [0,1], so the valve freezes — shut, since
       pressure was still below the threshold when the attack began —
       while the vessel keeps filling: the paper's §2 explosion
       scenario. *)
    Btr.Runtime.on_actuate rt ~orig_flow:1 (fun ~period:_ ~value ~at ->
        Plant.advance plant ~until:at;
        if Array.length value >= 1 && value.(0) >= 0.0 && value.(0) <= 1.0 then
          Plant.set_input plant value.(0));
    Btr.Runtime.run rt ~horizon;
    Plant.advance plant ~until:horizon;
    (rt, plant)

let () =
  let horizon = Time.sec 40 in
  let probe, _ = run ~f:1 ~script:[] ~horizon:(Time.ms 100) in
  let target =
    Option.get
      (Planner.assignment_of (Planner.initial_plan (Btr.Runtime.strategy probe)) 1)
  in
  Format.printf
    "PLC primary runs on node %d; corrupting it at t=1s, while the valve@.\
     is still shut and pressure is rising toward the 6-bar threshold@.@."
    target;
  let script = Fault.single ~at:(Time.sec 1) ~node:target Fault.Corrupt_outputs in
  let report name (rt, plant) =
    let m = Btr.Runtime.metrics rt in
    Format.printf "%s:@." name;
    Format.printf "  wrong/missing valve commands: %a@." Time.pp
      (Btr.Metrics.incorrect_time m);
    Format.printf "  peak pressure: %.1f%% of the 10-bar limit@."
      (100.0 *. Plant.max_excursion plant);
    Format.printf "  time outside envelope: %a, vessel burst: %b@.@." Time.pp
      (Plant.time_outside_envelope plant)
      (Plant.failed plant)
  in
  report "btr (f=1, R=500ms)" (run ~f:1 ~script ~horizon);
  report "no fault tolerance (f=0)" (run ~f:0 ~script ~horizon)
