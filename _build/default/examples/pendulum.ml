(* Closed-loop control under attack: an inverted pendulum stabilized
   over the network by a BTR-protected controller. A compromised node
   starts sending wrong torque commands; BTR detects the divergence by
   replay, excludes the node, and the pendulum's inertia rides out the
   sub-R outage — the "five-second rule" in action (paper §1, §2).

     dune exec examples/pendulum.exe *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Fault = Btr_fault.Fault
module Planner = Btr_planner.Planner
module Plant = Btr_plant.Plant
module Engine = Btr_sim.Engine

let clamp lo hi x = Float.max lo (Float.min hi x)

let build_workload () =
  let ms = Time.ms and us = Time.us in
  let imu =
    Task.make ~id:0 ~name:"imu" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:0 ()
  in
  let controller =
    Task.make ~id:1 ~name:"controller" ~wcet:(ms 2)
      ~criticality:Task.Safety_critical ~state_size:1024 ()
  in
  let torque =
    Task.make ~id:2 ~name:"torque" ~kind:Task.Sink ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:1 ()
  in
  (* Ballast keeps the placeable controller off the physical I/O nodes
     (attacks on sensors/actuators themselves are out of scope). *)
  let ballast id node =
    Task.make ~id ~name:(Printf.sprintf "payload-n%d" node) ~wcet:(ms 14)
      ~criticality:Task.Best_effort ~pinned:node ()
  in
  Graph.create_relaxed ~period:(ms 20)
    ~tasks:[ imu; controller; torque; ballast 3 0; ballast 4 1 ]
    ~flows:
      [
        { Graph.flow_id = 0; producer = 0; consumer = 1; msg_size = 64; deadline = None };
        { Graph.flow_id = 1; producer = 1; consumer = 2; msg_size = 32; deadline = Some (ms 15) };
      ]

let run ~f ~script ~horizon =
  let plant = Plant.create (Plant.inverted_pendulum ()) ~dt:(Time.ms 1) in
  let behaviors =
    [
      (0, fun ~period:_ ~inputs:_ -> Some (Plant.state plant));
      ( 1,
        fun ~period:_ ~inputs ->
          match inputs with
          | [ { Btr.Behavior.value = st; _ } ] when Array.length st >= 2 ->
            Some [| clamp (-50.0) 50.0 (-.((25.0 *. st.(0)) +. (8.0 *. st.(1)))) |]
          | _ -> None );
    ]
  in
  let scenario =
    Btr.Scenario.spec ~workload:(build_workload ())
      ~topology:
        (Btr_net.Topology.fully_connected ~n:5 ~bandwidth_bps:10_000_000
           ~latency:(Time.us 50))
      ~f ~recovery_bound:(Time.ms 150) ~script ~horizon ~behaviors ()
  in
  match Btr.Scenario.prepare scenario with
  | Error e -> Format.kasprintf failwith "planning failed: %a" Planner.pp_error e
  | Ok rt ->
    let eng = Btr.Runtime.engine rt in
    ignore
      (Engine.every eng ~period:(Time.ms 1) (fun e ->
           Plant.advance plant ~until:(Engine.now e)));
    Btr.Runtime.on_actuate rt ~orig_flow:1 (fun ~period:_ ~value ~at ->
        Plant.advance plant ~until:at;
        if Array.length value >= 1 then
          Plant.set_input plant (clamp (-50.0) 50.0 value.(0)));
    Btr.Runtime.run rt ~horizon;
    Plant.advance plant ~until:horizon;
    (rt, plant)

let () =
  let horizon = Time.sec 4 in
  (* Find the controller primary's node, then corrupt it at t = 1s. *)
  let probe, _ = run ~f:1 ~script:[] ~horizon:(Time.ms 40) in
  let target =
    Option.get
      (Planner.assignment_of (Planner.initial_plan (Btr.Runtime.strategy probe)) 1)
  in
  Format.printf "controller primary runs on node %d; corrupting it at t=1s@.@." target;
  let script = Fault.single ~at:(Time.sec 1) ~node:target Fault.Corrupt_outputs in
  let report name (rt, plant) =
    let m = Btr.Runtime.metrics rt in
    Format.printf "%s:@." name;
    Format.printf "  wrong/missing torque commands: %a@." Time.pp
      (Btr.Metrics.incorrect_time m);
    Format.printf "  pendulum max excursion: %.0f%% of envelope@."
      (100.0 *. Plant.max_excursion plant);
    Format.printf "  time outside envelope: %a, destroyed: %b@.@." Time.pp
      (Plant.time_outside_envelope plant)
      (Plant.failed plant)
  in
  report "btr (f=1, R=150ms)" (run ~f:1 ~script ~horizon);
  report "no fault tolerance (f=0)" (run ~f:0 ~script ~horizon)
