(* Mixed-criticality degradation (the paper's flight-deck example, §1):
   the same computer park runs safety-critical flight control and
   best-effort in-flight entertainment. As Byzantine faults accumulate,
   BTR sheds the entertainment and keeps the airplane flying.

     dune exec examples/avionics.exe *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Fault = Btr_fault.Fault
module Planner = Btr_planner.Planner
module Augment = Btr_planner.Augment

let () =
  let workload = Btr_workload.Generators.avionics ~n_nodes:5 in
  (* Double the compute demand so degraded modes are genuinely tight. *)
  let workload =
    Graph.create ~period:(Graph.period workload)
      ~tasks:
        (List.map
           (fun (x : Task.t) ->
             if x.kind = Task.Compute then { x with Task.wcet = Time.mul x.wcet 2 }
             else x)
           (Graph.tasks workload))
      ~flows:(Graph.flows workload)
  in
  let topology =
    Btr_net.Topology.fully_connected ~n:5 ~bandwidth_bps:10_000_000
      ~latency:(Time.us 50)
  in
  (* Aim the attacks at nodes hosting replicated primaries (a corrupt
     node that only runs unprotected best-effort work is invisible to
     the checkers — by design, nothing replicates it). *)
  let scenario_for script =
    Btr.Scenario.spec ~workload ~topology ~f:2 ~recovery_bound:(Time.ms 300)
      ~script ~horizon:(Time.ms 1500)
      ~tune:(fun c -> { c with Planner.degree = 2 })
      ()
  in
  let targets =
    match Btr.Scenario.plan (scenario_for []) with
    | Error _ -> [ 3; 4 ]
    | Ok strategy ->
      let p = Planner.initial_plan strategy in
      (* Candidate primaries: 2 = state-estimator, 3 = control-law,
         6 = engine-monitor, 9 = nav-fusion. Avoid node 2, which hosts
         the pinned elevator actuator and engine alarm: compromising the
         physical actuator node loses those outputs unrecoverably. *)
      let node_of tid = Option.value ~default:0 (Planner.assignment_of p tid) in
      let hosts = List.sort_uniq Int.compare (List.map node_of [ 2; 3; 6; 9 ]) in
      (match List.filter (fun n -> n <> 2) hosts with
      | a :: b :: _ -> [ a; b ]
      | [ a ] -> [ a; (a + 1) mod 5 ]
      | [] -> [ 3; 4 ])
  in
  let script =
    match targets with
    | [ a; b ] ->
      Fault.single ~at:(Time.ms 300) ~node:a Fault.Corrupt_outputs
      @ Fault.single ~at:(Time.ms 900) ~node:b Fault.Corrupt_outputs
    | _ -> []
  in
  match Btr.Scenario.run (scenario_for script) with
  | Error e -> Format.printf "planning failed: %a@." Planner.pp_error e
  | Ok rt ->
    let m = Btr.Runtime.metrics rt in
    Format.printf "%a@." Btr.Metrics.pp_summary m;
    Format.printf "(timeline legend: C correct, W wrong, M missing, L late, S shed)@.";
    (* Show what each post-fault mode kept, by criticality. *)
    let strategy = Btr.Runtime.strategy rt in
    List.iter
      (fun faulty ->
        match Planner.plan_for strategy ~faulty with
        | None -> ()
        | Some p ->
          let kept = Graph.tasks p.Planner.aug.Augment.original in
          let names level =
            kept
            |> List.filter (fun (x : Task.t) -> x.criticality = level)
            |> List.map (fun (x : Task.t) -> x.name)
            |> String.concat ", "
          in
          Format.printf "@.mode {%s}%s:@."
            (String.concat "," (List.map string_of_int faulty))
            (match p.Planner.shed_below with
            | None -> ""
            | Some floor ->
              Format.asprintf " — shed everything below %a" Task.pp_criticality floor);
          List.iter
            (fun level ->
              let n = names level in
              if n <> "" then
                Format.printf "  %a: %s@." Task.pp_criticality level n)
            (List.rev Task.all_criticalities))
      [ []; [ 4 ]; [ 3; 4 ] ];
    Format.printf "@.mode changes:@.";
    List.iter
      (fun (t, node, mode) ->
        Format.printf "  t=%a node %d -> {%s}@." Time.pp t node
          (String.concat "," (List.map string_of_int mode)))
      (Btr.Runtime.mode_changes rt)
