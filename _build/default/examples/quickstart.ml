(* Quickstart: protect a small CPS workload with BTR, crash a node, and
   watch the system reconfigure within its recovery bound.

     dune exec examples/quickstart.exe *)

open Btr_util
module Fault = Btr_fault.Fault
module Planner = Btr_planner.Planner

let () =
  (* 1. A workload: the avionics mix from the paper's introduction
     (flight control, engine monitor, navigation, in-flight
     entertainment), released every 20ms. *)
  let workload = Btr_workload.Generators.avionics ~n_nodes:6 in

  (* 2. A platform: six nodes, point-to-point 10MB/s links. *)
  let topology =
    Btr_net.Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
      ~latency:(Time.us 50)
  in

  (* 3. The contract: survive any f=1 Byzantine node, recover within
     R = 200ms. The offline planner precomputes a plan per fault
     pattern; the runtime detects, gossips evidence, and switches. *)
  let scenario =
    Btr.Scenario.spec ~workload ~topology ~f:1 ~recovery_bound:(Time.ms 200)
      ~script:(Fault.single ~at:(Time.ms 250) ~node:4 Fault.Crash)
      ~horizon:(Time.sec 1) ()
  in

  match Btr.Scenario.run scenario with
  | Error e -> Format.printf "planning failed: %a@." Planner.pp_error e
  | Ok rt ->
    let strategy = Btr.Runtime.strategy rt in
    let stats = Planner.stats strategy in
    Format.printf "strategy: %d modes, %d transitions, worst-case recovery %a (admitted: %b)@."
      stats.Planner.modes stats.Planner.transitions Time.pp
      stats.Planner.worst_recovery (Planner.admitted strategy);
    let m = Btr.Runtime.metrics rt in
    Format.printf "@.%a@." Btr.Metrics.pp_summary m;
    List.iter
      (fun (t, node, mode) ->
        Format.printf "t=%a: node %d switched to mode {%s}@." Time.pp t node
          (String.concat "," (List.map string_of_int mode)))
      (Btr.Runtime.mode_changes rt);
    List.iter
      (fun r -> Format.printf "measured recovery: %a (bound: 200ms)@." Time.pp r)
      (Btr.Metrics.recovery_times m)
