examples/avionics.mli:
