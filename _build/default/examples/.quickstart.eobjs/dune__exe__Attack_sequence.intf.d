examples/attack_sequence.mli:
