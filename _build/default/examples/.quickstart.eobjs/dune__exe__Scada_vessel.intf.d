examples/scada_vessel.mli:
