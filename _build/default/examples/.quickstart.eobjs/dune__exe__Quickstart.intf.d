examples/quickstart.mli:
