examples/quickstart.ml: Btr Btr_fault Btr_net Btr_planner Btr_util Btr_workload Format List String Time
