examples/avionics.ml: Btr Btr_fault Btr_net Btr_planner Btr_util Btr_workload Format Int List Option String Time
