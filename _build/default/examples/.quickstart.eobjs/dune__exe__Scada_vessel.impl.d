examples/scada_vessel.ml: Array Btr Btr_fault Btr_net Btr_planner Btr_plant Btr_sim Btr_util Btr_workload Format Option Printf Time
