examples/pendulum.mli:
