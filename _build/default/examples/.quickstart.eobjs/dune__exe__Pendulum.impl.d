examples/pendulum.ml: Array Btr Btr_fault Btr_net Btr_planner Btr_plant Btr_sim Btr_util Btr_workload Float Format Option Printf Time
