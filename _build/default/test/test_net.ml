open Btr_util
open Btr_net
module Engine = Btr_sim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Topology *)

let test_topology_validation () =
  let link id members =
    { Topology.link_id = id; members; bandwidth_bps = 1000; latency = Time.us 10 }
  in
  Alcotest.check_raises "unknown member"
    (Invalid_argument "Topology.create: link 0 member 9 is not a node") (fun () ->
      ignore (Topology.create ~nodes:[ 0; 1 ] ~links:[ link 0 [ 0; 9 ] ]));
  Alcotest.check_raises "single-member link"
    (Invalid_argument "Topology.create: link 0 has < 2 members") (fun () ->
      ignore (Topology.create ~nodes:[ 0; 1 ] ~links:[ link 0 [ 0 ] ]));
  Alcotest.check_raises "duplicate nodes"
    (Invalid_argument "Topology.create: duplicate node ids") (fun () ->
      ignore (Topology.create ~nodes:[ 0; 0 ] ~links:[]))

let test_generators () =
  let fc = Topology.fully_connected ~n:4 ~bandwidth_bps:1000 ~latency:(Time.us 1) in
  check_int "fc links" 6 (List.length (Topology.links fc));
  let ring = Topology.ring ~n:5 ~bandwidth_bps:1000 ~latency:(Time.us 1) in
  check_int "ring links" 5 (List.length (Topology.links ring));
  check_int "ring degree" 2 (List.length (Topology.neighbors ring 0));
  let star = Topology.star ~n:5 ~hub:0 ~bandwidth_bps:1000 ~latency:(Time.us 1) in
  check_int "star hub degree" 4 (List.length (Topology.neighbors star 0));
  check_int "star spoke degree" 1 (List.length (Topology.neighbors star 3));
  let db = Topology.dual_bus ~n:6 ~bandwidth_bps:1000 ~latency:(Time.us 1) in
  check_int "dual bus links" 2 (List.length (Topology.links db));
  check_int "dual bus everyone adjacent" 5 (List.length (Topology.neighbors db 2))

let test_routing () =
  let ring = Topology.ring ~n:6 ~bandwidth_bps:1000 ~latency:(Time.us 1) in
  (match Topology.route ring ~src:0 ~dst:3 with
  | Some path -> check_int "ring 0->3 hops" 3 (List.length path)
  | None -> Alcotest.fail "route expected");
  (match Topology.route ring ~src:2 ~dst:2 with
  | Some [] -> ()
  | _ -> Alcotest.fail "self route should be empty");
  match Topology.route_avoiding ring ~avoid:[ 1; 5 ] ~src:0 ~dst:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "0->3 must be cut when 1 and 5 cannot relay"

let test_connected_without () =
  let star = Topology.star ~n:5 ~hub:0 ~bandwidth_bps:1000 ~latency:(Time.us 1) in
  check_bool "star loses hub" false (Topology.connected_without star [ 0 ]);
  check_bool "star loses spoke ok" true (Topology.connected_without star [ 3 ]);
  let fc = Topology.fully_connected ~n:4 ~bandwidth_bps:1000 ~latency:(Time.us 1) in
  check_bool "clique survives any single failure" true
    (Topology.connected_without fc [ 2 ])

(* Net *)

let mk_net ?(n = 3) ?(bw = 1_000_000) ?(lat = Time.us 100) () =
  let e = Engine.create () in
  let topo = Topology.fully_connected ~n ~bandwidth_bps:bw ~latency:lat in
  (e, Net.create e topo ())

let test_send_receive () =
  let e, net = mk_net () in
  let got = ref None in
  Net.set_handler net 1 (fun r -> got := Some r);
  check_bool "send accepted" true
    (Net.send net ~src:0 ~dst:1 ~cls:Net.Data ~size_bytes:100 "hello");
  Engine.run e;
  match !got with
  | Some r ->
    Alcotest.(check string) "payload" "hello" r.Net.payload;
    check_int "src" 0 r.Net.src;
    check_bool "took positive time" true (r.Net.delivered_at > Time.zero)
  | None -> Alcotest.fail "message not delivered"

let test_latency_model () =
  (* 1 MB/s link, default shares split between 2 members, 80% data:
     rate = 400_000 B/s, so 4000 bytes serialize in 10 ms + 100us prop. *)
  let e, net = mk_net () in
  let got = ref None in
  Net.set_handler net 1 (fun r -> got := Some r);
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Data ~size_bytes:4000 ());
  Engine.run e;
  match !got with
  | Some r ->
    let expect =
      Time.add
        (Time.us (4000 * 1_000_000 / Net.reserved_rate net 0
                    (List.hd (Topology.links_of_node (Net.topology net) 0))
                    Net.Data))
        (Time.us 100)
    in
    check_int "serialization + propagation" expect r.Net.delivered_at
  | None -> Alcotest.fail "not delivered"

let test_queueing () =
  (* Two back-to-back sends from the same node serialize sequentially. *)
  let e, net = mk_net () in
  let arrivals = ref [] in
  Net.set_handler net 1 (fun r -> arrivals := r.Net.delivered_at :: !arrivals);
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Data ~size_bytes:4000 ());
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Data ~size_bytes:4000 ());
  Engine.run e;
  match List.rev !arrivals with
  | [ a; b ] ->
    check_bool "second message queues" true (Time.sub b a >= Time.ms 9)
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let test_classes_do_not_queue_against_each_other () =
  let e, net = mk_net () in
  let arrivals = ref [] in
  Net.set_handler net 1 (fun r -> arrivals := (r.Net.cls, r.Net.delivered_at) :: !arrivals);
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Data ~size_bytes:40_000 ());
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Control ~size_bytes:100 ());
  Engine.run e;
  let control_at =
    List.assoc Net.Control (List.map (fun (c, t) -> (c, t)) !arrivals)
  in
  let data_at = List.assoc Net.Data !arrivals in
  check_bool "control cuts past the data queue" true (control_at < data_at)

let test_multi_hop () =
  let e = Engine.create () in
  let topo = Topology.ring ~n:4 ~bandwidth_bps:1_000_000 ~latency:(Time.us 50) in
  let net = Net.create e topo () in
  let got = ref None in
  Net.set_handler net 2 (fun r -> got := Some r);
  ignore (Net.send net ~src:0 ~dst:2 ~cls:Net.Data ~size_bytes:100 ());
  Engine.run e;
  match !got with
  | Some r -> check_int "two hops on the ring" 2 r.Net.hops
  | None -> Alcotest.fail "not delivered"

let test_relay_drop () =
  let e = Engine.create () in
  let topo = Topology.ring ~n:4 ~bandwidth_bps:1_000_000 ~latency:(Time.us 50) in
  let net = Net.create e topo () in
  let got = ref false in
  Net.set_handler net 2 (fun _ -> got := true);
  (* Both ring paths 0->2 pass through 1 or 3; make both drop. *)
  Net.set_relay_policy net 1 (fun ~src:_ ~dst:_ ~cls:_ -> false);
  Net.set_relay_policy net 3 (fun ~src:_ ~dst:_ ~cls:_ -> false);
  ignore (Net.send net ~src:0 ~dst:2 ~cls:Net.Data ~size_bytes:100 ());
  Engine.run e;
  check_bool "dropped by Byzantine relay" false !got;
  check_int "drop counted" 1 (Net.stats net).Net.messages_dropped_by_relay

let test_route_avoid () =
  let e = Engine.create () in
  let topo = Topology.ring ~n:4 ~bandwidth_bps:1_000_000 ~latency:(Time.us 50) in
  let net = Net.create e topo () in
  let hops = ref 0 in
  Net.set_handler net 2 (fun r -> hops := r.Net.hops);
  Net.set_route_avoid net [ 1 ];
  ignore (Net.send net ~src:0 ~dst:2 ~cls:Net.Data ~size_bytes:100 ());
  Engine.run e;
  check_int "routed the long way around" 2 !hops;
  Net.set_route_avoid net [ 1; 3 ];
  check_bool "no route left" false
    (Net.send net ~src:0 ~dst:2 ~cls:Net.Data ~size_bytes:100 ())

let test_transfer_time_matches_delivery () =
  let e, net = mk_net ~n:4 () in
  let predicted =
    match Net.transfer_time net ~src:0 ~dst:3 ~cls:Net.Data ~size_bytes:2500 with
    | Some t -> t
    | None -> Alcotest.fail "route expected"
  in
  let measured = ref Time.zero in
  Net.set_handler net 3 (fun r -> measured := r.Net.delivered_at);
  ignore (Net.send net ~src:0 ~dst:3 ~cls:Net.Data ~size_bytes:2500 ());
  Engine.run e;
  check_int "queueing-free prediction exact" predicted !measured

let test_stats_and_accounting () =
  let e, net = mk_net () in
  Net.set_handler net 1 (fun _ -> ());
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Data ~size_bytes:300 ());
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Control ~size_bytes:200 ());
  Engine.run e;
  let s = Net.stats net in
  check_int "sent" 2 s.Net.messages_sent;
  check_int "delivered" 2 s.Net.messages_delivered;
  check_int "bytes" 500 s.Net.bytes_sent;
  check_int "data bytes by sender" 300 (Net.bytes_sent_by net 0 Net.Data);
  check_int "control bytes by sender" 200 (Net.bytes_sent_by net 0 Net.Control)

let test_residual_loss () =
  let e = Engine.create () in
  let topo = Topology.fully_connected ~n:2 ~bandwidth_bps:1_000_000 ~latency:(Time.us 1) in
  let net = Net.create e topo ~residual_loss:1.0 () in
  let got = ref false in
  Net.set_handler net 1 (fun _ -> got := true);
  ignore (Net.send net ~src:0 ~dst:1 ~cls:Net.Data ~size_bytes:10 ());
  Engine.run e;
  check_bool "lossy link drops" false !got;
  check_int "loss counted" 1 (Net.stats net).Net.messages_lost

let prop_clique_routes_exist =
  QCheck.Test.make ~name:"every pair routes in a clique with <= 1 hop" ~count:50
    QCheck.(pair (int_range 2 10) (pair (int_bound 9) (int_bound 9)))
    (fun (n, (a, b)) ->
      let a = a mod n and b = b mod n in
      let topo = Topology.fully_connected ~n ~bandwidth_bps:1000 ~latency:1 in
      match Topology.route topo ~src:a ~dst:b with
      | Some path -> List.length path = if a = b then 0 else 1
      | None -> false)

let prop_ring_route_is_shortest =
  QCheck.Test.make ~name:"ring routes take min(cw, ccw) hops" ~count:100
    QCheck.(pair (int_range 3 12) (pair (int_bound 11) (int_bound 11)))
    (fun (n, (a, b)) ->
      let a = a mod n and b = b mod n in
      let topo = Topology.ring ~n ~bandwidth_bps:1000 ~latency:1 in
      let dist = (b - a + n) mod n in
      let expect = Stdlib.min dist (n - dist) in
      match Topology.route topo ~src:a ~dst:b with
      | Some path -> List.length path = expect
      | None -> false)

let suite =
  [
    ("topology validation", `Quick, test_topology_validation);
    ("topology generators", `Quick, test_generators);
    ("routing", `Quick, test_routing);
    ("connectivity without faulty nodes", `Quick, test_connected_without);
    ("send and receive", `Quick, test_send_receive);
    ("latency model", `Quick, test_latency_model);
    ("per-sender queueing", `Quick, test_queueing);
    ("control class bypasses data queue", `Quick, test_classes_do_not_queue_against_each_other);
    ("multi-hop store and forward", `Quick, test_multi_hop);
    ("Byzantine relay drops transit traffic", `Quick, test_relay_drop);
    ("routing avoids known-faulty relays", `Quick, test_route_avoid);
    ("transfer_time predicts delivery", `Quick, test_transfer_time_matches_delivery);
    ("statistics and bandwidth accounting", `Quick, test_stats_and_accounting);
    ("residual loss drops messages", `Quick, test_residual_loss);
    QCheck_alcotest.to_alcotest prop_clique_routes_exist;
    QCheck_alcotest.to_alcotest prop_ring_route_is_shortest;
  ]
