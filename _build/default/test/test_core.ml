(* Unit tests for the core support modules: behaviours, the golden
   reference executor, the output metrics, and the scenario facade. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Behavior = Btr.Behavior
module Golden = Btr.Golden
module Metrics = Btr.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A 3-task chain: source 0 -> compute 1 -> sink 2. *)
let chain () =
  Graph.create ~period:(Time.ms 10)
    ~tasks:
      [
        Task.make ~id:0 ~name:"s" ~kind:Task.Source ~wcet:(Time.us 10) ~pinned:0 ();
        Task.make ~id:1 ~name:"c" ~wcet:(Time.ms 1) ();
        Task.make ~id:2 ~name:"k" ~kind:Task.Sink ~wcet:(Time.us 10) ~pinned:1 ();
      ]
    ~flows:
      [
        { Graph.flow_id = 0; producer = 0; consumer = 1; msg_size = 8; deadline = None };
        { Graph.flow_id = 1; producer = 1; consumer = 2; msg_size = 8; deadline = Some (Time.ms 9) };
      ]

(* Behavior *)

let test_default_compute_deterministic () =
  let inputs = [ { Behavior.orig_flow = 0; value = [| 1.5 |] } ] in
  let a = Behavior.default_compute 1 ~period:3 ~inputs in
  let b = Behavior.default_compute 1 ~period:3 ~inputs in
  check_bool "same inputs, same output" true (a = b);
  check_bool "different period, different output" true
    (a <> Behavior.default_compute 1 ~period:4 ~inputs);
  check_bool "different task, different output" true
    (a <> Behavior.default_compute 2 ~period:3 ~inputs)

let test_default_compute_order_insensitive () =
  let i1 = { Behavior.orig_flow = 0; value = [| 1.0 |] } in
  let i2 = { Behavior.orig_flow = 1; value = [| 2.0 |] } in
  check_bool "input order irrelevant" true
    (Behavior.default_compute 1 ~period:0 ~inputs:[ i1; i2 ]
    = Behavior.default_compute 1 ~period:0 ~inputs:[ i2; i1 ])

let test_default_compute_silent_without_inputs () =
  check_bool "no inputs, no output" true
    (Behavior.default_compute 1 ~period:0 ~inputs:[] = None)

let test_value_digest () =
  check_bool "digest deterministic" true
    (Int64.equal (Behavior.value_digest [| 1.0; 2.0 |]) (Behavior.value_digest [| 1.0; 2.0 |]));
  check_bool "digest discriminates values" false
    (Int64.equal (Behavior.value_digest [| 1.0 |]) (Behavior.value_digest [| 1.0000001 |]));
  check_bool "digest discriminates arity" false
    (Int64.equal (Behavior.value_digest [| 1.0 |]) (Behavior.value_digest [| 1.0; 1.0 |]))

let test_equal_value () =
  check_bool "equal" true (Behavior.equal_value [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  check_bool "tolerant to 1e-12" true (Behavior.equal_value [| 1.0 |] [| 1.0 +. 1e-12 |]);
  check_bool "length mismatch" false (Behavior.equal_value [| 1.0 |] [| 1.0; 2.0 |]);
  check_bool "value mismatch" false (Behavior.equal_value [| 1.0 |] [| 1.1 |])

let test_behavior_table () =
  let g = chain () in
  let marker ~period:_ ~inputs:_ = Some [| 99.0 |] in
  let t = Behavior.table g ~overrides:[ (1, marker) ] in
  check_bool "override wins" true
    (Behavior.find t 1 ~period:0 ~inputs:[] = Some [| 99.0 |]);
  check_bool "source default is counter" true
    (Behavior.find t 0 ~period:5 ~inputs:[] = Some [| 0.0; 5.0 |])

(* Golden *)

let test_golden_chain () =
  let g = chain () in
  let table = Behavior.table g ~overrides:[] in
  let gold = Golden.create g table in
  check_bool "unrecorded source has no value" true
    (Golden.value gold ~task:0 ~period:0 = None);
  Golden.note_source gold ~task:0 ~period:0 [| 7.0 |];
  (match Golden.value gold ~task:1 ~period:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "compute value expected once source recorded");
  check_bool "flow value = producer value" true
    (Golden.flow_value gold ~flow:1 ~period:0 = Golden.value gold ~task:1 ~period:0);
  check_bool "digest matches value" true
    (match Golden.value gold ~task:1 ~period:0, Golden.digest gold ~task:1 ~period:0 with
    | Some v, Some d -> Int64.equal (Behavior.value_digest v) d
    | _ -> false)

let test_golden_first_write_wins () =
  let g = chain () in
  let gold = Golden.create g (Behavior.table g ~overrides:[]) in
  Golden.note_source gold ~task:0 ~period:0 [| 1.0 |];
  Golden.note_source gold ~task:0 ~period:0 [| 2.0 |];
  check_bool "first write wins" true
    (Golden.value gold ~task:0 ~period:0 = Some [| 1.0 |])

let test_golden_missing_input_propagates () =
  let g = chain () in
  let gold = Golden.create g (Behavior.table g ~overrides:[]) in
  (* Source never fires in period 3: compute has no inputs -> None. *)
  check_bool "starved compute has no golden value" true
    (Golden.value gold ~task:1 ~period:3 = None)

(* Metrics *)

let mk_metrics () =
  let g = chain () in
  let gold = Golden.create g (Behavior.table g ~overrides:[]) in
  (Metrics.create g, gold, g)

let expected_value gold period =
  Golden.note_source gold ~task:0 ~period [| float_of_int period |];
  Option.get (Golden.flow_value gold ~flow:1 ~period)

let test_metrics_statuses () =
  let m, gold, _ = mk_metrics () in
  (* p0 correct, p1 wrong, p2 missing, p3 late, p4 shed *)
  let v0 = expected_value gold 0 in
  Metrics.record_delivery m ~orig_flow:1 ~period:0 ~value:v0 ~arrived:(Time.ms 5) ~lane:0;
  let _ = expected_value gold 1 in
  Metrics.record_delivery m ~orig_flow:1 ~period:1 ~value:[| 1234.0 |]
    ~arrived:(Time.ms 15) ~lane:0;
  let _ = expected_value gold 2 in
  let v3 = expected_value gold 3 in
  Metrics.record_delivery m ~orig_flow:1 ~period:3 ~value:v3
    ~arrived:(Time.add (Time.ms 30) (Time.ms 9 + 1)) ~lane:1;
  let _ = expected_value gold 4 in
  Metrics.record_shed m ~orig_flow:1 ~period:4;
  List.iter (fun p -> Metrics.finalize_period m ~golden:gold ~period:p) [ 0; 1; 2; 3; 4 ];
  let st p = Option.get (Metrics.status m ~orig_flow:1 ~period:p) in
  check_bool "p0 correct" true (st 0 = Metrics.Correct);
  check_bool "p1 wrong" true (st 1 = Metrics.Wrong);
  check_bool "p2 missing" true (st 2 = Metrics.Missing);
  check_bool "p3 late" true (st 3 = Metrics.Late);
  check_bool "p4 shed" true (st 4 = Metrics.Shed);
  check_int "five periods" 5 (Metrics.periods_finalized m);
  (* Aggregates: 1 correct out of 4 non-shed; 2 deadline misses. *)
  Alcotest.(check (float 1e-9)) "correct fraction" 0.25 (Metrics.correct_fraction m);
  Alcotest.(check (float 1e-9)) "miss fraction" 0.5 (Metrics.deadline_miss_fraction m);
  check_int "bad periods x period" (Time.ms 30) (Metrics.incorrect_time m);
  check_bool "lane counts" true (Metrics.lanes_used m ~orig_flow:1 = [ (0, 2); (1, 1) ])

let test_metrics_vacuous_correct () =
  let m, gold, _ = mk_metrics () in
  (* Nothing expected (source silent) and nothing delivered: Correct. *)
  Metrics.finalize_period m ~golden:gold ~period:0;
  check_bool "vacuously correct" true
    (Metrics.status m ~orig_flow:1 ~period:0 = Some Metrics.Correct)

let test_metrics_unexpected_delivery_is_wrong () =
  let m, gold, _ = mk_metrics () in
  Metrics.record_delivery m ~orig_flow:1 ~period:0 ~value:[| 3.0 |]
    ~arrived:(Time.ms 2) ~lane:0;
  Metrics.finalize_period m ~golden:gold ~period:0;
  check_bool "acting with no golden value is wrong" true
    (Metrics.status m ~orig_flow:1 ~period:0 = Some Metrics.Wrong)

let test_metrics_recovery_windows () =
  let m, gold, _ = mk_metrics () in
  Metrics.record_injection m ~at:(Time.ms 10) ~node:5 ~what:"corrupt";
  (* periods 1-2 bad, 3+ good. *)
  for p = 0 to 5 do
    let v = expected_value gold p in
    let delivered = if p = 1 || p = 2 then [| -1.0 |] else v in
    Metrics.record_delivery m ~orig_flow:1 ~period:p ~value:delivered
      ~arrived:(Time.add (Time.mul (Time.ms 10) p) (Time.ms 5)) ~lane:0;
    Metrics.finalize_period m ~golden:gold ~period:p
  done;
  (match Metrics.recovery_times m with
  | [ r ] -> check_int "recovery ends with last bad period" (Time.ms 20) r
  | l -> Alcotest.failf "expected 1 recovery, got %d" (List.length l));
  check_int "incorrect time = 2 periods" (Time.ms 20) (Metrics.incorrect_time m)

let test_metrics_protected_scoping () =
  let g = chain () in
  let gold = Golden.create g (Behavior.table g ~overrides:[]) in
  let m = Metrics.create ~protected_flows:[] g in
  Metrics.record_injection m ~at:Time.zero ~node:0 ~what:"corrupt";
  let _ = expected_value gold 0 in
  Metrics.finalize_period m ~golden:gold ~period:0;
  (* flow 1 is Missing, but it is not protected: no incorrect time. *)
  check_int "unprotected misses don't count" 0 (Metrics.incorrect_time m);
  check_bool "recovery zero" true (Metrics.recovery_times m = [ Time.zero ])

(* Scenario *)

let test_scenario_defaults () =
  let s =
    Btr.Scenario.spec
      ~workload:(Btr_workload.Generators.avionics ~n_nodes:6)
      ~topology:
        (Btr_net.Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
           ~latency:(Time.us 50))
      ~f:1 ~recovery_bound:(Time.ms 200) ()
  in
  check_int "default horizon = 100 periods" (Time.sec 2) s.Btr.Scenario.horizon;
  check_int "default seed" 1 s.Btr.Scenario.seed

let test_scenario_plan_only () =
  let s =
    Btr.Scenario.spec
      ~workload:(Btr_workload.Generators.scada ~n_nodes:5)
      ~topology:
        (Btr_net.Topology.fully_connected ~n:5 ~bandwidth_bps:10_000_000
           ~latency:(Time.us 50))
      ~f:1 ~recovery_bound:(Time.ms 300) ()
  in
  match Btr.Scenario.plan s with
  | Ok strategy -> check_bool "scada admits" true (Btr_planner.Planner.admitted strategy)
  | Error e -> Alcotest.failf "plan: %a" Btr_planner.Planner.pp_error e

let test_scenario_tune_applies () =
  let s =
    Btr.Scenario.spec
      ~workload:(Btr_workload.Generators.avionics ~n_nodes:6)
      ~topology:
        (Btr_net.Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
           ~latency:(Time.us 50))
      ~f:1 ~recovery_bound:(Time.ms 200)
      ~tune:(fun c -> { c with Btr_planner.Planner.degree = 3 })
      ()
  in
  match Btr.Scenario.plan s with
  | Ok strategy ->
    check_int "tuned degree stored" 3 (Btr_planner.Planner.config strategy).Btr_planner.Planner.degree
  | Error e -> Alcotest.failf "plan: %a" Btr_planner.Planner.pp_error e

let suite =
  [
    ("behaviour: deterministic", `Quick, test_default_compute_deterministic);
    ("behaviour: input-order insensitive", `Quick, test_default_compute_order_insensitive);
    ("behaviour: silent without inputs", `Quick, test_default_compute_silent_without_inputs);
    ("behaviour: value digests", `Quick, test_value_digest);
    ("behaviour: value equality", `Quick, test_equal_value);
    ("behaviour: table overrides", `Quick, test_behavior_table);
    ("golden: chain evaluation", `Quick, test_golden_chain);
    ("golden: first source write wins", `Quick, test_golden_first_write_wins);
    ("golden: missing input propagates", `Quick, test_golden_missing_input_propagates);
    ("metrics: all five statuses", `Quick, test_metrics_statuses);
    ("metrics: vacuous periods are correct", `Quick, test_metrics_vacuous_correct);
    ("metrics: unexpected delivery is wrong", `Quick, test_metrics_unexpected_delivery_is_wrong);
    ("metrics: recovery windows", `Quick, test_metrics_recovery_windows);
    ("metrics: protected-flow scoping", `Quick, test_metrics_protected_scoping);
    ("scenario: defaults", `Quick, test_scenario_defaults);
    ("scenario: plan only", `Quick, test_scenario_plan_only);
    ("scenario: tune applies", `Quick, test_scenario_tune_applies);
  ]
