open Btr_util
module A = Btr_sched.Analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let t ?deadline ~c ~p () = A.task ~wcet:(Time.ms c) ~period:(Time.ms p) ?deadline ()

let test_task_validation () =
  Alcotest.check_raises "deadline > period"
    (Invalid_argument "Analysis.task: deadline > period") (fun () ->
      ignore (A.task ~wcet:1 ~period:10 ~deadline:20 ()));
  Alcotest.check_raises "zero wcet" (Invalid_argument "Analysis.task: wcet <= 0")
    (fun () -> ignore (A.task ~wcet:0 ~period:10 ()))

let test_utilization () =
  Alcotest.(check (float 1e-9)) "sum of C/T" 0.75
    (A.utilization [ t ~c:1 ~p:4 (); t ~c:5 ~p:10 () ])

let test_edf_implicit_boundary () =
  check_bool "U = 1 schedulable" true
    (A.edf_schedulable_implicit [ t ~c:2 ~p:4 (); t ~c:5 ~p:10 () ]);
  check_bool "U > 1 not" false
    (A.edf_schedulable_implicit [ t ~c:3 ~p:4 (); t ~c:5 ~p:10 () ])

let test_demand_bound () =
  let ts = [ t ~c:1 ~p:4 (); t ~c:2 ~p:6 () ] in
  (* At t=12ms: floor((12-4)/4)+1 = 3 jobs of task 1, floor((12-6)/6)+1 = 2
     jobs of task 2 -> 3*1 + 2*2 = 7ms. *)
  check_int "h(12ms)" (Time.ms 7) (A.demand_bound ts ~horizon:(Time.ms 12));
  check_int "h before first deadline" 0 (A.demand_bound ts ~horizon:(Time.ms 3))

let test_edf_constrained () =
  (* Constrained deadlines can be infeasible even with U < 1. *)
  let tight =
    [ t ~c:2 ~p:10 ~deadline:(Time.ms 2) (); t ~c:2 ~p:10 ~deadline:(Time.ms 2) () ]
  in
  check_bool "two 2ms jobs due at 2ms cannot both fit" false (A.edf_schedulable tight);
  let ok = [ t ~c:2 ~p:10 ~deadline:(Time.ms 4) (); t ~c:2 ~p:10 ~deadline:(Time.ms 4) () ] in
  check_bool "4ms deadlines fit" true (A.edf_schedulable ok)

let test_response_times () =
  (* Classic example: C=(1,2,3), T=D=(4,6,12). RTA: R1=1, R2=3, R3=10. *)
  let ts = [ t ~c:1 ~p:4 (); t ~c:2 ~p:6 (); t ~c:3 ~p:12 () ] in
  (match A.response_times ts with
  | [ Some r1; Some r2; Some r3 ] ->
    check_int "R1" (Time.ms 1) r1;
    check_int "R2" (Time.ms 3) r2;
    check_int "R3" (Time.ms 10) r3
  | _ -> Alcotest.fail "expected three response times");
  check_bool "fp schedulable" true (A.fp_schedulable ts)

let test_fp_vs_edf_gap () =
  (* U = 1 with harmonic mismatch: EDF fits, fixed priorities do not.
     C=(3,3), T=D=(6,9): U = 0.5 + 0.333... < 1 -> EDF ok.
     RTA for the 9ms task: R = 3 + ceil(R/6)*3 -> 6, fits. Use the
     classical U=1 pair C=(2,4), T=(4,8): EDF ok; RTA task2: R = 4 +
     ceil(R/4)*2 -> 4+2=6, 4+4=8 fits... use C=(3,3) T=(6,8):
     U = 0.875. RTA low prio: R = 3 + ceil(R/6)*3: 6 -> 3+3=6 fits.
     Harder: C=(4,4), T=(8,10): U = 0.9. RTA: R = 4 + ceil(R/8)*4:
     8 -> 4+4=8 fits <= 10. FP is good up to ~0.69 only in the limit;
     small sets often fit. Just assert EDF dominates FP. *)
  let ts = [ t ~c:4 ~p:8 (); t ~c:4 ~p:10 () ] in
  check_bool "edf at least as good as fp" true
    ((not (A.fp_schedulable ts)) || A.edf_schedulable ts)

let test_vestal () =
  let hi ~lo_c ~hi_c ~p =
    { A.lo_wcet = Time.ms lo_c; hi_wcet = Time.ms hi_c; dual_period = Time.ms p;
      hi_criticality = true }
  in
  let lo ~c ~p =
    { A.lo_wcet = Time.ms c; hi_wcet = Time.ms c; dual_period = Time.ms p;
      hi_criticality = false }
  in
  check_bool "fits in both modes" true
    (A.vestal_schedulable [ hi ~lo_c:2 ~hi_c:5 ~p:10; lo ~c:6 ~p:10 ]);
  check_bool "HI overrun budget too large" false
    (A.vestal_schedulable [ hi ~lo_c:2 ~hi_c:11 ~p:10; lo ~c:6 ~p:10 ]);
  check_bool "LO mode overloaded" false
    (A.vestal_schedulable [ hi ~lo_c:5 ~hi_c:5 ~p:10; lo ~c:6 ~p:10 ])

let test_edf_sim_basic () =
  check_int "feasible set never misses" 0
    (A.Edf_sim.deadline_misses
       [ t ~c:2 ~p:4 (); t ~c:4 ~p:8 () ]
       ~horizon:(Time.ms 80));
  check_bool "overloaded set misses" true
    (A.Edf_sim.deadline_misses
       [ t ~c:3 ~p:4 (); t ~c:4 ~p:8 () ]
       ~horizon:(Time.ms 80)
    > 0)

let gen_taskset =
  QCheck.Gen.(
    let* n = 1 -- 4 in
    list_repeat n
      (let* p_ms = 2 -- 20 in
       let* c_ms = 1 -- p_ms in
       let* d_ms = c_ms -- p_ms in
       return (A.task ~wcet:(Time.ms c_ms) ~period:(Time.ms p_ms) ~deadline:(Time.ms d_ms) ())))

let prop_edf_analysis_sound =
  QCheck.Test.make
    ~name:"edf_schedulable task sets never miss a deadline in simulation"
    ~count:150
    (QCheck.make gen_taskset)
    (fun ts ->
      QCheck.assume (A.edf_schedulable ts);
      let horizon =
        Time.min (Time.ms 2000)
          (Time.mul (List.fold_left (fun acc t -> Time.lcm acc t.A.period) 1 ts) 2)
      in
      A.Edf_sim.deadline_misses ts ~horizon = 0)

let prop_fp_implies_edf =
  QCheck.Test.make
    ~name:"fixed-priority schedulability implies EDF schedulability" ~count:150
    (QCheck.make gen_taskset)
    (fun ts -> (not (A.fp_schedulable ts)) || A.edf_schedulable ts)

let prop_overload_unschedulable =
  QCheck.Test.make ~name:"U > 1 is never EDF schedulable" ~count:100
    (QCheck.make gen_taskset)
    (fun ts ->
      QCheck.assume (A.utilization ts > 1.0 +. 1e-9);
      not (A.edf_schedulable ts))

let suite =
  [
    ("task validation", `Quick, test_task_validation);
    ("utilization", `Quick, test_utilization);
    ("EDF implicit-deadline boundary", `Quick, test_edf_implicit_boundary);
    ("demand bound function", `Quick, test_demand_bound);
    ("EDF with constrained deadlines", `Quick, test_edf_constrained);
    ("response-time analysis (classic example)", `Quick, test_response_times);
    ("EDF dominates fixed priorities", `Quick, test_fp_vs_edf_gap);
    ("Vestal dual-criticality test", `Quick, test_vestal);
    ("EDF simulator basics", `Quick, test_edf_sim_basic);
    QCheck_alcotest.to_alcotest prop_edf_analysis_sound;
    QCheck_alcotest.to_alcotest prop_fp_implies_edf;
    QCheck_alcotest.to_alcotest prop_overload_unschedulable;
  ]
