open Btr_crypto

let check_bool = Alcotest.(check bool)

let test_sign_verify () =
  let t = Auth.create () in
  let k3 = Auth.gen_key t ~owner:3 in
  let tag = Auth.sign t k3 "pressure=42" in
  check_bool "valid tag verifies" true (Auth.verify t ~signer:3 "pressure=42" tag);
  check_bool "wrong message fails" false (Auth.verify t ~signer:3 "pressure=43" tag);
  check_bool "wrong signer fails" false (Auth.verify t ~signer:4 "pressure=42" tag)

let test_no_cross_signing () =
  let t = Auth.create () in
  let k1 = Auth.gen_key t ~owner:1 in
  let _k2 = Auth.gen_key t ~owner:2 in
  let tag = Auth.sign t k1 "msg" in
  check_bool "node 1's tag does not pass as node 2's" false
    (Auth.verify t ~signer:2 "msg" tag)

let test_forged_tag_rejected () =
  let t = Auth.create () in
  let _k = Auth.gen_key t ~owner:0 in
  check_bool "forged tag rejected" false
    (Auth.verify t ~signer:0 "anything" (Auth.forge_tag ()));
  check_bool "unknown signer rejected" false
    (Auth.verify t ~signer:99 "anything" (Auth.forge_tag ()))

let test_duplicate_owner_rejected () =
  let t = Auth.create () in
  let _ = Auth.gen_key t ~owner:5 in
  Alcotest.check_raises "second key for same owner"
    (Invalid_argument "Auth.gen_key: owner 5 already registered") (fun () ->
      ignore (Auth.gen_key t ~owner:5))

let test_costs () =
  let t = Auth.create () in
  check_bool "sign cost positive" true (Auth.sign_cost t > 0);
  check_bool "verify cost positive" true (Auth.verify_cost t > 0);
  let t2 =
    Auth.create ~costs:{ sign_cost = 7; verify_cost = 3 } ()
  in
  Alcotest.(check int) "custom sign cost" 7 (Auth.sign_cost t2);
  Alcotest.(check int) "custom verify cost" 3 (Auth.verify_cost t2)

let test_owner_of_secret () =
  let t = Auth.create () in
  let k = Auth.gen_key t ~owner:8 in
  Alcotest.(check int) "owner" 8 (Auth.owner_of_secret k)

let test_digest_stable () =
  check_bool "digest deterministic" true
    (Int64.equal (Auth.digest "hello") (Auth.digest "hello"));
  check_bool "digest discriminates" false
    (Int64.equal (Auth.digest "hello") (Auth.digest "hellp"))

let test_chain () =
  let c1 = Auth.Chain.of_records [ "a"; "b"; "c" ] in
  let c2 = Auth.Chain.of_records [ "a"; "b"; "c" ] in
  let c3 = Auth.Chain.of_records [ "a"; "c"; "b" ] in
  check_bool "chains deterministic" true (Int64.equal c1 c2);
  check_bool "chains order-sensitive" false (Int64.equal c1 c3);
  check_bool "extend changes link" false
    (Int64.equal Auth.Chain.genesis (Auth.Chain.extend Auth.Chain.genesis "x"))

let prop_sign_verify_roundtrip =
  QCheck.Test.make ~name:"every signed message verifies under its signer"
    ~count:200
    QCheck.(pair small_nat string)
    (fun (owner, msg) ->
      let t = Auth.create () in
      let k = Auth.gen_key t ~owner in
      Auth.verify t ~signer:owner msg (Auth.sign t k msg))

let prop_tampered_message_rejected =
  QCheck.Test.make ~name:"appending a byte invalidates the tag" ~count:200
    QCheck.string
    (fun msg ->
      let t = Auth.create () in
      let k = Auth.gen_key t ~owner:0 in
      let tag = Auth.sign t k msg in
      not (Auth.verify t ~signer:0 (msg ^ "!") tag))

let suite =
  [
    ("sign/verify round trip", `Quick, test_sign_verify);
    ("tags are per-principal", `Quick, test_no_cross_signing);
    ("forged tags rejected", `Quick, test_forged_tag_rejected);
    ("duplicate key registration rejected", `Quick, test_duplicate_owner_rejected);
    ("cost model is exposed", `Quick, test_costs);
    ("secret knows its owner", `Quick, test_owner_of_secret);
    ("digest is stable and discriminating", `Quick, test_digest_stable);
    ("hash chains detect reordering", `Quick, test_chain);
    QCheck_alcotest.to_alcotest prop_sign_verify_roundtrip;
    QCheck_alcotest.to_alcotest prop_tampered_message_rejected;
  ]
