open Btr_util
open Btr_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_flow ?deadline id p c size =
  { Graph.flow_id = id; producer = p; consumer = c; msg_size = size; deadline }

let tiny_graph () =
  let src =
    Task.make ~id:0 ~name:"s" ~kind:Task.Source ~wcet:(Time.us 100) ~pinned:0 ()
  in
  let mid = Task.make ~id:1 ~name:"m" ~wcet:(Time.ms 1) () in
  let sink =
    Task.make ~id:2 ~name:"k" ~kind:Task.Sink ~wcet:(Time.us 100) ~pinned:1 ()
  in
  Graph.create ~period:(Time.ms 10)
    ~tasks:[ src; mid; sink ]
    ~flows:[ mk_flow 0 0 1 64; mk_flow 1 1 2 64 ~deadline:(Time.ms 8) ]

(* Task *)

let test_task_validation () =
  Alcotest.check_raises "unpinned source"
    (Invalid_argument "Task.make: s is a source/sink and must be pinned")
    (fun () ->
      ignore (Task.make ~id:0 ~name:"s" ~kind:Task.Source ~wcet:(Time.us 1) ()));
  Alcotest.check_raises "zero wcet"
    (Invalid_argument "Task.make: t has wcet <= 0") (fun () ->
      ignore (Task.make ~id:0 ~name:"t" ~wcet:0 ()))

let test_criticality_order () =
  check_bool "safety > best-effort" true
    (Task.compare_criticality Task.Safety_critical Task.Best_effort > 0);
  List.iteri
    (fun i c -> check_int "rank round-trip" i (Task.criticality_rank c))
    Task.all_criticalities;
  List.iter
    (fun c ->
      check_bool "of_rank inverse" true
        (Task.criticality_of_rank (Task.criticality_rank c) = c))
    Task.all_criticalities

let test_is_placeable () =
  let c = Task.make ~id:0 ~name:"c" ~wcet:1 () in
  check_bool "compute placeable" true (Task.is_placeable c);
  let pinned = Task.make ~id:1 ~name:"p" ~wcet:1 ~pinned:3 () in
  check_bool "pinned compute not placeable" false (Task.is_placeable pinned);
  let src = Task.make ~id:2 ~name:"s" ~kind:Task.Source ~wcet:1 ~pinned:0 () in
  check_bool "source not placeable" false (Task.is_placeable src)

(* Graph *)

let test_graph_accessors () =
  let g = tiny_graph () in
  check_int "tasks" 3 (Graph.task_count g);
  check_int "flows" 2 (List.length (Graph.flows g));
  check_int "sources" 1 (List.length (Graph.sources g));
  check_int "sinks" 1 (List.length (Graph.sinks g));
  check_int "compute" 1 (List.length (Graph.compute_tasks g));
  check_int "sink flows" 1 (List.length (Graph.sink_flows g));
  check_int "preds of mid" 1 (List.length (Graph.producers_of g 1));
  check_int "succs of mid" 1 (List.length (Graph.consumers_of g 1))

let test_topo_order () =
  let g = tiny_graph () in
  Alcotest.(check (list int)) "topological" [ 0; 1; 2 ] (Graph.topo_order g)

let test_cycle_rejected () =
  let a = Task.make ~id:0 ~name:"a" ~wcet:1 () in
  let b = Task.make ~id:1 ~name:"b" ~wcet:1 () in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Graph.create: dataflow graph has a cycle") (fun () ->
      ignore
        (Graph.create ~period:(Time.ms 1) ~tasks:[ a; b ]
           ~flows:[ mk_flow 0 0 1 8; mk_flow 1 1 0 8 ]))

let test_sink_with_output_rejected () =
  let s = Task.make ~id:0 ~name:"s" ~kind:Task.Sink ~wcet:1 ~pinned:0 () in
  let c = Task.make ~id:1 ~name:"c" ~wcet:1 () in
  Alcotest.check_raises "sink produces"
    (Invalid_argument "Graph.create: sink 0 produces flow 0") (fun () ->
      ignore
        (Graph.create ~period:(Time.ms 1) ~tasks:[ s; c ]
           ~flows:[ mk_flow 0 0 1 8 ]))

let test_dangling_compute_rejected () =
  let src = Task.make ~id:0 ~name:"s" ~kind:Task.Source ~wcet:1 ~pinned:0 () in
  let c = Task.make ~id:1 ~name:"c" ~wcet:1 () in
  let k = Task.make ~id:2 ~name:"k" ~kind:Task.Sink ~wcet:1 ~pinned:0 () in
  Alcotest.check_raises "compute without output"
    (Invalid_argument "Graph.create: non-sink task 1 has no outputs") (fun () ->
      ignore
        (Graph.create ~period:(Time.ms 1) ~tasks:[ src; c; k ]
           ~flows:[ mk_flow 0 0 1 8; mk_flow 1 0 2 8 ]))

let test_utilization () =
  let g = tiny_graph () in
  (* (100us + 1ms + 100us) / 10ms = 0.12 *)
  Alcotest.(check (float 1e-9)) "utilization" 0.12 (Graph.utilization g)

let test_restrict () =
  let g = Generators.avionics ~n_nodes:4 in
  let critical_only =
    Graph.restrict g ~keep:(fun t ->
        Task.compare_criticality t.Task.criticality Task.High >= 0)
  in
  check_bool "fewer tasks" true (Graph.task_count critical_only < Graph.task_count g);
  List.iter
    (fun (t : Task.t) ->
      check_bool "only high+ kept" true
        (Task.compare_criticality t.criticality Task.High >= 0))
    (Graph.tasks critical_only);
  List.iter
    (fun (f : Graph.flow) ->
      check_bool "no dangling flows" true
        (List.exists (fun (t : Task.t) -> t.id = f.producer) (Graph.tasks critical_only)
        && List.exists (fun (t : Task.t) -> t.id = f.consumer) (Graph.tasks critical_only)))
    (Graph.flows critical_only)

let test_tasks_at_least () =
  let g = Generators.avionics ~n_nodes:4 in
  let safety = Graph.tasks_at_least g Task.Safety_critical in
  check_int "safety-critical count" 5 (List.length safety);
  check_int "everything at best-effort" (Graph.task_count g)
    (List.length (Graph.tasks_at_least g Task.Best_effort))

(* Generators *)

let test_avionics_structure () =
  let g = Generators.avionics ~n_nodes:6 in
  check_bool "has IFE to shed" true
    (List.exists
       (fun (t : Task.t) -> t.criticality = Task.Best_effort)
       (Graph.tasks g));
  check_bool "has safety core" true
    (List.exists
       (fun (t : Task.t) -> t.criticality = Task.Safety_critical)
       (Graph.tasks g));
  List.iter
    (fun (t : Task.t) ->
      match t.kind with
      | Task.Source | Task.Sink -> check_bool "pinned" true (t.pinned <> None)
      | Task.Compute -> ())
    (Graph.tasks g);
  check_bool "all sink flows have deadlines" true
    (List.for_all (fun (f : Graph.flow) -> f.deadline <> None) (Graph.sink_flows g))

let test_scada_structure () =
  let g = Generators.scada ~n_nodes:4 in
  check_bool "valve flow deadline is 200ms" true
    (List.exists
       (fun (f : Graph.flow) -> f.deadline = Some (Time.ms 200))
       (Graph.sink_flows g));
  check_bool "utilization sane" true (Graph.utilization g < 1.0)

let prop_random_layered_valid =
  QCheck.Test.make ~name:"random layered workloads are valid dataflow graphs"
    ~count:50
    QCheck.(triple (int_range 2 8) (int_range 1 4) (int_range 1 4))
    (fun (n_nodes, layers, width) ->
      let rng = Rng.create (n_nodes + (layers * 100) + (width * 10_000)) in
      let g = Generators.random_layered ~rng ~n_nodes ~layers ~width () in
      (* create already validates; check derived invariants. *)
      let order = Graph.topo_order g in
      List.length order = Graph.task_count g
      && Graph.utilization g > 0.0
      && List.for_all
           (fun (f : Graph.flow) -> f.deadline <> None)
           (Graph.sink_flows g))

let prop_random_layered_deterministic =
  QCheck.Test.make ~name:"generator is deterministic in the rng seed" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let gen () =
        let rng = Rng.create seed in
        Generators.random_layered ~rng ~n_nodes:4 ~layers:3 ~width:3 ()
      in
      let a = gen () and b = gen () in
      Graph.tasks a = Graph.tasks b && Graph.flows a = Graph.flows b)

let suite =
  [
    ("task validation", `Quick, test_task_validation);
    ("criticality ordering", `Quick, test_criticality_order);
    ("placeability", `Quick, test_is_placeable);
    ("graph accessors", `Quick, test_graph_accessors);
    ("topological order", `Quick, test_topo_order);
    ("cycles rejected", `Quick, test_cycle_rejected);
    ("sink with output rejected", `Quick, test_sink_with_output_rejected);
    ("dangling compute rejected", `Quick, test_dangling_compute_rejected);
    ("utilization", `Quick, test_utilization);
    ("restrict keeps graph consistent", `Quick, test_restrict);
    ("tasks_at_least filters by level", `Quick, test_tasks_at_least);
    ("avionics workload structure", `Quick, test_avionics_structure);
    ("scada workload structure", `Quick, test_scada_structure);
    QCheck_alcotest.to_alcotest prop_random_layered_valid;
    QCheck_alcotest.to_alcotest prop_random_layered_deterministic;
  ]
