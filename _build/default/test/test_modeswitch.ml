open Btr_util
module Modeswitch = Btr_modeswitch.Modeswitch
module Planner = Btr_planner.Planner
module Fault = Btr_fault.Fault
open Btr_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Fault_set *)

let test_fault_set_grow_only () =
  let fs = Modeswitch.Fault_set.create () in
  check_bool "first add" true (Modeswitch.Fault_set.add_node fs 3);
  check_bool "duplicate add" false (Modeswitch.Fault_set.add_node fs 3);
  check_bool "mem" true (Modeswitch.Fault_set.mem_node fs 3);
  ignore (Modeswitch.Fault_set.add_node fs 1);
  Alcotest.(check (list int)) "sorted" [ 1; 3 ] (Modeswitch.Fault_set.nodes fs)

let test_fault_set_paths () =
  let fs = Modeswitch.Fault_set.create () in
  check_bool "path add" true (Modeswitch.Fault_set.add_path fs (5, 2));
  check_bool "normalized duplicate" false (Modeswitch.Fault_set.add_path fs (2, 5));
  check_bool "mem either order" true (Modeswitch.Fault_set.mem_path fs (5, 2));
  check_bool "mem normalized" true (Modeswitch.Fault_set.mem_path fs (2, 5))

let test_fault_set_union () =
  let a = Modeswitch.Fault_set.create () in
  let b = Modeswitch.Fault_set.create () in
  ignore (Modeswitch.Fault_set.add_node a 1);
  ignore (Modeswitch.Fault_set.add_node b 2);
  ignore (Modeswitch.Fault_set.add_path b (3, 4));
  check_bool "union adds" true (Modeswitch.Fault_set.union a b);
  Alcotest.(check (list int)) "merged nodes" [ 1; 2 ] (Modeswitch.Fault_set.nodes a);
  check_bool "union idempotent" false (Modeswitch.Fault_set.union a b)

let prop_fault_set_converges =
  QCheck.Test.make
    ~name:"fault sets converge regardless of evidence arrival order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 15) (int_bound 9))
    (fun adds ->
      let rng = Rng.create 42 in
      let build order =
        let fs = Modeswitch.Fault_set.create () in
        List.iter (fun n -> ignore (Modeswitch.Fault_set.add_node fs n)) order;
        Modeswitch.Fault_set.nodes fs
      in
      let shuffled = Array.of_list adds in
      Rng.shuffle rng shuffled;
      build adds = build (Array.to_list shuffled))

(* diff *)

let strategy () =
  let g = Generators.avionics ~n_nodes:6 in
  let topo =
    Btr_net.Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
      ~latency:(Time.us 50)
  in
  match
    Planner.build (Planner.default_config ~f:1 ~recovery_bound:(Time.ms 500)) g topo
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "planner failed: %a" Planner.pp_error e

let test_diff_covers_the_moved_tasks () =
  let s = strategy () in
  let from_plan = Planner.initial_plan s in
  let to_plan = Option.get (Planner.plan_for s ~faulty:[ 4 ]) in
  (* Union of all nodes' actions must stop every task that was on node 4
     and start it elsewhere. *)
  let all_actions =
    List.concat_map
      (fun node -> Modeswitch.diff ~node ~from_plan ~to_plan)
      (Btr_net.Topology.nodes (Planner.topology s))
  in
  let tasks_on_4 =
    List.filter_map
      (fun (tid, n) -> if n = 4 then Some tid else None)
      from_plan.Planner.assignment
  in
  check_bool "node 4 hosted something" true (tasks_on_4 <> []);
  List.iter
    (fun tid ->
      let started =
        List.exists
          (function
            | Modeswitch.Start_fresh x -> x = tid
            | Modeswitch.Start_after_state { task; _ } -> task = tid
            | Modeswitch.Stop _ | Modeswitch.Send_state _ -> false)
          all_actions
      in
      check_bool (Printf.sprintf "task %d restarts elsewhere" tid) true started)
    tasks_on_4

let test_diff_no_state_from_faulty_node () =
  let s = strategy () in
  let from_plan = Planner.initial_plan s in
  let to_plan = Option.get (Planner.plan_for s ~faulty:[ 4 ]) in
  List.iter
    (fun node ->
      List.iter
        (function
          | Modeswitch.Start_after_state { from_node; _ } ->
            check_bool "never waits on state from the faulty node" false (from_node = 4)
          | Modeswitch.Send_state { to_node; _ } ->
            check_bool "never ships state to the faulty node" false (to_node = 4)
          | Modeswitch.Stop _ | Modeswitch.Start_fresh _ -> ())
        (Modeswitch.diff ~node ~from_plan ~to_plan))
    (Btr_net.Topology.nodes (Planner.topology s))

let test_diff_identity () =
  let s = strategy () in
  let p = Planner.initial_plan s in
  List.iter
    (fun node ->
      check_int "no actions for identical plans" 0
        (List.length (Modeswitch.diff ~node ~from_plan:p ~to_plan:p)))
    (Btr_net.Topology.nodes (Planner.topology s))

let test_diff_send_matches_start () =
  let s = strategy () in
  let from_plan = Planner.initial_plan s in
  let to_plan = Option.get (Planner.plan_for s ~faulty:[ 2 ]) in
  let nodes = Btr_net.Topology.nodes (Planner.topology s) in
  let all = List.concat_map (fun node -> Modeswitch.diff ~node ~from_plan ~to_plan) nodes in
  List.iter
    (function
      | Modeswitch.Start_after_state { task; from_node; bytes } ->
        check_bool "a matching Send_state exists" true
          (List.exists
             (function
               | Modeswitch.Send_state { task = t2; bytes = b2; _ } ->
                 t2 = task && b2 = bytes
               | _ -> false)
             (Modeswitch.diff ~node:from_node ~from_plan ~to_plan))
      | _ -> ())
    all

(* Fault scripts *)

let test_sequential_attack () =
  let script =
    Fault.sequential_attack ~nodes:[ 3; 1; 4 ] ~start:(Time.ms 100)
      ~gap:(Time.ms 250) Fault.Crash
  in
  check_int "three events" 3 (List.length script);
  let times = List.map (fun e -> e.Fault.at) script in
  Alcotest.(check (list int)) "spaced by the gap"
    [ Time.ms 100; Time.ms 350; Time.ms 600 ] times;
  check_bool "behaviour names exist" true
    (List.for_all (fun b -> String.length (Fault.behavior_name b) > 0) Fault.all_behaviors)

let suite =
  [
    ("fault set is grow-only", `Quick, test_fault_set_grow_only);
    ("fault set normalizes paths", `Quick, test_fault_set_paths);
    ("fault set union", `Quick, test_fault_set_union);
    ("diff restarts everything the faulty node hosted", `Quick, test_diff_covers_the_moved_tasks);
    ("diff never involves the faulty node in state transfer", `Quick, test_diff_no_state_from_faulty_node);
    ("diff of identical plans is empty", `Quick, test_diff_identity);
    ("send/start state actions pair up", `Quick, test_diff_send_matches_start);
    ("sequential attack script", `Quick, test_sequential_attack);
    QCheck_alcotest.to_alcotest prop_fault_set_converges;
  ]
