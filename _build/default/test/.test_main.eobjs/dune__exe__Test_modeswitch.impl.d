test/test_modeswitch.ml: Alcotest Array Btr_fault Btr_modeswitch Btr_net Btr_planner Btr_util Btr_workload Gen Generators List Option Printf QCheck QCheck_alcotest Rng String Time
