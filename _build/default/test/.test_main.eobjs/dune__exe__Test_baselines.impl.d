test/test_baselines.ml: Alcotest Btr Btr_baselines Btr_fault Btr_net Btr_util Btr_workload Float List Printf Stdlib Time
