test/test_crypto.ml: Alcotest Auth Btr_crypto Int64 QCheck QCheck_alcotest
