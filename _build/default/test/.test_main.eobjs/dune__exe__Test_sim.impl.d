test/test_sim.ml: Alcotest Btr_sim Btr_util Gen Int List QCheck QCheck_alcotest Rng Time
