test/test_workload.ml: Alcotest Btr_util Btr_workload Generators Graph List QCheck QCheck_alcotest Rng Task Time
