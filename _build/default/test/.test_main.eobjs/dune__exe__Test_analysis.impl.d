test/test_analysis.ml: Alcotest Btr_sched Btr_util List QCheck QCheck_alcotest Time
