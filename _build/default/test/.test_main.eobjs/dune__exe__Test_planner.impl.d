test/test_planner.ml: Alcotest Btr_net Btr_planner Btr_sched Btr_util Btr_workload Fun Generators Graph Int List QCheck QCheck_alcotest Rng String Task Time
