test/test_detect.ml: Alcotest Btr_detect Btr_evidence Btr_util Gen Int List QCheck QCheck_alcotest Time
