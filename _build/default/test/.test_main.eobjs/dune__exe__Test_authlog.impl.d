test/test_authlog.ml: Alcotest Btr Btr_crypto Btr_evidence Btr_fault Btr_net Btr_util Btr_workload Gen Int64 List Printf QCheck QCheck_alcotest String Time
