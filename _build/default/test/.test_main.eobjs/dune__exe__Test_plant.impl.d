test/test_plant.ml: Alcotest Btr_plant Btr_util Float Plant QCheck QCheck_alcotest Time
