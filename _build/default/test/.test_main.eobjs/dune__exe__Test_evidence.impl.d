test/test_evidence.ml: Alcotest Btr_crypto Btr_evidence Btr_util List QCheck QCheck_alcotest String Time
