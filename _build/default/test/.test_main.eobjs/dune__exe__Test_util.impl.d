test/test_util.ml: Alcotest Btr_util Float Gen Int List Pheap QCheck QCheck_alcotest Rng Stats Stdlib String Table Time
