test/test_sched.ml: Alcotest Btr_sched Btr_util Btr_workload Generators Graph List Option QCheck QCheck_alcotest Rng Schedule Task Time
