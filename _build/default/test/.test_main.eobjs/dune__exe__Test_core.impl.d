test/test_core.ml: Alcotest Btr Btr_net Btr_planner Btr_util Btr_workload Int64 List Option Time
