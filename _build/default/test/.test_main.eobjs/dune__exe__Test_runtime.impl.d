test/test_runtime.ml: Alcotest Btr Btr_evidence Btr_fault Btr_net Btr_planner Btr_util Btr_workload List Printf QCheck QCheck_alcotest String Time
