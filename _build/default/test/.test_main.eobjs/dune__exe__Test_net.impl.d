test/test_net.ml: Alcotest Btr_net Btr_sim Btr_util List Net QCheck QCheck_alcotest Stdlib Time Topology
