open Btr_util
open Btr_plant

let check_bool = Alcotest.(check bool)

(* Run a plant under periodic control, with an optional outage window
   during which the controller stops updating the input. *)
let run_controlled ?(outage = None) ~model ~horizon ~ctl_period () =
  let m = model () in
  let p = Plant.create m ~dt:(Time.ms 1) in
  let ctl = Plant.Controller.default_for m in
  let dt_s = Time.to_sec_f ctl_period in
  let rec loop t =
    if Time.compare t horizon >= 0 then ()
    else begin
      Plant.advance p ~until:t;
      let controlled =
        match outage with
        | Some (o_start, o_end) -> Time.compare t o_start < 0 || Time.compare t o_end >= 0
        | None -> true
      in
      if controlled then begin
        let u = Plant.Controller.compute ctl ~dt_s ~measurement:(Plant.state p) in
        Plant.set_input p u
      end;
      loop (Time.add t ctl_period)
    end
  in
  loop Time.zero;
  Plant.advance p ~until:horizon;
  p

let test_pendulum_stabilizes () =
  let p =
    run_controlled ~model:Plant.inverted_pendulum ~horizon:(Time.sec 5)
      ~ctl_period:(Time.ms 20) ()
  in
  check_bool "stays in envelope" true (Time.equal (Plant.time_outside_envelope p) Time.zero);
  check_bool "converges near upright" true (Float.abs (Plant.output p) < 0.02)

let test_pendulum_diverges_without_control () =
  let m = Plant.inverted_pendulum () in
  let p = Plant.create m ~dt:(Time.ms 1) in
  Plant.advance p ~until:(Time.sec 5);
  check_bool "leaves envelope uncontrolled" false (Plant.in_envelope p);
  check_bool "fails hard eventually" true (Plant.failed p)

let test_pendulum_tolerates_short_outage () =
  let p =
    run_controlled
      ~outage:(Some (Time.sec 1, Time.add (Time.sec 1) (Time.ms 150)))
      ~model:Plant.inverted_pendulum ~horizon:(Time.sec 5)
      ~ctl_period:(Time.ms 20) ()
  in
  check_bool "150ms outage tolerated" true
    (Time.equal (Plant.time_outside_envelope p) Time.zero)

let test_pendulum_killed_by_long_outage () =
  (* Outage starts at 100ms, while the pendulum is still well away from
     the (unstable) equilibrium; the held control input then drives it
     out of the envelope well before control returns at t = 3s. *)
  let p =
    run_controlled
      ~outage:(Some (Time.ms 100, Time.sec 3))
      ~model:Plant.inverted_pendulum ~horizon:(Time.sec 4)
      ~ctl_period:(Time.ms 20) ()
  in
  check_bool "long outage exceeds inertia" true
    (Time.compare (Plant.time_outside_envelope p) Time.zero > 0)

let test_vessel_five_second_rule () =
  (* The pressure vessel is the "five-second" plant: even a 5s outage
     with the valve shut keeps pressure under the envelope... *)
  let p =
    run_controlled
      ~outage:(Some (Time.sec 2, Time.sec 7))
      ~model:(fun () -> Plant.pressure_vessel ())
      ~horizon:(Time.sec 20) ~ctl_period:(Time.ms 50) ()
  in
  check_bool "5s outage tolerated" true
    (Time.equal (Plant.time_outside_envelope p) Time.zero);
  (* ...but a 30s outage is not. *)
  let p2 =
    run_controlled
      ~outage:(Some (Time.sec 2, Time.sec 32))
      ~model:(fun () -> Plant.pressure_vessel ())
      ~horizon:(Time.sec 40) ~ctl_period:(Time.ms 50) ()
  in
  check_bool "30s outage ruptures" true
    (Time.compare (Plant.time_outside_envelope p2) Time.zero > 0)

let test_cruise_control_holds_speed () =
  let p =
    run_controlled
      ~model:(fun () -> Plant.cruise_control ())
      ~horizon:(Time.sec 10) ~ctl_period:(Time.ms 100) ()
  in
  check_bool "speed in envelope" true
    (Time.equal (Plant.time_outside_envelope p) Time.zero);
  check_bool "near set point" true (Float.abs (Plant.output p -. 30.0) < 1.0)

let test_excursion_monotone_in_outage () =
  let excursion outage_ms =
    let p =
      run_controlled
        ~outage:(Some (Time.sec 1, Time.add (Time.sec 1) (Time.ms outage_ms)))
        ~model:Plant.inverted_pendulum ~horizon:(Time.sec 3)
        ~ctl_period:(Time.ms 20) ()
    in
    Plant.max_excursion p
  in
  let e0 = excursion 0 and e100 = excursion 100 and e300 = excursion 300 in
  check_bool "longer outage, larger excursion" true (e0 <= e100 && e100 <= e300)

let test_input_hold () =
  let m = Plant.pressure_vessel () in
  let p = Plant.create m ~dt:(Time.ms 10) in
  Plant.set_input p 1.0;
  Alcotest.(check (float 1e-9)) "input holds" 1.0 (Plant.input p);
  let before = Plant.output p in
  Plant.advance p ~until:(Time.sec 1);
  check_bool "valve open drains pressure" true (Plant.output p < before)

let test_advance_is_incremental () =
  let m = Plant.cruise_control () in
  let a = Plant.create m ~dt:(Time.ms 1) in
  let b = Plant.create m ~dt:(Time.ms 1) in
  Plant.set_input a 2000.0;
  Plant.set_input b 2000.0;
  Plant.advance a ~until:(Time.sec 2);
  Plant.advance b ~until:(Time.sec 1);
  Plant.advance b ~until:(Time.sec 2);
  Alcotest.(check (float 1e-9)) "split advance equals one advance"
    (Plant.output a) (Plant.output b)

let prop_pendulum_envelope_distance_consistent =
  QCheck.Test.make
    ~name:"envelope distance > 1 exactly when outside envelope" ~count:200
    QCheck.(pair (float_range (-1.0) 1.0) (float_range (-2.0) 2.0))
    (fun (theta, omega) ->
      let m = Plant.inverted_pendulum () in
      let state = [| theta; omega |] in
      let inside = m.Plant.in_envelope state in
      let d = m.Plant.envelope_distance state in
      if inside then d <= 1.0 +. 1e-9 else d > 1.0 -. 1e-9)

let suite =
  [
    ("pendulum stabilizes under control", `Quick, test_pendulum_stabilizes);
    ("pendulum diverges without control", `Quick, test_pendulum_diverges_without_control);
    ("pendulum tolerates a short outage", `Quick, test_pendulum_tolerates_short_outage);
    ("pendulum lost after a long outage", `Quick, test_pendulum_killed_by_long_outage);
    ("pressure vessel obeys the five-second rule", `Quick, test_vessel_five_second_rule);
    ("cruise control holds speed", `Quick, test_cruise_control_holds_speed);
    ("excursion grows with outage length", `Quick, test_excursion_monotone_in_outage);
    ("zero-order hold input", `Quick, test_input_hold);
    ("advance is incremental", `Quick, test_advance_is_incremental);
    QCheck_alcotest.to_alcotest prop_pendulum_envelope_distance_consistent;
  ]
