open Btr_util
module Detect = Btr_detect.Detect
module Evidence = Btr_evidence.Evidence

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_path_admissibility () =
  let s accused =
    {
      Evidence.accused;
      fault_class = Evidence.Omission;
      detector = 2;
      period = 0;
      detected_at = 0;
      detail = "";
    }
  in
  check_bool "own path ok" true
    (Detect.path_statement_admissible (s (Evidence.path 2 5)));
  check_bool "own path ok (other end)" true
    (Detect.path_statement_admissible (s (Evidence.path 5 2)));
  check_bool "third-party path rejected" false
    (Detect.path_statement_admissible (s (Evidence.path 4 5)));
  check_bool "node accusations unaffected" true
    (Detect.path_statement_admissible (s (Evidence.Node 9)))

(* Watchdog *)

let test_watchdog_on_time () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 1) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  check_bool "on-time arrival is quiet" true
    (Detect.Watchdog.note_arrival w ~flow:7 ~period:0 ~at:(Time.ms 9) = None);
  Alcotest.(check (list (triple int int int)))
    "nothing overdue" []
    (Detect.Watchdog.overdue w ~now:(Time.ms 100))

let test_watchdog_late () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 1) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  match Detect.Watchdog.note_arrival w ~flow:7 ~period:0 ~at:(Time.ms 14) with
  | Some l ->
    check_int "from node" 3 l.Detect.Watchdog.from_node;
    check_int "lateness beyond margin" (Time.ms 3) l.Detect.Watchdog.lateness
  | None -> Alcotest.fail "expected lateness"

let test_watchdog_margin_absorbs () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 2) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  check_bool "within margin" true
    (Detect.Watchdog.note_arrival w ~flow:7 ~period:0 ~at:(Time.ms 11) = None)

let test_watchdog_overdue_once () =
  let w = Detect.Watchdog.create ~node:1 ~margin:(Time.ms 1) () in
  Detect.Watchdog.expect w ~flow:7 ~period:0 ~from_node:3 ~deadline:(Time.ms 10);
  Detect.Watchdog.expect w ~flow:8 ~period:0 ~from_node:4 ~deadline:(Time.ms 10);
  check_bool "not due before deadline" true
    (Detect.Watchdog.overdue w ~now:(Time.ms 10) = []);
  check_int "both overdue" 2 (List.length (Detect.Watchdog.overdue w ~now:(Time.ms 12)));
  check_int "reported once" 0 (List.length (Detect.Watchdog.overdue w ~now:(Time.ms 20)))

let test_watchdog_unexpected_arrival () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero () in
  check_bool "unknown flow ignored" true
    (Detect.Watchdog.note_arrival w ~flow:99 ~period:0 ~at:(Time.ms 1) = None)

let test_watchdog_expect_idempotent () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero () in
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:2 ~deadline:(Time.ms 5);
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:9 ~deadline:(Time.ms 50);
  match Detect.Watchdog.overdue w ~now:(Time.ms 10) with
  | [ (1, 0, 2) ] -> ()
  | l -> Alcotest.failf "expected the first registration, got %d entries" (List.length l)

let test_watchdog_strikes () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero ~strikes:3 () in
  let miss flow =
    Detect.Watchdog.expect w ~flow ~period:0 ~from_node:7 ~deadline:(Time.ms 10);
    Detect.Watchdog.overdue w ~now:(Time.ms 20)
  in
  Alcotest.(check (list (triple int int int))) "first miss silent" [] (miss 1);
  Alcotest.(check (list (triple int int int))) "second miss silent" [] (miss 2);
  Alcotest.(check (list (triple int int int)))
    "third strike reports" [ (3, 0, 7) ] (miss 3);
  Alcotest.(check (list (triple int int int)))
    "and keeps reporting afterwards" [ (4, 0, 7) ] (miss 4)

let test_watchdog_strikes_per_sender () =
  let w = Detect.Watchdog.create ~node:1 ~margin:Time.zero ~strikes:2 () in
  Detect.Watchdog.expect w ~flow:1 ~period:0 ~from_node:7 ~deadline:(Time.ms 1);
  Detect.Watchdog.expect w ~flow:2 ~period:0 ~from_node:8 ~deadline:(Time.ms 1);
  check_bool "one miss each: nobody reported" true
    (Detect.Watchdog.overdue w ~now:(Time.ms 5) = []);
  Detect.Watchdog.expect w ~flow:1 ~period:1 ~from_node:7 ~deadline:(Time.ms 11);
  Alcotest.(check (list (triple int int int)))
    "7 crosses its own threshold" [ (1, 1, 7) ]
    (Detect.Watchdog.overdue w ~now:(Time.ms 15))

(* Attribution *)

let test_attribution_threshold () =
  let a = Detect.Attribution.create ~threshold:2 in
  Alcotest.(check (list int)) "one path: nobody" [] (Detect.Attribution.note_path a ~a:4 ~b:1);
  Alcotest.(check (list int))
    "second distinct counterpart attributes node 4" [ 4 ]
    (Detect.Attribution.note_path a ~a:4 ~b:2);
  check_bool "attributed" true (Detect.Attribution.is_attributed a 4);
  check_bool "counterparties tracked" true
    (List.sort Int.compare (Detect.Attribution.counterparties a 4) = [ 1; 2 ])

let test_attribution_duplicate_paths_dont_count () =
  let a = Detect.Attribution.create ~threshold:2 in
  ignore (Detect.Attribution.note_path a ~a:4 ~b:1);
  ignore (Detect.Attribution.note_path a ~a:4 ~b:1);
  ignore (Detect.Attribution.note_path a ~a:1 ~b:4);
  check_bool "same path repeated never attributes" false
    (Detect.Attribution.is_attributed a 4)

let test_attribution_no_false_positive_with_threshold_f1 () =
  (* f = 1, threshold 2: a correct node facing one faulty counterpart
     never crosses the threshold, however many declarations repeat. *)
  let a = Detect.Attribution.create ~threshold:2 in
  for _ = 1 to 10 do
    ignore (Detect.Attribution.note_path a ~a:0 ~b:9)
  done;
  check_bool "victim safe" false (Detect.Attribution.is_attributed a 0);
  check_bool "attacker not yet attributable either" false
    (Detect.Attribution.is_attributed a 9);
  (* The attacker omits toward a second counterpart: now it crosses. *)
  Alcotest.(check (list int)) "attacker attributed" [ 9 ]
    (Detect.Attribution.note_path a ~a:1 ~b:9)

let test_attribution_reports_each_node_once () =
  let a = Detect.Attribution.create ~threshold:1 in
  Alcotest.(check (list int)) "both endpoints at threshold 1" [ 4; 1 ]
    (Detect.Attribution.note_path a ~a:4 ~b:1);
  Alcotest.(check (list int))
    "4 not re-reported; its new counterpart 2 crosses threshold 1" [ 2 ]
    (Detect.Attribution.note_path a ~a:4 ~b:2)

let prop_attribution_needs_threshold_distinct =
  QCheck.Test.make
    ~name:"a node is attributed iff it saw >= threshold distinct counterparties"
    ~count:200
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(1 -- 20) (int_bound 5)))
    (fun (threshold, others) ->
      let a = Detect.Attribution.create ~threshold in
      List.iter (fun b -> ignore (Detect.Attribution.note_path a ~a:100 ~b)) others;
      let distinct = List.length (List.sort_uniq Int.compare others) in
      Detect.Attribution.is_attributed a 100 = (distinct >= threshold))

let suite =
  [
    ("path admissibility", `Quick, test_path_admissibility);
    ("watchdog: on-time arrivals are quiet", `Quick, test_watchdog_on_time);
    ("watchdog: lateness measured beyond margin", `Quick, test_watchdog_late);
    ("watchdog: margin absorbs jitter", `Quick, test_watchdog_margin_absorbs);
    ("watchdog: overdue reported exactly once", `Quick, test_watchdog_overdue_once);
    ("watchdog: unexpected arrivals ignored", `Quick, test_watchdog_unexpected_arrival);
    ("watchdog: expectations are idempotent", `Quick, test_watchdog_expect_idempotent);
    ("watchdog: strike threshold", `Quick, test_watchdog_strikes);
    ("watchdog: strikes counted per sender", `Quick, test_watchdog_strikes_per_sender);
    ("attribution: threshold of distinct counterparties", `Quick, test_attribution_threshold);
    ("attribution: duplicates don't count", `Quick, test_attribution_duplicate_paths_dont_count);
    ("attribution: no false positives at f+1", `Quick, test_attribution_no_false_positive_with_threshold_f1);
    ("attribution: reported once", `Quick, test_attribution_reports_each_node_once);
    QCheck_alcotest.to_alcotest prop_attribution_needs_threshold_distinct;
  ]
