open Btr_util
module Fault = Btr_fault.Fault
module Exec = Btr_baselines.Exec
module Topology = Btr_net.Topology

let check_bool = Alcotest.(check bool)

let run ?(style = Exec.Unreplicated) ?(script = []) ?(seed = 1)
    ?(horizon = Time.sec 1) () =
  Exec.run ~seed
    ~workload:(Btr_workload.Generators.avionics ~n_nodes:6)
    ~topology:
      (Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
    ~style ~script ~horizon ()

let corrupt3 = Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs
let crash3 = Fault.single ~at:(Time.ms 250) ~node:3 Fault.Crash

let all_styles =
  [
    Exec.Unreplicated;
    Exec.Pbft { f = 1 };
    Exec.Zz { f = 1; timeout = Time.ms 5 };
    Exec.Selfstab { audit_interval = Time.ms 100; expose_prob = 0.5 };
  ]

let test_fault_free_all_styles () =
  List.iter
    (fun style ->
      let t = run ~style () in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s fault-free correct" (Exec.style_name style))
        1.0
        (Btr.Metrics.correct_fraction (Exec.metrics t)))
    all_styles

let test_replication_cost_ordering () =
  let factor style = Exec.replication_factor (run ~style ()) in
  let unrep = factor Exec.Unreplicated in
  let zz = factor (Exec.Zz { f = 1; timeout = Time.ms 5 }) in
  let pbft = factor (Exec.Pbft { f = 1 }) in
  check_bool "no-ft ~1x" true (Float.abs (unrep -. 1.0) < 0.05);
  check_bool "zz ~f+1 = 2x" true (zz > 1.5 && zz < 3.2);
  check_bool "pbft ~3f+1 = 4x" true (pbft > 3.2);
  check_bool "ordering holds" true (unrep < zz && zz < pbft)

let test_cpu_ordering () =
  let cpu style = Exec.cpu_utilization (run ~style ()) in
  check_bool "BFT burns more CPU than running bare" true
    (cpu (Exec.Pbft { f = 1 }) > 2.0 *. cpu Exec.Unreplicated)

let test_pbft_masks_corruption () =
  let t = run ~style:(Exec.Pbft { f = 1 }) ~script:corrupt3 () in
  Alcotest.(check (float 1e-9)) "pbft masks wrong values" 1.0
    (Btr.Metrics.correct_fraction (Exec.metrics t))

let test_zz_masks_corruption () =
  let t = run ~style:(Exec.Zz { f = 1; timeout = Time.ms 5 }) ~script:corrupt3 () in
  Alcotest.(check (float 1e-9)) "zz masks wrong values via standby" 1.0
    (Btr.Metrics.correct_fraction (Exec.metrics t))

let test_noft_stays_broken () =
  let t = run ~style:Exec.Unreplicated ~script:corrupt3 () in
  let m = Exec.metrics t in
  check_bool "unreplicated never recovers" true
    (Btr.Metrics.correct_fraction m < 0.9);
  (* Incorrect output runs to the end of the horizon. *)
  let recoveries = Btr.Metrics.recovery_times m in
  check_bool "recovery takes the whole remaining horizon" true
    (List.exists (fun r -> Time.compare r (Time.ms 700) >= 0) recoveries)

let test_replicas_absorb_crash () =
  List.iter
    (fun style ->
      let t = run ~style ~script:crash3 () in
      let m = Exec.metrics t in
      (* Flows whose endpoints are pinned to the crashed node are lost
         physically; everything else must be masked. *)
      check_bool
        (Printf.sprintf "%s keeps most outputs" (Exec.style_name style))
        true
        (Btr.Metrics.correct_fraction m > 0.75))
    [ Exec.Pbft { f = 1 }; Exec.Zz { f = 1; timeout = Time.ms 5 } ]

let test_selfstab_eventually_recovers () =
  (* With expose probability 0.5 per 100ms audit, 20 seeds make a miss
     of every audit astronomically unlikely in a 2s run. *)
  let recovered = ref 0 in
  for seed = 1 to 10 do
    let t =
      run ~seed
        ~style:(Exec.Selfstab { audit_interval = Time.ms 100; expose_prob = 0.5 })
        ~script:corrupt3 ~horizon:(Time.sec 2) ()
    in
    let m = Exec.metrics t in
    if Btr.Metrics.correct_fraction m > 0.9 then incr recovered
  done;
  check_bool "most seeds recover" true (!recovered >= 8)

let test_selfstab_has_no_bound () =
  (* Across seeds, recovery times vary (geometric): the spread between
     fastest and slowest exceeds any single audit interval. *)
  let times =
    List.filter_map
      (fun seed ->
        let t =
          run ~seed
            ~style:
              (Exec.Selfstab { audit_interval = Time.ms 100; expose_prob = 0.3 })
            ~script:corrupt3 ~horizon:(Time.sec 2) ()
        in
        match Btr.Metrics.recovery_times (Exec.metrics t) with
        | [ r ] -> Some (Time.to_sec_f r)
        | _ -> None)
      (List.init 12 (fun i -> i + 1))
  in
  let lo = List.fold_left Stdlib.min Float.infinity times in
  let hi = List.fold_left Stdlib.max Float.neg_infinity times in
  check_bool "recovery time spread > one audit interval" true (hi -. lo > 0.1)

let test_pbft_latency_exceeds_unreplicated () =
  let p50 style =
    let t = run ~style () in
    match (Exec.net_stats t).Btr_net.Net.data_latencies with
    | [] -> 0.0
    | l -> Btr_util.Stats.percentile l 50.0
  in
  ignore (p50 Exec.Unreplicated);
  (* End-to-end sink arrival is the meaningful number: compare last
     delivery arrival per period via deadline misses under a tightened
     deadline instead — here simply check the agreement traffic exists. *)
  let t_pbft = run ~style:(Exec.Pbft { f = 1 }) () in
  let t_bare = run ~style:Exec.Unreplicated () in
  check_bool "pbft sends much more traffic" true
    (Exec.bytes_sent t_pbft > 2 * Exec.bytes_sent t_bare)

let test_determinism () =
  let go () =
    let t = run ~style:(Exec.Pbft { f = 1 }) ~script:corrupt3 () in
    ( Btr.Metrics.correct_fraction (Exec.metrics t),
      Exec.bytes_sent t,
      Exec.replication_factor t )
  in
  check_bool "deterministic per seed" true (go () = go ())

let suite =
  [
    ("all styles perfect when fault-free", `Quick, test_fault_free_all_styles);
    ("replication cost ordering 1 < f+1 < 3f+1", `Quick, test_replication_cost_ordering);
    ("cpu cost ordering", `Quick, test_cpu_ordering);
    ("pbft masks corruption", `Quick, test_pbft_masks_corruption);
    ("zz masks corruption via standbys", `Quick, test_zz_masks_corruption);
    ("unreplicated never recovers", `Quick, test_noft_stays_broken);
    ("replicated styles absorb a crash", `Quick, test_replicas_absorb_crash);
    ("self-stabilization eventually recovers", `Slow, test_selfstab_eventually_recovers);
    ("self-stabilization has no bound", `Slow, test_selfstab_has_no_bound);
    ("pbft pays in traffic", `Quick, test_pbft_latency_exceeds_unreplicated);
    ("baseline runs are deterministic", `Quick, test_determinism);
  ]
