open Btr_util
module Auth = Btr_crypto.Auth
module Authlog = Btr_evidence.Authlog
module Fault = Btr_fault.Fault

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_entries =
  [
    Authlog.Sent { flow = 1; period = 0; digest = 11L };
    Authlog.Received { flow = 2; period = 0; digest = 22L; from_node = 4 };
    Authlog.Executed { task = 7; period = 0; output_digest = 33L };
  ]

let mk_log () =
  let auth = Auth.create () in
  let key = Auth.gen_key auth ~owner:3 in
  let log = Authlog.create ~owner:3 in
  List.iter (Authlog.append log) sample_entries;
  (auth, key, log)

let test_append_and_head () =
  let _, _, log = mk_log () in
  check_int "length" 3 (Authlog.length log);
  check_int "entries in order" 3 (List.length (Authlog.entries log));
  check_bool "entries round-trip" true (Authlog.entries log = sample_entries);
  let empty = Authlog.create ~owner:0 in
  check_bool "head moves with appends" false
    (Int64.equal (Authlog.head log) (Authlog.head empty))

let test_encode_injective () =
  let variants =
    [
      Authlog.Sent { flow = 1; period = 0; digest = 11L };
      Authlog.Sent { flow = 1; period = 1; digest = 11L };
      Authlog.Sent { flow = 2; period = 0; digest = 11L };
      Authlog.Received { flow = 1; period = 0; digest = 11L; from_node = 0 };
      Authlog.Executed { task = 1; period = 0; output_digest = 11L };
    ]
  in
  check_int "distinct encodings" (List.length variants)
    (List.length
       (List.sort_uniq String.compare (List.map Authlog.encode_entry variants)))

let test_checkpoint_sign_verify () =
  let auth, key, log = mk_log () in
  let cp = Authlog.checkpoint log auth key in
  check_bool "verifies" true (Authlog.verify_checkpoint auth cp);
  check_int "commits to current length" 3 cp.Authlog.cp_length;
  let other = Auth.gen_key auth ~owner:9 in
  Alcotest.check_raises "cannot checkpoint another node's log"
    (Invalid_argument "Authlog.checkpoint: secret does not belong to the log owner")
    (fun () -> ignore (Authlog.checkpoint log auth other))

let test_audit_consistent () =
  let auth, key, log = mk_log () in
  let cp = Authlog.checkpoint log auth key in
  check_bool "honest log audits clean" true
    (Authlog.audit cp (Authlog.entries log) = Authlog.Consistent);
  (* Appending after the checkpoint is fine: audit covers the prefix. *)
  Authlog.append log (Authlog.Sent { flow = 9; period = 1; digest = 99L });
  check_bool "longer log still consistent with old checkpoint" true
    (Authlog.audit cp (Authlog.entries log) = Authlog.Consistent)

let test_audit_detects_tampering () =
  let auth, key, log = mk_log () in
  let cp = Authlog.checkpoint log auth key in
  let tampered =
    List.map
      (function
        | Authlog.Sent { flow; period; digest = _ } ->
          Authlog.Sent { flow; period; digest = 666L }
        | e -> e)
      (Authlog.entries log)
  in
  (match Authlog.audit cp tampered with
  | Authlog.Tampered _ -> ()
  | _ -> Alcotest.fail "tampering must be detected");
  (* Reordering is also tampering. *)
  match Authlog.audit cp (List.rev (Authlog.entries log)) with
  | Authlog.Tampered _ -> ()
  | _ -> Alcotest.fail "reordering must be detected"

let test_audit_detects_truncation () =
  let auth, key, log = mk_log () in
  let cp = Authlog.checkpoint log auth key in
  match Authlog.audit cp (List.filteri (fun i _ -> i < 2) (Authlog.entries log)) with
  | Authlog.Truncated -> ()
  | _ -> Alcotest.fail "truncation must be detected"

(* Runtime integration: every correct node's log audits clean against
   its own signed checkpoints after a faulty run. *)
let test_runtime_logs_audit_clean () =
  let s =
    Btr.Scenario.spec
      ~workload:(Btr_workload.Generators.avionics ~n_nodes:6)
      ~topology:
        (Btr_net.Topology.fully_connected ~n:6 ~bandwidth_bps:10_000_000
           ~latency:(Time.us 50))
      ~f:1 ~recovery_bound:(Time.ms 200)
      ~script:(Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs)
      ~horizon:(Time.ms 600) ()
  in
  match Btr.Scenario.run s with
  | Error e -> Alcotest.failf "plan: %a" Btr.Scenario.Planner.pp_error e
  | Ok rt ->
    let auth = Btr.Runtime.auth rt in
    List.iter
      (fun node ->
        let log, checkpoints = Btr.Runtime.node_log rt node in
        check_bool
          (Printf.sprintf "node %d produced checkpoints" node)
          true (checkpoints <> []);
        List.iter
          (fun cp ->
            check_bool "checkpoint verifies" true (Authlog.verify_checkpoint auth cp);
            check_bool "log consistent with commitment" true
              (Authlog.audit cp (Authlog.entries log) = Authlog.Consistent))
          checkpoints)
      [ 0; 1; 2; 4; 5 ]

let prop_audit_roundtrip =
  QCheck.Test.make ~name:"audit accepts exactly the committed prefix" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (triple small_nat small_nat int64))
    (fun raw ->
      let auth = Auth.create () in
      let key = Auth.gen_key auth ~owner:0 in
      let log = Authlog.create ~owner:0 in
      List.iter
        (fun (flow, period, digest) ->
          Authlog.append log (Authlog.Sent { flow; period; digest }))
        raw;
      let cp = Authlog.checkpoint log auth key in
      Authlog.audit cp (Authlog.entries log) = Authlog.Consistent
      && Authlog.verify_checkpoint auth cp)

let suite =
  [
    ("append and head", `Quick, test_append_and_head);
    ("entry encoding injective", `Quick, test_encode_injective);
    ("checkpoint sign/verify", `Quick, test_checkpoint_sign_verify);
    ("audit: consistent logs pass", `Quick, test_audit_consistent);
    ("audit: tampering detected", `Quick, test_audit_detects_tampering);
    ("audit: truncation detected", `Quick, test_audit_detects_truncation);
    ("runtime: correct nodes' logs audit clean", `Quick, test_runtime_logs_audit_clean);
    QCheck_alcotest.to_alcotest prop_audit_roundtrip;
  ]
