open Btr_util
open Btr_workload
open Btr_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A transfer oracle: fixed cost per byte between distinct nodes. *)
let xfer_uniform ~us_per_byte ~src ~dst ~size_bytes =
  if src = dst then Some Time.zero else Some (Time.us (us_per_byte * size_bytes))

let xfer1 = xfer_uniform ~us_per_byte:1

let mk_flow ?deadline id p c size =
  { Graph.flow_id = id; producer = p; consumer = c; msg_size = size; deadline }

let chain_graph () =
  let src =
    Task.make ~id:0 ~name:"s" ~kind:Task.Source ~wcet:(Time.us 100) ~pinned:0 ()
  in
  let a = Task.make ~id:1 ~name:"a" ~wcet:(Time.ms 1) () in
  let b = Task.make ~id:2 ~name:"b" ~wcet:(Time.ms 1) () in
  let sink =
    Task.make ~id:3 ~name:"k" ~kind:Task.Sink ~wcet:(Time.us 100) ~pinned:1 ()
  in
  Graph.create ~period:(Time.ms 10)
    ~tasks:[ src; a; b; sink ]
    ~flows:
      [
        mk_flow 0 0 1 100;
        mk_flow 1 1 2 100;
        mk_flow 2 2 3 100 ~deadline:(Time.ms 9);
      ]

let place_all_chain = function 0 -> 0 | 1 -> 0 | 2 -> 1 | 3 -> 1 | _ -> assert false

let test_schedule_chain () =
  let g = chain_graph () in
  match Schedule.list_schedule g ~place:place_all_chain ~xfer:xfer1 with
  | Error f -> Alcotest.failf "unexpected failure: %a" Schedule.pp_failure f
  | Ok s ->
    check_int "two nodes used" 2 (List.length (Schedule.nodes s));
    (match Schedule.window s 2 with
    | Some (start, _) ->
      (* b runs on node 1; its input leaves a (finishes 1.1ms) + 100us
         transfer, so b starts at 1.2ms. *)
      check_int "b starts after transfer" (Time.us 1200) start
    | None -> Alcotest.fail "task 2 not scheduled");
    (match Schedule.validate s g ~xfer:xfer1 with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "validation: %s" msg)

let test_same_node_no_transfer () =
  let g = chain_graph () in
  let place = function 3 -> 1 | _ -> 0 in
  (* Node 1 unreachable? Using uniform xfer it is reachable. *)
  match Schedule.list_schedule g ~place ~xfer:xfer1 with
  | Error f -> Alcotest.failf "failure: %a" Schedule.pp_failure f
  | Ok s ->
    let _, f_a = Option.get (Schedule.window s 1) in
    let st_b, _ = Option.get (Schedule.window s 2) in
    check_int "b starts right after a on same node" f_a st_b

let test_overload_detected () =
  let src =
    Task.make ~id:0 ~name:"s" ~kind:Task.Source ~wcet:(Time.us 10) ~pinned:0 ()
  in
  let heavy1 = Task.make ~id:1 ~name:"h1" ~wcet:(Time.ms 6) () in
  let heavy2 = Task.make ~id:2 ~name:"h2" ~wcet:(Time.ms 6) () in
  let sink =
    Task.make ~id:3 ~name:"k" ~kind:Task.Sink ~wcet:(Time.us 10) ~pinned:0 ()
  in
  let g =
    Graph.create ~period:(Time.ms 10)
      ~tasks:[ src; heavy1; heavy2; sink ]
      ~flows:[ mk_flow 0 0 1 8; mk_flow 1 0 2 8; mk_flow 2 1 3 8; mk_flow 3 2 3 8 ]
  in
  match Schedule.list_schedule g ~place:(fun _ -> 0) ~xfer:xfer1 with
  | Error (Schedule.Overload { node = 0; _ }) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Schedule.pp_failure f
  | Ok _ -> Alcotest.fail "expected overload"

let test_deadline_miss_detected () =
  let g = chain_graph () in
  (* A 7ms transfer for the one inter-node hop puts the sink at 9.2ms:
     past its 9ms deadline but still inside the 10ms period. *)
  let slow ~src ~dst ~size_bytes =
    if src = dst then Some Time.zero else Some (Time.us (size_bytes * 70))
  in
  match Schedule.list_schedule g ~place:place_all_chain ~xfer:slow with
  | Error (Schedule.Deadline_miss { flow_id = 2; _ }) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Schedule.pp_failure f
  | Ok _ -> Alcotest.fail "expected deadline miss"

let test_no_route_detected () =
  let g = chain_graph () in
  let disconnected ~src ~dst ~size_bytes:_ =
    if src = dst then Some Time.zero else None
  in
  match Schedule.list_schedule g ~place:place_all_chain ~xfer:disconnected with
  | Error (Schedule.No_route _) -> ()
  | Error f -> Alcotest.failf "wrong failure: %a" Schedule.pp_failure f
  | Ok _ -> Alcotest.fail "expected no-route"

let test_utilization_and_makespan () =
  let g = chain_graph () in
  match Schedule.list_schedule g ~place:(fun _ -> 0) ~xfer:xfer1 with
  | Error _ -> Alcotest.fail "schedulable"
  | Ok s ->
    Alcotest.(check (float 1e-6))
      "node 0 utilization" 0.22
      (Schedule.node_utilization s 0);
    check_int "makespan = sum of wcets" (Time.us 2200) (Schedule.makespan s);
    check_bool "sink completion matches makespan" true
      (Schedule.sink_completion s g 2 = Some (Time.us 2200))

let prop_valid_schedules_for_random_workloads =
  QCheck.Test.make
    ~name:"list schedule on 1 node is always valid when it succeeds" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g =
        Generators.random_layered ~rng ~n_nodes:1 ~layers:3 ~width:3
          ~utilization_target:0.4 ()
      in
      match Schedule.list_schedule g ~place:(fun _ -> 0) ~xfer:xfer1 with
      | Error _ -> QCheck.assume_fail ()
      | Ok s -> Schedule.validate s g ~xfer:xfer1 = Ok ())

let prop_round_robin_placement_valid =
  QCheck.Test.make
    ~name:"round-robin placement across 4 nodes validates when schedulable"
    ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g =
        Generators.random_layered ~rng ~n_nodes:4 ~layers:4 ~width:4
          ~utilization_target:1.2 ()
      in
      let place tid =
        match (Graph.task g tid).Task.pinned with Some n -> n | None -> tid mod 4
      in
      match Schedule.list_schedule g ~place ~xfer:xfer1 with
      | Error _ -> QCheck.assume_fail ()
      | Ok s -> Schedule.validate s g ~xfer:xfer1 = Ok ())

let suite =
  [
    ("chain schedules with transfers", `Quick, test_schedule_chain);
    ("no transfer cost on same node", `Quick, test_same_node_no_transfer);
    ("overload detected", `Quick, test_overload_detected);
    ("deadline miss detected", `Quick, test_deadline_miss_detected);
    ("no-route detected", `Quick, test_no_route_detected);
    ("utilization and makespan", `Quick, test_utilization_and_makespan);
    QCheck_alcotest.to_alcotest prop_valid_schedules_for_random_workloads;
    QCheck_alcotest.to_alcotest prop_round_robin_placement_valid;
  ]
