(* The E1–E9 experiment suite. The paper (HotOS'15) has no evaluation
   section; each experiment here operationalizes one quantitative claim
   from its text — see DESIGN.md §3 for the claim-to-experiment map and
   EXPERIMENTS.md for expected vs measured shapes. *)

open Btr_util
module Task = Btr_workload.Task
module Graph = Btr_workload.Graph
module Generators = Btr_workload.Generators
module Topology = Btr_net.Topology
module Net = Btr_net.Net
module Planner = Btr_planner.Planner
module Augment = Btr_planner.Augment
module Fault = Btr_fault.Fault
module Exec = Btr_baselines.Exec
module Plant = Btr_plant.Plant

let clique n = Topology.fully_connected ~n ~bandwidth_bps:10_000_000 ~latency:(Time.us 50)
let r_default = Time.ms 200

let spec ?(n = 6) ?(f = 1) ?(script = []) ?(horizon = Time.sec 1) ?seed
    ?behaviors ?tune () =
  Btr.Scenario.spec
    ~workload:(Generators.avionics ~n_nodes:n)
    ~topology:(clique n) ~f ~recovery_bound:r_default ~script ~horizon ?seed
    ?behaviors ?tune ()

let run_exn s =
  match Btr.Scenario.run s with
  | Ok rt -> rt
  | Error e -> Format.kasprintf failwith "plan failed: %a" Planner.pp_error e

(* Deploy without the Btr_check gate. Experiments that deliberately
   under-provision a resource (E8) measure what happens when a
   configuration the static verifier would reject runs anyway — the
   empirical counterpart of the verifier's prediction. *)
let run_unchecked ?(n = 6) ?(f = 1) ?(script = []) ?(horizon = Time.sec 1)
    ?tune () =
  match Btr.Scenario.run_unchecked (spec ~n ~f ~script ~horizon ?tune ()) with
  | Ok rt -> rt
  | Error e -> Format.kasprintf failwith "plan failed: %a" Planner.pp_error e

let pct x = Table.cell_pct (100.0 *. x)

(* When did the last correct node adopt a mode covering the injected
   fault? The gap from injection is the end-to-end reconfiguration
   latency (detection + distribution + transition). *)
let convergence_latency rt ~node ~at =
  let changes =
    List.filter
      (fun (_, _, mode) -> List.mem node mode)
      (Btr.Runtime.mode_changes rt)
  in
  match changes with
  | [] -> None
  | l -> Some (Time.sub (List.fold_left (fun acc (t, _, _) -> Time.max acc t) 0 l) at)

(* ------------------------------------------------------------------ *)
(* E1: replication & resource cost — "detection requires fewer
   replicas than masking" (§1).                                        *)

let e1 () =
  let table =
    Table.create ~title:"E1  Resource cost of protection (fault-free, avionics, 8 nodes)"
      ~header:[ "protocol"; "f"; "repl/task"; "cpu util"; "bytes/s"; "outputs ok" ]
  in
  let n = 8 in
  let horizon = Time.sec 1 in
  List.iter
    (fun f ->
      (* BTR: f+1 lanes plus one replay checker per protected task. *)
      let rt = run_exn (spec ~n ~f ~horizon ()) in
      let plan = Planner.initial_plan (Btr.Runtime.strategy rt) in
      let aug = plan.Planner.aug in
      let computes = List.length (Graph.compute_tasks aug.Augment.original) in
      let lanes =
        List.fold_left
          (fun acc (x : Task.t) ->
            acc + List.length (Augment.replicas_of aug x.id))
          0
          (Graph.compute_tasks aug.Augment.original)
      in
      let checkers = List.length (Augment.checkers aug) in
      let repl = float_of_int (lanes + checkers) /. float_of_int computes in
      let cpu =
        let nodes = Topology.nodes (clique n) in
        List.fold_left
          (fun acc nd ->
            acc +. Btr_sched.Schedule.node_utilization plan.Planner.schedule nd)
          0.0 nodes
        /. float_of_int (List.length nodes)
      in
      let bytes = (Btr.Runtime.net_stats rt).Net.bytes_sent in
      let ok = Btr.Metrics.correct_fraction (Btr.Runtime.metrics rt) in
      Table.add_row table
        [ "btr"; string_of_int f; Table.cell_f repl; Table.cell_f cpu;
          string_of_int bytes; pct ok ];
      (* Baselines on the same workload/topology. *)
      List.iter
        (fun style ->
          let t =
            Exec.run
              ~workload:(Generators.avionics ~n_nodes:n)
              ~topology:(clique n) ~style ~script:[] ~horizon ()
          in
          Table.add_row table
            [ Exec.style_name style; string_of_int f;
              Table.cell_f (Exec.replication_factor t);
              Table.cell_f (Exec.cpu_utilization t);
              string_of_int (Exec.bytes_sent t);
              pct (Btr.Metrics.correct_fraction (Exec.metrics t)) ])
        [ Exec.Zz { f; timeout = Time.ms 5 }; Exec.Pbft { f } ])
    [ 1; 2 ];
  let t0 =
    Exec.run
      ~workload:(Generators.avionics ~n_nodes:n)
      ~topology:(clique n) ~style:Exec.Unreplicated ~script:[] ~horizon ()
  in
  Table.add_row table
    [ "no-ft"; "-"; Table.cell_f (Exec.replication_factor t0);
      Table.cell_f (Exec.cpu_utilization t0); string_of_int (Exec.bytes_sent t0);
      pct (Btr.Metrics.correct_fraction (Exec.metrics t0)) ];
  Table.print table

(* E1b: what you choose to protect — the mixed-criticality knob the
   black-box baselines do not have (§1: "fine-grained responses").     *)

let e1b () =
  let table =
    Table.create
      ~title:"E1b Protection level ablation (btr, f=1, avionics, 8 nodes)"
      ~header:[ "protect >="; "repl/task"; "mean cpu util"; "protected outputs" ]
  in
  List.iter
    (fun level ->
      let tune c = { c with Planner.protect_level = level } in
      let rt = run_exn (spec ~n:8 ~tune ()) in
      let plan = Planner.initial_plan (Btr.Runtime.strategy rt) in
      let aug = plan.Planner.aug in
      let computes = List.length (Graph.compute_tasks aug.Augment.original) in
      let lanes =
        List.fold_left
          (fun acc (x : Task.t) -> acc + List.length (Augment.replicas_of aug x.id))
          0
          (Graph.compute_tasks aug.Augment.original)
      in
      let repl =
        float_of_int (lanes + List.length (Augment.checkers aug))
        /. float_of_int computes
      in
      let cpu =
        let nodes = Topology.nodes (clique 8) in
        List.fold_left
          (fun acc nd ->
            acc +. Btr_sched.Schedule.node_utilization plan.Planner.schedule nd)
          0.0 nodes
        /. float_of_int (List.length nodes)
      in
      let protected_count =
        List.length (Btr.Metrics.protected_flows (Btr.Runtime.metrics rt))
      in
      Table.add_row table
        [ Format.asprintf "%a" Task.pp_criticality level; Table.cell_f repl;
          Table.cell_f cpu;
          Printf.sprintf "%d of %d" protected_count
            (List.length (Graph.sink_flows (Planner.workload (Btr.Runtime.strategy rt)))) ])
    [ Task.Best_effort; Task.Medium; Task.High; Task.Safety_critical ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E2: bounded-time recovery per fault class vs Definition 3.1, and
   the unbounded tail of self-stabilization (§3, §3.1).                *)

let e2 () =
  let table =
    Table.create ~title:"E2  Measured recovery vs bound R = 200ms (single fault at t=250ms)"
      ~header:[ "system"; "fault"; "recovery"; "bound"; "within R" ]
  in
  let strategy_bound = ref Time.zero in
  List.iter
    (fun behavior ->
      let rt = run_exn (spec ~script:(Fault.single ~at:(Time.ms 250) ~node:3 behavior) ()) in
      strategy_bound :=
        (Planner.stats (Btr.Runtime.strategy rt)).Planner.worst_recovery;
      let recovery =
        match Btr.Metrics.recovery_times (Btr.Runtime.metrics rt) with
        | [ r ] -> r
        | _ -> Time.zero
      in
      Table.add_row table
        [ "btr"; Fault.behavior_name behavior; Time.to_string recovery;
          Time.to_string r_default;
          (if Time.compare recovery r_default <= 0 then "yes" else "NO") ])
    [
      Fault.Crash; Fault.Omit_outputs; Fault.Corrupt_outputs; Fault.Equivocate;
      Fault.Delay_outputs (Time.ms 8); Fault.Babble { bogus_per_period = 4 };
    ];
  (* Self-stabilization: same fault, 12 seeds; report the spread. *)
  let times =
    List.filter_map
      (fun seed ->
        let t =
          Exec.run ~seed
            ~workload:(Generators.avionics ~n_nodes:6)
            ~topology:(clique 6)
            ~style:(Exec.Selfstab { audit_interval = Time.ms 100; expose_prob = 0.3 })
            ~script:(Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs)
            ~horizon:(Time.sec 4) ()
        in
        match Btr.Metrics.recovery_times (Exec.metrics t) with
        | [ r ] -> Some (Time.to_sec_f r)
        | _ -> None)
      (List.init 12 (fun i -> i + 1))
  in
  (match Stats.summarize_opt times with
  | Some s ->
    Table.add_row table
      [ "self-stab"; "corrupt (12 seeds)";
        Printf.sprintf "p50=%.0fms max=%.0fms" (s.Stats.p50 *. 1e3) (s.Stats.max *. 1e3);
        "none"; "no bound" ]
  | None -> ());
  Table.print table;
  Printf.printf "   planner's offline worst-case recovery bound: %s\n\n"
    (Time.to_string !strategy_bound)

(* ------------------------------------------------------------------ *)
(* E3: the sequential attack — k faults, one every R, force at most
   k*R of incorrect output (§3).                                       *)

let e3 () =
  let table =
    Table.create ~title:"E3  Sequential attack: incorrect-output time vs k*R (R = 200ms)"
      ~header:[ "k (faulty nodes)"; "incorrect time"; "bound k*R"; "within" ]
  in
  List.iter
    (fun k ->
      let nodes = List.filteri (fun i _ -> i < k) [ 3; 1; 5 ] in
      let script =
        Fault.sequential_attack ~nodes ~start:(Time.ms 200) ~gap:r_default
          Fault.Corrupt_outputs
      in
      let rt = run_exn (spec ~n:8 ~f:k ~script ~horizon:(Time.sec 2) ()) in
      let bad = Btr.Metrics.incorrect_time (Btr.Runtime.metrics rt) in
      let bound = Time.mul r_default k in
      Table.add_row table
        [ string_of_int k; Time.to_string bad; Time.to_string bound;
          (if Time.compare bad bound <= 0 then "yes" else "NO") ])
    [ 1; 2; 3 ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E4: timeliness — fault-free deadline behaviour as the network gets
   slower (§1: BFT "tends to sacrifice liveness"), and incorrect
   output under attack.                                                *)

let e4 () =
  let table =
    Table.create
      ~title:"E4  Deadline misses vs link bandwidth (fault-free, avionics, 6 nodes)"
      ~header:[ "bandwidth"; "btr"; "no-ft"; "zz-lite"; "pbft-lite" ]
  in
  let horizon = Time.sec 1 in
  List.iter
    (fun bw ->
      let topo = Topology.fully_connected ~n:6 ~bandwidth_bps:bw ~latency:(Time.us 50) in
      let btr_cell =
        let s =
          Btr.Scenario.spec
            ~workload:(Generators.avionics ~n_nodes:6)
            ~topology:topo ~f:1 ~recovery_bound:r_default ~horizon ()
        in
        match Btr.Scenario.run s with
        | Ok rt ->
          pct (Btr.Metrics.deadline_miss_fraction (Btr.Runtime.metrics rt))
        | Error _ -> "unschedulable"
      in
      let baseline style =
        let t =
          Exec.run
            ~workload:(Generators.avionics ~n_nodes:6)
            ~topology:topo ~style ~script:[] ~horizon ()
        in
        pct (Btr.Metrics.deadline_miss_fraction (Exec.metrics t))
      in
      Table.add_row table
        [ Printf.sprintf "%dKB/s" (bw / 1000); btr_cell;
          baseline Exec.Unreplicated;
          baseline (Exec.Zz { f = 1; timeout = Time.ms 5 });
          baseline (Exec.Pbft { f = 1 }) ])
    [ 10_000_000; 1_000_000; 400_000; 150_000 ];
  Table.print table;
  (* Under attack: who produces wrong/missing output, and for how long. *)
  let table2 =
    Table.create ~title:"E4b Incorrect output under attack (corrupt node 3 at 250ms, 1s run)"
      ~header:[ "protocol"; "incorrect time"; "correct outputs" ]
  in
  let script = Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs in
  let rt = run_exn (spec ~script ()) in
  Table.add_row table2
    [ "btr"; Time.to_string (Btr.Metrics.incorrect_time (Btr.Runtime.metrics rt));
      pct (Btr.Metrics.correct_fraction (Btr.Runtime.metrics rt)) ];
  List.iter
    (fun style ->
      let t =
        Exec.run
          ~workload:(Generators.avionics ~n_nodes:6)
          ~topology:(clique 6) ~style ~script ~horizon:(Time.sec 1) ()
      in
      Table.add_row table2
        [ Exec.style_name style;
          Time.to_string (Btr.Metrics.incorrect_time (Exec.metrics t));
          pct (Btr.Metrics.correct_fraction (Exec.metrics t)) ])
    [ Exec.Unreplicated; Exec.Zz { f = 1; timeout = Time.ms 5 }; Exec.Pbft { f = 1 } ];
  Table.print table2

(* ------------------------------------------------------------------ *)
(* E5: fine-grained degradation — shed the in-flight entertainment,
   keep the flight controls (§1, §4.1).                                *)

let e5 () =
  let table =
    Table.create
      ~title:"E5  Mixed-criticality degradation (avionics on 5 nodes, f=2, accumulating crashes)"
      ~header:
        [ "faults"; "shed below"; "safety-critical"; "high"; "medium"; "low"; "best-effort" ]
  in
  (* Double the compute demand so that losing nodes forces the planner
     to shed, not merely repack. *)
  let base = Generators.avionics ~n_nodes:5 in
  let g =
    Graph.create ~period:(Graph.period base)
      ~tasks:
        (List.map
           (fun (x : Task.t) ->
             if x.kind = Task.Compute then { x with Task.wcet = Time.mul x.wcet 2 }
             else x)
           (Graph.tasks base))
      ~flows:(Graph.flows base)
  in
  let topo = clique 5 in
  let cfg = Planner.default_config ~f:2 ~recovery_bound:(Time.sec 1) in
  let strategy =
    match Planner.build { cfg with Planner.degree = 2 } g topo with
    | Ok s -> s
    | Error e -> Format.kasprintf failwith "%a" Planner.pp_error e
  in
  List.iter
    (fun faulty ->
      match Planner.plan_for strategy ~faulty with
      | None -> ()
      | Some p ->
        let kept = Graph.tasks p.Planner.aug.Augment.original in
        let count level =
          string_of_int
            (List.length
               (List.filter (fun (x : Task.t) -> x.criticality = level) kept))
        in
        Table.add_row table
          [ Printf.sprintf "{%s}" (String.concat "," (List.map string_of_int faulty));
            (match p.Planner.shed_below with
            | None -> "-"
            | Some c -> Format.asprintf "%a" Task.pp_criticality c);
            count Task.Safety_critical; count Task.High; count Task.Medium;
            count Task.Low; count Task.Best_effort ])
    [ []; [ 4 ]; [ 3; 4 ] ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E6: physical inertia and the five-second rule (§1, §2).             *)

(* A BTR-controlled inverted pendulum: IMU on node 0, replicated
   state-feedback controller, torque actuator on node 1. Shared with
   the examples. *)
let pendulum_spec ~f ~script ~horizon ?tune () =
  let ms = Time.ms and us = Time.us in
  let imu =
    Task.make ~id:0 ~name:"imu" ~kind:Task.Source ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:0 ()
  in
  let controller =
    Task.make ~id:1 ~name:"controller" ~wcet:(ms 2)
      ~criticality:Task.Safety_critical ~state_size:1024 ()
  in
  let torque =
    Task.make ~id:2 ~name:"torque" ~kind:Task.Sink ~wcet:(us 200)
      ~criticality:Task.Safety_critical ~pinned:1 ()
  in
  (* Ballast load on the sensor and actuator nodes: the locality
     heuristic would otherwise co-locate the controller with them, and
     corrupting those nodes attacks the physical interfaces themselves
     (sensor/actuator attacks are out of scope — §5) or loses the
     pinned actuator outright. *)
  let ballast0 =
    Task.make ~id:3 ~name:"telemetry-ballast0" ~wcet:(ms 14)
      ~criticality:Task.Best_effort ~pinned:0 ()
  in
  let ballast1 =
    Task.make ~id:4 ~name:"telemetry-ballast1" ~wcet:(ms 14)
      ~criticality:Task.Best_effort ~pinned:1 ()
  in
  let workload =
    Graph.create_relaxed ~period:(ms 20)
      ~tasks:[ imu; controller; torque; ballast0; ballast1 ]
      ~flows:
        [
          { Graph.flow_id = 0; producer = 0; consumer = 1; msg_size = 64; deadline = None };
          { Graph.flow_id = 1; producer = 1; consumer = 2; msg_size = 32; deadline = Some (ms 15) };
        ]
  in
  let plant = Plant.create (Plant.inverted_pendulum ()) ~dt:(Time.ms 1) in
  let behaviors =
    [
      (0, fun ~period:_ ~inputs:_ -> Some (Plant.state plant));
      ( 1,
        fun ~period:_ ~inputs ->
          match inputs with
          | [ { Btr.Behavior.value = st; _ } ] when Array.length st >= 2 ->
            let u = -.((25.0 *. st.(0)) +. (8.0 *. st.(1))) in
            Some [| Float.max (-50.0) (Float.min 50.0 u) |]
          | _ -> None );
    ]
  in
  let s =
    Btr.Scenario.spec ~workload ~topology:(clique 5) ~f ~recovery_bound:(Time.ms 150)
      ~script ~horizon ~behaviors ?tune ()
  in
  (s, plant)

let run_pendulum ~f ~script ~horizon =
  let s, plant = pendulum_spec ~f ~script ~horizon () in
  match Btr.Scenario.prepare s with
  | Error e -> Format.kasprintf failwith "%a" Planner.pp_error e
  | Ok rt ->
    let eng = Btr.Runtime.engine rt in
    (* The plant integrates continuously; sample it every millisecond
       and apply torque commands as they reach the actuator. *)
    ignore
      (Btr_sim.Engine.every eng ~period:(Time.ms 1) (fun e ->
           Plant.advance plant ~until:(Btr_sim.Engine.now e)));
    Btr.Runtime.on_actuate rt ~orig_flow:1 (fun ~period:_ ~value ~at ->
        Plant.advance plant ~until:at;
        if Array.length value >= 1 then
          Plant.set_input plant (Float.max (-50.0) (Float.min 50.0 value.(0))));
    Btr.Runtime.run rt ~horizon;
    Plant.advance plant ~until:horizon;
    (rt, plant)

let e6 () =
  (* Part 1: open-loop outage sweep — how long an outage each plant
     tolerates (control input frozen), i.e. the max usable R. *)
  let table =
    Table.create ~title:"E6  Plant inertia: outage duration vs safety envelope"
      ~header:[ "outage"; "pendulum"; "pressure vessel"; "cruise control" ]
  in
  let survive model outage_s =
    let m = model () in
    let p = Plant.create m ~dt:(Time.ms 1) in
    let ctl = Plant.Controller.default_for m in
    let period = Time.ms 20 in
    let horizon = Time.add (Time.sec 40) (Time.of_sec_f outage_s) in
    let o_start = Time.sec 10 in
    let o_end = Time.add o_start (Time.of_sec_f outage_s) in
    let rec loop t =
      if Time.compare t horizon >= 0 then ()
      else begin
        Plant.advance p ~until:t;
        if Time.compare t o_start < 0 || Time.compare t o_end >= 0 then
          Plant.set_input p
            (Plant.Controller.compute ctl ~dt_s:(Time.to_sec_f period)
               ~measurement:(Plant.state p));
        loop (Time.add t period)
      end
    in
    loop Time.zero;
    if Time.equal (Plant.time_outside_envelope p) Time.zero then "ok"
    else if Plant.failed p then "DESTROYED"
    else "violated"
  in
  List.iter
    (fun outage_s ->
      Table.add_row table
        [ Printf.sprintf "%.2fs" outage_s;
          survive Plant.inverted_pendulum outage_s;
          survive (fun () -> Plant.pressure_vessel ()) outage_s;
          survive (fun () -> Plant.cruise_control ()) outage_s ])
    [ 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0; 30.0 ];
  Table.print table;
  (* Part 2: closed loop — BTR recovers fast enough for the pendulum;
     without recovery the same fault destroys it. *)
  let table2 =
    Table.create
      ~title:"E6b Closed loop: corrupt controller node at t=1s (pendulum, R=150ms)"
      ~header:[ "system"; "recovery"; "max excursion"; "outside envelope"; "destroyed" ]
  in
  let describe name rt plant =
    let recovery =
      match Btr.Metrics.recovery_times (Btr.Runtime.metrics rt) with
      | [ r ] -> Time.to_string r
      | _ -> "-"
    in
    Table.add_row table2
      [ name; recovery; Table.cell_f (Plant.max_excursion plant);
        Time.to_string (Plant.time_outside_envelope plant);
        (if Plant.failed plant then "yes" else "no") ]
  in
  let controller_node rt =
    let plan = Planner.initial_plan (Btr.Runtime.strategy rt) in
    Option.value ~default:2 (Planner.assignment_of plan 1)
  in
  (* Probe run to find the primary controller's node, then attack it. *)
  let probe, _ = run_pendulum ~f:1 ~script:[] ~horizon:(Time.ms 40) in
  let target = controller_node probe in
  let script = Fault.single ~at:(Time.sec 1) ~node:target Fault.Corrupt_outputs in
  let rt, plant = run_pendulum ~f:1 ~script ~horizon:(Time.sec 4) in
  describe "btr (f=1)" rt plant;
  let rt0, plant0 = run_pendulum ~f:0 ~script ~horizon:(Time.sec 4) in
  describe "no recovery (f=0)" rt0 plant0;
  Table.print table2

(* ------------------------------------------------------------------ *)
(* E7: planner scalability and the value of minimal reassignment
   (§4.1).                                                             *)

let e7 () =
  let table =
    Table.create ~title:"E7  Planner scalability (avionics, clique)"
      ~header:[ "nodes"; "f"; "modes"; "transitions"; "plan time"; "worst recovery" ]
  in
  List.iter
    (fun (n, f) ->
      let cfg = Planner.default_config ~f ~recovery_bound:(Time.sec 1) in
      match Planner.build cfg (Generators.avionics ~n_nodes:n) (clique n) with
      | Error _ -> Table.add_row table [ string_of_int n; string_of_int f; "-"; "-"; "-"; "-" ]
      | Ok s ->
        let st = Planner.stats s in
        Table.add_row table
          [ string_of_int n; string_of_int f; string_of_int st.Planner.modes;
            string_of_int st.Planner.transitions;
            Printf.sprintf "%.1fms" (st.Planner.planning_seconds *. 1e3);
            Time.to_string st.Planner.worst_recovery ])
    [ (4, 1); (6, 1); (8, 1); (12, 1); (16, 1); (6, 2); (8, 2); (12, 2); (8, 3) ];
  Table.print table;
  let table2 =
    Table.create ~title:"E7b Minimal reassignment vs naive replanning (8 nodes, f=2)"
      ~header:[ "policy"; "moved tasks"; "moved state"; "worst migration"; "worst recovery" ]
  in
  List.iter
    (fun (name, policy) ->
      let cfg =
        { (Planner.default_config ~f:2 ~recovery_bound:(Time.sec 1)) with
          Planner.reassignment = policy }
      in
      match Planner.build cfg (Generators.avionics ~n_nodes:8) (clique 8) with
      | Error _ -> ()
      | Ok s ->
        let trs = Planner.all_transitions s in
        let moved = List.fold_left (fun a tr -> a + List.length tr.Planner.moved) 0 trs in
        let worst_mig =
          List.fold_left (fun a tr -> Time.max a tr.Planner.migration_bound) Time.zero trs
        in
        Table.add_row table2
          [ name; string_of_int moved;
            Printf.sprintf "%dB" (Planner.stats s).Planner.total_moved_state;
            Time.to_string worst_mig;
            Time.to_string (Planner.stats s).Planner.worst_recovery ])
    [ ("minimal", Planner.Minimal); ("naive", Planner.Naive) ];
  Table.print table2

(* ------------------------------------------------------------------ *)
(* E8: evidence distribution under reserved bandwidth, with and
   without a bogus-evidence flood (§4.3).                              *)

let e8 () =
  let table =
    Table.create
      ~title:"E8  Reconfiguration latency vs reserved control bandwidth (corrupt node 3)"
      ~header:[ "control share"; "convergence"; "with bogus flood"; "recovery" ]
  in
  let run_with ~share ~flood =
    let script =
      Fault.single ~at:(Time.ms 250) ~node:3 Fault.Corrupt_outputs
      @ (if flood then
           Fault.single ~at:Time.zero ~node:5 (Fault.Babble { bogus_per_period = 8 })
         else [])
    in
    let tune c =
      { c with Planner.shares = Some { Net.data_frac = 0.35; control_frac = share } }
    in
    (* f = 2: the babbler is itself a fault, and both must fit the
       budget. Starved control shares are exactly what BTR-E303 rejects,
       so deploy past the gate to measure the failure it predicts. *)
    let rt = run_unchecked ~f:2 ~script ~tune () in
    let conv = convergence_latency rt ~node:3 ~at:(Time.ms 250) in
    let recovery =
      match Btr.Metrics.recovery_times (Btr.Runtime.metrics rt) with
      | r :: _ -> r
      | [] -> Time.zero
    in
    (conv, recovery)
  in
  List.iter
    (fun share ->
      let conv, recovery = run_with ~share ~flood:false in
      let conv_flood, _ = run_with ~share ~flood:true in
      let cell = function Some c -> Time.to_string c | None -> "never" in
      Table.add_row table
        [ Printf.sprintf "%.1f%%" (share *. 100.0); cell conv; cell conv_flood;
          Time.to_string recovery ])
    [ 0.005; 0.02; 0.05; 0.15 ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E9: omission attribution via problematic paths (§4.2).              *)

let e9 () =
  let table =
    Table.create
      ~title:"E9  Omission handling: selective omission by node 3 (f=1, threshold f+1=2)"
      ~header:
        [ "omits toward"; "attributed"; "false attrib."; "convergence"; "outputs ok" ]
  in
  List.iter
    (fun (label, behavior) ->
      let rt = run_exn (spec ~script:(Fault.single ~at:(Time.ms 250) ~node:3 behavior)
                          ~horizon:(Time.sec 2) ()) in
      let correct_nodes =
        List.filter (fun n -> n <> 3) (Topology.nodes (clique 6))
      in
      let attributed =
        List.exists (fun n -> List.mem 3 (Btr.Runtime.node_fault_nodes rt n)) correct_nodes
      in
      let false_attr =
        List.exists
          (fun n ->
            List.exists (fun x -> x <> 3) (Btr.Runtime.node_fault_nodes rt n))
          correct_nodes
      in
      let conv = convergence_latency rt ~node:3 ~at:(Time.ms 250) in
      Table.add_row table
        [ label; (if attributed then "yes" else "no");
          (if false_attr then "YES (bug)" else "none");
          (match conv with Some c -> Time.to_string c | None -> "-");
          pct (Btr.Metrics.correct_fraction (Btr.Runtime.metrics rt)) ])
    [
      ("1 node", Fault.Omit_to [ 0 ]);
      ("2 nodes", Fault.Omit_to [ 0; 1 ]);
      ("3 nodes", Fault.Omit_to [ 0; 1; 2 ]);
      ("everyone", Fault.Omit_outputs);
    ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E10 (beyond the paper): relaxing the §2.1 "losses are rare enough to
   be ignored" assumption. Residual per-hop loss makes single-miss path
   declarations frame correct nodes; an omission-strike threshold
   restores safety at the cost of slower omission detection.           *)

let e10 () =
  let table =
    Table.create
      ~title:"E10 Residual link loss vs omission-strike threshold (crash node 3 at 500ms, 2s run)"
      ~header:
        [ "loss/hop"; "strikes"; "false attributions"; "crash attributed"; "outputs ok" ]
  in
  List.iter
    (fun (loss, strikes) ->
      let s = spec ~horizon:(Time.sec 2)
          ~script:(Fault.single ~at:(Time.ms 500) ~node:3 Fault.Crash) () in
      match Btr.Scenario.plan s with
      | Error _ -> ()
      | Ok strategy ->
        let config =
          { Btr.Runtime.default_config with
            residual_loss = loss; omission_strikes = strikes }
        in
        let rt =
          Btr.Runtime.create ~config ~script:s.Btr.Scenario.script ~strategy ()
        in
        Btr.Runtime.run rt ~horizon:s.Btr.Scenario.horizon;
        let correct = List.filter (fun n -> n <> 3) (Topology.nodes (clique 6)) in
        let accusations =
          List.concat_map (fun c -> Btr.Runtime.node_fault_nodes rt c) correct
        in
        let false_attr = List.exists (fun x -> x <> 3) accusations in
        let caught = List.mem 3 accusations in
        Table.add_row table
          [ Printf.sprintf "%.1f%%" (loss *. 100.0); string_of_int strikes;
            (if false_attr then "YES" else "none");
            (if caught then "yes" else "no");
            pct (Btr.Metrics.correct_fraction (Btr.Runtime.metrics rt)) ])
    [ (0.0, 1); (0.003, 1); (0.003, 3); (0.01, 3); (0.01, 5) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E11: randomized fault-injection campaign — what the empirical
   adversary finds beyond the static verifier's verdicts. The original
   run of this grid surfaced the selective-omission gap (omitto.3.5@…);
   since the shared-strike detector rework and BTR-E305 the same grid
   reports zero violations — see EXPERIMENTS.md for before/after.      *)

let e11 () =
  let module Campaign = Btr_campaign.Campaign in
  let grid =
    {
      Campaign.default_grid with
      Campaign.fault_bounds = [ 1; 2 ];
      control_shares = [ None; Some 0.005 ];
    }
  in
  let spec = Campaign.spec ~grid ~trials:60 ~seed:7 ~shrink_budget:120 () in
  let result = Campaign.run ~jobs:1 spec in
  let table =
    Table.create
      ~title:"E11 Campaign verdicts by configuration (60 trials, seed 7)"
      ~header:[ "config"; "trials"; "rejected"; "violations"; "worst recovery" ]
  in
  List.iter
    (fun (p : Campaign.params) ->
      let vs =
        List.filter
          (fun (v : Campaign.verdict) ->
            Campaign.plan_key ~seed:spec.Campaign.seed v.Campaign.trial.Campaign.params
            = Campaign.plan_key ~seed:spec.Campaign.seed p)
          result.Campaign.verdicts
      in
      let count pred = List.length (List.filter pred vs) in
      let worst =
        List.fold_left
          (fun acc (v : Campaign.verdict) ->
            match v.Campaign.outcome with
            | Campaign.Pass st | Campaign.Violation st ->
              Time.max acc st.Campaign.worst_recovery
            | _ -> acc)
          Time.zero vs
      in
      Table.add_row table
        [
          Format.asprintf "%a" Campaign.pp_params p;
          string_of_int (List.length vs);
          string_of_int
            (count (fun v ->
                 match v.Campaign.outcome with Campaign.Rejected _ -> true | _ -> false));
          string_of_int (count (fun v -> Campaign.violates v.Campaign.outcome));
          Time.to_string worst;
        ])
    (Campaign.grid_params grid);
  Table.print table;
  List.iter
    (fun (s : Campaign.shrunk_violation) ->
      Printf.printf
        "violation (trial %d): %s -> %s (%d -> %d events, %d shrink runs)\n"
        s.Campaign.source.Campaign.index
        (Campaign.script_to_string s.Campaign.source.Campaign.script)
        (Campaign.script_to_string s.Campaign.script)
        (List.length s.Campaign.source.Campaign.script)
        (List.length s.Campaign.script)
        s.Campaign.shrink_runs)
    result.Campaign.violations

let all = [ ("e1", e1); ("e1b", e1b); ("e2", e2); ("e3", e3); ("e4", e4);
            ("e5", e5); ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9);
            ("e10", e10); ("e11", e11) ]
