(* Sim-engine hot-path throughput: every campaign trial spins on
   push/step, so regressions here multiply across thousands of trials.
   Three axes: raw schedule+drain throughput, steady-state throughput at
   increasing queue depths (periodic tasks re-arming themselves, the
   runtime's actual shape), and drain time under increasing cancelled
   fractions. Runs against the process-default backend (see
   --engine-backend); each row also reports the allocation diet — cells
   allocated fresh vs served from the wheel's pool (zeros on the pheap
   backend, which has no pool). Writes BENCH_engine.json with --json. *)

open Btr_util
module Engine = Btr_sim.Engine

(* btr-lint: allow wall-clock — benchmark timing is inherently
   wall-clock; simulated results stay deterministic. *)
let now () = Unix.gettimeofday ()

let events_per_sec events dt = int_of_float ((float_of_int events /. dt) +. 0.5)

let engine_counter e name =
  match
    List.assoc_opt
      ("sim.engine." ^ name)
      (Btr_obs.Obs.Registry.counters (Btr_obs.Obs.registry (Engine.obs e)))
  with
  | Some v -> v
  | None -> 0

(* allocation columns: fresh cells vs pool reuses over the bench run *)
let alloc_stats e = (engine_counter e "cells", engine_counter e "pool-reuse")

(* One-shot events at scattered times, drained once: the push/step
   baseline with no re-arming and no cancellations. *)
let bench_drain n =
  let e = Engine.create () in
  let t0 = now () in
  for i = 1 to n do
    ignore (Engine.schedule e ~at:(i * 7919 mod 1_000_003) (fun _ -> ()))
  done;
  Engine.run e;
  let dt = now () -. t0 in
  assert (Engine.events_processed e = n);
  (dt, alloc_stats e)

(* [depth] periodic tasks re-arm themselves until ~[total] events have
   fired: sustained throughput with the queue pinned at [depth]. *)
let bench_depth ~depth ~total =
  let e = Engine.create () in
  let period = Time.ms 1 in
  let fired = ref 0 in
  for i = 0 to depth - 1 do
    (* stagger starts across one period so every task is live from the
       first period whatever the depth *)
    ignore
      (Engine.every e ~period ~start:(Time.us (i mod period)) (fun _ ->
           incr fired))
  done;
  let horizon = Time.mul period (total / depth) in
  let t0 = now () in
  Engine.run ~until:horizon e;
  let dt = now () -. t0 in
  (!fired, dt, alloc_stats e)

(* Schedule [n] events, cancel [pct]% of them up front, drain. The
   wheel unlinks cancelled cells eagerly, so drain cost must scale
   with the live events only; the pheap walks dead events until its
   compaction threshold trips. *)
let bench_cancelled ~n ~pct =
  let e = Engine.create () in
  let live = ref 0 in
  let handles =
    Array.init n (fun i ->
        Engine.schedule e ~at:(i * 7919 mod 1_000_003) (fun _ -> incr live))
  in
  Array.iteri (fun i h -> if i mod 100 < pct then Engine.cancel h) handles;
  let expected = Engine.pending e in
  let t0 = now () in
  Engine.run e;
  let dt = now () -. t0 in
  assert (Engine.events_processed e = expected && !live = expected);
  (expected, dt, alloc_stats e)

let run ?json_file ?max_depth () =
  let backend = Engine.backend_name (Engine.default_backend ()) in
  let drain_n = 200_000 in
  let depths =
    let all = [ 100; 1_000; 10_000; 100_000; 1_000_000 ] in
    match max_depth with
    | None -> all
    | Some cap -> List.filter (fun d -> d <= cap) all
  in
  (* enough horizon that even the deepest row sustains two full periods
     (shallower rows just re-arm more often), and enough events that
     every row runs long enough to measure above scheduler noise *)
  let depth_total depth = max 1_000_000 (2 * depth) in
  let cancel_n = 100_000 in
  let cancel_pcts = [ 0; 25; 50; 90 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "EB  Engine throughput (%s backend, %d-event workloads)"
           backend drain_n)
      ~header:
        [ "workload"; "events"; "seconds"; "events/sec"; "cells"; "pooled" ]
  in
  let row name events dt (cells, pooled) =
    Table.add_row table
      [
        name;
        string_of_int events;
        Printf.sprintf "%.3f" dt;
        string_of_int (events_per_sec events dt);
        string_of_int cells;
        string_of_int pooled;
      ]
  in
  let drain_dt, drain_alloc = bench_drain drain_n in
  row "schedule+drain" drain_n drain_dt drain_alloc;
  let depth_rows =
    List.map
      (fun depth ->
        let fired, dt, alloc = bench_depth ~depth ~total:(depth_total depth) in
        row (Printf.sprintf "steady depth %d" depth) fired dt alloc;
        (depth, fired, dt, alloc))
      depths
  in
  let cancel_rows =
    List.map
      (fun pct ->
        let fired, dt, alloc = bench_cancelled ~n:cancel_n ~pct in
        row (Printf.sprintf "cancelled %d%%" pct) fired dt alloc;
        (pct, fired, dt, alloc))
      cancel_pcts
  in
  Table.print table;
  match json_file with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    let drain_cells, drain_pooled = drain_alloc in
    Printf.fprintf oc
      "{\"bench\":\"engine\",\"backend\":%S,\"drain_events\":%d,\"drain_millis\":%d,\"drain_events_per_sec\":%d,\"cells_allocated\":%d,\"cells_reused\":%d}\n"
      backend drain_n
      (int_of_float ((drain_dt *. 1000.0) +. 0.5))
      (events_per_sec drain_n drain_dt)
      drain_cells drain_pooled;
    List.iter
      (fun (depth, fired, dt, (cells, pooled)) ->
        Printf.fprintf oc
          "{\"mode\":\"depth\",\"depth\":%d,\"events\":%d,\"millis\":%d,\"events_per_sec\":%d,\"cells_allocated\":%d,\"cells_reused\":%d}\n"
          depth fired
          (int_of_float ((dt *. 1000.0) +. 0.5))
          (events_per_sec fired dt) cells pooled)
      depth_rows;
    List.iter
      (fun (pct, fired, dt, (cells, pooled)) ->
        Printf.fprintf oc
          "{\"mode\":\"cancelled\",\"cancelled_pct\":%d,\"live_events\":%d,\"millis\":%d,\"events_per_sec\":%d,\"cells_allocated\":%d,\"cells_reused\":%d}\n"
          pct fired
          (int_of_float ((dt *. 1000.0) +. 0.5))
          (events_per_sec fired dt) cells pooled)
      cancel_rows;
    close_out oc;
    Printf.printf "wrote %s\n" file
