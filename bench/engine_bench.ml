(* Sim-engine hot-path throughput: every campaign trial spins on
   push/step, so regressions here multiply across thousands of trials.
   Three axes: raw schedule+drain throughput, steady-state throughput at
   increasing queue depths (periodic tasks re-arming themselves, the
   runtime's actual shape), and drain time under increasing cancelled
   fractions (the compaction path). Writes BENCH_engine.json with
   --json. *)

open Btr_util
module Engine = Btr_sim.Engine

(* btr-lint: allow wall-clock — benchmark timing is inherently
   wall-clock; simulated results stay deterministic. *)
let now () = Unix.gettimeofday ()

let events_per_sec events dt = int_of_float ((float_of_int events /. dt) +. 0.5)

(* One-shot events at scattered times, drained once: the push/step
   baseline with no re-arming and no cancellations. *)
let bench_drain n =
  let e = Engine.create () in
  let t0 = now () in
  for i = 1 to n do
    ignore (Engine.schedule e ~at:(i * 7919 mod 1_000_003) (fun _ -> ()))
  done;
  Engine.run e;
  let dt = now () -. t0 in
  assert (Engine.events_processed e = n);
  dt

(* [depth] periodic tasks re-arm themselves until ~[total] events have
   fired: sustained throughput with the queue pinned at [depth]. *)
let bench_depth ~depth ~total =
  let e = Engine.create () in
  let period = Time.ms 1 in
  let fired = ref 0 in
  for i = 0 to depth - 1 do
    (* stagger starts across one period so every task is live from the
       first period whatever the depth *)
    ignore (Engine.every e ~period ~start:(Time.us (i mod period)) (fun _ -> incr fired))
  done;
  let horizon = Time.mul period (total / depth) in
  let t0 = now () in
  Engine.run ~until:horizon e;
  let dt = now () -. t0 in
  (!fired, dt)

(* Schedule [n] events, cancel [pct]% of them up front, drain. With a
   dominating dead fraction the compaction path keeps the heap small;
   without it every cancelled event still costs heap comparisons. *)
let bench_cancelled ~n ~pct =
  let e = Engine.create () in
  let live = ref 0 in
  let handles =
    Array.init n (fun i ->
        Engine.schedule e ~at:(i * 7919 mod 1_000_003) (fun _ -> incr live))
  in
  Array.iteri (fun i h -> if i mod 100 < pct then Engine.cancel h) handles;
  let expected = Engine.pending e in
  let t0 = now () in
  Engine.run e;
  let dt = now () -. t0 in
  assert (Engine.events_processed e = expected && !live = expected);
  (expected, dt)

let run ?json_file () =
  let drain_n = 200_000 in
  let depth_total = 200_000 in
  let depths = [ 100; 1_000; 10_000; 100_000 ] in
  let cancel_n = 100_000 in
  let cancel_pcts = [ 0; 25; 50; 90 ] in
  let table =
    Table.create
      ~title:(Printf.sprintf "EB  Engine throughput (%d-event workloads)" drain_n)
      ~header:[ "workload"; "events"; "seconds"; "events/sec" ]
  in
  let row name events dt =
    Table.add_row table
      [ name; string_of_int events; Printf.sprintf "%.3f" dt;
        string_of_int (events_per_sec events dt) ]
  in
  let drain_dt = bench_drain drain_n in
  row "schedule+drain" drain_n drain_dt;
  let depth_rows =
    List.map
      (fun depth ->
        let fired, dt = bench_depth ~depth ~total:depth_total in
        row (Printf.sprintf "steady depth %d" depth) fired dt;
        (depth, fired, dt))
      depths
  in
  let cancel_rows =
    List.map
      (fun pct ->
        let fired, dt = bench_cancelled ~n:cancel_n ~pct in
        row (Printf.sprintf "cancelled %d%%" pct) fired dt;
        (pct, fired, dt))
      cancel_pcts
  in
  Table.print table;
  match json_file with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\"bench\":\"engine\",\"drain_events\":%d,\"drain_millis\":%d,\"drain_events_per_sec\":%d}\n"
      drain_n
      (int_of_float ((drain_dt *. 1000.0) +. 0.5))
      (events_per_sec drain_n drain_dt);
    List.iter
      (fun (depth, fired, dt) ->
        Printf.fprintf oc
          "{\"mode\":\"depth\",\"depth\":%d,\"events\":%d,\"millis\":%d,\"events_per_sec\":%d}\n"
          depth fired
          (int_of_float ((dt *. 1000.0) +. 0.5))
          (events_per_sec fired dt))
      depth_rows;
    List.iter
      (fun (pct, fired, dt) ->
        Printf.fprintf oc
          "{\"mode\":\"cancelled\",\"cancelled_pct\":%d,\"live_events\":%d,\"millis\":%d,\"events_per_sec\":%d}\n"
          pct fired
          (int_of_float ((dt *. 1000.0) +. 0.5))
          (events_per_sec fired dt))
      cancel_rows;
    close_out oc;
    Printf.printf "wrote %s\n" file
